#!/bin/sh
# Advisory performance-regression gate: write the next BENCH_N.json
# baseline, diff it against the previous committed baseline, and report
# every key that moved past the thresholds (deterministic keys at
# THRESHOLD, default 0.05; wall-clock keys at a fixed loose 0.5 inside
# bench regress itself).  Normally exits 0 — timing on shared machines
# is too noisy for a hard gate — but prints an escalation note when the
# gate trips so a human can re-run locally and either investigate or
# deliberately publish a new baseline.
#
# Usage: regress.sh [THRESHOLD] [FLOOR] [HARD]
#   FLOOR: minimum fig5/fig6 sweep speedup at --jobs 2, forwarded to
#          `bench regress --speedup-floor` (empty: no floor check).
#   HARD=1: a floor violation fails the script (callers pass this only
#           on multi-core runners; see check.sh).  Everything else
#           stays advisory regardless.
set -eu
cd "$(dirname "$0")/.."
threshold="${1:-0.05}"
floor="${2:-}"
hard="${3:-0}"
dune build bench/main.exe
floor_args=""
if [ -n "$floor" ]; then floor_args="--speedup-floor $floor"; fi
status=0
out=$(dune exec bench/main.exe -- regress --jobs 2 --threshold "$threshold" $floor_args 2>&1) || status=$?
printf '%s\n' "$out"
# Drop the freshly written baseline: regress is a check, not a publish.
# New baselines are committed deliberately via `bench baseline`.
path=$(printf '%s\n' "$out" | sed -n 's/^\(BENCH_[0-9]*\.json\) ok.*/\1/p')
if [ -n "$path" ]; then rm -f "$path"; fi
if [ "$status" -ne 0 ]; then
  echo "regress.sh: ADVISORY — metrics moved past the gate (threshold $threshold)." >&2
  echo "regress.sh: if the movement is expected, run 'dune exec bench/main.exe -- baseline'" >&2
  echo "regress.sh: and commit the new BENCH_N.json; otherwise investigate before merging." >&2
  if [ "$hard" = "1" ] && printf '%s\n' "$out" | grep -q 'below the .* floor'; then
    echo "regress.sh: HARD — fig5/fig6 --jobs 2 speedup fell below the $floor floor." >&2
    exit 1
  fi
fi
exit 0
