#!/bin/sh
# Tier-1 gate: everything must build (including the odoc target), the
# full test suite must pass, the static analyzer must find no
# unsuppressed determinism/doc violations anywhere in the tree, and
# the quick bench must emit a valid telemetry metrics snapshot.
set -eu
cd "$(dirname "$0")/.."
dune build @all
dune build @doc
dune runtest

# Static analysis, both phases over the whole tree: the parsetree
# rules R1-R6 (subsuming the old docs_check.sh pass, now a wrapper
# over rule R6 only) plus the interprocedural rules R7-R9, which read
# the .cmt typed trees — build @check first so every unit has one.
# Stale lint.allowlist entries are hard errors inside the tool.
dune build @check
dune exec bin/tmedb_lint.exe -- --typed lib bin bench test

# Telemetry smoke: the metrics file must carry the schema marker, both
# top-level sections, and counters from every major subsystem the
# quick run exercises (bench/main.exe itself re-parses the file and
# exits non-zero if it is not valid JSON).
m=$(mktemp)
trap 'rm -f "$m"' EXIT
out=$(dune exec bench/main.exe -- quick --jobs 2 --metrics "$m")
# quick mode also writes the next BENCH_N.json baseline; this is a
# check, not a publish, so drop it (committed baselines are produced
# deliberately via `bench baseline`).
bpath=$(printf '%s\n' "$out" | sed -n 's/^\(BENCH_[0-9]*\.json\) ok.*/\1/p')
if [ -n "$bpath" ]; then rm -f "$bpath"; fi
for key in '"schema": "tmedb.metrics/1"' '"counters"' '"timers"' \
           '"aux_graph.vertices"' '"dst.solves"' '"simulate.trials"' '"pool.tasks"'; do
  grep -q "$key" "$m" || {
    echo "check.sh: metrics file missing $key" >&2
    exit 1
  }
done

# Profiling smoke: a quick figure run with --profile must leave the
# full artifact set — a valid tmedb.profile/1 JSON, non-empty folded
# stacks and the self-contained HTML flamegraph — and a second run at
# a different worker count must reproduce the deterministic artifacts
# byte for byte (docs/PROFILING.md).  The ledger must come out
# byte-identical with and without profiling riding along.
pdir=$(mktemp -d)
pdir2=$(mktemp -d)
ptrace=$(mktemp); l1=$(mktemp); l2=$(mktemp)
trap 'rm -f "$m" "$ptrace" "$l1" "$l2"; rm -rf "$pdir" "$pdir2"' EXIT
dune exec bin/tmedb_cli.exe -- gen --kind haggle --nodes 12 --horizon 8000 \
  --seed 7 -o "$ptrace" >/dev/null
dune exec bin/tmedb_cli.exe -- run -a EEDCB --seed 7 --trials 50 --jobs 2 \
  --ledger "$l1" --ledger-timestamp 2026-01-01T00:00:00Z "$ptrace" >/dev/null
dune exec bin/tmedb_cli.exe -- run -a EEDCB --seed 7 --trials 50 --jobs 2 \
  --ledger "$l2" --ledger-timestamp 2026-01-01T00:00:00Z \
  --profile "$pdir" "$ptrace" >/dev/null
cmp -s "$l1" "$l2" || {
  echo "check.sh: ledger changed when --profile rode along" >&2
  exit 1
}
grep -q '"schema": "tmedb.profile/1"' "$pdir/profile.json" || {
  echo "check.sh: profile.json missing the tmedb.profile/1 schema marker" >&2
  exit 1
}
for f in profile.folded flamegraph.html profile_detail.json profile_wall.folded; do
  test -s "$pdir/$f" || {
    echo "check.sh: profile artifact $f missing or empty" >&2
    exit 1
  }
done
dune exec bin/tmedb_cli.exe -- run -a EEDCB --seed 7 --trials 50 --jobs 4 \
  --ledger-timestamp 2026-01-01T00:00:00Z --profile "$pdir2" "$ptrace" >/dev/null
for f in profile.json profile.folded; do
  cmp -s "$pdir/$f" "$pdir2/$f" || {
    echo "check.sh: $f not byte-deterministic across --jobs" >&2
    exit 1
  }
done

# N-scaling smoke: the lazy aux-graph path must keep its >=10x
# materialization cut and its bit-for-bit agreement with the eager
# build (bench exits non-zero on either), and the frontier counters
# must reach the telemetry file.
m2=$(mktemp)
trap 'rm -f "$m" "$m2" "$ptrace" "$l1" "$l2"; rm -rf "$pdir" "$pdir2"' EXIT
dune exec bench/main.exe -- nscale --quick --metrics "$m2" >/dev/null
for key in '"aux_graph.nodes_materialized"' '"aux_graph.lazy_nodes_total"' \
           '"aux_graph.edges_materialized"'; do
  grep -q "$key" "$m2" || {
    echo "check.sh: nscale metrics missing $key" >&2
    exit 1
  }
done

# Pareto sweep smoke (docs/PARETO.md): the tmedb.pareto/1 ledger must
# be byte-identical across worker counts, invalid grids must be
# rejected up front, the dominance marking must match a tiny scenario
# constructed by hand, report diff must speak the per-point dotted
# paths, and the shared-state reuse gates must hold at quick scale.
pl1=$(mktemp); pl2=$(mktemp); pl3=$(mktemp); tt=$(mktemp); m3=$(mktemp)
trap 'rm -f "$m" "$m2" "$m3" "$ptrace" "$l1" "$l2" "$pl1" "$pl2" "$pl3" "$tt"; rm -rf "$pdir" "$pdir2"' EXIT
dune exec bin/tmedb_cli.exe -- pareto -a EEDCB --deadlines 2000:6000:2000 --seed 7 \
  --jobs 1 --ledger "$pl1" --ledger-timestamp 2026-01-01T00:00:00Z "$ptrace" >/dev/null
for j in 2 4; do
  dune exec bin/tmedb_cli.exe -- pareto -a EEDCB --deadlines 2000:6000:2000 --seed 7 \
    --jobs $j --ledger "$pl2" --ledger-timestamp 2026-01-01T00:00:00Z "$ptrace" >/dev/null
  cmp -s "$pl1" "$pl2" || {
    echo "check.sh: pareto ledger not byte-deterministic at --jobs $j" >&2
    exit 1
  }
done
grep -q '"schema": "tmedb.pareto/1"' "$pl1" || {
  echo "check.sh: pareto ledger missing the tmedb.pareto/1 schema marker" >&2
  exit 1
}
if dune exec bin/tmedb_cli.exe -- pareto -a EEDCB --deadlines 6000:2000:500 "$ptrace" \
     >/dev/null 2>&1; then
  echo "check.sh: descending --deadlines range was accepted" >&2
  exit 1
fi
if dune exec bin/tmedb_cli.exe -- pareto -a EEDCB --deadline-list 3000,2000 "$ptrace" \
     >/dev/null 2>&1; then
  echo "check.sh: descending --deadline-list was accepted" >&2
  exit 1
fi
# Tiny scenario with a known front: by T=2 only node 1 is reachable
# (the 0-2 contact has not opened yet), so that point is incomplete
# and therefore dominated; by T=8 the cheap two-hop relay covers
# everyone, so it is the whole front.
cat > "$tt" <<'EOF'
# tmedb-trace n=3 span=0,10
0,1,0,10,10
0,2,4,6,50
1,2,5,10,10
EOF
pout=$(dune exec bin/tmedb_cli.exe -- pareto -a EEDCB --deadline-list 2,8 --source 0 \
  --seed 7 "$tt")
printf '%s\n' "$pout" | grep -Eq '^ *2 .*dominated$' || {
  echo "check.sh: pareto did not mark the incomplete T=2 point dominated" >&2
  exit 1
}
printf '%s\n' "$pout" | grep -Eq '^ *8 .*front$' || {
  echo "check.sh: pareto did not keep the T=8 point on the front" >&2
  exit 1
}
printf '%s\n' "$pout" | grep -q '^front: 8$' || {
  echo "check.sh: pareto front line is not 'front: 8'" >&2
  exit 1
}
# report diff flattens sweeps into per-point dotted paths; a shorter
# grid makes the missing deadline show up one-sided.
dune exec bin/tmedb_cli.exe -- pareto -a EEDCB --deadlines 2000:4000:2000 --seed 7 \
  --jobs 1 --ledger "$pl3" --ledger-timestamp 2026-01-01T00:00:00Z "$ptrace" >/dev/null
dout=$(dune exec bin/tmedb_cli.exe -- report diff "$pl1" "$pl3" || true)
printf '%s\n' "$dout" | grep -q 'points\.6000\.energy' || {
  echo "check.sh: report diff did not render per-point pareto paths" >&2
  exit 1
}
# Bench gates at quick scale: shared == independent point lists and
# sublinear reuse counters (bench exits non-zero on either), with the
# sweep counters reaching the telemetry file.
dune exec bench/main.exe -- pareto --quick --jobs 2 --metrics "$m3" >/dev/null
for key in '"pareto.sweeps"' '"pareto.points"' '"solve_state.creates"' \
           '"dts.stream_points"'; do
  grep -q "$key" "$m3" || {
    echo "check.sh: pareto metrics missing $key" >&2
    exit 1
  }
done

# Registry drift gate: the algorithm list the CLI advertises in its
# help text must be exactly the planner registry, in registry order
# (`algorithms --names` prints one registry name per line).
names=$(dune exec bin/tmedb_cli.exe -- algorithms --names | tr '\n' ',' | sed 's/,$//; s/,/, /g')
advertised=$(dune exec bin/tmedb_cli.exe -- run --help=plain | sed -n 's/.*One of \(.*\)\./\1/p' | head -n 1)
if [ "$names" != "$advertised" ]; then
  echo "check.sh: CLI-advertised algorithms ($advertised) drifted from the registry ($names)" >&2
  exit 1
fi

# Performance-regression gate against the last committed BENCH_N.json
# baseline, with a parallel-speedup floor on the fig5/fig6 sweeps:
# `--jobs 2` must not be slower than sequential (floor 1.0).  The
# floor is hard only on multi-core runners — a 1-CPU box cannot speed
# anything up, so there it stays advisory like the rest of the timing
# gate (regress.sh prints an escalation note either way).
cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$cores" -ge 2 ]; then
  scripts/regress.sh 0.05 1.0 1
else
  scripts/regress.sh 0.05 1.0 0
fi

echo "check.sh: OK"
