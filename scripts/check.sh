#!/bin/sh
# Tier-1 gate: everything must build (including the odoc target), the
# full test suite must pass, the static analyzer must find no
# unsuppressed determinism/doc violations anywhere in the tree, and
# the quick bench must emit a valid telemetry metrics snapshot.
set -eu
cd "$(dirname "$0")/.."
dune build @all
dune build @doc
dune runtest

# Static analysis, both phases over the whole tree: the parsetree
# rules R1-R6 (subsuming the old docs_check.sh pass, now a wrapper
# over rule R6 only) plus the interprocedural rules R7-R9, which read
# the .cmt typed trees — build @check first so every unit has one.
# Stale lint.allowlist entries are hard errors inside the tool.
dune build @check
dune exec bin/tmedb_lint.exe -- --typed lib bin bench test

# Telemetry smoke: the metrics file must carry the schema marker, both
# top-level sections, and counters from every major subsystem the
# quick run exercises (bench/main.exe itself re-parses the file and
# exits non-zero if it is not valid JSON).
m=$(mktemp)
trap 'rm -f "$m"' EXIT
out=$(dune exec bench/main.exe -- quick --jobs 2 --metrics "$m")
# quick mode also writes the next BENCH_N.json baseline; this is a
# check, not a publish, so drop it (committed baselines are produced
# deliberately via `bench baseline`).
bpath=$(printf '%s\n' "$out" | sed -n 's/^\(BENCH_[0-9]*\.json\) ok.*/\1/p')
if [ -n "$bpath" ]; then rm -f "$bpath"; fi
for key in '"schema": "tmedb.metrics/1"' '"counters"' '"timers"' \
           '"aux_graph.vertices"' '"dst.solves"' '"simulate.trials"' '"pool.tasks"'; do
  grep -q "$key" "$m" || {
    echo "check.sh: metrics file missing $key" >&2
    exit 1
  }
done

# N-scaling smoke: the lazy aux-graph path must keep its >=10x
# materialization cut and its bit-for-bit agreement with the eager
# build (bench exits non-zero on either), and the frontier counters
# must reach the telemetry file.
m2=$(mktemp)
trap 'rm -f "$m" "$m2"' EXIT
dune exec bench/main.exe -- nscale --quick --metrics "$m2" >/dev/null
for key in '"aux_graph.nodes_materialized"' '"aux_graph.lazy_nodes_total"' \
           '"aux_graph.edges_materialized"'; do
  grep -q "$key" "$m2" || {
    echo "check.sh: nscale metrics missing $key" >&2
    exit 1
  }
done

# Registry drift gate: the algorithm list the CLI advertises in its
# help text must be exactly the planner registry, in registry order
# (`algorithms --names` prints one registry name per line).
names=$(dune exec bin/tmedb_cli.exe -- algorithms --names | tr '\n' ',' | sed 's/,$//; s/,/, /g')
advertised=$(dune exec bin/tmedb_cli.exe -- run --help=plain | sed -n 's/.*One of \(.*\)\./\1/p' | head -n 1)
if [ "$names" != "$advertised" ]; then
  echo "check.sh: CLI-advertised algorithms ($advertised) drifted from the registry ($names)" >&2
  exit 1
fi

# Performance-regression gate against the last committed BENCH_N.json
# baseline, with a parallel-speedup floor on the fig5/fig6 sweeps:
# `--jobs 2` must not be slower than sequential (floor 1.0).  The
# floor is hard only on multi-core runners — a 1-CPU box cannot speed
# anything up, so there it stays advisory like the rest of the timing
# gate (regress.sh prints an escalation note either way).
cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$cores" -ge 2 ]; then
  scripts/regress.sh 0.05 1.0 1
else
  scripts/regress.sh 0.05 1.0 0
fi

echo "check.sh: OK"
