#!/bin/sh
# Tier-1 gate: everything must build (including the odoc target), the
# full test suite must pass, the static analyzer must find no
# unsuppressed determinism/doc violations anywhere in the tree, and
# the quick bench must emit a valid telemetry metrics snapshot.
set -eu
cd "$(dirname "$0")/.."
dune build @all
dune build @doc
dune runtest

# Static analysis: all six tmedb_lint rules over the whole tree
# (subsumes the old docs_check.sh pass, which is now a wrapper over
# rule R6 only).
dune exec bin/tmedb_lint.exe -- lib bin bench test

# Telemetry smoke: the metrics file must carry the schema marker, both
# top-level sections, and counters from every major subsystem the
# quick run exercises (bench/main.exe itself re-parses the file and
# exits non-zero if it is not valid JSON).
m=$(mktemp)
trap 'rm -f "$m"' EXIT
dune exec bench/main.exe -- quick --jobs 2 --metrics "$m" > /dev/null
for key in '"schema": "tmedb.metrics/1"' '"counters"' '"timers"' \
           '"aux_graph.vertices"' '"dst.solves"' '"simulate.trials"' '"pool.tasks"'; do
  grep -q "$key" "$m" || {
    echo "check.sh: metrics file missing $key" >&2
    exit 1
  }
done

echo "check.sh: OK"
