#!/bin/sh
# Tier-1 gate: everything must build and the full test suite must pass.
set -eu
cd "$(dirname "$0")/.."
dune build @all
dune runtest
echo "check.sh: OK"
