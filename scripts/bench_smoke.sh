#!/bin/sh
# Quick bench smoke: run the parallel baseline at 2 domains and make
# sure BENCH_1.json was written, re-parsed, and deterministic.
# (bench/main.exe exits non-zero itself on parse failure or any
# parallel/sequential divergence.)
set -eu
cd "$(dirname "$0")/.."
dune build bench/main.exe
out=$(dune exec bench/main.exe -- baseline --jobs 2)
printf '%s\n' "$out"
printf '%s\n' "$out" | grep -q "BENCH_1.json ok" || {
  echo "bench_smoke.sh: missing 'BENCH_1.json ok' marker" >&2
  exit 1
}
grep -q '"deterministic": true' BENCH_1.json || {
  echo "bench_smoke.sh: baseline not deterministic" >&2
  exit 1
}
echo "bench_smoke.sh: OK"
