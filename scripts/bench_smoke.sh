#!/bin/sh
# Quick bench smoke: run the parallel baseline at 2 domains and make
# sure the next BENCH_N.json in sequence was written, re-parsed, and
# deterministic.  (bench/main.exe exits non-zero itself on parse
# failure or any parallel/sequential divergence.)  The freshly written
# baseline is removed afterwards so the smoke never advances the
# committed BENCH_N sequence.
set -eu
cd "$(dirname "$0")/.."
dune build bench/main.exe
out=$(dune exec bench/main.exe -- baseline --jobs 2)
printf '%s\n' "$out"
path=$(printf '%s\n' "$out" | sed -n 's/^\(BENCH_[0-9]*\.json\) ok.*/\1/p')
[ -n "$path" ] || {
  echo "bench_smoke.sh: missing 'BENCH_N.json ok' marker" >&2
  exit 1
}
grep -q '"deterministic": true' "$path" || {
  echo "bench_smoke.sh: baseline not deterministic" >&2
  exit 1
}
rm -f "$path"
echo "bench_smoke.sh: OK ($path)"
