#!/bin/sh
# Fail when a public `val` in lib/core or lib/obs lacks an odoc
# comment.  Thin wrapper over the tmedb_lint rule `undocumented-val`
# (R6), which checks the real parsed signature instead of the awk
# heuristic this script used to carry — comment-above and
# comment-below styles are both recognised exactly as the compiler
# attaches them.
#
# Usage: scripts/docs_check.sh [dir ...]   (default: lib/core lib/obs)

set -eu
cd "$(dirname "$0")/.."

[ "$#" -gt 0 ] || set -- lib/core lib/obs

if dune exec bin/tmedb_lint.exe -- --only undocumented-val "$@"; then
  echo "docs_check: every public val in $* is documented"
else
  echo "docs_check: add odoc comments ((** ... *)) to the vals above" >&2
  exit 1
fi
