#!/bin/sh
# Fail when a public `val` in lib/core or lib/obs lacks an odoc
# comment.  A val counts as documented when a comment sits directly
# above it, or when a `(**` appears between its signature and the next
# item (`val`/`module`/`type`/`exception`/`end`) — the repo's default
# comment-below style.
#
# Usage: scripts/docs_check.sh [dir ...]   (default: lib/core lib/obs)

set -eu
cd "$(dirname "$0")/.."

dirs="${*:-lib/core lib/obs}"
status=0

for dir in $dirs; do
  for mli in "$dir"/*.mli; do
    [ -e "$mli" ] || continue
    bad=$(awk '
      { lines[NR] = $0 }
      END {
        for (i = 1; i <= NR; i++) {
          if (lines[i] !~ /^[[:space:]]*val /) continue
          documented = 0
          # Comment-above style: the closest non-blank line above ends
          # or opens a comment.
          for (j = i - 1; j >= 1; j--) {
            if (lines[j] ~ /^[[:space:]]*$/) continue
            if (lines[j] ~ /\*\)[[:space:]]*$/ || lines[j] ~ /\(\*\*/) documented = 1
            break
          }
          # Comment-below style: a (** before the next item.
          for (j = i + 1; j <= NR && !documented; j++) {
            if (lines[j] ~ /^[[:space:]]*(val|module|type|exception)[[:space:]]/) break
            if (lines[j] ~ /^[[:space:]]*end([[:space:]]|$)/) break
            if (lines[j] ~ /\(\*\*/) documented = 1
          }
          if (!documented) {
            name = lines[i]
            sub(/^[[:space:]]*val[[:space:]]+/, "", name)
            sub(/[[:space:]:].*/, "", name)
            print "  line " i ": val " name
          }
        }
      }
    ' "$mli")
    if [ -n "$bad" ]; then
      status=1
      printf '%s: undocumented val(s):\n%s\n' "$mli" "$bad"
    fi
  done
done

if [ "$status" -ne 0 ]; then
  echo "docs_check: add odoc comments ((** ... *)) to the vals above" >&2
else
  echo "docs_check: every public val in $dirs is documented"
fi
exit "$status"
