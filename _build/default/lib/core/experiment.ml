open Tmedb_prelude
open Tmedb_channel
open Tmedb_trace
open Tmedb_tveg

type algorithm = EEDCB | GREED | RAND | FR_EEDCB | FR_GREED | FR_RAND

let all_algorithms = [ EEDCB; GREED; RAND; FR_EEDCB; FR_GREED; FR_RAND ]

let algorithm_name = function
  | EEDCB -> "EEDCB"
  | GREED -> "GREED"
  | RAND -> "RAND"
  | FR_EEDCB -> "FR-EEDCB"
  | FR_GREED -> "FR-GREED"
  | FR_RAND -> "FR-RAND"

let algorithm_of_string s =
  match String.uppercase_ascii s with
  | "EEDCB" -> Ok EEDCB
  | "GREED" -> Ok GREED
  | "RAND" -> Ok RAND
  | "FR-EEDCB" | "FR_EEDCB" -> Ok FR_EEDCB
  | "FR-GREED" | "FR_GREED" -> Ok FR_GREED
  | "FR-RAND" | "FR_RAND" -> Ok FR_RAND
  | other -> Error (Printf.sprintf "unknown algorithm %S" other)

let is_fading = function
  | FR_EEDCB | FR_GREED | FR_RAND -> true
  | EEDCB | GREED | RAND -> false

type config = {
  seed : int;
  n : int;
  horizon : float;
  deadline : float;
  sources : int;
  mc_trials : int;
  steiner_level : int;
  dts_cap : int;
}

let default_config =
  {
    seed = 42;
    n = 20;
    horizon = 17000.;
    deadline = 2000.;
    sources = 3;
    mc_trials = 300;
    steiner_level = 2;
    dts_cap = 1500;
  }

let make_trace ?density_profile config ~n =
  let params = { (Synth.with_n Synth.default_params n) with
                 Synth.horizon = config.horizon;
                 density_profile } in
  Synth.generate (Rng.create (config.seed + (7919 * n))) params

let make_problem config ~trace ~channel ~source ~deadline =
  ignore config;
  let graph = Tveg.of_trace ~tau:0. trace in
  Problem.make ~graph ~phy:Phy.default ~channel ~source ~deadline ()

let choose_sources config ~trace ~deadline =
  let rng = Rng.create (config.seed lxor 0x5eed) in
  let n = Trace.n trace in
  let graph = Trace.to_tvg trace in
  let reachable src =
    Tmedb_tvg.Reachability.is_broadcastable graph ~tau:0. ~src ~t0:0. ~deadline
  in
  let rec draw k acc tries =
    if k = 0 then List.rev acc
    else begin
      let src = Rng.int rng n in
      if List.mem src acc then draw k acc tries
      else if reachable src || tries > 50 then draw (k - 1) (src :: acc) 0
      else draw k acc (tries + 1)
    end
  in
  draw (Stdlib.min config.sources n) [] 0

type run_result = {
  algorithm : algorithm;
  energy : float;
  feasible : bool;
  analytic_delivery : float;
  schedule : Schedule.t;
  unreached : int list;
}

let run_alg config ~trace ~source ~deadline ~rng algorithm =
  let channel = if is_fading algorithm then `Rayleigh else `Static in
  let problem = make_problem config ~trace ~channel ~source ~deadline in
  let cap_per_node = config.dts_cap in
  let schedule, report, unreached =
    match algorithm with
    | EEDCB ->
        let r = Eedcb.run ~level:config.steiner_level ~cap_per_node problem in
        (r.Eedcb.schedule, r.Eedcb.report, r.Eedcb.unreached)
    | GREED ->
        let r = Greedy.run ~cap_per_node problem in
        (r.Greedy.schedule, r.Greedy.report, r.Greedy.unreached)
    | RAND ->
        let r = Random_relay.run ~cap_per_node ~rng problem in
        (r.Random_relay.schedule, r.Random_relay.report, r.Random_relay.unreached)
    | FR_EEDCB | FR_GREED | FR_RAND ->
        let backbone =
          match algorithm with
          | FR_EEDCB -> `Eedcb
          | FR_GREED -> `Greedy
          | FR_RAND | EEDCB | GREED | RAND -> `Random
        in
        let r = Fr.run ~level:config.steiner_level ~cap_per_node ~rng ~backbone problem in
        (r.Fr.schedule, r.Fr.report, r.Fr.unreached)
  in
  {
    algorithm;
    energy = Metrics.normalized_energy problem schedule;
    feasible = report.Feasibility.feasible;
    analytic_delivery = Feasibility.delivery_ratio report;
    schedule;
    unreached;
  }

type series = { label : string; points : (float * float) list }

(* Mean result over the configured sources for one data point. *)
let mean_energy config ~trace ~deadline algorithm =
  let sources = choose_sources config ~trace ~deadline in
  let energies =
    List.mapi
      (fun k source ->
        let rng = Rng.create (config.seed + (1009 * k) + Hashtbl.hash (algorithm_name algorithm)) in
        (run_alg config ~trace ~source ~deadline ~rng algorithm).energy)
      sources
  in
  Stats.mean (Array.of_list energies)

let fig4 ?(config = default_config) ~variant ~deadlines ~ns () =
  let algorithm = match variant with `Static -> EEDCB | `Fading -> FR_EEDCB in
  List.map
    (fun n ->
      let trace = make_trace config ~n in
      let points =
        List.map (fun t -> (t, mean_energy config ~trace ~deadline:t algorithm)) deadlines
      in
      { label = Printf.sprintf "%s N=%d" (algorithm_name algorithm) n; points })
    ns

let fig5 ?(config = default_config) ~variant ~deadlines () =
  let algorithms =
    match variant with
    | `Static -> [ EEDCB; GREED; RAND ]
    | `Fading -> [ FR_EEDCB; FR_GREED; FR_RAND ]
  in
  let trace = make_trace config ~n:config.n in
  List.map
    (fun algorithm ->
      let points =
        List.map (fun t -> (t, mean_energy config ~trace ~deadline:t algorithm)) deadlines
      in
      { label = algorithm_name algorithm; points })
    algorithms

let fig6 ?(config = default_config) ~ns () =
  let per_algorithm = Hashtbl.create 8 in
  let note alg kind x y =
    let key = (algorithm_name alg, kind) in
    let old = Option.value ~default:[] (Hashtbl.find_opt per_algorithm key) in
    Hashtbl.replace per_algorithm key ((x, y) :: old)
  in
  List.iter
    (fun n ->
      let trace = make_trace config ~n in
      let deadline = config.deadline in
      let sources = choose_sources config ~trace ~deadline in
      List.iter
        (fun algorithm ->
          let energies = ref [] and deliveries = ref [] in
          List.iteri
            (fun k source ->
              let rng =
                Rng.create (config.seed + (1009 * k) + Hashtbl.hash (algorithm_name algorithm))
              in
              let result = run_alg config ~trace ~source ~deadline ~rng algorithm in
              (* Delivery is evaluated in the fading environment
                 regardless of the design channel (Fig. 6). *)
              let problem =
                make_problem config ~trace ~channel:`Rayleigh ~source ~deadline
              in
              let sim =
                Simulate.run ~trials:config.mc_trials ~rng ~eval_channel:`Rayleigh problem
                  result.schedule
              in
              energies := result.energy :: !energies;
              deliveries := sim.Simulate.delivery_ratio :: !deliveries)
            sources;
          note algorithm `Energy (float_of_int n) (Stats.mean (Array.of_list !energies));
          note algorithm `Delivery (float_of_int n) (Stats.mean (Array.of_list !deliveries)))
        all_algorithms)
    ns;
  let series kind =
    List.map
      (fun alg ->
        let pts =
          Option.value ~default:[] (Hashtbl.find_opt per_algorithm (algorithm_name alg, kind))
        in
        { label = algorithm_name alg; points = List.sort compare pts })
      all_algorithms
  in
  (series `Energy, series `Delivery)

let fig7 ?(config = default_config) ~variant () =
  let algorithms =
    match variant with
    | `Static -> [ EEDCB; GREED; RAND ]
    | `Fading -> [ FR_EEDCB; FR_GREED; FR_RAND ]
  in
  (* Ramp bounds scale with the horizon so reduced-scale configs keep
     the Fig. 7 shape: density low early, rising to full by ~half. *)
  let ramp_lo = 0.29 *. config.horizon and ramp_hi = 0.47 *. config.horizon in
  let profile = Synth.ramp_profile ~t0:ramp_lo ~t1:ramp_hi ~low:0.25 in
  let trace = make_trace ~density_profile:profile config ~n:config.n in
  let window_starts =
    (* The paper samples every 500 s over [5000, 15000] with a 17000 s
       horizon; keep that on the default config and shrink otherwise.
       Every window must fit a full broadcast: t0 + deadline <= horizon. *)
    let first = ramp_lo in
    let last = config.horizon -. config.deadline in
    let rec build t acc =
      if t > last +. 1e-9 then List.rev acc else build (t +. 500.) (t :: acc)
    in
    build first []
  in
  let graph = Tveg.of_trace ~tau:0. trace in
  let degree =
    {
      label = "avg degree";
      points =
        List.map
          (fun t0 ->
            (t0, Tveg.average_degree_over graph ~window:(Interval.make ~lo:t0 ~hi:(t0 +. 500.))))
          window_starts;
    }
  in
  let energy_series =
    List.map
      (fun algorithm ->
        let points =
          List.map
            (fun t0 ->
              let hi = Float.min config.horizon (t0 +. config.deadline) in
              let sub = Trace.restrict trace ~span:(Interval.make ~lo:t0 ~hi) in
              (t0, mean_energy config ~trace:sub ~deadline:hi algorithm))
            window_starts
        in
        { label = algorithm_name algorithm; points })
      algorithms
  in
  (energy_series, degree)

let print_series ~title ~xlabel series =
  Printf.printf "\n== %s ==\n" title;
  match series with
  | [] -> Printf.printf "(no series)\n"
  | first :: _ ->
      let xs = List.map fst first.points in
      Printf.printf "%-12s" xlabel;
      List.iter (fun s -> Printf.printf " %16s" s.label) series;
      print_newline ();
      List.iteri
        (fun row x ->
          Printf.printf "%-12g" x;
          List.iter
            (fun s ->
              match List.nth_opt s.points row with
              | Some (_, y) -> Printf.printf " %16.6g" y
              | None -> Printf.printf " %16s" "-")
            series;
          print_newline ())
        xs;
      flush stdout
