(** EEDCB — energy-efficient delay-constrained broadcast (paper Section
    VI-A): DTS → auxiliary graph → approximate directed Steiner tree →
    schedule.

    Under a static design channel this is the paper's TMEDB-S
    algorithm with approximation ratio O(N^ε); under a fading design
    channel the same pipeline computes the FR-EEDCB broadcast backbone
    (relays and times) using single-hop ε-costs as edge weights. *)

type result = {
  schedule : Schedule.t;
  report : Feasibility.report;
  unreached : int list;
      (** Nodes whose auxiliary-graph terminal the Steiner tree could
          not cover (journey-unreachable by the deadline). *)
  tree_cost : float;  (** Steiner tree cost after pruning. *)
  aux_vertices : int;
  aux_edges : int;
  dts_points : int;
}

val run : ?level:int -> ?cap_per_node:int -> Problem.t -> result
(** [level] is the recursive-greedy level (default 2; level 1 is the
    shortest-path-tree ablation). *)

val schedule_only : ?level:int -> ?cap_per_node:int -> Problem.t -> Schedule.t
(** Convenience accessor skipping the feasibility report. *)
