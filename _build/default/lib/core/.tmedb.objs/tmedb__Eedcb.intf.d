lib/core/eedcb.mli: Feasibility Problem Schedule
