lib/core/robustness.ml: Eedcb Feasibility List Nondet Problem Schedule Tmedb_tveg Tveg
