lib/core/feasibility.mli: Format Problem Schedule
