lib/core/feasibility.ml: Array Ed_function Float Format List Phy Problem Queue Schedule Tmedb_channel Tmedb_tveg Tveg
