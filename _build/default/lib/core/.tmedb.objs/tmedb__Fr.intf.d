lib/core/fr.mli: Feasibility Problem Rng Schedule Tmedb_prelude
