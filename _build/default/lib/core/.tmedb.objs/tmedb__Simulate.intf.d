lib/core/simulate.mli: Problem Rng Schedule Tmedb_prelude Tmedb_tveg Tveg
