lib/core/static_bip.mli: Feasibility Problem Schedule
