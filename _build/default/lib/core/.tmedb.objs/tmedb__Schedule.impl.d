lib/core/schedule.ml: Array Buffer Float Format Fun Futil Int List Option Printf Scanf String Tmedb_prelude Tmedb_tveg
