lib/core/eedcb.ml: Array Aux_graph Digraph Dst Feasibility List Problem Schedule Tmedb_prelude Tmedb_steiner Tmedb_tveg Tveg
