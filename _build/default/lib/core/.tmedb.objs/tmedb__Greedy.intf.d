lib/core/greedy.mli: Feasibility Hashtbl Problem Schedule Tmedb_tveg
