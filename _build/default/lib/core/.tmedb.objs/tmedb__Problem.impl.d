lib/core/problem.ml: Dts Format Int Interval List Phy Printf Tmedb_channel Tmedb_prelude Tmedb_tveg Tmedb_tvg Tveg
