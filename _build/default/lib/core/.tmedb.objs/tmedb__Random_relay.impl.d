lib/core/random_relay.ml: Array Feasibility Float Greedy Hashtbl Int List Option Problem Rng Schedule Tmedb_prelude
