lib/core/simulate.ml: Array Dist Ed_function Float List Problem Queue Schedule Stats Tmedb_channel Tmedb_prelude Tmedb_tveg Tveg
