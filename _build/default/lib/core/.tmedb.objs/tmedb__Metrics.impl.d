lib/core/metrics.ml: Array Ed_function Feasibility Float Interval List Phy Problem Schedule Tmedb_channel Tmedb_prelude Tmedb_tveg Tveg
