lib/core/metrics.mli: Problem Schedule
