lib/core/greedy.ml: Array Dcs Dts Feasibility Float Hashtbl List Problem Schedule Tmedb_tveg Tveg
