lib/core/random_relay.mli: Feasibility Problem Rng Schedule Tmedb_prelude
