lib/core/aux_graph.mli: Digraph Dst Problem Schedule Tmedb_steiner Tmedb_tveg
