lib/core/interference.ml: Array Float Format List Problem Schedule Tmedb_tveg Tveg
