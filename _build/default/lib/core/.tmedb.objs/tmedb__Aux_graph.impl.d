lib/core/aux_graph.ml: Array Dcs Digraph Dst Dts Hashtbl List Problem Schedule Tmedb_steiner Tmedb_tveg Tveg
