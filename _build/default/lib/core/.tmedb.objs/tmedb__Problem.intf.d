lib/core/problem.mli: Dts Format Phy Tmedb_channel Tmedb_tveg Tveg
