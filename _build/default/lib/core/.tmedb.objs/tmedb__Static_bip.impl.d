lib/core/static_bip.ml: Array Feasibility Float Futil Interval List Phy Pqueue Problem Schedule Tmedb_channel Tmedb_prelude Tmedb_tveg Tveg
