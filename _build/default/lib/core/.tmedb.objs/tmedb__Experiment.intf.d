lib/core/experiment.mli: Problem Rng Schedule Tmedb_prelude Tmedb_trace Tmedb_tveg Trace
