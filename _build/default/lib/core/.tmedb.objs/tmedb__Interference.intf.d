lib/core/interference.mli: Format Problem Schedule
