lib/core/robustness.mli: Nondet Rng Schedule Tmedb_channel Tmedb_prelude Tmedb_tveg Tveg
