lib/core/schedule.mli: Format Tmedb_tveg
