open Tmedb_prelude

type result = {
  schedule : Schedule.t;
  report : Feasibility.report;
  unreached : int list;
  steps : int;
}

let run ?cap_per_node ~rng problem =
  let dts = Problem.dts ?cap_per_node problem in
  let n = Problem.n problem in
  let tau = Problem.tau problem in
  let informed_time = Array.make n None in
  informed_time.(problem.Problem.source) <- Some (Problem.span_start problem);
  let dcs_memo = Hashtbl.create 256 in
  let schedule = ref [] in
  let steps = ref 0 in
  let stalled = ref false in
  let uninformed_left () = Array.exists (fun t -> t = None) informed_time in
  while uninformed_left () && not !stalled do
    let cands = Greedy.candidates problem dts ~dcs_memo ~informed_time in
    (* Keep, per (relay, time), only the cheapest productive level:
       RAND pays the minimum useful cost. *)
    let cheapest = Hashtbl.create 64 in
    List.iter
      (fun c ->
        let key = (c.Greedy.relay, c.Greedy.time) in
        match Hashtbl.find_opt cheapest key with
        | Some c0 when c0.Greedy.cost <= c.Greedy.cost -> ()
        | Some _ | None -> Hashtbl.replace cheapest key c)
      cands;
    let per_relay = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ c ->
        let old = Option.value ~default:[] (Hashtbl.find_opt per_relay c.Greedy.relay) in
        Hashtbl.replace per_relay c.Greedy.relay (c :: old))
      cheapest;
    let relays = Hashtbl.fold (fun r _ acc -> r :: acc) per_relay [] in
    match relays with
    | [] -> stalled := true
    | _ ->
        let relay = Rng.pick_list rng (List.sort Int.compare relays) in
        let opportunities = Hashtbl.find per_relay relay in
        let chosen =
          Rng.pick_list rng
            (List.sort (fun a b -> Float.compare a.Greedy.time b.Greedy.time) opportunities)
        in
        incr steps;
        schedule :=
          { Schedule.relay = chosen.Greedy.relay; time = chosen.Greedy.time; cost = chosen.Greedy.cost }
          :: !schedule;
        List.iter
          (fun j -> informed_time.(j) <- Some (chosen.Greedy.time +. tau))
          chosen.Greedy.informs
  done;
  let schedule = Schedule.of_transmissions !schedule in
  let report = Feasibility.check problem schedule in
  let unreached =
    List.filter (fun i -> informed_time.(i) = None) (List.init n (fun i -> i))
  in
  { schedule; report; unreached; steps = !steps }
