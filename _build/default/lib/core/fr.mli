(** Fading-resistant broadcast (paper Section VI-B): FR-EEDCB,
    FR-GREED and FR-RAND.

    Two stages: (1) *broadcast backbone selection* — run the chosen
    static-style algorithm with single-hop ε-costs as edge weights
    (the problem's design channel must be a fading model), fixing
    relays R and times T; (2) *optimal energy allocation* — solve the
    nonlinear program (14)–(17) for the costs W:

      min Σ w_k  s.t.  Π_{k covering j} φ(w_k) ≤ ε  for every node j,
      and the same for every relay restricted to transmissions before
      its own, with w ∈ [w_min, w_max].

    Constraints are handled in log space (sums of log φ ≤ log ε) with
    analytic gradients, a quadratic-penalty outer loop, and a final
    monotone bisection repair pass that guarantees the returned costs
    satisfy every satisfiable constraint. *)

open Tmedb_prelude

type backbone = [ `Eedcb | `Greedy | `Random ]

type allocation = {
  costs : float array;  (** Per transmission, in backbone time order. *)
  nlp_feasible : bool;  (** NLP reached feasibility before repair. *)
  repaired : bool;  (** The repair pass had to adjust costs. *)
  unsatisfiable : int list;
      (** Nodes no cost assignment can serve (not covered by any
          backbone transmission, or needing w > w_max). *)
  outer_iterations : int;
}

type result = {
  schedule : Schedule.t;  (** Backbone times/relays with NLP costs. *)
  report : Feasibility.report;
  backbone : Schedule.t;  (** The stage-1 schedule (ε-cost weights). *)
  allocation : allocation;
  unreached : int list;  (** Nodes the backbone never covers. *)
}

val allocate : Problem.t -> Schedule.t -> Schedule.t * allocation
(** Stage 2 alone: re-cost an arbitrary relay/time skeleton.
    @raise Invalid_argument when the problem's design channel is
    [`Static] (there is nothing to allocate: costs are thresholds). *)

val run :
  ?level:int -> ?cap_per_node:int -> ?rng:Rng.t -> backbone:backbone -> Problem.t -> result
(** [rng] is required (and only used) for the [`Random] backbone. *)
