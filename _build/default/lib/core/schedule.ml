open Tmedb_prelude

type transmission = { relay : int; time : float; cost : float }
type t = transmission list (* sorted by (time, relay, cost) *)

let compare_tx a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c
  else begin
    let c = Int.compare a.relay b.relay in
    if c <> 0 then c else Float.compare a.cost b.cost
  end

let of_transmissions txs =
  List.iter
    (fun tx ->
      if tx.relay < 0 then invalid_arg "Schedule.of_transmissions: negative relay id";
      if tx.cost < 0. || Float.is_nan tx.cost then
        invalid_arg "Schedule.of_transmissions: negative cost")
    txs;
  List.sort compare_tx txs

let empty = []
let transmissions t = t
let relays t = List.map (fun tx -> tx.relay) t
let times t = List.map (fun tx -> tx.time) t
let costs t = List.map (fun tx -> tx.cost) t
let num_transmissions = List.length
let total_cost t = Futil.kahan_sum (Array.of_list (costs t))

let latest_time t =
  List.fold_left (fun acc tx -> Some (Float.max tx.time (Option.value ~default:tx.time acc))) None t

let add t tx = of_transmissions (tx :: t)

let map_costs t f =
  of_transmissions (List.mapi (fun k tx -> { tx with cost = f k tx }) t)

let normalize_et t dts ~informed_time =
  let move tx =
    match Tmedb_tveg.Dts.latest_at_or_before dts tx.relay tx.time with
    | None -> tx
    | Some interval_start -> (
        match informed_time tx.relay with
        | None -> { tx with time = interval_start }
        | Some informed -> { tx with time = Float.max interval_start informed })
  in
  of_transmissions (List.map move t)

let equal a b = List.equal (fun x y -> compare_tx x y = 0) a b

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# tmedb-schedule relay,time,cost\n";
  List.iter
    (fun tx ->
      Buffer.add_string buf (Printf.sprintf "%d,%.17g,%.17g\n" tx.relay tx.time tx.cost))
    t;
  Buffer.contents buf

let of_csv text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (of_transmissions acc)
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || (String.length line > 0 && line.[0] = '#') then go (lineno + 1) acc rest
        else begin
          match Scanf.sscanf line "%d,%f,%f" (fun relay time cost -> { relay; time; cost }) with
          | tx -> go (lineno + 1) (tx :: acc) rest
          | exception (Scanf.Scan_failure msg | Failure msg | Invalid_argument msg) ->
              Error (Printf.sprintf "line %d: %s" lineno msg)
          | exception End_of_file -> Error (Printf.sprintf "line %d: truncated record" lineno)
        end)
  in
  match go 1 [] lines with
  | Ok t -> Ok t
  | Error _ as e -> e
  | exception Invalid_argument msg -> Error msg

let save t ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_csv t))

let load ~path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_csv (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> Error msg

let pp_transmission ppf tx =
  Format.fprintf ppf "(relay=%d t=%g w=%.3e)" tx.relay tx.time tx.cost

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule (%d txs, cost %.3e):@,%a@]" (num_transmissions t)
    (total_cost t)
    (Format.pp_print_list pp_transmission)
    t
