open Tmedb_prelude
open Tmedb_channel
open Tmedb_tveg

let normalized_energy (problem : Problem.t) schedule =
  Phy.normalized_energy problem.Problem.phy (Schedule.total_cost schedule)

let analytic_delivery_ratio problem schedule =
  Feasibility.delivery_ratio (Feasibility.check problem schedule)

let broadcast_latency problem schedule =
  let report = Feasibility.check problem schedule in
  if not report.Feasibility.all_informed then None
  else begin
    let latest =
      Array.fold_left
        (fun acc t -> match t with Some x -> Float.max acc x | None -> acc)
        neg_infinity report.Feasibility.informed_time
    in
    Some (latest -. Problem.span_start problem)
  end

(* Best per-watt log-failure efficiency of the channel at parameter β:
   sup_w −ln φ(w) / w over the cost set, found on a log-spaced grid
   (the objective is smooth and single-peaked for our ED-functions). *)
let best_efficiency (problem : Problem.t) ~beta =
  let phy = problem.Problem.phy in
  let ed = function
    | `Rayleigh -> Ed_function.rayleigh ~beta
    | `Nakagami m -> Ed_function.nakagami ~beta ~m
    | `Lognormal sigma -> Ed_function.lognormal ~beta ~sigma
    | `Static -> assert false
  in
  let ed = ed problem.Problem.channel in
  let lo = Float.max (beta *. 1e-3) (Float.max phy.Phy.w_min 1e-300) in
  let hi = phy.Phy.w_max in
  if lo >= hi then 0.
  else begin
    let best = ref 0. in
    let steps = 400 in
    for k = 0 to steps do
      let w = lo *. ((hi /. lo) ** (float_of_int k /. float_of_int steps)) in
      let phi = Ed_function.failure_prob ed ~w in
      if phi > 0. && phi < 1. then best := Float.max !best (-.Float.log phi /. w)
    done;
    !best
  end

let energy_lower_bound (problem : Problem.t) =
  let g = problem.Problem.graph in
  let phy = problem.Problem.phy in
  let n = Problem.n problem in
  if n <= 1 then 0.
  else begin
    let deadline = problem.Problem.deadline in
    (* Smallest β (closest-ever approach) per node, over contacts that
       can host a transmission completing by the deadline. *)
    let beta_min = Array.make n Float.infinity in
    let adjacent_to_source = Array.make n false in
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        List.iter
          (fun l ->
            if l.Tveg.iv.Interval.lo +. Tveg.tau g <= deadline then begin
              let beta = Phy.beta phy ~dist:l.Tveg.dist in
              beta_min.(i) <- Float.min beta_min.(i) beta;
              beta_min.(j) <- Float.min beta_min.(j) beta;
              if i = problem.Problem.source then adjacent_to_source.(j) <- true;
              if j = problem.Problem.source then adjacent_to_source.(i) <- true
            end)
          (Tveg.links g i j)
      done
    done;
    let node_bound j =
      if j = problem.Problem.source then 0.
      else if not (Float.is_finite beta_min.(j)) then Float.infinity
      else begin
        match problem.Problem.channel with
        | `Static -> beta_min.(j)
        | `Rayleigh | `Nakagami _ | `Lognormal _ ->
            let eff = best_efficiency problem ~beta:beta_min.(j) in
            if eff > 0. then -.Float.log phy.Phy.eps /. eff else Float.infinity
      end
    in
    let max_single =
      List.fold_left
        (fun acc j -> Float.max acc (node_bound j))
        0.
        (Problem.non_source_nodes problem)
    in
    (* Additive refinement: the first node informed is informed by
       source transmissions alone (relays must be informed before they
       transmit), which cost at least the source's own single-node
       bound; a node never adjacent to the source needs a further,
       distinct transmission. *)
    let source_bound =
      let src = problem.Problem.source in
      if not (Float.is_finite beta_min.(src)) then 0.
      else begin
        match problem.Problem.channel with
        | `Static -> beta_min.(src)
        | `Rayleigh | `Nakagami _ | `Lognormal _ ->
            let eff = best_efficiency problem ~beta:beta_min.(src) in
            if eff > 0. then -.Float.log phy.Phy.eps /. eff else 0.
      end
    in
    let far_bound =
      List.fold_left
        (fun acc j -> if adjacent_to_source.(j) then acc else Float.max acc (node_bound j))
        0.
        (Problem.non_source_nodes problem)
    in
    Float.max max_single (source_bound +. far_bound)
  end
