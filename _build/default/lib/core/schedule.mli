(** Broadcast relay schedules: the S = [R, T, W] matrices of paper
    Section IV.

    A schedule is an ordered list of transmissions (relay, time, cost).
    A relay may appear several times; order is kept sorted by time with
    ties broken by relay id so that equal schedules compare equal. *)


type transmission = { relay : int; time : float; cost : float }
type t

val of_transmissions : transmission list -> t
(** Sorts by (time, relay, cost).  @raise Invalid_argument on negative
    cost or relay id. *)

val empty : t
val transmissions : t -> transmission list
val relays : t -> int list
(** R vector (with repetitions, in time order). *)

val times : t -> float list
val costs : t -> float list
val num_transmissions : t -> int
val total_cost : t -> float
(** The objective Σ w_k. *)

val latest_time : t -> float option
val add : t -> transmission -> t
val map_costs : t -> (int -> transmission -> float) -> t
(** New schedule with per-transmission costs rewritten (index is the
    position in time order); used by the FR energy allocation. *)

val normalize_et : t -> Tmedb_tveg.Dts.t -> informed_time:(int -> float option) -> t
(** ET-law normalisation (Prop. 5.1): move every transmission to the
    earliest equivalent instant — the later of (a) the start of its
    DTS interval and (b) the relay's informed time.  [informed_time]
    gives each relay's receive time ([None] = never, transmission kept
    as is). *)

val equal : t -> t -> bool

(** {1 Serialisation}

    One transmission per line: [relay,time,cost]; ['#'] lines are
    comments.  Round-trips exactly (floats printed with 17 significant
    digits). *)

val to_csv : t -> string
val of_csv : string -> (t, string) result
val save : t -> path:string -> unit
val load : path:string -> (t, string) result

val pp : Format.formatter -> t -> unit
val pp_transmission : Format.formatter -> transmission -> unit
