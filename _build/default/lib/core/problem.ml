open Tmedb_prelude
open Tmedb_channel
open Tmedb_tveg

type t = {
  graph : Tveg.t;
  phy : Phy.t;
  channel : Tveg.channel;
  source : int;
  deadline : float;
  budget : float option;
}

let make ?budget ~graph ~phy ~channel ~source ~deadline () =
  if source < 0 || source >= Tveg.n graph then invalid_arg "Problem.make: source out of range";
  let span = Tveg.span graph in
  if deadline <= span.Interval.lo || deadline > span.Interval.hi then
    invalid_arg "Problem.make: deadline outside the graph span";
  { graph; phy; channel; source; deadline; budget }

let n t = Tveg.n t.graph
let tau t = Tveg.tau t.graph
let span_start t = (Tveg.span t.graph).Interval.lo

let non_source_nodes t =
  List.filter (fun v -> v <> t.source) (List.init (n t) (fun i -> i))

let is_reachable t =
  Tmedb_tvg.Reachability.is_broadcastable (Tveg.to_tvg t.graph) ~tau:(tau t) ~src:t.source
    ~t0:(span_start t) ~deadline:t.deadline

let completion_lower_bound t =
  Tmedb_tvg.Reachability.broadcast_completion_time (Tveg.to_tvg t.graph) ~tau:(tau t)
    ~src:t.source ~t0:(span_start t)

let dts ?cap_per_node t = Dts.compute ?cap_per_node ~source:t.source t.graph ~deadline:t.deadline

let set_cover_gadget ?(phy = Phy.default) ~universe ~sets () =
  if universe <= 0 then invalid_arg "Problem.set_cover_gadget: empty universe";
  List.iter
    (List.iter (fun e ->
         if e < 0 || e >= universe then
           invalid_arg "Problem.set_cover_gadget: element outside the universe"))
    sets;
  let covered = List.sort_uniq Int.compare (List.concat sets) in
  if List.length covered <> universe then
    invalid_arg "Problem.set_cover_gadget: universe not covered by the union of sets";
  let num_sets = List.length sets in
  let n = 1 + num_sets + universe in
  let span = Interval.make ~lo:0. ~hi:3. in
  let d_source = 1. and d_element = 10. in
  let links = ref [] in
  (* Source adjacent to every set node during [0, 1). *)
  List.iteri
    (fun m _ ->
      links :=
        (0, 1 + m, { Tveg.iv = Interval.make ~lo:0. ~hi:1.; dist = d_source }) :: !links)
    sets;
  (* Set node m adjacent to its elements during [1, 2). *)
  List.iteri
    (fun m elements ->
      List.iter
        (fun e ->
          links :=
            ( 1 + m,
              1 + num_sets + e,
              { Tveg.iv = Interval.make ~lo:1. ~hi:2.; dist = d_element } )
            :: !links)
        elements)
    sets;
  let graph = Tveg.create ~n ~span ~tau:0. !links in
  let instance = make ~graph ~phy ~channel:`Static ~source:0 ~deadline:3. () in
  (instance, Phy.min_cost phy ~dist:d_source, Phy.min_cost phy ~dist:d_element)

let pp ppf t =
  Format.fprintf ppf "tmedb{%a src=%d T=%g channel=%s%s}" Tveg.pp t.graph t.source t.deadline
    (match t.channel with
    | `Static -> "static"
    | `Rayleigh -> "rayleigh"
    | `Nakagami m -> Printf.sprintf "nakagami(%g)" m
    | `Lognormal sigma -> Printf.sprintf "lognormal(%g)" sigma)
    (match t.budget with None -> "" | Some c -> Printf.sprintf " C=%g" c)
