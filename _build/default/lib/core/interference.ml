open Tmedb_tveg

type conflict =
  | Half_duplex of { node : int; time : float; other_relay : int }
  | Collision of { node : int; time : float; relays : int * int }

let conflict_time = function
  | Half_duplex { time; _ } -> time
  | Collision { time; _ } -> time

(* Two active windows [t, t+tau] overlap (closed intervals: equal
   instants under tau = 0 do overlap). *)
let windows_overlap ~tau t1 t2 = Float.abs (t1 -. t2) <= tau || Float.equal t1 t2

let check (problem : Problem.t) schedule =
  let g = problem.Problem.graph in
  let tau = Tveg.tau g in
  let n = Tveg.n g in
  let txs = Array.of_list (Schedule.transmissions schedule) in
  let conflicts = ref [] in
  let ntx = Array.length txs in
  for a = 0 to ntx - 2 do
    for b = a + 1 to ntx - 1 do
      let ta = txs.(a).Schedule.time and tb = txs.(b).Schedule.time in
      let ra = txs.(a).Schedule.relay and rb = txs.(b).Schedule.relay in
      if ra <> rb && windows_overlap ~tau ta tb then begin
        let t = Float.max ta tb in
        (* Half-duplex: either relay exposed to the other. *)
        if Tveg.rho_tau g ra rb (Float.min ta tb) then begin
          conflicts := Half_duplex { node = ra; time = ta; other_relay = rb } :: !conflicts;
          conflicts := Half_duplex { node = rb; time = tb; other_relay = ra } :: !conflicts
        end;
        (* Collisions at third parties exposed to both. *)
        for j = 0 to n - 1 do
          if j <> ra && j <> rb && Tveg.rho_tau g ra j ta && Tveg.rho_tau g rb j tb then
            conflicts := Collision { node = j; time = t; relays = (ra, rb) } :: !conflicts
        done
      end
    done
  done;
  List.sort (fun c1 c2 -> Float.compare (conflict_time c1) (conflict_time c2)) !conflicts

let is_interference_free problem schedule = check problem schedule = []

let pp_conflict ppf = function
  | Half_duplex { node; time; other_relay } ->
      Format.fprintf ppf "half-duplex: node %d transmits at t=%g while hearing node %d" node
        time other_relay
  | Collision { node; time; relays = (a, b) } ->
      Format.fprintf ppf "collision: node %d hears nodes %d and %d at t=%g" node a b time
