(** The two metrics of the paper's Section VII. *)

val normalized_energy : Problem.t -> Schedule.t -> float
(** Total scheduled cost Σ w normalised by noise·γ_th (the paper's
    "normalized energy consumption"); in m^α units under the static
    channel. *)

val analytic_delivery_ratio : Problem.t -> Schedule.t -> float
(** Fraction of nodes whose Eq.-6 uninformed probability reaches ε by
    the deadline, under the instance's design channel. *)

val broadcast_latency : Problem.t -> Schedule.t -> float option
(** Last informed time minus span start (analytic, design channel);
    [None] when somebody stays uninformed. *)

val energy_lower_bound : Problem.t -> float
(** A certified lower bound on the cost of any feasible schedule.

    Per node j, the cheapest conceivable way to inform it uses its
    best-ever link (smallest β over all contact opportunities).  Under
    the static channel that costs β outright; under a fading channel
    the cheapest accumulation of transmissions driving
    Π φ(w_i) ≤ ε spends at least −ln ε / max_w (−ln φ(w)/w) — the
    per-watt log-failure efficiency maximised over the cost set.

    The bound combines max_j LB_j with the additive refinement
    LB_source + max over nodes never adjacent to the source of LB_j
    (their covering transmission cannot be the source's).  Returns 0
    for a single-node instance, infinity when some node has no contact
    opportunity at all. *)
