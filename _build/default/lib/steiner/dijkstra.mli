(** Single- and multi-source shortest paths with non-negative weights,
    with warm restart for incrementally growing source sets (the
    tree-growing Steiner loop adds sources every round; re-relaxing
    only the improved region amortises to a few full passes). *)

type result = {
  dist : float array;  (** [infinity] for unreachable vertices. *)
  pred : int array;  (** Predecessor on a shortest path; -1 at sources and unreachable vertices. *)
}

val run : Digraph.t -> src:int -> result

val run_multi : Digraph.t -> sources:int list -> result
(** Shortest paths from a vertex set (all sources at distance 0).
    @raise Invalid_argument on an empty source list. *)

val refine : Digraph.t -> result -> new_sources:int list -> unit
(** Add sources at distance 0 to an existing result and re-relax in
    place.  Distances only decrease; vertices whose distance is
    unaffected are not revisited. *)

val path : result -> src:int -> dst:int -> int list option
(** Vertex sequence [src; ...; dst] on a shortest path, [None] when
    unreachable.  With multiple sources, [src] is ignored except as
    the stopping vertex of the predecessor walk — pass any source. *)

val path_edges : Digraph.t -> result -> src:int -> dst:int -> (int * int * float) list option
(** Same path as weighted edge triples (weights are the minimum
    parallel-edge weights along the predecessor chain). *)
