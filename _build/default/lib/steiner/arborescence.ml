type t = { n : int; root : int; parent_of : (int * float) option array }

let of_edges ~n ~root edges =
  if root < 0 || root >= n then Error "root out of range"
  else begin
    let parent_of = Array.make n None in
    let rec add = function
      | [] -> Ok ()
      | (u, v, w) :: rest ->
          if u < 0 || u >= n || v < 0 || v >= n then Error "vertex out of range"
          else if v = root then Error "edge re-parents the root"
          else begin
            match parent_of.(v) with
            | Some _ -> Error (Printf.sprintf "vertex %d has two parents" v)
            | None ->
                parent_of.(v) <- Some (u, w);
                add rest
          end
    in
    match add edges with
    | Error e -> Error e
    | Ok () ->
        (* Every member must reach the root without a cycle. *)
        let status = Array.make n `Unknown in
        status.(root) <- `Ok;
        let rec check v trail =
          match status.(v) with
          | `Ok -> Ok ()
          | `Visiting -> Error (Printf.sprintf "cycle through vertex %d" v)
          | `Unknown -> (
              match parent_of.(v) with
              | None -> Error (Printf.sprintf "vertex %d disconnected from root" v)
              | Some (p, _) -> (
                  status.(v) <- `Visiting;
                  match check p (v :: trail) with
                  | Ok () ->
                      status.(v) <- `Ok;
                      Ok ()
                  | Error e -> Error e))
        in
        let rec check_all v =
          if v >= n then Ok ()
          else if parent_of.(v) = None then check_all (v + 1)
          else begin
            match check v [] with Ok () -> check_all (v + 1) | Error e -> Error e
          end
        in
        (match check_all 0 with
        | Ok () -> Ok { n; root; parent_of }
        | Error e -> Error e)
  end

let root t = t.root
let cost t = Array.fold_left (fun acc p -> match p with Some (_, w) -> acc +. w | None -> acc) 0. t.parent_of
let mem t v = v = t.root || t.parent_of.(v) <> None

let vertices t =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    if mem t v then acc := v :: !acc
  done;
  !acc

let parent t v = if v < 0 || v >= t.n then None else t.parent_of.(v)

let depth t v =
  if not (mem t v) then None
  else begin
    let rec walk v acc = if v = t.root then acc else
      match t.parent_of.(v) with
      | Some (p, _) -> walk p (acc + 1)
      | None -> acc (* unreachable by invariant *)
    in
    Some (walk v 0)
  end

let spans t vs = List.for_all (mem t) vs

let topological_order t =
  let members = vertices t in
  let keyed = List.map (fun v -> (Option.value ~default:0 (depth t v), v)) members in
  List.map snd (List.sort compare keyed)

let edges t =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    match t.parent_of.(v) with Some (p, w) -> acc := (p, v, w) :: !acc | None -> ()
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "arborescence{root=%d members=%d cost=%g}" t.root
    (List.length (vertices t)) (cost t)
