(** Rooted out-arborescences, used to validate Steiner solutions and to
    walk broadcast trees in order.

    An arborescence over vertices [0..n-1] stores at most one parent
    per vertex; every member vertex must reach the root through parent
    links without cycles. *)

type t

val of_edges : n:int -> root:int -> (int * int * float) list -> (t, string) result
(** Builds from parent edges [(parent, child, weight)].  Fails with a
    description when a child has two parents, an edge re-parents the
    root, or a cycle/disconnected member exists. *)

val root : t -> int
val cost : t -> float
val mem : t -> int -> bool
(** The root and every child vertex are members. *)

val vertices : t -> int list
val parent : t -> int -> (int * float) option
val depth : t -> int -> int option
(** Hops to the root; [Some 0] for the root itself. *)

val spans : t -> int list -> bool
(** All the given vertices are members. *)

val topological_order : t -> int list
(** Root first, every parent before its children. *)

val edges : t -> (int * int * float) list
val pp : Format.formatter -> t -> unit
