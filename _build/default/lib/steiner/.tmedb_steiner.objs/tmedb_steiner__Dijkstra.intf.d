lib/steiner/dijkstra.mli: Digraph
