lib/steiner/dijkstra.ml: Array Digraph Float List Pqueue Tmedb_prelude
