lib/steiner/digraph.ml: Array Float Format List
