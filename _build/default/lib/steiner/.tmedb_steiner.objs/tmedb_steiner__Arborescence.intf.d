lib/steiner/arborescence.mli: Format
