lib/steiner/arborescence.ml: Array Format List Option Printf
