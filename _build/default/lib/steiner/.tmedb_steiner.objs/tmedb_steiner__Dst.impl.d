lib/steiner/dst.ml: Array Digraph Dijkstra Float Hashtbl Int List Set Stdlib
