lib/steiner/digraph.mli: Format
