lib/steiner/dst.mli: Digraph
