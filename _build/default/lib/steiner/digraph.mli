(** Immutable weighted digraphs in compressed-sparse-row form.

    The auxiliary graphs of paper Section VI-A are built once and then
    traversed heavily by Dijkstra and the Steiner solver; CSR keeps
    traversal allocation-free. *)

type t

val of_edges : n:int -> (int * int * float) list -> t
(** Parallel edges are kept (harmless for shortest paths: the cheaper
    one wins).  @raise Invalid_argument on out-of-range endpoints or
    negative weights. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val iter_succ : t -> int -> (int -> float -> unit) -> unit
(** [iter_succ g u f] calls [f v w] for every edge u→v of weight w. *)

val fold_succ : t -> int -> ('a -> int -> float -> 'a) -> 'a -> 'a
val out_degree : t -> int -> int
val reverse : t -> t
(** Transposed graph (weights preserved). *)

val edge_weight : t -> int -> int -> float option
(** Minimum weight among parallel u→v edges, if any. *)

val pp : Format.formatter -> t -> unit
