type t = { words : Bytes.t; n : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Bytes.make ((n + 7) / 8) '\000'; n }

let capacity t = t.n

let check t i op = if i < 0 || i >= t.n then invalid_arg ("Bitset." ^ op ^ ": out of range")

let set t i =
  check t i "set";
  let b = Bytes.get_uint8 t.words (i / 8) in
  Bytes.set_uint8 t.words (i / 8) (b lor (1 lsl (i mod 8)))

let clear t i =
  check t i "clear";
  let b = Bytes.get_uint8 t.words (i / 8) in
  Bytes.set_uint8 t.words (i / 8) (b land lnot (1 lsl (i mod 8)))

let mem t i =
  check t i "mem";
  Bytes.get_uint8 t.words (i / 8) land (1 lsl (i mod 8)) <> 0

let popcount8 =
  let table = Array.init 256 (fun i ->
      let rec count x = if x = 0 then 0 else (x land 1) + count (x lsr 1) in
      count i)
  in
  fun b -> table.(b)

let cardinal t =
  let total = ref 0 in
  for i = 0 to Bytes.length t.words - 1 do
    total := !total + popcount8 (Bytes.get_uint8 t.words i)
  done;
  !total

let is_empty t = cardinal t = 0
let copy t = { words = Bytes.copy t.words; n = t.n }

let same_capacity a b op = if a.n <> b.n then invalid_arg ("Bitset." ^ op ^ ": capacity mismatch")

let union_into ~dst src =
  same_capacity dst src "union_into";
  for i = 0 to Bytes.length dst.words - 1 do
    Bytes.set_uint8 dst.words i (Bytes.get_uint8 dst.words i lor Bytes.get_uint8 src.words i)
  done

let inter_cardinal a b =
  same_capacity a b "inter_cardinal";
  let total = ref 0 in
  for i = 0 to Bytes.length a.words - 1 do
    total := !total + popcount8 (Bytes.get_uint8 a.words i land Bytes.get_uint8 b.words i)
  done;
  !total

let diff_cardinal a b =
  same_capacity a b "diff_cardinal";
  let total = ref 0 in
  for i = 0 to Bytes.length a.words - 1 do
    total :=
      !total + popcount8 (Bytes.get_uint8 a.words i land lnot (Bytes.get_uint8 b.words i) land 0xff)
  done;
  !total

let subset a b = diff_cardinal a b = 0
let equal a b = a.n = b.n && Bytes.equal a.words b.words

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let of_list n l =
  let t = create n in
  List.iter (set t) l;
  t

let fill t =
  for i = 0 to t.n - 1 do
    set t i
  done
