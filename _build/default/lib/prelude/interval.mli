(** Half-open time intervals [lo, hi).

    All temporal structure in the TVG/TVEG layers — link presence,
    partitions (paper Def. 5.1), contacts — is expressed with these.
    Half-open intervals tile the time span without double-counting
    boundary instants. *)

type t = private { lo : float; hi : float }

val make : lo:float -> hi:float -> t
(** @raise Invalid_argument unless [lo < hi] and both are finite. *)

val make_opt : lo:float -> hi:float -> t option
(** [None] when the interval would be empty or invalid. *)

val length : t -> float

val mem : t -> float -> bool
(** [mem iv x] is [lo <= x < hi]. *)

val overlaps : t -> t -> bool
(** Non-empty intersection. *)

val touches : t -> t -> bool
(** Overlapping or sharing an endpoint (union would be one interval). *)

val inter : t -> t -> t option
val hull : t -> t -> t
(** Smallest interval containing both. *)

val shift : t -> float -> t
(** Translate both endpoints. *)

val contains : t -> t -> bool
(** [contains outer inner]. *)

val compare : t -> t -> int
(** Lexicographic on [(lo, hi)]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
