(** Mutable binary min-heap keyed by float priorities.

    Used by Dijkstra on the auxiliary graph and by the discrete-event
    broadcast simulator.  Stale-entry (lazy-deletion) usage is the
    caller's concern: [push] never updates an existing key. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** Insert a value with the given priority. *)

val peek : 'a t -> (float * 'a) option
(** Minimum-priority entry without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority entry. *)

val pop_exn : 'a t -> float * 'a
(** @raise Invalid_argument on an empty queue. *)

val clear : 'a t -> unit
val to_sorted_list : 'a t -> (float * 'a) list
(** Non-destructive: entries in ascending priority order. *)
