type t = { lo : float; hi : float }

let make ~lo ~hi =
  if not (Float.is_finite lo && Float.is_finite hi && lo < hi) then
    invalid_arg "Interval.make: need finite lo < hi";
  { lo; hi }

let make_opt ~lo ~hi =
  if Float.is_finite lo && Float.is_finite hi && lo < hi then Some { lo; hi } else None

let length { lo; hi } = hi -. lo
let mem { lo; hi } x = lo <= x && x < hi
let overlaps a b = a.lo < b.hi && b.lo < a.hi
let touches a b = a.lo <= b.hi && b.lo <= a.hi

let inter a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo < hi then Some { lo; hi } else None

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
let shift { lo; hi } dt = { lo = lo +. dt; hi = hi +. dt }
let contains outer inner = outer.lo <= inner.lo && inner.hi <= outer.hi

let compare a b =
  let c = Float.compare a.lo b.lo in
  if c <> 0 then c else Float.compare a.hi b.hi

let equal a b = compare a b = 0
let pp ppf { lo; hi } = Format.fprintf ppf "[%g, %g)" lo hi
let to_string iv = Format.asprintf "%a" pp iv
