type 'a entry = { prio : float; value : 'a }
type 'a t = { mutable data : 'a entry array; mutable size : int }

(* [capacity] is only a hint; storage is allocated lazily because an
   ['a entry array] needs a witness value. *)
let create ?capacity () =
  ignore capacity;
  { data = [||]; size = 0 }

let length q = q.size
let is_empty q = q.size = 0

let grow q entry =
  let cap = Array.length q.data in
  if q.size = cap then begin
    let ncap = Stdlib.max 16 (2 * cap) in
    let ndata = Array.make ncap entry in
    Array.blit q.data 0 ndata 0 q.size;
    q.data <- ndata
  end

let rec sift_up data i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if data.(i).prio < data.(parent).prio then begin
      let tmp = data.(i) in
      data.(i) <- data.(parent);
      data.(parent) <- tmp;
      sift_up data parent
    end
  end

let rec sift_down data size i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < size && data.(l).prio < data.(!smallest).prio then smallest := l;
  if r < size && data.(r).prio < data.(!smallest).prio then smallest := r;
  if !smallest <> i then begin
    let tmp = data.(i) in
    data.(i) <- data.(!smallest);
    data.(!smallest) <- tmp;
    sift_down data size !smallest
  end

let push q prio value =
  let entry = { prio; value } in
  grow q entry;
  q.data.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q.data (q.size - 1)

let peek q = if q.size = 0 then None else Some (q.data.(0).prio, q.data.(0).value)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      sift_down q.data q.size 0
    end;
    Some (top.prio, top.value)
  end

let pop_exn q =
  match pop q with Some x -> x | None -> invalid_arg "Pqueue.pop_exn: empty"

let clear q = q.size <- 0

let to_sorted_list q =
  let copy = { data = Array.sub q.data 0 q.size; size = q.size } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
