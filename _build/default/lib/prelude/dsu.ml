type t = { parent : int array; rank : int array; mutable classes : int }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0; classes = n }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let ra, rb = if t.rank.(ra) < t.rank.(rb) then (rb, ra) else (ra, rb) in
    t.parent.(rb) <- ra;
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
    t.classes <- t.classes - 1;
    true
  end

let same t a b = find t a = find t b
let count t = t.classes
