let uniform g ~lo ~hi =
  if hi <= lo then invalid_arg "Dist.uniform: hi <= lo";
  lo +. (Rng.unit_float g *. (hi -. lo))

(* 1 - U is in (0, 1], keeping log away from 0. *)
let exponential g ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate <= 0";
  -.log (1. -. Rng.unit_float g) /. rate

let pareto g ~xm ~alpha =
  if xm <= 0. || alpha <= 0. then invalid_arg "Dist.pareto: xm and alpha must be positive";
  xm /. ((1. -. Rng.unit_float g) ** (1. /. alpha))

let bounded_pareto g ~lo ~hi ~alpha =
  if not (0. < lo && lo < hi) then invalid_arg "Dist.bounded_pareto: need 0 < lo < hi";
  if alpha <= 0. then invalid_arg "Dist.bounded_pareto: alpha <= 0";
  let u = Rng.unit_float g in
  (* Inverse CDF: F(x) = (1 - (lo/x)^a) / (1 - (lo/hi)^a) on [lo, hi]. *)
  let tail = 1. -. ((lo /. hi) ** alpha) in
  lo /. ((1. -. (u *. tail)) ** (1. /. alpha))

let normal g ~mu ~sigma =
  let u1 = 1. -. Rng.unit_float g in
  let u2 = Rng.unit_float g in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let bernoulli g ~p =
  let p = Float.max 0. (Float.min 1. p) in
  Rng.unit_float g < p

let categorical g weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Dist.categorical: empty weights";
  let total = Array.fold_left ( +. ) 0. weights in
  if not (total > 0.) then invalid_arg "Dist.categorical: weights sum to 0";
  let x = Rng.unit_float g *. total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else scan (i + 1) acc
  in
  scan 0 0.
