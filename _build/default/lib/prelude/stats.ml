type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let require_nonempty xs op =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ op ^ ": empty input")

let mean xs =
  require_nonempty xs "mean";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  require_nonempty xs "variance";
  let n = Array.length xs in
  if n = 1 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let percentile xs p =
  require_nonempty xs "percentile";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = rank -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile xs 50.

let summarize xs =
  require_nonempty xs "summarize";
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    median = median xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%g sd=%g min=%g med=%g max=%g" s.count s.mean s.stddev s.min
    s.median s.max

module Online = struct
  type t = { mutable n : int; mutable mu : float; mutable m2 : float }

  let create () = { n = 0; mu = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mu in
    t.mu <- t.mu +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mu))

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mu
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
end

let histogram xs ~bins =
  require_nonempty xs "histogram";
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  let lo = Array.fold_left Float.min xs.(0) xs in
  let hi = Array.fold_left Float.max xs.(0) xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = Stdlib.max 0 (Stdlib.min (bins - 1) b) in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.init bins (fun b ->
      (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width), counts.(b)))

let linear_fit pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let fn = float_of_int n in
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0. pts in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0. pts in
  let sxx = Array.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
  let sxy = Array.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-300 then invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. fn in
  (slope, intercept)
