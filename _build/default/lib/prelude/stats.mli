(** Descriptive statistics for experiment outputs. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val mean : float array -> float
(** @raise Invalid_argument on empty input. *)

val variance : float array -> float
(** Unbiased sample variance (0 for a single observation). *)

val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100], linear interpolation between
    order statistics. *)

val median : float array -> float
val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

(** Streaming mean/variance (Welford), usable when the number of
    Monte-Carlo trials is decided adaptively. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end

val histogram : float array -> bins:int -> (float * float * int) array
(** Equal-width bins over the data range: [(lo, hi, count)] per bin. *)

val linear_fit : (float * float) array -> float * float
(** Least-squares [(slope, intercept)].
    @raise Invalid_argument with fewer than two points. *)
