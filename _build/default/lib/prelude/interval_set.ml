(* Invariant: sorted by [lo], pairwise disjoint, non-touching, non-empty. *)
type t = Interval.t list

let empty = []
let is_empty s = s = []
let single iv = [ iv ]

let of_list ivs =
  let sorted = List.sort Interval.compare ivs in
  let rec merge acc current rest =
    match rest with
    | [] -> List.rev (current :: acc)
    | iv :: tl ->
        if Interval.touches current iv then merge acc (Interval.hull current iv) tl
        else merge (current :: acc) iv tl
  in
  match sorted with [] -> [] | hd :: tl -> merge [] hd tl

let intervals s = s
let add s iv = of_list (iv :: s)
let union a b = of_list (a @ b)

let inter a b =
  (* Both lists sorted: standard sweep. *)
  let rec go a b acc =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | x :: xs, y :: ys -> (
        let acc =
          match Interval.inter x y with Some iv -> iv :: acc | None -> acc
        in
        match Float.compare x.Interval.hi y.Interval.hi with
        | c when c < 0 -> go xs b acc
        | c when c > 0 -> go a ys acc
        | _ -> go xs ys acc)
  in
  go a b []

let complement s ~span =
  let lo0 = span.Interval.lo and hi0 = span.Interval.hi in
  let clipped = inter s [ span ] in
  let rec go cursor rest acc =
    match rest with
    | [] ->
        let acc =
          match Interval.make_opt ~lo:cursor ~hi:hi0 with
          | Some iv -> iv :: acc
          | None -> acc
        in
        List.rev acc
    | iv :: tl ->
        let acc =
          match Interval.make_opt ~lo:cursor ~hi:iv.Interval.lo with
          | Some gap -> gap :: acc
          | None -> acc
        in
        go iv.Interval.hi tl acc
  in
  go lo0 clipped []

let diff a b =
  match a with
  | [] -> []
  | first :: _ ->
      let last = List.nth a (List.length a - 1) in
      let span = Interval.hull first last in
      inter a (complement b ~span)

let mem s x = List.exists (fun iv -> Interval.mem iv x) s
let total_length s = List.fold_left (fun acc iv -> acc +. Interval.length iv) 0. s
let cardinal = List.length
let covering s x = List.find_opt (fun iv -> Interval.mem iv x) s

let boundaries s =
  let pts = List.concat_map (fun iv -> [ iv.Interval.lo; iv.Interval.hi ]) s in
  List.sort_uniq Float.compare pts

let fold f s init = List.fold_left (fun acc iv -> f iv acc) init s
let iter f s = List.iter f s
let subset a b = is_empty (diff a b)
let equal a b = List.equal Interval.equal a b
let contains_interval s iv = List.exists (fun member -> Interval.contains member iv) s
let pp ppf s = Format.fprintf ppf "{%a}" (Format.pp_print_list Interval.pp) s
