type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4B7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let open Int64 in
  let result = mul (rotl (mul g.s1 5L) 7) 9L in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g =
  let state = ref (bits64 g) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let unit_float g =
  let x = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float x *. 0x1p-53

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the high bits to avoid modulo bias. *)
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
    let v = r mod bound in
    if r - v + (bound - 1) >= 0 then v else draw ()
  in
  draw ()

let float g bound =
  if not (bound > 0. && Float.is_finite bound) then
    invalid_arg "Rng.float: bound must be positive and finite";
  unit_float g *. bound

let bool g = Int64.logand (bits64 g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int g (Array.length a))

let pick_list g l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int g (List.length l))
