lib/prelude/rng.mli:
