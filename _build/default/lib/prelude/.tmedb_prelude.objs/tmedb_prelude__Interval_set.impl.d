lib/prelude/interval_set.ml: Float Format Interval List
