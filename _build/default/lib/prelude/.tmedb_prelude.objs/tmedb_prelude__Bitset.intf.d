lib/prelude/bitset.mli:
