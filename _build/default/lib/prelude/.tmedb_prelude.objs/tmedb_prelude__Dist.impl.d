lib/prelude/dist.ml: Array Float Rng
