lib/prelude/pqueue.ml: Array List Stdlib
