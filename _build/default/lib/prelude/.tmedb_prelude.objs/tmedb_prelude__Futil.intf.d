lib/prelude/futil.mli:
