lib/prelude/stats.mli: Format
