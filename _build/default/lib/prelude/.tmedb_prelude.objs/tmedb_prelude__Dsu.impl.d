lib/prelude/dsu.ml: Array
