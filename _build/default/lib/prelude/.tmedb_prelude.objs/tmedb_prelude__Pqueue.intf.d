lib/prelude/pqueue.mli:
