lib/prelude/interval.ml: Float Format
