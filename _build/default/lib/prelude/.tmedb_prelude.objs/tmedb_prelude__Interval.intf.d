lib/prelude/interval.mli: Format
