lib/prelude/interval_set.mli: Format Interval
