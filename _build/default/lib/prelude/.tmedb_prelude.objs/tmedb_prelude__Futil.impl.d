lib/prelude/futil.ml: Array Float
