lib/prelude/dsu.mli:
