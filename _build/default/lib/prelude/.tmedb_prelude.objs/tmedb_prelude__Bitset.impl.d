lib/prelude/bitset.ml: Array Bytes List
