lib/prelude/dist.mli: Rng
