(** Disjoint-set union (union-find) with path compression and union by
    rank.  Used to validate that extracted broadcast trees are acyclic
    and to cluster contact components in trace statistics. *)

type t

val create : int -> t
val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> bool
(** Merge the two classes; [false] if already merged. *)

val same : t -> int -> int -> bool
val count : t -> int
(** Number of disjoint classes. *)
