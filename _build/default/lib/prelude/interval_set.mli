(** Finite unions of disjoint half-open intervals, kept sorted and
    normalised (no empty members, no touching neighbours).

    This is the representation of the paper's deterministic presence
    function restricted to one edge: the set of times at which the edge
    exists.  Complement/intersection/union implement the partition
    algebra of Section V. *)

type t

val empty : t
val is_empty : t -> bool
val single : Interval.t -> t

val of_list : Interval.t list -> t
(** Normalises arbitrary (possibly overlapping, unsorted) intervals. *)

val intervals : t -> Interval.t list
(** Sorted disjoint members. *)

val add : t -> Interval.t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val complement : t -> span:Interval.t -> t
(** Times inside [span] not covered by the set. *)

val mem : t -> float -> bool
val total_length : t -> float
val cardinal : t -> int
(** Number of disjoint intervals. *)

val covering : t -> float -> Interval.t option
(** The member interval containing the given instant, if any. *)

val boundaries : t -> float list
(** Sorted endpoints of all member intervals (each endpoint once). *)

val fold : (Interval.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Interval.t -> unit) -> t -> unit
val subset : t -> t -> bool
(** [subset a b]: every instant of [a] lies in [b]. *)

val equal : t -> t -> bool
val contains_interval : t -> Interval.t -> bool
(** Whole interval covered by a single member (hence by the set). *)

val pp : Format.formatter -> t -> unit
