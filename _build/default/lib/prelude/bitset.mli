(** Fixed-capacity mutable bitsets over [0, n).

    Informed-node sets in broadcast algorithms and coverage sets in the
    Steiner solver are hot paths; this keeps them allocation-free. *)

type t

val create : int -> t
(** All bits clear.  @raise Invalid_argument on negative capacity. *)

val capacity : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool
val copy : t -> t
val union_into : dst:t -> t -> unit
(** [union_into ~dst src] ors [src] into [dst].  Capacities must match. *)

val inter_cardinal : t -> t -> int
val diff_cardinal : t -> t -> int
(** [diff_cardinal a b] counts bits set in [a] but not in [b]. *)

val subset : t -> t -> bool
val equal : t -> t -> bool
val iter : (int -> unit) -> t -> unit
val to_list : t -> int list
val of_list : int -> int list -> t
val fill : t -> unit
(** Set every bit. *)
