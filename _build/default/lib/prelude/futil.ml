let approx_eq ?(rel = 1e-9) ?(abs = 1e-9) a b =
  let diff = Float.abs (a -. b) in
  diff <= abs || diff <= rel *. Float.max (Float.abs a) (Float.abs b)

let clamp ~lo ~hi x = Float.max lo (Float.min hi x)

let linspace ~lo ~hi ~n =
  if n < 2 then invalid_arg "Futil.linspace: need n >= 2";
  let step = (hi -. lo) /. float_of_int (n - 1) in
  Array.init n (fun i -> if i = n - 1 then hi else lo +. (float_of_int i *. step))

let kahan_sum xs =
  let sum = ref 0. and comp = ref 0. in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !sum +. y in
      comp := t -. !sum -. y;
      sum := t)
    xs;
  !sum

let argmin xs =
  if Array.length xs = 0 then invalid_arg "Futil.argmin: empty array";
  let best = ref 0 in
  Array.iteri (fun i x -> if x < xs.(!best) then best := i) xs;
  !best

let argmax xs =
  if Array.length xs = 0 then invalid_arg "Futil.argmax: empty array";
  let best = ref 0 in
  Array.iteri (fun i x -> if x > xs.(!best) then best := i) xs;
  !best

let log1p_safe x =
  if x <= -1. then -1e300 else Float.log1p x

let db_to_linear db = 10. ** (db /. 10.)
let linear_to_db x = 10. *. log10 x
