(** Random-variate generation for the distributions used by the trace
    generators and the Monte-Carlo fading simulator. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform on [lo, hi).  @raise Invalid_argument if [hi <= lo]. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with parameter [rate] (mean [1/rate]).
    @raise Invalid_argument if [rate <= 0]. *)

val pareto : Rng.t -> xm:float -> alpha:float -> float
(** Pareto type I with scale [xm] and shape [alpha]. *)

val bounded_pareto : Rng.t -> lo:float -> hi:float -> alpha:float -> float
(** Pareto truncated to [lo, hi] by inverse-CDF sampling; the
    heavy-tailed inter-contact model of Chaintreau et al. *)

val normal : Rng.t -> mu:float -> sigma:float -> float
(** Gaussian via Box-Muller. *)

val bernoulli : Rng.t -> p:float -> bool
(** [true] with probability [p] (clamped to [0,1]). *)

val categorical : Rng.t -> float array -> int
(** Index drawn proportionally to the (non-negative) weights.
    @raise Invalid_argument if the weights are empty or sum to 0. *)
