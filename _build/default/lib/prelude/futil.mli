(** Small float utilities shared across the numeric code. *)

val approx_eq : ?rel:float -> ?abs:float -> float -> float -> bool
(** Relative-or-absolute tolerance comparison (default 1e-9 both). *)

val clamp : lo:float -> hi:float -> float -> float
val linspace : lo:float -> hi:float -> n:int -> float array
(** [n >= 2] evenly spaced points including both endpoints. *)

val kahan_sum : float array -> float
(** Compensated summation. *)

val argmin : float array -> int
(** Index of the smallest element.  @raise Invalid_argument on empty. *)

val argmax : float array -> int

val log1p_safe : float -> float
(** [log (1 + x)] accurate near zero, [-infinity] guarded to a large
    negative finite value for use inside objective functions. *)

val db_to_linear : float -> float
(** [10^(db/10)]. *)

val linear_to_db : float -> float
