(** Deterministic, splittable pseudo-random number generation.

    The implementation is xoshiro256** seeded through splitmix64, which
    gives reproducible streams independent of the OCaml stdlib [Random]
    state.  Every experiment in this repository threads an explicit [t]
    so that traces, schedules and Monte-Carlo runs are replayable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed.  Equal seeds
    yield equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split g] derives a new generator from [g], advancing [g].  The two
    streams are statistically independent; used to give sub-experiments
    their own stream without coupling their consumption. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform on [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float g bound] is uniform on [0, bound).  [bound] must be positive
    and finite. *)

val unit_float : t -> float
(** Uniform on [0, 1) with 53 bits of precision. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on
    an empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)
