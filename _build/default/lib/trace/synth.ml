open Tmedb_prelude

type params = {
  n : int;
  horizon : float;
  gap_lo : float;
  gap_hi : float;
  gap_alpha : float;
  duration_mean : float;
  dist_lo : float;
  dist_hi : float;
  sociability_spread : float;
  density_profile : (float -> float) option;
}

let default_params =
  {
    n = 20;
    horizon = 17000.;
    gap_lo = 120.;
    gap_hi = 6000.;
    gap_alpha = 0.45;
    duration_mean = 180.;
    dist_lo = 5.;
    dist_hi = 60.;
    sociability_spread = 0.3;
    density_profile = None;
  }

let with_n p n = { p with n }

let ramp_profile ~t0 ~t1 ~low t =
  if t <= t0 then low
  else if t >= t1 then 1.
  else low +. ((1. -. low) *. (t -. t0) /. (t1 -. t0))

let validate p =
  if p.n < 2 then invalid_arg "Synth.generate: need n >= 2";
  if p.horizon <= 0. then invalid_arg "Synth.generate: horizon <= 0";
  if not (0. < p.gap_lo && p.gap_lo < p.gap_hi) then invalid_arg "Synth.generate: bad gap bounds";
  if p.gap_alpha <= 0. then invalid_arg "Synth.generate: gap_alpha <= 0";
  if p.duration_mean <= 0. then invalid_arg "Synth.generate: duration_mean <= 0";
  if not (0. < p.dist_lo && p.dist_lo < p.dist_hi) then
    invalid_arg "Synth.generate: bad distance bounds";
  if p.sociability_spread < 0. || p.sociability_spread >= 1. then
    invalid_arg "Synth.generate: sociability_spread outside [0,1)"

(* One alternating renewal process for the pair (i, j).  The pair's
   sociability factor scales gap lengths down for social nodes. *)
let pair_process g p ~factor ~a ~b acc0 =
  let span_hi = p.horizon in
  let accept t =
    match p.density_profile with
    | None -> true
    | Some profile -> Dist.bernoulli g ~p:(Futil.clamp ~lo:0. ~hi:1. (profile t))
  in
  let rec step time acc =
    let gap = Dist.bounded_pareto g ~lo:p.gap_lo ~hi:p.gap_hi ~alpha:p.gap_alpha /. factor in
    let start = time +. gap in
    if start >= span_hi then acc
    else begin
      let duration = Float.max 1. (Dist.exponential g ~rate:(1. /. p.duration_mean)) in
      let stop = Float.min span_hi (start +. duration) in
      (* The initial phase may put a contact partly before t = 0: clip. *)
      let lo = Float.max 0. start in
      let acc =
        if stop > lo && accept lo then begin
          let dist = Dist.uniform g ~lo:p.dist_lo ~hi:p.dist_hi in
          Contact.make ~a ~b ~iv:(Interval.make ~lo ~hi:stop) ~dist :: acc
        end
        else acc
      in
      step stop acc
    end
  in
  (* A random initial phase avoids synchronised first contacts. *)
  step (-.Dist.uniform g ~lo:0. ~hi:p.gap_hi) acc0

let generate g p =
  validate p;
  let sociability =
    Array.init p.n (fun _ ->
        1. +. Dist.uniform g ~lo:(-.p.sociability_spread) ~hi:p.sociability_spread)
  in
  let contacts = ref [] in
  for a = 0 to p.n - 2 do
    for b = a + 1 to p.n - 1 do
      let factor = sociability.(a) *. sociability.(b) in
      contacts := pair_process g p ~factor ~a ~b !contacts
    done
  done;
  Trace.make ~n:p.n ~span:(Interval.make ~lo:0. ~hi:p.horizon) !contacts
