open Tmedb_prelude

type t = { a : int; b : int; iv : Interval.t; dist : float }

let make ~a ~b ~iv ~dist =
  if a < 0 || b < 0 then invalid_arg "Contact.make: negative node id";
  if a = b then invalid_arg "Contact.make: self-contact";
  if dist <= 0. then invalid_arg "Contact.make: non-positive distance";
  let a, b = if a < b then (a, b) else (b, a) in
  { a; b; iv; dist }

let duration t = Interval.length t.iv
let involves t v = t.a = v || t.b = v

let other_end t v =
  if t.a = v then t.b
  else if t.b = v then t.a
  else invalid_arg "Contact.other_end: node not an endpoint"

let compare_by_start x y =
  let c = Interval.compare x.iv y.iv in
  if c <> 0 then c else Stdlib.compare (x.a, x.b) (y.a, y.b)

let pp ppf t = Format.fprintf ppf "%d--%d %a d=%g" t.a t.b Interval.pp t.iv t.dist
