lib/trace/trace.ml: Array Buffer Contact Format Fun Hashtbl Interval List Option Printf Scanf Stats Stdlib String Tmedb_prelude Tmedb_tvg
