lib/trace/mobility.ml: Array Contact Dist Float Interval List Tmedb_prelude Trace
