lib/trace/trace.mli: Contact Format Interval Tmedb_prelude Tmedb_tvg
