lib/trace/mobility.mli: Rng Tmedb_prelude Trace
