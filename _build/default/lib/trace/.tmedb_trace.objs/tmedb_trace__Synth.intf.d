lib/trace/synth.mli: Rng Tmedb_prelude Trace
