lib/trace/contact.mli: Format Interval Tmedb_prelude
