lib/trace/synth.ml: Array Contact Dist Float Futil Interval Tmedb_prelude Trace
