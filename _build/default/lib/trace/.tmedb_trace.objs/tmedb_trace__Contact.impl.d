lib/trace/contact.ml: Format Interval Stdlib Tmedb_prelude
