open Tmedb_prelude

type params = {
  n : int;
  horizon : float;
  arena : float;
  v_min : float;
  v_max : float;
  pause_max : float;
  range : float;
  sample_dt : float;
}

let default_params =
  {
    n = 20;
    horizon = 17000.;
    arena = 300.;
    v_min = 0.5;
    v_max = 1.5;
    pause_max = 120.;
    range = 50.;
    sample_dt = 5.;
  }

let validate p =
  if p.n < 2 then invalid_arg "Mobility.generate: need n >= 2";
  if p.horizon <= 0. || p.arena <= 0. then invalid_arg "Mobility.generate: bad horizon/arena";
  if not (0. < p.v_min && p.v_min <= p.v_max) then invalid_arg "Mobility.generate: bad speeds";
  if p.pause_max < 0. then invalid_arg "Mobility.generate: negative pause";
  if p.range <= 0. || p.range >= p.arena then invalid_arg "Mobility.generate: bad range";
  if p.sample_dt <= 0. then invalid_arg "Mobility.generate: bad sample_dt"

(* A trajectory is a list of segments (t0, t1, (x0,y0), (x1,y1)); a
   pause is a segment with equal endpoints. *)
type segment = { t0 : float; t1 : float; x0 : float; y0 : float; x1 : float; y1 : float }

let trajectory g p =
  let rec extend t x y acc =
    if t >= p.horizon then List.rev acc
    else begin
      let tx = Dist.uniform g ~lo:0. ~hi:p.arena in
      let ty = Dist.uniform g ~lo:0. ~hi:p.arena in
      let speed = Dist.uniform g ~lo:p.v_min ~hi:p.v_max in
      let dist = Float.hypot (tx -. x) (ty -. y) in
      let travel = dist /. speed in
      let t_arrive = t +. travel in
      let move = { t0 = t; t1 = t_arrive; x0 = x; y0 = y; x1 = tx; y1 = ty } in
      let pause = if p.pause_max > 0. then Dist.uniform g ~lo:0. ~hi:p.pause_max else 0. in
      let rest = { t0 = t_arrive; t1 = t_arrive +. pause; x0 = tx; y0 = ty; x1 = tx; y1 = ty } in
      extend rest.t1 tx ty (rest :: move :: acc)
    end
  in
  let x = Dist.uniform g ~lo:0. ~hi:p.arena in
  let y = Dist.uniform g ~lo:0. ~hi:p.arena in
  extend 0. x y []

let position segments t =
  let rec find = function
    | [] -> None
    | s :: rest ->
        if t < s.t0 then None
        else if t <= s.t1 then begin
          let f = if s.t1 > s.t0 then (t -. s.t0) /. (s.t1 -. s.t0) else 0. in
          Some (s.x0 +. (f *. (s.x1 -. s.x0)), s.y0 +. (f *. (s.y1 -. s.y0)))
        end
        else find rest
    in
  find segments

let sample_positions g p =
  let steps = int_of_float (Float.ceil (p.horizon /. p.sample_dt)) + 1 in
  let trajectories = Array.init p.n (fun _ -> trajectory g p) in
  Array.init steps (fun k ->
      let t = Float.min p.horizon (float_of_int k *. p.sample_dt) in
      Array.map
        (fun segs ->
          match position segs t with
          | Some xy -> xy
          | None -> (
              (* Past the last waypoint: stay there. *)
              match List.rev segs with
              | [] -> (0., 0.)
              | last :: _ -> (last.x1, last.y1)))
        trajectories)

let positions_at g p t =
  let trajectories = Array.init p.n (fun _ -> trajectory g p) in
  Array.map
    (fun segs ->
      match position segs t with
      | Some xy -> xy
      | None -> ( match List.rev segs with [] -> (0., 0.) | last :: _ -> (last.x1, last.y1)))
    trajectories

let generate g p =
  validate p;
  let samples = sample_positions g p in
  let steps = Array.length samples in
  let contacts = ref [] in
  let distance k a b =
    let xa, ya = samples.(k).(a) and xb, yb = samples.(k).(b) in
    Float.hypot (xa -. xb) (ya -. yb)
  in
  for a = 0 to p.n - 2 do
    for b = a + 1 to p.n - 1 do
      (* Maximal runs of samples with distance < range. *)
      let run_start = ref None in
      let dist_sum = ref 0. in
      let dist_count = ref 0 in
      let flush k =
        match !run_start with
        | None -> ()
        | Some s ->
            let lo = float_of_int s *. p.sample_dt in
            let hi = Float.min p.horizon (float_of_int k *. p.sample_dt) in
            if hi > lo then begin
              let mean_dist = Float.max 1. (!dist_sum /. float_of_int !dist_count) in
              contacts :=
                Contact.make ~a ~b ~iv:(Interval.make ~lo ~hi) ~dist:mean_dist :: !contacts
            end;
            run_start := None;
            dist_sum := 0.;
            dist_count := 0
      in
      for k = 0 to steps - 1 do
        let d = distance k a b in
        if d < p.range then begin
          if !run_start = None then run_start := Some k;
          dist_sum := !dist_sum +. d;
          incr dist_count
        end
        else flush k
      done;
      flush steps
    done
  done;
  Trace.make ~n:p.n ~span:(Interval.make ~lo:0. ~hi:p.horizon) !contacts
