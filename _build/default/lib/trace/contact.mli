(** A single contact: two nodes within communication opportunity during
    a time interval, at a representative distance.

    This is the record layout of the Haggle-project iMote sightings
    (Chaintreau et al. [12]) that the paper's evaluation replays,
    extended with a distance so both channel models can derive their
    ED-function parameters. *)

open Tmedb_prelude

type t = private { a : int; b : int; iv : Interval.t; dist : float }

val make : a:int -> b:int -> iv:Interval.t -> dist:float -> t
(** Normalised so that [a < b].  @raise Invalid_argument on [a = b],
    negative ids, or non-positive distance. *)

val duration : t -> float
val involves : t -> int -> bool
val other_end : t -> int -> int
(** @raise Invalid_argument when the node is not an endpoint. *)

val compare_by_start : t -> t -> int
val pp : Format.formatter -> t -> unit
