(** Synthetic contact traces with Haggle-like statistics.

    The Haggle iMote experiments (Chaintreau et al. [12]) report
    heavy-tailed inter-contact times — approximately power-law over
    minutes-to-hours — and short exponential-like contact durations.
    Each node pair here runs an independent alternating renewal
    process: truncated-Pareto gaps, exponential contact durations,
    uniform contact distances, with per-node sociability factors adding
    the heterogeneity visible in the real traces.

    An optional density profile modulates contact arrival over absolute
    time (acceptance thinning), used to recreate the degree ramp-up of
    the paper's Fig. 7. *)

open Tmedb_prelude

type params = {
  n : int;
  horizon : float;  (** Span is [\[0, horizon\]]. *)
  gap_lo : float;  (** Truncated-Pareto inter-contact lower bound, s. *)
  gap_hi : float;  (** Upper bound, s. *)
  gap_alpha : float;  (** Pareto shape (Haggle fits ≈ 0.3–0.6). *)
  duration_mean : float;  (** Mean contact duration, s. *)
  dist_lo : float;  (** Contact distance range, m. *)
  dist_hi : float;
  sociability_spread : float;
      (** Per-node activity factor drawn uniformly from
          [1 − spread, 1 + spread]; 0 for homogeneous pairs. *)
  density_profile : (float -> float) option;
      (** Optional acceptance probability (values clamped to [0,1])
          applied to each candidate contact at its start time. *)
}

val default_params : params
(** 20 nodes over 17000 s (the paper's experiment length), gaps
    Pareto(120 s, 6000 s, α = 0.45), durations mean 180 s, distances
    uniform on [5 m, 60 m], spread 0.3, no profile. *)

val with_n : params -> int -> params
val generate : Rng.t -> params -> Trace.t
(** Deterministic in the generator state. *)

val ramp_profile : t0:float -> t1:float -> low:float -> float -> float
(** Piecewise-linear density: [low] before [t0], rising linearly to 1
    at [t1], 1 afterwards — Fig. 7's regime when composed as
    [Some (ramp_profile ~t0:5000. ~t1:8000. ~low:0.25)]. *)
