(** Random-waypoint mobility → distance-annotated contact traces.

    An alternative to {!Synth} when geometric consistency matters (a
    node near two others has the two others near each other): nodes
    move between uniform waypoints in a square arena, and a contact is
    a maximal run of samples during which two nodes stay within the
    radio range.  The contact distance is the time-average over the
    run, which is what the Rayleigh β of the whole contact should
    reflect under the paper's "τ small, channel constant over a
    transmission" assumption. *)

open Tmedb_prelude

type params = {
  n : int;
  horizon : float;
  arena : float;  (** Side of the square arena, m. *)
  v_min : float;  (** Speeds, m/s. *)
  v_max : float;
  pause_max : float;  (** Uniform pause at each waypoint, s. *)
  range : float;  (** Radio range, m. *)
  sample_dt : float;  (** Position sampling period, s. *)
}

val default_params : params
(** 20 nodes, 17000 s, 300 m arena, 0.5–1.5 m/s (pedestrian),
    pauses up to 120 s, 50 m range, 5 s sampling. *)

val generate : Rng.t -> params -> Trace.t

val positions_at : Rng.t -> params -> float -> (float * float) array
(** One draw of node positions at the given time (fresh trajectories;
    exposed for tests and visualisation). *)
