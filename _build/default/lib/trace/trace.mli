(** Contact traces: an ordered collection of contacts over a node set,
    with CSV round-tripping and the descriptive statistics used to
    validate synthetic traces against the Haggle measurements. *)

open Tmedb_prelude

type t

val make : n:int -> span:Interval.t -> Contact.t list -> t
(** @raise Invalid_argument if a contact references a node >= n or
    lies outside the span. *)

val n : t -> int
val span : t -> Interval.t
val contacts : t -> Contact.t list
(** Sorted by start time. *)

val num_contacts : t -> int
val restrict : t -> span:Interval.t -> t
(** Contacts clipped to the window (partially overlapping contacts are
    truncated; fully outside dropped). *)

val to_tvg : t -> Tmedb_tvg.Tvg.t
(** Presence graph forgetting distances. *)

(** {1 CSV}

    One contact per line: [a,b,t_start,t_end,dist] with floats in
    decimal notation; lines starting with ['#'] are comments.  The
    header comment carries [n] and the span. *)

val to_csv : t -> string
val of_csv : string -> (t, string) result
val save : t -> path:string -> unit
val load : path:string -> (t, string) result

(** {1 Statistics} *)

type stats = {
  num_contacts : int;
  mean_duration : float;
  median_duration : float;
  mean_inter_contact : float;  (** Over per-pair gaps between contacts. *)
  median_inter_contact : float;
  contacts_per_pair : float;
  pairs_with_contact : int;
  mean_degree : float;  (** Time-averaged over the span. *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
val pp : Format.formatter -> t -> unit
