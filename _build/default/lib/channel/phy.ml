open Tmedb_prelude

type t = {
  n0 : float;
  bandwidth : float;
  gamma_th_db : float;
  alpha : float;
  w_min : float;
  w_max : float;
  eps : float;
}

let gamma_th t = Futil.db_to_linear t.gamma_th_db
let noise_power t = t.n0 *. t.bandwidth
let min_cost t ~dist = noise_power t *. gamma_th t *. (dist ** t.alpha)
let beta = min_cost

let validate t =
  if t.n0 <= 0. || t.bandwidth <= 0. then invalid_arg "Phy.make: noise/bandwidth must be positive";
  if t.alpha <= 0. then invalid_arg "Phy.make: alpha must be positive";
  if t.w_min < 0. then invalid_arg "Phy.make: w_min < 0";
  if t.w_max <= t.w_min then invalid_arg "Phy.make: w_max <= w_min";
  if not (0. < t.eps && t.eps < 1.) then invalid_arg "Phy.make: eps outside (0,1)";
  t

let default =
  let base =
    {
      n0 = 4.32e-21;
      bandwidth = 1e6;
      gamma_th_db = 25.9;
      alpha = 2.;
      w_min = 0.;
      w_max = 0.;
      eps = 0.01;
    }
  in
  (* W large enough for a 250 m fading hop at error rate eps. *)
  let w_max =
    min_cost base ~dist:250. /. log (1. /. (1. -. base.eps))
  in
  validate { base with w_max }

let make ?(n0 = default.n0) ?(bandwidth = default.bandwidth) ?(gamma_th_db = default.gamma_th_db)
    ?(alpha = default.alpha) ?(w_min = default.w_min) ?(w_max = default.w_max)
    ?(eps = default.eps) () =
  validate { n0; bandwidth; gamma_th_db; alpha; w_min; w_max; eps }

let fading_reference_cost t ~dist = beta t ~dist /. log (1. /. (1. -. t.eps))
let normalized_energy t w = w /. (noise_power t *. gamma_th t)
let in_cost_set t w = t.w_min <= w && w <= t.w_max

let pp ppf t =
  Format.fprintf ppf
    "phy{N0=%g W/Hz, B=%g Hz, gamma=%g dB, alpha=%g, W=[%g, %g], eps=%g}" t.n0 t.bandwidth
    t.gamma_th_db t.alpha t.w_min t.w_max t.eps
