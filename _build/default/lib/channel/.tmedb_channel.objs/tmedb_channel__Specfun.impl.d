lib/channel/specfun.ml: Array Float
