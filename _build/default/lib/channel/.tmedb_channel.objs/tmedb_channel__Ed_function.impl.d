lib/channel/ed_function.ml: Array Float Format Phy Specfun
