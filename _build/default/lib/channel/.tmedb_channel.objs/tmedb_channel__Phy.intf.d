lib/channel/phy.mli: Format
