lib/channel/specfun.mli:
