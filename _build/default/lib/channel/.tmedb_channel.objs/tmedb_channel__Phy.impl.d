lib/channel/phy.ml: Format Futil Tmedb_prelude
