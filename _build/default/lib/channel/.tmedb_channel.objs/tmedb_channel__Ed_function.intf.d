lib/channel/ed_function.mli: Format Phy
