(** Special functions needed by the Nakagami-m ED-function. *)

val ln_gamma : float -> float
(** Natural log of Γ(x) for x > 0 (Lanczos approximation, ~15 digits). *)

val gammp : a:float -> x:float -> float
(** Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a) for
    [a > 0], [x >= 0]; series expansion for [x < a+1], continued
    fraction otherwise. *)

val gammq : a:float -> x:float -> float
(** Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x). *)

val erf : float -> float
(** Error function, via erf(x) = sgn(x)·P(1/2, x²). *)

val normal_cdf : float -> float
(** Standard normal CDF Φ(x) = (1 + erf(x/√2))/2, used by the
    log-normal shadowing ED-function. *)
