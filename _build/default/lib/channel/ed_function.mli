(** Energy-demand functions (paper Section III-B/C).

    An ED-function φ maps a transmit cost w to the probability that a
    single transmission over the edge *fails* at the given time.  All
    variants satisfy Property 3.1: non-increasing in w, φ(w) → 0 as
    w → ∞ when the edge is present, φ ≡ 1 when absent. *)

type t =
  | Absent  (** ρ(e,t) = 0: failure probability 1 at every cost. *)
  | Step of { w_th : float }
      (** Static channel (Eq. 2): fails iff w < w_th = N₀B·γ_th·d^α. *)
  | Rayleigh of { beta : float }
      (** Rayleigh fading (Eq. 5): φ(w) = 1 − exp(−β/w). *)
  | Nakagami of { beta : float; m : float }
      (** Nakagami-m fading (footnote 1 extension): |h|² ~ Γ(m, σ²/m),
          φ(w) = P(m, m·β/w) with P the regularized lower incomplete
          gamma.  [m = 1] coincides with Rayleigh. *)
  | Lognormal of { beta : float; sigma : float }
      (** Log-normal shadowing: received SNR log-normally distributed
          around the path-loss mean, φ(w) = Φ(ln(β/w)/σ) with Φ the
          standard normal CDF and σ the shadowing spread in nepers
          (σ_dB · ln 10 / 10).  φ(β) = 1/2. *)

val step : w_th:float -> t
(** @raise Invalid_argument on negative threshold. *)

val rayleigh : beta:float -> t
val nakagami : beta:float -> m:float -> t

val rician : beta:float -> k:float -> t
(** Rician-K fading via the standard Nakagami-m moment matching
    m = (K+1)²/(2K+1). *)

val lognormal : beta:float -> sigma:float -> t

val of_distance :
  Phy.t ->
  [ `Static | `Rayleigh | `Nakagami of float | `Lognormal of float ] ->
  dist:float ->
  t
(** Build the ED-function of an edge from its length under the given
    channel model. *)

val failure_prob : t -> w:float -> float
(** φ(w).  By convention φ(0) = 1 for every variant (footnote 2).
    @raise Invalid_argument on negative cost. *)

val success_prob : t -> w:float -> float

val cost_for_failure : t -> target:float -> float option
(** Least cost w with φ(w) ≤ [target] (unbounded search; the caller
    clamps against its cost set).  [None] when no finite cost reaches
    the target (absent edge, or target ≤ 0 under fading).
    @raise Invalid_argument unless target ∈ (0, 1]. *)

val satisfies_property_3_1 : t -> costs:float array -> bool
(** Monotonicity/limit spot-check over a cost grid; used by tests and
    assertions on user-supplied functions. *)

val pp : Format.formatter -> t -> unit
