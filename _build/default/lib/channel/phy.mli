(** Physical-layer parameters of the evaluation (paper Section VII).

    The decoding condition for the static channel is SNR = w·h/N₀B ≥
    γ_th with propagation gain h = d^{-α}; for the Rayleigh channel the
    failure probability is 1 − exp(−β/w) with β = N₀B·γ_th·d^{α}
    (Equations 1–5; N₀ in the paper stands for total noise power, which
    we expose as [noise_power] = density × bandwidth). *)

type t = {
  n0 : float;  (** Noise power density, W/Hz. *)
  bandwidth : float;  (** Hz (the paper's 1 Mbit/s data rate). *)
  gamma_th_db : float;  (** Decoding threshold, dB. *)
  alpha : float;  (** Path-loss exponent. *)
  w_min : float;  (** Lower bound of the cost set W, watts. *)
  w_max : float;  (** Upper bound of the cost set W, watts. *)
  eps : float;  (** Acceptable error rate ε. *)
}

val default : t
(** Paper values: N₀ = 4.32e-21 W/Hz, B = 1 MHz, γ_th = 25.9 dB,
    α = 2, ε = 0.01; W spans [0, w_for 250 m]. *)

val make :
  ?n0:float ->
  ?bandwidth:float ->
  ?gamma_th_db:float ->
  ?alpha:float ->
  ?w_min:float ->
  ?w_max:float ->
  ?eps:float ->
  unit ->
  t
(** [default] with overrides.  @raise Invalid_argument on non-positive
    bandwidth/threshold, [w_min < 0], [w_max <= w_min] or ε ∉ (0,1). *)

val gamma_th : t -> float
(** Linear decoding threshold. *)

val noise_power : t -> float
(** N₀·B, watts. *)

val min_cost : t -> dist:float -> float
(** Static channel: the minimum cost N₀B·γ_th/h for successful
    decoding over distance [dist] (Equation 2's threshold). *)

val beta : t -> dist:float -> float
(** Rayleigh ED-function parameter β = N₀B·γ_th·d^α (Equation 5).
    Numerically equal to [min_cost]; kept separate for clarity. *)

val fading_reference_cost : t -> dist:float -> float
(** w₀ = β / ln(1/(1−ε)): the cost making a single Rayleigh hop fail
    with probability exactly ε (Section VI-B backbone weights). *)

val normalized_energy : t -> float -> float
(** Energy divided by noise_power·γ_th (the paper's "normalized by the
    decoding threshold" metric); for the static channel this equals
    Σ d^α over scheduled transmissions, in m^α. *)

val in_cost_set : t -> float -> bool
val pp : Format.formatter -> t -> unit
