(** Box-constrained smooth minimisation by projected gradient descent
    with backtracking (Armijo) line search. *)

type options = {
  max_iter : int;
  grad_tol : float;  (** Stop when the projected gradient norm falls below. *)
  step_init : float;
  step_shrink : float;  (** Backtracking factor in (0,1). *)
  armijo : float;  (** Sufficient-decrease constant in (0,1). *)
}

val default_options : options

type result = {
  x : float array;
  f : float;
  iterations : int;
  converged : bool;  (** Projected-gradient criterion met. *)
}

val minimize :
  ?options:options ->
  f:(float array -> float) ->
  ?grad:(float array -> float array) ->
  lower:float array ->
  upper:float array ->
  x0:float array ->
  unit ->
  result
(** Gradient defaults to central differences.  [x0] is projected into
    the box before starting.  @raise Invalid_argument on dimension
    mismatch or an empty box. *)
