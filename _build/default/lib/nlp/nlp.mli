(** Nonlinear programs with inequality constraints and box bounds,
    solved by a quadratic-penalty sequence of box-constrained
    subproblems (the "existing methods" [19] the paper defers to for
    its Equations 14–17).

    minimise f(x)  subject to  g_i(x) <= 0,  lower <= x <= upper. *)

type constraint_fn = {
  g : float array -> float;  (** Feasible iff <= 0. *)
  g_grad : (float array -> float array) option;
  label : string;
}

type problem = {
  objective : float array -> float;
  objective_grad : (float array -> float array) option;
  constraints : constraint_fn list;
  lower : float array;
  upper : float array;
}

type options = {
  mu_init : float;  (** Initial penalty weight. *)
  mu_growth : float;  (** Multiplier per outer iteration (> 1). *)
  outer_iter : int;
  feas_tol : float;  (** Constraint violation tolerance. *)
  inner : Projgrad.options;
}

val default_options : options

type result = {
  x : float array;
  objective : float;
  max_violation : float;
  feasible : bool;  (** max_violation <= feas_tol. *)
  outer_iterations : int;
}

val solve : ?options:options -> problem -> x0:float array -> result

val max_violation : problem -> float array -> float
(** Largest positive constraint value (0 when feasible). *)
