lib/nlp/projgrad.mli:
