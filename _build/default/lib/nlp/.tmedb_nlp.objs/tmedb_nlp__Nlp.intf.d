lib/nlp/nlp.mli: Projgrad
