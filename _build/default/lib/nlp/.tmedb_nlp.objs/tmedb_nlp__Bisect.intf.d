lib/nlp/bisect.mli:
