lib/nlp/bisect.ml: Float
