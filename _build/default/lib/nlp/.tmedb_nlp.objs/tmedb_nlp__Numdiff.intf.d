lib/nlp/numdiff.mli:
