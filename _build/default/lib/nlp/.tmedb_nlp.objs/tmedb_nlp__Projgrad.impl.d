lib/nlp/projgrad.ml: Array Futil List Numdiff Tmedb_prelude
