lib/nlp/numdiff.ml: Array Float
