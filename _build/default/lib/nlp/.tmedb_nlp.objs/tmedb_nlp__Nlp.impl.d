lib/nlp/nlp.ml: Array Float List Numdiff Projgrad
