(** Numerical differentiation for objectives/constraints supplied
    without analytic gradients. *)

val gradient : ?h:float -> (float array -> float) -> float array -> float array
(** Central differences with per-coordinate step scaled to the
    coordinate's magnitude (default base step 1e-6). *)

val directional : ?h:float -> (float array -> float) -> float array -> dir:float array -> float
(** Directional derivative along [dir]. *)
