(** Scalar root/threshold finding on monotone functions. *)

val root : ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float option
(** A zero of a continuous function with [f lo] and [f hi] of opposite
    signs (or zero); [None] when the bracket is invalid. *)

val least_satisfying : ?tol:float -> ?max_iter:int -> (float -> bool) -> lo:float -> hi:float -> float option
(** Least x in [lo, hi] with [p x], assuming [p] monotone
    (false … false true … true); [None] if even [hi] fails. *)
