open Tmedb_prelude

type hop = { from_node : int; to_node : int; depart : float }
type t = hop list

let departure = function [] -> None | { depart; _ } :: _ -> Some depart

let arrival ~tau j =
  match List.rev j with [] -> None | { depart; _ } :: _ -> Some (depart +. tau)

let length = List.length

let nodes j =
  match j with
  | [] -> []
  | first :: _ ->
      let visited = first.from_node :: List.map (fun h -> h.to_node) j in
      List.fold_left (fun acc v -> if List.mem v acc then acc else v :: acc) [] visited
      |> List.rev

let is_valid g ~tau j =
  let rec check prev = function
    | [] -> true
    | hop :: rest ->
        let chained =
          match prev with
          | None -> true
          | Some p -> p.to_node = hop.from_node && hop.depart >= p.depart +. tau
        in
        chained
        && Tvg.rho_tau g ~tau hop.from_node hop.to_node hop.depart
        && check (Some hop) rest
  in
  let no_repeat =
    match j with
    | [] -> true
    | first :: _ ->
        let visited = first.from_node :: List.map (fun h -> h.to_node) j in
        List.length visited = List.length (List.sort_uniq Int.compare visited)
  in
  no_repeat && check None j

let is_non_stop ~tau j =
  let rec check = function
    | a :: (b :: _ as rest) -> Float.equal b.depart (a.depart +. tau) && check rest
    | _ -> true
  in
  check j

(* Earliest-arrival scan.  Each settled node relaxes its incident
   contact intervals: from a node reached at time [a], edge (i, j)
   present on [lo, hi) can be traversed departing at max(a, lo)
   provided the traversal fits before [hi]. *)
let earliest_scan g ~tau ~src ~t0 =
  let nn = Tvg.n g in
  if src < 0 || src >= nn then invalid_arg "Journey.earliest_arrival: src out of range";
  if tau < 0. then invalid_arg "Journey.earliest_arrival: negative tau";
  let arrivals = Array.make nn Float.infinity in
  let parent = Array.make nn None in
  let settled = Array.make nn false in
  let queue = Pqueue.create () in
  arrivals.(src) <- t0;
  Pqueue.push queue t0 src;
  let relax i a =
    for j = 0 to nn - 1 do
      if j <> i then
        Interval_set.iter
          (fun iv ->
            let lo = iv.Interval.lo and hi = iv.Interval.hi in
            let depart = Float.max a lo in
            if depart +. tau < hi then begin
              let arr = depart +. tau in
              if arr < arrivals.(j) then begin
                arrivals.(j) <- arr;
                parent.(j) <- Some { from_node = i; to_node = j; depart };
                Pqueue.push queue arr j
              end
            end)
          (Tvg.presence g i j)
    done
  in
  let rec drain () =
    match Pqueue.pop queue with
    | None -> ()
    | Some (a, i) ->
        if not settled.(i) then begin
          settled.(i) <- true;
          relax i a
        end;
        drain ()
  in
  drain ();
  (arrivals, parent)

let earliest_arrival g ~tau ~src ~t0 = fst (earliest_scan g ~tau ~src ~t0)

let foremost_journey g ~tau ~src ~t0 ~dst =
  let arrivals, parent = earliest_scan g ~tau ~src ~t0 in
  if Float.is_finite arrivals.(dst) then begin
    let rec walk v acc =
      if v = src then acc
      else
        match parent.(v) with
        | None -> acc
        | Some hop -> walk hop.from_node (hop :: acc)
    in
    Some (walk dst [])
  end
  else None

(* Hop-bounded earliest arrivals: the classic DP for shortest
   journeys.  arr.(h).(j) = earliest arrival at j in <= h hops. *)
let min_hop_scan g ~tau ~src ~t0 =
  let n = Tvg.n g in
  if src < 0 || src >= n then invalid_arg "Journey.min_hop_arrivals: src out of range";
  let arr = Array.make_matrix n n Float.infinity in
  let parent = Array.make_matrix n n None in
  arr.(0).(src) <- t0;
  for h = 1 to n - 1 do
    for j = 0 to n - 1 do
      arr.(h).(j) <- arr.(h - 1).(j);
      parent.(h).(j) <- None
    done;
    for i = 0 to n - 1 do
      if Float.is_finite arr.(h - 1).(i) then
        for j = 0 to n - 1 do
          if j <> i then
            Interval_set.iter
              (fun iv ->
                let lo = iv.Interval.lo and hi = iv.Interval.hi in
                let depart = Float.max arr.(h - 1).(i) lo in
                if depart +. tau < hi then begin
                  let a = depart +. tau in
                  if a < arr.(h).(j) then begin
                    arr.(h).(j) <- a;
                    parent.(h).(j) <- Some { from_node = i; to_node = j; depart }
                  end
                end)
              (Tvg.presence g i j)
        done
    done
  done;
  (arr, parent)

let min_hop_arrivals g ~tau ~src ~t0 = fst (min_hop_scan g ~tau ~src ~t0)

let shortest_journey g ~tau ~src ~t0 ~dst ~deadline =
  let n = Tvg.n g in
  let arr, parent = min_hop_scan g ~tau ~src ~t0 in
  let rec find_level h = if h >= n then None else if arr.(h).(dst) <= deadline then Some h else find_level (h + 1) in
  match find_level 0 with
  | None -> None
  | Some 0 -> Some [] (* dst = src *)
  | Some hops ->
      (* Walk parents downward; a level may repeat the previous level's
         value, in which case the hop was realised earlier. *)
      let rec walk h v acc =
        if h = 0 then acc
        else begin
          match parent.(h).(v) with
          | Some hop -> walk (h - 1) hop.from_node (hop :: acc)
          | None -> walk (h - 1) v acc
        end
      in
      Some (walk hops dst [])

let duration ~tau j =
  match (departure j, arrival ~tau j) with
  | Some d, Some a -> Some (a -. d)
  | None, _ | _, None -> None

let fastest_journey g ~tau ~src ~t0 ~dst =
  let n = Tvg.n g in
  if src < 0 || src >= n then invalid_arg "Journey.fastest_journey: src out of range";
  if dst = src then Some []
  else
  (* Candidate departures: t0 plus the start of every source contact
     at or after t0. *)
  let candidates = ref [ t0 ] in
  for j = 0 to n - 1 do
    if j <> src then
      Interval_set.iter
        (fun iv ->
          let c = Float.max t0 iv.Interval.lo in
          if Interval.mem iv c || Float.equal c iv.Interval.lo then candidates := c :: !candidates)
        (Tvg.presence g src j)
  done;
  let consider best c =
    match foremost_journey g ~tau ~src ~t0:c ~dst with
    | None -> best
    | Some j -> (
        match duration ~tau j with
        | None -> best (* dst = src: empty journey, duration 0 *)
        | Some d -> (
            match best with
            | Some (bd, _) when bd <= d -> best
            | Some _ | None -> Some (d, j)))
  in
  let best = List.fold_left consider None (List.sort_uniq Float.compare !candidates) in
  Option.map snd best

let pp ppf j =
  let pp_hop ppf h = Format.fprintf ppf "%d->%d@@%g" h.from_node h.to_node h.depart in
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp_hop)
    j
