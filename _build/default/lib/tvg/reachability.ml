open Tmedb_prelude

let reachable_set g ~tau ~src ~t0 ~deadline =
  let arrivals = Journey.earliest_arrival g ~tau ~src ~t0 in
  let set = Bitset.create (Tvg.n g) in
  Array.iteri (fun i a -> if a <= deadline then Bitset.set set i) arrivals;
  set

let is_broadcastable g ~tau ~src ~t0 ~deadline =
  Bitset.cardinal (reachable_set g ~tau ~src ~t0 ~deadline) = Tvg.n g

let reachability_matrix g ~tau ~t0 ~deadline =
  Array.init (Tvg.n g) (fun i ->
      let arrivals = Journey.earliest_arrival g ~tau ~src:i ~t0 in
      Array.map (fun a -> a <= deadline) arrivals)

let broadcast_completion_time g ~tau ~src ~t0 =
  let arrivals = Journey.earliest_arrival g ~tau ~src ~t0 in
  Array.fold_left Float.max t0 arrivals
