(** Deterministic time-varying graphs (paper Section III-A).

    A TVG is a node set [0..n-1], a time span, and for every unordered
    node pair a presence set: the union of intervals during which the
    edge exists (the deterministic presence function ρ).  The edge
    traversal latency ζ is the uniform constant τ, carried by the
    algorithms rather than the graph. *)

open Tmedb_prelude

type t

val create : n:int -> span:Interval.t -> t
(** Edgeless TVG.  @raise Invalid_argument if [n <= 0]. *)

val n : t -> int
val span : t -> Interval.t

val add_presence : t -> int -> int -> Interval.t -> t
(** Functional update: edge [i--j] additionally present during the
    interval.  @raise Invalid_argument on [i = j] or out-of-range ids. *)

val of_presences : n:int -> span:Interval.t -> (int * int * Interval.t) list -> t

val presence : t -> int -> int -> Interval_set.t
(** Presence set of the unordered pair (empty set for [i = j]). *)

val present : t -> int -> int -> float -> bool
(** ρ(e_ij, t) = 1. *)

val rho_tau : t -> tau:float -> int -> int -> float -> bool
(** Paper's ρ_τ: the edge is continuously present on [\[t, t+τ\]], i.e.
    a transmission started at [t] completes. *)

val neighbors_at : t -> tau:float -> int -> float -> int list
(** Nodes [j] with [rho_tau i j t], ascending. *)

val degree_at : t -> tau:float -> int -> float -> int

val edge_pairs : t -> (int * int) list
(** Unordered pairs with non-empty presence, [i < j]. *)

val pair_partition : t -> int -> int -> Partition.t
(** P^ad_{i,j}: boundaries where the edge appears/disappears. *)

val adjacent_partition : t -> int -> Partition.t
(** P^ad_i = ∪_j P^ad_{i,j} (Equation 9): within each interval the set
    of nodes connected to [i] is constant. *)

val all_adjacent_partitions : t -> Partition.t array

val average_degree_over : t -> window:Interval.t -> float
(** Time-averaged mean node degree over the window (Fig. 7(b)):
    (2 Σ_{i<j} |presence_ij ∩ window|) / (n |window|). *)

val restrict : t -> span:Interval.t -> t
(** Sub-TVG clipped to the given span (new time origin is kept
    absolute).  @raise Invalid_argument if the span is not contained in
    the original. *)

val pp : Format.formatter -> t -> unit
