(** Journeys in a TVG (paper Definition 3.1) and foremost-journey
    computation (Bui-Xuan, Ferreira, Jarry [8]).

    A journey is a sequence of hops [(i_l, j_l, t_l)] such that
    consecutive hops chain ([j_l = i_{l+1}]), each edge is continuously
    present during its traversal [\[t_l, t_l+τ\]], and departures are
    separated by at least τ. *)

type hop = { from_node : int; to_node : int; depart : float }
type t = hop list
(** Hops in order; the empty journey is the trivial journey at a node. *)

val departure : t -> float option
(** Starting time [t_1]. *)

val arrival : tau:float -> t -> float option
(** Ending time [t_k + τ]. *)

val length : t -> int
(** Topological length |J| (number of hops). *)

val nodes : t -> int list
(** All nodes visited, in order of first visit. *)

val is_valid : Tvg.t -> tau:float -> t -> bool
(** Checks the three conditions of Definition 3.1 plus no repeated node
    (the paper only considers circle-free journeys). *)

val is_non_stop : tau:float -> t -> bool
(** Every relay forwards immediately: [t_{l+1} = t_l + τ]. *)

val earliest_arrival : Tvg.t -> tau:float -> src:int -> t0:float -> float array
(** Foremost-journey (earliest-arrival) times from [src] when the
    packet originates at [t0]; [infinity] for unreachable nodes.
    [src] itself gets [t0].  Runs a Dijkstra-style scan over contact
    intervals. *)

val foremost_journey : Tvg.t -> tau:float -> src:int -> t0:float -> dst:int -> t option
(** A journey realising the earliest arrival at [dst], if reachable. *)

val min_hop_arrivals : Tvg.t -> tau:float -> src:int -> t0:float -> float array array
(** [a.(h).(j)]: earliest arrival at [j] using at most [h] hops
    (h ranging over 0..n-1); the hop-bounded dynamic program behind
    shortest journeys. *)

val shortest_journey :
  Tvg.t -> tau:float -> src:int -> t0:float -> dst:int -> deadline:float -> t option
(** A journey with the fewest hops among those arriving by [deadline]
    (Bui-Xuan et al.'s "shortest"); ties broken towards earlier
    arrival.  [None] when [dst] is unreachable by the deadline. *)

val fastest_journey : Tvg.t -> tau:float -> src:int -> t0:float -> dst:int -> t option
(** A journey minimising elapsed time (arrival − departure) over all
    departures at or after [t0] (Bui-Xuan et al.'s "fastest").
    Candidate departures are the starts of the source's contacts —
    delaying into a contact never shortens the elapsed time. *)

val duration : tau:float -> t -> float option
(** arrival − departure of a non-empty journey. *)

val pp : Format.formatter -> t -> unit
