lib/tvg/reachability.mli: Bitset Tmedb_prelude Tvg
