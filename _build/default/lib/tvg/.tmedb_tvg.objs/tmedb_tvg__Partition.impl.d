lib/tvg/partition.ml: Array Float Format Interval List Tmedb_prelude
