lib/tvg/partition.mli: Format Interval Tmedb_prelude
