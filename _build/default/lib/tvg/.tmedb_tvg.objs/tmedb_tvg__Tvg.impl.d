lib/tvg/tvg.ml: Array Format Interval Interval_set List Partition Tmedb_prelude
