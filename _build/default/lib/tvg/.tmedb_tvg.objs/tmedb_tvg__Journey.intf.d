lib/tvg/journey.mli: Format Tvg
