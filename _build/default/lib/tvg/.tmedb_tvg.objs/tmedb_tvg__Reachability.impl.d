lib/tvg/reachability.ml: Array Bitset Float Journey Tmedb_prelude Tvg
