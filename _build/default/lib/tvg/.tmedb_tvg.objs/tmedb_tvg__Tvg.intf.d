lib/tvg/tvg.mli: Format Interval Interval_set Partition Tmedb_prelude
