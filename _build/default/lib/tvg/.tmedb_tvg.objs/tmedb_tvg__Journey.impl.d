lib/tvg/journey.ml: Array Float Format Int Interval Interval_set List Option Pqueue Tmedb_prelude Tvg
