(** Temporal reachability (Whitbeck et al. [10], used here to pre-check
    TMEDB instance feasibility: condition (ii) of the problem requires
    every node to be journey-reachable from the source by the
    deadline). *)

open Tmedb_prelude

val reachable_set : Tvg.t -> tau:float -> src:int -> t0:float -> deadline:float -> Bitset.t
(** Nodes whose earliest arrival from [src] (packet born at [t0]) is at
    most [deadline]. *)

val is_broadcastable : Tvg.t -> tau:float -> src:int -> t0:float -> deadline:float -> bool
(** Every node reachable by the deadline. *)

val reachability_matrix : Tvg.t -> tau:float -> t0:float -> deadline:float -> bool array array
(** [m.(i).(j)]: j reachable from i.  Row [i] computed by one
    earliest-arrival scan. *)

val broadcast_completion_time : Tvg.t -> tau:float -> src:int -> t0:float -> float
(** Earliest time by which all nodes can have received a packet born at
    [t0] at [src] (infinity if some node is never reached): the lower
    bound that any feasible TMEDB deadline must exceed. *)
