open Tmedb_prelude

type t = { span : Interval.t; points : float array }

let make ~span pts =
  let lo = span.Interval.lo and hi = span.Interval.hi in
  let inside = List.filter (fun p -> lo <= p && p <= hi) pts in
  let all = List.sort_uniq Float.compare (lo :: hi :: inside) in
  { span; points = Array.of_list all }

let trivial ~span = make ~span []
let span t = t.span
let points t = t.points
let cardinal t = Array.length t.points - 1

let intervals t =
  let rec build i acc =
    if i >= Array.length t.points - 1 then List.rev acc
    else build (i + 1) (Interval.make ~lo:t.points.(i) ~hi:t.points.(i + 1) :: acc)
  in
  build 0 []

(* Binary search: largest index k with points.(k) <= x. *)
let locate t x =
  let n = Array.length t.points in
  if x < t.points.(0) || x >= t.points.(n - 1) then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.points.(mid) <= x then lo := mid else hi := mid
    done;
    Some !lo
  end

let interval_containing t x =
  match locate t x with
  | None -> None
  | Some k -> Some (Interval.make ~lo:t.points.(k) ~hi:t.points.(k + 1))

let start_of_interval t x =
  match locate t x with None -> None | Some k -> Some t.points.(k)

let combine a b =
  if not (Interval.equal a.span b.span) then invalid_arg "Partition.combine: span mismatch";
  make ~span:a.span (Array.to_list a.points @ Array.to_list b.points)

let combine_all ~span parts = List.fold_left combine (trivial ~span) parts

let refines a b =
  Array.for_all (fun p -> Array.exists (fun q -> Float.equal p q) a.points) b.points

let equal a b =
  Interval.equal a.span b.span
  && Array.length a.points = Array.length b.points
  && Array.for_all2 Float.equal a.points b.points

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    t.points
