(** Partitions of a time span (paper Definition 5.1).

    A partition of span [\[lo, hi\]] is a finite increasing sequence of
    time points [lo = t0 < t1 < ... < tm = hi]; its intervals are the
    half-open [\[tk, tk+1)].  Adjacent partitions, status partitions and
    discrete time partitions (paper Section V) are all values of this
    type; [combine] implements the ∪ of Equation (8). *)

open Tmedb_prelude

type t

val make : span:Interval.t -> float list -> t
(** Partition from interior (or boundary) points; the span endpoints
    are always included, duplicates and out-of-span points dropped. *)

val trivial : span:Interval.t -> t
(** The two-point partition {lo, hi}. *)

val span : t -> Interval.t
val points : t -> float array
(** The increasing sequence [t0 ... tm] (length = cardinal + 1... i.e.
    number of points). *)

val cardinal : t -> int
(** Number of intervals, i.e. [Array.length (points t) - 1]. *)

val intervals : t -> Interval.t list

val interval_containing : t -> float -> Interval.t option
(** The partition interval [\[tk, tk+1)] containing the instant (binary
    search); [None] outside the span (the final point [hi] belongs to
    no interval). *)

val start_of_interval : t -> float -> float option
(** Left endpoint [tk] of the interval containing the instant — the
    "earliest equivalent time" used by the ET-law (Prop. 5.1). *)

val combine : t -> t -> t
(** Union of point sets; both spans must coincide. *)

val combine_all : span:Interval.t -> t list -> t
val refines : t -> t -> bool
(** [refines a b]: every point of [b] is a point of [a]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
