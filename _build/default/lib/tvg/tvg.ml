open Tmedb_prelude

(* Presence sets are stored once per unordered pair in a flat upper
   triangle: index of (i, j) with i < j. *)
type t = { n : int; span : Interval.t; presence : Interval_set.t array }

let tri_index n i j =
  let i, j = if i < j then (i, j) else (j, i) in
  (i * (2 * n - i - 1) / 2) + (j - i - 1)

let create ~n ~span =
  if n <= 0 then invalid_arg "Tvg.create: need n > 0";
  { n; span; presence = Array.make (n * (n - 1) / 2) Interval_set.empty }

let n t = t.n
let span t = t.span

let check_pair t i j op =
  if i < 0 || j < 0 || i >= t.n || j >= t.n then invalid_arg ("Tvg." ^ op ^ ": node out of range");
  if i = j then invalid_arg ("Tvg." ^ op ^ ": self-loop")

let add_presence t i j iv =
  check_pair t i j "add_presence";
  if not (Interval.contains t.span iv) then
    invalid_arg "Tvg.add_presence: interval outside the time span";
  let presence = Array.copy t.presence in
  let k = tri_index t.n i j in
  presence.(k) <- Interval_set.add presence.(k) iv;
  { t with presence }

let of_presences ~n ~span entries =
  List.fold_left (fun g (i, j, iv) -> add_presence g i j iv) (create ~n ~span) entries

let presence t i j =
  if i = j then Interval_set.empty
  else begin
    check_pair t i j "presence";
    t.presence.(tri_index t.n i j)
  end

let present t i j time = Interval_set.mem (presence t i j) time

let rho_tau t ~tau i j time =
  if tau < 0. then invalid_arg "Tvg.rho_tau: negative tau";
  match Interval_set.covering (presence t i j) time with
  | None -> false
  | Some iv -> time +. tau < iv.Interval.hi

let neighbors_at t ~tau i time =
  let acc = ref [] in
  for j = t.n - 1 downto 0 do
    if j <> i && rho_tau t ~tau i j time then acc := j :: !acc
  done;
  !acc

let degree_at t ~tau i time = List.length (neighbors_at t ~tau i time)

let edge_pairs t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    for j = t.n - 1 downto i + 1 do
      if not (Interval_set.is_empty t.presence.(tri_index t.n i j)) then acc := (i, j) :: !acc
    done
  done;
  !acc

let pair_partition t i j =
  check_pair t i j "pair_partition";
  Partition.make ~span:t.span (Interval_set.boundaries (presence t i j))

let adjacent_partition t i =
  let pts = ref [] in
  for j = 0 to t.n - 1 do
    if j <> i then pts := Interval_set.boundaries (presence t i j) @ !pts
  done;
  Partition.make ~span:t.span !pts

let all_adjacent_partitions t = Array.init t.n (adjacent_partition t)

let average_degree_over t ~window =
  let clip set = Interval_set.inter set (Interval_set.single window) in
  let total =
    Array.fold_left (fun acc set -> acc +. Interval_set.total_length (clip set)) 0. t.presence
  in
  2. *. total /. (float_of_int t.n *. Interval.length window)

let restrict t ~span:sub =
  if not (Interval.contains t.span sub) then invalid_arg "Tvg.restrict: span not contained";
  let clip set = Interval_set.inter set (Interval_set.single sub) in
  { n = t.n; span = sub; presence = Array.map clip t.presence }

let pp ppf t =
  Format.fprintf ppf "@[<v>TVG n=%d span=%a@," t.n Interval.pp t.span;
  List.iter
    (fun (i, j) ->
      Format.fprintf ppf "  %d--%d: %a@," i j Interval_set.pp (presence t i j))
    (edge_pairs t);
  Format.fprintf ppf "@]"
