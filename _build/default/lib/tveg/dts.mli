(** Discrete time sets (paper Section V, Definition 5.2).

    Each node's discrete time partition combines its adjacent partition
    (link appear/disappear boundaries) with a status partition: the
    times at which the node's informed/uninformed status can change.
    Status changes happen τ after a possible ET-law transmission of a
    neighbour, so the point sets are closed under "t at i propagates
    t+τ to every j adjacent to i at t", up to non-stop-journey depth
    N−1 — giving the paper's O(N³L) bound.  With τ = 0 (the paper's
    trace-driven regime) propagation only copies existing instants onto
    neighbouring nodes, so each adjacent-partition point creates at
    most one point per node: O(N²L) points total, as the paper
    observes. *)

type t

val compute : ?cap_per_node:int -> ?source:int -> Tveg.t -> deadline:float -> t
(** DTS of all nodes over [\[span.lo, deadline\]].  [cap_per_node]
    (default 4000) bounds the per-node point count under τ > 0
    propagation; hitting the cap logs a warning and yields a coarser
    (still valid, possibly suboptimal) schedule space.

    When [source] is given, each node's points are additionally pruned
    to those at or after its earliest journey arrival from the source
    — instants at which the node could not possibly hold the packet
    are useless to any schedule, so the pruning is lossless.  A node
    unreachable by the deadline keeps a single sentinel point.
    @raise Invalid_argument if the deadline exceeds the graph span or
    precedes its start. *)

val deadline : t -> float
val node_points : t -> int -> float array
(** Increasing candidate transmission/status times of a node.  Every
    point p satisfies [span.lo <= p <= deadline]. *)

val total_points : t -> int
val num_nodes : t -> int

val latest_at_or_before : t -> int -> float -> float option
(** Largest DTS point of the node that is <= the given time: the
    ET-law representative (Prop. 5.1) of that instant. *)

val earliest_at_or_after : t -> int -> float -> float option
(** Smallest DTS point of the node that is >= the given time: the
    sound (conservative) rounding for receive instants that fell to
    the propagation cap. *)

val index_of_point : t -> int -> float -> int option
(** Position of an exact point in the node's sequence. *)

val pp : Format.formatter -> t -> unit
