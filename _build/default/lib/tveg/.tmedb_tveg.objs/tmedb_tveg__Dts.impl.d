lib/tveg/dts.ml: Array Float Format Interval List Logs Queue Set Tmedb_prelude Tmedb_tvg Tveg
