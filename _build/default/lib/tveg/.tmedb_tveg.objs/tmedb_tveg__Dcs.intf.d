lib/tveg/dcs.mli: Phy Tmedb_channel Tveg
