lib/tveg/dcs.ml: Ed_function Float Int List Phy Tmedb_channel Tveg
