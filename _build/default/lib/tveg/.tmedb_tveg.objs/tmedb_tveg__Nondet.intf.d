lib/tveg/nondet.mli: Interval Rng Tmedb_prelude Tveg
