lib/tveg/nondet.ml: Array Dist Interval List Stats Tmedb_prelude Tveg
