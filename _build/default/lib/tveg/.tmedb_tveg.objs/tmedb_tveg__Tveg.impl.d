lib/tveg/tveg.ml: Array Contact Ed_function Format Interval List Tmedb_channel Tmedb_prelude Tmedb_trace Tmedb_tvg Trace
