lib/tveg/tveg.mli: Format Interval Tmedb_channel Tmedb_prelude Tmedb_trace Tmedb_tvg
