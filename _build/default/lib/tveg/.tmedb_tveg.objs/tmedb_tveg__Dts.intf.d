lib/tveg/dts.mli: Format Tveg
