open Tmedb_channel

type level = { cost : float; covered : int list }

let epsilon_cost ed phy =
  match Ed_function.cost_for_failure ed ~target:phy.Phy.eps with
  | Some w -> w
  | None -> Float.infinity

let neighbour_cost ~phy ~channel ~dist =
  match channel with
  | `Static -> Phy.min_cost phy ~dist
  | `Rayleigh -> Phy.fading_reference_cost phy ~dist
  | `Nakagami m -> epsilon_cost (Ed_function.nakagami ~beta:(Phy.beta phy ~dist) ~m) phy
  | `Lognormal sigma ->
      epsilon_cost (Ed_function.lognormal ~beta:(Phy.beta phy ~dist) ~sigma) phy

let at g ~phy ~channel ~node ~time =
  let neighbours = Tveg.neighbors_at g node time in
  let costed =
    List.map (fun (j, dist) -> (neighbour_cost ~phy ~channel ~dist, j)) neighbours
    |> List.filter (fun (w, _) -> w <= phy.Phy.w_max)
    |> List.sort (fun (wa, ja) (wb, jb) ->
           let c = Float.compare wa wb in
           if c <> 0 then c else Int.compare ja jb)
  in
  (* Prefix-accumulate: level k covers the k cheapest neighbours;
     equal costs merge into one level. *)
  let rec build covered_rev = function
    | [] -> []
    | (w, j) :: rest ->
        let covered_rev = j :: covered_rev in
        let rec absorb covered_rev rest =
          match rest with
          | (w', j') :: tl when Float.equal w' w -> absorb (j' :: covered_rev) tl
          | _ -> (covered_rev, rest)
        in
        let covered_rev, rest = absorb covered_rev rest in
        let cost = Float.max phy.Phy.w_min w in
        { cost; covered = List.sort Int.compare covered_rev } :: build covered_rev rest
  in
  build [] costed

let min_cost_level = function [] -> None | level :: _ -> Some level

let level_covering levels ~k =
  List.find_opt (fun level -> List.length level.covered >= k) levels
