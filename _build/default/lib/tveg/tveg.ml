open Tmedb_prelude

type link = { iv : Interval.t; dist : float }
type channel = [ `Static | `Rayleigh | `Nakagami of float | `Lognormal of float ]

type t = { n : int; span : Interval.t; tau : float; links : link list array }

let tri_index n i j =
  let i, j = if i < j then (i, j) else (j, i) in
  (i * (2 * n - i - 1) / 2) + (j - i - 1)

let check_pair t i j op =
  if i < 0 || j < 0 || i >= t.n || j >= t.n then
    invalid_arg ("Tveg." ^ op ^ ": node out of range");
  if i = j then invalid_arg ("Tveg." ^ op ^ ": self-loop")

let sort_links links = List.sort (fun a b -> Interval.compare a.iv b.iv) links

let create ~n ~span ~tau entries =
  if n <= 0 then invalid_arg "Tveg.create: n <= 0";
  if tau < 0. then invalid_arg "Tveg.create: negative tau";
  let links = Array.make (n * (n - 1) / 2) [] in
  let t = { n; span; tau; links } in
  List.iter
    (fun (i, j, link) ->
      check_pair t i j "create";
      if not (Interval.contains span link.iv) then
        invalid_arg "Tveg.create: link outside the span";
      if link.dist <= 0. then invalid_arg "Tveg.create: non-positive distance";
      let k = tri_index n i j in
      links.(k) <- link :: links.(k))
    entries;
  Array.iteri (fun k ls -> links.(k) <- sort_links ls) links;
  t

let of_trace ~tau trace =
  let open Tmedb_trace in
  let entries =
    List.map
      (fun c -> (c.Contact.a, c.Contact.b, { iv = c.Contact.iv; dist = c.Contact.dist }))
      (Trace.contacts trace)
  in
  create ~n:(Trace.n trace) ~span:(Trace.span trace) ~tau entries

let n t = t.n
let span t = t.span
let tau t = t.tau

let links t i j =
  if i = j then []
  else begin
    check_pair t i j "links";
    t.links.(tri_index t.n i j)
  end

let covering_link t i j time =
  List.find_opt (fun l -> Interval.mem l.iv time) (links t i j)

let rho_tau t i j time =
  match covering_link t i j time with
  | None -> false
  | Some l -> time +. t.tau < l.iv.Interval.hi

let dist_at t i j time =
  match covering_link t i j time with
  | Some l when time +. t.tau < l.iv.Interval.hi -> Some l.dist
  | Some _ | None -> None

let ed_at t ~phy ~channel i j time =
  let open Tmedb_channel in
  match dist_at t i j time with
  | None -> Ed_function.Absent
  | Some dist -> Ed_function.of_distance phy channel ~dist

let neighbors_at t i time =
  let acc = ref [] in
  for j = t.n - 1 downto 0 do
    if j <> i then
      match dist_at t i j time with Some d -> acc := (j, d) :: !acc | None -> ()
  done;
  !acc

let to_tvg t =
  let g = ref (Tmedb_tvg.Tvg.create ~n:t.n ~span:t.span) in
  for i = 0 to t.n - 2 do
    for j = i + 1 to t.n - 1 do
      List.iter (fun l -> g := Tmedb_tvg.Tvg.add_presence !g i j l.iv) (links t i j)
    done
  done;
  !g

let adjacent_partition t i =
  let pts = ref [] in
  for j = 0 to t.n - 1 do
    if j <> i then
      List.iter
        (fun l -> pts := l.iv.Interval.lo :: l.iv.Interval.hi :: !pts)
        (links t i j)
  done;
  Tmedb_tvg.Partition.make ~span:t.span !pts

let average_degree_over t ~window =
  Tmedb_tvg.Tvg.average_degree_over (to_tvg t) ~window

let restrict t ~span:sub =
  if not (Interval.contains t.span sub) then invalid_arg "Tveg.restrict: span not contained";
  let clip ls =
    List.filter_map
      (fun l ->
        match Interval.inter l.iv sub with
        | None -> None
        | Some iv -> Some { l with iv })
      ls
  in
  { t with span = sub; links = Array.map clip t.links }

let pp ppf t =
  Format.fprintf ppf "tveg{n=%d span=%a tau=%g links=%d}" t.n Interval.pp t.span t.tau
    (Array.fold_left (fun acc ls -> acc + List.length ls) 0 t.links)
