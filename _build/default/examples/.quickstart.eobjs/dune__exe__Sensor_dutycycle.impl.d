examples/sensor_dutycycle.ml: Array Dist Eedcb Feasibility Float Format Interval Interval_set List Metrics Problem Rng Schedule Tmedb Tmedb_channel Tmedb_prelude Tmedb_tveg Tveg
