examples/uncertain_contacts.ml: Experiment Float Format Interference Interval List Nondet Problem Rng Robustness Schedule Tmedb Tmedb_channel Tmedb_prelude Tmedb_tveg Tveg
