examples/vehicular_fading.ml: Feasibility Float Format Fr Metrics Problem Rng Schedule Simulate Tmedb Tmedb_channel Tmedb_prelude Tmedb_trace Tmedb_tveg
