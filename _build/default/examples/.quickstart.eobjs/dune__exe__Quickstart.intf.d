examples/quickstart.mli:
