examples/conference_broadcast.ml: Experiment Format List Rng Schedule Simulate Tmedb Tmedb_prelude Tmedb_trace
