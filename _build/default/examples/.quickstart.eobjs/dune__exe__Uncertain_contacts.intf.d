examples/uncertain_contacts.mli:
