examples/conference_broadcast.mli:
