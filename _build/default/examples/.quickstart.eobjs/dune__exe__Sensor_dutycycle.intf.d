examples/sensor_dutycycle.mli:
