examples/quickstart.ml: Format Interval Tmedb Tmedb_channel Tmedb_prelude Tmedb_tveg Tveg
