examples/vehicular_fading.mli:
