(* Tests for tmedb_steiner: CSR digraphs, Dijkstra, arborescences and
   the recursive-greedy directed Steiner tree solver. *)

open Tmedb_prelude
open Tmedb_steiner

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Digraph *)

let diamond () =
  (* 0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (1), 1 -> 3 (5), 2 -> 3 (1) *)
  Digraph.of_edges ~n:4 [ (0, 1, 1.); (0, 2, 4.); (1, 2, 1.); (1, 3, 5.); (2, 3, 1.) ]

let test_digraph_basics () =
  let g = diamond () in
  check_int "n" 4 (Digraph.n g);
  check_int "m" 5 (Digraph.m g);
  check_int "outdeg 0" 2 (Digraph.out_degree g 0);
  check_int "outdeg 3" 0 (Digraph.out_degree g 3);
  Alcotest.(check (option (float 0.))) "weight" (Some 4.) (Digraph.edge_weight g 0 2);
  Alcotest.(check (option (float 0.))) "absent" None (Digraph.edge_weight g 3 0)

let test_digraph_parallel_edges () =
  let g = Digraph.of_edges ~n:2 [ (0, 1, 5.); (0, 1, 2.) ] in
  Alcotest.(check (option (float 0.))) "min parallel" (Some 2.) (Digraph.edge_weight g 0 1)

let test_digraph_reverse () =
  let g = Digraph.reverse (diamond ()) in
  Alcotest.(check (option (float 0.))) "reversed edge" (Some 1.) (Digraph.edge_weight g 1 0);
  Alcotest.(check (option (float 0.))) "forward gone" None (Digraph.edge_weight g 0 1)

let test_digraph_validation () =
  Alcotest.check_raises "negative weight" (Invalid_argument "Digraph.of_edges: negative weight")
    (fun () -> ignore (Digraph.of_edges ~n:2 [ (0, 1, -1.) ]));
  Alcotest.check_raises "range" (Invalid_argument "Digraph.of_edges: vertex out of range")
    (fun () -> ignore (Digraph.of_edges ~n:2 [ (0, 5, 1.) ]))

let test_digraph_fold () =
  let g = diamond () in
  let total = Digraph.fold_succ g 1 (fun acc _ w -> acc +. w) 0. in
  check_float "sum out of 1" 6. total

(* ------------------------------------------------------------------ *)
(* Dijkstra *)

let test_dijkstra_distances () =
  let g = diamond () in
  let r = Dijkstra.run g ~src:0 in
  check_float "d(0)" 0. r.Dijkstra.dist.(0);
  check_float "d(1)" 1. r.Dijkstra.dist.(1);
  check_float "d(2)" 2. r.Dijkstra.dist.(2);
  check_float "d(3)" 3. r.Dijkstra.dist.(3)

let test_dijkstra_unreachable () =
  let g = Digraph.of_edges ~n:3 [ (0, 1, 1.) ] in
  let r = Dijkstra.run g ~src:0 in
  check_bool "infinite" true (r.Dijkstra.dist.(2) = Float.infinity);
  check_bool "no path" true (Dijkstra.path r ~src:0 ~dst:2 = None)

let test_dijkstra_path () =
  let g = diamond () in
  let r = Dijkstra.run g ~src:0 in
  Alcotest.(check (option (list int))) "path" (Some [ 0; 1; 2; 3 ]) (Dijkstra.path r ~src:0 ~dst:3)

let test_dijkstra_path_edges () =
  let g = diamond () in
  let r = Dijkstra.run g ~src:0 in
  match Dijkstra.path_edges g r ~src:0 ~dst:3 with
  | None -> Alcotest.fail "expected path"
  | Some edges ->
      check_float "total" 3. (List.fold_left (fun acc (_, _, w) -> acc +. w) 0. edges)

let test_dijkstra_zero_weights () =
  let g = Digraph.of_edges ~n:3 [ (0, 1, 0.); (1, 2, 0.) ] in
  let r = Dijkstra.run g ~src:0 in
  check_float "zero chain" 0. r.Dijkstra.dist.(2)

let test_dijkstra_multi_source () =
  let g = Digraph.of_edges ~n:4 [ (0, 2, 5.); (1, 2, 1.); (2, 3, 1.) ] in
  let r = Dijkstra.run_multi g ~sources:[ 0; 1 ] in
  check_float "source 0" 0. r.Dijkstra.dist.(0);
  check_float "source 1" 0. r.Dijkstra.dist.(1);
  check_float "nearest source wins" 1. r.Dijkstra.dist.(2);
  check_float "chained" 2. r.Dijkstra.dist.(3)

let test_dijkstra_refine () =
  let g = Digraph.of_edges ~n:4 [ (0, 1, 10.); (2, 1, 1.); (1, 3, 1.) ] in
  let r = Dijkstra.run_multi g ~sources:[ 0 ] in
  check_float "before refine" 10. r.Dijkstra.dist.(1);
  Dijkstra.refine g r ~new_sources:[ 2 ];
  check_float "refined" 1. r.Dijkstra.dist.(1);
  check_float "downstream updated" 2. r.Dijkstra.dist.(3);
  check_float "old source kept" 0. r.Dijkstra.dist.(0)

let test_dijkstra_refine_noop () =
  (* Refining with an already-closer vertex must change nothing. *)
  let g = diamond () in
  let r = Dijkstra.run g ~src:0 in
  let before = Array.copy r.Dijkstra.dist in
  Dijkstra.refine g r ~new_sources:[ 0 ];
  Alcotest.(check (array (float 0.))) "unchanged" before r.Dijkstra.dist

let test_dijkstra_random_vs_bellman () =
  (* Cross-check Dijkstra against Bellman-Ford on random graphs. *)
  let rng = Rng.create 77 in
  for _ = 1 to 20 do
    let n = 4 + Rng.int rng 8 in
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if u <> v && Rng.unit_float rng < 0.35 then
          edges := (u, v, Rng.float rng 10.) :: !edges
      done
    done;
    let g = Digraph.of_edges ~n !edges in
    let r = Dijkstra.run g ~src:0 in
    (* Bellman-Ford. *)
    let dist = Array.make n Float.infinity in
    dist.(0) <- 0.;
    for _ = 1 to n do
      List.iter
        (fun (u, v, w) -> if dist.(u) +. w < dist.(v) then dist.(v) <- dist.(u) +. w)
        !edges
    done;
    for v = 0 to n - 1 do
      check_bool "agrees with bellman-ford" true
        (Futil.approx_eq ~abs:1e-9 dist.(v) r.Dijkstra.dist.(v)
        || (dist.(v) = Float.infinity && r.Dijkstra.dist.(v) = Float.infinity))
    done
  done

(* ------------------------------------------------------------------ *)
(* Arborescence *)

let test_arborescence_valid () =
  match Arborescence.of_edges ~n:4 ~root:0 [ (0, 1, 1.); (1, 2, 2.); (0, 3, 3.) ] with
  | Error e -> Alcotest.fail e
  | Ok t ->
      check_float "cost" 6. (Arborescence.cost t);
      check_bool "mem 2" true (Arborescence.mem t 2);
      Alcotest.(check (option int)) "depth 2" (Some 2) (Arborescence.depth t 2);
      Alcotest.(check (list int)) "vertices" [ 0; 1; 2; 3 ] (Arborescence.vertices t);
      check_bool "spans" true (Arborescence.spans t [ 1; 3 ]);
      (match Arborescence.topological_order t with
      | 0 :: rest -> check_int "root first" 3 (List.length rest)
      | _ -> Alcotest.fail "root must come first")

let test_arborescence_two_parents () =
  match Arborescence.of_edges ~n:3 ~root:0 [ (0, 1, 1.); (2, 1, 1.) ] with
  | Error e -> check_bool "two parents" true (e = "vertex 1 has two parents")
  | Ok _ -> Alcotest.fail "expected error"

let test_arborescence_cycle () =
  match Arborescence.of_edges ~n:3 ~root:0 [ (1, 2, 1.); (2, 1, 1.) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected cycle/disconnection error"

let test_arborescence_reparent_root () =
  match Arborescence.of_edges ~n:2 ~root:0 [ (1, 0, 1.) ] with
  | Error e -> check_bool "root" true (e = "edge re-parents the root")
  | Ok _ -> Alcotest.fail "expected error"

(* ------------------------------------------------------------------ *)
(* Dst *)

let test_dst_star () =
  (* Root connects to each terminal directly: tree = all edges. *)
  let g = Digraph.of_edges ~n:4 [ (0, 1, 1.); (0, 2, 2.); (0, 3, 3.) ] in
  let o = Dst.solve g ~root:0 ~terminals:[ 1; 2; 3 ] in
  check_bool "all covered" true (o.Dst.uncovered = []);
  check_float "cost" 6. o.Dst.tree.Dst.cost

let test_dst_shares_path () =
  (* Terminals 2 and 3 behind a shared expensive edge: the tree must
     pay it once. *)
  let g = Digraph.of_edges ~n:4 [ (0, 1, 10.); (1, 2, 1.); (1, 3, 1.) ] in
  let o = Dst.solve g ~root:0 ~terminals:[ 2; 3 ] in
  check_bool "covered" true (o.Dst.uncovered = []);
  check_float "shared trunk" 12. o.Dst.tree.Dst.cost

let test_dst_level2_beats_level1_sometimes () =
  (* Classic trap: direct edges cost 6 each, a shared hub costs
     7 + 1 + 1 + 1 = 10 for three terminals vs 18 direct. *)
  let g =
    Digraph.of_edges ~n:5
      [ (0, 4, 7.); (4, 1, 1.); (4, 2, 1.); (4, 3, 1.); (0, 1, 6.); (0, 2, 6.); (0, 3, 6.) ]
  in
  let o1 = Dst.solve ~level:1 g ~root:0 ~terminals:[ 1; 2; 3 ] in
  let o2 = Dst.solve ~level:2 g ~root:0 ~terminals:[ 1; 2; 3 ] in
  check_bool "both cover" true (o1.Dst.uncovered = [] && o2.Dst.uncovered = []);
  check_float "level 2 optimal" 10. o2.Dst.tree.Dst.cost;
  check_bool "level 2 <= level 1" true (o2.Dst.tree.Dst.cost <= o1.Dst.tree.Dst.cost)

let test_dst_unreachable_terminal () =
  let g = Digraph.of_edges ~n:3 [ (0, 1, 1.) ] in
  let o = Dst.solve g ~root:0 ~terminals:[ 1; 2 ] in
  Alcotest.(check (list int)) "uncovered" [ 2 ] o.Dst.uncovered;
  Alcotest.(check (list int)) "covered" [ 1 ] o.Dst.tree.Dst.covered

let test_dst_root_terminal_free () =
  let g = Digraph.of_edges ~n:2 [ (0, 1, 1.) ] in
  let o = Dst.solve g ~root:0 ~terminals:[ 0; 1 ] in
  check_bool "root not counted uncovered" true (o.Dst.uncovered = []);
  check_float "cost 1" 1. o.Dst.tree.Dst.cost

let test_dst_prune_removes_slack () =
  let g = Digraph.of_edges ~n:4 [ (0, 1, 1.); (1, 2, 1.); (0, 3, 1.) ] in
  (* A tree with a useless edge 0->3 when only terminal 2 matters. *)
  let bloated = { Dst.edges = [ (0, 1, 1.); (1, 2, 1.); (0, 3, 1.) ]; cost = 3.; covered = [ 2 ] } in
  let pruned = Dst.prune g ~root:0 bloated in
  check_float "slack removed" 2. pruned.Dst.cost

let test_dst_tree_cost_dedups () =
  check_float "dedup" 3. (Dst.tree_cost [ (0, 1, 1.); (0, 1, 1.); (1, 2, 2.) ])

let test_dst_validation () =
  let g = diamond () in
  Alcotest.check_raises "level" (Invalid_argument "Dst.solve: level < 1") (fun () ->
      ignore (Dst.solve ~level:0 g ~root:0 ~terminals:[ 1 ]));
  Alcotest.check_raises "terminal range" (Invalid_argument "Dst.solve: terminal out of range")
    (fun () -> ignore (Dst.solve g ~root:0 ~terminals:[ 9 ]))

let test_dst_candidate_restriction () =
  (* Restricting branch points still covers everything (paths may pass
     through non-candidate vertices). *)
  let g =
    Digraph.of_edges ~n:5
      [ (0, 4, 7.); (4, 1, 1.); (4, 2, 1.); (4, 3, 1.); (0, 1, 6.); (0, 2, 6.); (0, 3, 6.) ]
  in
  let o = Dst.solve ~level:2 ~candidates:[ 0 ] g ~root:0 ~terminals:[ 1; 2; 3 ] in
  check_bool "covers all" true (o.Dst.uncovered = []);
  (* The full-candidate solve can only be at least as good. *)
  let full = Dst.solve ~level:2 g ~root:0 ~terminals:[ 1; 2; 3 ] in
  check_bool "restriction never helps" true (full.Dst.tree.Dst.cost <= o.Dst.tree.Dst.cost +. 1e-9)

(* Random-instance properties: the solution covers every reachable
   terminal, its edges exist in the graph, its cost >= the shortest
   path to the farthest covered terminal (trivial lower bound) and <=
   the sum of individual shortest paths (upper bound of A1). *)
let random_graph seed =
  let rng = Rng.create seed in
  let n = 5 + Rng.int rng 10 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Rng.unit_float rng < 0.3 then edges := (u, v, 0.5 +. Rng.float rng 9.5) :: !edges
    done
  done;
  (Digraph.of_edges ~n !edges, n, rng)

let prop_dst_sound =
  QCheck.Test.make ~name:"DST covers reachable terminals within A1 bound" ~count:60
    QCheck.small_int (fun seed ->
      let g, n, rng = random_graph seed in
      let terminals =
        List.sort_uniq Int.compare (List.init 4 (fun _ -> 1 + Rng.int rng (n - 1)))
      in
      let o = Dst.solve ~level:2 g ~root:0 ~terminals in
      let r = Dijkstra.run g ~src:0 in
      let reachable = List.filter (fun t -> Float.is_finite r.Dijkstra.dist.(t)) terminals in
      let covered_ok = List.for_all (fun t -> List.mem t o.Dst.tree.Dst.covered) reachable in
      let edges_exist =
        List.for_all
          (fun (u, v, w) ->
            match Digraph.edge_weight g u v with Some w0 -> w0 <= w +. 1e-9 | None -> false)
          o.Dst.tree.Dst.edges
      in
      let a1_bound =
        List.fold_left (fun acc t -> acc +. r.Dijkstra.dist.(t)) 0. reachable
      in
      covered_ok && edges_exist && o.Dst.tree.Dst.cost <= a1_bound +. 1e-6)

let prop_dst_prune_keeps_coverage =
  QCheck.Test.make ~name:"prune keeps coverage, never raises cost" ~count:60 QCheck.small_int
    (fun seed ->
      let g, n, rng = random_graph (seed + 1000) in
      let terminals =
        List.sort_uniq Int.compare (List.init 3 (fun _ -> 1 + Rng.int rng (n - 1)))
      in
      let o = Dst.solve ~level:2 g ~root:0 ~terminals in
      let pruned = Dst.prune g ~root:0 o.Dst.tree in
      pruned.Dst.cost <= o.Dst.tree.Dst.cost +. 1e-9
      &&
      let sub = Digraph.of_edges ~n:(Digraph.n g) pruned.Dst.edges in
      let r = Dijkstra.run sub ~src:0 in
      List.for_all (fun t -> Float.is_finite r.Dijkstra.dist.(t)) o.Dst.tree.Dst.covered)

let prop_dst_pruned_is_arborescence =
  QCheck.Test.make ~name:"pruned trees are arborescences" ~count:60 QCheck.small_int
    (fun seed ->
      let g, n, rng = random_graph (seed + 2000) in
      let terminals =
        List.sort_uniq Int.compare (List.init 3 (fun _ -> 1 + Rng.int rng (n - 1)))
      in
      let o = Dst.solve ~level:2 g ~root:0 ~terminals in
      let pruned = Dst.prune g ~root:0 o.Dst.tree in
      match Arborescence.of_edges ~n:(Digraph.n g) ~root:0 pruned.Dst.edges with
      | Ok t -> Arborescence.spans t pruned.Dst.covered
      | Error _ -> false)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "steiner"
    [
      ( "digraph",
        [
          tc "basics" test_digraph_basics;
          tc "parallel edges" test_digraph_parallel_edges;
          tc "reverse" test_digraph_reverse;
          tc "validation" test_digraph_validation;
          tc "fold" test_digraph_fold;
        ] );
      ( "dijkstra",
        [
          tc "distances" test_dijkstra_distances;
          tc "unreachable" test_dijkstra_unreachable;
          tc "path" test_dijkstra_path;
          tc "path edges" test_dijkstra_path_edges;
          tc "zero weights" test_dijkstra_zero_weights;
          tc "multi source" test_dijkstra_multi_source;
          tc "refine" test_dijkstra_refine;
          tc "refine noop" test_dijkstra_refine_noop;
          tc "random vs bellman-ford" test_dijkstra_random_vs_bellman;
        ] );
      ( "arborescence",
        [
          tc "valid" test_arborescence_valid;
          tc "two parents" test_arborescence_two_parents;
          tc "cycle" test_arborescence_cycle;
          tc "reparent root" test_arborescence_reparent_root;
        ] );
      ( "dst",
        [
          tc "star" test_dst_star;
          tc "shares path" test_dst_shares_path;
          tc "level 2 beats level 1" test_dst_level2_beats_level1_sometimes;
          tc "unreachable terminal" test_dst_unreachable_terminal;
          tc "root terminal free" test_dst_root_terminal_free;
          tc "prune removes slack" test_dst_prune_removes_slack;
          tc "tree cost dedups" test_dst_tree_cost_dedups;
          tc "validation" test_dst_validation;
          tc "candidate restriction" test_dst_candidate_restriction;
          QCheck_alcotest.to_alcotest prop_dst_sound;
          QCheck_alcotest.to_alcotest prop_dst_prune_keeps_coverage;
          QCheck_alcotest.to_alcotest prop_dst_pruned_is_arborescence;
        ] );
    ]
