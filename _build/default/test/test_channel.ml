(* Tests for tmedb_channel: PHY parameters, special functions and the
   ED-functions of paper Section III-C (Property 3.1, Equations 2 and
   5, the Corollary 4.2 threshold identities). *)

open Tmedb_channel

let check_bool = Alcotest.(check bool)
let close ?(tol = 1e-9) msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%.12g vs %.12g)" msg a b) true
    (Float.abs (a -. b) <= tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b)))

(* ------------------------------------------------------------------ *)
(* Phy *)

let test_phy_defaults () =
  let p = Phy.default in
  close "noise power" (4.32e-21 *. 1e6) (Phy.noise_power p);
  close "gamma linear" (10. ** 2.59) (Phy.gamma_th p);
  check_bool "eps" true (p.Phy.eps = 0.01)

let test_phy_min_cost_scales () =
  let p = Phy.default in
  (* alpha = 2: doubling distance quadruples the cost. *)
  close "quadratic path loss" (4. *. Phy.min_cost p ~dist:10.) (Phy.min_cost p ~dist:20.)

let test_phy_normalized_energy () =
  let p = Phy.default in
  (* Normalised energy of the min cost for d is exactly d^alpha. *)
  close "d^2" 100. (Phy.normalized_energy p (Phy.min_cost p ~dist:10.))

let test_phy_fading_reference () =
  let p = Phy.default in
  let w0 = Phy.fading_reference_cost p ~dist:10. in
  (* By construction the Rayleigh failure at w0 is exactly eps. *)
  let ed = Ed_function.rayleigh ~beta:(Phy.beta p ~dist:10.) in
  close ~tol:1e-12 "failure at w0 = eps" p.Phy.eps (Ed_function.failure_prob ed ~w:w0)

let test_phy_validation () =
  Alcotest.check_raises "bad eps" (Invalid_argument "Phy.make: eps outside (0,1)") (fun () ->
      ignore (Phy.make ~eps:1.5 ()));
  Alcotest.check_raises "bad bounds" (Invalid_argument "Phy.make: w_max <= w_min") (fun () ->
      ignore (Phy.make ~w_min:2. ~w_max:1. ()))

let test_phy_in_cost_set () =
  let p = Phy.make ~w_min:1. ~w_max:2. () in
  check_bool "inside" true (Phy.in_cost_set p 1.5);
  check_bool "below" false (Phy.in_cost_set p 0.5);
  check_bool "above" false (Phy.in_cost_set p 2.5)

(* ------------------------------------------------------------------ *)
(* Specfun *)

let test_ln_gamma_known () =
  close "Γ(1)=1" 0. (Specfun.ln_gamma 1.);
  close "Γ(2)=1" 0. (Specfun.ln_gamma 2.);
  close "Γ(5)=24" (log 24.) (Specfun.ln_gamma 5.);
  close ~tol:1e-12 "Γ(1/2)=√π" (0.5 *. log Float.pi) (Specfun.ln_gamma 0.5)

let test_gammp_exponential () =
  (* P(1, x) = 1 - e^{-x}. *)
  List.iter
    (fun x -> close ~tol:1e-10 "P(1,x)" (1. -. exp (-.x)) (Specfun.gammp ~a:1. ~x))
    [ 0.1; 0.5; 1.; 2.; 5.; 10. ]

let test_gammp_erlang2 () =
  (* P(2, x) = 1 - e^{-x}(1 + x). *)
  List.iter
    (fun x -> close ~tol:1e-10 "P(2,x)" (1. -. (exp (-.x) *. (1. +. x))) (Specfun.gammp ~a:2. ~x))
    [ 0.3; 1.; 3.; 8. ]

let test_gammp_limits () =
  close "P(a,0)=0" 0. (Specfun.gammp ~a:2.5 ~x:0.);
  check_bool "P(a,large)→1" true (Specfun.gammp ~a:2.5 ~x:100. > 0.999999);
  close ~tol:1e-12 "P+Q=1" 1. (Specfun.gammp ~a:3. ~x:2. +. Specfun.gammq ~a:3. ~x:2.)

let test_erf_known_values () =
  close "erf(0)" 0. (Specfun.erf 0.);
  close ~tol:1e-7 "erf(1)" 0.8427007929 (Specfun.erf 1.);
  close ~tol:1e-7 "erf(-1)" (-0.8427007929) (Specfun.erf (-1.));
  check_bool "erf(3) ~ 1" true (Specfun.erf 3. > 0.9999)

let test_normal_cdf () =
  close "phi(0)" 0.5 (Specfun.normal_cdf 0.);
  close ~tol:1e-6 "phi(1.96)" 0.9750021 (Specfun.normal_cdf 1.96);
  close ~tol:1e-6 "symmetry" 1.
    (Specfun.normal_cdf 0.7 +. Specfun.normal_cdf (-0.7))

let test_gammp_monotone () =
  let prev = ref (-1.) in
  for k = 0 to 100 do
    let x = float_of_int k /. 10. in
    let v = Specfun.gammp ~a:1.7 ~x in
    check_bool "monotone" true (v >= !prev -. 1e-12);
    prev := v
  done

(* ------------------------------------------------------------------ *)
(* Ed_function *)

let test_step_threshold () =
  let ed = Ed_function.step ~w_th:2. in
  close "below fails" 1. (Ed_function.failure_prob ed ~w:1.99);
  close "at threshold succeeds" 0. (Ed_function.failure_prob ed ~w:2.);
  close "above succeeds" 0. (Ed_function.failure_prob ed ~w:5.)

let test_rayleigh_formula () =
  let ed = Ed_function.rayleigh ~beta:3. in
  close ~tol:1e-12 "eq 5" (1. -. exp (-3. /. 2.)) (Ed_function.failure_prob ed ~w:2.)

let test_zero_cost_convention () =
  (* Footnote 2: φ(0) = 1 for every variant. *)
  List.iter
    (fun ed -> close "phi(0)=1" 1. (Ed_function.failure_prob ed ~w:0.))
    [ Ed_function.step ~w_th:1.; Ed_function.rayleigh ~beta:1.;
      Ed_function.nakagami ~beta:1. ~m:2.; Ed_function.Absent ]

let test_absent_always_fails () =
  close "absent" 1. (Ed_function.failure_prob Ed_function.Absent ~w:1e9)

let test_nakagami_m1_is_rayleigh () =
  let ray = Ed_function.rayleigh ~beta:2. in
  let nak = Ed_function.nakagami ~beta:2. ~m:1. in
  List.iter
    (fun w ->
      close ~tol:1e-9 "m=1 = Rayleigh"
        (Ed_function.failure_prob ray ~w)
        (Ed_function.failure_prob nak ~w))
    [ 0.5; 1.; 2.; 8.; 50. ]

let test_nakagami_sharper_with_m () =
  (* Larger m = less fading = sharper transition: at low cost failure is
     higher, at high cost lower. *)
  let m1 = Ed_function.nakagami ~beta:1. ~m:1. in
  let m4 = Ed_function.nakagami ~beta:1. ~m:4. in
  check_bool "low cost worse" true
    (Ed_function.failure_prob m4 ~w:0.3 > Ed_function.failure_prob m1 ~w:0.3);
  check_bool "high cost better" true
    (Ed_function.failure_prob m4 ~w:10. < Ed_function.failure_prob m1 ~w:10.)

let test_rician_moment_matching () =
  (* K = 0 is Rayleigh. *)
  let r0 = Ed_function.rician ~beta:1.5 ~k:0. in
  let ray = Ed_function.rayleigh ~beta:1.5 in
  List.iter
    (fun w ->
      close ~tol:1e-9 "K=0 = Rayleigh"
        (Ed_function.failure_prob ray ~w)
        (Ed_function.failure_prob r0 ~w))
    [ 0.5; 1.; 4. ]

let test_cost_for_failure_rayleigh () =
  let ed = Ed_function.rayleigh ~beta:2. in
  match Ed_function.cost_for_failure ed ~target:0.01 with
  | None -> Alcotest.fail "expected a cost"
  | Some w ->
      close ~tol:1e-12 "inverse exact" (2. /. log (1. /. 0.99)) w;
      close ~tol:1e-12 "achieves target" 0.01 (Ed_function.failure_prob ed ~w)

let test_cost_for_failure_step () =
  let ed = Ed_function.step ~w_th:3. in
  Alcotest.(check (option (float 1e-12))) "step inverse" (Some 3.)
    (Ed_function.cost_for_failure ed ~target:0.5)

let test_cost_for_failure_nakagami () =
  let ed = Ed_function.nakagami ~beta:2. ~m:3. in
  match Ed_function.cost_for_failure ed ~target:0.01 with
  | None -> Alcotest.fail "expected a cost"
  | Some w ->
      check_bool "achieves target" true (Ed_function.failure_prob ed ~w <= 0.01 +. 1e-9);
      (* Minimality: 1% less power misses the target. *)
      check_bool "minimal" true (Ed_function.failure_prob ed ~w:(0.99 *. w) > 0.01)

let test_lognormal_median () =
  (* At w = beta the shadowing margin is zero: failure 1/2. *)
  let ed = Ed_function.lognormal ~beta:2. ~sigma:1.5 in
  close ~tol:1e-9 "phi(beta) = 1/2" 0.5 (Ed_function.failure_prob ed ~w:2.)

let test_lognormal_sigma_widens () =
  (* Larger shadowing spread needs more margin for the same target. *)
  let cost sigma =
    match
      Ed_function.cost_for_failure (Ed_function.lognormal ~beta:1. ~sigma) ~target:0.01
    with
    | Some w -> w
    | None -> Alcotest.fail "expected cost"
  in
  check_bool "sigma 2 dearer than sigma 1" true (cost 2. > cost 1.)

let test_lognormal_inverse () =
  let ed = Ed_function.lognormal ~beta:3. ~sigma:1. in
  match Ed_function.cost_for_failure ed ~target:0.05 with
  | None -> Alcotest.fail "expected cost"
  | Some w ->
      check_bool "achieves target" true (Ed_function.failure_prob ed ~w <= 0.05 +. 1e-9);
      (* Analytic inverse: w = beta * exp(-sigma * Phi^-1(target));
         Phi^-1(0.05) = -1.6448536... *)
      close ~tol:1e-6 "matches closed form" (3. *. exp 1.6448536269514722) w

let test_cost_for_failure_absent () =
  check_bool "absent impossible" true
    (Ed_function.cost_for_failure Ed_function.Absent ~target:0.5 = None)

let test_property_3_1 () =
  let costs = Array.init 200 (fun i -> float_of_int i *. 0.1) in
  List.iter
    (fun ed -> check_bool "Property 3.1" true (Ed_function.satisfies_property_3_1 ed ~costs))
    [ Ed_function.step ~w_th:5.; Ed_function.rayleigh ~beta:2.;
      Ed_function.nakagami ~beta:2. ~m:3.; Ed_function.lognormal ~beta:2. ~sigma:1.;
      Ed_function.Absent ]

let test_of_distance () =
  let p = Phy.default in
  (match Ed_function.of_distance p `Static ~dist:10. with
  | Ed_function.Step { w_th } -> close "static threshold" (Phy.min_cost p ~dist:10.) w_th
  | _ -> Alcotest.fail "expected step");
  (match Ed_function.of_distance p `Rayleigh ~dist:10. with
  | Ed_function.Rayleigh { beta } -> close "beta" (Phy.beta p ~dist:10.) beta
  | _ -> Alcotest.fail "expected rayleigh");
  Alcotest.check_raises "bad distance"
    (Invalid_argument "Ed_function.of_distance: non-positive distance") (fun () ->
      ignore (Ed_function.of_distance p `Static ~dist:0.))

(* Property: failure_prob is within [0,1] and non-increasing for random
   parameters; cost_for_failure is a true (approximate) inverse. *)
let ed_gen =
  let open QCheck in
  make
    ~print:(fun ed -> Format.asprintf "%a" Ed_function.pp ed)
    Gen.(
      oneof
        [
          map (fun b -> Ed_function.rayleigh ~beta:(0.1 +. Float.abs b)) (float_bound_exclusive 50.);
          map2
            (fun b m -> Ed_function.nakagami ~beta:(0.1 +. Float.abs b) ~m:(0.5 +. Float.abs m))
            (float_bound_exclusive 50.) (float_bound_exclusive 5.);
          map (fun w -> Ed_function.step ~w_th:(Float.abs w)) (float_bound_exclusive 50.);
          map2
            (fun b s ->
              Ed_function.lognormal ~beta:(0.1 +. Float.abs b) ~sigma:(0.2 +. Float.abs s))
            (float_bound_exclusive 50.) (float_bound_exclusive 3.);
        ])

let prop_failure_in_unit =
  QCheck.Test.make ~name:"failure_prob in [0,1]" ~count:300
    (QCheck.pair ed_gen (QCheck.float_range 0. 100.)) (fun (ed, w) ->
      let p = Ed_function.failure_prob ed ~w in
      0. <= p && p <= 1.)

let prop_failure_monotone =
  QCheck.Test.make ~name:"failure_prob non-increasing" ~count:300
    (QCheck.triple ed_gen (QCheck.float_range 0.01 50.) (QCheck.float_range 0.01 50.))
    (fun (ed, w1, w2) ->
      let lo = Float.min w1 w2 and hi = Float.max w1 w2 in
      Ed_function.failure_prob ed ~w:hi <= Ed_function.failure_prob ed ~w:lo +. 1e-9)

let prop_cost_inverse =
  QCheck.Test.make ~name:"cost_for_failure achieves its target" ~count:200
    (QCheck.pair ed_gen (QCheck.float_range 0.001 0.5)) (fun (ed, target) ->
      match Ed_function.cost_for_failure ed ~target with
      | None -> true
      | Some w -> Ed_function.failure_prob ed ~w <= target +. 1e-6)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "channel"
    [
      ( "phy",
        [
          tc "defaults" test_phy_defaults;
          tc "min cost scales" test_phy_min_cost_scales;
          tc "normalized energy" test_phy_normalized_energy;
          tc "fading reference" test_phy_fading_reference;
          tc "validation" test_phy_validation;
          tc "in cost set" test_phy_in_cost_set;
        ] );
      ( "specfun",
        [
          tc "ln_gamma known" test_ln_gamma_known;
          tc "gammp exponential" test_gammp_exponential;
          tc "gammp erlang2" test_gammp_erlang2;
          tc "gammp limits" test_gammp_limits;
          tc "gammp monotone" test_gammp_monotone;
          tc "erf known values" test_erf_known_values;
          tc "normal cdf" test_normal_cdf;
        ] );
      ( "ed_function",
        [
          tc "step threshold" test_step_threshold;
          tc "rayleigh formula" test_rayleigh_formula;
          tc "zero-cost convention" test_zero_cost_convention;
          tc "absent always fails" test_absent_always_fails;
          tc "nakagami m=1 = rayleigh" test_nakagami_m1_is_rayleigh;
          tc "nakagami sharper with m" test_nakagami_sharper_with_m;
          tc "rician moment matching" test_rician_moment_matching;
          tc "cost inverse rayleigh" test_cost_for_failure_rayleigh;
          tc "cost inverse step" test_cost_for_failure_step;
          tc "cost inverse nakagami" test_cost_for_failure_nakagami;
          tc "lognormal median" test_lognormal_median;
          tc "lognormal sigma widens" test_lognormal_sigma_widens;
          tc "lognormal inverse" test_lognormal_inverse;
          tc "cost inverse absent" test_cost_for_failure_absent;
          tc "property 3.1" test_property_3_1;
          tc "of_distance" test_of_distance;
          QCheck_alcotest.to_alcotest prop_failure_in_unit;
          QCheck_alcotest.to_alcotest prop_failure_monotone;
          QCheck_alcotest.to_alcotest prop_cost_inverse;
        ] );
    ]
