test/test_tvg.ml: Alcotest Array Bitset Float Interval Interval_set Journey List Option Partition QCheck QCheck_alcotest Reachability Rng Tmedb_prelude Tmedb_tvg Tvg
