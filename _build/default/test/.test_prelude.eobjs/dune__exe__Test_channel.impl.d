test/test_channel.ml: Alcotest Array Ed_function Float Format Gen List Phy Printf QCheck QCheck_alcotest Specfun Tmedb_channel
