test/test_steiner.ml: Alcotest Arborescence Array Digraph Dijkstra Dst Float Futil Int List QCheck QCheck_alcotest Rng Tmedb_prelude Tmedb_steiner
