test/test_experiment.ml: Alcotest Experiment Float List Printf Tmedb Tmedb_prelude Tmedb_trace
