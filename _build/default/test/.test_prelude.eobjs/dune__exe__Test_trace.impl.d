test/test_trace.ml: Alcotest Array Contact Filename Hashtbl Interval List Mobility Option QCheck QCheck_alcotest Rng Synth Sys Tmedb_prelude Tmedb_trace Tmedb_tvg Trace
