test/test_prelude.ml: Alcotest Array Bitset Dist Dsu Float Format Fun Futil Gen Int Interval Interval_set List Pqueue QCheck QCheck_alcotest Rng Stats Tmedb_prelude
