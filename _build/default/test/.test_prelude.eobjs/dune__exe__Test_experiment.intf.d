test/test_experiment.mli:
