test/test_nlp.ml: Alcotest Array Bisect Float Nlp Numdiff Printf Projgrad QCheck QCheck_alcotest Tmedb_nlp
