test/test_steiner.mli:
