test/test_tvg.mli:
