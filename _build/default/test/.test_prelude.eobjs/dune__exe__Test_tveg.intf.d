test/test_tveg.mli:
