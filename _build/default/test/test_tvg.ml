(* Tests for tmedb_tvg: partitions (Def. 5.1), time-varying graphs,
   journeys (Def. 3.1) and temporal reachability. *)

open Tmedb_prelude
open Tmedb_tvg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_floats = Alcotest.(check (array (float 1e-9)))
let iv lo hi = Interval.make ~lo ~hi
let span10 = iv 0. 10.

(* ------------------------------------------------------------------ *)
(* Partition *)

let test_partition_make () =
  let p = Partition.make ~span:span10 [ 3.; 7.; 3.; 12.; -1. ] in
  check_floats "points" [| 0.; 3.; 7.; 10. |] (Partition.points p);
  check_int "cardinal" 3 (Partition.cardinal p)

let test_partition_trivial () =
  let p = Partition.trivial ~span:span10 in
  check_floats "two points" [| 0.; 10. |] (Partition.points p);
  check_int "one interval" 1 (Partition.cardinal p)

let test_partition_intervals () =
  let p = Partition.make ~span:span10 [ 4. ] in
  Alcotest.(check int) "two intervals" 2 (List.length (Partition.intervals p));
  match Partition.intervals p with
  | [ a; b ] ->
      check_bool "first" true (Interval.equal a (iv 0. 4.));
      check_bool "second" true (Interval.equal b (iv 4. 10.))
  | _ -> Alcotest.fail "expected two intervals"

let test_partition_interval_containing () =
  let p = Partition.make ~span:span10 [ 2.; 5. ] in
  (match Partition.interval_containing p 3. with
  | Some i -> check_bool "middle" true (Interval.equal i (iv 2. 5.))
  | None -> Alcotest.fail "expected interval");
  (match Partition.interval_containing p 0. with
  | Some i -> check_bool "start" true (Interval.equal i (iv 0. 2.))
  | None -> Alcotest.fail "expected interval");
  check_bool "endpoint outside" true (Partition.interval_containing p 10. = None);
  check_bool "before span" true (Partition.interval_containing p (-1.) = None)

let test_partition_start_of_interval () =
  let p = Partition.make ~span:span10 [ 2.; 5. ] in
  Alcotest.(check (option (float 0.))) "et-point" (Some 2.) (Partition.start_of_interval p 4.9);
  Alcotest.(check (option (float 0.))) "exact point" (Some 5.) (Partition.start_of_interval p 5.)

let test_partition_combine () =
  let a = Partition.make ~span:span10 [ 2. ] in
  let b = Partition.make ~span:span10 [ 5.; 2. ] in
  let c = Partition.combine a b in
  check_floats "combined" [| 0.; 2.; 5.; 10. |] (Partition.points c);
  check_bool "refines a" true (Partition.refines c a);
  check_bool "refines b" true (Partition.refines c b);
  check_bool "a does not refine c" false (Partition.refines a c)

let test_partition_combine_mismatch () =
  let a = Partition.trivial ~span:span10 in
  let b = Partition.trivial ~span:(iv 0. 5.) in
  Alcotest.check_raises "span mismatch" (Invalid_argument "Partition.combine: span mismatch")
    (fun () -> ignore (Partition.combine a b))

let test_partition_combine_all_idempotent () =
  let a = Partition.make ~span:span10 [ 1.; 2.; 3. ] in
  let c = Partition.combine_all ~span:span10 [ a; a; a ] in
  check_bool "idempotent" true (Partition.equal a c)

(* ------------------------------------------------------------------ *)
(* Tvg *)

(* 0 -- 1 on [0,4) and [6,8);  1 -- 2 on [3,7);  isolated node 3. *)
let sample_tvg () =
  Tvg.of_presences ~n:4 ~span:span10
    [ (0, 1, iv 0. 4.); (0, 1, iv 6. 8.); (1, 2, iv 3. 7.) ]

let test_tvg_presence () =
  let g = sample_tvg () in
  check_bool "0-1 at 2" true (Tvg.present g 0 1 2.);
  check_bool "0-1 at 5" false (Tvg.present g 0 1 5.);
  check_bool "symmetric" true (Tvg.present g 1 0 2.);
  check_bool "1-2 at 3" true (Tvg.present g 1 2 3.);
  check_bool "0-2 never" false (Tvg.present g 0 2 3.)

let test_tvg_rho_tau () =
  let g = sample_tvg () in
  check_bool "tau 0 inside" true (Tvg.rho_tau g ~tau:0. 0 1 3.9);
  check_bool "tau 1 fits" true (Tvg.rho_tau g ~tau:1. 0 1 2.9);
  check_bool "tau 1 overruns" false (Tvg.rho_tau g ~tau:1. 0 1 3.5);
  check_bool "tau spans gap" false (Tvg.rho_tau g ~tau:3. 0 1 3.)

let test_tvg_neighbors_degree () =
  let g = sample_tvg () in
  Alcotest.(check (list int)) "n(1) at 3.5" [ 0; 2 ] (Tvg.neighbors_at g ~tau:0. 1 3.5);
  Alcotest.(check (list int)) "n(1) at 5" [ 2 ] (Tvg.neighbors_at g ~tau:0. 1 5.);
  check_int "deg(3)" 0 (Tvg.degree_at g ~tau:0. 3 5.);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (1, 2) ] (Tvg.edge_pairs g)

let test_tvg_pair_partition () =
  let g = sample_tvg () in
  let p = Tvg.pair_partition g 0 1 in
  check_floats "boundaries" [| 0.; 4.; 6.; 8.; 10. |] (Partition.points p)

let test_tvg_adjacent_partition () =
  let g = sample_tvg () in
  let p = Tvg.adjacent_partition g 1 in
  (* Union of 0-1 and 1-2 boundaries. *)
  check_floats "P^ad_1" [| 0.; 3.; 4.; 6.; 7.; 8.; 10. |] (Partition.points p);
  let p3 = Tvg.adjacent_partition g 3 in
  check_floats "isolated trivial" [| 0.; 10. |] (Partition.points p3)

let test_tvg_average_degree () =
  let g = sample_tvg () in
  (* Total presence length = 4 + 2 + 4 = 10; degree integral = 2*10;
     nodes = 4; window length 10 -> 0.5. *)
  Alcotest.(check (float 1e-9)) "avg degree" 0.5 (Tvg.average_degree_over g ~window:span10)

let test_tvg_restrict () =
  let g = sample_tvg () in
  let r = Tvg.restrict g ~span:(iv 3. 7.) in
  check_bool "0-1 clipped" true
    (Interval_set.equal (Tvg.presence r 0 1) (Interval_set.of_list [ iv 3. 4.; iv 6. 7. ]));
  check_bool "1-2 kept" true
    (Interval_set.equal (Tvg.presence r 1 2) (Interval_set.single (iv 3. 7.)))

let test_tvg_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Tvg.add_presence: self-loop") (fun () ->
      ignore (Tvg.add_presence (Tvg.create ~n:3 ~span:span10) 1 1 (iv 0. 1.)));
  Alcotest.check_raises "out of span"
    (Invalid_argument "Tvg.add_presence: interval outside the time span") (fun () ->
      ignore (Tvg.add_presence (Tvg.create ~n:3 ~span:span10) 0 1 (iv 5. 11.)))

(* ------------------------------------------------------------------ *)
(* Journey *)

let test_journey_validity () =
  let g = sample_tvg () in
  let j =
    [ { Journey.from_node = 0; to_node = 1; depart = 1. };
      { Journey.from_node = 1; to_node = 2; depart = 3.5 } ]
  in
  check_bool "valid" true (Journey.is_valid g ~tau:0. j);
  check_int "length" 2 (Journey.length j);
  Alcotest.(check (list int)) "nodes" [ 0; 1; 2 ] (Journey.nodes j)

let test_journey_invalid_chain () =
  let g = sample_tvg () in
  let j =
    [ { Journey.from_node = 0; to_node = 1; depart = 1. };
      { Journey.from_node = 2; to_node = 1; depart = 3.5 } ]
  in
  check_bool "broken chain" false (Journey.is_valid g ~tau:0. j)

let test_journey_invalid_presence () =
  let g = sample_tvg () in
  let j = [ { Journey.from_node = 0; to_node = 1; depart = 5. } ] in
  check_bool "edge absent" false (Journey.is_valid g ~tau:0. j)

let test_journey_time_order () =
  let g = sample_tvg () in
  (* Departing 1->2 before arriving from 0 violates t_{l+1} >= t_l + tau. *)
  let j =
    [ { Journey.from_node = 0; to_node = 1; depart = 3.5 };
      { Journey.from_node = 1; to_node = 2; depart = 3. } ]
  in
  check_bool "time disorder" false (Journey.is_valid g ~tau:0.2 j)

let test_journey_no_repeat () =
  let g =
    Tvg.of_presences ~n:3 ~span:span10
      [ (0, 1, iv 0. 10.); (1, 2, iv 0. 10.); (0, 2, iv 0. 10.) ]
  in
  let j =
    [ { Journey.from_node = 0; to_node = 1; depart = 1. };
      { Journey.from_node = 1; to_node = 2; depart = 2. };
      { Journey.from_node = 2; to_node = 0; depart = 3. } ]
  in
  check_bool "circle rejected" false (Journey.is_valid g ~tau:0. j)

let test_journey_non_stop () =
  let j =
    [ { Journey.from_node = 0; to_node = 1; depart = 1. };
      { Journey.from_node = 1; to_node = 2; depart = 2. } ]
  in
  check_bool "non-stop tau=1" true (Journey.is_non_stop ~tau:1. j);
  check_bool "not non-stop tau=0.5" false (Journey.is_non_stop ~tau:0.5 j)

let test_journey_departure_arrival () =
  let j =
    [ { Journey.from_node = 0; to_node = 1; depart = 1. };
      { Journey.from_node = 1; to_node = 2; depart = 4. } ]
  in
  Alcotest.(check (option (float 0.))) "departure" (Some 1.) (Journey.departure j);
  Alcotest.(check (option (float 0.))) "arrival" (Some 4.5) (Journey.arrival ~tau:0.5 j);
  Alcotest.(check (option (float 0.))) "empty departure" None (Journey.departure [])

let test_earliest_arrival_waits_for_edge () =
  let g = sample_tvg () in
  (* From node 2 starting at t=0: edge 1-2 opens at 3. *)
  let arr = Journey.earliest_arrival g ~tau:0. ~src:2 ~t0:0. in
  Alcotest.(check (float 1e-9)) "reach 1 at 3" 3. arr.(1);
  Alcotest.(check (float 1e-9)) "reach 0 at 3 (chain)" 3. arr.(0);
  check_bool "node 3 unreachable" true (arr.(3) = Float.infinity)

let test_earliest_arrival_tau_delays () =
  let g = sample_tvg () in
  let arr = Journey.earliest_arrival g ~tau:1. ~src:2 ~t0:0. in
  Alcotest.(check (float 1e-9)) "reach 1 at 4" 4. arr.(1);
  (* 0-1 gap [4,6): must wait for the second contact, depart 6 arrive 7. *)
  Alcotest.(check (float 1e-9)) "reach 0 at 7" 7. arr.(0)

let test_earliest_arrival_source () =
  let g = sample_tvg () in
  let arr = Journey.earliest_arrival g ~tau:0. ~src:0 ~t0:2. in
  Alcotest.(check (float 1e-9)) "source at t0" 2. arr.(0);
  Alcotest.(check (float 1e-9)) "1 immediately" 2. arr.(1);
  Alcotest.(check (float 1e-9)) "2 waits for 3" 3. arr.(2)

let test_foremost_journey_valid () =
  let g = sample_tvg () in
  match Journey.foremost_journey g ~tau:0. ~src:2 ~t0:0. ~dst:0 with
  | None -> Alcotest.fail "expected a journey"
  | Some j ->
      check_bool "journey valid" true (Journey.is_valid g ~tau:0. j);
      Alcotest.(check (option (float 0.))) "arrives at 3" (Some 3.) (Journey.arrival ~tau:0. j);
      Alcotest.(check (list int)) "path" [ 2; 1; 0 ] (Journey.nodes j)

let test_foremost_journey_unreachable () =
  let g = sample_tvg () in
  check_bool "no journey to isolated node" true
    (Journey.foremost_journey g ~tau:0. ~src:0 ~t0:0. ~dst:3 = None)

(* Random TVGs for property tests. *)
let random_tvg seed =
  let g = Rng.create seed in
  let n = 2 + Rng.int g 5 in
  let entries = ref [] in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      for _ = 0 to Rng.int g 3 do
        let lo = Rng.float g 8. in
        let hi = lo +. 0.2 +. Rng.float g (9.8 -. lo) in
        entries := (i, j, iv lo (Float.min 10. hi)) :: !entries
      done
    done
  done;
  Tvg.of_presences ~n ~span:span10 !entries

(* Shortest (min-hop) journeys: 0-2 direct opens late, 0-1-2 available
   early: the shortest prefers the single late hop; the foremost takes
   two early hops. *)
let shortcut_tvg () =
  Tvg.of_presences ~n:3 ~span:span10
    [ (0, 1, iv 0. 2.); (1, 2, iv 2. 4.); (0, 2, iv 6. 8.) ]

let test_shortest_journey_prefers_fewer_hops () =
  let g = shortcut_tvg () in
  (match Journey.shortest_journey g ~tau:0. ~src:0 ~t0:0. ~dst:2 ~deadline:10. with
  | Some j ->
      check_int "one hop" 1 (Journey.length j);
      check_bool "valid" true (Journey.is_valid g ~tau:0. j)
  | None -> Alcotest.fail "expected a journey");
  (* The foremost journey arrives at 2 via two hops. *)
  match Journey.foremost_journey g ~tau:0. ~src:0 ~t0:0. ~dst:2 with
  | Some j -> check_int "foremost two hops" 2 (Journey.length j)
  | None -> Alcotest.fail "expected foremost journey"

let test_shortest_journey_respects_deadline () =
  let g = shortcut_tvg () in
  (* Deadline 5 rules out the direct hop: must use the two-hop path. *)
  match Journey.shortest_journey g ~tau:0. ~src:0 ~t0:0. ~dst:2 ~deadline:5. with
  | Some j -> check_int "two hops under deadline" 2 (Journey.length j)
  | None -> Alcotest.fail "expected a journey"

let test_shortest_journey_unreachable () =
  let g = shortcut_tvg () in
  check_bool "too tight" true
    (Journey.shortest_journey g ~tau:0. ~src:0 ~t0:0. ~dst:2 ~deadline:1. = None)

let test_min_hop_arrivals_monotone () =
  let g = shortcut_tvg () in
  let a = Journey.min_hop_arrivals g ~tau:0. ~src:0 ~t0:0. in
  for h = 1 to 2 do
    for j = 0 to 2 do
      check_bool "more hops never hurt" true (a.(h).(j) <= a.(h - 1).(j))
    done
  done;
  Alcotest.(check (float 1e-9)) "2 hops reach node 2 at 2" 2. a.(2).(2)

(* Fastest journeys: departing immediately means waiting mid-route;
   departing late rides a direct contact. *)
let test_fastest_journey_delays_departure () =
  let g = shortcut_tvg () in
  match Journey.fastest_journey g ~tau:0. ~src:0 ~t0:0. ~dst:2 with
  | Some j ->
      (match Journey.duration ~tau:0. j with
      | Some d -> Alcotest.(check (float 1e-9)) "instantaneous at t=6" 0. d
      | None -> Alcotest.fail "expected duration");
      Alcotest.(check (option (float 1e-9))) "departs at 6" (Some 6.) (Journey.departure j)
  | None -> Alcotest.fail "expected a journey"

let test_fastest_journey_source () =
  let g = shortcut_tvg () in
  Alcotest.(check (option (list (pair (pair int int) (float 0.)))))
    "src to src is empty" (Some [])
    (Option.map
       (List.map (fun h -> ((h.Journey.from_node, h.Journey.to_node), h.Journey.depart)))
       (Journey.fastest_journey g ~tau:0. ~src:0 ~t0:0. ~dst:0))

let prop_fastest_no_slower_than_foremost =
  QCheck.Test.make ~name:"fastest duration <= foremost duration" ~count:100 QCheck.small_int
    (fun seed ->
      let g = random_tvg seed in
      let n = Tvg.n g in
      List.for_all
        (fun dst ->
          match Journey.foremost_journey g ~tau:0. ~src:0 ~t0:0. ~dst with
          | None -> Journey.fastest_journey g ~tau:0. ~src:0 ~t0:0. ~dst = None
          | Some fj -> (
              match Journey.fastest_journey g ~tau:0. ~src:0 ~t0:0. ~dst with
              | None -> false
              | Some qj -> (
                  match (Journey.duration ~tau:0. qj, Journey.duration ~tau:0. fj) with
                  | Some dq, Some df -> dq <= df +. 1e-9 && Journey.is_valid g ~tau:0. qj
                  | _ -> true)))
        (List.init (n - 1) (fun k -> k + 1)))

let prop_shortest_no_longer_than_foremost =
  QCheck.Test.make ~name:"shortest hops <= foremost hops" ~count:100 QCheck.small_int
    (fun seed ->
      let g = random_tvg seed in
      let n = Tvg.n g in
      List.for_all
        (fun dst ->
          match Journey.foremost_journey g ~tau:0. ~src:0 ~t0:0. ~dst with
          | None -> true
          | Some fj -> (
              match Journey.shortest_journey g ~tau:0. ~src:0 ~t0:0. ~dst ~deadline:10. with
              | None -> false
              | Some sj ->
                  Journey.length sj <= Journey.length fj && Journey.is_valid g ~tau:0. sj))
        (List.init (n - 1) (fun k -> k + 1)))

(* ------------------------------------------------------------------ *)
(* Reachability *)

let test_reachable_set () =
  let g = sample_tvg () in
  let s = Reachability.reachable_set g ~tau:0. ~src:0 ~t0:0. ~deadline:10. in
  Alcotest.(check (list int)) "component" [ 0; 1; 2 ] (Bitset.to_list s);
  check_bool "not broadcastable" false
    (Reachability.is_broadcastable g ~tau:0. ~src:0 ~t0:0. ~deadline:10.)

let test_reachable_deadline_cuts () =
  let g = sample_tvg () in
  let s = Reachability.reachable_set g ~tau:0. ~src:0 ~t0:0. ~deadline:2. in
  Alcotest.(check (list int)) "only 0,1 by t=2" [ 0; 1 ] (Bitset.to_list s)

let test_reachability_matrix () =
  let g = sample_tvg () in
  let m = Reachability.reachability_matrix g ~tau:0. ~t0:0. ~deadline:10. in
  check_bool "0 reaches 2" true m.(0).(2);
  check_bool "2 reaches 0" true m.(2).(0);
  check_bool "3 reaches only itself" true (m.(3).(3) && not m.(3).(0))

let test_completion_time () =
  let g = Tvg.of_presences ~n:3 ~span:span10 [ (0, 1, iv 1. 2.); (1, 2, iv 5. 6.) ] in
  Alcotest.(check (float 1e-9)) "completion" 5.
    (Reachability.broadcast_completion_time g ~tau:0. ~src:0 ~t0:0.);
  check_bool "infinite with isolated node" true
    (Reachability.broadcast_completion_time (sample_tvg ()) ~tau:0. ~src:0 ~t0:0.
    = Float.infinity)

let prop_earliest_arrival_sound =
  QCheck.Test.make ~name:"earliest arrival >= t0, source = t0" ~count:100 QCheck.small_int
    (fun seed ->
      let g = random_tvg seed in
      let arr = Journey.earliest_arrival g ~tau:0. ~src:0 ~t0:1. in
      arr.(0) = 1. && Array.for_all (fun a -> a >= 1.) arr)

let prop_foremost_journey_is_valid =
  QCheck.Test.make ~name:"foremost journeys validate" ~count:100 QCheck.small_int (fun seed ->
      let g = random_tvg seed in
      let n = Tvg.n g in
      List.for_all
        (fun dst ->
          match Journey.foremost_journey g ~tau:0. ~src:0 ~t0:0. ~dst with
          | None -> true
          | Some j -> Journey.is_valid g ~tau:0. j)
        (List.init (n - 1) (fun k -> k + 1)))

let prop_reachability_monotone_deadline =
  QCheck.Test.make ~name:"reachable set grows with deadline" ~count:100 QCheck.small_int
    (fun seed ->
      let g = random_tvg seed in
      let early = Reachability.reachable_set g ~tau:0. ~src:0 ~t0:0. ~deadline:3. in
      let late = Reachability.reachable_set g ~tau:0. ~src:0 ~t0:0. ~deadline:9. in
      Bitset.subset early late)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "tvg"
    [
      ( "partition",
        [
          tc "make" test_partition_make;
          tc "trivial" test_partition_trivial;
          tc "intervals" test_partition_intervals;
          tc "interval containing" test_partition_interval_containing;
          tc "start of interval" test_partition_start_of_interval;
          tc "combine" test_partition_combine;
          tc "combine mismatch" test_partition_combine_mismatch;
          tc "combine_all idempotent" test_partition_combine_all_idempotent;
        ] );
      ( "tvg",
        [
          tc "presence" test_tvg_presence;
          tc "rho_tau" test_tvg_rho_tau;
          tc "neighbors/degree" test_tvg_neighbors_degree;
          tc "pair partition" test_tvg_pair_partition;
          tc "adjacent partition" test_tvg_adjacent_partition;
          tc "average degree" test_tvg_average_degree;
          tc "restrict" test_tvg_restrict;
          tc "validation" test_tvg_validation;
        ] );
      ( "journey",
        [
          tc "validity" test_journey_validity;
          tc "invalid chain" test_journey_invalid_chain;
          tc "invalid presence" test_journey_invalid_presence;
          tc "time order" test_journey_time_order;
          tc "no repeat" test_journey_no_repeat;
          tc "non-stop" test_journey_non_stop;
          tc "departure/arrival" test_journey_departure_arrival;
          tc "earliest waits for edge" test_earliest_arrival_waits_for_edge;
          tc "earliest tau delays" test_earliest_arrival_tau_delays;
          tc "earliest from source" test_earliest_arrival_source;
          tc "foremost valid" test_foremost_journey_valid;
          tc "foremost unreachable" test_foremost_journey_unreachable;
          tc "shortest prefers fewer hops" test_shortest_journey_prefers_fewer_hops;
          tc "shortest respects deadline" test_shortest_journey_respects_deadline;
          tc "shortest unreachable" test_shortest_journey_unreachable;
          tc "min-hop arrivals monotone" test_min_hop_arrivals_monotone;
          tc "fastest delays departure" test_fastest_journey_delays_departure;
          tc "fastest from source" test_fastest_journey_source;
          QCheck_alcotest.to_alcotest prop_earliest_arrival_sound;
          QCheck_alcotest.to_alcotest prop_foremost_journey_is_valid;
          QCheck_alcotest.to_alcotest prop_fastest_no_slower_than_foremost;
          QCheck_alcotest.to_alcotest prop_shortest_no_longer_than_foremost;
        ] );
      ( "reachability",
        [
          tc "reachable set" test_reachable_set;
          tc "deadline cuts" test_reachable_deadline_cuts;
          tc "matrix" test_reachability_matrix;
          tc "completion time" test_completion_time;
          QCheck_alcotest.to_alcotest prop_reachability_monotone_deadline;
        ] );
    ]
