(** Box-constrained smooth minimisation by projected gradient descent
    with backtracking (Armijo) line search, optionally accelerated by
    Barzilai–Borwein spectral steps. *)

type options = {
  max_iter : int;
  grad_tol : float;  (** Stop when the projected gradient norm falls below. *)
  step_init : float;
  step_shrink : float;  (** Backtracking factor in (0,1). *)
  armijo : float;  (** Sufficient-decrease constant in (0,1). *)
  bb : bool;
      (** Seed each backtracking search with the Barzilai–Borwein
          (BB1) spectral step and accept against a nonmonotone
          reference (the worst of the last few accepted values)
          instead of the strictly monotone Armijo test.  Off by
          default: the default path is bit-identical to the classic
          monotone search, which the figure goldens pin.  Used by the
          warm-started FR allocation ({!Tmedb.Fr}), where the spectral
          step cuts iteration counts severalfold near a warm start. *)
}

val default_options : options

type result = {
  x : float array;
  f : float;
  iterations : int;
  converged : bool;  (** Projected-gradient criterion met. *)
}

val minimize :
  ?options:options ->
  f:(float array -> float) ->
  ?grad:(float array -> float array) ->
  lower:float array ->
  upper:float array ->
  x0:float array ->
  unit ->
  result
(** Gradient defaults to central differences.  [x0] is projected into
    the box before starting.  @raise Invalid_argument on dimension
    mismatch or an empty box. *)
