let root ?(tol = 1e-12) ?(max_iter = 200) f ~lo ~hi =
  let flo = f lo and fhi = f hi in
  if Float.equal flo 0. then Some lo
  else if Float.equal fhi 0. then Some hi
  else if flo *. fhi > 0. then None
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let iter = ref 0 in
    while !hi -. !lo > tol *. Float.max 1. (Float.abs !hi) && !iter < max_iter do
      incr iter;
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if Float.equal fmid 0. then begin
        lo := mid;
        hi := mid
      end
      else if !flo *. fmid < 0. then hi := mid
      else begin
        lo := mid;
        flo := fmid
      end
    done;
    Some (0.5 *. (!lo +. !hi))
  end

let least_satisfying ?(tol = 1e-12) ?(max_iter = 200) p ~lo ~hi =
  if not (p hi) then None
  else if p lo then Some lo
  else begin
    let lo = ref lo and hi = ref hi in
    let iter = ref 0 in
    while !hi -. !lo > tol *. Float.max 1. (Float.abs !hi) && !iter < max_iter do
      incr iter;
      let mid = 0.5 *. (!lo +. !hi) in
      if p mid then hi := mid else lo := mid
    done;
    Some !hi
  end
