type constraint_fn = {
  g : float array -> float;
  g_grad : (float array -> float array) option;
  label : string;
}

type problem = {
  objective : float array -> float;
  objective_grad : (float array -> float array) option;
  constraints : constraint_fn list;
  lower : float array;
  upper : float array;
}

type options = {
  mu_init : float;
  mu_growth : float;
  outer_iter : int;
  feas_tol : float;
  inner : Projgrad.options;
}

let default_options =
  {
    mu_init = 10.;
    mu_growth = 8.;
    outer_iter = 12;
    feas_tol = 1e-8;
    inner = { Projgrad.default_options with max_iter = 300 };
  }

type result = {
  x : float array;
  objective : float;
  max_violation : float;
  feasible : bool;
  outer_iterations : int;
}

(* Telemetry: penalty-method solves and their wall time (the inner
   projected-gradient work is timed separately as [nlp.projgrad]). *)
let c_solves = Tmedb_obs.Counter.make "nlp.solves"
let t_solve = Tmedb_obs.Timer.make "nlp.solve"

let max_violation problem x =
  List.fold_left (fun acc c -> Float.max acc (Float.max 0. (c.g x))) 0. problem.constraints

let penalized problem ~mu x =
  let violation_sq =
    List.fold_left
      (fun acc c ->
        let v = Float.max 0. (c.g x) in
        acc +. (v *. v))
      0. problem.constraints
  in
  problem.objective x +. (mu *. violation_sq)

let penalized_grad problem ~mu x =
  let n = Array.length x in
  let base =
    match problem.objective_grad with
    | Some g -> g x
    | None -> Numdiff.gradient problem.objective x
  in
  let grad = Array.copy base in
  List.iter
    (fun c ->
      let v = c.g x in
      if v > 0. then begin
        let cg = match c.g_grad with Some g -> g x | None -> Numdiff.gradient c.g x in
        for i = 0 to n - 1 do
          grad.(i) <- grad.(i) +. (2. *. mu *. v *. cg.(i))
        done
      end)
    problem.constraints;
  grad

let solve ?(options = default_options) problem ~x0 =
  Tmedb_obs.Counter.incr c_solves;
  let ts = Tmedb_obs.Timer.start t_solve in
  let mu = ref options.mu_init in
  let x = ref (Array.copy x0) in
  let outer = ref 0 in
  let finished = ref false in
  while (not !finished) && !outer < options.outer_iter do
    incr outer;
    let mu_now = !mu in
    let inner_result =
      Projgrad.minimize ~options:options.inner
        ~f:(penalized problem ~mu:mu_now)
        ~grad:(penalized_grad problem ~mu:mu_now)
        ~lower:problem.lower ~upper:problem.upper ~x0:!x ()
    in
    x := inner_result.Projgrad.x;
    if max_violation problem !x <= options.feas_tol then finished := true
    else mu := !mu *. options.mu_growth
  done;
  let violation = max_violation problem !x in
  Tmedb_obs.Timer.stop t_solve ts;
  {
    x = !x;
    objective = problem.objective !x;
    max_violation = violation;
    feasible = violation <= options.feas_tol;
    outer_iterations = !outer;
  }
