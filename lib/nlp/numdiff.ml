let gradient ?(h = 1e-6) f x =
  let n = Array.length x in
  let grad = Array.make n 0. in
  let probe = Array.copy x in
  for i = 0 to n - 1 do
    let step = h *. Float.max 1. (Float.abs x.(i)) in
    probe.(i) <- x.(i) +. step;
    let fp = f probe in
    probe.(i) <- x.(i) -. step;
    let fm = f probe in
    probe.(i) <- x.(i);
    grad.(i) <- (fp -. fm) /. (2. *. step)
  done;
  grad

let directional ?(h = 1e-6) f x ~dir =
  let n = Array.length x in
  let norm = sqrt (Array.fold_left (fun acc d -> acc +. (d *. d)) 0. dir) in
  if Float.equal norm 0. then 0.
  else begin
    let step = h /. norm in
    let shifted sign = Array.init n (fun i -> x.(i) +. (sign *. step *. dir.(i))) in
    (f (shifted 1.) -. f (shifted (-1.))) /. (2. *. step)
  end
