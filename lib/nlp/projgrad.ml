open Tmedb_prelude

type options = {
  max_iter : int;
  grad_tol : float;
  step_init : float;
  step_shrink : float;
  armijo : float;
  bb : bool;
}

let default_options =
  {
    max_iter = 500;
    grad_tol = 1e-9;
    step_init = 1.;
    step_shrink = 0.5;
    armijo = 1e-4;
    bb = false;
  }

type result = { x : float array; f : float; iterations : int; converged : bool }

(* Telemetry: inner-solver invocations, total descent iterations, and
   the wall time of every minimize call. *)
let c_iterations = Tmedb_obs.Counter.make "nlp.projgrad_iterations"
let t_minimize = Tmedb_obs.Timer.make "nlp.projgrad"

let project ~lower ~upper x =
  Array.mapi (fun i xi -> Futil.clamp ~lo:lower.(i) ~hi:upper.(i) xi) x

let norm2 v = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. v)

(* Barzilai–Borwein window: the nonmonotone line search references the
   worst of the last few accepted objective values, which lets the
   long BB steps through where a monotone Armijo search would shrink
   them back to baby steps. *)
let bb_history = 5
let bb_step_min = 1e-10
let bb_step_max = 1e10

let minimize ?(options = default_options) ~f ?grad ~lower ~upper ~x0 () =
  let tm = Tmedb_obs.Timer.start t_minimize in
  let n = Array.length x0 in
  if Array.length lower <> n || Array.length upper <> n then
    invalid_arg "Projgrad.minimize: dimension mismatch";
  Array.iteri
    (fun i lo -> if lo > upper.(i) then invalid_arg "Projgrad.minimize: empty box")
    lower;
  let grad = match grad with Some g -> g | None -> Numdiff.gradient f in
  let x = ref (project ~lower ~upper x0) in
  let fx = ref (f !x) in
  let iterations = ref 0 in
  let converged = ref false in
  (* BB state: the previous accepted iterate/gradient, and the recent
     accepted objective values (newest first).  Untouched — and without
     effect on any float computed — unless [options.bb] is set. *)
  let prev = ref None in
  let recent_f = ref [ !fx ] in
  while (not !converged) && !iterations < options.max_iter do
    incr iterations;
    let g = grad !x in
    (* Projected-gradient stationarity measure: the step to the
       projection of a unit gradient move. *)
    let moved = project ~lower ~upper (Array.mapi (fun i xi -> xi -. g.(i)) !x) in
    let pg = Array.mapi (fun i mi -> !x.(i) -. mi) moved in
    if norm2 pg <= options.grad_tol then converged := true
    else begin
      (* BB1 spectral step (s·s)/(s·y) seeds the backtracking when
         enabled; the plain Armijo search keeps [step_init]. *)
      let step0 =
        if not options.bb then options.step_init
        else begin
          match !prev with
          | None -> options.step_init
          | Some (px, pgrad) ->
              let sts = ref 0. and sty = ref 0. in
              for i = 0 to n - 1 do
                let s = !x.(i) -. px.(i) in
                sts := !sts +. (s *. s);
                sty := !sty +. (s *. (g.(i) -. pgrad.(i)))
              done;
              if !sty > 0. && !sts > 0. then
                Futil.clamp ~lo:bb_step_min ~hi:bb_step_max (!sts /. !sty)
              else options.step_init
        end
      in
      (* Acceptance reference: with BB, the max of the recent accepted
         values (nonmonotone); otherwise the current value, which makes
         the test below exactly the classic monotone Armijo check. *)
      let f_ref =
        if not options.bb then !fx
        else List.fold_left Float.max !fx !recent_f
      in
      (* Backtracking along the projected-descent arc. *)
      let rec backtrack step tries =
        if tries = 0 then None
        else begin
          let cand =
            project ~lower ~upper (Array.mapi (fun i xi -> xi -. (step *. g.(i))) !x)
          in
          let fc = f cand in
          let decrease =
            Array.to_list (Array.mapi (fun i ci -> g.(i) *. (!x.(i) -. ci)) cand)
            |> List.fold_left ( +. ) 0.
          in
          if fc <= f_ref -. (options.armijo *. decrease) && fc < f_ref then Some (cand, fc)
          else backtrack (step *. options.step_shrink) (tries - 1)
        end
      in
      match backtrack step0 60 with
      | Some (cand, fc) ->
          if options.bb then begin
            prev := Some (Array.copy !x, g);
            recent_f := fc :: List.filteri (fun i _ -> i < bb_history - 1) !recent_f
          end;
          x := cand;
          fx := fc
      | None -> converged := true (* no descent available: local stationarity *)
    end
  done;
  Tmedb_obs.Counter.add c_iterations !iterations;
  Tmedb_obs.Timer.stop t_minimize tm;
  { x = !x; f = !fx; iterations = !iterations; converged = !converged }
