open Tmedb_prelude

type options = {
  max_iter : int;
  grad_tol : float;
  step_init : float;
  step_shrink : float;
  armijo : float;
}

let default_options =
  { max_iter = 500; grad_tol = 1e-9; step_init = 1.; step_shrink = 0.5; armijo = 1e-4 }

type result = { x : float array; f : float; iterations : int; converged : bool }

(* Telemetry: inner-solver invocations, total descent iterations, and
   the wall time of every minimize call. *)
let c_iterations = Tmedb_obs.Counter.make "nlp.projgrad_iterations"
let t_minimize = Tmedb_obs.Timer.make "nlp.projgrad"

let project ~lower ~upper x =
  Array.mapi (fun i xi -> Futil.clamp ~lo:lower.(i) ~hi:upper.(i) xi) x

let norm2 v = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. v)

let minimize ?(options = default_options) ~f ?grad ~lower ~upper ~x0 () =
  let tm = Tmedb_obs.Timer.start t_minimize in
  let n = Array.length x0 in
  if Array.length lower <> n || Array.length upper <> n then
    invalid_arg "Projgrad.minimize: dimension mismatch";
  Array.iteri
    (fun i lo -> if lo > upper.(i) then invalid_arg "Projgrad.minimize: empty box")
    lower;
  let grad = match grad with Some g -> g | None -> Numdiff.gradient f in
  let x = ref (project ~lower ~upper x0) in
  let fx = ref (f !x) in
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < options.max_iter do
    incr iterations;
    let g = grad !x in
    (* Projected-gradient stationarity measure: the step to the
       projection of a unit gradient move. *)
    let moved = project ~lower ~upper (Array.mapi (fun i xi -> xi -. g.(i)) !x) in
    let pg = Array.mapi (fun i mi -> !x.(i) -. mi) moved in
    if norm2 pg <= options.grad_tol then converged := true
    else begin
      (* Backtracking along the projected-descent arc. *)
      let rec backtrack step tries =
        if tries = 0 then None
        else begin
          let cand =
            project ~lower ~upper (Array.mapi (fun i xi -> xi -. (step *. g.(i))) !x)
          in
          let fc = f cand in
          let decrease =
            Array.to_list (Array.mapi (fun i ci -> g.(i) *. (!x.(i) -. ci)) cand)
            |> List.fold_left ( +. ) 0.
          in
          if fc <= !fx -. (options.armijo *. decrease) && fc < !fx then Some (cand, fc)
          else backtrack (step *. options.step_shrink) (tries - 1)
        end
      in
      match backtrack options.step_init 60 with
      | Some (cand, fc) ->
          x := cand;
          fx := fc
      | None -> converged := true (* no descent available: local stationarity *)
    end
  done;
  Tmedb_obs.Counter.add c_iterations !iterations;
  Tmedb_obs.Timer.stop t_minimize tm;
  { x = !x; f = !fx; iterations = !iterations; converged = !converged }
