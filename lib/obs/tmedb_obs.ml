(* Registry state.  Counters and timers are Atomic cells (any domain
   may bump them); span events go to domain-local buffers so the hot
   path never takes a lock.  The [registry_mutex] guards only handle
   registration and buffer enumeration — cold paths. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let now () = Unix.gettimeofday ()
let origin_ts = now ()
let origin () = origin_ts

let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* ------------------------------------------------------------------ *)
(* Counters *)

module Counter = struct
  type t = { name : string; cell : int Atomic.t }

  let table : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    with_registry (fun () ->
        match Hashtbl.find_opt table name with
        | Some c -> c
        | None ->
            let c = { name; cell = Atomic.make 0 } in
            Hashtbl.replace table name c;
            c)

  let name t = t.name
  let incr t = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add t.cell 1)
  let add t n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add t.cell n)
  let value t = Atomic.get t.cell
  let reset () = Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) table

  let all () =
    Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end

(* ------------------------------------------------------------------ *)
(* Timers.  Elapsed time accumulates as integer nanoseconds so that
   concurrent stops from several domains are single fetch-and-adds
   (no float CAS loop); 63-bit nanoseconds overflow after ~292 years. *)

module Timer = struct
  type t = { name : string; total_ns : int Atomic.t; hits : int Atomic.t }

  let table : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    with_registry (fun () ->
        match Hashtbl.find_opt table name with
        | Some t -> t
        | None ->
            let t = { name; total_ns = Atomic.make 0; hits = Atomic.make 0 } in
            Hashtbl.replace table name t;
            t)

  let name t = t.name
  let start _ = if Atomic.get enabled_flag then now () else 0.

  let stop t t0 =
    if t0 > 0. then begin
      let ns = int_of_float ((now () -. t0) *. 1e9) in
      ignore (Atomic.fetch_and_add t.total_ns (Stdlib.max 0 ns));
      ignore (Atomic.fetch_and_add t.hits 1)
    end

  let time t f =
    let t0 = start t in
    Fun.protect ~finally:(fun () -> stop t t0) f

  let total_seconds t = float_of_int (Atomic.get t.total_ns) *. 1e-9
  let count t = Atomic.get t.hits

  let reset () =
    Hashtbl.iter
      (fun _ t ->
        Atomic.set t.total_ns 0;
        Atomic.set t.hits 0)
      table

  let all () =
    Hashtbl.fold (fun name t acc -> (name, total_seconds t, count t) :: acc) table []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
end

(* ------------------------------------------------------------------ *)
(* Spans: per-domain buffers through domain-local storage.  A buffer
   is only ever appended to by its owning domain; the global [buffers]
   list (for harvesting) is touched once per domain, under the
   registry mutex. *)

type phase = Begin | End

type event = {
  name : string;
  domain : int;
  seq : int;
  ts : float;
  phase : phase;
  args : (string * string) list;
}

type buffer = {
  dom : int;
  mutable events_rev : event list;  (* newest first *)
  mutable next_seq : int;
}

let buffers : buffer list ref = ref []

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b = { dom = (Domain.self () :> int); events_rev = []; next_seq = 0 } in
      with_registry (fun () -> buffers := b :: !buffers);
      b)

let record name phase args =
  let b = Domain.DLS.get buffer_key in
  let seq = b.next_seq in
  b.next_seq <- seq + 1;
  b.events_rev <- { name; domain = b.dom; seq; ts = now (); phase; args } :: b.events_rev

module Span = struct
  let enter name args = if Atomic.get enabled_flag then record name Begin args
  let exit name = if Atomic.get enabled_flag then record name End []

  let with_ ?(args = []) name f =
    if not (Atomic.get enabled_flag) then f ()
    else begin
      record name Begin args;
      (* Close unconditionally so the buffer stays balanced even if
         the registry is flipped off while [f] runs. *)
      Fun.protect ~finally:(fun () -> record name End []) f
    end
end

(* ------------------------------------------------------------------ *)
(* Harvest *)

type timer_snapshot = { timer_name : string; seconds : float; hits : int }
type snapshot = { counters : (string * int) list; timers : timer_snapshot list }

let snapshot () =
  with_registry (fun () ->
      {
        counters = Counter.all ();
        timers =
          List.map (fun (timer_name, seconds, hits) -> { timer_name; seconds; hits })
            (Timer.all ());
      })

let events () =
  let bufs = with_registry (fun () -> !buffers) in
  let per_domain =
    List.map (fun b -> List.rev b.events_rev) bufs
    |> List.sort (fun a b ->
           match (a, b) with
           | [], [] -> 0
           | [], _ -> -1
           | _, [] -> 1
           | x :: _, y :: _ -> Int.compare x.domain y.domain)
  in
  List.concat per_domain

let reset () =
  with_registry (fun () ->
      Counter.reset ();
      Timer.reset ();
      List.iter
        (fun b ->
          b.events_rev <- [];
          b.next_seq <- 0)
        !buffers)
