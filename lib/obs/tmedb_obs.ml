(* Registry state.  Counters and timers are Atomic cells (any domain
   may bump them); span events go to domain-local buffers so the hot
   path never takes a lock.  The [registry_mutex] guards only handle
   registration and buffer enumeration — cold paths.

   Two independent recording switches share one hot-path gate:
   - [enabled_flag]: full recording — events accumulate unboundedly in
     the per-domain stream buffers for later harvest;
   - [armed_flag]: the flight recorder — events additionally land in a
     bounded per-domain ring so a crash dump can show the last moments.
   [active_flag] caches their disjunction, so every primitive still
   pays exactly one [Atomic.get] + branch when both are off. *)

let enabled_flag = Atomic.make false
let armed_flag = Atomic.make false
let active_flag = Atomic.make false

let refresh_active () =
  Atomic.set active_flag (Atomic.get enabled_flag || Atomic.get armed_flag)

let enabled () = Atomic.get enabled_flag

let set_enabled b =
  Atomic.set enabled_flag b;
  refresh_active ()

let now () = Unix.gettimeofday ()
let origin_ts = now ()
let origin () = origin_ts

let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* ------------------------------------------------------------------ *)
(* Counters *)

module Counter = struct
  type t = { name : string; cell : int Atomic.t }

  let table : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    with_registry (fun () ->
        match Hashtbl.find_opt table name with
        | Some c -> c
        | None ->
            let c = { name; cell = Atomic.make 0 } in
            Hashtbl.replace table name c;
            c)

  let name t = t.name
  let incr t = if Atomic.get active_flag then ignore (Atomic.fetch_and_add t.cell 1)
  let add t n = if Atomic.get active_flag then ignore (Atomic.fetch_and_add t.cell n)
  let value t = Atomic.get t.cell
  let reset () = Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) table

  let all () =
    Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end

(* ------------------------------------------------------------------ *)
(* Timers.  Elapsed time accumulates as integer nanoseconds so that
   concurrent stops from several domains are single fetch-and-adds
   (no float CAS loop); 63-bit nanoseconds overflow after ~292 years. *)

module Timer = struct
  type t = { name : string; total_ns : int Atomic.t; hits : int Atomic.t }

  let table : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    with_registry (fun () ->
        match Hashtbl.find_opt table name with
        | Some t -> t
        | None ->
            let t = { name; total_ns = Atomic.make 0; hits = Atomic.make 0 } in
            Hashtbl.replace table name t;
            t)

  let name t = t.name
  let start _ = if Atomic.get active_flag then now () else 0.

  let stop t t0 =
    if t0 > 0. then begin
      let ns = int_of_float ((now () -. t0) *. 1e9) in
      ignore (Atomic.fetch_and_add t.total_ns (Stdlib.max 0 ns));
      ignore (Atomic.fetch_and_add t.hits 1)
    end

  let time t f =
    let t0 = start t in
    Fun.protect ~finally:(fun () -> stop t t0) f

  let total_seconds t = float_of_int (Atomic.get t.total_ns) *. 1e-9
  let count t = Atomic.get t.hits

  let reset () =
    Hashtbl.iter
      (fun _ t ->
        Atomic.set t.total_ns 0;
        Atomic.set t.hits 0)
      table

  let all () =
    Hashtbl.fold (fun name t acc -> (name, total_seconds t, count t) :: acc) table []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
end

(* ------------------------------------------------------------------ *)
(* Histograms.  Observations are non-negative integers bucketed by
   power of two: bucket 0 holds 0, bucket b >= 1 holds [2^(b-1),
   2^b - 1].  Every cell is an Atomic, so concurrent observations from
   several domains accumulate order-independently (sums for buckets
   and the total, CAS min/max races resolve to the same extremum) —
   the same merge discipline as counters, hence snapshots are
   identical at any worker count for a deterministic workload. *)

module Histogram = struct
  let num_buckets = 64 (* bucket 0 + one per significant-bit count *)

  type t = {
    name : string;
    buckets : int Atomic.t array;
    total : int Atomic.t;  (* Σ observed values *)
    min_cell : int Atomic.t;  (* max_int when empty *)
    max_cell : int Atomic.t;  (* -1 when empty *)
  }

  let table : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    with_registry (fun () ->
        match Hashtbl.find_opt table name with
        | Some h -> h
        | None ->
            let h =
              {
                name;
                buckets = Array.init num_buckets (fun _ -> Atomic.make 0);
                total = Atomic.make 0;
                min_cell = Atomic.make max_int;
                max_cell = Atomic.make (-1);
              }
            in
            Hashtbl.replace table name h;
            h)

  let name t = t.name

  (* Index of the bucket holding [v]: the number of significant bits,
     so 1 -> 1, 2..3 -> 2, 4..7 -> 3, ... *)
  let bucket_of v =
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    if v <= 0 then 0 else bits 0 v

  (* Inclusive upper edge of a bucket — the value quantile estimates
     report. *)
  let bucket_upper b = if b = 0 then 0 else (1 lsl b) - 1

  let rec cas_min cell v =
    let cur = Atomic.get cell in
    if v < cur && not (Atomic.compare_and_set cell cur v) then cas_min cell v

  let rec cas_max cell v =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then cas_max cell v

  let observe t v =
    if Atomic.get active_flag then begin
      let v = Stdlib.max 0 v in
      ignore (Atomic.fetch_and_add t.buckets.(bucket_of v) 1);
      ignore (Atomic.fetch_and_add t.total v);
      cas_min t.min_cell v;
      cas_max t.max_cell v
    end

  let count t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.buckets
  let sum t = Atomic.get t.total
  let min_value t = if count t = 0 then 0 else Atomic.get t.min_cell
  let max_value t = if count t = 0 then 0 else Atomic.get t.max_cell

  (* Rank-based bucket walk: the smallest bucket upper edge whose
     cumulative count reaches ceil(q * n), clamped into the exact
     [min, max] envelope.  Deterministic given bucket contents. *)
  let quantile t q =
    let n = count t in
    if n = 0 then 0
    else begin
      let q = Float.min 1. (Float.max 0. q) in
      let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
      let rec walk b cum =
        if b >= num_buckets then Atomic.get t.max_cell
        else begin
          let cum = cum + Atomic.get t.buckets.(b) in
          if cum >= rank then bucket_upper b else walk (b + 1) cum
        end
      in
      let est = walk 0 0 in
      Stdlib.min (Atomic.get t.max_cell) (Stdlib.max (Atomic.get t.min_cell) est)
    end

  let reset () =
    Hashtbl.iter
      (fun _ h ->
        Array.iter (fun c -> Atomic.set c 0) h.buckets;
        Atomic.set h.total 0;
        Atomic.set h.min_cell max_int;
        Atomic.set h.max_cell (-1))
      table

  let all () =
    Hashtbl.fold (fun name h acc -> (name, h) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end

(* ------------------------------------------------------------------ *)
(* Spans: per-domain buffers through domain-local storage.  A buffer
   is only ever appended to by its owning domain; the global [buffers]
   list (for harvesting) is touched once per domain, under the
   registry mutex. *)

type phase = Begin | End

type alloc = { minor_words : float; major_words : float }

type event = {
  name : string;
  domain : int;
  seq : int;
  ts : float;
  phase : phase;
  args : (string * string) list;
  alloc : alloc option;
}

(* Gc snapshot and routing decision taken at span open: the matching
   End event goes to the stream buffer iff the Begin did, so the
   stream stays Begin/End-balanced under any mid-span flag toggling
   (across any number of domains). *)
type open_span = {
  o_name : string;
  o_minor : float;
  o_major : float;
  o_stream : bool;  (* Begin went to [events_rev] *)
}

type buffer = {
  dom : int;
  mutable events_rev : event list;  (* newest first *)
  mutable next_seq : int;
  mutable open_spans : open_span list;  (* innermost first *)
  mutable ring : event array;  (* flight-recorder ring; [||] until armed *)
  mutable ring_pos : int;  (* next write slot *)
  mutable ring_filled : int;  (* valid slots, <= Array.length ring *)
}

let buffers : buffer list ref = ref []

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          dom = (Domain.self () :> int);
          events_rev = [];
          next_seq = 0;
          open_spans = [];
          ring = [||];
          ring_pos = 0;
          ring_filled = 0;
        }
      in
      with_registry (fun () -> buffers := b :: !buffers);
      b)

(* ------------------------------------------------------------------ *)
(* Flight-recorder ring.  Bounded, per domain, overwritten in place:
   arming the recorder costs one array per recording domain and each
   event thereafter one slot store — no unbounded growth, so it can
   stay armed for a whole multi-minute run. *)

let default_flight_capacity = 512
let flight_capacity = Atomic.make default_flight_capacity

let dummy_event =
  { name = ""; domain = 0; seq = 0; ts = 0.; phase = Begin; args = []; alloc = None }

let ring_push b e =
  let cap = Atomic.get flight_capacity in
  if Array.length b.ring <> cap then begin
    (* (Re)size lazily on first armed write — capacity only changes at
       [Flight.arm], so this branch is cold. *)
    b.ring <- Array.make cap dummy_event;
    b.ring_pos <- 0;
    b.ring_filled <- 0
  end;
  if cap > 0 then begin
    b.ring.(b.ring_pos) <- e;
    b.ring_pos <- (b.ring_pos + 1) mod cap;
    if b.ring_filled < cap then b.ring_filled <- b.ring_filled + 1
  end

(* Ring contents oldest-first; within one domain they are already
   seq-ascending because the owner appends in order. *)
let ring_events b =
  let cap = Array.length b.ring in
  if cap = 0 || b.ring_filled = 0 then []
  else
    List.init b.ring_filled (fun i ->
        b.ring.(((b.ring_pos - b.ring_filled + i) mod cap + cap) mod cap))

let emit b name phase args alloc ~stream =
  let seq = b.next_seq in
  b.next_seq <- seq + 1;
  let e = { name; domain = b.dom; seq; ts = now (); phase; args; alloc } in
  if stream then b.events_rev <- e :: b.events_rev;
  if Atomic.get armed_flag then ring_push b e

(* Gc words allocated so far on this domain.  [Gc.minor_words] reads
   the allocation pointer; the major count comes from [quick_stat]
   (no heap walk), so an open/close pair costs two cheap reads. *)
let gc_words () = (Gc.minor_words (), (Gc.quick_stat ()).Gc.major_words)

let span_open b name args =
  let o_minor, o_major = gc_words () in
  let o_stream = Atomic.get enabled_flag in
  b.open_spans <- { o_name = name; o_minor; o_major; o_stream } :: b.open_spans;
  emit b name Begin args None ~stream:o_stream

let span_close b name =
  match b.open_spans with
  | o :: rest ->
      b.open_spans <- rest;
      let m1, j1 = gc_words () in
      let alloc =
        Some { minor_words = m1 -. o.o_minor; major_words = j1 -. o.o_major }
      in
      emit b name End [] alloc ~stream:o.o_stream
  | [] ->
      (* Unmatched exit: nothing to diff against, and sending it to the
         stream would unbalance the buffer — ring only. *)
      emit b name End [] None ~stream:false

module Span = struct
  let enter name args =
    if Atomic.get active_flag then span_open (Domain.DLS.get buffer_key) name args

  let exit name =
    if Atomic.get active_flag then span_close (Domain.DLS.get buffer_key) name

  let with_ ?(args = []) name f =
    if not (Atomic.get active_flag) then f ()
    else begin
      let b = Domain.DLS.get buffer_key in
      span_open b name args;
      (* Close unconditionally so the buffer stays balanced even if
         the registry is flipped off while [f] runs. *)
      Fun.protect ~finally:(fun () -> span_close b name) f
    end

  let current_names () =
    if Atomic.get active_flag then
      List.rev_map (fun o -> o.o_name) (Domain.DLS.get buffer_key).open_spans
    else []
end

(* ------------------------------------------------------------------ *)
(* Flight recorder: arm/disarm plus harvest of the rings and of the
   counter baseline captured at arm time, so a crash dump can report
   counter deltas over the armed window. *)

module Flight = struct
  let baseline_cell : (string * int) list Atomic.t = Atomic.make []

  let arm ?(capacity = default_flight_capacity) () =
    Atomic.set flight_capacity (Stdlib.max 0 capacity);
    Atomic.set baseline_cell (Counter.all ());
    Atomic.set armed_flag true;
    refresh_active ()

  let disarm () =
    Atomic.set armed_flag false;
    refresh_active ()

  let armed () = Atomic.get armed_flag
  let capacity () = Atomic.get flight_capacity
  let baseline () = Atomic.get baseline_cell

  let recent () =
    let bufs = with_registry (fun () -> !buffers) in
    List.sort (fun a b -> Int.compare a.dom b.dom) bufs
    |> List.concat_map ring_events
end

(* ------------------------------------------------------------------ *)
(* Harvest *)

type timer_snapshot = { timer_name : string; seconds : float; hits : int }

type histogram_snapshot = {
  hist_name : string;
  hist_count : int;
  hist_sum : int;
  hist_min : int;
  hist_max : int;
  p50 : int;
  p90 : int;
  p99 : int;
}

type span_alloc = {
  span_name : string;
  span_count : int;
  minor_total : float;
  major_total : float;
}

type snapshot = {
  counters : (string * int) list;
  timers : timer_snapshot list;
  histograms : histogram_snapshot list;
  span_allocs : span_alloc list;
}

(* Aggregate closed-span alloc deltas per span name.  Uses the same
   buffered End events as [events ()], so the result depends only on
   which spans ran — not on domain interleaving. *)
let span_allocs_of_buffers bufs =
  let tbl : (string, int * float * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun e ->
          match (e.phase, e.alloc) with
          | End, Some a ->
              let n, mi, ma =
                Option.value (Hashtbl.find_opt tbl e.name) ~default:(0, 0., 0.)
              in
              Hashtbl.replace tbl e.name
                (n + 1, mi +. a.minor_words, ma +. a.major_words)
          | _ -> ())
        b.events_rev)
    bufs;
  Hashtbl.fold
    (fun span_name (span_count, minor_total, major_total) acc ->
      { span_name; span_count; minor_total; major_total } :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.span_name b.span_name)

let snapshot () =
  with_registry (fun () ->
      {
        counters = Counter.all ();
        timers =
          List.map (fun (timer_name, seconds, hits) -> { timer_name; seconds; hits })
            (Timer.all ());
        histograms =
          List.map
            (fun (hist_name, h) ->
              {
                hist_name;
                hist_count = Histogram.count h;
                hist_sum = Histogram.sum h;
                hist_min = Histogram.min_value h;
                hist_max = Histogram.max_value h;
                p50 = Histogram.quantile h 0.50;
                p90 = Histogram.quantile h 0.90;
                p99 = Histogram.quantile h 0.99;
              })
            (Histogram.all ());
        span_allocs = span_allocs_of_buffers !buffers;
      })

let events () =
  let bufs = with_registry (fun () -> !buffers) in
  let per_domain =
    List.map (fun b -> List.rev b.events_rev) bufs
    |> List.sort (fun a b ->
           match (a, b) with
           | [], [] -> 0
           | [], _ -> -1
           | _, [] -> 1
           | x :: _, y :: _ -> Int.compare x.domain y.domain)
  in
  List.concat per_domain

let reset () =
  with_registry (fun () ->
      Counter.reset ();
      Timer.reset ();
      Histogram.reset ();
      Atomic.set Flight.baseline_cell [];
      List.iter
        (fun b ->
          b.events_rev <- [];
          b.next_seq <- 0;
          b.open_spans <- [];
          b.ring_pos <- 0;
          b.ring_filled <- 0)
        !buffers)
