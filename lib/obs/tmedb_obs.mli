(** Process-wide telemetry registry: counters, timers and structured
    trace spans.

    The registry is off by default and every primitive starts with a
    single flag check, so instrumented hot paths (DCS queries,
    Dijkstra runs, Monte-Carlo trials) cost approximately nothing when
    telemetry is disabled — the contract `bench/main.exe obs` and
    [test/test_obs.ml]'s [Gc]-delta test enforce.

    Concurrency model (the PR-1 domain pool):
    - counters and timers accumulate through [Atomic] cells, so any
      domain may bump them concurrently; totals are order-independent
      (sums), hence identical at any worker count for a deterministic
      workload;
    - span events are buffered {e per domain} (domain-local storage),
      so recording is race-free and never synchronises on the hot
      path; {!events} merges the buffers deterministically, ordered by
      [(domain, seq)].

    Harvest ({!snapshot} / {!events}) after the instrumented workload
    has quiesced — e.g. after [Pool.parallel_map] returned or the pool
    shut down — which is what establishes the happens-before edge to
    the worker domains' buffers.

    Telemetry never touches algorithm state or RNG streams: results
    are bit-identical with the registry on or off.

    The JSON exporters (metrics snapshot, Chrome [trace_event] span
    file) live in {!Tmedb_prelude.Obs_json}, keeping this library
    dependency-free (stdlib + [unix] for the wall clock). *)

val enabled : unit -> bool
(** Whether the registry is recording.  Off at startup. *)

val set_enabled : bool -> unit
(** Turn recording on or off.  Disabling does not clear existing data
    (use {!reset}); handles created while disabled stay valid.
    Independent of the {!Flight} recorder: primitives record when
    either switch is on, behind one shared flag check. *)

val reset : unit -> unit
(** Zero every counter and timer and drop all buffered span events.
    Handles remain registered (a reset registry still snapshots every
    known name, at zero). *)

(** Monotonic event counts, e.g. ["dst.expansions"] or
    ["simulate.trials"]. *)
module Counter : sig
  type t
  (** A registered counter handle.  Create once at module
      initialisation and keep; {!incr} is the hot-path operation. *)

  val make : string -> t
  (** [make name] registers (or retrieves) the counter called [name].
      Calling [make] twice with one name yields the same counter. *)

  val name : t -> string
  (** The registration name. *)

  val incr : t -> unit
  (** Add 1 when the registry is enabled; a flag check otherwise. *)

  val add : t -> int -> unit
  (** Add [n] when the registry is enabled; a flag check otherwise. *)

  val value : t -> int
  (** Current total (0 after {!reset}). *)
end

(** Wall-clock accumulation with hit counts, e.g. ["dst.solve"] or
    ["aux_graph.build"]. *)
module Timer : sig
  type t
  (** A registered timer handle (create once, like {!Counter.t}). *)

  val make : string -> t
  (** [make name] registers (or retrieves) the timer called [name]. *)

  val name : t -> string
  (** The registration name. *)

  val start : t -> float
  (** Begin a measurement: the wall clock when enabled, [0.] when
      disabled.  Pass the returned value to {!stop}. *)

  val stop : t -> float -> unit
  (** Close the measurement opened by {!start}: adds the elapsed wall
      time and one hit.  A no-op when the matching {!start} returned
      [0.] (registry disabled at start time). *)

  val time : t -> (unit -> 'a) -> 'a
  (** [time t f] runs [f ()] inside a {!start}/{!stop} pair; the pair
      closes on exceptions too. *)

  val total_seconds : t -> float
  (** Accumulated wall-clock seconds. *)

  val count : t -> int
  (** Number of completed {!stop}s. *)
end

(** Distributions of non-negative integer observations, e.g.
    ["dijkstra.relaxations"] or ["simulate.trial_latency"].  Values are
    bucketed by power of two (bucket 0 holds 0, bucket [b >= 1] holds
    [2^(b-1) .. 2^b - 1]); quantiles are bucket-upper-edge estimates
    clamped into the exact observed [min, max].  Every cell is an
    [Atomic], so concurrent observations from several domains merge
    order-independently — snapshots are identical at any worker count
    for a deterministic workload, like counters. *)
module Histogram : sig
  type t
  (** A registered histogram handle (create once, like {!Counter.t}). *)

  val make : string -> t
  (** [make name] registers (or retrieves) the histogram called
      [name].  Calling [make] twice with one name yields the same
      histogram. *)

  val name : t -> string
  (** The registration name. *)

  val observe : t -> int -> unit
  (** Record one observation when the registry is enabled; a flag
      check otherwise.  Negative values clamp to 0. *)

  val count : t -> int
  (** Number of recorded observations (0 after {!reset}). *)

  val sum : t -> int
  (** Sum of recorded observations. *)

  val min_value : t -> int
  (** Smallest recorded observation; 0 when empty. *)

  val max_value : t -> int
  (** Largest recorded observation; 0 when empty. *)

  val quantile : t -> float -> int
  (** [quantile t q] estimates the [q]-quantile ([q] clamped to
      [0..1]) as the upper edge of the bucket holding rank
      [ceil (q * count)], clamped into [[min_value, max_value]]; 0
      when empty.  Deterministic given bucket contents. *)
end

(** Nested begin/end trace events with string attributes, buffered per
    domain.  Spans opened and closed on one domain nest properly;
    prefer {!Span.with_} so unwinding exceptions cannot unbalance the
    buffer. *)
module Span : sig
  val enter : string -> (string * string) list -> unit
  (** Record a begin event on the calling domain's buffer (no-op when
      the registry is disabled).  Attributes are free-form key/value
      strings, e.g. [("vertices", "1024")]. *)

  val exit : string -> unit
  (** Record the matching end event (no-op when disabled). *)

  val with_ : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** [with_ name f] runs [f ()] between {!enter} and {!exit}; the
      span closes on exceptions too.  The end event is routed to the
      stream buffer iff its begin event was, so stream buffers stay
      Begin/End-balanced even when the registry is toggled while [f]
      runs — on any domain. *)

  val current_names : unit -> string list
  (** Names of the spans currently open on the calling domain,
      outermost first — the logical call path at this instant.  [[]]
      when the registry is inactive.  The work-stealing pool captures
      this at task submission so profile attribution can re-root
      stolen work under its submitter's path. *)
end

type phase =
  | Begin
  | End  (** Which side of a span an {!event} records. *)

type alloc = {
  minor_words : float;  (** Words allocated on the minor heap. *)
  major_words : float;  (** Words allocated on the major heap. *)
}
(** Gc allocation delta across a span, from [Gc.minor_words] /
    [Gc.quick_stat] reads at span open and close on the recording
    domain. *)

type event = {
  name : string;  (** Span name as passed to {!Span.enter}. *)
  domain : int;  (** Recording domain's id ([Domain.self]). *)
  seq : int;  (** Per-domain sequence number, dense from 0. *)
  ts : float;  (** Wall-clock seconds (Unix epoch). *)
  phase : phase;
  args : (string * string) list;  (** Attributes ([Begin] events only). *)
  alloc : alloc option;
      (** Allocation delta over the span; [Some] on [End] events whose
          opening [Begin] was recorded, [None] otherwise. *)
}
(** One buffered span event. *)

(** Always-on crash forensics: a bounded per-domain ring buffer of the
    most recent span events (begin {e and} end, with alloc deltas),
    plus a counter baseline captured at arm time.  Arming is
    independent of {!set_enabled} — the ring records even when full
    telemetry is off, at the same one-flag-check hot-path cost — and
    never grows past its capacity, so it can stay armed for a whole
    multi-minute run.  The crash-dump exporter
    ({!Tmedb_prelude.Crash_guard}) turns {!recent} + {!baseline} into
    a [tmedb.crash/1] JSON on uncaught exception, SIGUSR1 or watchdog
    deadline. *)
module Flight : sig
  val arm : ?capacity:int -> unit -> unit
  (** Start flight recording: set the per-domain ring capacity
      ([capacity] events per domain, default 512, clamped to [>= 0])
      and snapshot current counter values as the {!baseline}. *)

  val disarm : unit -> unit
  (** Stop flight recording.  Ring contents are kept (readable via
      {!recent}) until {!reset}. *)

  val armed : unit -> bool
  (** Whether the flight recorder is armed.  Off at startup. *)

  val capacity : unit -> int
  (** Per-domain ring capacity set by the last {!arm}. *)

  val recent : unit -> event list
  (** The ring contents of every domain, merged oldest-first per
      domain and ordered by ascending [(domain, seq)] — at most
      {!capacity} events per domain.  Harvest after the workload
      quiesced, like {!events}. *)

  val baseline : unit -> (string * int) list
  (** Counter values snapshotted by the last {!arm}, sorted by name;
      [[]] before any arm or after {!reset}.  Subtract from a current
      snapshot to get counter deltas over the armed window. *)
end

type timer_snapshot = {
  timer_name : string;
  seconds : float;  (** Accumulated wall-clock time. *)
  hits : int;  (** Completed start/stop pairs. *)
}
(** Point-in-time view of one timer. *)

type histogram_snapshot = {
  hist_name : string;
  hist_count : int;  (** Number of observations. *)
  hist_sum : int;  (** Sum of observations. *)
  hist_min : int;  (** Smallest observation (0 when empty). *)
  hist_max : int;  (** Largest observation (0 when empty). *)
  p50 : int;  (** Median estimate ({!Histogram.quantile} at 0.50). *)
  p90 : int;  (** 90th-percentile estimate. *)
  p99 : int;  (** 99th-percentile estimate. *)
}
(** Point-in-time view of one histogram. *)

type span_alloc = {
  span_name : string;
  span_count : int;  (** Closed spans with an alloc delta. *)
  minor_total : float;  (** Summed minor-heap words across them. *)
  major_total : float;  (** Summed major-heap words across them. *)
}
(** Allocation totals aggregated over every closed span of one name,
    across all domains.  Order-independent (sums), so identical at any
    worker count for a deterministic workload. *)

type snapshot = {
  counters : (string * int) list;  (** Sorted by name. *)
  timers : timer_snapshot list;  (** Sorted by name. *)
  histograms : histogram_snapshot list;  (** Sorted by name. *)
  span_allocs : span_alloc list;  (** Sorted by name. *)
}
(** Point-in-time view of every registered counter, timer and
    histogram — including never-touched ones (at zero), so a
    snapshot's key set depends only on what the program links, not on
    the control path taken.  [span_allocs] covers span names with at
    least one closed span. *)

val snapshot : unit -> snapshot
(** Harvest all counters, timers, histograms and per-span allocation
    totals, each sorted by name. *)

val events : unit -> event list
(** Merge every domain's span buffer into one deterministic order:
    ascending [(domain, seq)].  Events of one domain therefore appear
    in recording order, preserving nesting. *)

val origin : unit -> float
(** Wall-clock instant the registry was initialised (process start for
    all practical purposes); exporters subtract it so timestamps start
    near zero. *)
