open Tmedb_tveg

type candidate = {
  relay : int;
  time : float;
  cost : float;
  informs : int list;  (** Currently uninformed nodes this covers. *)
}

(* Shared with Random_relay: enumerate productive candidates given the
   informed-time array. *)
let candidates problem dts ~dcs_memo ~informed_time =
  let g = problem.Problem.graph in
  let tau = Tveg.tau g in
  let deadline = problem.Problem.deadline in
  let acc = ref [] in
  Array.iteri
    (fun i informed ->
      match informed with
      | None -> ()
      | Some a_i ->
          Array.iter
            (fun t ->
              if t >= a_i && t +. tau <= deadline then begin
                let levels =
                  match Hashtbl.find_opt dcs_memo (i, t) with
                  | Some ls -> ls
                  | None ->
                      let ls =
                        Dcs.at g ~phy:problem.Problem.phy ~channel:problem.Problem.channel
                          ~node:i ~time:t
                      in
                      Hashtbl.add dcs_memo (i, t) ls;
                      ls
                in
                List.iter
                  (fun { Dcs.cost; covered } ->
                    let informs =
                      List.filter (fun j -> informed_time.(j) = None) covered
                    in
                    if informs <> [] then acc := { relay = i; time = t; cost; informs } :: !acc)
                  levels
              end)
            (Dts.node_points dts i))
    informed_time;
  !acc

let better a b =
  let ca = List.length a.informs and cb = List.length b.informs in
  if ca <> cb then ca > cb
  else if not (Float.equal a.cost b.cost) then a.cost < b.cost
  else a.time < b.time

let plan (ctx : Planner.Ctx.t) problem =
  let dts = Problem.dts ?cap_per_node:ctx.Planner.Ctx.cap_per_node problem in
  let n = Problem.n problem in
  let tau = Problem.tau problem in
  let informed_time = Array.make n None in
  informed_time.(problem.Problem.source) <- Some (Problem.span_start problem);
  let dcs_memo = Hashtbl.create 256 in
  let schedule = ref [] in
  let steps = ref 0 in
  let stalled = ref false in
  let uninformed_left () = Array.exists (fun t -> t = None) informed_time in
  while uninformed_left () && not !stalled do
    match candidates problem dts ~dcs_memo ~informed_time with
    | [] -> stalled := true
    | first :: rest ->
        let best = List.fold_left (fun b c -> if better c b then c else b) first rest in
        incr steps;
        schedule := { Schedule.relay = best.relay; time = best.time; cost = best.cost } :: !schedule;
        List.iter (fun j -> informed_time.(j) <- Some (best.time +. tau)) best.informs
  done;
  let schedule = Schedule.of_transmissions !schedule in
  let report = Feasibility.check problem schedule in
  let unreached =
    List.filter (fun i -> informed_time.(i) = None) (List.init n (fun i -> i))
  in
  Planner.Outcome.make ~schedule ~report ~unreached
    ~artifacts:[ Planner.Outcome.Greedy_steps !steps ] ()

let info =
  {
    Planner.name = "GREED";
    channel = `Static;
    section = "VII";
    summary = "largest-coverage-first step loop over DCS opportunities";
  }

let planner = { Planner.info; plan }
