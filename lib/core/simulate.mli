(** Monte-Carlo execution of schedules in a (possibly different)
    evaluation channel — the paper's Fig. 6 experiment, where
    static-channel schedules are replayed in a Rayleigh environment.

    Per trial: the source owns the packet; transmissions run in time
    order; a relay forwards only if it has itself received the packet
    by its scheduled time (so its energy is only spent then); every
    ρ_τ-adjacent node independently receives with probability
    1 − φ(w) of the evaluation channel's ED-function. *)

open Tmedb_prelude
open Tmedb_tveg

type result = {
  trials : int;
  delivery_ratio : float;  (** Mean fraction of nodes informed. *)
  delivery_stddev : float;
  full_delivery_rate : float;  (** Fraction of trials informing everyone. *)
  mean_energy_spent : float;  (** Costs of relays that actually transmitted. *)
  mean_completion_time : float option;
      (** Mean last-receive time over trials that informed everyone. *)
}

val run :
  ?trials:int ->
  ?pool:Pool.t ->
  rng:Rng.t ->
  eval_channel:Tveg.channel ->
  Problem.t ->
  Schedule.t ->
  result
(** Default 500 trials.  Deterministic in the generator state: the
    stream is split per trial up front ({!Rng.split}), so the result
    is bit-identical whether trials run sequentially or on [pool],
    at any worker count. *)
