(** Broadcast relay schedules: the S = [R, T, W] matrices of paper
    Section IV.

    A schedule is an ordered list of transmissions (relay, time, cost).
    A relay may appear several times; order is kept sorted by time with
    ties broken by relay id so that equal schedules compare equal. *)


type transmission = { relay : int; time : float; cost : float }
type t

val of_transmissions : transmission list -> t
(** Sorts by (time, relay, cost).  @raise Invalid_argument on negative
    cost or relay id. *)

val empty : t
(** The schedule with no transmissions. *)

val transmissions : t -> transmission list
(** All transmissions in canonical (time, relay, cost) order. *)

val relays : t -> int list
(** R vector (with repetitions, in time order). *)

val times : t -> float list
(** T vector, non-decreasing. *)

val costs : t -> float list
(** W vector, in time order. *)

val num_transmissions : t -> int
(** Number of transmissions K. *)

val total_cost : t -> float
(** The objective Σ w_k. *)

val latest_time : t -> float option
(** Time of the last transmission; [None] when empty. *)

val add : t -> transmission -> t
(** Insert one transmission, preserving canonical order.
    @raise Invalid_argument as {!of_transmissions}. *)

val map_costs : t -> (int -> transmission -> float) -> t
(** New schedule with per-transmission costs rewritten (index is the
    position in time order); used by the FR energy allocation. *)

val normalize_et : t -> Tmedb_tveg.Dts.t -> informed_time:(int -> float option) -> t
(** ET-law normalisation (Prop. 5.1): move every transmission to the
    earliest equivalent instant — the later of (a) the start of its
    DTS interval and (b) the relay's informed time.  [informed_time]
    gives each relay's receive time ([None] = never, transmission kept
    as is). *)

val equal : t -> t -> bool
(** Exact structural equality of two schedules: same transmissions
    with bit-equal times and costs ([Float.compare] = 0), in the same
    canonical order. *)

(** {1 Serialisation}

    One transmission per line: [relay,time,cost]; ['#'] lines are
    comments.  Round-trips exactly (floats printed with 17 significant
    digits). *)

val to_csv : t -> string
(** Render in the line format above. *)

val of_csv : string -> (t, string) result
(** Parse {!to_csv} output; [Error] carries the offending line. *)

val save : t -> path:string -> unit
(** Write {!to_csv} to [path]. *)

val load : path:string -> (t, string) result
(** Read and parse a schedule file. *)

val pp : Format.formatter -> t -> unit
(** Table rendering for the CLI. *)

val pp_transmission : Format.formatter -> transmission -> unit
(** One transmission as [relay@time(cost)]. *)
