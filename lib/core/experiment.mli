(** Experiment drivers regenerating every figure of the paper's
    Section VII.  Used by [bench/main.exe], the CLI and the examples.

    Each figure function returns labelled series of (x, y) points and
    is deterministic in the configuration seed. *)

open Tmedb_prelude
open Tmedb_trace

type algorithm = Planner.t
(** An algorithm is a registered {!Planner.t}; the historical variant
    type is gone.  Compare algorithms by {!algorithm_name} (the value
    carries closures, so structural equality is unavailable). *)

val all_algorithms : algorithm list
(** {!Registry.paper}: the six algorithms of the paper's evaluation,
    in figure order. *)

val algorithm_name : algorithm -> string
(** Display name as used in the paper's legends, e.g. ["FR-EEDCB"]. *)

val algorithm_of_string : string -> (algorithm, string) result
(** {!Registry.find}: inverse of {!algorithm_name}, case-insensitive,
    ['_'] and ['-'] interchangeable; [Error] lists the known names.
    Resolves {!Registry.extras} too, not just the paper six. *)

val is_fading : algorithm -> bool
(** FR variants design for the Rayleigh channel. *)

type config = {
  seed : int;
  n : int;
  horizon : float;
  deadline : float;
  sources : int;  (** Random source draws averaged per data point. *)
  mc_trials : int;  (** Monte-Carlo trials for delivery ratios. *)
  steiner_level : int;  (** Recursive-greedy level for (FR-)EEDCB. *)
  dts_cap : int;  (** Per-node DTS point cap. *)
  aux_lazy : bool;
      (** Expand the auxiliary graph lazily ({!Aux_graph.Lazy});
          bit-identical results, frontier-only materialisation. *)
}

val default_config : config
(** Paper defaults: 20 nodes, 17000 s horizon, 2000 s deadline, seed
    42, 3 sources, 300 trials, level 2, eager auxiliary graph. *)

val make_trace : ?density_profile:(float -> float) -> config -> n:int -> Trace.t
(** The Haggle-like synthetic trace of the given size (see
    {!Tmedb_trace.Synth}), seeded from the configuration. *)

val make_problem :
  config -> trace:Trace.t -> channel:Tmedb_tveg.Tveg.channel -> source:int -> deadline:float ->
  Problem.t
(** τ = 0 instance over the trace with the paper's default PHY. *)

val choose_sources : config -> trace:Trace.t -> deadline:float -> int list
(** [config.sources] distinct random sources, preferring ones from
    which the broadcast is completable by the deadline. *)

type run_result = {
  algorithm : algorithm;
  energy : float;  (** Normalised scheduled energy Σw / (noise·γ_th). *)
  feasible : bool;
  analytic_delivery : float;
  schedule : Schedule.t;
  unreached : int list;
}

val run_alg :
  ?warm:Planner.Warm.t ->
  config -> trace:Trace.t -> source:int -> deadline:float -> rng:Rng.t -> algorithm -> run_result
(** Builds the per-algorithm instance (static design channel for
    EEDCB/GREED/RAND, Rayleigh for the FR variants) and runs it.
    [?warm] is threaded into the planning context: FR planners then
    warm-start their energy allocation from the store's previous
    contents and write the new allocation back (see {!Planner.Warm});
    all other planners ignore it. *)

val point_rng : seed:int -> k:int -> algorithm -> Rng.t
(** The canonical per-(point, algorithm) RNG split of every sweep: a
    fresh stream seeded from [(seed, point index k, algorithm name)]
    alone.  Because the stream depends on no shared mutable state,
    fanning points out over a pool is bit-identical to the sequential
    sweep at any worker count.  Used by the figure chains, Fig. 6 and
    {!Pareto.sweep}. *)

(** {1 Figures} *)

type series = { label : string; points : (float * float) list }

(** Each figure function takes an optional [pool].  Figs. 4, 5 and 7
    fan out one task per (series, source) pair; each task is a serial
    chain over the figure's x-axis (deadlines or windows, ascending)
    sharing a {!Planner.Warm} store, so adjacent points warm-start the
    FR energy allocation.  Fig. 6 keeps its per-(size, algorithm,
    source) tasks (its digests are golden-pinned and every point is a
    fresh instance).  Results are bit-identical at any worker count —
    every task seeds or splits its own RNG stream up front — so a
    parallel sweep reproduces the sequential figures exactly. *)

val fig4 :
  ?config:config -> ?pool:Pool.t -> variant:[ `Static | `Fading ] -> deadlines:float list ->
  ns:int list -> unit -> series list
(** Fig. 4: normalised energy vs delay constraint for (FR-)EEDCB, one
    series per network size. *)

val fig5 :
  ?config:config -> ?pool:Pool.t -> variant:[ `Static | `Fading ] -> deadlines:float list ->
  unit -> series list
(** Fig. 5: energy vs delay constraint for the three (FR-)algorithms. *)

val fig6 : ?config:config -> ?pool:Pool.t -> ns:int list -> unit -> series list * series list
(** Fig. 6: (a) energy and (b) Monte-Carlo Rayleigh delivery ratio vs
    network size, for all six algorithms. *)

val fig7 :
  ?config:config -> ?pool:Pool.t -> variant:[ `Static | `Fading ] -> unit ->
  series list * series
(** Fig. 7: per-500 s-window energy for the three (FR-)algorithms over
    [5000 s, 15000 s] on a density-ramp trace, plus the average node
    degree series. *)

val print_series : title:string -> xlabel:string -> series list -> unit
(** Aligned text table on stdout, one column per series. *)
