(** Fading-resistant broadcast (paper Section VI-B): FR-EEDCB,
    FR-GREED and FR-RAND.

    Two stages: (1) *broadcast backbone selection* — run the chosen
    static-style algorithm with single-hop ε-costs as edge weights
    (the problem's design channel must be a fading model), fixing
    relays R and times T; (2) *optimal energy allocation* — solve the
    nonlinear program (14)–(17) for the costs W:

      min Σ w_k  s.t.  Π_{k covering j} φ(w_k) ≤ ε  for every node j,
      and the same for every relay restricted to transmissions before
      its own, with w ∈ [w_min, w_max].

    Constraints are handled in log space (sums of log φ ≤ log ε) with
    analytic gradients, a quadratic-penalty outer loop, and a final
    monotone bisection repair pass that guarantees the returned costs
    satisfy every satisfiable constraint.

    Each FR planner's outcome carries a
    {!Planner.Outcome.Fr_allocation} artifact holding the stage-1
    backbone schedule and the stage-2 allocation diagnostics. *)

type backbone = [ `Eedcb | `Greedy | `Random ]
(** Stage-1 algorithm choice. *)

type allocation = Planner.Outcome.allocation = {
  costs : float array;  (** Per transmission, in backbone time order. *)
  nlp_feasible : bool;  (** NLP reached feasibility before repair. *)
  repaired : bool;  (** The repair pass had to adjust costs. *)
  unsatisfiable : int list;
      (** Nodes no cost assignment can serve (not covered by any
          backbone transmission, or needing w > w_max). *)
  outer_iterations : int;
}
(** Re-export of {!Planner.Outcome.allocation} so stage-2 callers can
    use [Fr.allocation] fields without reaching into [Planner]. *)

val allocate : ?warm:Planner.Warm.t -> Problem.t -> Schedule.t -> Schedule.t * allocation
(** Stage 2 alone: re-cost an arbitrary relay/time skeleton.  With
    [?warm] (see {!Planner.Warm}), the NLP starts from the store's
    previous allocation (single start, Barzilai–Borwein-accelerated
    inner solves) instead of the cold two-point multi-start, and the
    final costs are written back for the next call — the repair and
    polish stages run identically either way, so warm results satisfy
    exactly the same constraints and typically land within a few
    percent of the cold objective at a fraction of the iterations.
    Without [?warm] the solve path is bit-identical to before this
    option existed.
    @raise Invalid_argument when the problem's design channel is
    [`Static] (there is nothing to allocate: costs are thresholds). *)

val plan_with : backbone -> Planner.Ctx.t -> Problem.t -> Planner.Outcome.t
(** Both stages: backbone selection under the context (the [`Random]
    backbone draws from the context's [rng], defaulting to the
    documented seed-17 stream), then energy allocation.
    @raise Invalid_argument when the design channel is [`Static]. *)

val fr_eedcb : Planner.t
(** FR-EEDCB: {!plan_with}[ `Eedcb], fading channel, Section VI-B. *)

val fr_greed : Planner.t
(** FR-GREED: {!plan_with}[ `Greedy], fading channel, Section VI-B. *)

val fr_rand : Planner.t
(** FR-RAND: {!plan_with}[ `Random], fading channel, Section VI-B. *)
