(** Broadcast Incremental Power (Wieselthier, Nguyen, Ephremides) on a
    static snapshot of the TVEG — the classic minimum-energy broadcast
    protocol for *static* wireless networks that the paper's
    introduction argues is "not applicable to dynamic networks".

    Included as a motivating baseline: BIP plans a broadcast tree on
    the union snapshot (each pair at its best-ever distance), then the
    plan is replayed on the real time-varying graph, where links are
    often absent — or longer — when a relay actually gets to transmit.
    The resulting delivery gap quantifies the paper's motivation.

    Snapshot: d_ij = the minimum distance over all contacts of the
    pair.  BIP: grow a tree from the source, each step adding the
    uncovered node whose *incremental* transmit power (raising one
    tree node's power just enough to reach it) is smallest.

    Replay: every tree node transmits once, at its BIP power, at the
    earliest instant after being informed at which at least one of its
    still-uninformed tree children is ρ_τ-adjacent; a child is
    informed only if additionally the distance *at that instant*
    is within the power's static range.

    The outcome carries a {!Planner.Outcome.Bip_plan} artifact with
    the planned energy (Σ of tree powers) and the snapshot-unreachable
    set (nodes BIP cannot even plan for).

    This planner ships through {!Registry.extras} as the proof of the
    registry's extensibility: it appears in [tmedb_cli compare --all]
    and [tmedb_cli algorithms] without any CLI or [Experiment]
    dispatch code naming it. *)

val info : Planner.info
(** Registry metadata: ["BIP"], static channel, beyond-paper citation. *)

val plan : Planner.Ctx.t -> Problem.t -> Planner.Outcome.t
(** Plan and replay.  Uses the instance's PHY for static costs; the
    design channel and every context knob are ignored (BIP predates
    fading-aware planning and has no tunables). *)

val planner : Planner.t
(** {!info} and {!plan}, packaged for {!Registry}. *)
