(** Schedule robustness under contact-level uncertainty: the TMEDB
    wrapper over {!Tmedb_tveg.Nondet}, addressing the paper's
    future-work question of non-deterministic TVGs.

    A schedule is planned against some deterministic graph (typically
    the optimistic support, or a probability-thresholded subgraph) and
    then replayed against sampled realizations: each missing contact
    silences the transmissions that relied on it. *)

open Tmedb_prelude
open Tmedb_tveg

val evaluate_schedule :
  ?trials:int ->
  ?pool:Pool.t ->
  rng:Rng.t ->
  Nondet.t ->
  phy:Tmedb_channel.Phy.t ->
  channel:Tveg.channel ->
  source:int ->
  deadline:float ->
  Schedule.t ->
  Nondet.robustness
(** Replay the schedule on sampled realizations, scoring analytic
    delivery (Eq. 6 on each realization), full-delivery rate, and
    energy wasted on transmissions with no live contact. *)

val plan_on_support :
  ?level:int -> Nondet.t -> phy:Tmedb_channel.Phy.t -> channel:Tveg.channel -> source:int ->
  deadline:float -> Schedule.t
(** EEDCB planned against the optimistic support graph. *)

val plan_on_threshold :
  ?level:int -> min_prob:float -> Nondet.t -> phy:Tmedb_channel.Phy.t ->
  channel:Tveg.channel -> source:int -> deadline:float -> Schedule.t
(** EEDCB planned against the [min_prob]-thresholded graph: trading
    optimistic energy for realization robustness. *)
