(** The auxiliary graph of paper Section VI-A, mapping TMEDB on a DTS
    to a minimum-energy multicast (directed Steiner tree) instance.

    Vertices:
    - a *wait* vertex u_{i,l} for every node i and DTS point t_{i,l},
      chained by 0-weight edges u_{i,l} → u_{i,l+1} ("informed at
      t_{i,l} implies informed at t_{i,l+1}");
    - a *level* vertex x_{i,l,k} for every discrete-cost-set level k of
      node i at t_{i,l} (only when the transmission completes by the
      deadline, t + τ ≤ T), chained with *incremental* weights
      u_{i,l} →(w¹) x_{i,l,1} →(w²−w¹) x_{i,l,2} → …, so that a tree
      reaching level k pays exactly w^k — the broadcast nature of
      Property 6.1;
    - 0-weight edges x_{i,l,k} → u_{j,f} for each neighbour j newly
      covered at level k, where t_{j,f} = t_{i,l} + τ (the DTS closure
      guarantees this point exists).

    The source vertex is u_{s,0}; terminals are each node's last wait
    vertex, as in the paper's Fig. 3. *)

open Tmedb_steiner

type vertex =
  | Wait of { node : int; point_idx : int; time : float }
  | Level of {
      node : int;
      point_idx : int;
      time : float;
      level_idx : int;
      cum_cost : float;  (** Total transmit cost of this level, w^k. *)
    }

type t = {
  graph : Digraph.t;
  vertex : vertex array;  (** Vertex id → description. *)
  source_vertex : int;
  terminals : int list;  (** Last wait vertex of every non-source node. *)
  base : int array;
      (** [base.(i)] is the id of node [i]'s first wait vertex; wait
          vertices are contiguous per node, making {!wait_vertex} O(1). *)
  problem : Problem.t;
      (** The (deadline-clipped) instance the graph was built from,
          kept so {!extract_schedule} can recompute each chosen
          level's covered-neighbour set for provenance. *)
}

val build : Problem.t -> Tmedb_tveg.Dts.t -> t
(** Uses the instance's design channel for the DCS costs: static
    minimum costs under [`Static], single-hop ε-costs under the fading
    models (the FR backbone of Section VI-B). *)

val wait_vertex : t -> node:int -> point_idx:int -> int option
(** Id of wait vertex u_{node, point_idx}; [None] when the node has no
    DTS point of that index (pruned or past the deadline). *)

val extract_schedule : t -> Dst.tree -> Schedule.t
(** Transmissions implied by a Steiner tree: per (node, DTS point)
    chain the deepest chosen level, at its cumulative cost.  When
    {!Tmedb_report.Provenance} is enabled, emits one
    [Schedule_entry] event per transmission recording the DTS point,
    DCS level, covered-neighbour set and selecting tree edge. *)

val num_wait_vertices : t -> int
(** Wait vertices in the graph — one per surviving DTS point, the
    Σ|DTS_i| term of the paper's size analysis. *)

val num_level_vertices : t -> int
(** Level vertices in the graph — one per (node, point, DCS level)
    triple whose transmission completes by the deadline. *)

(** Lazily expanded auxiliary graph (frontier materialisation).

    Same vertex universe, ids, edges and adjacency *orders* as
    {!build} — bit-identical traversal results — but no edge list, no
    CSR arrays and no vertex array are ever constructed.  A cheap
    exact-count pass fixes the id layout up front (wait ids first,
    then level ids in block order, exactly the eager compact ids);
    successors are generated on demand from memoised DCS blocks, so
    only the frontier a traversal actually pops is paid for.  The gap
    between {!Lazy.num_vertices} and {!Lazy.nodes_materialized} is the
    saving over the eager O(N²L) build. *)
module Lazy : sig
  type t
  (** A lazily expanded auxiliary graph over a problem and its DTS. *)

  val create : Problem.t -> Tmedb_tveg.Dts.t -> t
  (** Exact-count pass only: O(Σ_blocks deg·log deg) DCS sizing, no
      edge materialisation.  Uses the instance's design channel for
      DCS costs, exactly like {!build}. *)

  val create_with :
    marginals:(node:int -> time:float -> Tmedb_tveg.Dcs.marginal list) ->
    base:int array ->
    level_off:int array ->
    edge_bound:int ->
    Problem.t ->
    Tmedb_tveg.Dts.t ->
    t
  (** {!create} with the id layout supplied instead of counted: no DCS
      block is enumerated at creation time.  [base]/[level_off]/
      [edge_bound] must be exactly what the counting pass would have
      produced for this (problem, dts) — a shared [Solve_state]
      assembles them by offset arithmetic — and [marginals] must
      return, for every block the layout gives levels, the same
      marginal list [Dcs.marginals_at] would on the instance (blocks
      the layout zeroes are never asked).  Vertex ids, edges and
      adjacency orders are then identical to {!create}'s. *)

  val view : t -> Digraph.view
  (** Forward successor view, adjacency order identical to the eager
      CSR graph's.  First enumeration of a vertex materialises its DCS
      block (memoised) and bumps the materialisation counters. *)

  val rev_view : t -> Digraph.view
  (** Reverse (predecessor) view, adjacency order identical to
      [Digraph.view (Digraph.reverse eager.graph)]: sources in
      descending id.  Wait-vertex predecessors are found by a
      receive-window search over each TVEG neighbour's DTS points —
      O(deg · log L) per wait vertex, independent of graph size. *)

  val describe : t -> int -> vertex
  (** Vertex id → description (the lazy analogue of the eager
      [vertex] array).  O(log V) plus a block memo lookup.
      @raise Invalid_argument on an out-of-range id. *)

  val wait_vertex : t -> node:int -> point_idx:int -> int option
  (** Id of wait vertex u_{node, point_idx}; [None] when out of
      range.  O(1). *)

  val extract_schedule : t -> Dst.tree -> Schedule.t
  (** Exactly {!extract_schedule} (same deterministic order, same
      provenance events), reading vertex descriptions from the memo
      instead of the eager array. *)

  val source_vertex : t -> int
  (** Id of u_{s,0}, the Steiner root. *)

  val terminals : t -> int list
  (** Last wait vertex of every non-source node, ascending. *)

  val num_vertices : t -> int
  (** Total vertex universe — equals [Digraph.n eager.graph]. *)

  val num_wait_vertices : t -> int
  (** Wait vertices in the universe (Σ|DTS_i|). *)

  val num_level_vertices : t -> int
  (** Level vertices in the universe. *)

  val edge_bound : t -> int
  (** Upper bound on the eager build's edge count (coverage edges that
      round past the deadline are counted here but dropped eagerly). *)

  val nodes_materialized : t -> int
  (** Vertices whose successors were generated in at least one
      direction — the frontier actually paid for. *)

  val edges_materialized : t -> int
  (** Edges emitted during first-time successor generation, summed
      over both directions (an edge generated from both sides counts
      twice). *)
end
