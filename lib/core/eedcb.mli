(** EEDCB — energy-efficient delay-constrained broadcast (paper Section
    VI-A): DTS → auxiliary graph → approximate directed Steiner tree →
    schedule.

    Under a static design channel this is the paper's TMEDB-S
    algorithm with approximation ratio O(N^ε); under a fading design
    channel the same pipeline computes the FR-EEDCB broadcast backbone
    (relays and times) using single-hop ε-costs as edge weights.

    The outcome carries a {!Planner.Outcome.Steiner_tree} artifact:
    the pruned tree (auxiliary-graph vertex ids) and the pipeline's
    shape (auxiliary-graph size, DTS points). *)

val info : Planner.info
(** Registry metadata: ["EEDCB"], static channel, Section VI-A. *)

val plan : Planner.Ctx.t -> Problem.t -> Planner.Outcome.t
(** The pipeline under the context's [steiner_level] (the paper's
    ε = 1/i knob) and [cap_per_node]. *)

val planner : Planner.t
(** {!info} and {!plan}, packaged for {!Registry}. *)
