(** Time–energy Pareto engine.

    The paper fixes one deadline T and minimises energy; this module
    sweeps a whole deadline grid and reports the time-vs-energy
    tradeoff.  All deadline-independent work — the streaming τ-closure,
    the memoised DCS marginals and the auxiliary-graph id layouts —
    lives in one shared {!Solve_state} created at the grid's largest
    deadline, so a k-point sweep costs far less than k independent
    solves (gated by [bench pareto]).  Points fan out over the pool,
    each seeding its own RNG stream ({!Experiment.point_rng}), so
    results are bit-identical at any worker count. *)

open Tmedb_prelude

(** Deadline-grid construction and validation.  Every constructor
    rejects empty, NaN, non-finite, non-positive and non-ascending
    grids with a human-readable message (surfaced by the CLI as a
    usage error). *)
module Grid : sig
  val of_list : float list -> (float list, string) result
  (** Validate an explicit grid: non-empty, every deadline positive
      and finite, strictly ascending. *)

  val of_range :
    lo:float -> hi:float -> step:float -> (float list, string) result
  (** The grid [lo, lo + step, lo + 2·step, …] up to and including
      [hi] when it lies on the grid.  Each point is computed as
      [lo + k·step] (no running accumulation), so the grid is a pure
      function of the spec.  Rejects [lo <= 0], [step <= 0], [hi < lo],
      NaN/infinite bounds, and grids of more than 100 000 points. *)

  val parse_range : string -> (float list, string) result
  (** Parse ["LO:HI:STEP"] and apply {!of_range}. *)

  val parse_list : string -> (float list, string) result
  (** Parse a comma-separated deadline list and apply {!of_list}. *)
end

type point = {
  deadline : float;  (** The grid deadline this point was planned at. *)
  energy : float;  (** Normalised scheduled energy Σw / (noise·γ_th). *)
  transmissions : int;  (** Schedule size. *)
  feasible : bool;  (** Feasibility verdict (conditions (i)–(iv)). *)
  unreached : int;  (** Nodes the planner could not cover in time. *)
  dominated : bool;  (** Whether another point dominates this one. *)
}
(** One planned deadline of the sweep. *)

type t = {
  points : point list;  (** One per grid deadline, ascending. *)
  front : float list;
      (** Deadlines of the non-dominated points, ascending — the
          Pareto front of the sweep. *)
}
(** A completed sweep. *)

val dominates : point -> point -> bool
(** [dominates a b]: [a] covers every node, is no later and no more
    expensive than [b], and strictly better on at least one axis.
    Points with unreached nodes never dominate — the objective is the
    full broadcast, so an incomplete plan is not a tradeoff point. *)

val mark_dominated : point list -> point list
(** Set each point's [dominated] flag: true when some other point
    {!dominates} it, or when the point itself leaves nodes unreached.
    Pure — order and every other field are preserved. *)

val sweep :
  ?pool:Pool.t ->
  ?steiner_level:int ->
  ?cap_per_node:int ->
  ?seed:int ->
  ?share:bool ->
  ?lazy_aux:bool ->
  planner:Planner.t ->
  deadlines:float list ->
  Problem.t ->
  t
(** Plan [problem] at every grid deadline with [planner] and mark
    dominance.  [deadlines] must satisfy {!Grid.of_list} and fit the
    graph span; [problem]'s own deadline is ignored (each point plans
    [{ problem with deadline }]).  [share] (default [true]) builds one
    {!Solve_state} at the largest deadline and threads it through
    every point's context; [share:false] plans each point one-shot —
    same results, k× the deadline-independent work — with [lazy_aux]
    (default [false]) selecting the lazy auxiliary graph on that path.
    [seed] (default 42) feeds {!Experiment.point_rng}.
    @raise Invalid_argument on an invalid grid or one outside the
    graph span. *)
