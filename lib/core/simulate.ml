open Tmedb_prelude
open Tmedb_channel
open Tmedb_tveg

type result = {
  trials : int;
  delivery_ratio : float;
  delivery_stddev : float;
  full_delivery_rate : float;
  mean_energy_spent : float;
  mean_completion_time : float option;
}

type receive_event = { effective : float; node : int }

(* Telemetry: [simulate.trials] counts executed trials (bumped on the
   running domain, so the total is pool-size independent); the timer
   wraps the whole fan-out including the statistics pass. *)
let c_trials = Tmedb_obs.Counter.make "simulate.trials"
let c_runs = Tmedb_obs.Counter.make "simulate.runs"
let t_run = Tmedb_obs.Timer.make "simulate.run"
let h_trial_latency = Tmedb_obs.Histogram.make "simulate.trial_latency"

let one_trial ~rng ~eval_channel problem schedule =
  Tmedb_obs.Counter.incr c_trials;
  (* Span (not just the counter) so pooled trials attribute to the
     submitting [simulate.run] in the profile at any --jobs. *)
  Tmedb_obs.Span.with_ "simulate.trial" @@ fun () ->
  let g = problem.Problem.graph in
  let phy = problem.Problem.phy in
  let n = Tveg.n g in
  let tau = Tveg.tau g in
  let informed_at = Array.make n Float.infinity in
  informed_at.(problem.Problem.source) <- Problem.span_start problem;
  let pending = Queue.create () in
  let apply_until t =
    let rec drain () =
      match Queue.peek_opt pending with
      | Some ev when ev.effective <= t ->
          ignore (Queue.pop pending);
          if ev.effective < informed_at.(ev.node) then informed_at.(ev.node) <- ev.effective;
          drain ()
      | Some _ | None -> ()
    in
    drain ()
  in
  let energy = ref 0. in
  let fire tx =
    let open Schedule in
    energy := !energy +. tx.cost;
    List.iter
      (fun (j, dist) ->
        let ed = Ed_function.of_distance phy eval_channel ~dist in
        let p_success = Ed_function.success_prob ed ~w:tx.cost in
        if Dist.bernoulli rng ~p:p_success then
          Queue.add { effective = tx.time +. tau; node = j } pending)
      (Tveg.neighbors_at g tx.relay tx.time)
  in
  (* Same-instant transmissions may chain under τ = 0; fixpoint per
     time group, mirroring Feasibility.check. *)
  let rec groups = function
    | [] -> []
    | tx :: _ as txs ->
        let same, rest =
          List.partition (fun t -> Float.equal t.Schedule.time tx.Schedule.time) txs
        in
        same :: groups rest
  in
  List.iter
    (fun group ->
      match group with
      | [] -> ()
      | first :: _ ->
          let t = first.Schedule.time in
          apply_until t;
          let waiting = ref group in
          let progress = ref true in
          while !waiting <> [] && !progress do
            let ready, blocked =
              List.partition (fun tx -> informed_at.(tx.Schedule.relay) <= t) !waiting
            in
            progress := ready <> [];
            List.iter fire ready;
            if ready <> [] && Float.equal tau 0. then apply_until t;
            waiting := blocked
          done)
    (groups (Schedule.transmissions schedule));
  apply_until problem.Problem.deadline;
  let informed =
    Array.fold_left (fun acc t -> if Float.is_finite t then acc + 1 else acc) 0 informed_at
  in
  let completion =
    if informed = n then Some (Array.fold_left Float.max 0. informed_at) else None
  in
  (* Simulated completion instant in milliseconds — a function of the
     trial's split RNG stream alone, so the distribution is identical
     at any pool size. *)
  (match completion with
  | Some t -> Tmedb_obs.Histogram.observe h_trial_latency (int_of_float (Float.round (t *. 1000.)))
  | None -> ());
  (float_of_int informed /. float_of_int n, !energy, completion)

let run ?(trials = 500) ?pool ~rng ~eval_channel problem schedule =
  if trials <= 0 then invalid_arg "Simulate.run: trials <= 0";
  Tmedb_obs.Counter.incr c_runs;
  let t0 = Tmedb_obs.Timer.start t_run in
  Fun.protect ~finally:(fun () -> Tmedb_obs.Timer.stop t_run t0) @@ fun () ->
  Tmedb_obs.Span.with_ "simulate.run" ~args:[ ("trials", string_of_int trials) ] @@ fun () ->
  (* Split the stream per trial up front: trial k's stream is a
     function of the incoming generator state and k alone, so the
     result is bit-identical at any pool size (including none). *)
  let rngs = Array.make trials rng in
  for k = 0 to trials - 1 do
    rngs.(k) <- Rng.split rng
  done;
  let outcomes =
    (* Trials are sub-millisecond: chunk them so per-task queue traffic
       does not dominate. *)
    Pool.map_chunked pool (fun r -> one_trial ~rng:r ~eval_channel problem schedule) rngs
  in
  let deliveries = Array.make trials 0. in
  let energies = Array.make trials 0. in
  let completions = ref [] in
  let full = ref 0 in
  for k = trials - 1 downto 0 do
    let delivery, energy, completion = outcomes.(k) in
    deliveries.(k) <- delivery;
    energies.(k) <- energy;
    match completion with
    | Some t ->
        incr full;
        completions := t :: !completions
    | None -> ()
  done;
  {
    trials;
    delivery_ratio = Stats.mean deliveries;
    delivery_stddev = Stats.stddev deliveries;
    full_delivery_rate = float_of_int !full /. float_of_int trials;
    mean_energy_spent = Stats.mean energies;
    mean_completion_time =
      (match !completions with
      | [] -> None
      | cs -> Some (Stats.mean (Array.of_list cs)));
  }
