(** GREED baseline (paper Section VII): at each step, among all
    (informed relay, DTS transmission time, DCS level) candidates,
    schedule the one informing the largest number of still-uninformed
    nodes — ties broken by lower cost, then earlier time.

    The paper states GREED's cost is "the minimum cost in the relay's
    discrete cost set"; read literally a relay could never reach
    beyond its nearest neighbour, so we use the minimum DCS cost
    *sufficient for the selected coverage* (see DESIGN.md).  Under a
    fading design channel the DCS costs are single-hop ε-costs,
    making this the FR-GREED backbone.

    The outcome carries a {!Planner.Outcome.Greedy_steps} artifact
    counting the step-loop iterations. *)

val info : Planner.info
(** Registry metadata: ["GREED"], static channel, Section VII. *)

val plan : Planner.Ctx.t -> Problem.t -> Planner.Outcome.t
(** Run the GREED baseline: repeatedly pick the candidate with the
    best cost-per-newly-informed-node density until every node is
    informed or no productive transmission remains.  The context's
    [cap_per_node] bounds the DTS points per node, as in
    [Problem.dts]. *)

val planner : Planner.t
(** {!info} and {!plan}, packaged for {!Registry}. *)

(** {1 Shared with the RAND baseline} *)

type candidate = {
  relay : int;
  time : float;
  cost : float;
  informs : int list;  (** Currently uninformed nodes this covers. *)
}

val candidates :
  Problem.t ->
  Tmedb_tveg.Dts.t ->
  dcs_memo:(int * float, Tmedb_tveg.Dcs.level list) Hashtbl.t ->
  informed_time:float option array ->
  candidate list
(** Every productive (relay, time, level) triple given the current
    informed set: relay informed by [time], transmission completes by
    the deadline, and at least one uninformed node covered. *)
