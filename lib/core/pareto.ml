open Tmedb_prelude

(* Time–energy Pareto sweep: plan one instance at every deadline of a
   grid, sharing a single {!Solve_state} so the deadline-independent
   work (streaming τ-closure, DCS marginals, aux-graph layout
   arithmetic) is paid once for the whole grid instead of once per
   point.  Points fan out over the pool; each seeds its own RNG stream
   ({!Experiment.point_rng}), so results are bit-identical at any
   worker count. *)

let c_sweeps = Tmedb_obs.Counter.make "pareto.sweeps"
let c_points = Tmedb_obs.Counter.make "pareto.points"
let t_sweep = Tmedb_obs.Timer.make "pareto.sweep"

module Grid = struct
  let check_value d =
    if Float.is_nan d then Error "deadline is NaN"
    else if not (Float.is_finite d) then Error (Printf.sprintf "deadline %g is not finite" d)
    else if d <= 0. then Error (Printf.sprintf "deadline %g is not positive" d)
    else Ok ()

  let of_list ds =
    if ds = [] then Error "empty deadline grid"
    else begin
      let rec go prev = function
        | [] -> Ok ds
        | d :: rest -> (
            match check_value d with
            | Error _ as e -> e
            | Ok () -> (
                match prev with
                | Some p when d <= p ->
                    Error
                      (Printf.sprintf
                         "deadline grid must be strictly ascending (%g is followed by %g)" p d)
                | Some _ | None -> go (Some d) rest))
      in
      go None ds
    end

  (* Bound on the grid size, purely to turn a typo'd step into a clear
     error instead of an out-of-memory sweep. *)
  let max_points = 100_000

  let of_range ~lo ~hi ~step =
    match check_value lo with
    | Error _ as e -> e
    | Ok () ->
        if Float.is_nan step || not (Float.is_finite step) || step <= 0. then
          Error (Printf.sprintf "grid step %g is not a positive finite number" step)
        else if Float.is_nan hi || not (Float.is_finite hi) then
          Error (Printf.sprintf "deadline %g is not finite" hi)
        else if hi < lo then
          Error (Printf.sprintf "descending grid: hi %g is below lo %g" hi lo)
        else if (hi -. lo) /. step >= float_of_int max_points then
          Error (Printf.sprintf "grid %g:%g:%g has more than %d points" lo hi step max_points)
        else begin
          (* Points are lo + k·step computed fresh per k — no running
             accumulation, so the grid is a pure function of the spec.
             hi itself is included exactly when it lies on the grid. *)
          let rec go k acc =
            let d = lo +. (step *. float_of_int k) in
            if d > hi then List.rev acc else go (k + 1) (d :: acc)
          in
          Ok (go 0 [])
        end

  let float_field what s =
    match float_of_string_opt (String.trim s) with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "%s %S is not a number" what s)

  let ( let* ) r f = Result.bind r f

  let parse_range s =
    match String.split_on_char ':' s with
    | [ lo; hi; step ] ->
        let* lo = float_field "grid bound" lo in
        let* hi = float_field "grid bound" hi in
        let* step = float_field "grid step" step in
        of_range ~lo ~hi ~step
    | _ -> Error (Printf.sprintf "grid %S is not of the form LO:HI:STEP" s)

  let parse_list s =
    let fields = String.split_on_char ',' s in
    let* ds =
      List.fold_left
        (fun acc f ->
          let* acc = acc in
          let* d = float_field "deadline" f in
          Ok (d :: acc))
        (Ok []) fields
    in
    of_list (List.rev ds)
end

type point = {
  deadline : float;
  energy : float;
  transmissions : int;
  feasible : bool;
  unreached : int;
  dominated : bool;
}

type t = { points : point list; front : float list }

(* [a] dominates [b] when a full-coverage plan is no later and no more
   expensive, strictly better on at least one axis.  Points that leave
   nodes unreached never dominate and are always dominated: the
   sweep's objective is the full broadcast, and an incomplete plan is
   not a tradeoff point on the time-energy front. *)
let dominates a b =
  a.unreached = 0
  && a.deadline <= b.deadline
  && a.energy <= b.energy
  && (a.deadline < b.deadline || a.energy < b.energy)

let mark_dominated points =
  List.map
    (fun p ->
      let dominated = p.unreached > 0 || List.exists (fun q -> dominates q p) points in
      { p with dominated })
    points

let front_of points = List.filter_map (fun p -> if p.dominated then None else Some p.deadline) points

let sweep ?pool ?(steiner_level = 2) ?cap_per_node ?(seed = 42) ?(share = true)
    ?(lazy_aux = false) ~planner ~deadlines (problem : Problem.t) =
  Tmedb_obs.Counter.incr c_sweeps;
  let t0 = Tmedb_obs.Timer.start t_sweep in
  Fun.protect ~finally:(fun () -> Tmedb_obs.Timer.stop t_sweep t0) @@ fun () ->
  Tmedb_obs.Span.with_ "pareto.sweep" @@ fun () ->
  let deadlines =
    match Grid.of_list deadlines with
    | Ok ds -> Array.of_list ds
    | Error e -> invalid_arg ("Pareto.sweep: " ^ e)
  in
  let horizon = deadlines.(Array.length deadlines - 1) in
  let span = Tmedb_tveg.Tveg.span problem.Problem.graph in
  if horizon > span.Interval.hi then
    invalid_arg
      (Printf.sprintf "Pareto.sweep: deadline %g is beyond the graph span end %g" horizon
         span.Interval.hi);
  if deadlines.(0) <= span.Interval.lo then
    invalid_arg
      (Printf.sprintf "Pareto.sweep: deadline %g is not past the graph span start %g"
         deadlines.(0) span.Interval.lo);
  let base = { problem with Problem.deadline = horizon } in
  let solve_state = if share then Some (Solve_state.create ?cap_per_node base) else None in
  let points =
    Pool.map pool
      (fun k ->
        let deadline = deadlines.(k) in
        Tmedb_obs.Counter.incr c_points;
        let rng = Experiment.point_rng ~seed ~k planner in
        let ctx = Planner.Ctx.make ~rng ~steiner_level ?cap_per_node ~lazy_aux ?solve_state () in
        let p = { base with Problem.deadline } in
        let o = Planner.run ~ctx planner p in
        let schedule = o.Planner.Outcome.schedule in
        {
          deadline;
          energy = Metrics.normalized_energy p schedule;
          transmissions = Schedule.num_transmissions schedule;
          feasible = o.Planner.Outcome.report.Feasibility.feasible;
          unreached = List.length o.Planner.Outcome.unreached;
          dominated = false;
        })
      (Array.init (Array.length deadlines) Fun.id)
  in
  let points = mark_dominated (Array.to_list points) in
  { points; front = front_of points }
