open Tmedb_prelude

module Warm = struct
  (* Keyed by (relay, occurrence index among the relay's transmissions
     in schedule order): stable across adjacent sweep points whose
     backbones mostly agree, which is exactly when warm-starting pays.
     Only point lookups and replacements — never iterated, so hash
     bucket order cannot leak into results. *)
  type t = (int * int, float) Hashtbl.t

  let create () = Hashtbl.create 64
  let find t ~relay ~occurrence = Hashtbl.find_opt t (relay, occurrence)
  let set t ~relay ~occurrence cost = Hashtbl.replace t (relay, occurrence) cost
  let reset t = Hashtbl.reset t
end

module Ctx = struct
  type t = {
    rng : Rng.t option;
    steiner_level : int;
    cap_per_node : int option;
    pool : Pool.t option;
    provenance : bool;
    warm : Warm.t option;
    lazy_aux : bool;
    solve_state : Solve_state.t option;
  }

  let make ?rng ?(steiner_level = 2) ?cap_per_node ?pool ?provenance ?warm
      ?(lazy_aux = false) ?solve_state () =
    let provenance =
      match provenance with Some p -> p | None -> Tmedb_report.Provenance.enabled ()
    in
    { rng; steiner_level; cap_per_node; pool; provenance; warm; lazy_aux; solve_state }

  let default () = make ()
  let rng_or ctx ~seed = match ctx.rng with Some rng -> rng | None -> Rng.create seed
end

module Outcome = struct
  type allocation = {
    costs : float array;
    nlp_feasible : bool;
    repaired : bool;
    unsatisfiable : int list;
    outer_iterations : int;
  }

  type artifact =
    | Steiner_tree of {
        tree : Tmedb_steiner.Dst.tree;
        aux_vertices : int;
        aux_edges : int;
        dts_points : int;
      }
    | Greedy_steps of int
    | Fr_allocation of { backbone : Schedule.t; allocation : allocation }
    | Bip_plan of { planned_energy : float; snapshot_unreachable : int list }

  type t = {
    schedule : Schedule.t;
    report : Feasibility.report;
    unreached : int list;
    artifacts : artifact list;
  }

  let make ?(artifacts = []) ~schedule ~report ~unreached () =
    { schedule; report; unreached; artifacts }

  let find_map_artifact f o = List.find_map f o.artifacts

  let tree_cost o =
    find_map_artifact
      (function Steiner_tree { tree; _ } -> Some tree.Tmedb_steiner.Dst.cost | _ -> None)
      o

  let steps o = find_map_artifact (function Greedy_steps s -> Some s | _ -> None) o

  let backbone o =
    find_map_artifact (function Fr_allocation { backbone; _ } -> Some backbone | _ -> None) o

  let allocation o =
    find_map_artifact
      (function Fr_allocation { allocation; _ } -> Some allocation | _ -> None)
      o

  let planned_energy o =
    find_map_artifact
      (function Bip_plan { planned_energy; _ } -> Some planned_energy | _ -> None)
      o

  let snapshot_unreachable o =
    match
      find_map_artifact
        (function Bip_plan { snapshot_unreachable; _ } -> Some snapshot_unreachable | _ -> None)
        o
    with
    | Some nodes -> nodes
    | None -> []
end

type channel = [ `Static | `Fading ]

type info = { name : string; channel : channel; section : string; summary : string }
type t = { info : info; plan : Ctx.t -> Problem.t -> Outcome.t }

module type PLANNER = sig
  val info : info
  val plan : Ctx.t -> Problem.t -> Outcome.t
end

let of_module (module P : PLANNER) = { info = P.info; plan = P.plan }
let name p = p.info.name
let is_fading p = p.info.channel = `Fading

let design_channel p : Tmedb_tveg.Tveg.channel =
  match p.info.channel with `Fading -> `Rayleigh | `Static -> `Static

let run ?ctx p problem =
  let ctx = match ctx with Some c -> c | None -> Ctx.default () in
  if ctx.Ctx.provenance then
    Tmedb_report.Provenance.emit
      (Tmedb_report.Provenance.Stage { stage = "planner"; detail = p.info.name });
  (* The profiler renders this frame as [planner.run:<name>], so every
     kernel span below attributes to the planner that drove it. *)
  Tmedb_obs.Span.with_ "planner.run"
    ~args:[ ("planner", p.info.name) ]
    (fun () -> p.plan ctx problem)
