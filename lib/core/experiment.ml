open Tmedb_prelude
open Tmedb_channel
open Tmedb_trace
open Tmedb_tveg

type algorithm = Planner.t

let all_algorithms = Registry.paper
let algorithm_name = Planner.name
let algorithm_of_string = Registry.find
let is_fading = Planner.is_fading

type config = {
  seed : int;
  n : int;
  horizon : float;
  deadline : float;
  sources : int;
  mc_trials : int;
  steiner_level : int;
  dts_cap : int;
  aux_lazy : bool;
}

let default_config =
  {
    seed = 42;
    n = 20;
    horizon = 17000.;
    deadline = 2000.;
    sources = 3;
    mc_trials = 300;
    steiner_level = 2;
    dts_cap = 1500;
    aux_lazy = false;
  }

let make_trace ?density_profile config ~n =
  let params = { (Synth.with_n Synth.default_params n) with
                 Synth.horizon = config.horizon;
                 density_profile } in
  Synth.generate (Rng.create (config.seed + (7919 * n))) params

let make_problem config ~trace ~channel ~source ~deadline =
  ignore config;
  let graph = Tveg.of_trace ~tau:0. trace in
  Problem.make ~graph ~phy:Phy.default ~channel ~source ~deadline ()

let choose_sources config ~trace ~deadline =
  let rng = Rng.create (config.seed lxor 0x5eed) in
  let n = Trace.n trace in
  let graph = Trace.to_tvg trace in
  let reachable src =
    Tmedb_tvg.Reachability.is_broadcastable graph ~tau:0. ~src ~t0:0. ~deadline
  in
  let rec draw k acc tries =
    if k = 0 then List.rev acc
    else begin
      let src = Rng.int rng n in
      if List.mem src acc then draw k acc tries
      else if reachable src || tries > 50 then draw (k - 1) (src :: acc) 0
      else draw k acc (tries + 1)
    end
  in
  draw (Stdlib.min config.sources n) [] 0

type run_result = {
  algorithm : algorithm;
  energy : float;
  feasible : bool;
  analytic_delivery : float;
  schedule : Schedule.t;
  unreached : int list;
}

let run_alg ?warm config ~trace ~source ~deadline ~rng algorithm =
  let channel = Planner.design_channel algorithm in
  let problem = make_problem config ~trace ~channel ~source ~deadline in
  let ctx =
    Planner.Ctx.make ~rng ~steiner_level:config.steiner_level ~cap_per_node:config.dts_cap ?warm
      ~lazy_aux:config.aux_lazy ()
  in
  let outcome = Planner.run ~ctx algorithm problem in
  let schedule = outcome.Planner.Outcome.schedule in
  let report = outcome.Planner.Outcome.report in
  {
    algorithm;
    energy = Metrics.normalized_energy problem schedule;
    feasible = report.Feasibility.feasible;
    analytic_delivery = Feasibility.delivery_ratio report;
    schedule;
    unreached = outcome.Planner.Outcome.unreached;
  }

(* Per-(point, algorithm) RNG split: every pool task seeds its own
   stream from (seed, point index, algorithm) alone, so sweep results
   are bit-identical at any worker count.  The figure chains, Fig. 6's
   fan-out and the Pareto sweep all share this recipe. *)
let point_rng ~seed ~k algorithm =
  Rng.create (seed + (1009 * k) + Hashtbl.hash (algorithm_name algorithm))

type series = { label : string; points : (float * float) list }

(* One warm chain: the [npoints] x-axis points of one (series, source)
   pair, walked in ascending order inside a single pool task so the FR
   allocation of each point warm-starts from the previous one.  The
   stream is re-created per point from (config.seed, k, algorithm)
   alone — the exact layout the per-point tasks used — so chain
   results are bit-identical at any worker count, and identical to the
   old per-point fan-out for planners that ignore the warm store. *)
let run_chain config ~npoints ~point ~k algorithm =
  let warm = Planner.Warm.create () in
  let out = Array.make npoints 0. in
  for i = 0 to npoints - 1 do
    let trace, source, deadline = point i in
    let rng = point_rng ~seed:config.seed ~k algorithm in
    out.(i) <- (run_alg ~warm config ~trace ~source ~deadline ~rng algorithm).energy
  done;
  out

let fig4 ?(config = default_config) ?pool ~variant ~deadlines ~ns () =
  let algorithm = List.hd (Registry.with_channel variant) in
  let ns = Array.of_list ns in
  let deadlines = Array.of_list deadlines in
  let nd = Array.length deadlines in
  let traces = Pool.map pool (fun n -> make_trace config ~n) ns in
  let sources =
    Array.map
      (fun trace ->
        Array.map
          (fun deadline -> Array.of_list (choose_sources config ~trace ~deadline))
          deadlines)
      traces
  in
  let nk ni = if nd = 0 then 0 else Array.length sources.(ni).(0) in
  (* One task per (network size, source index): a deadline chain
     sharing one warm store. *)
  let chains =
    Array.concat
      (List.init (Array.length ns) (fun ni -> Array.init (nk ni) (fun k -> (ni, k))))
  in
  let energies =
    Pool.map pool
      (fun (ni, k) ->
        run_chain config ~npoints:nd
          ~point:(fun di -> (traces.(ni), sources.(ni).(di).(k), deadlines.(di)))
          ~k algorithm)
      chains
  in
  let offsets = Array.make (Array.length ns) 0 in
  for ni = 1 to Array.length ns - 1 do
    offsets.(ni) <- offsets.(ni - 1) + nk (ni - 1)
  done;
  List.init (Array.length ns) (fun ni ->
      {
        label = Printf.sprintf "%s N=%d" (algorithm_name algorithm) ns.(ni);
        points =
          List.init nd (fun di ->
              ( deadlines.(di),
                Stats.mean (Array.init (nk ni) (fun k -> energies.(offsets.(ni) + k).(di)))
              ));
      })

let fig5 ?(config = default_config) ?pool ~variant ~deadlines () =
  let algorithms = Registry.with_channel variant in
  let trace = make_trace config ~n:config.n in
  let algs = Array.of_list algorithms in
  let deadlines = Array.of_list deadlines in
  let nd = Array.length deadlines in
  let sources =
    Array.map (fun deadline -> Array.of_list (choose_sources config ~trace ~deadline)) deadlines
  in
  let nk = if nd = 0 then 0 else Array.length sources.(0) in
  (* One task per (algorithm, source index): a deadline chain sharing
     one warm store. *)
  let chains = Array.init (Array.length algs * nk) (fun i -> (i / nk, i mod nk)) in
  let energies =
    Pool.map pool
      (fun (ai, k) ->
        run_chain config ~npoints:nd
          ~point:(fun di -> (trace, sources.(di).(k), deadlines.(di)))
          ~k algs.(ai))
      chains
  in
  List.init (Array.length algs) (fun ai ->
      {
        label = algorithm_name algs.(ai);
        points =
          List.init nd (fun di ->
              ( deadlines.(di),
                Stats.mean (Array.init nk (fun k -> energies.((ai * nk) + k).(di))) ));
      })

let fig6 ?(config = default_config) ?pool ~ns () =
  let ns = Array.of_list ns in
  let deadline = config.deadline in
  let traces = Pool.map pool (fun n -> make_trace config ~n) ns in
  let sources =
    Array.map (fun trace -> Array.of_list (choose_sources config ~trace ~deadline)) traces
  in
  let algs = Array.of_list all_algorithms in
  let na = Array.length algs in
  (* One task per (size, algorithm, source): plan the schedule, then
     Monte-Carlo its delivery in the fading environment regardless of
     the design channel (Fig. 6). *)
  let tasks =
    Array.concat
      (List.concat
         (List.init (Array.length ns) (fun ni ->
              List.init na (fun ai ->
                  Array.mapi (fun k source -> (ni, ai, k, source)) sources.(ni)))))
  in
  let outcomes =
    Pool.map pool
      (fun (ni, ai, k, source) ->
        let algorithm = algs.(ai) in
        let trace = traces.(ni) in
        let rng = point_rng ~seed:config.seed ~k algorithm in
        let result = run_alg config ~trace ~source ~deadline ~rng algorithm in
        let problem = make_problem config ~trace ~channel:`Rayleigh ~source ~deadline in
        let sim =
          Simulate.run ~trials:config.mc_trials ?pool ~rng ~eval_channel:`Rayleigh problem
            result.schedule
        in
        (ni, ai, result.energy, sim.Simulate.delivery_ratio))
      tasks
  in
  (* Aggregate in task order: deterministic at any worker count. *)
  let energy_acc = Array.make_matrix (Array.length ns) na [] in
  let delivery_acc = Array.make_matrix (Array.length ns) na [] in
  Array.iter
    (fun (ni, ai, e, d) ->
      energy_acc.(ni).(ai) <- e :: energy_acc.(ni).(ai);
      delivery_acc.(ni).(ai) <- d :: delivery_acc.(ni).(ai))
    outcomes;
  let series acc =
    List.init na (fun ai ->
        {
          label = algorithm_name algs.(ai);
          points =
            List.sort compare
              (List.init (Array.length ns) (fun ni ->
                   (float_of_int ns.(ni), Stats.mean (Array.of_list acc.(ni).(ai)))));
        })
  in
  (series energy_acc, series delivery_acc)

let fig7 ?(config = default_config) ?pool ~variant () =
  let algorithms = Registry.with_channel variant in
  (* Ramp bounds scale with the horizon so reduced-scale configs keep
     the Fig. 7 shape: density low early, rising to full by ~half. *)
  let ramp_lo = 0.29 *. config.horizon and ramp_hi = 0.47 *. config.horizon in
  let profile = Synth.ramp_profile ~t0:ramp_lo ~t1:ramp_hi ~low:0.25 in
  let trace = make_trace ~density_profile:profile config ~n:config.n in
  let window_starts =
    (* The paper samples every 500 s over [5000, 15000] with a 17000 s
       horizon; keep that on the default config and shrink otherwise.
       Every window must fit a full broadcast: t0 + deadline <= horizon. *)
    let first = ramp_lo in
    let last = config.horizon -. config.deadline in
    let rec build t acc =
      if t > last +. 1e-9 then List.rev acc else build (t +. 500.) (t :: acc)
    in
    build first []
  in
  let graph = Tveg.of_trace ~tau:0. trace in
  let degree =
    {
      label = "avg degree";
      points =
        List.map
          (fun t0 ->
            (t0, Tveg.average_degree_over graph ~window:(Interval.make ~lo:t0 ~hi:(t0 +. 500.))))
          window_starts;
    }
  in
  let algs = Array.of_list algorithms in
  let windows = Array.of_list window_starts in
  let nw = Array.length windows in
  (* Per-window restricted trace, deadline and sources, precomputed so
     the chains below fan out over pure data.  [Trace.restrict] keeps
     the node count, so every window draws the same number of
     sources. *)
  let subs =
    Array.map
      (fun t0 ->
        let hi = Float.min config.horizon (t0 +. config.deadline) in
        (Trace.restrict trace ~span:(Interval.make ~lo:t0 ~hi), hi))
      windows
  in
  let sources =
    Array.map (fun (sub, hi) -> Array.of_list (choose_sources config ~trace:sub ~deadline:hi)) subs
  in
  let nk = if nw = 0 then 0 else Array.length sources.(0) in
  (* One task per (algorithm, source index): a window chain sharing
     one warm store. *)
  let chains = Array.init (Array.length algs * nk) (fun i -> (i / nk, i mod nk)) in
  let energies =
    Pool.map pool
      (fun (ai, k) ->
        run_chain config ~npoints:nw
          ~point:(fun wi ->
            let sub, hi = subs.(wi) in
            (sub, sources.(wi).(k), hi))
          ~k algs.(ai))
      chains
  in
  let energy_series =
    List.init (Array.length algs) (fun ai ->
        {
          label = algorithm_name algs.(ai);
          points =
            List.init nw (fun wi ->
                ( windows.(wi),
                  Stats.mean (Array.init nk (fun k -> energies.((ai * nk) + k).(wi))) ));
        })
  in
  (energy_series, degree)

let print_series ~title ~xlabel series =
  Printf.printf "\n== %s ==\n" title;
  match series with
  | [] -> Printf.printf "(no series)\n"
  | first :: _ ->
      let xs = List.map fst first.points in
      Printf.printf "%-12s" xlabel;
      List.iter (fun s -> Printf.printf " %16s" s.label) series;
      print_newline ();
      List.iteri
        (fun row x ->
          Printf.printf "%-12g" x;
          List.iter
            (fun s ->
              match List.nth_opt s.points row with
              | Some (_, y) -> Printf.printf " %16.6g" y
              | None -> Printf.printf " %16s" "-")
            series;
          print_newline ())
        xs;
      flush stdout
