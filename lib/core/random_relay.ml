open Tmedb_prelude

let plan (ctx : Planner.Ctx.t) problem =
  (* Seed 17 is the historical default the FR wrapper used when no
     stream was supplied; Ctx.rng overrides it. *)
  let rng = Planner.Ctx.rng_or ctx ~seed:17 in
  let dts = Problem.dts ?cap_per_node:ctx.Planner.Ctx.cap_per_node problem in
  let n = Problem.n problem in
  let tau = Problem.tau problem in
  let informed_time = Array.make n None in
  informed_time.(problem.Problem.source) <- Some (Problem.span_start problem);
  let dcs_memo = Hashtbl.create 256 in
  let schedule = ref [] in
  let steps = ref 0 in
  let stalled = ref false in
  let uninformed_left () = Array.exists (fun t -> t = None) informed_time in
  while uninformed_left () && not !stalled do
    let cands = Greedy.candidates problem dts ~dcs_memo ~informed_time in
    (* Keep, per (relay, time), only the cheapest productive level:
       RAND pays the minimum useful cost. *)
    let cheapest = Hashtbl.create 64 in
    List.iter
      (fun c ->
        let key = (c.Greedy.relay, c.Greedy.time) in
        match Hashtbl.find_opt cheapest key with
        | Some c0 when c0.Greedy.cost <= c.Greedy.cost -> ()
        | Some _ | None -> Hashtbl.replace cheapest key c)
      cands;
    (* Extract the surviving opportunities in (relay, time) key order:
       hash-bucket layout must not influence which relay RAND draws
       (lint rule R1). *)
    let by_key =
      List.sort
        (fun ((r1, t1), _) ((r2, t2), _) ->
          match Int.compare r1 r2 with 0 -> Float.compare t1 t2 | c -> c)
        (Hashtbl.fold (fun key c acc -> (key, c) :: acc) cheapest [])
    in
    let relays = List.sort_uniq Int.compare (List.map (fun ((r, _), _) -> r) by_key) in
    match relays with
    | [] -> stalled := true
    | _ ->
        let relay = Rng.pick_list rng relays in
        let opportunities =
          List.filter_map
            (fun ((r, _), c) -> if r = relay then Some c else None)
            by_key
        in
        let chosen = Rng.pick_list rng opportunities in
        incr steps;
        schedule :=
          { Schedule.relay = chosen.Greedy.relay; time = chosen.Greedy.time; cost = chosen.Greedy.cost }
          :: !schedule;
        List.iter
          (fun j -> informed_time.(j) <- Some (chosen.Greedy.time +. tau))
          chosen.Greedy.informs
  done;
  let schedule = Schedule.of_transmissions !schedule in
  let report = Feasibility.check problem schedule in
  let unreached =
    List.filter (fun i -> informed_time.(i) = None) (List.init n (fun i -> i))
  in
  Planner.Outcome.make ~schedule ~report ~unreached
    ~artifacts:[ Planner.Outcome.Greedy_steps !steps ] ()

let info =
  {
    Planner.name = "RAND";
    channel = `Static;
    section = "VII";
    summary = "uniformly random relay and opportunity at the cheapest useful cost";
  }

let planner = { Planner.info; plan }
