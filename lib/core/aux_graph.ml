open Tmedb_tveg
open Tmedb_steiner

(* Telemetry: the auxiliary graph's size is the paper's main scaling
   quantity (Section VI-A); vertices/edges accumulate over builds so a
   sweep's totals land in one snapshot. *)
let c_builds = Tmedb_obs.Counter.make "aux_graph.builds"
let c_vertices = Tmedb_obs.Counter.make "aux_graph.vertices"
let c_edges = Tmedb_obs.Counter.make "aux_graph.edges"
let t_build = Tmedb_obs.Timer.make "aux_graph.build"
let h_point_edges = Tmedb_obs.Histogram.make "aux_graph.point_edges"

type vertex =
  | Wait of { node : int; point_idx : int; time : float }
  | Level of { node : int; point_idx : int; time : float; level_idx : int; cum_cost : float }

type t = {
  graph : Digraph.t;
  vertex : vertex array;
  source_vertex : int;
  terminals : int list;
  base : int array;
  problem : Problem.t;
}

let build_body (problem : Problem.t) dts =
  let g = problem.Problem.graph in
  let phy = problem.Problem.phy in
  let channel = problem.Problem.channel in
  let n = Tveg.n g in
  let tau = Tveg.tau g in
  let deadline = Dts.deadline dts in
  (* Wait vertices first, contiguous per node. *)
  let base = Array.make n 0 in
  let total_wait = ref 0 in
  for i = 0 to n - 1 do
    base.(i) <- !total_wait;
    total_wait := !total_wait + Array.length (Dts.node_points dts i)
  done;
  let vertices = ref [] (* level vertices, reversed *) in
  let next_id = ref !total_wait in
  let edges = ref [] in
  let edge_count = ref 0 in
  let add_edge u v w =
    incr edge_count;
    edges := (u, v, w) :: !edges
  in
  for i = 0 to n - 1 do
    let pts = Dts.node_points dts i in
    Array.iteri
      (fun l t ->
        let edges_before = !edge_count in
        (* Waiting chain. *)
        if l + 1 < Array.length pts then add_edge (base.(i) + l) (base.(i) + l + 1) 0.;
        (* Transmission level chain, when the transmission can finish. *)
        if t +. tau <= deadline then begin
          let levels = Dcs.marginals_at g ~phy ~channel ~node:i ~time:t in
          let prev_vertex = ref (base.(i) + l) in
          let prev_cost = ref 0. in
          List.iteri
            (fun level_idx { Dcs.cost; fresh } ->
              let x = !next_id in
              incr next_id;
              vertices :=
                Level { node = i; point_idx = l; time = t; level_idx; cum_cost = cost }
                :: !vertices;
              add_edge !prev_vertex x (cost -. !prev_cost);
              List.iter
                (fun j ->
                  let t_recv = t +. tau in
                  let target_idx =
                    match Dts.index_of_point dts j t_recv with
                    | Some f -> Some f
                    | None -> (
                        (* The exact receive instant fell to the DTS
                           propagation cap: round forward, which only
                           delays j's informed time — sound, possibly
                           suboptimal. *)
                        match Dts.earliest_at_or_after dts j t_recv with
                        | Some p -> Dts.index_of_point dts j p
                        | None -> None)
                  in
                  match target_idx with
                  | Some f -> add_edge x (base.(j) + f) 0.
                  | None -> ())
                fresh;
              prev_vertex := x;
              prev_cost := cost)
            levels
        end;
        Tmedb_obs.Histogram.observe h_point_edges (!edge_count - edges_before))
      pts
  done;
  let vertex = Array.make !next_id (Wait { node = 0; point_idx = 0; time = 0. }) in
  for i = 0 to n - 1 do
    Array.iteri
      (fun l t -> vertex.(base.(i) + l) <- Wait { node = i; point_idx = l; time = t })
      (Dts.node_points dts i)
  done;
  List.iteri
    (fun k v -> vertex.(!next_id - 1 - k) <- v)
    !vertices;
  let graph = Digraph.of_edges ~n:!next_id !edges in
  let source_vertex = base.(problem.Problem.source) in
  let terminals =
    List.filter_map
      (fun i ->
        if i = problem.Problem.source then None
        else begin
          let len = Array.length (Dts.node_points dts i) in
          if len = 0 then None else Some (base.(i) + len - 1)
        end)
      (List.init n (fun i -> i))
  in
  { graph; vertex; source_vertex; terminals; base; problem }

let build problem dts =
  Tmedb_obs.Counter.incr c_builds;
  let t0 = Tmedb_obs.Timer.start t_build in
  let t =
    Tmedb_obs.Span.with_ "aux_graph.build" (fun () -> build_body problem dts)
  in
  Tmedb_obs.Timer.stop t_build t0;
  Tmedb_obs.Counter.add c_vertices (Digraph.n t.graph);
  Tmedb_obs.Counter.add c_edges (Digraph.m t.graph);
  t

let wait_vertex t ~node ~point_idx =
  (* Wait vertices are contiguous per node starting at [base.(node)],
     so the lookup is one offset add instead of an O(V) scan. *)
  if node < 0 || node >= Array.length t.base || point_idx < 0 then None
  else begin
    let id = t.base.(node) + point_idx in
    if id >= Array.length t.vertex then None
    else
      match t.vertex.(id) with
      | Wait w when w.node = node && w.point_idx = point_idx -> Some id
      | Wait _ | Level _ -> None
  end

(* Neighbours served by [node] transmitting at [time] up to DCS level
   [level_idx]: the union of the per-level marginals (ascending id). *)
let covered_up_to t ~node ~time ~level_idx =
  let p = t.problem in
  Dcs.marginals_at p.Problem.graph ~phy:p.Problem.phy ~channel:p.Problem.channel ~node ~time
  |> List.filteri (fun i _ -> i <= level_idx)
  |> List.concat_map (fun m -> m.Dcs.fresh)
  |> List.sort_uniq Int.compare

let extract_schedule t (tree : Dst.tree) =
  (* Deepest chosen level per (node, DTS point), remembering the tree
     edge that reached it (the provenance witness). *)
  let best = Hashtbl.create 16 in
  let note id edge =
    match t.vertex.(id) with
    | Wait _ -> ()
    | Level { node; point_idx; time; level_idx; cum_cost } -> (
        let key = (node, point_idx) in
        match Hashtbl.find_opt best key with
        | Some (c, _, _, _) when c >= cum_cost -> ()
        | Some _ | None -> Hashtbl.replace best key (cum_cost, (node, time), level_idx, edge))
  in
  List.iter
    (fun (u, v, _) ->
      note u (u, v);
      note v (u, v))
    tree.Dst.edges;
  (* Extract in (node, point) key order so the transmission list never
     depends on hash-bucket layout (lint rule R1); [of_transmissions]
     re-sorts by (time, relay, cost), which cannot distinguish exact
     duplicates. *)
  let chosen =
    List.sort compare (Hashtbl.fold (fun key payload acc -> (key, payload) :: acc) best [])
  in
  if Tmedb_report.Provenance.enabled () then
    List.iter
      (fun ((node, point_idx), (cost, (_, time), level_idx, edge)) ->
        Tmedb_report.Provenance.emit
          (Tmedb_report.Provenance.Schedule_entry
             {
               node;
               time;
               cost;
               point_idx;
               level_idx;
               covered = covered_up_to t ~node ~time ~level_idx;
               tree_edge = Some edge;
             }))
      chosen;
  let txs =
    List.map (fun (_, (cost, (relay, time), _, _)) -> { Schedule.relay; time; cost }) chosen
  in
  Schedule.of_transmissions txs

let num_wait_vertices t =
  Array.fold_left
    (fun acc v -> match v with Wait _ -> acc + 1 | Level _ -> acc)
    0 t.vertex

let num_level_vertices t = Array.length t.vertex - num_wait_vertices t
