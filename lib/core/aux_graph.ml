open Tmedb_tveg
open Tmedb_steiner

(* Telemetry: the auxiliary graph's size is the paper's main scaling
   quantity (Section VI-A); vertices/edges accumulate over builds so a
   sweep's totals land in one snapshot. *)
let c_builds = Tmedb_obs.Counter.make "aux_graph.builds"
let c_vertices = Tmedb_obs.Counter.make "aux_graph.vertices"
let c_edges = Tmedb_obs.Counter.make "aux_graph.edges"
let t_build = Tmedb_obs.Timer.make "aux_graph.build"
let h_point_edges = Tmedb_obs.Histogram.make "aux_graph.point_edges"

(* Lazy-expansion telemetry: the universe a lazy graph *would* have if
   built eagerly, versus the vertices/edges whose successors were
   actually generated.  The gap is the frontier cut. *)
let c_lazy_creates = Tmedb_obs.Counter.make "aux_graph.lazy_creates"
let c_lazy_nodes_total = Tmedb_obs.Counter.make "aux_graph.lazy_nodes_total"
let c_nodes_mat = Tmedb_obs.Counter.make "aux_graph.nodes_materialized"
let c_edges_mat = Tmedb_obs.Counter.make "aux_graph.edges_materialized"
let t_lazy_create = Tmedb_obs.Timer.make "aux_graph.lazy_create"

type vertex =
  | Wait of { node : int; point_idx : int; time : float }
  | Level of { node : int; point_idx : int; time : float; level_idx : int; cum_cost : float }

type t = {
  graph : Digraph.t;
  vertex : vertex array;
  source_vertex : int;
  terminals : int list;
  base : int array;
  problem : Problem.t;
}

let build_body (problem : Problem.t) dts =
  let g = problem.Problem.graph in
  let phy = problem.Problem.phy in
  let channel = problem.Problem.channel in
  let n = Tveg.n g in
  let tau = Tveg.tau g in
  let deadline = Dts.deadline dts in
  (* Wait vertices first, contiguous per node. *)
  let base = Array.make n 0 in
  let total_wait = ref 0 in
  for i = 0 to n - 1 do
    base.(i) <- !total_wait;
    total_wait := !total_wait + Array.length (Dts.node_points dts i)
  done;
  let vertices = ref [] (* level vertices, reversed *) in
  let next_id = ref !total_wait in
  let edges = ref [] in
  let edge_count = ref 0 in
  let add_edge u v w =
    incr edge_count;
    edges := (u, v, w) :: !edges
  in
  for i = 0 to n - 1 do
    let pts = Dts.node_points dts i in
    Array.iteri
      (fun l t ->
        let edges_before = !edge_count in
        (* Waiting chain. *)
        if l + 1 < Array.length pts then add_edge (base.(i) + l) (base.(i) + l + 1) 0.;
        (* Transmission level chain, when the transmission can finish. *)
        if t +. tau <= deadline then begin
          let levels = Dcs.marginals_at g ~phy ~channel ~node:i ~time:t in
          let prev_vertex = ref (base.(i) + l) in
          let prev_cost = ref 0. in
          List.iteri
            (fun level_idx { Dcs.cost; fresh } ->
              let x = !next_id in
              incr next_id;
              vertices :=
                Level { node = i; point_idx = l; time = t; level_idx; cum_cost = cost }
                :: !vertices;
              add_edge !prev_vertex x (cost -. !prev_cost);
              List.iter
                (fun j ->
                  let t_recv = t +. tau in
                  let target_idx =
                    match Dts.index_of_point dts j t_recv with
                    | Some f -> Some f
                    | None -> (
                        (* The exact receive instant fell to the DTS
                           propagation cap: round forward, which only
                           delays j's informed time — sound, possibly
                           suboptimal. *)
                        match Dts.earliest_at_or_after dts j t_recv with
                        | Some p -> Dts.index_of_point dts j p
                        | None -> None)
                  in
                  match target_idx with
                  | Some f -> add_edge x (base.(j) + f) 0.
                  | None -> ())
                fresh;
              prev_vertex := x;
              prev_cost := cost)
            levels
        end;
        Tmedb_obs.Histogram.observe h_point_edges (!edge_count - edges_before))
      pts
  done;
  let vertex = Array.make !next_id (Wait { node = 0; point_idx = 0; time = 0. }) in
  for i = 0 to n - 1 do
    Array.iteri
      (fun l t -> vertex.(base.(i) + l) <- Wait { node = i; point_idx = l; time = t })
      (Dts.node_points dts i)
  done;
  List.iteri
    (fun k v -> vertex.(!next_id - 1 - k) <- v)
    !vertices;
  let graph = Digraph.of_edges ~n:!next_id !edges in
  let source_vertex = base.(problem.Problem.source) in
  let terminals =
    List.filter_map
      (fun i ->
        if i = problem.Problem.source then None
        else begin
          let len = Array.length (Dts.node_points dts i) in
          if len = 0 then None else Some (base.(i) + len - 1)
        end)
      (List.init n (fun i -> i))
  in
  { graph; vertex; source_vertex; terminals; base; problem }

let build problem dts =
  Tmedb_obs.Counter.incr c_builds;
  let t0 = Tmedb_obs.Timer.start t_build in
  let t =
    Tmedb_obs.Span.with_ "aux_graph.build" (fun () -> build_body problem dts)
  in
  Tmedb_obs.Timer.stop t_build t0;
  Tmedb_obs.Counter.add c_vertices (Digraph.n t.graph);
  Tmedb_obs.Counter.add c_edges (Digraph.m t.graph);
  t

let wait_vertex t ~node ~point_idx =
  (* Wait vertices are contiguous per node starting at [base.(node)],
     so the lookup is one offset add instead of an O(V) scan. *)
  if node < 0 || node >= Array.length t.base || point_idx < 0 then None
  else begin
    let id = t.base.(node) + point_idx in
    if id >= Array.length t.vertex then None
    else
      match t.vertex.(id) with
      | Wait w when w.node = node && w.point_idx = point_idx -> Some id
      | Wait _ | Level _ -> None
  end

(* Neighbours served by [node] transmitting at [time] up to DCS level
   [level_idx]: the union of the per-level marginals (ascending id). *)
let covered_up_to t ~node ~time ~level_idx =
  let p = t.problem in
  Dcs.marginals_at p.Problem.graph ~phy:p.Problem.phy ~channel:p.Problem.channel ~node ~time
  |> List.filteri (fun i _ -> i <= level_idx)
  |> List.concat_map (fun m -> m.Dcs.fresh)
  |> List.sort_uniq Int.compare

(* Shared schedule extraction: the eager graph describes a vertex by
   array lookup, the lazy one by id arithmetic plus a memoised block;
   [covered] recomputes a chosen level's covered-neighbour set for
   provenance.  Everything else — deepest-level choice, deterministic
   key order, emitted events — is common and must stay identical for
   the eager/lazy digest equivalence. *)
let extract_schedule_with ~describe ~covered (tree : Dst.tree) =
  (* Deepest chosen level per (node, DTS point), remembering the tree
     edge that reached it (the provenance witness). *)
  let best = Hashtbl.create 16 in
  let note id edge =
    match describe id with
    | Wait _ -> ()
    | Level { node; point_idx; time; level_idx; cum_cost } -> (
        let key = (node, point_idx) in
        match Hashtbl.find_opt best key with
        | Some (c, _, _, _) when c >= cum_cost -> ()
        | Some _ | None -> Hashtbl.replace best key (cum_cost, (node, time), level_idx, edge))
  in
  List.iter
    (fun (u, v, _) ->
      note u (u, v);
      note v (u, v))
    tree.Dst.edges;
  (* Extract in (node, point) key order so the transmission list never
     depends on hash-bucket layout (lint rule R1); [of_transmissions]
     re-sorts by (time, relay, cost), which cannot distinguish exact
     duplicates. *)
  let chosen =
    List.sort compare (Hashtbl.fold (fun key payload acc -> (key, payload) :: acc) best [])
  in
  if Tmedb_report.Provenance.enabled () then
    List.iter
      (fun ((node, point_idx), (cost, (_, time), level_idx, edge)) ->
        Tmedb_report.Provenance.emit
          (Tmedb_report.Provenance.Schedule_entry
             {
               node;
               time;
               cost;
               point_idx;
               level_idx;
               covered = covered ~node ~time ~level_idx;
               tree_edge = Some edge;
             }))
      chosen;
  let txs =
    List.map (fun (_, (cost, (relay, time), _, _)) -> { Schedule.relay; time; cost }) chosen
  in
  Schedule.of_transmissions txs

let extract_schedule t tree =
  extract_schedule_with
    ~describe:(fun id -> t.vertex.(id))
    ~covered:(fun ~node ~time ~level_idx -> covered_up_to t ~node ~time ~level_idx)
    tree

let num_wait_vertices t =
  Array.fold_left
    (fun acc v -> match v with Wait _ -> acc + 1 | Level _ -> acc)
    0 t.vertex

let num_level_vertices t = Array.length t.vertex - num_wait_vertices t

(* Covered-neighbour recomputation shared by the eager and lazy
   extractors (provenance only — never on the solve path). *)
let covered_from_problem (p : Problem.t) ~node ~time ~level_idx =
  Dcs.marginals_at p.Problem.graph ~phy:p.Problem.phy ~channel:p.Problem.channel ~node ~time
  |> List.filteri (fun i _ -> i <= level_idx)
  |> List.concat_map (fun m -> m.Dcs.fresh)
  |> List.sort_uniq Int.compare

module Lazy = struct
  open Tmedb_prelude

  (* Memoised per-(node, point) transmission block: the DCS marginals
     of one wait vertex, reshaped for O(1) level access and O(log d)
     neighbour-to-level lookup. *)
  type block = {
    costs : float array;  (* cumulative clamped level costs, ascending *)
    fresh : int array array;  (* newly covered neighbours per level, ascending *)
    level_of : (int * int) array;  (* (neighbour, level), sorted by neighbour *)
  }

  type t = {
    problem : Problem.t;
    dts : Dts.t;
    tau : float;
    base : int array;  (* wait-vertex base id per node *)
    total_wait : int;
    level_off : int array;  (* per-block level-id prefix, length total_wait+1 *)
    nv : int;
    edge_bound : int;  (* edges the eager build would emit, at most *)
    source_vertex : int;
    terminals : int list;
    marginals : node:int -> time:float -> Dcs.marginal list;
        (* DCS source for block materialisation: a direct query on the
           instance by default, a shared-state memo under
           [create_with] — both must describe the same universe as the
           sizing pass that fixed [level_off]. *)
    blocks : (int, block) Hashtbl.t;  (* keyed by wait/block id *)
    touched : Bitset.t;  (* vertices expanded in either direction *)
    gen_fwd : Bitset.t;  (* vertices whose forward succs were generated *)
    gen_rev : Bitset.t;  (* vertices whose reverse succs were generated *)
    mutable nodes_materialized : int;
    mutable edges_materialized : int;
  }

  (* Steiner terminals: each non-source node's last wait vertex. *)
  let terminals_of (problem : Problem.t) dts base =
    List.filter_map
      (fun i ->
        if i = problem.Problem.source then None
        else begin
          let len = Array.length (Dts.node_points dts i) in
          if len = 0 then None else Some (base.(i) + len - 1)
        end)
      (List.init (Tveg.n problem.Problem.graph) (fun i -> i))

  (* The exact-count pass: per (node, point) block, the number of DCS
     levels the eager build would create — [Dcs.marginals_at] is the
     single source of truth, so lazy vertex ids are *identical* to the
     eager compact ids (wait ids first, then level ids in block order). *)
  let create_body (problem : Problem.t) dts =
    let g = problem.Problem.graph in
    let phy = problem.Problem.phy in
    let channel = problem.Problem.channel in
    let n = Tveg.n g in
    let tau = Tveg.tau g in
    let deadline = Dts.deadline dts in
    let base = Array.make n 0 in
    let total_wait = ref 0 in
    for i = 0 to n - 1 do
      base.(i) <- !total_wait;
      total_wait := !total_wait + Array.length (Dts.node_points dts i)
    done;
    let total_wait = !total_wait in
    let level_off = Array.make (total_wait + 1) 0 in
    let edge_bound = ref 0 in
    for i = 0 to n - 1 do
      let pts = Dts.node_points dts i in
      Array.iteri
        (fun l t ->
          let bid = base.(i) + l in
          let nlev, cov =
            if t +. tau <= deadline then
              Dcs.level_stats (Dcs.marginals_at g ~phy ~channel ~node:i ~time:t)
            else (0, 0)
          in
          level_off.(bid + 1) <- level_off.(bid) + nlev;
          edge_bound := !edge_bound + nlev + cov;
          if l + 1 < Array.length pts then incr edge_bound)
        pts
    done;
    let nv = total_wait + level_off.(total_wait) in
    {
      problem;
      dts;
      tau;
      base;
      total_wait;
      level_off;
      nv;
      edge_bound = !edge_bound;
      source_vertex = base.(problem.Problem.source);
      terminals = terminals_of problem dts base;
      marginals =
        (fun ~node ~time -> Dcs.marginals_at g ~phy ~channel ~node ~time);
      blocks = Hashtbl.create 64;
      touched = Bitset.create nv;
      gen_fwd = Bitset.create nv;
      gen_rev = Bitset.create nv;
      nodes_materialized = 0;
      edges_materialized = 0;
    }

  let with_create_telemetry body =
    Tmedb_obs.Counter.incr c_lazy_creates;
    let t0 = Tmedb_obs.Timer.start t_lazy_create in
    let t = Tmedb_obs.Span.with_ "aux_graph.lazy_create" body in
    Tmedb_obs.Timer.stop t_lazy_create t0;
    Tmedb_obs.Counter.add c_lazy_nodes_total t.nv;
    t

  let create problem dts = with_create_telemetry (fun () -> create_body problem dts)

  (* Same graph as [create], but the id layout arrives precomputed (a
     shared {!Solve_state} assembles it by offset arithmetic over the
     memoised per-block level counts) and the DCS marginals come from
     the given provider: no block is enumerated at creation time. *)
  let create_with ~marginals ~base ~level_off ~edge_bound (problem : Problem.t) dts =
    with_create_telemetry @@ fun () ->
    let n = Tveg.n problem.Problem.graph in
    let total_wait = base.(n - 1) + Array.length (Dts.node_points dts (n - 1)) in
    let nv = total_wait + level_off.(total_wait) in
    {
      problem;
      dts;
      tau = Tveg.tau problem.Problem.graph;
      base;
      total_wait;
      level_off;
      nv;
      edge_bound;
      source_vertex = base.(problem.Problem.source);
      terminals = terminals_of problem dts base;
      marginals;
      blocks = Hashtbl.create 64;
      touched = Bitset.create nv;
      gen_fwd = Bitset.create nv;
      gen_rev = Bitset.create nv;
      nodes_materialized = 0;
      edges_materialized = 0;
    }

  (* Node owning wait/block id [id]: rightmost i with base.(i) <= id
     (bases are strictly increasing — every node has >= 1 DTS point). *)
  let node_of_wait t id =
    let base = t.base in
    let lo = ref 0 and hi = ref (Array.length base - 1) in
    while !hi > !lo do
      let mid = (!lo + !hi + 1) / 2 in
      if base.(mid) <= id then lo := mid else hi := mid - 1
    done;
    !lo

  (* Level vertex id -> (block id, level index): rightmost block whose
     level-id prefix starts at or before the rank.  Empty blocks share
     their successor's offset and can never own a rank. *)
  let locate_level t id =
    let r = id - t.total_wait in
    let off = t.level_off in
    let lo = ref 0 and hi = ref (t.total_wait - 1) in
    while !hi > !lo do
      let mid = (!lo + !hi + 1) / 2 in
      if off.(mid) <= r then lo := mid else hi := mid - 1
    done;
    (!lo, r - off.(!lo))

  let block t bid =
    match Hashtbl.find_opt t.blocks bid with
    | Some b -> b
    | None ->
        let nlev = t.level_off.(bid + 1) - t.level_off.(bid) in
        let b =
          if nlev = 0 then { costs = [||]; fresh = [||]; level_of = [||] }
          else begin
            let node = node_of_wait t bid in
            let l = bid - t.base.(node) in
            let time = (Dts.node_points t.dts node).(l) in
            let margs = t.marginals ~node ~time in
            assert (List.length margs = nlev);
            let costs = Array.make nlev 0. in
            let fresh = Array.make nlev [||] in
            List.iteri
              (fun k { Dcs.cost; fresh = fr } ->
                costs.(k) <- cost;
                fresh.(k) <- Array.of_list fr)
              margs;
            let pairs = ref [] in
            Array.iteri
              (fun k fr -> Array.iter (fun j -> pairs := (j, k) :: !pairs) fr)
              fresh;
            let level_of = Array.of_list !pairs in
            Array.sort (fun (a, _) (b, _) -> Int.compare a b) level_of;
            { costs; fresh; level_of }
          end
        in
        Hashtbl.replace t.blocks bid b;
        b

  let level_of_neighbour b j =
    let arr = b.level_of in
    let rec go lo hi =
      if lo > hi then None
      else begin
        let mid = (lo + hi) / 2 in
        let nj, k = arr.(mid) in
        if nj = j then Some k else if nj < j then go (mid + 1) hi else go lo (mid - 1)
      end
    in
    go 0 (Array.length arr - 1)

  (* First successor generation of a vertex in a given direction:
     record it, bump the materialisation counters on first touch in
     either direction, and answer whether edge emissions should count. *)
  let note_gen t gen id =
    if Bitset.mem gen id then false
    else begin
      Bitset.set gen id;
      if not (Bitset.mem t.touched id) then begin
        Bitset.set t.touched id;
        t.nodes_materialized <- t.nodes_materialized + 1;
        Tmedb_obs.Counter.incr c_nodes_mat
      end;
      true
    end

  let counted t f v w =
    t.edges_materialized <- t.edges_materialized + 1;
    Tmedb_obs.Counter.incr c_edges_mat;
    f v w

  (* Forward successors, in the exact CSR adjacency order of the eager
     build (reverse emission order — the Steiner scans break priority
     ties by operation sequence, so order is result-determining). *)
  let iter_fwd t u f =
    let f = if note_gen t t.gen_fwd u then counted t f else f in
    if u < t.total_wait then begin
      let node = node_of_wait t u in
      let l = u - t.base.(node) in
      let pts = Dts.node_points t.dts node in
      if t.level_off.(u + 1) - t.level_off.(u) > 0 then begin
        let b = block t u in
        f (t.total_wait + t.level_off.(u)) b.costs.(0)
      end;
      if l + 1 < Array.length pts then f (u + 1) 0.
    end
    else begin
      let bid, k = locate_level t u in
      let b = block t bid in
      let node = node_of_wait t bid in
      let l = bid - t.base.(node) in
      let time = (Dts.node_points t.dts node).(l) in
      if k + 1 < Array.length b.costs then f (u + 1) (b.costs.(k + 1) -. b.costs.(k));
      let fr = b.fresh.(k) in
      let t_recv = time +. t.tau in
      for q = Array.length fr - 1 downto 0 do
        let j = fr.(q) in
        let target =
          match Dts.index_of_point t.dts j t_recv with
          | Some fi -> Some fi
          | None -> (
              match Dts.earliest_at_or_after t.dts j t_recv with
              | Some pt -> Dts.index_of_point t.dts j pt
              | None -> None)
        in
        match target with Some fi -> f (t.base.(j) + fi) 0. | None -> ()
      done
    end

  (* Reverse successors (= predecessors), in the exact adjacency order
     of [Digraph.reverse] on the eager graph: descending source id.
     Predecessors of a wait vertex (j, f) are the level vertices whose
     coverage edge rounds forward to exactly this point — blocks (i, l)
     with t_{j,f-1} < t_{i,l} + tau <= t_{j,f} and j reachable from i
     at t_{i,l} within w_max — plus j's previous wait vertex. *)
  let iter_rev t v f =
    let f = if note_gen t t.gen_rev v then counted t f else f in
    if v < t.total_wait then begin
      let j = node_of_wait t v in
      let fj = v - t.base.(j) in
      let p = t.problem in
      let g = p.Problem.graph in
      let phy = p.Problem.phy in
      let channel = p.Problem.channel in
      let pts_j = Dts.node_points t.dts j in
      let t_jf = pts_j.(fj) in
      let prev_t = if fj > 0 then pts_j.(fj - 1) else Float.neg_infinity in
      let nbrs = Tveg.neighbor_ids g j in
      for idx = Array.length nbrs - 1 downto 0 do
        let i = nbrs.(idx) in
        let pts_i = Dts.node_points t.dts i in
        let len = Array.length pts_i in
        (* Largest l with pts_i.(l) + tau <= t_jf, or -1. *)
        let hi_l =
          if len = 0 || pts_i.(0) +. t.tau > t_jf then -1
          else begin
            let lo = ref 0 and hi = ref (len - 1) in
            while !hi > !lo do
              let mid = (!lo + !hi + 1) / 2 in
              if pts_i.(mid) +. t.tau <= t_jf then lo := mid else hi := mid - 1
            done;
            !lo
          end
        in
        (* Smallest l in [0, hi_l] with pts_i.(l) + tau > prev_t. *)
        let lo_l =
          if hi_l < 0 || fj = 0 then 0
          else if pts_i.(hi_l) +. t.tau <= prev_t then hi_l + 1
          else begin
            let lo = ref 0 and hi = ref hi_l in
            while !hi > !lo do
              let mid = (!lo + !hi) / 2 in
              if pts_i.(mid) +. t.tau > prev_t then hi := mid else lo := mid + 1
            done;
            !lo
          end
        in
        for l = hi_l downto lo_l do
          match Tveg.dist_at g i j pts_i.(l) with
          | Some dist
            when Dcs.neighbour_cost ~phy ~channel ~dist <= phy.Tmedb_channel.Phy.w_max -> (
              let bid = t.base.(i) + l in
              let b = block t bid in
              match level_of_neighbour b j with
              | Some k -> f (t.total_wait + t.level_off.(bid) + k) 0.
              | None -> ())
          | Some _ | None -> ()
        done
      done;
      if fj > 0 then f (v - 1) 0.
    end
    else begin
      let bid, k = locate_level t v in
      let b = block t bid in
      if k = 0 then f bid b.costs.(0) else f (v - 1) (b.costs.(k) -. b.costs.(k - 1))
    end

  let view t = { Digraph.nv = t.nv; iter_succ = (fun u f -> iter_fwd t u f) }
  let rev_view t = { Digraph.nv = t.nv; iter_succ = (fun v f -> iter_rev t v f) }

  let describe t id =
    if id < 0 || id >= t.nv then invalid_arg "Aux_graph.Lazy.describe: id out of range";
    if id < t.total_wait then begin
      let node = node_of_wait t id in
      let point_idx = id - t.base.(node) in
      Wait { node; point_idx; time = (Dts.node_points t.dts node).(point_idx) }
    end
    else begin
      let bid, level_idx = locate_level t id in
      let b = block t bid in
      let node = node_of_wait t bid in
      let point_idx = bid - t.base.(node) in
      Level
        {
          node;
          point_idx;
          time = (Dts.node_points t.dts node).(point_idx);
          level_idx;
          cum_cost = b.costs.(level_idx);
        }
    end

  let wait_vertex t ~node ~point_idx =
    if node < 0 || node >= Array.length t.base || point_idx < 0 then None
    else if point_idx < Array.length (Dts.node_points t.dts node) then
      Some (t.base.(node) + point_idx)
    else None

  let extract_schedule t tree =
    extract_schedule_with
      ~describe:(fun id -> describe t id)
      ~covered:(fun ~node ~time ~level_idx ->
        covered_from_problem t.problem ~node ~time ~level_idx)
      tree

  let num_vertices t = t.nv
  let num_wait_vertices t = t.total_wait
  let num_level_vertices t = t.nv - t.total_wait
  let edge_bound t = t.edge_bound
  let source_vertex t = t.source_vertex
  let terminals t = t.terminals
  let nodes_materialized t = t.nodes_materialized
  let edges_materialized t = t.edges_materialized
end
