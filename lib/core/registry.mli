(** The planner registry: the single source of truth for which
    planners exist, what they are called, and which design-channel
    family they belong to.

    Every algorithm list in the codebase — [Experiment]'s figure
    drivers, the CLI's [--algorithm] flag and [compare]/[algorithms]
    subcommands, the bench harness and the examples — derives from
    this module, so registering a planner here is the only step needed
    to surface it everywhere (see [Static_bip] for the worked
    example). *)

val paper : Planner.t list
(** The paper's six evaluated planners, in the canonical legend order:
    EEDCB, GREED, RAND, FR-EEDCB, FR-GREED, FR-RAND.  Figure drivers
    iterate exactly this list, so beyond-paper planners never perturb
    reproduction results. *)

val extras : Planner.t list
(** Beyond-paper planners (currently the static-BIP baseline): part of
    {!all} — selectable by name, listed by [tmedb_cli algorithms],
    compared by [compare --all] — but excluded from the paper
    figures. *)

val all : Planner.t list
(** [paper @ extras]: everything selectable by name. *)

val names : string list
(** Canonical names of {!all}, in registry order. *)

val find : string -> (Planner.t, string) result
(** Look up a planner by name, case-insensitively, treating ['_'] and
    ['-'] as the same character (so ["fr_eedcb"] finds FR-EEDCB).
    [Error] names the unknown input and lists {!names}. *)

val with_channel : Planner.channel -> Planner.t list
(** The {!paper} planners designing for the given channel family, in
    registry order: the static trio or the FR- trio.  Figure 5 and 7
    variants iterate these. *)
