open Tmedb_tveg

(* Telemetry: one [robustness.realizations] tick per sampled TVG
   realization checked (bumped on the running domain). *)
let c_realizations = Tmedb_obs.Counter.make "robustness.realizations"
let t_evaluate = Tmedb_obs.Timer.make "robustness.evaluate"

let evaluate_schedule ?trials ?pool ~rng nondet ~phy ~channel ~source ~deadline schedule =
  Tmedb_obs.Timer.time t_evaluate @@ fun () ->
  Nondet.evaluate ?trials ?pool ~rng nondet ~check:(fun realization ->
      Tmedb_obs.Counter.incr c_realizations;
      let problem = Problem.make ~graph:realization ~phy ~channel ~source ~deadline () in
      let report = Feasibility.check problem schedule in
      let wasted =
        List.fold_left
          (fun acc tx ->
            if Tveg.neighbors_at realization tx.Schedule.relay tx.Schedule.time = [] then
              acc +. tx.Schedule.cost
            else acc)
          0.
          (Schedule.transmissions schedule)
      in
      (Feasibility.delivery_ratio report, report.Feasibility.all_informed, wasted))

let plan_on graph ?level ~phy ~channel ~source ~deadline () =
  let problem = Problem.make ~graph ~phy ~channel ~source ~deadline () in
  let ctx = Planner.Ctx.make ?steiner_level:level () in
  (Eedcb.plan ctx problem).Planner.Outcome.schedule

let plan_on_support ?level nondet ~phy ~channel ~source ~deadline =
  plan_on (Nondet.support nondet) ?level ~phy ~channel ~source ~deadline ()

let plan_on_threshold ?level ~min_prob nondet ~phy ~channel ~source ~deadline =
  plan_on (Nondet.threshold nondet ~min_prob) ?level ~phy ~channel ~source ~deadline ()
