(** RAND baseline (paper Section VII): at each step pick a uniformly
    random informed node among those with at least one productive
    transmission opportunity, then a random opportunity of that node,
    paying the cheapest DCS cost that still informs somebody new.
    Under a fading design channel this is the FR-RAND backbone. *)

open Tmedb_prelude

type result = {
  schedule : Schedule.t;
  report : Feasibility.report;
  unreached : int list;
  steps : int;
}

val run : ?cap_per_node:int -> rng:Rng.t -> Problem.t -> result
(** Run the randomized baseline to completion (all nodes informed or no
    productive opportunity left).  [cap_per_node] bounds the DTS as in
    {!Problem.dts}; the result is a deterministic function of [rng]'s
    state. *)
