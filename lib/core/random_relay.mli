(** RAND baseline (paper Section VII): at each step pick a uniformly
    random informed node among those with at least one productive
    transmission opportunity, then a random opportunity of that node,
    paying the cheapest DCS cost that still informs somebody new.
    Under a fading design channel this is the FR-RAND backbone.

    The outcome carries a {!Planner.Outcome.Greedy_steps} artifact
    counting the step-loop iterations. *)

val info : Planner.info
(** Registry metadata: ["RAND"], static channel, Section VII. *)

val plan : Planner.Ctx.t -> Problem.t -> Planner.Outcome.t
(** Run the randomized baseline to completion (all nodes informed or no
    productive opportunity left).  The context's [cap_per_node] bounds
    the DTS as in {!Problem.dts}; the result is a deterministic
    function of the context's [rng] state (default stream: seed 17,
    matching the historical FR-RAND default). *)

val planner : Planner.t
(** {!info} and {!plan}, packaged for {!Registry}. *)
