(** Shared, deadline-independent solve state.

    The one-shot pipeline ({!Eedcb}, {!Spt}) restricts the graph to
    [\[span.lo, T\]] and rebuilds the DTS closure, the DCS marginals
    and the auxiliary-graph id layout from scratch for every deadline
    T.  A solve state does that work once, up to a fixed horizon (the
    largest deadline of a sweep), and serves any deadline [T <=
    horizon] out of the shared structures:

    - the streaming τ-closure ({!Tmedb_tveg.Dts.Stream}) generates
      closure points in ascending time order over the unrestricted
      graph; per deadline, the strict prefix below T plus the clipped
      endpoint is exactly the eager restricted-graph DTS;
    - DCS marginals are memoised per (node, point) on the full graph —
      valid for every deadline because a transmission finishing
      strictly before T sees the same neighbourhood in the restricted
      graph (ρ_τ is strict at interval ends), and one finishing at or
      past T has no levels;
    - per-deadline auxiliary-graph layouts ({!layout}) are assembled by
      offset arithmetic over cached per-block level counts, without
      re-enumerating any DCS block.

    A state is immutable once created, so concurrent per-deadline
    solves may share it freely (the Pareto sweep fans points out over
    the pool).

    Caveat (measure-zero): a node whose earliest source arrival is
    {e exactly} T differs from the one-shot build at that single
    deadline — see {!Tmedb_tveg.Dts.Stream}.  Sweep deadlines are
    user-chosen grid values, not arrival times, so in practice the
    shared and one-shot pipelines agree bit for bit; the equality is
    asserted over whole outcomes in the test suite and `bench
    pareto`. *)

type t
(** Immutable shared state for one (graph, phy, channel, source,
    horizon, cap) configuration. *)

type layout = {
  base : int array;  (** Wait-vertex base id per node. *)
  level_off : int array;
      (** Per-block level-id prefix, length total_wait + 1. *)
  edge_bound : int;  (** Eager build's edge-count upper bound. *)
}
(** Auxiliary-graph id layout of one deadline, as consumed by
    {!Aux_graph.Lazy.create_with} — identical to the counting pass of
    {!Aux_graph.Lazy.create} on the restricted instance. *)

val create : ?cap_per_node:int -> Problem.t -> t
(** Build the shared state with horizon [problem.deadline]: advance
    the closure stream to the horizon and memoise the DCS marginals of
    every generated point (one [dcs.queries] bump per point — the same
    work a single one-shot solve at the horizon performs).
    [cap_per_node] is the streaming closure's per-node point cap and
    must match the per-solve cap of the contexts that reuse the state
    (see {!check_compatible}). *)

val problem : t -> Problem.t
(** The instance the state was created from (deadline = horizon). *)

val horizon : t -> float
(** Largest deadline the state can serve. *)

val cap_per_node : t -> int option
(** The cap the state was created with ([None]: the DTS default). *)

val stream_truncated : t -> bool
(** Whether the streaming closure hit [cap_per_node] (capped point
    sets may differ from the one-shot build's; both stay valid). *)

val check_compatible : t -> Problem.t -> cap_per_node:int option -> unit
(** Validate that a per-deadline problem can be served: it must share
    the state's graph {e value} (physical equality — the state's
    caches are keyed by its contact tables), physical layer, channel,
    source and cap, with a deadline at or before the horizon.
    @raise Invalid_argument otherwise, naming the mismatch. *)

val dts_at : t -> deadline:float -> Tmedb_tveg.Dts.t
(** The deadline's DTS view out of the shared stream (equal to the
    one-shot [Problem.dts] of the restricted instance).
    @raise Invalid_argument past the horizon. *)

val marginals :
  t -> deadline:float -> node:int -> time:float -> Tmedb_tveg.Dcs.marginal list
(** Memoised DCS marginals provider for one deadline: blocks whose
    transmission finishes at or past the deadline answer [] (they have
    no levels in the restricted instance); all others are served from
    the shared memo without touching [dcs.queries].  Partial
    application at [~deadline] yields the provider
    {!Aux_graph.Lazy.create_with} consumes. *)

val layout : t -> Tmedb_tveg.Dts.t -> layout
(** The deadline's auxiliary-graph layout, from the DTS view returned
    by {!dts_at} — pure offset arithmetic over the cached per-block
    level counts. *)
