open Tmedb_steiner

(* Shortest-path-tree planner: one forward targeted Dijkstra over the
   auxiliary graph, union of the predecessor paths to every terminal.
   Energy-wise this is EEDCB at recursion level 0 — each node is
   reached by its individually cheapest chain, with no Steiner sharing
   beyond what the paths overlap on — but the whole plan costs a
   single scan.  On the lazy auxiliary graph that scan only expands
   the frontier below the last terminal's settling distance, which is
   what makes N in the thousands tractable (`bench nscale`). *)

let c_runs = Tmedb_obs.Counter.make "spt.runs"
let t_run = Tmedb_obs.Timer.make "spt.run"

let plan (ctx : Planner.Ctx.t) problem =
  Tmedb_obs.Counter.incr c_runs;
  let t0 = Tmedb_obs.Timer.start t_run in
  Fun.protect ~finally:(fun () -> Tmedb_obs.Timer.stop t_run t0) @@ fun () ->
  Tmedb_obs.Span.with_ "spt.run" @@ fun () ->
  let deadline = problem.Problem.deadline in
  (* The shared state is keyed by the unrestricted graph value:
     validate against the problem as handed to us, before clipping. *)
  (match ctx.Planner.Ctx.solve_state with
  | Some st ->
      Solve_state.check_compatible st problem ~cap_per_node:ctx.Planner.Ctx.cap_per_node
  | None -> ());
  let problem =
    let open Tmedb_tveg in
    let span = Tveg.span problem.Problem.graph in
    let sub =
      Tmedb_prelude.Interval.make ~lo:span.Tmedb_prelude.Interval.lo
        ~hi:problem.Problem.deadline
    in
    { problem with Problem.graph = Tveg.restrict problem.Problem.graph ~span:sub }
  in
  let dts =
    Tmedb_obs.Span.with_ "spt.dts" (fun () ->
        match ctx.Planner.Ctx.solve_state with
        | Some st -> Solve_state.dts_at st ~deadline
        | None -> Problem.dts ?cap_per_node:ctx.Planner.Ctx.cap_per_node problem)
  in
  let lazy_views aux =
    ( Aux_graph.Lazy.view aux,
      Aux_graph.Lazy.source_vertex aux,
      Aux_graph.Lazy.terminals aux,
      Aux_graph.Lazy.num_vertices aux,
      Aux_graph.Lazy.edge_bound aux,
      Aux_graph.Lazy.extract_schedule aux,
      Aux_graph.Lazy.describe aux )
  in
  (* Both representations expose the same view interface; everything
     below this point is representation-blind. *)
  let fwd, root, terminals, aux_vertices, aux_edges, extract, describe =
    match ctx.Planner.Ctx.solve_state with
    | Some st ->
        lazy_views
          (Tmedb_obs.Span.with_ "spt.aux_lazy" (fun () ->
               let layout = Solve_state.layout st dts in
               Aux_graph.Lazy.create_with
                 ~marginals:(Solve_state.marginals st ~deadline)
                 ~base:layout.Solve_state.base
                 ~level_off:layout.Solve_state.level_off
                 ~edge_bound:layout.Solve_state.edge_bound problem dts))
    | None when ctx.Planner.Ctx.lazy_aux ->
        lazy_views
          (Tmedb_obs.Span.with_ "spt.aux_lazy" (fun () -> Aux_graph.Lazy.create problem dts))
    | None -> begin
      let aux = Tmedb_obs.Span.with_ "spt.aux" (fun () -> Aux_graph.build problem dts) in
      ( Digraph.view aux.Aux_graph.graph,
        aux.Aux_graph.source_vertex,
        aux.Aux_graph.terminals,
        Digraph.n aux.Aux_graph.graph,
        Digraph.m aux.Aux_graph.graph,
        Aux_graph.extract_schedule aux,
        fun id -> aux.Aux_graph.vertex.(id) )
    end
  in
  let res =
    Tmedb_obs.Span.with_ "spt.dijkstra" (fun () ->
        Dijkstra.run_view ~targets:terminals fwd ~src:root)
  in
  let reached, unreached_terms =
    List.partition (fun t -> res.Dijkstra.dist.(t) < Float.infinity) terminals
  in
  (* Union of predecessor paths, walking each chain only down to the
     first vertex already in the tree.  Edges are keyed (u, v) and
     listed in key order, so the tree is independent of walk order. *)
  let in_tree = Tmedb_prelude.Bitset.create aux_vertices in
  Tmedb_prelude.Bitset.set in_tree root;
  let edge_tbl = Hashtbl.create 64 in
  List.iter
    (fun term ->
      let v = ref term in
      while not (Tmedb_prelude.Bitset.mem in_tree !v) do
        Tmedb_prelude.Bitset.set in_tree !v;
        let u = res.Dijkstra.pred.(!v) in
        let w =
          match Digraph.view_edge_weight fwd u !v with
          | Some w -> w
          | None -> invalid_arg "Spt.plan: predecessor edge missing from view"
        in
        Hashtbl.replace edge_tbl (u, !v) w;
        v := u
      done)
    reached;
  let edges =
    Hashtbl.fold (fun (u, v) w acc -> (u, v, w) :: acc) edge_tbl []
    |> List.sort (fun (u1, v1, _) (u2, v2, _) ->
           let c = Int.compare u1 u2 in
           if c <> 0 then c else Int.compare v1 v2)
  in
  let tree = { Dst.edges; cost = Dst.tree_cost edges; covered = List.sort Int.compare reached } in
  let schedule = extract tree in
  let report =
    Tmedb_obs.Span.with_ "spt.feasibility" (fun () -> Feasibility.check problem schedule)
  in
  let node_of term =
    match describe term with
    | Aux_graph.Wait { node; _ } | Aux_graph.Level { node; _ } -> node
  in
  Planner.Outcome.make ~schedule ~report
    ~unreached:(List.map node_of unreached_terms)
    ~artifacts:
      [
        Planner.Outcome.Steiner_tree
          { tree; aux_vertices; aux_edges; dts_points = Tmedb_tveg.Dts.total_points dts };
      ]
    ()

let info =
  {
    Planner.name = "SPT";
    channel = `Static;
    section = "VI-A";
    summary = "single-scan shortest-path tree over the auxiliary graph";
  }

let planner = { Planner.info; plan }
