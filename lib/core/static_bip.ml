open Tmedb_prelude
open Tmedb_channel
open Tmedb_tveg

(* Union snapshot: best-ever distance per pair, None if never in
   contact. *)
let snapshot g =
  let n = Tveg.n g in
  let d = Array.make_matrix n n None in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      List.iter
        (fun l ->
          let best =
            match d.(i).(j) with
            | None -> l.Tveg.dist
            | Some cur -> Float.min cur l.Tveg.dist
          in
          d.(i).(j) <- Some best;
          d.(j).(i) <- Some best)
        (Tveg.links g i j)
    done
  done;
  d

(* Classic BIP: repeatedly add the cheapest incremental reach. *)
let plan_tree problem dists =
  let phy = problem.Problem.phy in
  let n = Problem.n problem in
  let power = Array.make n 0. in
  let parent = Array.make n None in
  let informed = Array.make n false in
  informed.(problem.Problem.source) <- true;
  let progress = ref true in
  while !progress do
    progress := false;
    let best = ref None in
    for i = 0 to n - 1 do
      if informed.(i) then
        for j = 0 to n - 1 do
          if (not informed.(j)) && i <> j then begin
            match dists.(i).(j) with
            | None -> ()
            | Some d ->
                let needed = Phy.min_cost phy ~dist:d in
                if needed <= phy.Phy.w_max then begin
                  let incremental = Float.max 0. (needed -. power.(i)) in
                  match !best with
                  | Some (inc, _, _, _) when inc <= incremental -> ()
                  | Some _ | None -> best := Some (incremental, i, j, needed)
                end
          end
        done
    done;
    match !best with
    | None -> ()
    | Some (_, i, j, needed) ->
        power.(i) <- Float.max power.(i) needed;
        parent.(j) <- Some i;
        informed.(j) <- true;
        progress := true
  done;
  (power, parent)

(* Earliest instant >= [after] at which the pair is ρ_τ-adjacent. *)
let earliest_contact g ~after i j =
  let tau = Tveg.tau g in
  List.fold_left
    (fun acc l ->
      let lo = l.Tveg.iv.Interval.lo and hi = l.Tveg.iv.Interval.hi in
      let t = Float.max after lo in
      if t +. tau < hi then Some (match acc with None -> t | Some a -> Float.min a t) else acc)
    None (Tveg.links g i j)

let plan (_ctx : Planner.Ctx.t) (problem : Problem.t) =
  let g = problem.Problem.graph in
  let phy = problem.Problem.phy in
  let n = Problem.n problem in
  let tau = Tveg.tau g in
  let dists = snapshot g in
  let power, parent = plan_tree problem dists in
  let children = Array.make n [] in
  Array.iteri
    (fun j p -> match p with Some i -> children.(i) <- j :: children.(i) | None -> ())
    parent;
  let snapshot_unreachable =
    List.filter
      (fun j -> j <> problem.Problem.source && parent.(j) = None)
      (List.init n (fun j -> j))
  in
  (* Replay chronologically: a node becomes ready once informed; it
     fires once, at the earliest instant one of its still-uninformed
     children is adjacent. *)
  let informed_at = Array.make n Float.infinity in
  informed_at.(problem.Problem.source) <- Problem.span_start problem;
  let fired = Array.make n false in
  let txs = ref [] in
  let queue = Pqueue.create () in
  let schedule_parent i =
    if (not fired.(i)) && children.(i) <> [] then begin
      let pending = List.filter (fun c -> not (Float.is_finite informed_at.(c))) children.(i) in
      let ready =
        List.filter_map (fun c -> earliest_contact g ~after:informed_at.(i) i c) pending
      in
      match ready with
      | [] -> ()
      | times ->
          let t = List.fold_left Float.min (List.hd times) times in
          if t +. tau <= problem.Problem.deadline then Pqueue.push queue t i
    end
  in
  schedule_parent problem.Problem.source;
  let rec drain () =
    match Pqueue.pop queue with
    | None -> ()
    | Some (t, i) ->
        if not fired.(i) then begin
          fired.(i) <- true;
          txs := { Schedule.relay = i; time = t; cost = power.(i) } :: !txs;
          (* Children adjacent now and within static range receive. *)
          List.iter
            (fun c ->
              if not (Float.is_finite informed_at.(c)) then begin
                match Tveg.dist_at g i c t with
                | Some d when Phy.min_cost phy ~dist:d <= power.(i) ->
                    informed_at.(c) <- t +. tau;
                    schedule_parent c
                | Some _ | None -> ()
              end)
            children.(i)
        end;
        drain ()
  in
  drain ();
  let schedule = Schedule.of_transmissions !txs in
  let report = Feasibility.check problem schedule in
  let unreached =
    List.filter (fun j -> not (Float.is_finite informed_at.(j))) (List.init n (fun j -> j))
  in
  Planner.Outcome.make ~schedule ~report ~unreached
    ~artifacts:
      [
        Planner.Outcome.Bip_plan
          { planned_energy = Futil.kahan_sum power; snapshot_unreachable };
      ]
    ()

let info =
  {
    Planner.name = "BIP";
    channel = `Static;
    section = "Wieselthier et al. 2000";
    summary = "static-snapshot broadcast incremental power tree, replayed on the TVEG";
  }

let planner = { Planner.info; plan }
