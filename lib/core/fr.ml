open Tmedb_prelude
open Tmedb_channel
open Tmedb_tveg
open Tmedb_nlp

type backbone = [ `Eedcb | `Greedy | `Random ]

(* Telemetry: stage-2 allocations (the NLP plus repair/polish) are the
   FR pipeline's dominant cost besides the backbone itself. *)
let c_allocations = Tmedb_obs.Counter.make "fr.allocations"
let t_allocate = Tmedb_obs.Timer.make "fr.allocate"
let t_fr_run = Tmedb_obs.Timer.make "fr.run"

type allocation = Planner.Outcome.allocation = {
  costs : float array;
  nlp_feasible : bool;
  repaired : bool;
  unsatisfiable : int list;
  outer_iterations : int;
}

(* log φ(w) and its derivative for the fading ED-functions.  The
   Rayleigh case is analytic; Nakagami falls back to differences. *)
let log_failure ~channel ~beta w =
  if w <= 0. then 0.
  else begin
    match channel with
    | `Rayleigh -> Futil.log1p_safe (-.exp (-.beta /. w))
    | `Nakagami m -> Float.log (Float.max 1e-300 (Specfun.gammp ~a:m ~x:(m *. beta /. w)))
    | `Lognormal sigma ->
        Float.log (Float.max 1e-300 (Specfun.normal_cdf (log (beta /. w) /. sigma)))
    | `Static -> assert false
  end

let dlog_failure ~channel ~beta w =
  if w <= 0. then 0.
  else begin
    match channel with
    | `Rayleigh ->
        let e = exp (-.beta /. w) in
        let phi = 1. -. e in
        if phi <= 0. then 0. else -.(e *. beta /. (w *. w)) /. phi
    | `Nakagami _ | `Lognormal _ ->
        let h = 1e-6 *. Float.max w 1e-15 in
        (log_failure ~channel ~beta (w +. h) -. log_failure ~channel ~beta (w -. h)) /. (2. *. h)
    | `Static -> assert false
  end

(* One allocation constraint: Σ_k log φ_{k}(w_k) ≤ log ε over the
   member transmissions (paper Eq. 15 for plain nodes, Eq. 16 for
   relays). *)
type coverage_constraint = {
  about : int;  (** Node the constraint protects. *)
  members : (int * float) list;  (** (transmission index, β). *)
}

let constraint_value ~channel ~log_eps c w =
  List.fold_left (fun acc (k, beta) -> acc +. log_failure ~channel ~beta w.(k)) 0. c.members
  -. log_eps

(* Firing order of backbone transmissions under Eq. 6 with the
   backbone's own costs: the global sequence in which relays actually
   become able to transmit.  Same-instant groups release in fixpoint
   rounds (τ = 0 chains), so the order is acyclic by construction;
   [None] marks transmissions whose relay can never fire.  Constraint
   (16) below is restricted to earlier-firing transmissions — the
   paper's "t_k ≤ t_j" read as a causal order, which is what keeps the
   NLP from relying on same-instant mutual coverage cycles. *)
let firing_ranks (problem : Problem.t) arr =
  let g = problem.Problem.graph in
  let phy = problem.Problem.phy in
  let n = Tveg.n g in
  let tau = Tveg.tau g in
  (* Backbone costs sit exactly on φ = ε; a hair of slack keeps float
     round-off from blocking a release (this only orders transmissions,
     the allocation itself carries its own safety margin). *)
  let eps = phy.Phy.eps *. (1. +. 1e-6) in
  let ntx = Array.length arr in
  let p = Array.make n 1. in
  p.(problem.Problem.source) <- 0.;
  let rank = Array.make ntx None in
  let next_rank = ref 0 in
  let pending = Queue.create () in
  let apply_until t =
    let rec drain () =
      match Queue.peek_opt pending with
      | Some (effective, node, factor) when effective <= t ->
          ignore (Queue.pop pending);
          p.(node) <- p.(node) *. factor;
          drain ()
      | Some _ | None -> ()
    in
    drain ()
  in
  let fire k =
    let tx = arr.(k) in
    rank.(k) <- Some !next_rank;
    incr next_rank;
    for j = 0 to n - 1 do
      if j <> tx.Schedule.relay then begin
        match Tveg.ed_at g ~phy ~channel:problem.Problem.channel tx.Schedule.relay j tx.Schedule.time with
        | Ed_function.Absent -> ()
        | ed ->
            Queue.add
              (tx.Schedule.time +. tau, j, Ed_function.failure_prob ed ~w:tx.Schedule.cost)
              pending
      end
    done
  in
  let rec groups = function
    | [] -> []
    | k :: _ as ks ->
        let t = arr.(k).Schedule.time in
        let same, rest = List.partition (fun k' -> Float.equal arr.(k').Schedule.time t) ks in
        same :: groups rest
  in
  List.iter
    (fun group ->
      match group with
      | [] -> ()
      | first :: _ ->
          let t = arr.(first).Schedule.time in
          apply_until t;
          let waiting = ref group in
          let progress = ref true in
          while !waiting <> [] && !progress do
            let ready, blocked =
              List.partition (fun k -> p.(arr.(k).Schedule.relay) <= eps) !waiting
            in
            progress := ready <> [];
            List.iter fire ready;
            if ready <> [] && Float.equal tau 0. then apply_until t;
            waiting := blocked
          done)
    (groups (List.init ntx (fun k -> k)));
  rank

let build_constraints problem txs =
  let g = problem.Problem.graph in
  let phy = problem.Problem.phy in
  let tau = Tveg.tau g in
  let arr = Array.of_list txs in
  let ranks = firing_ranks problem arr in
  let coverage k =
    let tx = arr.(k) in
    List.map
      (fun (j, dist) -> (j, Phy.beta phy ~dist))
      (Tveg.neighbors_at g tx.Schedule.relay tx.Schedule.time)
  in
  let coverages = Array.init (Array.length arr) coverage in
  let node_members = Array.make (Tveg.n g) [] in
  Array.iteri
    (fun k cov ->
      (* Unranked transmissions never fire: they inform nobody. *)
      if ranks.(k) <> None then
        List.iter (fun (j, beta) -> node_members.(j) <- (k, beta) :: node_members.(j)) cov)
    coverages;
  (* Eq. 15: every non-source node must end up informed. *)
  let node_constraints =
    List.filter_map
      (fun j ->
        if j = problem.Problem.source then None
        else Some { about = j; members = node_members.(j) })
      (List.init (Tveg.n g) (fun j -> j))
  in
  (* Eq. 16: each relay informed before it transmits — members are the
     τ-respecting, strictly earlier-firing transmissions covering it. *)
  let relay_constraints =
    Array.to_list arr
    |> List.mapi (fun k' tx ->
           let r = tx.Schedule.relay in
           if r = problem.Problem.source then None
           else begin
             let members =
               List.filter
                 (fun (k, _) ->
                   k <> k'
                   && arr.(k).Schedule.time +. tau <= tx.Schedule.time
                   &&
                   match (ranks.(k), ranks.(k')) with
                   | Some rk, Some rk' -> rk < rk'
                   | Some _, None -> true
                   | None, (Some _ | None) -> false)
                 node_members.(r)
             in
             Some { about = r; members }
           end)
    |> List.filter_map Fun.id
  in
  (node_constraints, relay_constraints, coverages)

let allocate ?warm problem backbone_schedule =
  (match problem.Problem.channel with
  | `Static -> invalid_arg "Fr.allocate: design channel must be a fading model"
  | `Rayleigh | `Nakagami _ | `Lognormal _ -> ());
  Tmedb_obs.Counter.incr c_allocations;
  let t0 = Tmedb_obs.Timer.start t_allocate in
  Fun.protect ~finally:(fun () -> Tmedb_obs.Timer.stop t_allocate t0) @@ fun () ->
  Tmedb_obs.Span.with_ "fr.allocate"
    ~args:
      [ ("transmissions", string_of_int (List.length (Schedule.transmissions backbone_schedule))) ]
  @@ fun () ->
  let channel = problem.Problem.channel in
  let phy = problem.Problem.phy in
  (* Slightly tighter than ε so that float round-off in the feasibility
     checker's running product can never flip a boundary solution. *)
  let log_eps = log phy.Phy.eps -. 1e-6 in
  let txs = Schedule.transmissions backbone_schedule in
  let nvars = List.length txs in
  if nvars = 0 then
    ( backbone_schedule,
      {
        costs = [||];
        nlp_feasible = true;
        repaired = false;
        unsatisfiable = [];
        outer_iterations = 0;
      } )
  else begin
    let node_constraints, relay_constraints, coverages = build_constraints problem txs in
    let unsatisfiable_empty =
      List.filter_map
        (fun c -> if c.members = [] then Some c.about else None)
        (node_constraints @ relay_constraints)
      |> List.sort_uniq Int.compare
    in
    let live_constraints =
      List.filter (fun c -> c.members <> []) (node_constraints @ relay_constraints)
    in
    (* Variable scaling: x_k = w_k / scale_k with scale the single-hop
       ε-cost of the transmission's farthest neighbour. *)
    let scale =
      Array.map
        (fun cov ->
          let beta_max = List.fold_left (fun acc (_, b) -> Float.max acc b) 0. cov in
          if beta_max > 0. then beta_max /. log (1. /. (1. -. phy.Phy.eps))
          else Float.max phy.Phy.w_min (1e-6 *. phy.Phy.w_max))
        coverages
    in
    let to_w x = Array.mapi (fun k xk -> scale.(k) *. xk) x in
    let scale_sum = Array.fold_left ( +. ) 0. scale in
    let objective x =
      Futil.kahan_sum (Array.mapi (fun k xk -> scale.(k) *. xk) x) /. scale_sum
    in
    let objective_grad _ = Array.map (fun s -> s /. scale_sum) scale in
    let mk_constraint c =
      {
        Nlp.label = Printf.sprintf "inform-%d" c.about;
        g = (fun x -> constraint_value ~channel ~log_eps c (to_w x));
        g_grad =
          Some
            (fun x ->
              let w = to_w x in
              let grad = Array.make nvars 0. in
              List.iter
                (fun (k, beta) ->
                  grad.(k) <- grad.(k) +. (dlog_failure ~channel ~beta w.(k) *. scale.(k)))
                c.members;
              grad);
      }
    in
    let lower = Array.map (fun s -> phy.Phy.w_min /. s) scale in
    let upper = Array.map (fun s -> phy.Phy.w_max /. s) scale in
    let x0 = Array.map (fun s -> Futil.clamp ~lo:(phy.Phy.w_min /. s) ~hi:(phy.Phy.w_max /. s) 1.) scale in
    let nlp_problem =
      {
        Nlp.objective;
        objective_grad = Some objective_grad;
        constraints = List.map mk_constraint live_constraints;
        lower;
        upper;
      }
    in
    (* Multi-start: the penalty landscape is non-convex; seed once at
       the backbone point and once below it (where the solver must
       climb back to feasibility, often onto a cheaper face). *)
    let solve_from factor =
      let x0 = Array.map (fun x -> Futil.clamp ~lo:0. ~hi:Float.infinity (factor *. x)) x0 in
      let x0 = Array.mapi (fun k x -> Futil.clamp ~lo:lower.(k) ~hi:upper.(k) x) x0 in
      Nlp.solve nlp_problem ~x0
    in
    (* Warm keys: (relay, occurrence among that relay's transmissions
       in schedule order) for each variable — stable across adjacent
       sweep points whose backbones mostly agree. *)
    let warm_keys =
      lazy
        (let seen = Hashtbl.create 16 in
         List.map
           (fun (tx : Schedule.transmission) ->
             let r = tx.Schedule.relay in
             let occ = match Hashtbl.find_opt seen r with Some c -> c | None -> 0 in
             Hashtbl.replace seen r (occ + 1);
             (r, occ))
           txs)
    in
    let candidates_solved =
      match warm with
      | None -> List.map solve_from [ 1.; 0.5 ]
      | Some store ->
          (* Single start from the previous point's allocation (missing
             keys fall back to the cold default), with BB-accelerated
             inner solves: near a good starting iterate the spectral
             step needs a fraction of the monotone search's
             iterations, and the second multi-start seed buys nothing
             the repair/polish stages do not already guarantee. *)
          let x0 =
            Array.of_list (Lazy.force warm_keys)
            |> Array.mapi (fun k (relay, occurrence) ->
                   match Planner.Warm.find store ~relay ~occurrence with
                   | Some w0 -> Futil.clamp ~lo:lower.(k) ~hi:upper.(k) (w0 /. scale.(k))
                   | None -> x0.(k))
          in
          let options =
            {
              Nlp.default_options with
              Nlp.inner =
                { Projgrad.default_options with Projgrad.max_iter = 300; bb = true };
            }
          in
          [ Nlp.solve ~options nlp_problem ~x0 ]
    in
    (* Monotone repair: grow the members of any violated constraint by
       a common factor found by bisection; costs only increase, so
       every already-satisfied constraint stays satisfied.  Two
       sweeps: relay constraints can tighten node constraints'
       members and vice versa, but growth is monotone, so a fixed
       small number of passes settles. *)
    let tol = 1e-9 in
    let repair_all w =
      let unsatisfiable = ref unsatisfiable_empty in
      let repaired = ref false in
      let repair c =
        if constraint_value ~channel ~log_eps c w > tol then begin
          repaired := true;
          let apply lambda =
            List.iter
              (fun (k, _) -> w.(k) <- Float.min phy.Phy.w_max (lambda *. w.(k)))
              c.members
          in
          let value_at lambda =
            List.fold_left
              (fun acc (k, beta) ->
                acc +. log_failure ~channel ~beta (Float.min phy.Phy.w_max (lambda *. w.(k))))
              0. c.members
            -. log_eps
          in
          let lambda_max =
            List.fold_left
              (fun acc (k, _) -> Float.max acc (phy.Phy.w_max /. Float.max w.(k) 1e-300))
              1. c.members
          in
          match
            Bisect.least_satisfying (fun lambda -> value_at lambda <= 0.) ~lo:1. ~hi:lambda_max
          with
          | Some lambda -> apply lambda
          | None ->
              apply lambda_max;
              unsatisfiable := List.sort_uniq Int.compare (c.about :: !unsatisfiable)
        end
      in
      List.iter repair live_constraints;
      List.iter repair live_constraints;
      (!unsatisfiable, !repaired)
    in
    (* Repair every multi-start solution plus the uniform-w0 backbone
       (the penalty method is not guaranteed to land below its
       starting point) and keep the cheapest. *)
    let repaired_candidates =
      List.map
        (fun (r : Nlp.result) ->
          let w = to_w r.Nlp.x in
          let unsat, rep = repair_all w in
          (w, unsat, rep, r))
        candidates_solved
    in
    let w_backbone = Array.of_list (Schedule.costs backbone_schedule) in
    let backbone_unsat, _ = repair_all w_backbone in
    let w, unsatisfiable, repaired, solved =
      List.fold_left
        (fun ((bw, _, _, _) as best) ((cw, _, _, _) as cand) ->
          if Futil.kahan_sum cw < Futil.kahan_sum bw then cand else best)
        (w_backbone, backbone_unsat, true, List.hd candidates_solved)
        repaired_candidates
    in
    (* Coordinate-descent polish: lower each cost to the minimum that
       still satisfies every constraint it appears in, given the
       others.  Each step preserves feasibility and strictly decreases
       Σw, so this deterministically reclaims coverage redundancy the
       penalty solver missed. *)
    let ed_of beta =
      match channel with
      | `Rayleigh -> Ed_function.rayleigh ~beta
      | `Nakagami m -> Ed_function.nakagami ~beta ~m
      | `Lognormal sigma -> Ed_function.lognormal ~beta ~sigma
      | `Static -> assert false
    in
    let constraints_of = Array.make nvars [] in
    List.iter
      (fun c ->
        List.iter (fun (k, _) -> constraints_of.(k) <- c :: constraints_of.(k)) c.members)
      live_constraints;
    let polish_tol = 1e-4 in
    let sweep () =
      let changed = ref false in
      for k = 0 to nvars - 1 do
        let required =
          List.fold_left
            (fun acc c ->
              if constraint_value ~channel ~log_eps c w > tol then
                (* Already violated (w_max saturation): do not move. *)
                Float.max acc w.(k)
              else begin
                let beta_k = List.assoc k c.members in
                let others =
                  List.fold_left
                    (fun s (k', beta') ->
                      if k' = k then s else s +. log_failure ~channel ~beta:beta' w.(k'))
                    0. c.members
                in
                let rhs = log_eps -. others in
                if rhs >= 0. then acc
                else begin
                  match Ed_function.cost_for_failure (ed_of beta_k) ~target:(exp rhs) with
                  | Some need -> Float.max acc need
                  | None -> Float.max acc w.(k)
                end
              end)
            phy.Phy.w_min constraints_of.(k)
        in
        if required < w.(k) *. (1. -. polish_tol) then begin
          w.(k) <- required;
          changed := true
        end
      done;
      !changed
    in
    let sweeps = ref 0 in
    while sweep () && !sweeps < 25 do
      incr sweeps
    done;
    (* Remember the final (repaired and polished) costs for the next
       point of the chain; stale keys from a differently-shaped
       backbone are dropped wholesale. *)
    (match warm with
    | None -> ()
    | Some store ->
        Planner.Warm.reset store;
        List.iteri
          (fun k (relay, occurrence) -> Planner.Warm.set store ~relay ~occurrence w.(k))
          (Lazy.force warm_keys));
    (* Transmissions allocated zero cost are no-ops (φ(0) = 1): drop
       them rather than scheduling silent sends. *)
    if Tmedb_report.Provenance.enabled () then
      List.iteri
        (fun k (tx : Schedule.transmission) ->
          Tmedb_report.Provenance.emit
            (Tmedb_report.Provenance.Allocation
               {
                 relay = tx.Schedule.relay;
                 time = tx.Schedule.time;
                 backbone_cost = tx.Schedule.cost;
                 allocated_cost = w.(k);
               }))
        txs;
    let schedule =
      Schedule.of_transmissions
        (List.filteri
           (fun k _ -> w.(k) > 0.)
           (Schedule.transmissions (Schedule.map_costs backbone_schedule (fun k _ -> w.(k)))))
    in
    ( schedule,
      {
        costs = w;
        nlp_feasible = solved.Nlp.feasible;
        repaired;
        unsatisfiable;
        outer_iterations = solved.Nlp.outer_iterations;
      } )
  end

let plan_with backbone (ctx : Planner.Ctx.t) problem =
  (match problem.Problem.channel with
  | `Static -> invalid_arg "Fr.plan: design channel must be a fading model"
  | `Rayleigh | `Nakagami _ | `Lognormal _ -> ());
  let tr = Tmedb_obs.Timer.start t_fr_run in
  Fun.protect ~finally:(fun () -> Tmedb_obs.Timer.stop t_fr_run tr) @@ fun () ->
  Tmedb_obs.Span.with_ "fr.run" @@ fun () ->
  let stage1 =
    match backbone with
    | `Eedcb -> Eedcb.plan ctx problem
    | `Greedy -> Greedy.plan ctx problem
    | `Random -> Random_relay.plan ctx problem
  in
  let backbone_schedule = stage1.Planner.Outcome.schedule in
  let schedule, allocation = allocate ?warm:ctx.Planner.Ctx.warm problem backbone_schedule in
  let report = Feasibility.check problem schedule in
  Planner.Outcome.make ~schedule ~report ~unreached:stage1.Planner.Outcome.unreached
    ~artifacts:
      [ Planner.Outcome.Fr_allocation { backbone = backbone_schedule; allocation } ]
    ()

let fr_eedcb =
  {
    Planner.info =
      {
        Planner.name = "FR-EEDCB";
        channel = `Fading;
        section = "VI-B";
        summary = "EEDCB backbone re-costed by the NLP energy allocation";
      };
    plan = plan_with `Eedcb;
  }

let fr_greed =
  {
    Planner.info =
      {
        Planner.name = "FR-GREED";
        channel = `Fading;
        section = "VI-B";
        summary = "GREED backbone re-costed by the NLP energy allocation";
      };
    plan = plan_with `Greedy;
  }

let fr_rand =
  {
    Planner.info =
      {
        Planner.name = "FR-RAND";
        channel = `Fading;
        section = "VI-B";
        summary = "RAND backbone re-costed by the NLP energy allocation";
      };
    plan = plan_with `Random;
  }
