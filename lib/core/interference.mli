(** Transmission-interference analysis — the paper's second future-work
    item (Section VIII: "the interference among transmissions").

    TMEDB's channel model treats links independently; this module
    audits a schedule under the protocol interference model, reporting
    where that assumption breaks.  A transmission by relay r at time t
    is *active* during [t, t+τ] (a single instant when τ = 0); a node
    is *exposed* to it when ρ_τ-adjacent to r at t.

    Two conflict classes:
    - {e half-duplex}: a relay is exposed to another active
      transmission while transmitting — it cannot decode that packet;
    - {e collision}: a non-transmitting node is exposed to two or more
      simultaneously active transmissions — under protocol
      interference it decodes none of them.

    The checker is conservative: it flags every such overlap, whether
    or not the schedule actually relied on the collided reception. *)

type conflict =
  | Half_duplex of { node : int; time : float; other_relay : int }
      (** [node] transmits while exposed to [other_relay]'s packet. *)
  | Collision of { node : int; time : float; relays : int * int }
      (** [node] hears both [relays] at once. *)

val check : Problem.t -> Schedule.t -> conflict list
(** All conflicts, ordered by time. *)

val is_interference_free : Problem.t -> Schedule.t -> bool
(** [check] returns no conflict. *)

val conflict_time : conflict -> float
(** Instant the conflict occurs at (the transmission time). *)

val pp_conflict : Format.formatter -> conflict -> unit
(** Human-readable one-line rendering of a conflict. *)
