open Tmedb_steiner

(* Telemetry: the whole pipeline is timed, and each stage gets a trace
   span so a --trace file shows where a run's time goes. *)
let c_runs = Tmedb_obs.Counter.make "eedcb.runs"
let t_run = Tmedb_obs.Timer.make "eedcb.run"

let node_of_terminal aux term =
  match aux.Aux_graph.vertex.(term) with
  | Aux_graph.Wait { node; _ } -> node
  | Aux_graph.Level { node; _ } -> node

(* Solve over a lazily expanded auxiliary graph — identical vertex
   ids, edges and adjacency orders as the eager build (see
   {!Aux_graph.Lazy}), so results are bit-identical; only the explored
   frontier is ever materialised.  Shared between the per-solve lazy
   path and the {!Solve_state} reuse path, which differ only in how
   [aux] was created. *)
let solve_lazy ~stage ~level aux =
  let nv = Aux_graph.Lazy.num_vertices aux in
  let root = Aux_graph.Lazy.source_vertex aux in
  stage "aux_graph"
    (Printf.sprintf "%d vertices, %d edge bound (lazy)" nv (Aux_graph.Lazy.edge_bound aux));
  let outcome =
    Dst.solve_views ~level ~fwd:(Aux_graph.Lazy.view aux)
      ~rev:(Aux_graph.Lazy.rev_view aux) ~root ~terminals:(Aux_graph.Lazy.terminals aux)
      ()
  in
  stage "dst"
    (Printf.sprintf "cost %.17g, %d uncovered" outcome.Dst.tree.Dst.cost
       (List.length outcome.Dst.uncovered));
  let pruned =
    Tmedb_obs.Span.with_ "eedcb.prune" (fun () ->
        Dst.prune_within ~nv ~root outcome.Dst.tree)
  in
  stage "prune" (Printf.sprintf "cost %.17g" pruned.Dst.cost);
  let schedule = Aux_graph.Lazy.extract_schedule aux pruned in
  let node_of term =
    match Aux_graph.Lazy.describe aux term with
    | Aux_graph.Wait { node; _ } | Aux_graph.Level { node; _ } -> node
  in
  (outcome, pruned, schedule, node_of, nv, Aux_graph.Lazy.edge_bound aux)

let plan (ctx : Planner.Ctx.t) problem =
  let level = ctx.Planner.Ctx.steiner_level in
  let cap_per_node = ctx.Planner.Ctx.cap_per_node in
  Tmedb_obs.Counter.incr c_runs;
  let t0 = Tmedb_obs.Timer.start t_run in
  Fun.protect ~finally:(fun () -> Tmedb_obs.Timer.stop t_run t0) @@ fun () ->
  Tmedb_obs.Span.with_ "eedcb.run" @@ fun () ->
  let deadline = problem.Problem.deadline in
  (* The shared state is keyed by the unrestricted graph value:
     validate against the problem as handed to us, before clipping. *)
  (match ctx.Planner.Ctx.solve_state with
  | Some st -> Solve_state.check_compatible st problem ~cap_per_node
  | None -> ());
  (* Contacts after the deadline can never matter: clip them away so
     the DTS closure and the DCS queries walk shorter link lists. *)
  let problem =
    let open Tmedb_tveg in
    let span = Tveg.span problem.Problem.graph in
    let sub = Tmedb_prelude.Interval.make ~lo:span.Tmedb_prelude.Interval.lo
        ~hi:problem.Problem.deadline in
    { problem with Problem.graph = Tveg.restrict problem.Problem.graph ~span:sub }
  in
  let stage name detail =
    if Tmedb_report.Provenance.enabled () then
      Tmedb_report.Provenance.emit (Tmedb_report.Provenance.Stage { stage = name; detail })
  in
  let dts =
    Tmedb_obs.Span.with_ "eedcb.dts" (fun () ->
        match ctx.Planner.Ctx.solve_state with
        | Some st -> Solve_state.dts_at st ~deadline
        | None -> Problem.dts ?cap_per_node problem)
  in
  stage "dts" (Printf.sprintf "%d points" (Tmedb_tveg.Dts.total_points dts));
  let outcome, pruned, schedule, node_of, aux_vertices, aux_edges =
    match ctx.Planner.Ctx.solve_state with
    | Some st ->
        let aux =
          Tmedb_obs.Span.with_ "eedcb.aux_lazy" (fun () ->
              let layout = Solve_state.layout st dts in
              Aux_graph.Lazy.create_with
                ~marginals:(Solve_state.marginals st ~deadline)
                ~base:layout.Solve_state.base
                ~level_off:layout.Solve_state.level_off
                ~edge_bound:layout.Solve_state.edge_bound problem dts)
        in
        solve_lazy ~stage ~level aux
    | None when ctx.Planner.Ctx.lazy_aux ->
        let aux =
          Tmedb_obs.Span.with_ "eedcb.aux_lazy" (fun () -> Aux_graph.Lazy.create problem dts)
        in
        solve_lazy ~stage ~level aux
    | None -> begin
      let aux = Aux_graph.build problem dts in
      stage "aux_graph"
        (Printf.sprintf "%d vertices, %d edges" (Digraph.n aux.Aux_graph.graph)
           (Digraph.m aux.Aux_graph.graph));
      let outcome =
        Dst.solve ~level aux.Aux_graph.graph ~root:aux.Aux_graph.source_vertex
          ~terminals:aux.Aux_graph.terminals
      in
      stage "dst"
        (Printf.sprintf "cost %.17g, %d uncovered" outcome.Dst.tree.Dst.cost
           (List.length outcome.Dst.uncovered));
      let pruned =
        Tmedb_obs.Span.with_ "eedcb.prune" (fun () ->
            Dst.prune aux.Aux_graph.graph ~root:aux.Aux_graph.source_vertex outcome.Dst.tree)
      in
      stage "prune" (Printf.sprintf "cost %.17g" pruned.Dst.cost);
      let schedule = Aux_graph.extract_schedule aux pruned in
      ( outcome,
        pruned,
        schedule,
        node_of_terminal aux,
        Digraph.n aux.Aux_graph.graph,
        Digraph.m aux.Aux_graph.graph )
    end
  in
  let report =
    Tmedb_obs.Span.with_ "eedcb.feasibility" (fun () -> Feasibility.check problem schedule)
  in
  Planner.Outcome.make ~schedule ~report
    ~unreached:(List.map node_of outcome.Dst.uncovered)
    ~artifacts:
      [
        Planner.Outcome.Steiner_tree
          {
            tree = pruned;
            aux_vertices;
            aux_edges;
            dts_points = Tmedb_tveg.Dts.total_points dts;
          };
      ]
    ()

let info =
  {
    Planner.name = "EEDCB";
    channel = `Static;
    section = "VI-A";
    summary = "DTS -> auxiliary graph -> directed Steiner tree -> schedule";
  }

let planner = { Planner.info; plan }
