let paper =
  [
    Eedcb.planner;
    Greedy.planner;
    Random_relay.planner;
    Fr.fr_eedcb;
    Fr.fr_greed;
    Fr.fr_rand;
  ]

let extras = [ Static_bip.planner; Spt.planner ]
let all = paper @ extras
let names = List.map Planner.name all

let canonical s = String.map (function '_' -> '-' | c -> c) (String.uppercase_ascii s)

let find s =
  let key = canonical s in
  match List.find_opt (fun p -> Planner.name p = key) all with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown algorithm %S (known: %s)" key (String.concat ", " names))

let with_channel tag = List.filter (fun p -> p.Planner.info.Planner.channel = tag) paper
