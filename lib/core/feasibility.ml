open Tmedb_channel
open Tmedb_tveg

type report = {
  relays_informed : bool;
  all_informed : bool;
  within_deadline : bool;
  within_budget : bool;
  costs_in_range : bool;
  feasible : bool;
  informed_time : float option array;
  uninformed : int list;
  uninformed_probability : float array;
  total_cost : float;
}

type event = { effective : float; node : int; factor : float }

let check (problem : Problem.t) schedule =
  let g = problem.Problem.graph in
  let phy = problem.Problem.phy in
  let n = Tveg.n g in
  let tau = Tveg.tau g in
  let eps = phy.Phy.eps in
  let p = Array.make n 1. in
  let informed_time = Array.make n None in
  p.(problem.Problem.source) <- 0.;
  informed_time.(problem.Problem.source) <- Some (Problem.span_start problem);
  (* Pending receive events, ordered by effective time (transmissions
     are time-sorted and τ constant, so insertion order is sorted). *)
  let pending = Queue.create () in
  let apply_until t =
    let rec drain () =
      match Queue.peek_opt pending with
      | Some ev when ev.effective <= t ->
          ignore (Queue.pop pending);
          p.(ev.node) <- p.(ev.node) *. ev.factor;
          if p.(ev.node) <= eps && informed_time.(ev.node) = None then
            informed_time.(ev.node) <- Some ev.effective;
          drain ()
      | Some _ | None -> ()
    in
    drain ()
  in
  let relays_informed = ref true in
  let costs_in_range = ref true in
  let process_tx tx =
    let open Schedule in
    if not (Phy.in_cost_set phy tx.cost) then costs_in_range := false;
    for j = 0 to n - 1 do
      if j <> tx.relay then begin
        let ed = Tveg.ed_at g ~phy ~channel:problem.Problem.channel tx.relay j tx.time in
        match ed with
        | Ed_function.Absent -> ()
        | Ed_function.Step _ | Ed_function.Rayleigh _ | Ed_function.Nakagami _
        | Ed_function.Lognormal _ ->
            let factor = Ed_function.failure_prob ed ~w:tx.cost in
            Queue.add { effective = tx.time +. tau; node = j; factor } pending
      end
    done
  in
  (* Transmissions sharing an instant may chain when τ = 0 (journeys
     only require t_{l+1} >= t_l + τ): process each same-time group to
     a fixpoint, releasing a transmission once its relay is informed. *)
  let same_time_groups txs =
    let rec group acc current = function
      | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
      | tx :: rest -> (
          match current with
          | [] -> group acc [ tx ] rest
          | first :: _ ->
              if Float.equal first.Schedule.time tx.Schedule.time then
                group acc (tx :: current) rest
              else group (List.rev current :: acc) [ tx ] rest)
    in
    group [] [] txs
  in
  List.iter
    (fun group ->
      match group with
      | [] -> ()
      | first :: _ ->
          let t = first.Schedule.time in
          apply_until t;
          let waiting = ref group in
          let progress = ref true in
          while !waiting <> [] && !progress do
            let ready, blocked =
              List.partition (fun tx -> p.(tx.Schedule.relay) <= eps) !waiting
            in
            progress := ready <> [];
            if ready <> [] then begin
              List.iter process_tx ready;
              (* τ = 0 receive events land at this same instant. *)
              if Float.equal tau 0. then apply_until t
            end;
            waiting := blocked
          done;
          (* Leftovers transmit uninformed: condition (i) violated; the
             cost is spent but nobody is informed by them. *)
          if !waiting <> [] then begin
            relays_informed := false;
            List.iter
              (fun tx ->
                if not (Phy.in_cost_set phy tx.Schedule.cost) then costs_in_range := false)
              !waiting
          end)
    (same_time_groups (Schedule.transmissions schedule));
  apply_until problem.Problem.deadline;
  let uninformed =
    List.filter (fun i -> p.(i) > eps) (List.init n (fun i -> i))
  in
  let within_deadline =
    match Schedule.latest_time schedule with
    | None -> true
    | Some t -> t +. tau <= problem.Problem.deadline
  in
  let total_cost = Schedule.total_cost schedule in
  let within_budget =
    match problem.Problem.budget with None -> true | Some c -> total_cost <= c
  in
  let all_informed = uninformed = [] in
  {
    relays_informed = !relays_informed;
    all_informed;
    within_deadline;
    within_budget;
    costs_in_range = !costs_in_range;
    feasible = !relays_informed && all_informed && within_deadline && within_budget && !costs_in_range;
    informed_time;
    uninformed;
    uninformed_probability = p;
    total_cost;
  }

let informed_count r =
  Array.fold_left (fun acc t -> match t with Some _ -> acc + 1 | None -> acc) 0 r.informed_time

let delivery_ratio r =
  float_of_int (informed_count r) /. float_of_int (Array.length r.informed_time)

let pp_report ppf r =
  Format.fprintf ppf
    "feasible=%b (relays=%b informed=%b deadline=%b budget=%b costs=%b) cost=%.4e uninformed=[%a]"
    r.feasible r.relays_informed r.all_informed r.within_deadline r.within_budget r.costs_in_range
    r.total_cost
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") Format.pp_print_int)
    r.uninformed
