(** Feasibility checking of schedules against TMEDB instances: the four
    conditions of the decision problem (paper Section IV), with node
    status evolved exactly per Equation (6):

      p_{i,t} = Π over completed transmissions adjacent to i of φ(w).

    A transmission at t_k affects receivers at t_k + τ.  Under the
    static channel φ ∈ {0,1}, so the same code yields deterministic
    informed/uninformed status. *)

type report = {
  relays_informed : bool;  (** (i): every relay has p ≤ ε when it transmits. *)
  all_informed : bool;  (** (ii): every node has p ≤ ε by the deadline. *)
  within_deadline : bool;  (** (iii): max t_k + τ ≤ T. *)
  within_budget : bool;  (** (iv): Σ w ≤ C (vacuously true without a budget). *)
  costs_in_range : bool;  (** Every w ∈ [w_min, w_max]. *)
  feasible : bool;  (** Conjunction of the five above. *)
  informed_time : float option array;
      (** Per node: first instant its uninformed probability reached ε
          (the source is informed at the span start). *)
  uninformed : int list;  (** Nodes never informed by the deadline. *)
  uninformed_probability : float array;  (** Final p_i at the deadline. *)
  total_cost : float;
}

val check : Problem.t -> Schedule.t -> report
(** Evolve node status under the schedule per Equation (6) and test the
    four decision-problem conditions (plus the cost-range sanity
    check). *)

val informed_count : report -> int
(** Nodes informed by the deadline (source included). *)

val delivery_ratio : report -> float
(** Fraction of nodes informed by the deadline (analytic, not
    Monte-Carlo — see [Simulate] for the empirical metric). *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable dump of a feasibility report: verdict, violations
    and the per-node receive times. *)
