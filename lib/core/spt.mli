(** Shortest-path-tree planner over the auxiliary graph: one forward
    targeted Dijkstra from the source vertex, union of the predecessor
    paths to every terminal.

    Energy-wise this is the recursion-level-0 corner of the Steiner
    spectrum — each node reached by its individually cheapest chain,
    sharing only what the paths overlap on — but the whole plan costs
    a single scan.  With {!Planner.Ctx.t}[.lazy_aux] set the scan runs
    on the lazily expanded graph ({!Aux_graph.Lazy}) and only the
    frontier below the last terminal's settling distance is ever
    built, which is what makes N in the thousands tractable (`bench
    nscale`, docs/SCALING.md). *)

val info : Planner.info
(** Registry metadata (name "SPT", static channel). *)

val plan : Planner.Ctx.t -> Problem.t -> Planner.Outcome.t
(** Respects [ctx.lazy_aux], [ctx.cap_per_node] and provenance
    gating; eager and lazy runs return identical outcomes. *)

val planner : Planner.t
(** The planner record, listed in {!Registry.extras}. *)
