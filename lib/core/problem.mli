(** TMEDB problem instances (paper Section IV).

    An instance bundles the TVEG, the physical layer (which fixes the
    cost set W and ε), the design channel model (which ED-function
    class F instantiates ψ), the source, and the deadline T.  The cost
    budget C of the decision version is optional — the optimisation
    algorithms minimise Σw and [Feasibility] checks any budget. *)

open Tmedb_channel
open Tmedb_tveg

type t = {
  graph : Tveg.t;
  phy : Phy.t;
  channel : Tveg.channel;
  source : int;
  deadline : float;
  budget : float option;
}

val make :
  ?budget:float ->
  graph:Tveg.t ->
  phy:Phy.t ->
  channel:Tveg.channel ->
  source:int ->
  deadline:float ->
  unit ->
  t
(** @raise Invalid_argument on an out-of-range source or a deadline
    outside the graph span. *)

val n : t -> int
(** Number of nodes in the underlying TVEG. *)

val tau : t -> float
(** Traversal latency τ of the TVEG (seconds per hop). *)

val span_start : t -> float
(** Start of the graph's observation span — the instant the source is
    informed. *)

val non_source_nodes : t -> int list
(** Every node except the source, ascending: the broadcast's intended
    receivers (the terminal set of the Steiner reduction). *)

val is_reachable : t -> bool
(** Necessary condition for feasibility: every node journey-reachable
    from the source by the deadline (condition (ii) lower bound). *)

val completion_lower_bound : t -> float
(** Earliest instant by which a broadcast can possibly complete
    (foremost-journey bound); [infinity] when unreachable. *)

val dts : ?cap_per_node:int -> t -> Dts.t
(** The instance's discrete time set, clipped to the deadline and
    pruned to each node's earliest reachable instant from the source
    (see {!Tmedb_tveg.Dts.compute}). *)

(** {1 NP-hardness gadget}

    The Set-Cover reduction of Theorem 4.1, used for ground-truth
    optimality tests: the source can inform every "set" node for
    [source_cost] in one transmission at time 0; during [1, 2) each set
    node is adjacent exactly to its elements at equal distance, so
    covering all elements costs [element_cost] per chosen set.  The
    optimal TMEDB cost is [source_cost + k* · element_cost] with k*
    the minimum set cover size. *)

val set_cover_gadget :
  ?phy:Phy.t -> universe:int -> sets:int list list -> unit -> t * float * float
(** Returns [(instance, source_cost, element_cost)].  Node ids: source
    0, set node m ↦ 1+m, element e ↦ 1+|sets|+e.  Static channel,
    τ = 0, deadline 3.
    @raise Invalid_argument when a set mentions an element outside
    [0, universe) or the universe is not covered by the union. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump of an instance: size, source, deadline, span
    and channel model. *)
