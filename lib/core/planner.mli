(** First-class broadcast planners.

    The paper's evaluation (Section VII) compares six planning
    algorithms; this module makes "a planner" a value rather than a
    variant arm: a {!type:t} bundles metadata ({!type:info}) with a
    single entry point [plan : Ctx.t -> Problem.t -> Outcome.t].  Every
    consumer — the figure drivers, the CLI, the bench harness and the
    examples — dispatches through {!Registry} instead of matching on a
    closed algorithm type, so registering a new planner (see
    [Static_bip]) requires no change to any of them.

    {!Ctx} replaces the bespoke optional-argument lists the algorithm
    modules used to grow ([?level], [?cap_per_node], [?rng], [?pool],
    …): one shared record of planning-time knobs, with the paper's
    defaults.  {!Outcome} replaces the per-planner result records —
    every planner produces the same (schedule, feasibility report,
    unreached set) triple plus optional typed {!Outcome.artifact}s
    (the pruned Steiner tree, the FR energy allocation, …) for
    consumers that want algorithm-specific detail. *)

open Tmedb_prelude

(** Cross-point warm-start store for the FR energy allocation: the
    previous sweep point's allocated costs, keyed by (relay,
    occurrence index) so they survive small backbone changes between
    adjacent deadlines/windows.  A store is private to one serial
    chain of planning calls (one pool task) — sharing one across
    concurrent tasks would make results depend on scheduling. *)
module Warm : sig
  type t
  (** Mutable allocation memory; contents only ever steer NLP starting
      iterates, never feasibility or constraint handling, so a warm
      and a cold solve differ at most in which local optimum the
      non-convex allocation lands on. *)

  val create : unit -> t
  (** An empty store (no memory: the first allocation runs cold). *)

  val find : t -> relay:int -> occurrence:int -> float option
  (** Last allocated cost of the [occurrence]-th transmission of
      [relay], if the previous allocation had one. *)

  val set : t -> relay:int -> occurrence:int -> float -> unit
  (** Record one allocated cost for the next point in the chain. *)

  val reset : t -> unit
  (** Forget everything (called before re-populating, so stale keys
      from a differently-shaped backbone cannot accumulate). *)
end

(** Shared planning context: everything that used to be threaded
    ad-hoc through each algorithm's [run] as optional arguments. *)
module Ctx : sig
  type t = {
    rng : Rng.t option;
        (** Stream for randomized planners ([None]: the planner's
            fixed documented default seed). *)
    steiner_level : int;
        (** Recursive-greedy level for (FR-)EEDCB (paper's ε = 1/i;
            default 2). *)
    cap_per_node : int option;
        (** Per-node DTS point cap ([None]: uncapped). *)
    pool : Pool.t option;
        (** Worker pool for a planner's internal fan-out, if any. *)
    provenance : bool;
        (** Whether to emit provenance events (defaults to the global
            {!Tmedb_report.Provenance.enabled} flag at {!make} time). *)
    warm : Warm.t option;
        (** Warm-start store for the FR allocation ([None]: every
            allocation solves cold, the goldens' path). *)
    lazy_aux : bool;
        (** When true, (FR-)EEDCB expands the auxiliary graph lazily
            ({!Aux_graph.Lazy}) instead of materialising it — same
            results bit for bit, only the explored frontier is built
            (default false, the goldens' path). *)
    solve_state : Solve_state.t option;
        (** Shared deadline-independent state for planners that
            support it (EEDCB, SPT): the DTS view, DCS marginals and
            auxiliary-graph layout come from the state instead of
            being rebuilt per solve.  The state must be compatible
            with the problem being planned
            ({!Solve_state.check_compatible}); implies the lazy
            auxiliary graph on the planners that honour it.  [None]
            (the default): the one-shot path, byte-identical to
            before the state existed. *)
  }

  val make :
    ?rng:Rng.t ->
    ?steiner_level:int ->
    ?cap_per_node:int ->
    ?pool:Pool.t ->
    ?provenance:bool ->
    ?warm:Warm.t ->
    ?lazy_aux:bool ->
    ?solve_state:Solve_state.t ->
    unit ->
    t
  (** Context with the paper's defaults for every omitted field. *)

  val default : unit -> t
  (** [default () = make ()]. *)

  val rng_or : t -> seed:int -> Rng.t
  (** The context's stream, or a fresh [Rng.create seed] when the
      caller did not provide one. *)
end

(** Unified planner result: what every planner produces, plus typed
    artifacts for algorithm-specific by-products. *)
module Outcome : sig
  (** FR stage-2 energy-allocation diagnostics (paper Eqs. 14–17). *)
  type allocation = {
    costs : float array;  (** Allocated cost per backbone transmission. *)
    nlp_feasible : bool;  (** Whether the penalty solver converged feasibly. *)
    repaired : bool;  (** Whether the monotone bisection repair fired. *)
    unsatisfiable : int list;
        (** Nodes whose constraint cannot be met even at [w_max]. *)
    outer_iterations : int;  (** Penalty-method outer iterations. *)
  }

  (** Algorithm-specific by-products a consumer may inspect. *)
  type artifact =
    | Steiner_tree of {
        tree : Tmedb_steiner.Dst.tree;
            (** The pruned directed Steiner tree, in auxiliary-graph
                vertex ids. *)
        aux_vertices : int;  (** Auxiliary-graph size (vertices). *)
        aux_edges : int;  (** Auxiliary-graph size (edges). *)
        dts_points : int;  (** Total DTS points of the instance. *)
      }  (** EEDCB pipeline shape (paper Section VI-A). *)
    | Greedy_steps of int
        (** Iterations of a step-loop baseline (GREED/RAND). *)
    | Fr_allocation of { backbone : Schedule.t; allocation : allocation }
        (** FR stage 2: the ε-cost backbone and its reallocation. *)
    | Bip_plan of { planned_energy : float; snapshot_unreachable : int list }
        (** Static-BIP plan: Σ of tree powers and the nodes without
            any snapshot path. *)

  type t = {
    schedule : Schedule.t;  (** The planned transmissions. *)
    report : Feasibility.report;  (** Conditions (i)–(iv) verdict. *)
    unreached : int list;
        (** Nodes the planner could not cover by the deadline,
            ascending. *)
    artifacts : artifact list;  (** Algorithm-specific by-products. *)
  }

  val make :
    ?artifacts:artifact list ->
    schedule:Schedule.t ->
    report:Feasibility.report ->
    unreached:int list ->
    unit ->
    t
  (** Outcome with [artifacts] defaulting to []. *)

  val tree_cost : t -> float option
  (** Cost of the {!constructor:Steiner_tree} artifact, if present. *)

  val steps : t -> int option
  (** The {!constructor:Greedy_steps} artifact, if present. *)

  val backbone : t -> Schedule.t option
  (** The FR backbone schedule, if present. *)

  val allocation : t -> allocation option
  (** The FR allocation diagnostics, if present. *)

  val planned_energy : t -> float option
  (** The BIP planned energy, if present. *)

  val snapshot_unreachable : t -> int list
  (** The BIP snapshot-unreachable set ([[]] when absent). *)
end

type channel = [ `Static | `Fading ]
(** Design-channel family a planner targets: [`Static] plans against
    deterministic links, [`Fading] against an ED-function channel
    (the paper's FR- variants). *)

type info = {
  name : string;
      (** Canonical registry key and display name, as in the paper's
          legends (e.g. ["FR-EEDCB"]). *)
  channel : channel;  (** Design-channel family. *)
  section : string;
      (** Paper section introducing the algorithm (e.g. ["VI-A"]), or
          a citation for beyond-paper planners. *)
  summary : string;  (** One-line description for [tmedb_cli algorithms]. *)
}
(** Per-planner metadata, the single source of truth behind algorithm
    lists, CLI flags and figure legends. *)

type t = { info : info; plan : Ctx.t -> Problem.t -> Outcome.t }
(** A planner: metadata plus its planning function. *)

(** The planner interface, for implementations packaged as modules;
    {!of_module} turns one into a first-class {!type:t}. *)
module type PLANNER = sig
  val info : info
  (** The planner's metadata. *)

  val plan : Ctx.t -> Problem.t -> Outcome.t
  (** Plan a broadcast for the instance under the context. *)
end

val of_module : (module PLANNER) -> t
(** Package a {!module-type:PLANNER} implementation as a value. *)

val name : t -> string
(** [name p] is [p.info.name]. *)

val is_fading : t -> bool
(** Whether the planner designs for a fading channel. *)

val design_channel : t -> Tmedb_tveg.Tveg.channel
(** The design channel the paper's evaluation gives this planner:
    [`Rayleigh] for [`Fading] planners, [`Static] otherwise. *)

val run : ?ctx:Ctx.t -> t -> Problem.t -> Outcome.t
(** [run ?ctx p problem] records one [Stage] provenance event naming
    the selected planner (when provenance is enabled in [ctx]), then
    plans.  [ctx] defaults to {!Ctx.default}[ ()]. *)
