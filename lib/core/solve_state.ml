open Tmedb_tveg

(* Telemetry: one create per grid (it does all the deadline-independent
   work: the streaming closure plus one DCS pass over the point
   universe), then one cheap view + layout per swept deadline.  In a
   shared sweep [dcs.queries] therefore grows with the universe, not
   with grid-size × universe — the sublinearity `bench pareto` gates. *)
let c_creates = Tmedb_obs.Counter.make "solve_state.creates"
let c_views = Tmedb_obs.Counter.make "solve_state.dts_views"
let c_layouts = Tmedb_obs.Counter.make "solve_state.layouts"
let t_create = Tmedb_obs.Timer.make "solve_state.create"

type layout = { base : int array; level_off : int array; edge_bound : int }

type t = {
  problem : Problem.t;
  horizon : float;
  cap_per_node : int option;
  stream : Dts.Stream.stream;
  pts : float array array;  (* per-node stream points at the horizon *)
  margs : Dcs.marginal list array array;  (* aligned with [pts] *)
  stats : (int * int) array array;  (* (levels, covered) per point *)
  sentinel : (Dcs.marginal list * (int * int)) option array;
      (* marginals at span.lo for nodes that can be unreachable at some
         deadline (earliest arrival past span.lo); [None] elsewhere *)
}

let create ?cap_per_node (problem : Problem.t) =
  Tmedb_obs.Counter.incr c_creates;
  let t0 = Tmedb_obs.Timer.start t_create in
  Fun.protect ~finally:(fun () -> Tmedb_obs.Timer.stop t_create t0) @@ fun () ->
  Tmedb_obs.Span.with_ "solve_state.create" @@ fun () ->
  let g = problem.Problem.graph in
  let phy = problem.Problem.phy in
  let channel = problem.Problem.channel in
  let horizon = problem.Problem.deadline in
  let span = Tveg.span g in
  let lo = span.Tmedb_prelude.Interval.lo in
  let tau = Tveg.tau g in
  let n = Tveg.n g in
  let stream = Dts.Stream.create ?cap_per_node ~source:problem.Problem.source g in
  Dts.Stream.advance stream ~horizon;
  let pts = Array.init n (Dts.Stream.generated stream) in
  (* Full-graph marginals coincide with the deadline-restricted ones
     whenever the transmission finishes strictly before the deadline
     (ρ_τ is strict at interval ends), so one memo serves every
     deadline up to the horizon; blocks finishing at or past a queried
     deadline are answered [] by {!marginals} without a lookup. *)
  let margs =
    Array.init n (fun i ->
        Array.map
          (fun p ->
            if p +. tau < horizon then Dcs.marginals_at g ~phy ~channel ~node:i ~time:p
            else [])
          pts.(i))
  in
  let stats = Array.map (Array.map Dcs.level_stats) margs in
  let sentinel =
    Array.init n (fun i ->
        if Dts.Stream.min_time stream i > lo then begin
          let m =
            if lo +. tau < horizon then Dcs.marginals_at g ~phy ~channel ~node:i ~time:lo
            else []
          in
          Some (m, Dcs.level_stats m)
        end
        else None)
  in
  { problem; horizon; cap_per_node; stream; pts; margs; stats; sentinel }

let problem t = t.problem
let horizon t = t.horizon
let cap_per_node t = t.cap_per_node
let stream_truncated t = Dts.Stream.truncated t.stream

let check_compatible t (problem : Problem.t) ~cap_per_node =
  let p0 = t.problem in
  if not (p0.Problem.graph == problem.Problem.graph) then
    invalid_arg "Solve_state: problem does not share the state's graph";
  if
    not
      (p0.Problem.phy = problem.Problem.phy
      && p0.Problem.channel = problem.Problem.channel
      && p0.Problem.source = problem.Problem.source)
  then invalid_arg "Solve_state: physical layer, channel or source differs";
  if cap_per_node <> t.cap_per_node then
    invalid_arg "Solve_state: cap_per_node differs from the state's";
  if problem.Problem.deadline > t.horizon then
    invalid_arg "Solve_state: deadline beyond the prepared horizon"

let dts_at t ~deadline =
  if deadline > t.horizon then
    invalid_arg "Solve_state.dts_at: deadline beyond the prepared horizon";
  Tmedb_obs.Counter.incr c_views;
  Dts.Stream.dts_at t.stream ~deadline

(* Exact index of [time] in node [i]'s stream points, if present. *)
let point_index t i time =
  let pts = t.pts.(i) in
  let rec search lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      if Float.equal pts.(mid) time then Some mid
      else if pts.(mid) < time then search (mid + 1) hi
      else search lo (mid - 1)
    end
  in
  search 0 (Array.length pts - 1)

let stats_at t i time =
  match point_index t i time with
  | Some idx -> t.stats.(i).(idx)
  | None -> ( match t.sentinel.(i) with Some (_, s) -> s | None -> (0, 0))

let marginals t ~deadline =
  let tau = Problem.tau t.problem in
  fun ~node ~time ->
    if time +. tau >= deadline then []
    else begin
      match point_index t node time with
      | Some idx -> t.margs.(node).(idx)
      | None -> ( match t.sentinel.(node) with Some (m, _) -> m | None -> [])
    end

let layout t dts =
  Tmedb_obs.Counter.incr c_layouts;
  let deadline = Dts.deadline dts in
  let tau = Problem.tau t.problem in
  let n = Dts.num_nodes dts in
  let base = Array.make n 0 in
  let total_wait = ref 0 in
  for i = 0 to n - 1 do
    base.(i) <- !total_wait;
    total_wait := !total_wait + Array.length (Dts.node_points dts i)
  done;
  let total_wait = !total_wait in
  let level_off = Array.make (total_wait + 1) 0 in
  let edge_bound = ref 0 in
  for i = 0 to n - 1 do
    let pts = Dts.node_points dts i in
    Array.iteri
      (fun l tm ->
        let bid = base.(i) + l in
        (* A block whose transmission cannot finish strictly before the
           deadline has no levels — the eager sizing pass computes the
           restricted-graph marginals there and finds them empty. *)
        let nlev, cov = if tm +. tau >= deadline then (0, 0) else stats_at t i tm in
        level_off.(bid + 1) <- level_off.(bid) + nlev;
        edge_bound := !edge_bound + nlev + cov;
        if l + 1 < Array.length pts then incr edge_bound)
      pts
  done;
  { base; level_off; edge_bound = !edge_bound }
