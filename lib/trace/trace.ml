open Tmedb_prelude

type t = { n : int; span : Interval.t; contacts : Contact.t list }

let make ~n ~span contacts =
  if n <= 0 then invalid_arg "Trace.make: n <= 0";
  List.iter
    (fun c ->
      if c.Contact.b >= n then invalid_arg "Trace.make: contact node out of range";
      if not (Interval.contains span c.Contact.iv) then
        invalid_arg "Trace.make: contact outside the span")
    contacts;
  { n; span; contacts = List.sort Contact.compare_by_start contacts }

let n t = t.n
let span t = t.span
let contacts t = t.contacts
let num_contacts t = List.length t.contacts

let restrict t ~span:window =
  if not (Interval.contains t.span window) then invalid_arg "Trace.restrict: window not contained";
  let clip c =
    match Interval.inter c.Contact.iv window with
    | None -> None
    | Some iv -> Some (Contact.make ~a:c.Contact.a ~b:c.Contact.b ~iv ~dist:c.Contact.dist)
  in
  { t with span = window; contacts = List.filter_map clip t.contacts }

let to_tvg t =
  List.fold_left
    (fun g c -> Tmedb_tvg.Tvg.add_presence g c.Contact.a c.Contact.b c.Contact.iv)
    (Tmedb_tvg.Tvg.create ~n:t.n ~span:t.span)
    t.contacts

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "# tmedb-trace n=%d span=%.17g,%.17g\n" t.n t.span.Interval.lo
       t.span.Interval.hi);
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%.17g,%.17g,%.17g\n" c.Contact.a c.Contact.b c.Contact.iv.Interval.lo
           c.Contact.iv.Interval.hi c.Contact.dist))
    t.contacts;
  Buffer.contents buf

let parse_header line =
  try Scanf.sscanf line "# tmedb-trace n=%d span=%f,%f" (fun n lo hi -> Some (n, lo, hi))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let parse_line lineno line =
  try
    Scanf.sscanf line "%d,%d,%f,%f,%f" (fun a b lo hi dist ->
        Ok (Contact.make ~a ~b ~iv:(Interval.make ~lo ~hi) ~dist))
  with
  | Scanf.Scan_failure msg | Failure msg | Invalid_argument msg ->
      Error (Printf.sprintf "line %d: %s" lineno msg)
  | End_of_file -> Error (Printf.sprintf "line %d: truncated record" lineno)

let of_csv text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno header acc = function
    | [] -> Ok (header, List.rev acc)
    | line :: rest ->
        let line = String.trim line in
        if line = "" then go (lineno + 1) header acc rest
        else if String.length line > 0 && line.[0] = '#' then begin
          match parse_header line with
          | Some h -> go (lineno + 1) (Some h) acc rest
          | None -> go (lineno + 1) header acc rest
        end
        else begin
          match parse_line lineno line with
          | Ok c -> go (lineno + 1) header (c :: acc) rest
          | Error e -> Error e
        end
  in
  match go 1 None [] lines with
  | Error e -> Error e
  | Ok (header, contacts) -> (
      let derived_n =
        List.fold_left (fun acc c -> Stdlib.max acc (c.Contact.b + 1)) 1 contacts
      in
      let derived_span =
        match contacts with
        | [] -> Interval.make ~lo:0. ~hi:1.
        | first :: rest ->
            List.fold_left (fun acc c -> Interval.hull acc c.Contact.iv) first.Contact.iv rest
      in
      match header with
      | Some (hn, lo, hi) -> (
          try Ok (make ~n:hn ~span:(Interval.make ~lo ~hi) contacts)
          with Invalid_argument msg -> Error msg)
      | None -> (
          try Ok (make ~n:derived_n ~span:derived_span contacts)
          with Invalid_argument msg -> Error msg))

let save t ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_csv t))

let load ~path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_csv (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> Error msg

type stats = {
  num_contacts : int;
  mean_duration : float;
  median_duration : float;
  mean_inter_contact : float;
  median_inter_contact : float;
  contacts_per_pair : float;
  pairs_with_contact : int;
  mean_degree : float;
}

let stats t =
  let durations = Array.of_list (List.map Contact.duration t.contacts) in
  (* Group contacts per pair to extract inter-contact gaps. *)
  let by_pair = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let key = (c.Contact.a, c.Contact.b) in
      Hashtbl.replace by_pair key (c :: (Option.value ~default:[] (Hashtbl.find_opt by_pair key))))
    t.contacts;
  (* Accumulate inter-contact gaps in sorted (a, b) pair order: the
     gap list feeds float means whose summation order must not depend
     on hash-bucket layout (lint rule R1). *)
  let pairs_sorted =
    List.sort
      (fun (k1, _) (k2, _) -> compare (k1 : int * int) k2)
      (Hashtbl.fold (fun key cs acc -> (key, cs) :: acc) by_pair [])
  in
  let gaps = ref [] in
  List.iter
    (fun (_, cs) ->
      let sorted = List.sort Contact.compare_by_start cs in
      let rec walk = function
        | x :: (y :: _ as rest) ->
            let gap = y.Contact.iv.Interval.lo -. x.Contact.iv.Interval.hi in
            if gap > 0. then gaps := gap :: !gaps;
            walk rest
        | _ -> ()
      in
      walk sorted)
    pairs_sorted;
  let gaps = Array.of_list !gaps in
  let pairs = Hashtbl.length by_pair in
  let safe_mean xs = if Array.length xs = 0 then 0. else Stats.mean xs in
  let safe_median xs = if Array.length xs = 0 then 0. else Stats.median xs in
  {
    num_contacts = List.length t.contacts;
    mean_duration = safe_mean durations;
    median_duration = safe_median durations;
    mean_inter_contact = safe_mean gaps;
    median_inter_contact = safe_median gaps;
    contacts_per_pair =
      (if pairs = 0 then 0. else float_of_int (List.length t.contacts) /. float_of_int pairs);
    pairs_with_contact = pairs;
    mean_degree = Tmedb_tvg.Tvg.average_degree_over (to_tvg t) ~window:t.span;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "contacts=%d dur(mean=%g med=%g) gap(mean=%g med=%g) pairs=%d per-pair=%g degree=%g"
    s.num_contacts s.mean_duration s.median_duration s.mean_inter_contact s.median_inter_contact
    s.pairs_with_contact s.contacts_per_pair s.mean_degree

let pp ppf t =
  Format.fprintf ppf "trace{n=%d span=%a contacts=%d}" t.n Interval.pp t.span
    (List.length t.contacts)
