type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission *)

(* Free-form strings (span attributes, planner names, crash reasons)
   must emit valid JSON no matter what bytes they carry: quotes,
   backslashes and control characters are escaped, and byte sequences
   that are not well-formed UTF-8 are replaced with U+FFFD — RFC 8259
   requires the document to be valid UTF-8, so passing raw >= 0x80
   bytes through unvalidated could emit an unparseable file. *)
let escape_string b s =
  let n = String.length s in
  let replacement () = Buffer.add_string b "\xef\xbf\xbd" (* U+FFFD *) in
  let cont i = i < n && Char.code s.[i] land 0xC0 = 0x80 in
  Buffer.add_char b '"';
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    let code = Char.code c in
    (match c with
    | '"' ->
        Buffer.add_string b "\\\"";
        incr i
    | '\\' ->
        Buffer.add_string b "\\\\";
        incr i
    | '\n' ->
        Buffer.add_string b "\\n";
        incr i
    | '\r' ->
        Buffer.add_string b "\\r";
        incr i
    | '\t' ->
        Buffer.add_string b "\\t";
        incr i
    | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c));
        incr i
    | c when Char.code c < 0x80 ->
        Buffer.add_char b c;
        incr i
    | _ when code >= 0xC2 && code <= 0xDF && cont (!i + 1) ->
        Buffer.add_substring b s !i 2;
        i := !i + 2
    | _ when code >= 0xE0 && code <= 0xEF && cont (!i + 1) && cont (!i + 2) ->
        (* Reject overlong (E0 80..9F) and surrogate (ED A0..BF)
           encodings, which are invalid UTF-8 despite the shape. *)
        let c1 = Char.code s.[!i + 1] in
        if (code = 0xE0 && c1 < 0xA0) || (code = 0xED && c1 >= 0xA0) then begin
          replacement ();
          incr i
        end
        else begin
          Buffer.add_substring b s !i 3;
          i := !i + 3
        end
    | _ when code >= 0xF0 && code <= 0xF4 && cont (!i + 1) && cont (!i + 2) && cont (!i + 3)
      ->
        let c1 = Char.code s.[!i + 1] in
        if (code = 0xF0 && c1 < 0x90) || (code = 0xF4 && c1 >= 0x90) then begin
          replacement ();
          incr i
        end
        else begin
          Buffer.add_substring b s !i 4;
          i := !i + 4
        end
    | _ ->
        replacement ();
        incr i);
  done;
  Buffer.add_char b '"'

let number_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let to_string ?(indent = 2) t =
  let b = Buffer.create 256 in
  let pad depth = if indent > 0 then Buffer.add_string b (String.make (depth * indent) ' ') in
  let newline () = if indent > 0 then Buffer.add_char b '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Num x ->
        if Float.is_finite x then Buffer.add_string b (number_to_string x)
        else Buffer.add_string b "null" (* JSON has no inf/nan *)
    | Str s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List elts ->
        Buffer.add_char b '[';
        newline ();
        List.iteri
          (fun i e ->
            if i > 0 then begin
              Buffer.add_char b ',';
              newline ()
            end;
            pad (depth + 1);
            emit (depth + 1) e)
          elts;
        newline ();
        pad depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_char b '{';
        newline ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char b ',';
              newline ()
            end;
            pad (depth + 1);
            escape_string b k;
            Buffer.add_string b (if indent > 0 then ": " else ":");
            emit (depth + 1) v)
          fields;
        newline ();
        pad depth;
        Buffer.add_char b '}'
  in
  emit 0 t;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over a cursor. *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char b e;
              loop ()
          | 'n' ->
              Buffer.add_char b '\n';
              loop ()
          | 't' ->
              Buffer.add_char b '\t';
              loop ()
          | 'r' ->
              Buffer.add_char b '\r';
              loop ()
          | 'b' ->
              Buffer.add_char b '\b';
              loop ()
          | 'f' ->
              Buffer.add_char b '\012';
              loop ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | None -> fail "bad \\u escape"
              | Some code ->
                  (* Encode the scalar as UTF-8; surrogate pairs in the
                     baseline files never occur, lone surrogates map to
                     U+FFFD. *)
                  let code = if code >= 0xD800 && code <= 0xDFFF then 0xFFFD else code in
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else if code < 0x800 then begin
                    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end);
              loop ()
          | _ -> fail "bad escape character")
      | c ->
          Buffer.add_char b c;
          loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> Num x
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elts acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elts (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | Some c -> fail (Printf.sprintf "expected , or ] in array, found %c" c)
            | None -> fail "unterminated array"
          in
          List (elts [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                List.rev (f :: acc)
            | Some c -> fail (Printf.sprintf "expected , or } in object, found %c" c)
            | None -> fail "unterminated object"
          in
          Obj (fields [])
        end
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | List _ -> None

let to_float = function Num x -> Some x | _ -> None
let to_list = function List l -> Some l | _ -> None
