(* Telemetry: logical tasks are counted per element regardless of how
   they are chunked onto scheduled jobs (so totals match at any pool
   size); batches count batch submissions, steals count takes from a
   deque the taker does not own, and chunk_size records the chunk the
   adaptive heuristic (or an override) picked for each chunked batch. *)
let c_tasks = Tmedb_obs.Counter.make "pool.tasks"
let c_batches = Tmedb_obs.Counter.make "pool.batches"
let c_steals = Tmedb_obs.Counter.make "pool.steals"
let t_batch = Tmedb_obs.Timer.make "pool.run_batch"
let h_chunk = Tmedb_obs.Histogram.make "pool.chunk_size"

(* Span-context propagation.  Each scheduled job runs inside a
   ["pool.task"] span whose ["ctx"] attribute carries the submitter's
   logical span path, so the profiler can re-root work executed on a
   worker (or drain-helping caller) domain under the span that
   submitted it — making attribution independent of --jobs.  The DLS
   slot holds the logical path of the innermost task executing on this
   domain, so a nested submission (a task that itself fans out)
   propagates its own logical path rather than the raw domain stack.
   Scheduling metadata only — never read by any algorithm. *)
let task_ctx_key =
  (Domain.DLS.new_key (fun () -> ([] : string list))
  [@lint.allow "toplevel-mutable-state"])

(* Logical span path at a submission point: the names open on this
   domain, with pool frames made transparent — everything up to and
   including the innermost ["pool.task"] is replaced by that task's
   propagated logical path. *)
let submission_ctx () =
  match Tmedb_obs.Span.current_names () with
  | [] -> []
  | names ->
      let saw_task = ref false in
      let suffix =
        List.fold_left
          (fun acc n ->
            if String.equal n "pool.task" then begin
              saw_task := true;
              []
            end
            else if String.equal n "pool.steal" then acc
            else n :: acc)
          [] names
        |> List.rev
      in
      if !saw_task then Domain.DLS.get task_ctx_key @ suffix else suffix

(* A mutex-protected ring-buffer deque.  The owner pushes and pops at
   the back (newest first, keeping nested batches cache-warm); thieves
   steal at the front (oldest first, the work the owner is least likely
   to reach soon).  A plain mutex per deque is plenty here: jobs are
   chunk-sized by construction, so deque traffic is rare relative to
   work, and the scheduler stays obviously correct under OCaml 5's
   memory model. *)
module Deque = struct
  type t = {
    lock : Mutex.t;
    mutable buf : (unit -> unit) array;
    mutable head : int;  (* index of the oldest job *)
    mutable len : int;
  }

  let dummy () = ()
  let create () = { lock = Mutex.create (); buf = Array.make 64 dummy; head = 0; len = 0 }

  let grow t =
    let cap = Array.length t.buf in
    let buf = Array.make (2 * cap) dummy in
    for i = 0 to t.len - 1 do
      buf.(i) <- t.buf.((t.head + i) mod cap)
    done;
    t.buf <- buf;
    t.head <- 0

  let push_back t job =
    Mutex.lock t.lock;
    if t.len = Array.length t.buf then grow t;
    let cap = Array.length t.buf in
    t.buf.((t.head + t.len) mod cap) <- job;
    t.len <- t.len + 1;
    Mutex.unlock t.lock

  let pop_back t =
    Mutex.lock t.lock;
    let r =
      if t.len = 0 then None
      else begin
        let i = (t.head + t.len - 1) mod Array.length t.buf in
        let job = t.buf.(i) in
        t.buf.(i) <- dummy;
        t.len <- t.len - 1;
        Some job
      end
    in
    Mutex.unlock t.lock;
    r

  let steal_front t =
    Mutex.lock t.lock;
    let r =
      if t.len = 0 then None
      else begin
        let job = t.buf.(t.head) in
        t.buf.(t.head) <- dummy;
        t.head <- (t.head + 1) mod Array.length t.buf;
        t.len <- t.len - 1;
        Some job
      end
    in
    Mutex.unlock t.lock;
    r
end

type t = {
  size : int;  (* logical workers: spawned domains + caller *)
  deques : Deque.t array;  (* one per worker; slot [size - 1] is the caller's *)
  rr : int Atomic.t;  (* round-robin submission cursor *)
  sleep_mutex : Mutex.t;
  work_available : Condition.t;
  epoch : int Atomic.t;  (* bumped on every submission; the wake signal *)
  stopping : bool Atomic.t;
  mutable domains : unit Domain.t list;
  chunk_override : int option;  (* TMEDB_CHUNK, frozen at creation *)
  est_ns : int Atomic.t;  (* EWMA of observed per-element cost; 0 = unknown *)
  caller_minor : int option;  (* caller's minor heap before create enlarged it *)
}

let default_num_domains () =
  let requested =
    match Sys.getenv_opt "TMEDB_JOBS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some k when k >= 1 -> k
        | Some _ | None -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ()
  in
  Stdlib.max 1 (Stdlib.min 128 requested)

let default_chunk_override () =
  match Sys.getenv_opt "TMEDB_CHUNK" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some c when c >= 1 -> Some c
      | Some _ | None -> None)
  | None -> None

(* Every OCaml 5 minor collection is a stop-the-world handshake across
   all running domains, so with the stock 256k-word minor heap two
   allocation-heavy domains stall each other thousands of times per
   second — on a time-shared core that alone makes `--jobs 2` ~2x
   *slower* than sequential.  The pool therefore enlarges the minor
   heap of every participating domain (workers at spawn, the caller at
   create): fewer, larger collections amortize the handshake, and GC
   sizing cannot affect results.  TMEDB_MINOR_HEAP overrides the
   target in words; 0 disables the enlargement. *)
let minor_heap_target_words () =
  let default = 2 * 1024 * 1024 in
  match Sys.getenv_opt "TMEDB_MINOR_HEAP" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some w when w >= 0 -> w
      | Some _ | None -> default)
  | None -> default

(* Returns the previous size when it actually grew the heap (the
   caller restores it at shutdown); never shrinks a larger setting. *)
let enlarge_minor_heap target =
  let g = Gc.get () in
  if target > g.Gc.minor_heap_size then begin
    Gc.set { g with Gc.minor_heap_size = target };
    Some g.Gc.minor_heap_size
  end
  else None

let num_domains t = t.size

(* Take work: own deque first, then a deterministic cyclic scan of the
   other deques (no RNG — victim order must not consume any random
   stream).  Steals are counted only when the victim differs from
   [home]. *)
let try_take t ~home =
  match Deque.pop_back t.deques.(home) with
  | Some job -> Some job
  | None ->
      let n = Array.length t.deques in
      let rec scan k =
        if k >= n then None
        else begin
          match Deque.steal_front t.deques.((home + k) mod n) with
          | Some job ->
              Tmedb_obs.Counter.incr c_steals;
              (* A visible ["pool.steal"] frame around stolen work so
                 the per-worker timeline can render steal lanes; the
                 profiler treats pool frames as transparent. *)
              Some (fun () -> Tmedb_obs.Span.with_ "pool.steal" job)
          | None -> scan (k + 1)
        end
      in
      scan 1

(* Workers run until shutdown: take (or steal) until every deque scans
   empty, then sleep until the submission epoch moves.  The epoch is
   read before the scan and re-checked under the mutex, so a submission
   racing with the scan can never be missed. *)
let rec worker_loop t ~home =
  let seen = Atomic.get t.epoch in
  match try_take t ~home with
  | Some job ->
      job ();
      worker_loop t ~home
  | None ->
      if not (Atomic.get t.stopping) then begin
        Mutex.lock t.sleep_mutex;
        while Atomic.get t.epoch = seen && not (Atomic.get t.stopping) do
          Condition.wait t.work_available t.sleep_mutex
        done;
        Mutex.unlock t.sleep_mutex;
        worker_loop t ~home
      end

let create ?num_domains () =
  let size =
    match num_domains with
    | None -> default_num_domains ()
    | Some k when k >= 1 -> Stdlib.min 128 k
    | Some k -> invalid_arg (Printf.sprintf "Pool.create: num_domains %d < 1" k)
  in
  let minor_target = minor_heap_target_words () in
  let t =
    {
      size;
      deques = Array.init size (fun _ -> Deque.create ());
      rr = Atomic.make 0;
      sleep_mutex = Mutex.create ();
      work_available = Condition.create ();
      epoch = Atomic.make 0;
      stopping = Atomic.make false;
      domains = [];
      chunk_override = default_chunk_override ();
      est_ns = Atomic.make 0;
      caller_minor = (if size > 1 then enlarge_minor_heap minor_target else None);
    }
  in
  (* Minor heap sizes are per-domain and not inherited across spawn:
     each worker enlarges its own before entering the loop. *)
  t.domains <-
    List.init (size - 1) (fun i ->
        Domain.spawn (fun () ->
            ignore (enlarge_minor_heap minor_target);
            worker_loop t ~home:i));
  t

let shutdown t =
  Mutex.lock t.sleep_mutex;
  Atomic.set t.stopping true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.sleep_mutex;
  let ds = t.domains in
  t.domains <- [];
  List.iter Domain.join ds;
  match t.caller_minor with
  | Some words -> Gc.set { (Gc.get ()) with Gc.minor_heap_size = words }
  | None -> ()

let with_pool ?num_domains f =
  let t = create ?num_domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [count] task indices through [run_one].  Jobs are spread
   round-robin over the worker deques; the caller then helps drain
   (its own deque first, stealing otherwise) until its batch completes.
   While helping it may execute tasks of *other* batches (nested
   parallel_map), which is what makes nesting deadlock-free. *)
let run_batch t ~count run_one =
  Tmedb_obs.Counter.incr c_batches;
  let tb = Tmedb_obs.Timer.start t_batch in
  (* Capture the submitter's logical span path once per batch (only
     when something is recording — the disabled path stays a flag
     check) and wrap each job in a ["pool.task"] span carrying it. *)
  let recording = Tmedb_obs.enabled () || Tmedb_obs.Flight.armed () in
  let run_task =
    if not recording then run_one
    else begin
      let ctx = submission_ctx () in
      let args = match ctx with [] -> [] | _ -> [ ("ctx", String.concat ";" ctx) ] in
      fun i ->
        Tmedb_obs.Span.with_ "pool.task" ~args (fun () ->
            let saved = Domain.DLS.get task_ctx_key in
            Domain.DLS.set task_ctx_key ctx;
            Fun.protect
              ~finally:(fun () -> Domain.DLS.set task_ctx_key saved)
              (fun () -> run_one i))
    end
  in
  let remaining = Atomic.make count in
  let error = Atomic.make None in
  let done_mutex = Mutex.create () in
  let batch_done = Condition.create () in
  let job i () =
    (match Atomic.get error with
    | Some _ -> () (* batch already failed: skip the work, still count down *)
    | None -> (
        try run_task i
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set error None (Some (e, bt)))));
    if Atomic.fetch_and_add remaining (-1) = 1 then begin
      Mutex.lock done_mutex;
      Condition.broadcast batch_done;
      Mutex.unlock done_mutex
    end
  in
  if Atomic.get t.stopping then invalid_arg "Pool: submitted to a shut-down pool";
  let nd = Array.length t.deques in
  for i = 0 to count - 1 do
    let slot = Atomic.fetch_and_add t.rr 1 mod nd in
    Deque.push_back t.deques.(slot) (job i)
  done;
  Mutex.lock t.sleep_mutex;
  Atomic.incr t.epoch;
  Condition.broadcast t.work_available;
  Mutex.unlock t.sleep_mutex;
  let home = t.size - 1 in
  let rec drain () =
    if Atomic.get remaining > 0 then begin
      match try_take t ~home with
      | Some job ->
          job ();
          drain ()
      | None ->
          (* Every deque scanned empty, so every task of this batch is
             done or in flight on another domain: sleep until the last
             one signals, instead of burning a timeslice spinning. *)
          Mutex.lock done_mutex;
          while Atomic.get remaining > 0 do
            Condition.wait batch_done done_mutex
          done;
          Mutex.unlock done_mutex
    end
  in
  drain ();
  Tmedb_obs.Timer.stop t_batch tb;
  match Atomic.get error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let parallel_init t n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  Tmedb_obs.Counter.add c_tasks n;
  if n = 0 then [||]
  else if t.size <= 1 || n = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    run_batch t ~count:n (fun i -> results.(i) <- Some (f i));
    Array.map (function Some r -> r | None -> assert false) results
  end

let parallel_map t f a = parallel_init t (Array.length a) (fun i -> f a.(i))

(* ------------------------------------------------------------------ *)
(* Adaptive chunking.  Chunked batches measure their own per-element
   cost (a scheduling heuristic only — the measurement steers chunk
   sizes of *later* batches, never any result) and fold it into a
   per-pool EWMA.  The next chunked batch sizes its chunks so each job
   carries ~[target_ns] of work, capped for load balance; when the
   whole batch is cheaper than [serial_cutoff_ns] the caller runs it
   inline, because waking a second domain costs more than it buys. *)

let target_ns = 5_000_000 (* ~5 ms of work per scheduled job *)
let serial_cutoff_ns = 500_000 (* below ~0.5 ms total, stay sequential *)

let now_ns () =
  int_of_float ((Unix.gettimeofday () [@lint.allow "wall-clock"]) *. 1e9)

let note_cost t ~elements ~elapsed_ns =
  if elements > 0 && elapsed_ns >= 0 then begin
    let sample = elapsed_ns / elements in
    let old = Atomic.get t.est_ns in
    (* Racy read-modify-write on purpose: the EWMA is a heuristic and
       any interleaving yields a plausible estimate. *)
    Atomic.set t.est_ns (if old <= 0 then sample else ((3 * old) + sample) / 4)
  end

let adaptive_chunk t n =
  match t.chunk_override with
  | Some c -> c
  | None ->
      let est = Atomic.get t.est_ns in
      if est <= 0 then Stdlib.max 1 (n / (4 * t.size))
      else if n * est < serial_cutoff_ns then n
      else begin
        let ideal = Stdlib.max 1 (target_ns / est) in
        let balance_cap = Stdlib.max 1 ((n + (2 * t.size) - 1) / (2 * t.size)) in
        Stdlib.min ideal balance_cap
      end

let parallel_map_chunked ?chunk t f a =
  let n = Array.length a in
  Tmedb_obs.Counter.add c_tasks n;
  let chunk =
    match chunk with
    | Some c when c >= 1 -> c
    | Some c -> invalid_arg (Printf.sprintf "Pool.parallel_map_chunked: chunk %d < 1" c)
    | None -> adaptive_chunk t n
  in
  if n = 0 then [||]
  else if t.size <= 1 || n <= chunk then begin
    let t0 = now_ns () in
    let r = Array.map f a in
    note_cost t ~elements:n ~elapsed_ns:(now_ns () - t0);
    r
  end
  else begin
    Tmedb_obs.Histogram.observe h_chunk chunk;
    let nchunks = (n + chunk - 1) / chunk in
    let results = Array.make n None in
    run_batch t ~count:nchunks (fun c ->
        let lo = c * chunk in
        let hi = Stdlib.min n (lo + chunk) - 1 in
        let t0 = now_ns () in
        for i = lo to hi do
          results.(i) <- Some (f a.(i))
        done;
        note_cost t ~elements:(hi - lo + 1) ~elapsed_ns:(now_ns () - t0));
    Array.map (function Some r -> r | None -> assert false) results
  end

let run_sequential f a =
  Tmedb_obs.Counter.add c_tasks (Array.length a);
  Array.map f a

let map pool f a =
  match pool with Some t -> parallel_map t f a | None -> run_sequential f a

let map_chunked ?chunk pool f a =
  match pool with Some t -> parallel_map_chunked ?chunk t f a | None -> run_sequential f a
