(* Telemetry: logical tasks are counted per element regardless of how
   they are chunked onto queue jobs (so totals match at any pool
   size); batches count actual queue submissions. *)
let c_tasks = Tmedb_obs.Counter.make "pool.tasks"
let c_batches = Tmedb_obs.Counter.make "pool.batches"
let t_batch = Tmedb_obs.Timer.make "pool.run_batch"

type t = {
  size : int;  (* logical workers: spawned domains + caller *)
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_available : Condition.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let default_num_domains () =
  let requested =
    match Sys.getenv_opt "TMEDB_JOBS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some k when k >= 1 -> k
        | Some _ | None -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ()
  in
  Stdlib.max 1 (Stdlib.min 128 requested)

let num_domains t = t.size

(* Workers block on the queue; jobs are wrapped by the batch machinery
   and never raise. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    match Queue.take_opt t.queue with
    | Some job -> Some job
    | None ->
        if t.stopping then None
        else begin
          Condition.wait t.work_available t.mutex;
          next ()
        end
  in
  match next () with
  | None -> Mutex.unlock t.mutex
  | Some job ->
      Mutex.unlock t.mutex;
      job ();
      worker_loop t

let create ?num_domains () =
  let size =
    match num_domains with
    | None -> default_num_domains ()
    | Some k when k >= 1 -> Stdlib.min 128 k
    | Some k -> invalid_arg (Printf.sprintf "Pool.create: num_domains %d < 1" k)
  in
  let t =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      work_available = Condition.create ();
      stopping = false;
      domains = [];
    }
  in
  t.domains <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  let ds = t.domains in
  t.domains <- [];
  List.iter Domain.join ds

let with_pool ?num_domains f =
  let t = create ?num_domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [count] task indices through [run_one].  The caller enqueues
   every index and then helps drain the queue until its batch
   completes; while helping it may execute tasks of *other* batches
   (nested parallel_map), which is what makes nesting deadlock-free. *)
let run_batch t ~count run_one =
  Tmedb_obs.Counter.incr c_batches;
  let tb = Tmedb_obs.Timer.start t_batch in
  let remaining = Atomic.make count in
  let error = Atomic.make None in
  let done_mutex = Mutex.create () in
  let batch_done = Condition.create () in
  let job i () =
    (match Atomic.get error with
    | Some _ -> () (* batch already failed: skip the work, still count down *)
    | None -> (
        try run_one i
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set error None (Some (e, bt)))));
    if Atomic.fetch_and_add remaining (-1) = 1 then begin
      Mutex.lock done_mutex;
      Condition.broadcast batch_done;
      Mutex.unlock done_mutex
    end
  in
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: submitted to a shut-down pool"
  end;
  for i = 0 to count - 1 do
    Queue.add (job i) t.queue
  done;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  let rec drain () =
    if Atomic.get remaining > 0 then begin
      Mutex.lock t.mutex;
      let job = Queue.take_opt t.queue in
      Mutex.unlock t.mutex;
      match job with
      | Some job ->
          job ();
          drain ()
      | None ->
          (* The queue is empty, so every task of this batch is done or
             in flight on another domain: sleep until the last one
             signals, instead of burning a timeslice spinning. *)
          Mutex.lock done_mutex;
          while Atomic.get remaining > 0 do
            Condition.wait batch_done done_mutex
          done;
          Mutex.unlock done_mutex
    end
  in
  drain ();
  Tmedb_obs.Timer.stop t_batch tb;
  match Atomic.get error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let parallel_init t n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  Tmedb_obs.Counter.add c_tasks n;
  if n = 0 then [||]
  else if t.size <= 1 || n = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    run_batch t ~count:n (fun i -> results.(i) <- Some (f i));
    Array.map (function Some r -> r | None -> assert false) results
  end

let parallel_map t f a = parallel_init t (Array.length a) (fun i -> f a.(i))

let parallel_map_chunked ?chunk t f a =
  let n = Array.length a in
  Tmedb_obs.Counter.add c_tasks n;
  let chunk =
    match chunk with
    | Some c when c >= 1 -> c
    | Some c -> invalid_arg (Printf.sprintf "Pool.parallel_map_chunked: chunk %d < 1" c)
    | None -> Stdlib.max 1 (n / (4 * t.size))
  in
  if n = 0 then [||]
  else if t.size <= 1 || n <= chunk then Array.map f a
  else begin
    let nchunks = (n + chunk - 1) / chunk in
    let results = Array.make n None in
    run_batch t ~count:nchunks (fun c ->
        let lo = c * chunk in
        let hi = Stdlib.min n (lo + chunk) - 1 in
        for i = lo to hi do
          results.(i) <- Some (f a.(i))
        done);
    Array.map (function Some r -> r | None -> assert false) results
  end

let run_sequential f a =
  Tmedb_obs.Counter.add c_tasks (Array.length a);
  Array.map f a

let map pool f a =
  match pool with Some t -> parallel_map t f a | None -> run_sequential f a

let map_chunked ?chunk pool f a =
  match pool with Some t -> parallel_map_chunked ?chunk t f a | None -> run_sequential f a
