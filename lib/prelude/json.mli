(** Minimal JSON tree, emitter and parser (no external dependency).

    Exists for the machine-readable bench baselines ([BENCH_*.json]):
    later sessions parse the previous baseline and regress against it,
    so both directions must round-trip.  Numbers are floats (ints emit
    without a fractional part); strings are escaped per RFC 8259, and
    byte sequences that are not well-formed UTF-8 are replaced with
    U+FFFD at emission (free-form span attributes and crash reasons
    flow through here, and the document must stay parseable whatever
    they contain). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Serialize; [indent] > 0 pretty-prints with that step (default 2).
    [indent] = 0 gives a compact single line. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; the error string carries a
    character offset. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on other constructors. *)

val to_float : t -> float option
(** The number in a [Num]; [None] otherwise. *)

val to_list : t -> t list option
(** The elements of a [List]; [None] otherwise. *)
