let metrics_of_snapshot (s : Tmedb_obs.snapshot) =
  Json.Obj
    [
      ("schema", Json.Str "tmedb.metrics/1");
      ( "counters",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Num (float_of_int v))) s.counters) );
      ( "timers",
        Json.Obj
          (List.map
             (fun { Tmedb_obs.timer_name; seconds; hits } ->
               ( timer_name,
                 Json.Obj
                   [ ("seconds", Json.Num seconds); ("count", Json.Num (float_of_int hits)) ] ))
             s.timers) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (h : Tmedb_obs.histogram_snapshot) ->
               ( h.hist_name,
                 Json.Obj
                   [
                     ("count", Json.Num (float_of_int h.hist_count));
                     ("sum", Json.Num (float_of_int h.hist_sum));
                     ("min", Json.Num (float_of_int h.hist_min));
                     ("max", Json.Num (float_of_int h.hist_max));
                     ("p50", Json.Num (float_of_int h.p50));
                     ("p90", Json.Num (float_of_int h.p90));
                     ("p99", Json.Num (float_of_int h.p99));
                   ] ))
             s.histograms) );
      ( "spans",
        Json.Obj
          (List.map
             (fun (a : Tmedb_obs.span_alloc) ->
               ( a.span_name,
                 Json.Obj
                   [
                     ("count", Json.Num (float_of_int a.span_count));
                     ("minor_words", Json.Num a.minor_total);
                     ("major_words", Json.Num a.major_total);
                   ] ))
             s.span_allocs) );
    ]

let metrics () = metrics_of_snapshot (Tmedb_obs.snapshot ())

let trace_of_events events =
  let origin = Tmedb_obs.origin () in
  (* Domains map to stable dense tid lanes (sorted domain ids -> 0, 1,
     ...), not raw Domain.self ids: raw ids depend on how many domains
     the process ever spawned, so two runs of the same workload would
     otherwise render on different lanes in Perfetto.  A thread_name
     metadata row labels each lane with the underlying domain id. *)
  let domains =
    List.sort_uniq Int.compare
      (List.map (fun (e : Tmedb_obs.event) -> e.domain) events)
  in
  let lane_of =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i d -> Hashtbl.replace tbl d i) domains;
    fun d -> float_of_int (Option.value (Hashtbl.find_opt tbl d) ~default:0)
  in
  let meta_rows =
    List.mapi
      (fun i d ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Num 1.);
            ("tid", Json.Num (float_of_int i));
            ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "domain %d" d)) ]);
          ])
      domains
  in
  (* Microseconds since process start, clamped non-decreasing per
     domain: trace viewers sort by timestamp, so a backwards wall-clock
     step inside a span would otherwise unnest it. *)
  let last_ts = Hashtbl.create 8 in
  let rows =
    List.map
      (fun (e : Tmedb_obs.event) ->
        let us = (e.ts -. origin) *. 1e6 in
        let us =
          match Hashtbl.find_opt last_ts e.domain with
          | Some prev when prev > us -> prev
          | Some _ | None -> us
        in
        Hashtbl.replace last_ts e.domain us;
        let base =
          [
            ("name", Json.Str e.name);
            ("cat", Json.Str "tmedb");
            ("ph", Json.Str (match e.phase with Tmedb_obs.Begin -> "B" | Tmedb_obs.End -> "E"));
            ("pid", Json.Num 1.);
            ("tid", Json.Num (lane_of e.domain));
            ("ts", Json.Num us);
          ]
        in
        let arg_rows =
          List.map (fun (k, v) -> (k, Json.Str v)) e.args
          @
          match e.alloc with
          | Some a ->
              [
                ("minor_words", Json.Num a.Tmedb_obs.minor_words);
                ("major_words", Json.Num a.Tmedb_obs.major_words);
              ]
          | None -> []
        in
        let args = match arg_rows with [] -> [] | kvs -> [ ("args", Json.Obj kvs) ] in
        Json.Obj (base @ args))
      events
  in
  Json.Obj
    [ ("displayTimeUnit", Json.Str "ms"); ("traceEvents", Json.List (meta_rows @ rows)) ]

let trace () = trace_of_events (Tmedb_obs.events ())

let write_doc ~path ~indent doc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent doc);
      output_char oc '\n')

let write_metrics ~path = write_doc ~path ~indent:2 (metrics ())
let write_trace ~path = write_doc ~path ~indent:0 (trace ())
