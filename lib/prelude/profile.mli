(** Span-tree attribution over the {!Tmedb_obs} event stream, plus the
    profile artifacts ([--profile out/] on the CLI and bench).

    The fold turns the [(domain, seq)]-ordered event stream into a
    tree of {e logical paths}: pool frames (["pool.task"],
    ["pool.steal"]) are transparent, and a task's subtree re-roots
    under the span path its submitter recorded in the task's ["ctx"]
    attribute — so attribution is the same at any [--jobs], matching
    where the work nests when run inline.  ["planner.run"] frames
    render as [planner.run:<name>].

    Determinism contract, mirroring the run-ledger's: node {e counts}
    along logical paths are jobs-invariant and run-invariant for a
    deterministic workload, so [profile.json] ([tmedb.profile/1]) and
    [profile.folded] are byte-deterministic given an injected
    timestamp.  Wall time and alloc words are real measurements and
    vary run to run; they appear only in the human-facing artifacts
    ([profile_detail.json], [profile_wall.folded],
    [flamegraph.html]). *)

type node = {
  path : string list;  (** Logical path, root-first (display names). *)
  count : int;  (** Closed spans at this path. *)
  wall_ns : float;  (** Σ span durations (total). *)
  wall_self_ns : float;  (** Total minus direct children's totals. *)
  minor_words : float;  (** Σ minor-heap alloc deltas (total). *)
  minor_self_words : float;  (** Minor total minus children's. *)
  major_words : float;  (** Σ major-heap alloc deltas (total). *)
  major_self_words : float;  (** Major total minus children's. *)
}
(** One logical call-tree node. *)

type interval = {
  i_domain : int;  (** Raw domain id. *)
  i_start : float;  (** Seconds since {!Tmedb_obs.origin}. *)
  i_stop : float;  (** End of the interval, same clock. *)
  i_kind : string;  (** ["task"], ["steal"] or the span name. *)
}
(** One top-level busy interval on a domain. *)

type lane = {
  lane_domain : int;  (** Raw domain id. *)
  lane_intervals : interval list;  (** Start-ordered busy intervals. *)
  lane_busy_s : float;  (** Σ interval durations. *)
  lane_steals : int;  (** Closed ["pool.steal"] frames on this domain. *)
}
(** One worker lane of the timeline. *)

type timeline = {
  lanes : lane list;  (** Sorted by domain id. *)
  t_begin : float;  (** Earliest event, seconds since origin. *)
  t_end : float;  (** Latest event. *)
  busy_s : float;  (** Σ lane busy seconds. *)
  utilization : float;  (** [busy / (lanes × makespan)]; 0 when empty. *)
  critical_path_s : float;
      (** Lower-bound estimate: max(longest single interval,
          busy ÷ lanes). *)
}
(** Pool activity view derived from top-level spans per domain. *)

type t = { nodes : node list;  (** Sorted by path. *) timeline : timeline }
(** A folded profile. *)

val of_events : Tmedb_obs.event list -> t
(** Fold an event stream (as {!Tmedb_obs.events} returns it: grouped
    per domain, seq-ordered within a domain) into a profile. *)

val path_key : string list -> string
(** Join a logical path with [";"] — the node key used in every
    artifact and in folded-stack lines. *)

val profile_doc : ?timestamp:string -> t -> Json.t
(** The deterministic [tmedb.profile/1] document: sorted node paths
    with span counts only.  [timestamp] is caller-injected (ledger
    discipline); omitted means [null]. *)

val detail_doc : ?timestamp:string -> t -> Json.t
(** The [tmedb.profile_detail/1] document: per-node wall self/total
    nanoseconds and minor/major alloc words, plus timeline summary.
    Non-deterministic (real measurements). *)

val folded_counts : t -> string
(** [flamegraph.pl]-compatible folded stacks weighted by span count —
    deterministic. One [path count] line per node, sorted by path. *)

val folded_wall : t -> string
(** Folded stacks weighted by self wall microseconds (non-zero rows
    only) — feed to [flamegraph.pl] for a classic time flamegraph. *)

val top_self : t -> int -> node list
(** The [k] nodes with the largest self wall time, descending. *)

val html : t -> string
(** Self-contained HTML: an SVG flamegraph (wall self time, pool
    frames re-rooted), the per-worker timeline with busy/steal lanes,
    utilization and critical-path header, and a top-self table. *)

val mkdir_p : string -> unit
(** Create a directory and its missing parents (no-op if present) —
    profile output directories and crash-dump parents use this. *)

val write_artifacts : ?timestamp:string -> dir:string -> unit -> t
(** Harvest {!Tmedb_obs.events}, fold, and write every artifact into
    [dir] (created if missing): [profile.json], [profile_detail.json],
    [profile.folded], [profile_wall.folded], [flamegraph.html].
    Returns the folded profile for further rendering. *)
