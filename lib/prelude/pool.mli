(** Fixed-size domain pool with per-worker work-stealing deques.

    The experiment sweeps (figures 4–7) and Monte-Carlo trial loops are
    independent tasks; this pool runs them across OCaml 5 domains with
    no external dependency.  Design notes:

    - A pool of [num_domains] logical workers spawns [num_domains - 1]
      domains; the calling domain itself executes tasks while it waits
      for a batch, so a 1-worker pool is exactly sequential execution
      with zero synchronisation overhead.
    - Each worker owns a deque; batch submission spreads jobs over the
      deques round-robin.  A worker pops its own deque from the back
      (newest first) and, when empty, steals from the other deques'
      fronts in a deterministic cyclic scan — no randomised victim
      selection, so the scheduler consumes no RNG stream.
    - Chunked maps size their chunks adaptively: each chunk measures
      its per-element cost into a per-pool estimate, and later batches
      aim for a few milliseconds of work per scheduled job (tiny
      batches run inline on the caller).  The [TMEDB_CHUNK] environment
      variable, read at {!create} time, pins the chunk size instead;
      an explicit [?chunk] argument overrides both.  Chunk sizing only
      steers scheduling — results never depend on it.
    - Nested use is safe: a task may call {!parallel_map} on the same
      pool.  The inner call's tasks are drained by the blocked caller
      (and any idle worker), so the pool never deadlocks.
    - Determinism is the caller's contract: each task writes only its
      own result slot, so [parallel_map pool f a] equals
      [Array.map f a] whenever [f] is pure per element (callers split
      RNG streams per task up front — see {!Rng.split}).
    - The first exception raised by a task is re-raised in the caller
      (with its backtrace) after the batch drains; remaining unstarted
      tasks of that batch are skipped.
    - Telemetry ({!Tmedb_obs}): [pool.tasks] counts logical elements
      dispatched through {!parallel_map}/{!parallel_map_chunked}/
      {!parallel_init} and their option-dispatch wrappers {!map}/
      {!map_chunked} (the same total at any worker count, including no
      pool); [pool.batches]/[pool.run_batch] count and time batch
      submissions, [pool.steals] counts takes from a deque the taker
      does not own, and [pool.chunk_size] records the chunk each
      chunked batch was scheduled with (all of these depend on the pool
      size, chunking and timing — they are scheduler diagnostics, not
      results). *)

type t

val default_num_domains : unit -> int
(** Worker-count heuristic: the [TMEDB_JOBS] environment variable when
    set to a positive integer, otherwise
    [Domain.recommended_domain_count ()].  Clamped to [1, 128]. *)

val create : ?num_domains:int -> unit -> t
(** [create ()] sizes the pool with {!default_num_domains}.  The pool
    holds [num_domains - 1] spawned domains until {!shutdown}.  The
    [TMEDB_CHUNK] environment variable (a positive integer) is read
    here and pins the chunk size of every {!parallel_map_chunked} call
    that does not pass [?chunk] explicitly.

    Multi-domain pools also enlarge the minor heap of every
    participating domain (the caller's is restored by {!shutdown}):
    the OCaml 5 minor GC is a stop-the-world handshake across domains,
    and with the stock 256k-word heap that handshake alone makes two
    allocation-heavy domains on a shared core slower than one.  GC
    sizing cannot affect results.  [TMEDB_MINOR_HEAP] (words) moves
    the target; [TMEDB_MINOR_HEAP=0] disables the enlargement.
    @raise Invalid_argument if [num_domains < 1]. *)

val num_domains : t -> int
(** Logical worker count (spawned domains + the calling domain). *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent.  Outstanding batches must
    have completed; submitting after shutdown raises
    [Invalid_argument]. *)

val with_pool : ?num_domains:int -> (t -> 'a) -> 'a
(** Scoped {!create}/{!shutdown}. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f a] is [Array.map f a] computed by the pool,
    one task per element.  Result order matches input order. *)

val parallel_map_chunked : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Like {!parallel_map} but one task per contiguous chunk of [chunk]
    elements, for cheap per-element work where per-task overhead would
    dominate.  [chunk] defaults to the adaptive heuristic (observed
    per-element cost targeting a few ms per job; [TMEDB_CHUNK] pins it
    instead when set).
    @raise Invalid_argument if [chunk < 1]. *)

val parallel_init : t -> int -> (int -> 'a) -> 'a array
(** [parallel_init pool n f] is [Array.init n f] computed by the pool. *)

val run_sequential : ('a -> 'b) -> 'a array -> 'b array
(** [Array.map], named: the [?pool:None] fallback used by callers that
    thread an optional pool. *)

val map : t option -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f a] dispatches to {!parallel_map} or [Array.map]
    according to [pool] — the one-liner every [?pool] caller wants. *)

val map_chunked : ?chunk:int -> t option -> ('a -> 'b) -> 'a array -> 'b array
(** Likewise for {!parallel_map_chunked}: the right dispatch for large
    arrays of cheap tasks (Monte-Carlo trials). *)
