(* Canonical form: a sorted array of pairwise disjoint, non-touching,
   non-empty intervals.  Uniqueness of the form is what makes [equal]
   structural and what lets point queries binary-search: for any
   instant there is at most one candidate member (the rightmost whose
   [lo] is <= the instant).  All set algebra is a linear merge of two
   sorted arrays; all point queries are O(log n). *)
type t = Interval.t array

let empty = [||]
let is_empty s = Array.length s = 0
let single iv = [| iv |]

let arr_of_rev_list rev =
  let n = List.length rev in
  match rev with
  | [] -> [||]
  | hd :: _ ->
      let arr = Array.make n hd in
      let rec fill i = function
        | [] -> ()
        | iv :: tl ->
            arr.(i) <- iv;
            fill (i - 1) tl
      in
      fill (n - 1) rev;
      arr

let of_list ivs =
  let sorted = List.sort Interval.compare ivs in
  let rec merge acc current rest =
    match rest with
    | [] -> arr_of_rev_list (current :: acc)
    | iv :: tl ->
        if Interval.touches current iv then merge acc (Interval.hull current iv) tl
        else merge (current :: acc) iv tl
  in
  match sorted with [] -> empty | hd :: tl -> merge [] hd tl

let intervals s = Array.to_list s

(* Rightmost member with [lo <= x], the only possible cover of [x]. *)
let locate s x =
  let n = Array.length s in
  if n = 0 || x < s.(0).Interval.lo then -1
  else begin
    (* Invariant: s.(lo).lo <= x, s.(hi).lo > x (hi may be n). *)
    let lo = ref 0 and hi = ref n in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if s.(mid).Interval.lo <= x then lo := mid else hi := mid
    done;
    !lo
  end

let covering s x =
  let i = locate s x in
  if i >= 0 && x < s.(i).Interval.hi then Some s.(i) else None

let mem s x = Option.is_some (covering s x)

let contains_interval s iv =
  match covering s iv.Interval.lo with
  | Some member -> Interval.contains member iv
  | None -> false

(* Linear merge of two canonical arrays, hulling touching runs. *)
let union a b =
  if is_empty a then b
  else if is_empty b then a
  else begin
    let na = Array.length a and nb = Array.length b in
    let acc = ref [] and i = ref 0 and j = ref 0 in
    let next () =
      if !i < na && (!j >= nb || Interval.compare a.(!i) b.(!j) <= 0) then begin
        let iv = a.(!i) in
        incr i;
        iv
      end
      else begin
        let iv = b.(!j) in
        incr j;
        iv
      end
    in
    let current = ref (next ()) in
    while !i < na || !j < nb do
      let iv = next () in
      if Interval.touches !current iv then current := Interval.hull !current iv
      else begin
        acc := !current :: !acc;
        current := iv
      end
    done;
    arr_of_rev_list (!current :: !acc)
  end

let add s iv = union s (single iv)

(* Sweep both arrays; every overlap is emitted.  Pieces inherit the
   gaps of their parents, so the output is canonical as built. *)
let inter a b =
  let na = Array.length a and nb = Array.length b in
  let acc = ref [] and i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    (match Interval.inter x y with
    | Some iv -> acc := iv :: !acc
    | None -> ());
    match Float.compare x.Interval.hi y.Interval.hi with
    | c when c < 0 -> incr i
    | c when c > 0 -> incr j
    | _ ->
        incr i;
        incr j
  done;
  arr_of_rev_list !acc

(* Gaps of the clipped set inside [span]; gaps of a canonical set are
   separated by non-empty members, so the result is canonical. *)
let complement s ~span =
  let clipped = inter s [| span |] in
  let acc = ref [] and cursor = ref span.Interval.lo in
  Array.iter
    (fun iv ->
      (match Interval.make_opt ~lo:!cursor ~hi:iv.Interval.lo with
      | Some gap -> acc := gap :: !acc
      | None -> ());
      cursor := iv.Interval.hi)
    clipped;
  (match Interval.make_opt ~lo:!cursor ~hi:span.Interval.hi with
  | Some gap -> acc := gap :: !acc
  | None -> ());
  arr_of_rev_list !acc

let diff a b =
  if is_empty a then empty
  else begin
    let span = Interval.hull a.(0) a.(Array.length a - 1) in
    inter a (complement b ~span)
  end

let total_length s = Array.fold_left (fun acc iv -> acc +. Interval.length iv) 0. s
let cardinal = Array.length

(* Canonical ⇒ lo0 < hi0 < lo1 < hi1 < …, so emitting endpoints in
   order is already sorted with each endpoint once. *)
let boundaries s =
  Array.fold_left (fun acc iv -> iv.Interval.hi :: iv.Interval.lo :: acc) [] s
  |> List.rev

let fold f s init = Array.fold_left (fun acc iv -> f iv acc) init s
let iter f s = Array.iter f s
let subset a b = is_empty (diff a b)

let equal a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri (fun k iv -> if not (Interval.equal iv b.(k)) then ok := false) a;
       !ok
     end

let pp ppf s =
  Format.fprintf ppf "{%a}" (Format.pp_print_list Interval.pp) (Array.to_list s)
