(** Crash dumps over the {!Tmedb_obs.Flight} recorder.

    {!install} arms the flight recorder and returns a dump closure
    that writes a [tmedb.crash/1] JSON — the last-K span events per
    domain, the full counter snapshot, and counter deltas since
    arming — to a fixed path.  Three triggers use it:
    - {!guard} on an uncaught exception (dump, then re-raise with the
      original backtrace);
    - [SIGUSR1], installed by {!install} (dump and keep running);
    - a {!Tmedb_report.Watchdog} deadline (the caller passes the dump
      closure as [on_trip]).

    Event timestamps in the dump are origin-relative seconds recorded
    by [lib/obs]; the document's own [timestamp] is caller-injected
    (ledger discipline) and [null] when omitted. *)

val crash_doc : ?timestamp:string -> reason:string -> unit -> Json.t
(** The [tmedb.crash/1] document for the current flight-recorder
    contents: [{"schema", "reason", "timestamp", "ring_capacity",
    "counters", "counter_deltas", "recent_events"}]. *)

val install :
  ?timestamp:string -> ?capacity:int -> path:string -> unit -> reason:string -> unit
(** [install ~path ()] arms {!Tmedb_obs.Flight.arm} (with [capacity]
    events per domain if given), installs a [SIGUSR1] handler that
    dumps to [path], and returns the dump closure for the other
    triggers.  Dumping overwrites [path]; each dump re-reads the rings,
    so later dumps see later events. *)

val guard : (reason:string -> unit) -> (unit -> 'a) -> 'a
(** [guard dump f] runs [f ()]; on an uncaught exception it calls
    [dump] with the exception as reason and re-raises with the
    original backtrace. *)
