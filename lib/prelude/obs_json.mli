(** JSON exporters for the {!Tmedb_obs} telemetry registry, built on
    {!Json} (so they round-trip with the same parser the bench
    baselines use).

    Two documents:
    - the {e metrics snapshot} ([--metrics] on the CLI and bench):
      every registered counter, timer and histogram plus per-span
      allocation totals, schema
      [{ "schema": "tmedb.metrics/1", "counters": {name: n, ...},
         "timers": {name: {"seconds": s, "count": k}, ...},
         "histograms": {name: {"count": n, "sum": s, "min": a,
                               "max": b, "p50": p, "p90": q,
                               "p99": r}, ...},
         "spans": {name: {"count": n, "minor_words": m,
                          "major_words": j}, ...} }];
    - the {e span trace} ([--trace]): Chrome [trace_event]-format JSON
      ([{ "displayTimeUnit": "ms", "traceEvents": [...] }] with
      ["B"]/["E"] phase events), loadable directly in
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.
      Domains map to {e stable dense} Chrome thread ids (sorted domain
      ids number the lanes 0, 1, ... and a ["thread_name"] metadata
      row labels each), so per-worker lanes render identically run to
      run; End events carry the span's minor/major alloc-word deltas
      as [args]; timestamps are microseconds since
      {!Tmedb_obs.origin}, clamped monotone per domain so a wall-clock
      wobble cannot unnest a span. *)

val metrics_of_snapshot : Tmedb_obs.snapshot -> Json.t
(** The metrics document for an explicit snapshot (used by tests). *)

val metrics : unit -> Json.t
(** [metrics_of_snapshot (Tmedb_obs.snapshot ())]. *)

val trace_of_events : Tmedb_obs.event list -> Json.t
(** The Chrome [trace_event] document for an explicit event list
    (used by tests).  Events must be grouped per domain in recording
    order, as {!Tmedb_obs.events} returns them. *)

val trace : unit -> Json.t
(** [trace_of_events (Tmedb_obs.events ())]. *)

val write_doc : path:string -> indent:int -> Json.t -> unit
(** Write any document to [path] with a trailing newline ([indent:0]
    for compact output) — shared by the telemetry, profile and crash
    exporters. *)

val write_metrics : path:string -> unit
(** Write {!metrics} to [path], pretty-printed, with a trailing
    newline. *)

val write_trace : path:string -> unit
(** Write {!trace} to [path] (compact — span files get large). *)
