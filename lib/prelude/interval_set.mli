(** Finite unions of disjoint half-open intervals, kept sorted and
    normalised (no empty members, no touching neighbours).

    This is the representation of the paper's deterministic presence
    function restricted to one edge: the set of times at which the edge
    exists.  Complement/intersection/union implement the partition
    algebra of Section V.

    The canonical form is a sorted array of non-touching members, so it
    is unique for a given set of instants: point queries ([mem],
    [covering], [contains_interval]) binary-search in O(log n), the set
    algebra ([union], [inter], [diff], [complement]) is a linear merge
    in O(m + n), and [equal] is structural.  n below is {!cardinal}. *)

type t

val empty : t
(** The set with no instants.  O(1). *)

val is_empty : t -> bool
(** Whether the set has no instants.  O(1). *)

val single : Interval.t -> t
(** The set of one interval.  O(1). *)

val of_list : Interval.t list -> t
(** Normalises arbitrary (possibly overlapping, unsorted) intervals.
    O(k log k) for k input intervals. *)

val intervals : t -> Interval.t list
(** Sorted disjoint members.  O(n). *)

val add : t -> Interval.t -> t
(** The set extended by one interval (merging any members it touches).
    O(n). *)

val union : t -> t -> t
(** Instants in either set.  Linear merge, O(m + n). *)

val inter : t -> t -> t
(** Instants in both sets.  Linear sweep, O(m + n). *)

val diff : t -> t -> t
(** Instants of the first set not in the second.  O(m + n). *)

val complement : t -> span:Interval.t -> t
(** Times inside [span] not covered by the set.  O(n). *)

val mem : t -> float -> bool
(** Whether an instant is covered.  Binary search, O(log n). *)

val total_length : t -> float
(** Sum of member lengths (Lebesgue measure of the set).  O(n). *)

val cardinal : t -> int
(** Number of disjoint intervals.  O(1). *)

val covering : t -> float -> Interval.t option
(** The member interval containing the given instant, if any — unique
    because members are disjoint.  Binary search, O(log n). *)

val boundaries : t -> float list
(** Sorted endpoints of all member intervals (each endpoint once; the
    canonical form makes every endpoint distinct).  O(n). *)

val fold : (Interval.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over members in ascending order.  O(n). *)

val iter : (Interval.t -> unit) -> t -> unit
(** Iterate over members in ascending order.  O(n). *)

val subset : t -> t -> bool
(** [subset a b]: every instant of [a] lies in [b].  O(m + n). *)

val equal : t -> t -> bool
(** Same instants (canonical form makes this structural).  O(n). *)

val contains_interval : t -> Interval.t -> bool
(** Whole interval covered by a single member (hence by the set).
    Binary search, O(log n). *)

val pp : Format.formatter -> t -> unit
(** [{[lo,hi) [lo,hi) …}], members in ascending order.  O(n). *)
