(* Span-tree attribution over the deterministic telemetry event
   stream.  The fold walks each domain's (seq-ordered) events with an
   explicit stack and accumulates into *logical-path* nodes:

   - pool frames are transparent.  A ["pool.task"] span carries its
     submitter's logical path in its ["ctx"] attribute, so work
     executed on a worker (or drain-helping caller) domain re-roots
     under the span that submitted it — which is exactly where the
     same work nests when `--jobs 1` runs it inline.  ["pool.steal"]
     frames pass their parent path through.  Neither becomes a node,
     and their own bookkeeping allocations attribute nowhere.
   - a ["planner.run"] frame renders as [planner.run:<name>] using its
     ["planner"] attribute, so per-planner subtrees stay separate.

   Node *counts* along logical paths are therefore independent of
   --jobs and of the adaptive chunking heuristic (pool nodes are
   excluded; everything else runs once per logical occurrence), which
   is what lets profile.json and profile.folded be byte-deterministic.
   Wall time and alloc words are faithful measurements and hence vary
   run to run; they go only to the human-facing artifacts
   (profile_detail.json, profile_wall.folded, flamegraph.html). *)

type node = {
  path : string list;  (* logical path, root-first, display names *)
  count : int;  (* closed spans at this path *)
  wall_ns : float;  (* Σ span durations (total) *)
  wall_self_ns : float;  (* total minus direct children's totals *)
  minor_words : float;  (* Σ minor-heap alloc deltas (total) *)
  minor_self_words : float;
  major_words : float;
  major_self_words : float;
}

type interval = {
  i_domain : int;  (* raw domain id *)
  i_start : float;  (* seconds since Tmedb_obs.origin *)
  i_stop : float;
  i_kind : string;  (* "task", "steal" or the span name *)
}

type lane = {
  lane_domain : int;
  lane_intervals : interval list;  (* start-ordered *)
  lane_busy_s : float;
  lane_steals : int;
}

type timeline = {
  lanes : lane list;  (* sorted by domain id *)
  t_begin : float;  (* earliest event, seconds since origin *)
  t_end : float;
  busy_s : float;  (* Σ lane busy *)
  utilization : float;  (* busy / (lanes × makespan), 0 when empty *)
  critical_path_s : float;  (* max(longest interval, busy / lanes) *)
}

type t = { nodes : node list; timeline : timeline }

(* ------------------------------------------------------------------ *)
(* Folding *)

type acc = {
  mutable a_count : int;
  mutable a_wall : float;
  mutable a_wall_self : float;
  mutable a_minor : float;
  mutable a_minor_self : float;
  mutable a_major : float;
  mutable a_major_self : float;
}

type frame = {
  f_name : string;
  f_node : string list option;  (* logical path of this node; None = transparent *)
  f_child_base : string list;  (* logical path its children extend *)
  f_ts : float;
  mutable f_child_wall : float;
  mutable f_child_minor : float;
  mutable f_child_major : float;
}

let path_key path = String.concat ";" path

let split_ctx s =
  if String.equal s "" then [] else String.split_on_char ';' s

let display_name (e : Tmedb_obs.event) =
  match (e.name, List.assoc_opt "planner" e.args) with
  | "planner.run", Some p -> "planner.run:" ^ p
  | _ -> e.name

let is_pool_frame name =
  String.length name >= 5 && String.equal (String.sub name 0 5) "pool."

let of_events events =
  let origin = Tmedb_obs.origin () in
  let nodes : (string, string list * acc) Hashtbl.t = Hashtbl.create 64 in
  let stacks : (int, frame list ref) Hashtbl.t = Hashtbl.create 8 in
  let lanes : (int, interval list ref * float ref * int ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let t_min = ref Float.infinity and t_max = ref Float.neg_infinity in
  let stack_of dom =
    match Hashtbl.find_opt stacks dom with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace stacks dom r;
        r
  in
  let lane_of dom =
    match Hashtbl.find_opt lanes dom with
    | Some l -> l
    | None ->
        let l = (ref [], ref 0., ref 0) in
        Hashtbl.replace lanes dom l;
        l
  in
  let touch_node path =
    let key = path_key path in
    match Hashtbl.find_opt nodes key with
    | Some (_, a) -> a
    | None ->
        let a =
          {
            a_count = 0;
            a_wall = 0.;
            a_wall_self = 0.;
            a_minor = 0.;
            a_minor_self = 0.;
            a_major = 0.;
            a_major_self = 0.;
          }
        in
        Hashtbl.replace nodes key (path, a);
        a
  in
  List.iter
    (fun (e : Tmedb_obs.event) ->
      let ts = e.ts -. origin in
      if ts < !t_min then t_min := ts;
      if ts > !t_max then t_max := ts;
      let stack = stack_of e.domain in
      match e.phase with
      | Tmedb_obs.Begin ->
          let parent_base =
            match !stack with f :: _ -> f.f_child_base | [] -> []
          in
          let f_node, f_child_base =
            if String.equal e.name "pool.task" then
              let base =
                match List.assoc_opt "ctx" e.args with
                | Some c -> split_ctx c
                | None -> []
              in
              (None, base)
            else if is_pool_frame e.name then (None, parent_base)
            else begin
              let path = parent_base @ [ display_name e ] in
              (Some path, path)
            end
          in
          stack :=
            {
              f_name = e.name;
              f_node;
              f_child_base;
              f_ts = ts;
              f_child_wall = 0.;
              f_child_minor = 0.;
              f_child_major = 0.;
            }
            :: !stack
      | Tmedb_obs.End -> (
          match !stack with
          | [] -> () (* unmatched end: nothing to attribute *)
          | f :: rest ->
              stack := rest;
              let wall = Float.max 0. ((ts -. f.f_ts) *. 1e9) in
              let minor, major =
                match e.alloc with
                | Some a -> (a.Tmedb_obs.minor_words, a.Tmedb_obs.major_words)
                | None -> (0., 0.)
              in
              (match f.f_node with
              | Some path ->
                  let a = touch_node path in
                  a.a_count <- a.a_count + 1;
                  a.a_wall <- a.a_wall +. wall;
                  a.a_wall_self <- a.a_wall_self +. Float.max 0. (wall -. f.f_child_wall);
                  a.a_minor <- a.a_minor +. minor;
                  a.a_minor_self <-
                    a.a_minor_self +. Float.max 0. (minor -. f.f_child_minor);
                  a.a_major <- a.a_major +. major;
                  a.a_major_self <-
                    a.a_major_self +. Float.max 0. (major -. f.f_child_major)
              | None -> ());
              (* Propagate totals to the enclosing frame either way, so
                 a drain-helping caller's self excludes helped work. *)
              (match rest with
              | parent :: _ ->
                  parent.f_child_wall <- parent.f_child_wall +. wall;
                  parent.f_child_minor <- parent.f_child_minor +. minor;
                  parent.f_child_major <- parent.f_child_major +. major
              | [] ->
                  (* Top-level span on this domain: a timeline interval. *)
                  let ivs, busy, _ = lane_of e.domain in
                  let i_kind =
                    if String.equal f.f_name "pool.task" then "task"
                    else if String.equal f.f_name "pool.steal" then "steal"
                    else f.f_name
                  in
                  ivs :=
                    { i_domain = e.domain; i_start = f.f_ts; i_stop = ts; i_kind }
                    :: !ivs;
                  busy := !busy +. Float.max 0. (ts -. f.f_ts));
              if String.equal f.f_name "pool.steal" then begin
                let _, _, steals = lane_of e.domain in
                incr steals
              end))
    events;
  let node_list =
    Hashtbl.fold
      (fun _ (path, a) acc ->
        {
          path;
          count = a.a_count;
          wall_ns = a.a_wall;
          wall_self_ns = a.a_wall_self;
          minor_words = a.a_minor;
          minor_self_words = a.a_minor_self;
          major_words = a.a_major;
          major_self_words = a.a_major_self;
        }
        :: acc)
      nodes []
    |> List.filter (fun n -> n.count > 0)
    |> List.sort (fun a b -> String.compare (path_key a.path) (path_key b.path))
  in
  let lane_list =
    Hashtbl.fold
      (fun dom (ivs, busy, steals) acc ->
        {
          lane_domain = dom;
          lane_intervals =
            List.sort (fun a b -> Float.compare a.i_start b.i_start) !ivs;
          lane_busy_s = !busy;
          lane_steals = !steals;
        }
        :: acc)
      lanes []
    |> List.sort (fun a b -> Int.compare a.lane_domain b.lane_domain)
  in
  let t0 = if Float.is_finite !t_min then !t_min else 0. in
  let t1 = if Float.is_finite !t_max then !t_max else 0. in
  let busy_s = List.fold_left (fun s l -> s +. l.lane_busy_s) 0. lane_list in
  let nlanes = List.length lane_list in
  let makespan = Float.max 0. (t1 -. t0) in
  let utilization =
    if nlanes = 0 || makespan <= 0. then 0.
    else busy_s /. (float_of_int nlanes *. makespan)
  in
  let longest =
    List.fold_left
      (fun m l ->
        List.fold_left
          (fun m iv -> Float.max m (iv.i_stop -. iv.i_start))
          m l.lane_intervals)
      0. lane_list
  in
  let critical_path_s =
    if nlanes = 0 then 0.
    else Float.max longest (busy_s /. float_of_int nlanes)
  in
  {
    nodes = node_list;
    timeline =
      {
        lanes = lane_list;
        t_begin = t0;
        t_end = t1;
        busy_s;
        utilization;
        critical_path_s;
      };
  }

(* ------------------------------------------------------------------ *)
(* Documents *)

let timestamp_field = function
  | Some ts -> ("timestamp", Json.Str ts)
  | None -> ("timestamp", Json.Null)

let profile_doc ?timestamp t =
  Json.Obj
    [
      ("schema", Json.Str "tmedb.profile/1");
      timestamp_field timestamp;
      ( "nodes",
        Json.Obj
          (List.map
             (fun n ->
               (path_key n.path, Json.Obj [ ("count", Json.Num (float_of_int n.count)) ]))
             t.nodes) );
    ]

let detail_doc ?timestamp t =
  let tl = t.timeline in
  Json.Obj
    [
      ("schema", Json.Str "tmedb.profile_detail/1");
      timestamp_field timestamp;
      ( "nodes",
        Json.Obj
          (List.map
             (fun n ->
               ( path_key n.path,
                 Json.Obj
                   [
                     ("count", Json.Num (float_of_int n.count));
                     ("wall_ns", Json.Num n.wall_ns);
                     ("wall_self_ns", Json.Num n.wall_self_ns);
                     ("minor_words", Json.Num n.minor_words);
                     ("minor_self_words", Json.Num n.minor_self_words);
                     ("major_words", Json.Num n.major_words);
                     ("major_self_words", Json.Num n.major_self_words);
                   ] ))
             t.nodes) );
      ( "timeline",
        Json.Obj
          [
            ("begin_s", Json.Num tl.t_begin);
            ("end_s", Json.Num tl.t_end);
            ("busy_s", Json.Num tl.busy_s);
            ("utilization", Json.Num tl.utilization);
            ("critical_path_s", Json.Num tl.critical_path_s);
            ( "lanes",
              Json.List
                (List.map
                   (fun l ->
                     Json.Obj
                       [
                         ("domain", Json.Num (float_of_int l.lane_domain));
                         ("busy_s", Json.Num l.lane_busy_s);
                         ("steals", Json.Num (float_of_int l.lane_steals));
                         ( "intervals",
                           Json.Num (float_of_int (List.length l.lane_intervals)) );
                       ])
                   tl.lanes) );
          ] );
    ]

let folded_counts t =
  let b = Buffer.create 1024 in
  List.iter
    (fun n -> Buffer.add_string b (Printf.sprintf "%s %d\n" (path_key n.path) n.count))
    t.nodes;
  Buffer.contents b

let folded_wall t =
  let b = Buffer.create 1024 in
  List.iter
    (fun n ->
      let us = int_of_float (n.wall_self_ns /. 1e3) in
      if us > 0 then Buffer.add_string b (Printf.sprintf "%s %d\n" (path_key n.path) us))
    t.nodes;
  Buffer.contents b

let top_self t k =
  List.sort (fun a b -> Float.compare b.wall_self_ns a.wall_self_ns) t.nodes
  |> List.filteri (fun i _ -> i < k)

(* ------------------------------------------------------------------ *)
(* Self-contained HTML: a server-side-rendered SVG flamegraph over
   wall self/total time plus the per-worker timeline.  No external
   assets, so the file opens anywhere. *)

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | '\'' -> Buffer.add_string b "&#39;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Deterministic warm hue from the frame name. *)
let color_of name =
  let h = ref 17 in
  String.iter (fun c -> h := ((!h * 31) + Char.code c) land 0xFFFFFF) name;
  let hue = !h mod 55 in
  (* 0..55 degrees: red through yellow, classic flamegraph palette *)
  Printf.sprintf "hsl(%d,%d%%,%d%%)" hue (60 + (!h / 55 mod 30)) (52 + (!h / 1650 mod 12))

let fmt_seconds ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else Printf.sprintf "%.0f µs" (ns /. 1e3)

let fmt_words w =
  if Float.abs w >= 1e9 then Printf.sprintf "%.2fG" (w /. 1e9)
  else if Float.abs w >= 1e6 then Printf.sprintf "%.2fM" (w /. 1e6)
  else if Float.abs w >= 1e3 then Printf.sprintf "%.1fk" (w /. 1e3)
  else Printf.sprintf "%.0f" w

let html t =
  let b = Buffer.create 16384 in
  let tl = t.timeline in
  let width = 1200. in
  let row_h = 18. in
  (* Tree over the node list: children of [path] are nodes one segment
     deeper sharing the prefix.  Layout width of a node is its wall
     self plus its children's layout widths — re-rooted subtrees can
     overlap their parent in real time, so plain totals could exceed
     the lane. *)
  let children path =
    let d = List.length path in
    List.filter
      (fun n ->
        List.length n.path = d + 1
        &&
        let rec prefix a b =
          match (a, b) with
          | [], _ -> true
          | x :: xs, y :: ys -> String.equal x y && prefix xs ys
          | _ :: _, [] -> false
        in
        prefix path n.path)
      t.nodes
  in
  let rec layout_w n = n.wall_self_ns +. List.fold_left (fun s c -> s +. layout_w c) 0. (children n.path) in
  let roots = children [] in
  let total_w = List.fold_left (fun s n -> s +. layout_w n) 0. roots in
  let max_depth = List.fold_left (fun m n -> Stdlib.max m (List.length n.path)) 1 t.nodes in
  let fg_h = (float_of_int max_depth *. row_h) +. 4. in
  Buffer.add_string b
    "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n\
     <title>tmedb profile</title>\n\
     <style>body{font:13px sans-serif;margin:16px;background:#fafafa;color:#222}\n\
     h1{font-size:17px}h2{font-size:14px;margin-top:24px}\n\
     svg{background:#fff;border:1px solid #ddd}\n\
     .meta{color:#555}rect:hover{stroke:#000;stroke-width:0.5}</style></head><body>\n";
  Buffer.add_string b "<h1>tmedb profile</h1>\n";
  Buffer.add_string b
    (Printf.sprintf
       "<p class=\"meta\">makespan %.3f s · busy %.3f s over %d lane(s) · utilization \
        %.0f%% · critical-path estimate %.3f s</p>\n"
       (tl.t_end -. tl.t_begin) tl.busy_s (List.length tl.lanes)
       (tl.utilization *. 100.) tl.critical_path_s);
  (* Flamegraph *)
  Buffer.add_string b "<h2>Flamegraph (wall self time, pool frames re-rooted)</h2>\n";
  Buffer.add_string b
    (Printf.sprintf "<svg width=\"%.0f\" height=\"%.0f\">\n" width fg_h);
  if total_w > 0. then begin
    let rec render x0 depth n =
      let w = layout_w n /. total_w *. width in
      if w >= 0.25 then begin
        let y = fg_h -. (float_of_int (depth + 1) *. row_h) in
        let name = List.nth n.path (List.length n.path - 1) in
        let tip =
          Printf.sprintf "%s — %d× · total %s · self %s · minor %s w (self %s)"
            (path_key n.path) n.count (fmt_seconds n.wall_ns)
            (fmt_seconds n.wall_self_ns) (fmt_words n.minor_words)
            (fmt_words n.minor_self_words)
        in
        Buffer.add_string b
          (Printf.sprintf
             "<rect x=\"%.2f\" y=\"%.1f\" width=\"%.2f\" height=\"%.1f\" \
              fill=\"%s\"><title>%s</title></rect>\n"
             x0 y (Float.max 0.5 (w -. 0.5)) (row_h -. 1.) (color_of name)
             (html_escape tip));
        if w > 40. then
          Buffer.add_string b
            (Printf.sprintf
               "<text x=\"%.2f\" y=\"%.1f\" font-size=\"11\" \
                pointer-events=\"none\">%s</text>\n"
               (x0 +. 3.) (y +. 13.)
               (html_escape
                  (let max_chars = int_of_float (w /. 6.5) in
                   if String.length name <= max_chars then name
                   else if max_chars <= 1 then ""
                   else String.sub name 0 (max_chars - 1) ^ "…")));
        let cx = ref (x0 +. (n.wall_self_ns /. total_w *. width)) in
        List.iter
          (fun c ->
            render !cx (depth + 1) c;
            cx := !cx +. (layout_w c /. total_w *. width))
          (children n.path)
      end
    in
    let x = ref 0. in
    List.iter
      (fun n ->
        render !x 0 n;
        x := !x +. (layout_w n /. total_w *. width))
      roots
  end
  else Buffer.add_string b "<text x=\"8\" y=\"20\">no closed spans</text>\n";
  Buffer.add_string b "</svg>\n";
  (* Timeline *)
  let lane_h = 22. in
  let nlanes = List.length tl.lanes in
  let tlh = (float_of_int (Stdlib.max 1 nlanes) *. lane_h) +. 4. in
  let span = Float.max 1e-9 (tl.t_end -. tl.t_begin) in
  Buffer.add_string b
    "<h2>Worker timeline (green: spans/tasks, orange: steals, white: idle)</h2>\n";
  Buffer.add_string b (Printf.sprintf "<svg width=\"%.0f\" height=\"%.0f\">\n" width tlh);
  List.iteri
    (fun i l ->
      let y = (float_of_int i *. lane_h) +. 2. in
      Buffer.add_string b
        (Printf.sprintf
           "<text x=\"4\" y=\"%.1f\" font-size=\"10\" fill=\"#777\">d%d · %.0f%% busy · \
            %d steal(s)</text>\n"
           (y +. 9.) l.lane_domain
           (l.lane_busy_s /. span *. 100.)
           l.lane_steals);
      List.iter
        (fun iv ->
          let x0 = (iv.i_start -. tl.t_begin) /. span *. width in
          let w = Float.max 0.4 ((iv.i_stop -. iv.i_start) /. span *. width) in
          let fill = if String.equal iv.i_kind "steal" then "#e8962f" else "#4c9a52" in
          let tip =
            Printf.sprintf "d%d %s %.4f–%.4f s" iv.i_domain iv.i_kind iv.i_start
              iv.i_stop
          in
          Buffer.add_string b
            (Printf.sprintf
               "<rect x=\"%.2f\" y=\"%.1f\" width=\"%.2f\" height=\"%.1f\" \
                fill=\"%s\" opacity=\"0.85\"><title>%s</title></rect>\n"
               x0 (y +. 10.) w (lane_h -. 12.) fill (html_escape tip)))
        l.lane_intervals)
    tl.lanes;
  Buffer.add_string b "</svg>\n";
  (* Hot-self table *)
  Buffer.add_string b "<h2>Top self time</h2>\n<table cellspacing=\"0\">\n";
  Buffer.add_string b
    "<tr><td><b>node</b></td><td style=\"padding-left:12px\"><b>count</b></td>\
     <td style=\"padding-left:12px\"><b>self</b></td>\
     <td style=\"padding-left:12px\"><b>total</b></td>\
     <td style=\"padding-left:12px\"><b>minor self</b></td></tr>\n";
  List.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf
           "<tr><td>%s</td><td style=\"padding-left:12px\">%d</td>\
            <td style=\"padding-left:12px\">%s</td>\
            <td style=\"padding-left:12px\">%s</td>\
            <td style=\"padding-left:12px\">%s</td></tr>\n"
           (html_escape (path_key n.path))
           n.count
           (fmt_seconds n.wall_self_ns)
           (fmt_seconds n.wall_ns)
           (fmt_words n.minor_self_words)))
    (top_self t 20);
  Buffer.add_string b "</table>\n</body></html>\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Artifact writer *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if String.length parent < String.length dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_artifacts ?timestamp ~dir () =
  mkdir_p dir;
  let events = Tmedb_obs.events () in
  let t = of_events events in
  let p name = Filename.concat dir name in
  write_file (p "profile.json") (Json.to_string ~indent:2 (profile_doc ?timestamp t) ^ "\n");
  write_file (p "profile_detail.json")
    (Json.to_string ~indent:2 (detail_doc ?timestamp t) ^ "\n");
  write_file (p "profile.folded") (folded_counts t);
  write_file (p "profile_wall.folded") (folded_wall t);
  write_file (p "flamegraph.html") (html t);
  t
