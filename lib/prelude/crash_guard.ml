(* Black-box forensics over the Tmedb_obs flight recorder.  All state
   lives in the returned closure — nothing at the toplevel — so the
   module stays clean under lint rule R4; all timestamps in the dump
   are origin-relative event times recorded by lib/obs, so the module
   reads no wall clock itself (rule R3). *)

let event_row (e : Tmedb_obs.event) ~origin =
  let base =
    [
      ("name", Json.Str e.name);
      ("domain", Json.Num (float_of_int e.domain));
      ("seq", Json.Num (float_of_int e.seq));
      ("ts_s", Json.Num (e.ts -. origin));
      ( "phase",
        Json.Str (match e.phase with Tmedb_obs.Begin -> "B" | Tmedb_obs.End -> "E") );
    ]
  in
  let args =
    match e.args with
    | [] -> []
    | kvs -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) kvs)) ]
  in
  let alloc =
    match e.alloc with
    | Some a ->
        [
          ("minor_words", Json.Num a.Tmedb_obs.minor_words);
          ("major_words", Json.Num a.Tmedb_obs.major_words);
        ]
    | None -> []
  in
  Json.Obj (base @ args @ alloc)

let crash_doc ?timestamp ~reason () =
  let origin = Tmedb_obs.origin () in
  let counters = (Tmedb_obs.snapshot ()).Tmedb_obs.counters in
  let baseline = Tmedb_obs.Flight.baseline () in
  let deltas =
    List.filter_map
      (fun (name, v) ->
        let b = Option.value (List.assoc_opt name baseline) ~default:0 in
        if v - b <> 0 then Some (name, Json.Num (float_of_int (v - b))) else None)
      counters
  in
  Json.Obj
    [
      ("schema", Json.Str "tmedb.crash/1");
      ("reason", Json.Str reason);
      ( "timestamp",
        match timestamp with Some ts -> Json.Str ts | None -> Json.Null );
      ("ring_capacity", Json.Num (float_of_int (Tmedb_obs.Flight.capacity ())));
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) counters) );
      ("counter_deltas", Json.Obj deltas);
      ( "recent_events",
        Json.List (List.map (event_row ~origin) (Tmedb_obs.Flight.recent ())) );
    ]

let install ?timestamp ?capacity ~path () =
  Tmedb_obs.Flight.arm ?capacity ();
  let dump ~reason =
    Obs_json.write_doc ~path ~indent:2 (crash_doc ?timestamp ~reason ())
  in
  (* SIGUSR1: dump the black box and keep running — `kill -USR1 <pid>`
     answers "what is that wedged solve doing" without killing it.
     Platforms without the signal (or non-main contexts that cannot
     install handlers) just skip this trigger. *)
  (try Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> dump ~reason:"sigusr1"))
   with Invalid_argument _ | Sys_error _ -> ());
  dump

let guard dump f =
  try f ()
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    dump ~reason:("uncaught exception: " ^ Printexc.to_string e);
    Printexc.raise_with_backtrace e bt
