(** Numeric comparison of two JSON documents — the regression gate
    behind [tmedb report diff] and [bench regress].

    Both documents are flattened to dotted-path numeric leaves
    (["metrics.counters.dst.solves"], ["schedule[0].cost"], …);
    non-numeric leaves (strings, nulls, bools — timestamps, digests)
    are ignored.  A key present on only one side always exceeds any
    threshold; a two-sided key exceeds when its relative change
    [|b - a| / |a|] does. *)

open Tmedb_prelude

type delta = {
  key : string;  (** Dotted path of the leaf. *)
  a : float option;  (** Value in the first document, if present. *)
  b : float option;  (** Value in the second document, if present. *)
}
(** One compared leaf. *)

val flatten : Json.t -> (string * float) list
(** Numeric leaves as key-sorted [(dotted path, value)] pairs. *)

val diff : Json.t -> Json.t -> delta list
(** Merge the two flattenings over the union of keys, key-sorted. *)

val rel_change : delta -> float option
(** [|b - a| / |a|]; [Some infinity] when [a = 0 <> b], [Some 0.] when
    equal, [None] for one-sided keys. *)

val changed : delta -> bool
(** Whether the two sides differ (one-sided keys count as changed). *)

val exceeds : threshold:float -> delta -> bool
(** Whether this delta trips the gate at [threshold] (a relative
    change, e.g. [0.05] for 5%). *)

val exceeding : threshold:float -> delta list -> delta list
(** The deltas that {!exceeds} the threshold. *)

val to_json : threshold:float -> delta list -> Json.t
(** Machine-readable report ([tmedb.diff/1]): threshold, compared-key
    count, and every changed key with both sides, relative change and
    its gate verdict. *)

val render : threshold:float -> delta list -> string
(** Human-readable report: a summary line, then one line per changed
    key, gate-tripping keys marked with ["!"]. *)
