(* The only wall-clock read outside lib/obs and bench (lint rule R3,
   allowlisted): ledger timestamps are injected by the caller so the
   artifact itself stays deterministic, and this is where a caller who
   *wants* a real timestamp gets one. *)

let now_iso8601 () =
  let t = Unix.gettimeofday () in
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let now_seconds () = Unix.gettimeofday ()
