(** The [tmedb.run/1] run ledger: one JSON artifact that makes a run
    self-describing — configuration, an input digest, the
    deterministic slice of the telemetry snapshot, the schedule, and
    the {!Provenance} log explaining each schedule entry.

    Determinism contract: {!write} output is a pure function of the
    ledger value — keys are emitted sorted, the caller injects the
    timestamp (or leaves it [null]), and {!metrics_of_snapshot} drops
    every snapshot component that varies run-to-run (wall-clock
    seconds, allocation words, worker-count-dependent ["pool."]
    entries).  Two runs on identical inputs with the same seed
    therefore produce byte-identical files at any [--jobs]. *)

open Tmedb_prelude

val schema : string
(** The schema tag, ["tmedb.run/1"]. *)

type entry = { relay : int; time : float; cost : float }
(** One schedule transmission, kept as a plain triple so this library
    stays below [lib/core] in the dependency order. *)

type t = {
  timestamp : string option;  (** Caller-injected; [None] emits [null]. *)
  config : (string * Json.t) list;  (** Run parameters (seed, figure, channel, …). *)
  input_digest : string;  (** Hex digest identifying the input instance. *)
  summary : (string * Json.t) list;  (** Headline results (total cost, feasibility, …). *)
  metrics : Json.t;  (** {!metrics_of_snapshot} of the run's telemetry. *)
  provenance : Provenance.event list;  (** Emission-order provenance log. *)
  schedule : entry list;  (** The schedule the run produced. *)
}
(** A run ledger in memory. *)

val digest_string : string -> string
(** Hex MD5 of a string — the canonical {!t.input_digest} for an
    instance serialised to text. *)

val metrics_of_snapshot : Tmedb_obs.snapshot -> Json.t
(** Deterministic projection of a telemetry snapshot: counters, timer
    {e hit counts} and histogram summaries, all minus the ["pool."]
    prefix; never timer seconds or allocation words. *)

val make :
  ?timestamp:string ->
  config:(string * Json.t) list ->
  input_digest:string ->
  summary:(string * Json.t) list ->
  snapshot:Tmedb_obs.snapshot ->
  provenance:Provenance.event list ->
  schedule:entry list ->
  unit ->
  t
(** Assemble a ledger, projecting [snapshot] through
    {!metrics_of_snapshot}. *)

val to_json : t -> Json.t
(** The [tmedb.run/1] document; [config] and [summary] keys sorted. *)

val of_json : Json.t -> (t, string) result
(** Parse a document produced by {!to_json}; round-trips. *)

val write : t -> path:string -> unit
(** Write {!to_json} to [path], pretty-printed, trailing newline. *)

val load : path:string -> (t, string) result
(** Read and parse a ledger file; [Error] carries the parse or I/O
    failure. *)

(** The [tmedb.pareto/1] sweep ledger: one JSON artifact per Pareto
    sweep, under the same determinism contract as the run ledger —
    {!Pareto.write} output is a pure function of the value, keys are
    sorted, the timestamp is caller-injected and the metrics
    projection drops everything that varies run-to-run or with
    [--jobs].  Each sweep point is keyed by the canonical string of
    its deadline ({!Pareto.deadline_key}), so {!Diff} flattens a sweep
    into stable per-point dotted paths such as
    ["points.2000.energy"]. *)
module Pareto : sig
  val schema : string
  (** The schema tag, ["tmedb.pareto/1"]. *)

  type point = {
    deadline : float;  (** Grid deadline of the point. *)
    energy : float;  (** Normalised scheduled energy at this deadline. *)
    transmissions : int;  (** Schedule size. *)
    feasible : bool;  (** Feasibility verdict. *)
    unreached : int;  (** Nodes left uncovered. *)
    dominated : bool;  (** Whether another point dominates this one. *)
  }
  (** One sweep point, kept as a plain record so this library stays
      below [lib/core] in the dependency order (mirrors
      {!Tmedb.Pareto.point}). *)

  type t = {
    timestamp : string option;  (** Caller-injected; [None] emits [null]. *)
    config : (string * Json.t) list;  (** Sweep parameters (algorithm, seed, grid, …). *)
    input_digest : string;  (** Hex digest identifying the input instance. *)
    points : point list;  (** One per grid deadline, ascending. *)
    front : float list;  (** Non-dominated deadlines, ascending. *)
    metrics : Json.t;  (** {!metrics_of_snapshot} of the sweep's telemetry. *)
  }
  (** A sweep ledger in memory. *)

  val deadline_key : float -> string
  (** Canonical object key of a point: the compact JSON rendering of
      its deadline (["2000"] for integral values, shortest-round-trip
      decimal otherwise). *)

  val make :
    ?timestamp:string ->
    config:(string * Json.t) list ->
    input_digest:string ->
    points:point list ->
    front:float list ->
    snapshot:Tmedb_obs.snapshot ->
    unit ->
    t
  (** Assemble a sweep ledger, projecting [snapshot] through
      {!metrics_of_snapshot}. *)

  val to_json : t -> Json.t
  (** The [tmedb.pareto/1] document; [config] keys sorted, points
      keyed by {!deadline_key} in grid order. *)

  val of_json : Json.t -> (t, string) result
  (** Parse a document produced by {!to_json}; round-trips. *)

  val write : t -> path:string -> unit
  (** Write {!to_json} to [path], pretty-printed, trailing newline. *)

  val load : path:string -> (t, string) result
  (** Read and parse a sweep ledger file. *)
end
