(** Structured provenance events: why each schedule entry exists.

    The EEDCB pipeline (paper Section VI-A) decides a transmission
    [(relay, time, cost)] through a chain — DTS point selection,
    auxiliary-graph level vertices per DCS cost level, the directed
    Steiner tree choosing the deepest level — and the FR stage
    (Section VI-B) then reallocates its cost.  Emitters in [Eedcb],
    [Aux_graph], [Dst] and [Fr] record one event per decision so a run
    ledger can answer "why did node [i] transmit at [t] with cost
    [w]" after the fact ([tmedb report explain]).

    Like the {!Tmedb_obs} registry, the sink is process-global and off
    by default: {!emit} is a single [Atomic] flag check when disabled,
    and recording never touches algorithm state, so results are
    bit-identical with provenance on or off.  Events are kept in
    emission order; the construction pipeline runs on one domain, so
    that order is deterministic. *)

type event =
  | Stage of { stage : string; detail : string }
      (** Pipeline milestone (e.g. DTS built, tree pruned) with a
          free-form detail string. *)
  | Schedule_entry of {
      node : int;  (** Transmitting node i. *)
      time : float;  (** Transmission instant t (a DTS point of i). *)
      cost : float;  (** Chosen DCS cumulative cost w^k. *)
      point_idx : int;  (** Index l of t in node i's DTS. *)
      level_idx : int;  (** DCS level k (0-based). *)
      covered : int list;
          (** Neighbours served at level k — the union of the DCS
              marginals up to [level_idx], ascending id. *)
      tree_edge : (int * int) option;
          (** Steiner-tree edge (auxiliary-graph vertex ids) whose
              endpoint selected this level; [None] only if the level
              vertex entered the tree with no recorded edge. *)
    }  (** One backbone schedule entry, as extracted from the tree. *)
  | Expansion of { vertex : int; terminals : int }
      (** One greedy Steiner expansion: the intermediate vertex
          realized into the partial tree and how many terminals its
          candidate covered. *)
  | Allocation of {
      relay : int;
      time : float;
      backbone_cost : float;  (** Cost before FR reallocation. *)
      allocated_cost : float;  (** Cost after (0 = transmission dropped). *)
    }  (** One FR energy-allocation decision (paper Eqs. 15–16). *)

val enabled : unit -> bool
(** Whether the sink is recording.  Off at startup. *)

val set_enabled : bool -> unit
(** Turn recording on or off.  Disabling does not clear recorded
    events (use {!reset}). *)

val emit : event -> unit
(** Append one event when enabled; a flag check otherwise.  Guard
    expensive event {e construction} at the call site with
    {!enabled}. *)

val reset : unit -> unit
(** Drop every recorded event. *)

val events : unit -> event list
(** Recorded events in emission order. *)

val to_json : event -> Tmedb_prelude.Json.t
(** Tagged-object encoding with a fixed field order per kind (the
    ledger's byte-stability relies on it). *)

val of_json : Tmedb_prelude.Json.t -> (event, string) result
(** Inverse of {!to_json}; [Error] names the offending field. *)
