open Tmedb_prelude

type event =
  | Stage of { stage : string; detail : string }
  | Schedule_entry of {
      node : int;
      time : float;
      cost : float;
      point_idx : int;
      level_idx : int;
      covered : int list;
      tree_edge : (int * int) option;
    }
  | Expansion of { vertex : int; terminals : int }
  | Allocation of { relay : int; time : float; backbone_cost : float; allocated_cost : float }

(* Global sink, mirroring the lib/obs registry discipline: an Atomic
   flag so the disabled path is one load, a mutex-guarded list for the
   (cold, construction-time) emissions.  EEDCB/FR construction runs on
   one domain, so emission order is the algorithm's own deterministic
   order; the mutex only defends against unconventional callers. *)
let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let sink_mutex = Mutex.create ()
let sink : event list ref = ref [] (* newest first *)

(* R9 suppressed here, at the effect's definition site: the sink mutex
   guards an O(1) list append and is never held across pool scheduling
   or another blocking call, so a task contending on it waits a bounded
   time — not the scheduler-starvation shape blocking-in-task defends
   against. *)
let[@lint.allow "blocking-in-task"] with_sink f =
  Mutex.lock sink_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock sink_mutex) f

let emit e = if Atomic.get enabled_flag then with_sink (fun () -> sink := e :: !sink)
let reset () = with_sink (fun () -> sink := [])
let events () = with_sink (fun () -> List.rev !sink)

(* ------------------------------------------------------------------ *)
(* JSON codec.  Tagged objects with a fixed field order per kind, so
   the ledger's provenance array is byte-stable. *)

let num_i i = Json.Num (float_of_int i)

let to_json = function
  | Stage { stage; detail } ->
      Json.Obj [ ("kind", Json.Str "stage"); ("stage", Json.Str stage); ("detail", Json.Str detail) ]
  | Schedule_entry { node; time; cost; point_idx; level_idx; covered; tree_edge } ->
      Json.Obj
        [
          ("kind", Json.Str "schedule_entry");
          ("node", num_i node);
          ("time", Json.Num time);
          ("cost", Json.Num cost);
          ("dts_point", num_i point_idx);
          ("dcs_level", num_i level_idx);
          ("covered", Json.List (List.map num_i covered));
          ( "tree_edge",
            match tree_edge with
            | Some (u, v) -> Json.List [ num_i u; num_i v ]
            | None -> Json.Null );
        ]
  | Expansion { vertex; terminals } ->
      Json.Obj
        [ ("kind", Json.Str "expansion"); ("vertex", num_i vertex); ("terminals", num_i terminals) ]
  | Allocation { relay; time; backbone_cost; allocated_cost } ->
      Json.Obj
        [
          ("kind", Json.Str "allocation");
          ("relay", num_i relay);
          ("time", Json.Num time);
          ("backbone_cost", Json.Num backbone_cost);
          ("allocated_cost", Json.Num allocated_cost);
        ]

let field name doc =
  match Json.member name doc with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "provenance event: missing field %S" name)

let ( let* ) r f = Result.bind r f

let as_num name v =
  match Json.to_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "provenance event: field %S is not a number" name)

let as_str name v =
  match v with
  | Json.Str s -> Ok s
  | _ -> Error (Printf.sprintf "provenance event: field %S is not a string" name)

let num_field name doc = Result.bind (field name doc) (as_num name)
let int_field name doc = Result.map int_of_float (num_field name doc)
let str_field name doc = Result.bind (field name doc) (as_str name)

let of_json doc =
  let* kind = str_field "kind" doc in
  match kind with
  | "stage" ->
      let* stage = str_field "stage" doc in
      let* detail = str_field "detail" doc in
      Ok (Stage { stage; detail })
  | "schedule_entry" ->
      let* node = int_field "node" doc in
      let* time = num_field "time" doc in
      let* cost = num_field "cost" doc in
      let* point_idx = int_field "dts_point" doc in
      let* level_idx = int_field "dcs_level" doc in
      let* covered_json = field "covered" doc in
      let* covered =
        match Json.to_list covered_json with
        | None -> Error "provenance event: \"covered\" is not a list"
        | Some items ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                let* f = as_num "covered" item in
                Ok (int_of_float f :: acc))
              (Ok []) items
            |> Result.map List.rev
      in
      let* tree_edge =
        match Json.member "tree_edge" doc with
        | None | Some Json.Null -> Ok None
        | Some (Json.List [ u; v ]) ->
            let* u = as_num "tree_edge" u in
            let* v = as_num "tree_edge" v in
            Ok (Some (int_of_float u, int_of_float v))
        | Some _ -> Error "provenance event: \"tree_edge\" is not null or a pair"
      in
      Ok (Schedule_entry { node; time; cost; point_idx; level_idx; covered; tree_edge })
  | "expansion" ->
      let* vertex = int_field "vertex" doc in
      let* terminals = int_field "terminals" doc in
      Ok (Expansion { vertex; terminals })
  | "allocation" ->
      let* relay = int_field "relay" doc in
      let* time = num_field "time" doc in
      let* backbone_cost = num_field "backbone_cost" doc in
      let* allocated_cost = num_field "allocated_cost" doc in
      Ok (Allocation { relay; time; backbone_cost; allocated_cost })
  | other -> Error (Printf.sprintf "provenance event: unknown kind %S" other)
