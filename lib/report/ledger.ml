open Tmedb_prelude

let schema = "tmedb.run/1"

type entry = { relay : int; time : float; cost : float }

type t = {
  timestamp : string option;
  config : (string * Json.t) list;
  input_digest : string;
  summary : (string * Json.t) list;
  metrics : Json.t;
  provenance : Provenance.event list;
  schedule : entry list;
}

let digest_string s = Digest.to_hex (Digest.string s)

(* Deterministic projection of a telemetry snapshot.  Deliberately
   excluded, because they vary run-to-run or with --jobs even on
   identical inputs: timer seconds (wall clock), span allocation words
   (Gc state), and everything under the "pool." prefix (batch counts
   depend on the worker count).  What remains — counters, timer hit
   counts, histogram summaries — is a pure function of the workload. *)
let deterministic name = not (String.length name >= 5 && String.sub name 0 5 = "pool.")

let metrics_of_snapshot (s : Tmedb_obs.snapshot) =
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.filter_map
             (fun (name, v) ->
               if deterministic name then Some (name, Json.Num (float_of_int v)) else None)
             s.Tmedb_obs.counters) );
      ( "timer_hits",
        Json.Obj
          (List.filter_map
             (fun (t : Tmedb_obs.timer_snapshot) ->
               if deterministic t.timer_name then
                 Some (t.timer_name, Json.Num (float_of_int t.hits))
               else None)
             s.Tmedb_obs.timers) );
      ( "histograms",
        Json.Obj
          (List.filter_map
             (fun (h : Tmedb_obs.histogram_snapshot) ->
               if deterministic h.hist_name then
                 Some
                   ( h.hist_name,
                     Json.Obj
                       [
                         ("count", Json.Num (float_of_int h.hist_count));
                         ("sum", Json.Num (float_of_int h.hist_sum));
                         ("min", Json.Num (float_of_int h.hist_min));
                         ("max", Json.Num (float_of_int h.hist_max));
                         ("p50", Json.Num (float_of_int h.p50));
                         ("p90", Json.Num (float_of_int h.p90));
                         ("p99", Json.Num (float_of_int h.p99));
                       ] )
               else None)
             s.Tmedb_obs.histograms) );
    ]

let make ?timestamp ~config ~input_digest ~summary ~snapshot ~provenance ~schedule () =
  {
    timestamp;
    config;
    input_digest;
    summary;
    metrics = metrics_of_snapshot snapshot;
    provenance;
    schedule;
  }

let sort_fields kvs = List.sort (fun (a, _) (b, _) -> String.compare a b) kvs

let entry_to_json e =
  Json.Obj
    [
      ("relay", Json.Num (float_of_int e.relay)); ("time", Json.Num e.time); ("cost", Json.Num e.cost);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("timestamp", match t.timestamp with Some s -> Json.Str s | None -> Json.Null);
      ("config", Json.Obj (sort_fields t.config));
      ("input_digest", Json.Str t.input_digest);
      ("summary", Json.Obj (sort_fields t.summary));
      ("metrics", t.metrics);
      ("schedule", Json.List (List.map entry_to_json t.schedule));
      ("provenance", Json.List (List.map Provenance.to_json t.provenance));
    ]

let ( let* ) r f = Result.bind r f

let field name doc =
  match Json.member name doc with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "ledger: missing field %S" name)

let obj_fields name v =
  match v with
  | Json.Obj kvs -> Ok kvs
  | _ -> Error (Printf.sprintf "ledger: field %S is not an object" name)

let num name v =
  match Json.to_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "ledger: field %S is not a number" name)

let entry_of_json doc =
  let* relay = Result.bind (field "relay" doc) (num "relay") in
  let* time = Result.bind (field "time" doc) (num "time") in
  let* cost = Result.bind (field "cost" doc) (num "cost") in
  Ok { relay = int_of_float relay; time; cost }

let list_of name parse v =
  match Json.to_list v with
  | None -> Error (Printf.sprintf "ledger: field %S is not a list" name)
  | Some items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* x = parse item in
          Ok (x :: acc))
        (Ok []) items
      |> Result.map List.rev

let of_json doc =
  let* s = field "schema" doc in
  let* () =
    match s with
    | Json.Str s when s = schema -> Ok ()
    | Json.Str s -> Error (Printf.sprintf "ledger: schema %S, expected %S" s schema)
    | _ -> Error "ledger: \"schema\" is not a string"
  in
  let* timestamp =
    match Json.member "timestamp" doc with
    | None | Some Json.Null -> Ok None
    | Some (Json.Str s) -> Ok (Some s)
    | Some _ -> Error "ledger: \"timestamp\" is not null or a string"
  in
  let* config = Result.bind (field "config" doc) (obj_fields "config") in
  let* input_digest =
    match Json.member "input_digest" doc with
    | Some (Json.Str s) -> Ok s
    | _ -> Error "ledger: \"input_digest\" is not a string"
  in
  let* summary = Result.bind (field "summary" doc) (obj_fields "summary") in
  let* metrics = field "metrics" doc in
  let* schedule = Result.bind (field "schedule" doc) (list_of "schedule" entry_of_json) in
  let* provenance =
    Result.bind (field "provenance" doc) (list_of "provenance" Provenance.of_json)
  in
  Ok { timestamp; config; input_digest; summary; metrics; provenance; schedule }

let write t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:2 (to_json t));
      output_char oc '\n')

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> Result.bind (Json.parse text) of_json

(* The tmedb.pareto/1 sweep ledger shares the run ledger's determinism
   contract: sorted config keys, caller-injected timestamp, the
   deterministic metrics projection — and additionally keys each sweep
   point by the canonical string of its deadline, so Diff flattens a
   sweep into stable dotted paths ("points.2000.energy"). *)
module Pareto = struct
  let schema = "tmedb.pareto/1"

  type point = {
    deadline : float;
    energy : float;
    transmissions : int;
    feasible : bool;
    unreached : int;
    dominated : bool;
  }

  type t = {
    timestamp : string option;
    config : (string * Json.t) list;
    input_digest : string;
    points : point list;
    front : float list;
    metrics : Json.t;
  }

  let deadline_key d = Json.to_string ~indent:0 (Json.Num d)

  let make ?timestamp ~config ~input_digest ~points ~front ~snapshot () =
    { timestamp; config; input_digest; points; front; metrics = metrics_of_snapshot snapshot }

  let point_to_json p =
    Json.Obj
      [
        ("deadline", Json.Num p.deadline);
        ("energy", Json.Num p.energy);
        ("transmissions", Json.Num (float_of_int p.transmissions));
        ("feasible", Json.Bool p.feasible);
        ("unreached", Json.Num (float_of_int p.unreached));
        ("dominated", Json.Bool p.dominated);
      ]

  let to_json t =
    Json.Obj
      [
        ("schema", Json.Str schema);
        ("timestamp", match t.timestamp with Some s -> Json.Str s | None -> Json.Null);
        ("config", Json.Obj (sort_fields t.config));
        ("input_digest", Json.Str t.input_digest);
        ("points", Json.Obj (List.map (fun p -> (deadline_key p.deadline, point_to_json p)) t.points));
        ("front", Json.List (List.map (fun d -> Json.Num d) t.front));
        ("metrics", t.metrics);
      ]

  let bool name v =
    match v with
    | Json.Bool b -> Ok b
    | _ -> Error (Printf.sprintf "ledger: field %S is not a boolean" name)

  let point_of_json doc =
    let* deadline = Result.bind (field "deadline" doc) (num "deadline") in
    let* energy = Result.bind (field "energy" doc) (num "energy") in
    let* transmissions = Result.bind (field "transmissions" doc) (num "transmissions") in
    let* feasible = Result.bind (field "feasible" doc) (bool "feasible") in
    let* unreached = Result.bind (field "unreached" doc) (num "unreached") in
    let* dominated = Result.bind (field "dominated" doc) (bool "dominated") in
    Ok
      {
        deadline;
        energy;
        transmissions = int_of_float transmissions;
        feasible;
        unreached = int_of_float unreached;
        dominated;
      }

  let of_json doc =
    let* s = field "schema" doc in
    let* () =
      match s with
      | Json.Str s when s = schema -> Ok ()
      | Json.Str s -> Error (Printf.sprintf "ledger: schema %S, expected %S" s schema)
      | _ -> Error "ledger: \"schema\" is not a string"
    in
    let* timestamp =
      match Json.member "timestamp" doc with
      | None | Some Json.Null -> Ok None
      | Some (Json.Str s) -> Ok (Some s)
      | Some _ -> Error "ledger: \"timestamp\" is not null or a string"
    in
    let* config = Result.bind (field "config" doc) (obj_fields "config") in
    let* input_digest =
      match Json.member "input_digest" doc with
      | Some (Json.Str s) -> Ok s
      | _ -> Error "ledger: \"input_digest\" is not a string"
    in
    let* point_fields = Result.bind (field "points" doc) (obj_fields "points") in
    let* points =
      List.fold_left
        (fun acc (_, v) ->
          let* acc = acc in
          let* p = point_of_json v in
          Ok (p :: acc))
        (Ok []) point_fields
      |> Result.map List.rev
    in
    let* front = Result.bind (field "front" doc) (list_of "front" (num "front")) in
    let* metrics = field "metrics" doc in
    Ok { timestamp; config; input_digest; points; front; metrics }

  let write t ~path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string ~indent:2 (to_json t));
        output_char oc '\n')

  let load ~path =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error msg -> Error msg
    | text -> Result.bind (Json.parse text) of_json
end
