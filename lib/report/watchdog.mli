(** Deadline watchdog: fire a forensic callback if a computation runs
    past a wall-clock budget, without interrupting it.

    A watchdog domain polls {!Clock.now_seconds} (~50 Hz) while the
    watched computation runs on the calling domain.  If the deadline
    passes, [on_trip] fires exactly once — typically a
    {!Tmedb_prelude.Crash_guard} dump closure, turning a wedged run
    into a [tmedb.crash/1] black box — and the computation continues
    to completion.  The watchdog never feeds any artifact content;
    wall time only gates {e whether} the trip fires, so results stay
    deterministic. *)

val with_deadline : seconds:float -> on_trip:(unit -> unit) -> (unit -> 'a) -> 'a * bool
(** [with_deadline ~seconds ~on_trip f] runs [f ()] with a [seconds]
    deadline; returns [f]'s result and whether the watchdog tripped.
    The watchdog domain is always joined before returning (on
    exceptions too).  [seconds <= 0.] disables the watchdog (no domain
    is spawned; returns [(f (), false)]). *)
