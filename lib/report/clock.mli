(** The run ledger's single wall-clock source.

    {!Ledger} never reads the clock itself — timestamps are injected
    by the caller so that identical runs produce byte-identical
    artifacts — and callers who want a real timestamp take it from
    here, keeping every wall-clock read in the tree inside [lib/obs],
    [bench] or this module (lint rule R3). *)

val now_iso8601 : unit -> string
(** Current UTC time as ["YYYY-MM-DDThh:mm:ssZ"] (RFC 3339, second
    precision). *)

val now_seconds : unit -> float
(** Current Unix time in seconds — the {!Watchdog}'s deadline clock.
    Never feeds any artifact; deadlines gate {e whether} a crash dump
    fires, not what it contains. *)
