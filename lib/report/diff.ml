open Tmedb_prelude

type delta = { key : string; a : float option; b : float option }

(* Flatten a document to dotted-path numeric leaves.  Non-numeric
   leaves (strings, nulls, bools) are ignored: the gate compares
   quantities, not identity fields like timestamps or digests. *)
let flatten doc =
  let rows = ref [] in
  let rec go prefix = function
    | Json.Num f -> rows := (prefix, f) :: !rows
    | Json.Bool _ | Json.Str _ | Json.Null -> ()
    | Json.List items -> List.iteri (fun i v -> go (Printf.sprintf "%s[%d]" prefix i) v) items
    | Json.Obj kvs ->
        List.iter
          (fun (k, v) -> go (if prefix = "" then k else prefix ^ "." ^ k) v)
          kvs
  in
  go "" doc;
  List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2) !rows

let diff a b =
  let fa = flatten a and fb = flatten b in
  let rec merge xs ys =
    match (xs, ys) with
    | [], [] -> []
    | (k, v) :: xt, [] -> { key = k; a = Some v; b = None } :: merge xt []
    | [], (k, v) :: yt -> { key = k; a = None; b = Some v } :: merge [] yt
    | ((ka, va) :: xt as xs), ((kb, vb) :: yt as ys) ->
        let c = String.compare ka kb in
        if c < 0 then { key = ka; a = Some va; b = None } :: merge xt ys
        else if c > 0 then { key = kb; a = None; b = Some vb } :: merge xs yt
        else { key = ka; a = Some va; b = Some vb } :: merge xt yt
  in
  merge fa fb

(* Relative change of b against a; [None] when the key is one-sided
   (those always count as exceeding any threshold). *)
let rel_change d =
  match (d.a, d.b) with
  | Some a, Some b ->
      if Float.equal a b then Some 0.
      else if Float.equal a 0. then Some Float.infinity
      else Some (Float.abs ((b -. a) /. a))
  | _ -> None

let changed d =
  match (d.a, d.b) with Some a, Some b -> not (Float.equal a b) | _ -> true

let exceeds ~threshold d =
  match rel_change d with None -> true | Some r -> r > threshold

let exceeding ~threshold ds = List.filter (exceeds ~threshold) ds

let to_json ~threshold ds =
  let rows =
    List.filter_map
      (fun d ->
        if not (changed d) then None
        else
          Some
            (Json.Obj
               [
                 ("key", Json.Str d.key);
                 ("a", match d.a with Some v -> Json.Num v | None -> Json.Null);
                 ("b", match d.b with Some v -> Json.Num v | None -> Json.Null);
                 ( "rel_change",
                   match rel_change d with
                   | Some r when Float.is_finite r -> Json.Num r
                   | Some _ | None -> Json.Null );
                 ("exceeds", Json.Bool (exceeds ~threshold d));
               ]))
      ds
  in
  Json.Obj
    [
      ("schema", Json.Str "tmedb.diff/1");
      ("threshold", Json.Num threshold);
      ("compared", Json.Num (float_of_int (List.length ds)));
      ("changed", Json.List rows);
    ]

let render ~threshold ds =
  let buf = Buffer.create 256 in
  let changed_ds = List.filter changed ds in
  let bad = exceeding ~threshold changed_ds in
  Buffer.add_string buf
    (Printf.sprintf "%d keys compared, %d changed, %d exceed threshold %.3g\n"
       (List.length ds) (List.length changed_ds) (List.length bad) threshold);
  List.iter
    (fun d ->
      let mark = if exceeds ~threshold d then "!" else " " in
      let side = function Some v -> Printf.sprintf "%.6g" v | None -> "-" in
      let rel =
        match (d.a, d.b) with
        | Some a, Some b when not (Float.equal a 0.) ->
            Printf.sprintf " (%+.2f%%)" (100. *. (b -. a) /. a)
        | _ -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "%s %s: %s -> %s%s\n" mark d.key (side d.a) (side d.b) rel))
    changed_ds;
  Buffer.contents buf
