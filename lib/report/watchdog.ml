(* A deadline watchdog on its own domain.  The poll loop reads only
   Clock.now_seconds (the ledger's single wall-clock source) and never
   touches the watched computation: on_trip fires at most once, the
   computation keeps running, and the result is returned unchanged —
   the trip is forensic (typically a Crash_guard dump), not a kill. *)

let with_deadline ~seconds ~on_trip f =
  if seconds <= 0. then (f (), false)
  else begin
    let cancel = Atomic.make false in
    let tripped = Atomic.make false in
    let dog =
      Domain.spawn (fun () ->
          let t0 = Clock.now_seconds () in
          let rec loop () =
            if not (Atomic.get cancel) then
              if Clock.now_seconds () -. t0 >= seconds then begin
                Atomic.set tripped true;
                on_trip ()
              end
              else begin
                Unix.sleepf 0.02;
                loop ()
              end
          in
          loop ())
    in
    let finish () =
      Atomic.set cancel true;
      Domain.join dog
    in
    let r = Fun.protect ~finally:finish f in
    (r, Atomic.get tripped)
  end
