type t = { n : int; row : int array; dst : int array; weight : float array }

let of_edges ~n edges =
  if n <= 0 then invalid_arg "Digraph.of_edges: n <= 0";
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Digraph.of_edges: vertex out of range";
      if w < 0. || Float.is_nan w then invalid_arg "Digraph.of_edges: negative weight")
    edges;
  let m = List.length edges in
  let counts = Array.make (n + 1) 0 in
  List.iter (fun (u, _, _) -> counts.(u + 1) <- counts.(u + 1) + 1) edges;
  for i = 1 to n do
    counts.(i) <- counts.(i) + counts.(i - 1)
  done;
  let row = Array.copy counts in
  let cursor = Array.copy counts in
  let dst = Array.make m 0 and weight = Array.make m 0. in
  List.iter
    (fun (u, v, w) ->
      let k = cursor.(u) in
      dst.(k) <- v;
      weight.(k) <- w;
      cursor.(u) <- k + 1)
    edges;
  { n; row; dst; weight }

let n g = g.n
let m g = Array.length g.dst

let iter_succ g u f =
  for k = g.row.(u) to g.row.(u + 1) - 1 do
    f g.dst.(k) g.weight.(k)
  done

let fold_succ g u f init =
  let acc = ref init in
  iter_succ g u (fun v w -> acc := f !acc v w);
  !acc

let out_degree g u = g.row.(u + 1) - g.row.(u)

let reverse g =
  let edges = ref [] in
  for u = 0 to g.n - 1 do
    iter_succ g u (fun v w -> edges := (v, u, w) :: !edges)
  done;
  of_edges ~n:g.n !edges

let edge_weight g u v =
  fold_succ g u
    (fun acc dst w ->
      if dst = v then Some (match acc with None -> w | Some best -> Float.min best w) else acc)
    None

type view = { nv : int; iter_succ : int -> (int -> float -> unit) -> unit }

let view g = { nv = g.n; iter_succ = (fun u f -> iter_succ g u f) }

let view_edge_weight vw u v =
  let acc = ref None in
  vw.iter_succ u (fun dst w ->
      if dst = v then
        acc := Some (match !acc with None -> w | Some best -> Float.min best w));
  !acc

let pp ppf g = Format.fprintf ppf "digraph{n=%d m=%d}" g.n (m g)
