type tree = { edges : (int * int * float) list; cost : float; covered : int list }
type outcome = { tree : tree; uncovered : int list }

(* Telemetry: [dst.expansions] counts greedy rounds that realized a
   candidate into the partial tree (the outer-loop work measure of the
   recursive-greedy algorithm); [dst.level2_scans] counts full
   candidate-table sweeps. *)
let c_solves = Tmedb_obs.Counter.make "dst.solves"
let c_expansions = Tmedb_obs.Counter.make "dst.expansions"
let c_level2_scans = Tmedb_obs.Counter.make "dst.level2_scans"
let t_solve = Tmedb_obs.Timer.make "dst.solve"
let t_terminal_maps = Tmedb_obs.Timer.make "dst.terminal_maps"
let h_expansion_rounds = Tmedb_obs.Histogram.make "dst.expansion_rounds"

(* Edge sets keyed by u*n+v, keeping the cheapest parallel weight. *)
module Edge_set = struct
  type t = { n : int; table : (int, float) Hashtbl.t }

  let create n = { n; table = Hashtbl.create 64 }

  let add t (u, v, w) =
    let key = (u * t.n) + v in
    match Hashtbl.find_opt t.table key with
    | Some w0 when w0 <= w -> ()
    | Some _ | None -> Hashtbl.replace t.table key w

  let add_list t es = List.iter (add t) es

  (* Key-sorted bindings: bucket order must not leak into edge lists
     or float summation order (lint rule R1). *)
  let bindings t =
    List.sort
      (fun (k1, _) (k2, _) -> Int.compare k1 k2)
      (Hashtbl.fold (fun key w acc -> (key, w) :: acc) t.table [])

  let cost t = List.fold_left (fun acc (_, w) -> acc +. w) 0. (bindings t)
  let to_list t = List.map (fun (key, w) -> (key / t.n, key mod t.n, w)) (bindings t)
end

let tree_cost edges =
  let module S = Set.Make (struct
    type t = int * int

    let compare = Stdlib.compare
  end) in
  let _, total =
    List.fold_left
      (fun (seen, total) (u, v, w) ->
        if S.mem (u, v) seen then (seen, total) else (S.add (u, v) seen, total +. w))
      (S.empty, 0.) edges
  in
  total

(* Per-terminal reversed-graph Dijkstra: distances v -> terminal and
   the next hop of v on a shortest such path. *)
type terminal_maps = {
  ids : int array;  (* terminal vertex ids *)
  dist : float array array;  (* dist.(ti).(v) *)
  next : int array array;  (* next hop from v toward terminal ti *)
}

(* [targets] (the candidate intermediates) bounds each per-terminal
   Dijkstra: only candidate rows of the maps are ever read, so the scan
   can stop once every candidate is settled.  [rev] is the reversed
   graph as a view, so a lazily generated reverse adjacency works. *)
let build_terminal_maps ?targets ~rev terminals =
  let tm = Tmedb_obs.Timer.start t_terminal_maps in
  let ids = Array.of_list terminals in
  let dist = Array.make (Array.length ids) [||] in
  let next = Array.make (Array.length ids) [||] in
  Array.iteri
    (fun ti term ->
      let r = Dijkstra.run_view ?targets rev ~src:term in
      dist.(ti) <- r.Dijkstra.dist;
      next.(ti) <- r.Dijkstra.pred)
    ids;
  Tmedb_obs.Timer.stop t_terminal_maps tm;
  { ids; dist; next }

(* Edges of the shortest path v -> terminal ti, following next hops. *)
let path_to_terminal fwd maps ~ti ~v =
  let term = maps.ids.(ti) in
  let rec walk u acc =
    if u = term then List.rev acc
    else begin
      let nxt = maps.next.(ti).(u) in
      if nxt < 0 then List.rev acc (* v = term handled above; unreachable defended in callers *)
      else begin
        match Digraph.view_edge_weight fwd u nxt with
        | Some w -> walk nxt ((u, nxt, w) :: acc)
        | None -> List.rev acc
      end
    end
  in
  walk v []

type candidate = { cand_edges : (int * int * float) list; cand_cost : float; cand_terms : int list }

(* A_1: shortest paths from v to the [need] nearest remaining terminals. *)
let a1_candidate fwd maps ~need ~v ~remaining =
  let reachable = ref [] in
  Array.iteri
    (fun ti alive -> if alive && Float.is_finite maps.dist.(ti).(v) then
        reachable := (maps.dist.(ti).(v), ti) :: !reachable)
    remaining;
  let sorted = List.sort compare !reachable in
  let chosen = List.filteri (fun i _ -> i < need) sorted in
  if chosen = [] then None
  else begin
    let set = Edge_set.create fwd.Digraph.nv in
    List.iter (fun (_, ti) -> Edge_set.add_list set (path_to_terminal fwd maps ~ti ~v)) chosen;
    Some
      {
        cand_edges = Edge_set.to_list set;
        cand_cost = Edge_set.cost set;
        cand_terms = List.map snd chosen;
      }
  end

(* Per-vertex terminal distances in ascending order, stored as
   parallel unboxed arrays (this table dominates the level-2 scan's
   memory traffic). *)
type terminal_table = { term_dist : float array array; term_id : int array array }

(* Fast level-2 scan: for every candidate intermediate vertex u and
   every count cnt <= need, the density of [path tree->u] + [A_1(cnt,
   u)] using plain distance sums; returns the best (u, cnt). *)
let scan_level2 ~candidates ~dist_v ~remaining ~need ~table =
  Tmedb_obs.Counter.incr c_level2_scans;
  let best_density = ref Float.infinity in
  let best = ref None in
  let ncand = Array.length candidates in
  for c = 0 to ncand - 1 do
    let u = candidates.(c) in
    let du = dist_v.(u) in
    if Float.is_finite du then begin
      let dists = table.term_dist.(u) and ids = table.term_id.(u) in
      let sum = ref du in
      let cnt = ref 0 in
      let k = ref 0 in
      let len = Array.length dists in
      let continue = ref true in
      while !continue && !k < len do
        let d = dists.(!k) in
        if not (Float.is_finite d) then continue := false
        else begin
          if remaining.(ids.(!k)) then begin
            sum := !sum +. d;
            incr cnt;
            let density = !sum /. float_of_int !cnt in
            if density < !best_density then begin
              best_density := density;
              best := Some (density, u, !cnt)
            end;
            if !cnt >= need then continue := false
          end;
          incr k
        end
      done
    end
  done;
  !best

(* Tree-growing recursive greedy: each round connects the best-density
   (intermediate vertex, terminal count) candidate to the *current*
   partial tree (multi-source Dijkstra), not only to the call root —
   a strict improvement over connecting every pick at [v] since merged
   path segments are paid once and inform later picks. *)
let rec build_candidate fwd maps ~candidates ~table ~level ~need ~v ~remaining ~rounds =
  if level <= 1 then a1_candidate fwd maps ~need ~v ~remaining
  else begin
    let remaining = Array.copy remaining in
    let set = Edge_set.create fwd.Digraph.nv in
    let tree_members = Hashtbl.create 64 in
    Hashtbl.replace tree_members v ();
    let covered = ref [] in
    let still_needed = ref need in
    let progress = ref true in
    (* Distances from the growing tree, warm-restarted as members are
       added (distances only decrease).  Only candidate vertices are
       ever read from this result (the scans and the connect walk), so
       the relaxation may stop once all candidates are settled. *)
    let targets = Array.to_list candidates in
    let tree_dist = Dijkstra.run_multi_view fwd ~sources:[ v ] ~targets in
    while !still_needed > 0 && !progress do
      let dist_v = tree_dist.Dijkstra.dist and pred_v = tree_dist.Dijkstra.pred in
      let pick =
        if level = 2 then begin
          match scan_level2 ~candidates ~dist_v ~remaining ~need:!still_needed ~table with
          | None -> None
          | Some (_, u, cnt) -> (
              match a1_candidate fwd maps ~need:cnt ~v:u ~remaining with
              | None -> None
              | Some sub -> Some (u, sub))
        end
        else begin
          (* Exhaustive recursive scan, only for small instances. *)
          let best = ref None in
          Array.iter
            (fun u ->
              if Float.is_finite dist_v.(u) then
              for cnt = 1 to !still_needed do
                match
                  build_candidate fwd maps ~candidates ~table ~level:(level - 1) ~need:cnt ~v:u
                    ~remaining ~rounds
                with
                | None -> ()
                | Some sub ->
                    let density =
                      (dist_v.(u) +. sub.cand_cost) /. float_of_int (List.length sub.cand_terms)
                    in
                    let better =
                      match !best with Some (d, _, _) -> density < d | None -> true
                    in
                    if better then best := Some (density, u, sub)
              done)
            candidates;
          match !best with None -> None | Some (_, u, sub) -> Some (u, sub)
        end
      in
      match pick with
      | None -> progress := false
      | Some (u, sub) ->
          Tmedb_obs.Counter.incr c_expansions;
          incr rounds;
          if Tmedb_report.Provenance.enabled () then
            Tmedb_report.Provenance.emit
              (Tmedb_report.Provenance.Expansion
                 { vertex = u; terminals = List.length sub.cand_terms });
          (* Realize the connecting path tree -> u plus the subtree. *)
          let rec connect x acc =
            if pred_v.(x) < 0 then acc
            else begin
              let p = pred_v.(x) in
              match Digraph.view_edge_weight fwd p x with
              | Some w -> connect p ((p, x, w) :: acc)
              | None -> acc
            end
          in
          let fresh = ref [] in
          let note_edges es =
            Edge_set.add_list set es;
            List.iter
              (fun (a, b, _) ->
                if not (Hashtbl.mem tree_members a) then begin
                  Hashtbl.replace tree_members a ();
                  fresh := a :: !fresh
                end;
                if not (Hashtbl.mem tree_members b) then begin
                  Hashtbl.replace tree_members b ();
                  fresh := b :: !fresh
                end)
              es
          in
          note_edges (connect u []);
          note_edges sub.cand_edges;
          Dijkstra.refine_view fwd tree_dist ~new_sources:!fresh ~targets;
          List.iter
            (fun ti ->
              if remaining.(ti) then begin
                remaining.(ti) <- false;
                covered := ti :: !covered;
                decr still_needed
              end)
            sub.cand_terms
    done;
    if !covered = [] then None
    else Some { cand_edges = Edge_set.to_list set; cand_cost = Edge_set.cost set; cand_terms = !covered }
  end

let solve_body ~level ~candidates ~rounds ~fwd ~rev ~root ~terminals =
  if level < 1 then invalid_arg "Dst.solve: level < 1";
  let nv = fwd.Digraph.nv in
  if root < 0 || root >= nv then invalid_arg "Dst.solve: root out of range";
  List.iter
    (fun t -> if t < 0 || t >= nv then invalid_arg "Dst.solve: terminal out of range")
    terminals;
  let terminals = List.filter (fun t -> t <> root) (List.sort_uniq Int.compare terminals) in
  let candidates =
    match candidates with
    | None -> Array.init nv (fun v -> v)
    | Some cs ->
        List.iter
          (fun c -> if c < 0 || c >= nv then invalid_arg "Dst.solve: candidate out of range")
          cs;
        (* The root and the terminals must stay eligible. *)
        Array.of_list (List.sort_uniq Int.compare ((root :: terminals) @ cs))
  in
  let maps = build_terminal_maps ~targets:(Array.to_list candidates) ~rev terminals in
  let k = Array.length maps.ids in
  (* For each vertex, terminal distances ascending: the A_1 lookup
     table used by the level-2 scan. *)
  let table =
    (* Only candidate vertices are scanned, so only they need rows. *)
    let term_dist = Array.make nv [||] and term_id = Array.make nv [||] in
    let scratch = Array.init k (fun ti -> (0., ti)) in
    Array.iter
      (fun v ->
        for ti = 0 to k - 1 do
          scratch.(ti) <- (maps.dist.(ti).(v), ti)
        done;
        Array.sort compare scratch;
        term_dist.(v) <- Array.map fst scratch;
        term_id.(v) <- Array.map snd scratch)
      candidates;
    { term_dist; term_id }
  in
  let remaining = Array.make k true in
  let result =
    build_candidate fwd maps ~candidates ~table ~level ~need:k ~v:root ~remaining ~rounds
  in
  let covered_tis = match result with None -> [] | Some c -> c.cand_terms in
  let covered = List.sort Int.compare (List.map (fun ti -> maps.ids.(ti)) covered_tis) in
  (* Both lists are id-sorted: a linear merge instead of the former
     O(k²) List.mem filter. *)
  let rec diff_sorted xs ys =
    match (xs, ys) with
    | [], _ -> []
    | xs, [] -> xs
    | x :: xt, y :: yt ->
        if x < y then x :: diff_sorted xt ys
        else if x > y then diff_sorted xs yt
        else diff_sorted xt yt
  in
  let uncovered = diff_sorted terminals covered in
  let edges, cost =
    match result with None -> ([], 0.) | Some c -> (c.cand_edges, c.cand_cost)
  in
  { tree = { edges; cost; covered }; uncovered }

let solve_views ?(level = 2) ?candidates ~fwd ~rev ~root ~terminals () =
  Tmedb_obs.Counter.incr c_solves;
  Tmedb_obs.Span.with_ "dst.solve"
    ~args:
      [
        ("vertices", string_of_int fwd.Digraph.nv);
        ("terminals", string_of_int (List.length terminals));
        ("level", string_of_int level);
      ]
    (fun () ->
      (* Expansion depth of this solve through a local counter (not a
         registry-counter delta): concurrent solves on other domains
         must not leak into this solve's observation. *)
      let rounds = ref 0 in
      let outcome =
        Tmedb_obs.Timer.time t_solve (fun () ->
            solve_body ~level ~candidates ~rounds ~fwd ~rev ~root ~terminals)
      in
      Tmedb_obs.Histogram.observe h_expansion_rounds !rounds;
      outcome)

let solve ?level ?candidates g ~root ~terminals =
  solve_views ?level ?candidates ~fwd:(Digraph.view g)
    ~rev:(Digraph.view (Digraph.reverse g)) ~root ~terminals ()

let prune_within ~nv ~root tree =
  let sub = Digraph.of_edges ~n:nv tree.edges in
  (* Only the covered terminals' paths are extracted below. *)
  let r = Dijkstra.run sub ~src:root ~targets:tree.covered in
  let set = Edge_set.create nv in
  List.iter
    (fun term ->
      match Dijkstra.path_edges sub r ~src:root ~dst:term with
      | Some es -> Edge_set.add_list set es
      | None -> ())
    tree.covered;
  let edges = Edge_set.to_list set in
  { edges; cost = Edge_set.cost set; covered = tree.covered }

let prune g ~root tree = prune_within ~nv:(Digraph.n g) ~root tree
