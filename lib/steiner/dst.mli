(** Directed Steiner tree by recursive greedy (Charikar et al.), the
    engine behind the paper's O(N^ε)-approximate MEMT step (Section
    VI-A; Liang's reduction [3]).

    [level] trades quality for time exactly like the paper's ε = 1/i:
    level 1 is the shortest-path-tree greedy (ratio O(k)), level 2 the
    default recursive greedy (ratio O(√k)·log k family), level ≥ 3 is
    exponentially slower and only sensible on small instances.

    Implementation note: levels ≥ 2 use the tree-growing variant —
    each greedy pick connects to the nearest vertex of the current
    partial tree (multi-source Dijkstra) instead of the call root.
    Every candidate Charikar's analysis considers is still considered
    at no worse density, so the approximation guarantee is kept while
    shared trunks are paid once. *)

type tree = {
  edges : (int * int * float) list;  (** Deduplicated edge triples. *)
  cost : float;  (** Sum of the deduplicated edge weights. *)
  covered : int list;  (** Terminals reached, ascending. *)
}

type outcome = {
  tree : tree;
  uncovered : int list;  (** Terminals unreachable from the root. *)
}

val solve :
  ?level:int -> ?candidates:int list -> Digraph.t -> root:int -> terminals:int list -> outcome
(** @raise Invalid_argument on [level < 1], out-of-range root,
    terminals or candidates.  Terminals equal to the root are
    considered covered for free.

    [candidates] restricts the intermediate vertices the greedy rounds
    may branch from (the root and terminals are always kept eligible).
    Paths realised by each pick still run through every vertex; the
    restriction only prunes the density scan.  The TMEDB auxiliary
    graph passes its wait vertices here — level-chain vertices are
    dominated as branch points by the wait vertex that precedes
    them — cutting the scan cost several-fold. *)

val solve_views :
  ?level:int ->
  ?candidates:int list ->
  fwd:Digraph.view ->
  rev:Digraph.view ->
  root:int ->
  terminals:int list ->
  unit ->
  outcome
(** {!solve} over successor-generator views: [fwd] enumerates forward
    edges, [rev] the reversed graph's.  The two views must describe
    the same edge set with matching deterministic orders — the solver
    is exactly {!solve} when both come from {!Digraph.view} of one
    graph and its {!Digraph.reverse}.  With a lazy view only the
    vertices the Dijkstra scans actually pop are ever expanded. *)

val prune : Digraph.t -> root:int -> tree -> tree
(** Restrict the tree to shortest paths (within the tree's own edges)
    from the root to its covered terminals.  Result is an arborescence
    with cost ≤ the input cost covering the same terminals. *)

val prune_within : nv:int -> root:int -> tree -> tree
(** {!prune} without a host graph: the tree's own edges are the only
    input, [nv] bounds its vertex ids (the host graph's vertex count).
    [prune g ~root tree = prune_within ~nv:(Digraph.n g) ~root tree]. *)

val tree_cost : (int * int * float) list -> float
(** Deduplicated cost of an edge list. *)
