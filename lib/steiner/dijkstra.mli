(** Single- and multi-source shortest paths with non-negative weights,
    with warm restart for incrementally growing source sets (the
    tree-growing Steiner loop adds sources every round; re-relaxing
    only the improved region amortises to a few full passes).

    Every entry point takes an optional [?targets] vertex set: when
    given, the scan stops as soon as every target has been settled
    instead of draining the whole graph.  Settled vertices hold final
    distances and their predecessor chains pass through settled
    vertices only, so reads restricted to the targets (their [dist],
    [pred], and predecessor walks from them — {!path}/{!path_edges})
    are bit-identical to a full run; distances of other vertices are
    merely upper bounds.  Unreachable targets degrade gracefully to a
    full drain. *)

type result = {
  dist : float array;  (** [infinity] for unreachable vertices. *)
  pred : int array;  (** Predecessor on a shortest path; -1 at sources and unreachable vertices. *)
}

val run : ?targets:int list -> Digraph.t -> src:int -> result
(** Single-source {!run_multi}. *)

val run_multi : ?targets:int list -> Digraph.t -> sources:int list -> result
(** Shortest paths from a vertex set (all sources at distance 0).
    With [?targets], stops once all targets are settled (see above).
    @raise Invalid_argument on an empty source list or an
    out-of-range target. *)

val run_view : ?targets:int list -> Digraph.view -> src:int -> result
(** {!run} on a successor-generator view: only vertices the scan
    actually pops ever have their successors generated, so on a lazy
    view the graph is expanded frontier-by-frontier.  Identical to
    {!run} when the view is {!Digraph.view} of the same graph. *)

val run_multi_view : ?targets:int list -> Digraph.view -> sources:int list -> result
(** {!run_multi} on a view (see {!run_view}). *)

val refine : ?targets:int list -> Digraph.t -> result -> new_sources:int list -> unit
(** Add sources at distance 0 to an existing result and re-relax in
    place.  Distances only decrease; vertices whose distance is
    unaffected are not revisited.  With [?targets], the re-relaxation
    stops early only when every target is improved and re-settled by
    this pass; targets the pass never touches keep their previous
    (already final) values, so target reads stay exact. *)

val path : result -> src:int -> dst:int -> int list option
(** Vertex sequence [src; ...; dst] on a shortest path, [None] when
    unreachable.  With multiple sources, [src] is ignored except as
    the stopping vertex of the predecessor walk — pass any source.
    After a targeted run, [dst] must be one of the targets. *)

val refine_view :
  ?targets:int list -> Digraph.view -> result -> new_sources:int list -> unit
(** {!refine} on a view (see {!run_view}). *)

val path_edges : Digraph.t -> result -> src:int -> dst:int -> (int * int * float) list option
(** Same path as weighted edge triples (weights are the minimum
    parallel-edge weights along the predecessor chain).  After a
    targeted run, [dst] must be one of the targets. *)

val path_edges_view :
  Digraph.view -> result -> src:int -> dst:int -> (int * int * float) list option
(** {!path_edges} on a view (weights re-read from the view's
    successor enumeration). *)
