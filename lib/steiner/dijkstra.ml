open Tmedb_prelude

type result = { dist : float array; pred : int array }

(* Telemetry: every (multi-source) run and warm restart is counted and
   timed; [dijkstra.settled] counts queue pops that survived the
   lazy-deletion check (the classic work measure of the algorithm). *)
let c_runs = Tmedb_obs.Counter.make "dijkstra.runs"
let c_settled = Tmedb_obs.Counter.make "dijkstra.settled"
let t_run = Tmedb_obs.Timer.make "dijkstra.run"
let h_relaxations = Tmedb_obs.Histogram.make "dijkstra.relaxations"

(* Early-termination bookkeeping: a bool per vertex marking the targets
   not yet settled, plus their count.  When the count reaches zero the
   drain may stop: settled vertices carry final distances and their
   predecessor chains consist of settled vertices only (pop order is
   nondecreasing with non-negative weights), so every read a caller is
   allowed to make — dist/pred at a target, or a pred walk from one —
   is identical to the full drain's. *)
type stop_set = { want : bool array; mutable pending : int }

let stop_set_of n targets =
  match targets with
  | None -> None
  | Some ts ->
      let want = Array.make n false in
      let pending = ref 0 in
      List.iter
        (fun v ->
          if v < 0 || v >= n then invalid_arg "Dijkstra: target out of range";
          if not want.(v) then begin
            want.(v) <- true;
            incr pending
          end)
        ts;
      Some { want; pending = !pending }

(* Lazy-deletion Dijkstra: stale queue entries are skipped by the
   distance check, which makes warm restarts (pushing extra sources
   into an already-relaxed state) sound with non-negative weights.
   With a stop set, the drain ends as soon as every target has been
   settled (or the queue empties first — unreachable targets degrade
   gracefully to a full drain).  Returns the number of successful
   relaxations (distance improvements), the per-run distribution
   measure. *)
let drain ?stop (vw : Digraph.view) dist pred queue =
  let relaxed = ref 0 in
  let finished () = match stop with Some s -> s.pending = 0 | None -> false in
  let rec go () =
    if not (finished ()) then begin
      match Pqueue.pop queue with
      | None -> ()
      | Some (d, u) ->
          if d <= dist.(u) then begin
            Tmedb_obs.Counter.incr c_settled;
            (match stop with
            | Some s when s.want.(u) ->
                s.want.(u) <- false;
                s.pending <- s.pending - 1
            | Some _ | None -> ());
            vw.Digraph.iter_succ u (fun v w ->
                let nd = d +. w in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  pred.(v) <- u;
                  incr relaxed;
                  Pqueue.push queue nd v
                end)
          end;
          go ()
    end
  in
  go ();
  !relaxed

let run_multi_view ?targets (vw : Digraph.view) ~sources =
  Tmedb_obs.Counter.incr c_runs;
  let tr = Tmedb_obs.Timer.start t_run in
  let n = vw.Digraph.nv in
  if sources = [] then invalid_arg "Dijkstra.run_multi: empty sources";
  List.iter
    (fun src -> if src < 0 || src >= n then invalid_arg "Dijkstra.run_multi: src out of range")
    sources;
  let stop = stop_set_of n targets in
  let dist = Array.make n Float.infinity in
  let pred = Array.make n (-1) in
  let queue = Pqueue.create () in
  List.iter
    (fun src ->
      dist.(src) <- 0.;
      Pqueue.push queue 0. src)
    sources;
  Tmedb_obs.Histogram.observe h_relaxations (drain ?stop vw dist pred queue);
  Tmedb_obs.Timer.stop t_run tr;
  { dist; pred }

let run_multi ?targets g ~sources = run_multi_view ?targets (Digraph.view g) ~sources

let run_view ?targets vw ~src =
  if src < 0 || src >= vw.Digraph.nv then invalid_arg "Dijkstra.run: src out of range";
  run_multi_view ?targets vw ~sources:[ src ]

let run ?targets g ~src = run_view ?targets (Digraph.view g) ~src

let refine_view ?targets (vw : Digraph.view) r ~new_sources =
  Tmedb_obs.Counter.incr c_runs;
  let tr = Tmedb_obs.Timer.start t_run in
  let n = vw.Digraph.nv in
  let stop = stop_set_of n targets in
  let queue = Pqueue.create () in
  List.iter
    (fun src ->
      if src < 0 || src >= n then invalid_arg "Dijkstra.refine: src out of range";
      if r.dist.(src) > 0. then begin
        r.dist.(src) <- 0.;
        r.pred.(src) <- -1;
        Pqueue.push queue 0. src
      end)
    new_sources;
  Tmedb_obs.Histogram.observe h_relaxations (drain ?stop vw r.dist r.pred queue);
  Tmedb_obs.Timer.stop t_run tr

let refine ?targets g r ~new_sources = refine_view ?targets (Digraph.view g) r ~new_sources

let path r ~src ~dst =
  if not (Float.is_finite r.dist.(dst)) then None
  else begin
    let rec walk v acc =
      if v = src then Some (src :: acc)
      else begin
        let p = r.pred.(v) in
        if p < 0 then if v = src then Some (src :: acc) else None
        else walk p (v :: acc)
      end
    in
    (* A multi-source result may stop at a different source; accept
       any predecessor-root as the path head in that case. *)
    match walk dst [] with
    | Some p -> Some p
    | None ->
        let rec walk_any v acc =
          let p = r.pred.(v) in
          if p < 0 then Some (v :: acc) else walk_any p (v :: acc)
        in
        walk_any dst []
  end

let path_edges_view (vw : Digraph.view) r ~src ~dst =
  match path r ~src ~dst with
  | None -> None
  | Some vertices ->
      let rec pair = function
        | u :: (v :: _ as rest) -> (
            match Digraph.view_edge_weight vw u v with
            | Some w -> (
                match pair rest with Some tl -> Some ((u, v, w) :: tl) | None -> None)
            | None -> None)
        | _ -> Some []
      in
      pair vertices

let path_edges g r ~src ~dst = path_edges_view (Digraph.view g) r ~src ~dst
