(** Immutable weighted digraphs in compressed-sparse-row form.

    The auxiliary graphs of paper Section VI-A are built once and then
    traversed heavily by Dijkstra and the Steiner solver; CSR keeps
    traversal allocation-free. *)

type t

val of_edges : n:int -> (int * int * float) list -> t
(** Parallel edges are kept (harmless for shortest paths: the cheaper
    one wins).  @raise Invalid_argument on out-of-range endpoints or
    negative weights. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val iter_succ : t -> int -> (int -> float -> unit) -> unit
(** [iter_succ g u f] calls [f v w] for every edge u→v of weight w. *)

val fold_succ : t -> int -> ('a -> int -> float -> 'a) -> 'a -> 'a
val out_degree : t -> int -> int
val reverse : t -> t
(** Transposed graph (weights preserved). *)

val edge_weight : t -> int -> int -> float option
(** Minimum weight among parallel u→v edges, if any. *)

type view = {
  nv : int;  (** Number of vertices ([0 .. nv-1]). *)
  iter_succ : int -> (int -> float -> unit) -> unit;
      (** [iter_succ u f] calls [f v w] for every edge u→v of weight
          w.  The enumeration order must be deterministic: the
          traversal algorithms break priority ties by operation
          sequence, so callers providing generated views must emit
          successors in a fixed order. *)
}
(** A graph exposed as an on-demand successor generator: the common
    face of a materialised CSR digraph and a lazily expanded one (see
    [Tmedb.Aux_graph.Lazy]).  Traversals that only ever ask for
    successors of the vertices they actually reach run on a view
    without the graph ever being built in full. *)

val view : t -> view
(** The CSR digraph as a view (same successor order as {!iter_succ}).
    O(1). *)

val view_edge_weight : view -> int -> int -> float option
(** Minimum weight among parallel u→v edges of the view, if any —
    {!edge_weight} generalised.  O(out-degree of u). *)

val pp : Format.formatter -> t -> unit
