(* Lanczos approximation with g = 7, n = 9 coefficients. *)
let lanczos =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec ln_gamma x =
  if x <= 0. then invalid_arg "Specfun.ln_gamma: x <= 0";
  if x < 0.5 then
    (* Reflection: Γ(x)Γ(1-x) = π / sin(πx). *)
    log (Float.pi /. sin (Float.pi *. x)) -. ln_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let a = ref lanczos.(0) in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

let max_iter = 300
let tiny = 1e-300
let eps = 3e-15

(* Series representation: P(a,x) = e^{-x} x^a / Γ(a) Σ x^n Γ(a)/Γ(a+1+n). *)
let gammp_series ~a ~x =
  let ap = ref a in
  let sum = ref (1. /. a) in
  let del = ref !sum in
  let iter = ref 0 in
  while Float.abs !del > Float.abs !sum *. eps && !iter < max_iter do
    incr iter;
    ap := !ap +. 1.;
    del := !del *. x /. !ap;
    sum := !sum +. !del
  done;
  !sum *. exp ((-.x) +. (a *. log x) -. ln_gamma a)

(* Lentz continued fraction for Q(a,x). *)
let gammq_cf ~a ~x =
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. tiny) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  let iter = ref 1 in
  let continue = ref true in
  while !continue && !iter <= max_iter do
    let an = -.float_of_int !iter *. (float_of_int !iter -. a) in
    b := !b +. 2.;
    d := (an *. !d) +. !b;
    if Float.abs !d < tiny then d := tiny;
    c := !b +. (an /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1. /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.) < eps then continue := false;
    incr iter
  done;
  exp ((-.x) +. (a *. log x) -. ln_gamma a) *. !h

let gammp ~a ~x =
  if a <= 0. then invalid_arg "Specfun.gammp: a <= 0";
  if x < 0. then invalid_arg "Specfun.gammp: x < 0";
  if Float.equal x 0. then 0.
  else if x < a +. 1. then gammp_series ~a ~x
  else 1. -. gammq_cf ~a ~x

let gammq ~a ~x = 1. -. gammp ~a ~x

let erf x =
  if Float.equal x 0. then 0.
  else begin
    let p = gammp ~a:0.5 ~x:(x *. x) in
    if x > 0. then p else -.p
  end

let normal_cdf x = 0.5 *. (1. +. erf (x /. sqrt 2.))
