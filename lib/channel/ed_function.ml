type t =
  | Absent
  | Step of { w_th : float }
  | Rayleigh of { beta : float }
  | Nakagami of { beta : float; m : float }
  | Lognormal of { beta : float; sigma : float }

let step ~w_th =
  if w_th < 0. then invalid_arg "Ed_function.step: negative threshold";
  Step { w_th }

let rayleigh ~beta =
  if beta <= 0. then invalid_arg "Ed_function.rayleigh: beta must be positive";
  Rayleigh { beta }

let nakagami ~beta ~m =
  if beta <= 0. then invalid_arg "Ed_function.nakagami: beta must be positive";
  if m < 0.5 then invalid_arg "Ed_function.nakagami: m < 1/2";
  Nakagami { beta; m }

let lognormal ~beta ~sigma =
  if beta <= 0. then invalid_arg "Ed_function.lognormal: beta must be positive";
  if sigma <= 0. then invalid_arg "Ed_function.lognormal: sigma must be positive";
  Lognormal { beta; sigma }

let rician ~beta ~k =
  if k < 0. then invalid_arg "Ed_function.rician: K < 0";
  let m = ((k +. 1.) ** 2.) /. ((2. *. k) +. 1.) in
  nakagami ~beta ~m

let of_distance phy model ~dist =
  if dist <= 0. then invalid_arg "Ed_function.of_distance: non-positive distance";
  match model with
  | `Static -> step ~w_th:(Phy.min_cost phy ~dist)
  | `Rayleigh -> rayleigh ~beta:(Phy.beta phy ~dist)
  | `Nakagami m -> nakagami ~beta:(Phy.beta phy ~dist) ~m
  | `Lognormal sigma -> lognormal ~beta:(Phy.beta phy ~dist) ~sigma

let failure_prob t ~w =
  if w < 0. then invalid_arg "Ed_function.failure_prob: negative cost";
  if Float.equal w 0. then 1.
  else
    match t with
    | Absent -> 1.
    | Step { w_th } -> if w >= w_th then 0. else 1.
    | Rayleigh { beta } -> 1. -. exp (-.beta /. w)
    | Nakagami { beta; m } -> Specfun.gammp ~a:m ~x:(m *. beta /. w)
    | Lognormal { beta; sigma } -> Specfun.normal_cdf (log (beta /. w) /. sigma)

let success_prob t ~w = 1. -. failure_prob t ~w

(* Monotone-decreasing bisection inverse for the fading variants. *)
let invert_by_bisection ~f ~target =
  (* Find an upper bracket where f <= target. *)
  let rec bracket hi tries =
    if tries = 0 then None
    else if f hi <= target then Some hi
    else bracket (hi *. 4.) (tries - 1)
  in
  match bracket 1e-18 200 with
  | None -> None
  | Some hi0 ->
      let lo = ref 0. and hi = ref hi0 in
      for _ = 1 to 200 do
        let mid = 0.5 *. (!lo +. !hi) in
        if mid > 0. && f mid <= target then hi := mid else lo := mid
      done;
      Some !hi

let cost_for_failure t ~target =
  if not (0. < target && target <= 1.) then
    invalid_arg "Ed_function.cost_for_failure: target outside (0,1]";
  match t with
  | Absent -> if target >= 1. then Some 0. else None
  | Step { w_th } -> if target >= 1. then Some 0. else Some w_th
  | Rayleigh { beta } ->
      if target >= 1. then Some 0. else Some (beta /. log (1. /. (1. -. target)))
  | Nakagami { beta; m } ->
      if target >= 1. then Some 0.
      else invert_by_bisection ~f:(fun w -> Specfun.gammp ~a:m ~x:(m *. beta /. w)) ~target
  | Lognormal { beta; sigma } ->
      if target >= 1. then Some 0.
      else
        invert_by_bisection ~f:(fun w -> Specfun.normal_cdf (log (beta /. w) /. sigma)) ~target

let satisfies_property_3_1 t ~costs =
  let sorted = Array.copy costs in
  Array.sort Float.compare sorted;
  let ok = ref true in
  let prev = ref 1.0 in
  Array.iter
    (fun w ->
      if w >= 0. then begin
        let p = failure_prob t ~w in
        if p > !prev +. 1e-12 || p < 0. || p > 1. then ok := false;
        prev := p
      end)
    sorted;
  !ok

let pp ppf = function
  | Absent -> Format.pp_print_string ppf "absent"
  | Step { w_th } -> Format.fprintf ppf "step(w_th=%g)" w_th
  | Rayleigh { beta } -> Format.fprintf ppf "rayleigh(beta=%g)" beta
  | Nakagami { beta; m } -> Format.fprintf ppf "nakagami(beta=%g, m=%g)" beta m
  | Lognormal { beta; sigma } -> Format.fprintf ppf "lognormal(beta=%g, sigma=%g)" beta sigma
