(* Effect inference for the typed phase.  Each analyzed binding is
   flattened by Lint_callgraph into a list of [atom]s — the direct
   observations the walker could make — and this module folds the atoms
   into a per-function [summary] over the lattice

     pure ⊑ reads_shared ⊑ writes_shared

   with four orthogonal taints (rng, clock, io, blocking).  Summaries
   are propagated over resolved call edges to a fixpoint, keeping for
   every inherited property the call edge it arrived through, so a rule
   report can print the whole chain from a pool entry point down to the
   offending primitive. *)

type taint = Rng | Clock | Io | Blocking

let taint_name = function
  | Rng -> "rng"
  | Clock -> "clock"
  | Io -> "io"
  | Blocking -> "blocking"

let all_taints = [ Rng; Clock; Io; Blocking ]

type atom =
  | Write of { loc : Location.t; desc : string }
      (* mutation of module-level (shared) state, not Atomic/DLS *)
  | Read of { loc : Location.t; desc : string }
      (* read of module-level mutable state *)
  | Taint_of of { taint : taint; loc : Location.t; desc : string }
  | Call of { comps : string list; raw : string; loc : Location.t }
      (* call to a non-primitive function, resolved at fixpoint time *)
  | Closure of { callee : string list; loc : Location.t; atoms : atom list }
      (* literal [fun] passed as an argument to [callee]: its writes
         are guarded when [callee] takes a lock *)

type def = {
  sym : string;  (* "Module.name" after alias normalization *)
  unit_mod : string;  (* normalized compilation-unit module name *)
  file : string;
  line : int;
  atoms : atom list;
  allows : string list;  (* [@lint.allow] ids in force at the binding *)
  locks : bool;  (* the body takes a lock directly *)
}

type origin =
  | Direct of { loc : Location.t; desc : string }
  | Via of { callee : string; loc : Location.t }

type summary = {
  writes : origin option;
  guarded_writes : bool;
  reads : bool;
  taints : (taint * origin) list;  (* at most one origin per taint *)
}

let empty_summary = { writes = None; guarded_writes = false; reads = false; taints = [] }

let level s =
  if s.writes <> None then "writes_shared"
  else if s.reads then "reads_shared"
  else "pure"

(* ------------------------------------------------------------------ *)
(* Primitive classification.

   Call targets are matched on their normalized path components (see
   Lint_callgraph.norm_comps) by suffix, so [Stdlib.Hashtbl.add],
   [Hashtbl.add] and a re-exported alias all classify alike.  The "_"
   pattern component matches any single component.  The table is the
   analysis' trusted base: unlisted externals are assumed pure, which
   is the usable default for a lint (the dangerous stdlib surface is
   enumerated here; in-tree functions are analyzed, not assumed). *)

type classification =
  | Pool_entry  (* closure arguments become pool tasks *)
  | Mutator of { arg : int; what : string }  (* writes its [arg]-th argument *)
  | Reader of { arg : int; what : string }  (* reads its [arg]-th argument *)
  | Safe  (* Atomic / Domain.DLS: domain-safe by construction *)
  | Lock  (* takes a lock: blocking, and marks the caller a guard *)
  | Lock_wrapper  (* Mutex.protect: Lock + guards its closure argument *)
  | Tainted of taint
  | Plain  (* possibly an in-tree call: resolve against the call graph *)

let pool_entries =
  [
    [ "Pool"; "parallel_map" ];
    [ "Pool"; "parallel_map_chunked" ];
    [ "Pool"; "parallel_init" ];
    [ "Pool"; "map" ];
    [ "Pool"; "map_chunked" ];
  ]

let suffix_matches ~pattern comps =
  let lp = List.length pattern and lc = List.length comps in
  lc >= lp
  &&
  let tail =
    let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
    drop (lc - lp) comps
  in
  List.for_all2 (fun p c -> p = "_" || p = c) pattern tail

let classify comps =
  let m pattern = suffix_matches ~pattern comps in
  if List.exists (fun p -> suffix_matches ~pattern:p comps) pool_entries then Pool_entry
  else if m [ "Atomic"; "_" ] || m [ "Domain"; "DLS"; "_" ] then Safe
  else if m [ "Mutex"; "protect" ] then Lock_wrapper
  else if m [ "Mutex"; "lock" ] || m [ "Mutex"; "try_lock" ] then Lock
  else if
    m [ "Condition"; "wait" ] || m [ "Domain"; "join" ] || m [ "Unix"; "sleep" ]
    || m [ "Unix"; "sleepf" ] || m [ "Event"; "sync" ] || m [ "Event"; "receive" ]
    || m [ "Event"; "send" ] || m [ "Semaphore"; "Counting"; "acquire" ]
    || m [ "Semaphore"; "Binary"; "acquire" ]
  then Tainted Blocking
  else if m [ "Random"; "_" ] || m [ "Random"; "State"; "_" ] then Tainted Rng
  else if m [ "Unix"; "gettimeofday" ] || m [ "Unix"; "time" ] || m [ "Sys"; "time" ]
  then Tainted Clock
  else if
    m [ "Stdlib"; "print_string" ] || m [ "Stdlib"; "print_endline" ]
    || m [ "Stdlib"; "print_newline" ] || m [ "Stdlib"; "print_char" ]
    || m [ "Stdlib"; "print_int" ] || m [ "Stdlib"; "print_float" ]
    || m [ "Stdlib"; "prerr_string" ] || m [ "Stdlib"; "prerr_endline" ]
    || m [ "Stdlib"; "prerr_newline" ] || m [ "Stdlib"; "read_line" ]
    || m [ "Stdlib"; "output_string" ] || m [ "Stdlib"; "output_char" ]
    || m [ "Stdlib"; "output_bytes" ] || m [ "Stdlib"; "output_value" ]
    || m [ "Stdlib"; "input_line" ] || m [ "Stdlib"; "input_char" ]
    || m [ "Stdlib"; "really_input_string" ] || m [ "Stdlib"; "open_in" ]
    || m [ "Stdlib"; "open_in_bin" ] || m [ "Stdlib"; "open_out" ]
    || m [ "Stdlib"; "open_out_bin" ] || m [ "Stdlib"; "close_in" ]
    || m [ "Stdlib"; "close_out" ] || m [ "Stdlib"; "flush" ]
    || m [ "Printf"; "printf" ] || m [ "Printf"; "eprintf" ]
    || m [ "Printf"; "fprintf" ] || m [ "Format"; "printf" ]
    || m [ "Format"; "eprintf" ] || m [ "Sys"; "command" ]
    || m [ "In_channel"; "_" ] || m [ "Out_channel"; "_" ]
    || m [ "Unix"; "read" ] || m [ "Unix"; "write" ] || m [ "Unix"; "select" ]
    || m [ "Unix"; "system" ] || m [ "Unix"; "openfile" ]
  then Tainted Io
  else if m [ "Stdlib"; ":=" ] || m [ "Stdlib"; "incr" ] || m [ "Stdlib"; "decr" ]
  then Mutator { arg = 0; what = "ref assignment" }
  else if m [ "Stdlib"; "!" ] then Reader { arg = 0; what = "ref dereference" }
  else begin
    let mutator_tables =
      [
        (* (module, function, mutated argument index) *)
        ("Hashtbl", "add", 0); ("Hashtbl", "replace", 0); ("Hashtbl", "remove", 0);
        ("Hashtbl", "reset", 0); ("Hashtbl", "clear", 0);
        ("Hashtbl", "filter_map_inplace", 1); ("Hashtbl", "add_seq", 0);
        ("Hashtbl", "replace_seq", 0);
        ("Array", "set", 0); ("Array", "unsafe_set", 0); ("Array", "fill", 0);
        ("Array", "blit", 2); ("Array", "sort", 1); ("Array", "stable_sort", 1);
        ("Array", "fast_sort", 1);
        ("Bytes", "set", 0); ("Bytes", "unsafe_set", 0); ("Bytes", "fill", 0);
        ("Bytes", "blit", 2);
        ("Buffer", "add_char", 0); ("Buffer", "add_string", 0);
        ("Buffer", "add_bytes", 0); ("Buffer", "add_substring", 0);
        ("Buffer", "add_subbytes", 0); ("Buffer", "add_buffer", 0);
        ("Buffer", "clear", 0); ("Buffer", "reset", 0); ("Buffer", "truncate", 0);
        ("Queue", "add", 1); ("Queue", "push", 1); ("Queue", "pop", 0);
        ("Queue", "take", 0); ("Queue", "clear", 0); ("Queue", "transfer", 0);
        ("Stack", "push", 1); ("Stack", "pop", 0); ("Stack", "clear", 0);
      ]
    in
    let reader_tables =
      [
        ("Hashtbl", "find", 0); ("Hashtbl", "find_opt", 0); ("Hashtbl", "find_all", 0);
        ("Hashtbl", "mem", 0); ("Hashtbl", "iter", 0); ("Hashtbl", "fold", 0);
        ("Hashtbl", "length", 0); ("Hashtbl", "to_seq", 0); ("Hashtbl", "copy", 0);
        ("Array", "get", 0); ("Array", "unsafe_get", 0);
        ("Bytes", "get", 0); ("Buffer", "contents", 0); ("Buffer", "length", 0);
        ("Queue", "peek", 0); ("Queue", "length", 0); ("Queue", "is_empty", 0);
        ("Stack", "top", 0); ("Stack", "is_empty", 0);
      ]
    in
    let hit table =
      List.find_opt (fun (md, fn, _) -> m [ md; fn ]) table
    in
    match hit mutator_tables with
    | Some (md, fn, arg) -> Mutator { arg; what = md ^ "." ^ fn }
    | None -> (
        match hit reader_tables with
        | Some (md, fn, arg) -> Reader { arg; what = md ^ "." ^ fn }
        | None -> Plain)
  end

(* ------------------------------------------------------------------ *)
(* Fixpoint *)

(* [resolve ~unit_mod comps] maps a normalized call path to a def
   symbol, or None for externals — supplied by Lint_callgraph, which
   owns the alias maps. *)
type resolver = unit_mod:string -> string list -> string option

let is_lock_wrapper ~resolve ~locks_of ~unit_mod callee =
  suffix_matches ~pattern:[ "Mutex"; "protect" ] callee
  ||
  match resolve ~unit_mod callee with Some sym -> locks_of sym | None -> false

(* Fold one atom list into a summary, given the current table of callee
   summaries.  [guarded] is true inside a closure passed to a
   lock-taking function; a def that locks directly also guards its own
   writes (function-granular lock discipline — documented heuristic). *)
let eval_atoms ~resolve ~summaries ~locks_of ~unit_mod ~guarded atoms =
  let add_taint acc t origin =
    if List.mem_assoc t acc.taints then acc
    else { acc with taints = (t, origin) :: acc.taints }
  in
  let rec go ~guarded acc atoms =
    List.fold_left
      (fun acc atom ->
        match atom with
        | Write { loc; desc } ->
            if guarded then { acc with guarded_writes = true }
            else if acc.writes = None then
              { acc with writes = Some (Direct { loc; desc }) }
            else acc
        | Read _ -> { acc with reads = true }
        | Taint_of { taint; loc; desc } -> add_taint acc taint (Direct { loc; desc })
        | Call { comps; raw = _; loc } -> (
            match resolve ~unit_mod comps with
            | None -> acc
            | Some callee -> (
                match Hashtbl.find_opt summaries callee with
                | None -> acc
                | Some s ->
                    let acc =
                      if s.writes <> None && acc.writes = None && not guarded then
                        { acc with writes = Some (Via { callee; loc }) }
                      else if s.writes <> None && guarded then
                        { acc with guarded_writes = true }
                      else acc
                    in
                    let acc =
                      { acc with guarded_writes = acc.guarded_writes || s.guarded_writes }
                    in
                    let acc = if s.reads then { acc with reads = true } else acc in
                    List.fold_left
                      (fun acc (t, _) -> add_taint acc t (Via { callee; loc }))
                      acc s.taints))
        | Closure { callee; loc = _; atoms } ->
            let inner_guarded =
              guarded || is_lock_wrapper ~resolve ~locks_of ~unit_mod callee
            in
            go ~guarded:inner_guarded acc atoms)
      acc atoms
  in
  go ~guarded empty_summary atoms

(* Definition-site suppression: an [@lint.allow] on the binding clears
   the corresponding property from the summary, which also stops its
   propagation to callers — the justification lives where the effect
   is. *)
let apply_allows allows s =
  let has id = List.mem "*" allows || List.mem id allows in
  let s = if has "pool-task-purity" then { s with writes = None } else s in
  if has "blocking-in-task" then
    { s with taints = List.filter (fun (t, _) -> t <> Blocking && t <> Io) s.taints }
  else s

let solve ~(resolve : resolver) defs =
  let summaries = Hashtbl.create (List.length defs * 2) in
  let locks = Hashtbl.create 16 in
  List.iter
    (fun d ->
      Hashtbl.replace summaries d.sym empty_summary;
      if d.locks then Hashtbl.replace locks d.sym ())
    defs;
  let locks_of sym = Hashtbl.mem locks sym in
  let changed = ref true in
  let passes = ref 0 in
  (* Monotone over a finite lattice: each pass can only add properties,
     so the loop terminates; the bound is belt and braces. *)
  while !changed && !passes <= List.length defs + 2 do
    changed := false;
    incr passes;
    List.iter
      (fun d ->
        let s =
          eval_atoms ~resolve ~summaries ~locks_of ~unit_mod:d.unit_mod
            ~guarded:d.locks d.atoms
          |> apply_allows d.allows
        in
        let prev = Hashtbl.find summaries d.sym in
        let grew =
          (s.writes <> None && prev.writes = None)
          || (s.guarded_writes && not prev.guarded_writes)
          || (s.reads && not prev.reads)
          || List.exists (fun (t, _) -> not (List.mem_assoc t prev.taints)) s.taints
        in
        if grew then begin
          Hashtbl.replace summaries d.sym s;
          changed := true
        end)
      defs
  done;
  (summaries, locks_of)

(* ------------------------------------------------------------------ *)
(* Chains *)

let loc_line (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum
let loc_file (loc : Location.t) = loc.Location.loc_start.Lexing.pos_fname

(* Follow Via links from [sym] down to the Direct origin of [select],
   returning the hop symbols (with call-site lines) and the sink. *)
let chain ~summaries ~select sym =
  let rec follow visited sym =
    if List.mem sym visited then ([], None)
    else
      match Hashtbl.find_opt summaries sym with
      | None -> ([], None)
      | Some s -> (
          match select s with
          | None -> ([], None)
          | Some (Direct { loc; desc }) -> ([], Some (loc, desc))
          | Some (Via { callee; loc = _ }) ->
              let hops, sink = follow (sym :: visited) callee in
              (callee :: hops, sink))
  in
  follow [] sym

let write_chain ~summaries sym = chain ~summaries ~select:(fun s -> s.writes) sym

let taint_chain ~summaries ~taint sym =
  chain ~summaries ~select:(fun s -> List.assoc_opt taint s.taints) sym

(* Evaluate a task closure's atom list against the solved summaries:
   the same fold a def gets, used for anonymous closures at pool call
   sites. *)
let eval_closure ~resolve ~summaries ~locks_of ~unit_mod atoms =
  eval_atoms ~resolve ~summaries ~locks_of ~unit_mod ~guarded:false atoms

(* ------------------------------------------------------------------ *)
(* Dump *)

let summary_to_string s =
  let taints =
    List.filter_map
      (fun t ->
        if List.mem_assoc t s.taints then Some (taint_name t) else None)
      all_taints
  in
  let guarded = if s.guarded_writes then [ "guarded-writes" ] else [] in
  match taints @ guarded with
  | [] -> level s
  | extras -> Printf.sprintf "%s {%s}" (level s) (String.concat ", " extras)

let dump ~summaries defs =
  List.sort (fun a b -> String.compare a.sym b.sym) defs
  |> List.map (fun d ->
         let s =
           Option.value ~default:empty_summary (Hashtbl.find_opt summaries d.sym)
         in
         Printf.sprintf "%s [%s:%d] %s" d.sym d.file d.line (summary_to_string s))
