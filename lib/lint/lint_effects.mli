(** Effect inference over the typed call graph (phase 2 of tmedb-lint).

    Every analyzed binding is summarized over the lattice

    {v pure ⊑ reads_shared ⊑ writes_shared v}

    with four orthogonal taints ([rng], [clock], [io], [blocking]).
    "Shared" means module-level mutable state — the only state the
    PR-6 work-stealing pool can race on; writes through [Atomic.*] and
    [Domain.DLS] are domain-safe by construction, and writes inside a
    lock-guarded region (a [Mutex.protect] thunk, a closure passed to a
    function that takes a lock, or a function that locks directly) are
    recorded as guarded rather than unguarded.  Summaries propagate
    across resolved call edges to a fixpoint; each inherited property
    keeps the edge it arrived through so rule reports can print the
    full chain from a pool entry point to the offending primitive.
    See [docs/ANALYSIS.md] for the model and its documented limits. *)

type taint = Rng | Clock | Io | Blocking  (** Orthogonal effect taints. *)

val taint_name : taint -> string
(** Lower-case name used in reports and the effects dump. *)

(** One direct observation the tree walker made inside a binding. *)
type atom =
  | Write of { loc : Location.t; desc : string }
      (** unguarded mutation of module-level state *)
  | Read of { loc : Location.t; desc : string }
      (** read of module-level mutable state *)
  | Taint_of of { taint : taint; loc : Location.t; desc : string }
      (** direct use of a tainted primitive *)
  | Call of { comps : string list; raw : string; loc : Location.t }
      (** call to a non-primitive function, resolved at fixpoint time *)
  | Closure of { callee : string list; loc : Location.t; atoms : atom list }
      (** literal [fun] passed as an argument to [callee] *)

type def = {
  sym : string;  (** ["Module.name"] after alias normalization *)
  unit_mod : string;  (** normalized compilation-unit module name *)
  file : string;  (** source path the def was read from *)
  line : int;  (** 1-based line of the binding *)
  atoms : atom list;  (** direct observations, in source order *)
  allows : string list;  (** [[@lint.allow]] ids in force at the binding *)
  locks : bool;  (** the body takes a lock directly *)
}
(** An analyzed binding: the call-graph node. *)

(** Where a summary property came from: the primitive itself, or a
    call edge to the function it was inherited from. *)
type origin =
  | Direct of { loc : Location.t; desc : string }
  | Via of { callee : string; loc : Location.t }

type summary = {
  writes : origin option;  (** unguarded shared write, if any *)
  guarded_writes : bool;  (** performs lock-guarded shared writes *)
  reads : bool;  (** reads shared mutable state *)
  taints : (taint * origin) list;  (** at most one origin per taint *)
}
(** Inferred effect signature of one binding. *)

val empty_summary : summary
(** The pure, taint-free signature. *)

val level : summary -> string
(** ["pure"], ["reads_shared"] or ["writes_shared"]. *)

(** How a call target classifies against the primitive tables. *)
type classification =
  | Pool_entry  (** closure arguments become pool tasks *)
  | Mutator of { arg : int; what : string }
      (** writes its [arg]-th positional argument *)
  | Reader of { arg : int; what : string }
      (** reads its [arg]-th positional argument *)
  | Safe  (** [Atomic.*] / [Domain.DLS.*]: domain-safe by construction *)
  | Lock  (** [Mutex.lock]/[try_lock]: blocking, marks the caller a guard *)
  | Lock_wrapper  (** [Mutex.protect]: [Lock] + guards its closure argument *)
  | Tainted of taint  (** rng / clock / io / blocking primitive *)
  | Plain  (** possibly an in-tree call: resolve against the call graph *)

val classify : string list -> classification
(** [classify comps] classifies a normalized call path (suffix match,
    so [Stdlib.Hashtbl.add] and [Hashtbl.add] agree). *)

val suffix_matches : pattern:string list -> string list -> bool
(** [suffix_matches ~pattern comps] tests whether [comps] ends with
    [pattern]; a ["_"] pattern component matches any one component. *)

type resolver = unit_mod:string -> string list -> string option
(** Maps a normalized call path (seen from compilation unit
    [unit_mod]) to a def symbol, or [None] for externals. *)

val solve :
  resolve:resolver -> def list -> (string, summary) Hashtbl.t * (string -> bool)
(** [solve ~resolve defs] runs the propagation to a fixpoint and
    returns the summary table plus the lock predicate ([locks_of sym]
    is true when [sym] takes a lock directly). *)

val eval_closure :
  resolve:resolver ->
  summaries:(string, summary) Hashtbl.t ->
  locks_of:(string -> bool) ->
  unit_mod:string ->
  atom list ->
  summary
(** Evaluate an anonymous task closure's atoms against the solved
    summaries — the same fold a named def gets. *)

val write_chain :
  summaries:(string, summary) Hashtbl.t ->
  string ->
  string list * (Location.t * string) option
(** [write_chain ~summaries sym] follows [Via] links from [sym] to the
    unguarded write: the intermediate hop symbols in call order, and
    the sink location with its description ([None] when [sym] does not
    write). *)

val taint_chain :
  summaries:(string, summary) Hashtbl.t ->
  taint:taint ->
  string ->
  string list * (Location.t * string) option
(** Likewise for a taint's origin. *)

val loc_line : Location.t -> int
(** 1-based start line. *)

val loc_file : Location.t -> string
(** Source file recorded in the location. *)

val summary_to_string : summary -> string
(** ["writes_shared {blocking, guarded-writes}"]-style rendering used
    by [--effects-dump]. *)

val dump : summaries:(string, summary) Hashtbl.t -> def list -> string list
(** One [sym [file:line] signature] line per def, sorted by symbol —
    the [--effects-dump] payload. *)
