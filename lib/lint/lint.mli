(** Static analysis for the tmedb tree.

    [tmedb-lint] parses every [.ml]/[.mli] with [compiler-libs] and
    enforces the project invariants that the determinism and telemetry
    work (PR 1 / PR 2) otherwise only sample at runtime:

    - {b R1 nondet-iteration}: [Hashtbl.iter]/[Hashtbl.fold]/
      [Hashtbl.to_seq*] whose result is not re-sorted, in the
      result-affecting libraries ([lib/core], [lib/steiner],
      [lib/tveg], [lib/tvg], [lib/trace]).  Hash-bucket order is not
      part of any contract; iterating it unsorted makes figures depend
      on insertion history.
    - {b R2 hidden-rng}: any use of [Stdlib.Random] outside
      [lib/prelude/rng.ml].  All randomness must flow through the
      splittable [Rng] so [--jobs] stays bit-identical.
    - {b R3 wall-clock}: [Unix.gettimeofday]/[Sys.time] outside
      [lib/obs] and [bench/].  Kernels must not read the clock.
    - {b R4 toplevel-mutable-state}: module-level [ref]/
      [Hashtbl.create]/mutable-record literals outside [lib/obs];
      such state races under the PR-1 domain pool.
    - {b R5 float-polymorphic-compare}: polymorphic [=]/[<>]/
      [compare]/[min]/[max] applied to syntactically float-ish
      operands in the numeric kernels; use [Float.equal],
      [Float.compare] etc.
    - {b R6 undocumented-val}: a public [val] in [lib/core] or
      [lib/obs] without an odoc comment (the [scripts/docs_check.sh]
      gate, re-implemented on the real parsed signature).

    This module is phase 1.  The interprocedural phase-2 rules (R7
    [pool-task-purity], R8 [rng-taint], R9 [blocking-in-task]) run over
    the [.cmt] typed trees via [Lint_engine] / [Lint_callgraph] /
    [Lint_effects] / [Lint_rules_typed]; see [docs/ANALYSIS.md].

    Suppression is explicit and auditable: attach
    [[@lint.allow "rule"]] to an expression, value binding or
    signature item (several rule names may be comma-separated; a bare
    [[@lint.allow]] or ["*"] allows every rule), write
    [[@@@lint.allow "rule"]] once for a whole file, or add a
    [lint.allowlist] line for whole-file/whole-directory exemptions. *)

type rule = {
  id : string;  (** stable rule name, e.g. ["nondet-iteration"] *)
  code : string;  (** short code used in reports, e.g. ["R1"] *)
  summary : string;  (** one-line description *)
}
(** A named invariant the analyzer enforces. *)

val rules : rule list
(** All rules, in R1..R9 order.  R1–R6 are the phase-1 parsetree rules
    enforced by {!analyze_source}; R7–R9 are the phase-2 interprocedural
    rules enforced by [Lint_rules_typed] on the [.cmt] typed trees. *)

val typed_rules : rule list
(** The phase-2 rules (R7 pool-task-purity, R8 rng-taint, R9
    blocking-in-task), in order. *)

val is_typed : rule -> bool
(** [is_typed r] is true when [r] is a phase-2 rule. *)

val find_rule : string -> rule option
(** [find_rule id] looks a rule up by its stable name. *)

val normalize_path : string -> string
(** Slash-normalized, [./]-stripped repo-relative path, the form every
    scope test and allowlist pattern is matched against. *)

val in_scope : rule -> string -> bool
(** [in_scope rule path] tells whether [rule] applies to the file at
    (normalized) [path] — the rule table in the module doc. *)

val allows_of_attrs : Parsetree.attributes -> string list
(** Rule ids allowed by any [[@lint.allow "r1, r2"]] attributes in the
    list (["*"] for a bare [[@lint.allow]]); [[]] when none.  Shared
    with the typed phase: [Typedtree] attributes are [Parsetree]
    attributes. *)

type finding = {
  rule : rule;  (** the rule that fired *)
  file : string;  (** repo-relative path *)
  line : int;  (** 1-based line *)
  col : int;  (** 0-based column, matching compiler diagnostics *)
  message : string;  (** what was found and how to fix or suppress it *)
}
(** One unsuppressed rule violation. *)

type allow_entry = {
  pattern : string;
      (** exact repo-relative file path, or a directory prefix that
          exempts everything beneath it *)
  allowed_rule : string;  (** a rule id, or ["*"] for every rule *)
}
(** One parsed [lint.allowlist] line. *)

type allowlist = allow_entry list
(** Whole-file exemptions, usually parsed from [lint.allowlist]. *)

val parse_allowlist : source_name:string -> string -> (allowlist, string) result
(** [parse_allowlist ~source_name text] parses allowlist syntax: one
    [<path> <rule>] pair per line, [#] comments and blank lines
    ignored.  Unknown rule names and malformed lines are errors
    (reported with [source_name] and the line number) so stale entries
    cannot linger unnoticed. *)

val load_allowlist : string -> (allowlist, string) result
(** [load_allowlist path] reads and parses the file at [path]. *)

val allowlisted : allowlist -> file:string -> rule -> bool
(** [allowlisted allowlist ~file rule] tells whether an entry exempts
    [file] (exact path or directory prefix) from [rule]. *)

val stale_entries : exists:(string -> bool) -> allowlist -> allow_entry list
(** [stale_entries ~exists allowlist] returns the entries whose
    [pattern] matches nothing on disk ([exists] is the probe, normally
    [Sys.file_exists]).  Stale exemptions are hard errors in the CLI:
    the code they justified is gone, and a future file under the same
    path would inherit an unreviewed pass. *)

val analyze_source :
  ?only:string list ->
  ?allowlist:allowlist ->
  path:string ->
  string ->
  (finding list, string) result
(** [analyze_source ~path source] parses [source] ([Parse.interface]
    when [path] ends in [.mli], [Parse.implementation] otherwise) and
    returns the unsuppressed findings, sorted by position.  [path]
    also decides which rules are in scope (see the rule table above),
    so test fixtures pick their scope by choosing a virtual path.
    [?only] restricts the run to the given rule ids; [?allowlist]
    applies whole-file exemptions.  Syntax errors are [Error]. *)

val analyze_file :
  ?only:string list ->
  ?allowlist:allowlist ->
  string ->
  (finding list, string) result
(** [analyze_file path] reads [path] and runs {!analyze_source}. *)

val collect_files : string list -> (string list, string) result
(** [collect_files paths] expands each path: a file is kept when it
    ends in [.ml]/[.mli]; a directory is walked recursively, skipping
    [_build] and dot-directories.  The result is sorted so every run
    visits files in the same order.  A non-existent path is an
    [Error]. *)

val report_text : Format.formatter -> finding list -> unit
(** [report_text ppf findings] prints one [file:line:col: [code/id]
    message] line per finding. *)

val report_json : Format.formatter -> finding list -> unit
(** [report_json ppf findings] prints a machine-readable report:
    [{"findings": [...], "count": N}]. *)

val report_sarif : Format.formatter -> finding list -> unit
(** [report_sarif ppf findings] prints a SARIF 2.1.0 document (single
    run, full rule catalogue, one result per finding) so CI can attach
    findings as PR annotations. *)
