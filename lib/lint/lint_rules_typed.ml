(* Phase-2 rules: R7 pool-task-purity, R8 rng-taint, R9
   blocking-in-task.  They all run over the solved effect summaries
   (Lint_effects.solve) and the pool sites Lint_callgraph collected;
   each finding on an inherited effect prints the full call chain from
   the pool entry down to the offending primitive, so a report is
   actionable without re-running the analysis by hand. *)

let rule id =
  match Lint.find_rule id with
  | Some r -> r
  | None -> invalid_arg ("Lint_rules_typed: unknown rule " ^ id)

let r_pool_purity () = rule "pool-task-purity"
let r_rng_taint () = rule "rng-taint"
let r_blocking () = rule "blocking-in-task"

let pos_col (loc : Location.t) =
  loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol

(* Render "Pool.map -> <task> -> A.f -> B.g -> ref assignment on c
   (lib/x.ml:12)". *)
let chain_text ~entry ~task_label hops sink =
  let sink_text =
    match sink with
    | Some (loc, desc) ->
        [
          Printf.sprintf "%s (%s:%d)" desc
            (Lint_effects.loc_file loc)
            (Lint_effects.loc_line loc);
        ]
    | None -> []
  in
  String.concat " -> " ((entry :: task_label) @ hops @ sink_text)

(* Expand an origin into (hops, sink), continuing through the summary
   table when the origin is itself inherited. *)
let origin_hops ~follow = function
  | Lint_effects.Direct { loc; desc } -> ([], Some (loc, desc))
  | Lint_effects.Via { callee; loc = _ } ->
      let hops, sink = follow callee in
      (callee :: hops, sink)

let run ?(only = []) ?(allowlist = []) units =
  let defs = Lint_callgraph.defs units in
  let resolve = Lint_callgraph.resolver units in
  let summaries, locks_of = Lint_effects.solve ~resolve defs in
  let findings = ref [] in
  let wanted (r : Lint.rule) = only = [] || List.mem r.Lint.id only in
  let site_allowed (site : Lint_callgraph.site) (r : Lint.rule) =
    List.mem "*" site.site_allows || List.mem r.Lint.id site.site_allows
  in
  let emit (site : Lint_callgraph.site) (r : Lint.rule) ~loc message =
    if
      wanted r
      && Lint.in_scope r site.site_file
      && (not (site_allowed site r))
      && not (Lint.allowlisted allowlist ~file:site.site_file r)
    then
      findings :=
        {
          Lint.rule = r;
          file = site.site_file;
          line = Lint_effects.loc_line loc;
          col = pos_col loc;
          message;
        }
        :: !findings
  in
  let follow_write sym = Lint_effects.write_chain ~summaries sym in
  let follow_taint taint sym = Lint_effects.taint_chain ~summaries ~taint sym in
  let check_task site ~task_label ~loc (s : Lint_effects.summary) =
    (match s.Lint_effects.writes with
    | Some origin ->
        let hops, sink = origin_hops ~follow:follow_write origin in
        emit site (r_pool_purity ()) ~loc
          (Printf.sprintf
             "task passed to %s writes unguarded shared state: %s; make it \
              atomic or per-task (Domain.DLS), guard it with the owning lock, \
              or suppress at the write site with [@lint.allow \
              \"pool-task-purity\"]"
             site.Lint_callgraph.entry
             (chain_text ~entry:site.Lint_callgraph.entry ~task_label hops sink))
    | None -> ());
    let blocking_like =
      (* R9 covers lock acquisition, channel waits and IO alike: in the
         caller-helps-drain pool a task that blocks can deadlock the
         scheduler, and IO stalls the domain the same way. *)
      match List.assoc_opt Lint_effects.Blocking s.Lint_effects.taints with
      | Some o -> Some (Lint_effects.Blocking, o)
      | None -> (
          match List.assoc_opt Lint_effects.Io s.Lint_effects.taints with
          | Some o -> Some (Lint_effects.Io, o)
          | None -> None)
    in
    match blocking_like with
    | Some (taint, origin) ->
        let hops, sink = origin_hops ~follow:(follow_taint taint) origin in
        emit site (r_blocking ()) ~loc
          (Printf.sprintf
             "task passed to %s can block (%s): %s; move the %s outside the \
              pool, or suppress at the definition site with [@lint.allow \
              \"blocking-in-task\"]"
             site.Lint_callgraph.entry
             (Lint_effects.taint_name taint)
             (chain_text ~entry:site.Lint_callgraph.entry ~task_label hops sink)
             (if taint = Lint_effects.Io then "IO" else "blocking call"))
    | None -> ()
  in
  List.iter
    (fun (u : Lint_callgraph.unit_info) ->
      List.iter
        (fun (site : Lint_callgraph.site) ->
          List.iter
            (fun (task : Lint_callgraph.task) ->
              match task with
              | Lint_callgraph.Task_fun { loc; atoms; captured_rng } ->
                  let s =
                    Lint_effects.eval_closure ~resolve ~summaries ~locks_of
                      ~unit_mod:site.Lint_callgraph.site_unit atoms
                  in
                  check_task site ~task_label:[ "<task>" ] ~loc s;
                  List.iter
                    (fun (name, cap_loc) ->
                      emit site (r_rng_taint ()) ~loc:cap_loc
                        (Printf.sprintf
                           "task passed to %s captures the shared Rng.t \
                            handle %s; split a child per task up front \
                            (Rng.split) and pass it as a task argument so \
                            streams stay deterministic under --jobs"
                           site.Lint_callgraph.entry name))
                    captured_rng
              | Lint_callgraph.Task_ref { loc; raw; comps } -> (
                  match
                    resolve ~unit_mod:site.Lint_callgraph.site_unit comps
                  with
                  | None -> ()
                  | Some sym -> (
                      match Hashtbl.find_opt summaries sym with
                      | None -> ()
                      | Some s ->
                          (* def-site allows were already applied inside
                             solve, so a justified helper stays quiet here *)
                          ignore raw;
                          check_task site ~task_label:[ sym ] ~loc s)))
            site.Lint_callgraph.tasks)
        u.Lint_callgraph.sites)
    units;
  List.sort
    (fun (a : Lint.finding) b ->
      match String.compare a.Lint.file b.Lint.file with
      | 0 -> (
          match compare a.Lint.line b.Lint.line with
          | 0 -> compare a.Lint.col b.Lint.col
          | c -> c)
      | c -> c)
    !findings
