(* The analyzer is a thin layer over compiler-libs: [Parse] gives the
   real parsetree (so rule R6 sees exactly the signature odoc sees and
   the expression rules survive any formatting), and an [Ast_iterator]
   walks expressions carrying two pieces of context — the stack of
   active [@lint.allow] scopes and whether the current subtree is an
   argument of a sorting call (which launders rule R1). *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Rules *)

type rule = { id : string; code : string; summary : string }

let r_nondet =
  {
    id = "nondet-iteration";
    code = "R1";
    summary =
      "Hashtbl iteration whose result is not re-sorted, in a result-affecting library";
  }

let r_rng =
  { id = "hidden-rng"; code = "R2"; summary = "Stdlib.Random outside lib/prelude/rng.ml" }

let r_clock =
  {
    id = "wall-clock";
    code = "R3";
    summary = "Unix.gettimeofday/Sys.time outside lib/obs and bench/";
  }

let r_mutable =
  {
    id = "toplevel-mutable-state";
    code = "R4";
    summary = "module-level mutable state outside lib/obs (races under the domain pool)";
  }

let r_float_cmp =
  {
    id = "float-polymorphic-compare";
    code = "R5";
    summary = "polymorphic =/<>/compare/min/max on float operands in a numeric kernel";
  }

let r_undoc =
  {
    id = "undocumented-val";
    code = "R6";
    summary = "public val without an odoc comment in lib/core or lib/obs";
  }

(* Phase-2 rules: interprocedural, computed on the .cmt typed trees by
   Lint_rules_typed (never by [analyze_source]).  They live in the same
   catalogue so --list-rules, --only and the allowlist treat both
   phases uniformly. *)

let r_pool_purity =
  {
    id = "pool-task-purity";
    code = "R7";
    summary = "closure reaching the pool transitively writes unguarded shared state";
  }

let r_rng_taint =
  {
    id = "rng-taint";
    code = "R8";
    summary = "pool task captures a shared Rng.t handle instead of a per-task split";
  }

let r_blocking =
  {
    id = "blocking-in-task";
    code = "R9";
    summary = "lock, channel or IO reachable from inside a pool task";
  }

let rules =
  [ r_nondet; r_rng; r_clock; r_mutable; r_float_cmp; r_undoc ]
  @ [ r_pool_purity; r_rng_taint; r_blocking ]

let typed_rules = [ r_pool_purity; r_rng_taint; r_blocking ]
let is_typed r = List.exists (fun t -> t.id = r.id) typed_rules
let find_rule id = List.find_opt (fun r -> r.id = id) rules

type finding = { rule : rule; file : string; line : int; col : int; message : string }

(* ------------------------------------------------------------------ *)
(* Paths and rule scopes *)

let normalize_path path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  let rec strip p =
    if String.length p >= 2 && String.sub p 0 2 = "./" then
      strip (String.sub p 2 (String.length p - 2))
    else p
  in
  strip path

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* [under "lib/core" "lib/core/eedcb.ml"] but not "lib/core2/...". *)
let under dir path = path = dir || starts_with ~prefix:(dir ^ "/") path
let under_any dirs path = List.exists (fun d -> under d path) dirs

(* Libraries whose iteration order reaches figure output. *)
let result_affecting = [ "lib/core"; "lib/steiner"; "lib/tveg"; "lib/tvg"; "lib/trace" ]

(* Numeric kernels where polymorphic comparison on floats hides NaN
   surprises and boxing. *)
let float_kernels = result_affecting @ [ "lib/channel"; "lib/nlp" ]

(* Directories whose public vals the docs gate covers. *)
let documented_scope = [ "lib/core"; "lib/obs"; "lib/report" ]

let in_scope rule path =
  if rule.id = r_nondet.id then under_any result_affecting path
  else if rule.id = r_rng.id then path <> "lib/prelude/rng.ml"
  else if rule.id = r_clock.id then not (under "lib/obs" path || under "bench" path)
  else if rule.id = r_mutable.id then not (under "lib/obs" path)
  else if rule.id = r_float_cmp.id then under_any float_kernels path
  else if rule.id = r_undoc.id then under_any documented_scope path
  else if is_typed rule then
    (* The typed rules apply to every analyzed compilation unit except
       the pool itself: its workers block on their own condition
       variable and write result slots by design — it IS the scheduler
       the rules protect. *)
    path <> "lib/prelude/pool.ml"
  else false

(* ------------------------------------------------------------------ *)
(* Allowlist *)

type allow_entry = { pattern : string; allowed_rule : string }
type allowlist = allow_entry list

let parse_allowlist ~source_name text =
  let lines = String.split_on_char '\n' text in
  let entries = ref [] in
  let error = ref None in
  List.iteri
    (fun i line ->
      if !error = None then begin
        let line =
          match String.index_opt line '#' with
          | Some j -> String.sub line 0 j
          | None -> line
        in
        match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
        | [] -> ()
        | [ pattern; rule ] ->
            if rule <> "*" && find_rule rule = None then
              error :=
                Some (Printf.sprintf "%s:%d: unknown rule %S" source_name (i + 1) rule)
            else
              entries :=
                { pattern = normalize_path pattern; allowed_rule = rule } :: !entries
        | _ ->
            error :=
              Some
                (Printf.sprintf "%s:%d: expected `<path> <rule>`, got %S" source_name
                   (i + 1) line)
      end)
    lines;
  match !error with Some e -> Error e | None -> Ok (List.rev !entries)

let load_allowlist path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> parse_allowlist ~source_name:path text
  | exception Sys_error msg -> Error msg

let allowlisted allowlist ~file rule =
  List.exists
    (fun e ->
      (e.allowed_rule = "*" || e.allowed_rule = rule.id)
      && (e.pattern = file || under e.pattern file))
    allowlist

(* An allowlist entry whose path prefix matches nothing on disk is a
   stale exemption: the code it justified is gone, and keeping the line
   would let a future file under the same name inherit an unreviewed
   pass.  [exists] is the file-system probe (tests substitute their
   own), applied to the pattern as both a file and a directory. *)
let stale_entries ~exists allowlist =
  List.filter (fun e -> not (exists e.pattern)) allowlist

(* ------------------------------------------------------------------ *)
(* [@lint.allow] attributes *)

(* A [lint.allow] attribute carries a comma-separated list of rule ids
   in a string payload; no payload (or "*") means every rule. *)
let allows_of_attrs attrs =
  List.concat_map
    (fun a ->
      if a.attr_name.Location.txt <> "lint.allow" then []
      else begin
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _;
              };
            ] ->
            String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) "")
        | _ -> [ "*" ]
      end)
    attrs

(* ------------------------------------------------------------------ *)
(* Analysis context *)

type ctx = {
  file : string;
  only : rule -> bool;
  allowlist : allowlist;
  mutable findings : finding list;
  mutable allow_stack : string list list;
  mutable sorted_depth : int;
  mutable mutable_labels : string list;  (* record labels declared mutable in this file *)
}

let allowed ctx rule =
  List.exists (fun allows -> List.mem "*" allows || List.mem rule.id allows) ctx.allow_stack

let emit ctx rule (loc : Location.t) message =
  if
    ctx.only rule && in_scope rule ctx.file
    && (not (allowed ctx rule))
    && not (allowlisted ctx.allowlist ~file:ctx.file rule)
  then begin
    let pos = loc.Location.loc_start in
    ctx.findings <-
      {
        rule;
        file = ctx.file;
        line = pos.Lexing.pos_lnum;
        col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
        message;
      }
      :: ctx.findings
  end

(* ------------------------------------------------------------------ *)
(* Name helpers *)

let lid_name lid = String.concat "." (Longident.flatten lid)

let strip_stdlib n =
  if starts_with ~prefix:"Stdlib." n then String.sub n 7 (String.length n - 7) else n

let rec head_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (lid_name txt)
  | Pexp_apply (f, _) -> head_ident f
  | _ -> None

let last_component n =
  match String.rindex_opt n '.' with
  | Some i -> String.sub n (i + 1) (String.length n - i - 1)
  | None -> n

(* R1 targets: iteration primitives that expose hash-bucket order. *)
let hashtbl_iteration n =
  match strip_stdlib n with
  | "Hashtbl.iter" | "Hashtbl.fold" | "Hashtbl.to_seq" | "Hashtbl.to_seq_keys"
  | "Hashtbl.to_seq_values" ->
      true
  | _ -> false

let rng_use n = starts_with ~prefix:"Random." (strip_stdlib n)

let wall_clock n =
  match strip_stdlib n with "Unix.gettimeofday" | "Sys.time" -> true | _ -> false

(* Sorting calls launder R1: a [Hashtbl.fold] that is (syntactically)
   an argument of a sort no longer leaks bucket order. *)
let sorting_name n =
  match last_component (strip_stdlib n) with
  | "sort" | "sort_uniq" | "stable_sort" | "fast_sort" -> true
  | _ -> false

let is_sorting_apply e =
  match e.pexp_desc with
  | Pexp_apply (f, args) -> (
      match head_ident f with
      | Some n when sorting_name n -> true
      | Some ("|>" | "Stdlib.|>") -> (
          (* x |> List.sort cmp: the left operand is the sorted data. *)
          match args with
          | [ _; (_, rhs) ] -> (
              match head_ident rhs with Some n -> sorting_name n | None -> false)
          | _ -> false)
      | Some ("@@" | "Stdlib.@@") -> (
          match args with
          | [ (_, lhs); _ ] -> (
              match head_ident lhs with Some n -> sorting_name n | None -> false)
          | _ -> false)
      | Some _ | None -> false)
  | _ -> false

(* R5: the polymorphic comparison operators worth flagging, with the
   float-aware replacement the message suggests. *)
let poly_compare_ops =
  [
    ("=", "Float.equal");
    ("<>", "Float.compare <> 0 (or not Float.equal)");
    ("compare", "Float.compare");
    ("min", "Float.min");
    ("max", "Float.max");
  ]

let float_op_heads =
  [
    "+."; "-."; "*."; "/."; "**"; "float_of_int"; "sqrt"; "exp"; "log"; "log10";
    "abs_float"; "ceil"; "floor";
  ]

(* Syntactically float-ish: a float literal, a float-typed constraint,
   or an application of float arithmetic / a [Float] function.  A
   deliberate under-approximation — no typing — so the rule never
   fires on ints. *)
let floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt; _ }, []); _ }) ->
      lid_name txt = "float" || lid_name txt = "Float.t"
  | Pexp_apply (f, _) -> (
      match head_ident f with
      | Some n ->
          let n = strip_stdlib n in
          List.mem n float_op_heads || starts_with ~prefix:"Float." n
      | None -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expression rules (R1, R2, R3, R5) via Ast_iterator *)

let expression_iterator ctx =
  let super = Ast_iterator.default_iterator in
  let expr it e =
    let allows = allows_of_attrs e.pexp_attributes in
    if allows <> [] then ctx.allow_stack <- allows :: ctx.allow_stack;
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        let n = lid_name txt in
        if hashtbl_iteration n && ctx.sorted_depth = 0 then
          emit ctx r_nondet loc
            (Printf.sprintf
               "%s exposes hash-bucket order; sort the result (List.sort ...) or mark \
                the use [@lint.allow \"%s\"]"
               n r_nondet.id);
        if rng_use n then
          emit ctx r_rng loc
            (Printf.sprintf
               "%s bypasses the splittable Rng; thread a Tmedb_prelude.Rng.t instead" n);
        if wall_clock n then
          emit ctx r_clock loc
            (Printf.sprintf
               "%s reads the wall clock in result-affecting code; use lib/obs timers" n)
    | Pexp_apply (f, args) -> (
        match f.pexp_desc with
        | Pexp_ident { txt; loc } -> (
            let n = strip_stdlib (lid_name txt) in
            match List.assoc_opt n poly_compare_ops with
            | Some replacement when List.exists (fun (_, a) -> floatish a) args ->
                emit ctx r_float_cmp loc
                  (Printf.sprintf "polymorphic %s on float operands; use %s" n
                     replacement)
            | Some _ | None -> ())
        | _ -> ())
    | _ -> ());
    let bump = is_sorting_apply e in
    if bump then ctx.sorted_depth <- ctx.sorted_depth + 1;
    super.expr it e;
    if bump then ctx.sorted_depth <- ctx.sorted_depth - 1;
    if allows <> [] then ctx.allow_stack <- List.tl ctx.allow_stack
  in
  let value_binding it vb =
    let allows = allows_of_attrs vb.pvb_attributes in
    if allows <> [] then ctx.allow_stack <- allows :: ctx.allow_stack;
    super.value_binding it vb;
    if allows <> [] then ctx.allow_stack <- List.tl ctx.allow_stack
  in
  { super with expr; value_binding }

(* ------------------------------------------------------------------ *)
(* R4: module-level mutable state.  A separate explicit walk over the
   structure so that state created inside functions (fresh per call)
   is never flagged. *)

let mutable_makers =
  [
    "ref"; "Hashtbl.create"; "Array.make"; "Array.init"; "Array.create_float";
    "Bytes.create"; "Bytes.make"; "Buffer.create"; "Queue.create"; "Stack.create";
  ]

let rec peel_constraints e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> peel_constraints e
  | _ -> e

let collect_mutable_labels structure =
  let labels = ref [] in
  let rec item st =
    match st.pstr_desc with
    | Pstr_type (_, decls) ->
        List.iter
          (fun d ->
            match d.ptype_kind with
            | Ptype_record fields ->
                List.iter
                  (fun f ->
                    if f.pld_mutable = Asttypes.Mutable then
                      labels := f.pld_name.Location.txt :: !labels)
                  fields
            | _ -> ())
          decls
    | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
        List.iter item s
    | _ -> ()
  in
  List.iter item structure;
  !labels

let check_toplevel_mutable ctx structure =
  let binding vb =
    let allows =
      allows_of_attrs vb.pvb_attributes @ allows_of_attrs vb.pvb_expr.pexp_attributes
    in
    if allows <> [] then ctx.allow_stack <- allows :: ctx.allow_stack;
    (match (peel_constraints vb.pvb_expr).pexp_desc with
    | Pexp_apply (f, _) -> (
        match head_ident f with
        | Some n when List.mem (strip_stdlib n) mutable_makers ->
            emit ctx r_mutable vb.pvb_loc
              (Printf.sprintf
                 "module-level %s is shared mutable state; allocate it inside the \
                  function that uses it, or move it to lib/obs"
                 (strip_stdlib n))
        | Some _ | None -> ())
    | Pexp_record (fields, _) ->
        let mutable_field =
          List.find_opt
            (fun ({ Location.txt; _ }, _) ->
              List.mem (last_component (lid_name txt)) ctx.mutable_labels)
            fields
        in
        Option.iter
          (fun ({ Location.txt; _ }, _) ->
            emit ctx r_mutable vb.pvb_loc
              (Printf.sprintf
                 "module-level record literal with mutable field %s is shared mutable \
                  state"
                 (last_component (lid_name txt))))
          mutable_field
    | _ -> ());
    if allows <> [] then ctx.allow_stack <- List.tl ctx.allow_stack
  in
  let rec item st =
    match st.pstr_desc with
    | Pstr_value (_, bindings) -> List.iter binding bindings
    | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
        List.iter item s
    | Pstr_include { pincl_mod = { pmod_desc = Pmod_structure s; _ }; _ } ->
        List.iter item s
    | _ -> ()
  in
  List.iter item structure

(* ------------------------------------------------------------------ *)
(* R6: undocumented public vals, on the parsed signature.  The parser
   attaches both comment-above and comment-below odoc blocks to the
   val as an [ocaml.doc] attribute, so one attribute check replaces
   the whole docs_check.sh awk program. *)

let has_doc attrs =
  List.exists
    (fun a ->
      match a.attr_name.Location.txt with "ocaml.doc" | "doc" -> true | _ -> false)
    attrs

let rec check_signature ctx items =
  List.iter
    (fun item ->
      match item.psig_desc with
      | Psig_value vd ->
          let allows = allows_of_attrs vd.pval_attributes in
          if allows <> [] then ctx.allow_stack <- allows :: ctx.allow_stack;
          if not (has_doc vd.pval_attributes) then
            emit ctx r_undoc vd.pval_loc
              (Printf.sprintf "val %s lacks a doc comment ((** ... *))"
                 vd.pval_name.Location.txt);
          if allows <> [] then ctx.allow_stack <- List.tl ctx.allow_stack
      | Psig_module { pmd_type = { pmty_desc = Pmty_signature s; _ }; _ } ->
          check_signature ctx s
      | Psig_recmodule decls ->
          List.iter
            (fun d ->
              match d.pmd_type.pmty_desc with
              | Pmty_signature s -> check_signature ctx s
              | _ -> ())
            decls
      | Psig_attribute a ->
          (* [@@@lint.allow "..."] applies to the rest of the file. *)
          let allows = allows_of_attrs [ a ] in
          if allows <> [] then ctx.allow_stack <- allows :: ctx.allow_stack
      | _ -> ())
    items

(* ------------------------------------------------------------------ *)
(* Driver *)

let compare_findings (a : finding) (b : finding) =
  match compare (a.file, a.line, a.col) (b.file, b.line, b.col) with
  | 0 -> String.compare a.rule.id b.rule.id
  | c -> c

let file_level_allows structure =
  List.concat_map
    (fun st ->
      match st.pstr_desc with
      | Pstr_attribute a -> allows_of_attrs [ a ]
      | _ -> [])
    structure

let describe_parse_error exn =
  match Location.error_of_exn exn with
  | Some (`Ok err) -> Format.asprintf "%a" Location.print_report err
  | Some `Already_displayed | None -> Printexc.to_string exn

let analyze_source ?(only = []) ?(allowlist = []) ~path source =
  let file = normalize_path path in
  let only_rule r = only = [] || List.mem r.id only in
  let ctx =
    {
      file;
      only = only_rule;
      allowlist;
      findings = [];
      allow_stack = [];
      sorted_depth = 0;
      mutable_labels = [];
    }
  in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  match
    if Filename.check_suffix file ".mli" then
      check_signature ctx (Parse.interface lexbuf)
    else begin
      let structure = Parse.implementation lexbuf in
      (match file_level_allows structure with
      | [] -> ()
      | allows -> ctx.allow_stack <- allows :: ctx.allow_stack);
      ctx.mutable_labels <- collect_mutable_labels structure;
      check_toplevel_mutable ctx structure;
      let it = expression_iterator ctx in
      it.Ast_iterator.structure it structure
    end
  with
  | () -> Ok (List.sort compare_findings ctx.findings)
  | exception exn -> Error (describe_parse_error exn)

let analyze_file ?only ?allowlist path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | source -> analyze_source ?only ?allowlist ~path source
  | exception Sys_error msg -> Error msg

let collect_files paths =
  let acc = ref [] in
  let error = ref None in
  let keep path =
    Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  in
  let rec walk path =
    if !error = None then begin
      if Sys.is_directory path then
        Array.iter
          (fun entry ->
            if entry <> "_build" && not (starts_with ~prefix:"." entry) then
              walk (Filename.concat path entry))
          (Sys.readdir path)
      else if keep path then acc := normalize_path path :: !acc
    end
  in
  List.iter
    (fun path ->
      if !error = None then
        if Sys.file_exists path then walk path
        else error := Some (Printf.sprintf "%s: no such file or directory" path))
    paths;
  match !error with
  | Some e -> Error e
  | None -> Ok (List.sort_uniq String.compare !acc)

(* ------------------------------------------------------------------ *)
(* Reporters *)

let report_text ppf findings =
  List.iter
    (fun (f : finding) ->
      Format.fprintf ppf "%s:%d:%d: [%s/%s] %s@." f.file f.line f.col f.rule.code
        f.rule.id f.message)
    findings

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let report_json ppf findings =
  Format.fprintf ppf "{\"findings\": [";
  List.iteri
    (fun i (f : finding) ->
      Format.fprintf ppf "%s{\"file\": \"%s\", \"line\": %d, \"col\": %d, "
        (if i = 0 then "" else ", ")
        (json_escape f.file) f.line f.col;
      Format.fprintf ppf "\"rule\": \"%s\", \"code\": \"%s\", \"message\": \"%s\"}"
        (json_escape f.rule.id) (json_escape f.rule.code) (json_escape f.message))
    findings;
  Format.fprintf ppf "], \"count\": %d}@." (List.length findings)

(* SARIF 2.1.0, the minimal subset CI annotators consume: one run, the
   full rule catalogue in the driver (so ruleIndex resolves even for
   rules with zero results), one result per finding.  Columns are
   1-based in SARIF where the text reporter is 0-based. *)
let report_sarif ppf findings =
  let rule_index r =
    let rec find i = function
      | [] -> -1
      | x :: tl -> if x.id = r.id then i else find (i + 1) tl
    in
    find 0 rules
  in
  Format.fprintf ppf
    "{\"$schema\": \
     \"https://json.schemastore.org/sarif-2.1.0.json\", \
     \"version\": \"2.1.0\", \"runs\": [{\"tool\": {\"driver\": \
     {\"name\": \"tmedb-lint\", \"rules\": [";
  List.iteri
    (fun i r ->
      Format.fprintf ppf
        "%s{\"id\": \"%s\", \"name\": \"%s\", \"shortDescription\": {\"text\": \
         \"%s\"}}"
        (if i = 0 then "" else ", ")
        (json_escape r.code) (json_escape r.id) (json_escape r.summary))
    rules;
  Format.fprintf ppf "]}}, \"results\": [";
  List.iteri
    (fun i (f : finding) ->
      Format.fprintf ppf
        "%s{\"ruleId\": \"%s\", \"ruleIndex\": %d, \"level\": \"error\", \
         \"message\": {\"text\": \"%s\"}, \"locations\": [{\"physicalLocation\": \
         {\"artifactLocation\": {\"uri\": \"%s\"}, \"region\": {\"startLine\": %d, \
         \"startColumn\": %d}}}]}"
        (if i = 0 then "" else ", ")
        (json_escape f.rule.code) (rule_index f.rule) (json_escape f.message)
        (json_escape f.file) f.line (f.col + 1))
    findings;
  Format.fprintf ppf "]}]}@."
