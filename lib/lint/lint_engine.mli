(** Phase-2 driver: discovers the [.cmt] typed trees dune already
    built, loads them through {!Lint_callgraph}, runs the
    {!Lint_rules_typed} rules over the whole tree, and scopes the
    report to the paths the caller asked about.  Resolution is always
    whole-tree, so a task in [lib/core] is traced into [lib/report]
    even when only [lib/core] was requested. *)

type typed_stats = {
  cmts : int;  (** units analyzed, after same-source dedup *)
  defs : int;  (** call-graph nodes in the requested paths *)
  pool_sites : int;  (** pool entry calls in the requested paths *)
}
(** Counters for the CLI footer and the bench harness (the engine
    itself reads no clock — R3 applies to it too; timing lives in
    [bench]). *)

val default_build_dir : string
(** ["_build/default"]. *)

val find_cmt_files : build_dir:string -> string list
(** Recursively collect every [.cmt] under [build_dir], sorted within
    each directory so runs are deterministic. *)

val load_units :
  string list -> Lint_callgraph.unit_info list * string list
(** [load_units cmt_paths] loads each cmt, keeping one unit per source
    file (test executables re-link library modules, so the same source
    appears under several [.eobjs] dirs) and dropping units whose
    recorded source no longer exists.  Returns the units and the read
    errors that were skipped. *)

val analyze_typed :
  ?only:string list ->
  ?allowlist:Lint.allowlist ->
  ?build_dir:string ->
  paths:string list ->
  unit ->
  (Lint.finding list * typed_stats, string) result
(** Run R7–R9 over the whole tree and return the findings whose file
    falls under one of [paths] ([[]] means everything), plus the
    scoped stats.  [Error _] when no usable cmt exists — the message
    says to run [dune build @check]. *)

val effects_dump :
  ?build_dir:string -> paths:string list -> unit -> (string list, string) result
(** The [--effects-dump] payload: one inferred signature line per def
    under [paths], sorted by symbol. *)
