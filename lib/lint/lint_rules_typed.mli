(** Phase-2 interprocedural rules over the typed call graph.

    - {b R7 pool-task-purity}: a closure (or named function) reaching a
      pool entry point must not transitively write module-level mutable
      state unless the write is [Atomic.*], [Domain.DLS], or guarded by
      a lock.  Findings print the full call chain from the pool entry
      down to the unguarded write.
    - {b R8 rng-taint}: [Rng.t] may only enter a pool task through the
      split discipline — a task closure that captures a shared handle
      from its environment is flagged at the capture site.
    - {b R9 blocking-in-task}: nothing blocking ([Mutex.lock],
      [Condition.wait], channel waits, IO) may be reachable from inside
      a pool task; the caller-helps-drain scheduler can deadlock on it.

    Suppression follows phase 1: [[@lint.allow "rule"]] at the call
    site or task definition, def-site allows on the function owning the
    effect (cleared before propagation, so the justification lives with
    the effect), or a [lint.allowlist] entry. *)

val run :
  ?only:string list ->
  ?allowlist:Lint.allowlist ->
  Lint_callgraph.unit_info list ->
  Lint.finding list
(** [run units] solves the effect fixpoint over [units] and returns the
    unsuppressed R7/R8/R9 findings, sorted by position.  [?only]
    restricts to the given rule ids (same contract as
    {!Lint.analyze_source}); [?allowlist] applies whole-file
    exemptions. *)
