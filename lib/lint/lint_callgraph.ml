(* Whole-tree call graph over the .cmt typed trees dune already
   produces (Cmt_format.read_cmt — no new deps).  Each implementation
   unit is walked once; every module-level binding becomes a
   Lint_effects.def whose atoms record the direct writes, reads,
   taints, calls and literal closures the walker saw, and every call
   whose resolved path lands on a Pool entry point is recorded as a
   pool site with its task closures.  Name resolution works on
   normalized path components: dune's wrapped-library mangling
   ("Tmedb__Eedcb", alias modules "Tmedb__") is stripped so call paths
   written through any alias join the same graph node. *)

open Typedtree

(* ------------------------------------------------------------------ *)
(* Path normalization *)

(* "Tmedb__Eedcb" -> Some "Eedcb"; "Tmedb__" (dune alias module) ->
   None; plain components pass through. *)
let norm_component c =
  let n = String.length c in
  let rec last_sep i = if i < 0 then None else
      if i + 1 < n && c.[i] = '_' && c.[i + 1] = '_' then Some (i + 2) else last_sep (i - 1)
  in
  match last_sep (n - 2) with
  | None -> if c = "" then None else Some c
  | Some start -> if start >= n then None else Some (String.sub c start (n - start))

let norm_unit modname =
  match norm_component modname with Some m -> m | None -> modname

let rec path_raw_comps = function
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> path_raw_comps p @ [ s ]
  | Path.Papply (p, _) -> path_raw_comps p
  | Path.Pextra_ty (p, _) -> path_raw_comps p

let norm_comps p = List.filter_map norm_component (path_raw_comps p)
let raw_name p = String.concat "." (path_raw_comps p)

(* ------------------------------------------------------------------ *)
(* Pool sites *)

type task =
  | Task_fun of {
      loc : Location.t;
      atoms : Lint_effects.atom list;
      captured_rng : (string * Location.t) list;
    }
  | Task_ref of { loc : Location.t; raw : string; comps : string list }

type site = {
  site_file : string;
  site_loc : Location.t;
  entry : string;  (* display name, e.g. "Pool.map" *)
  site_unit : string;  (* normalized unit module, for resolution *)
  site_allows : string list;  (* [@lint.allow] ids in scope at the call *)
  tasks : task list;
}

type unit_info = {
  source : string;  (* normalized source path *)
  modname : string;  (* normalized compilation-unit module *)
  defs : Lint_effects.def list;
  sites : site list;
  aliases : (string * string list) list;  (* local alias -> target comps *)
}

(* ------------------------------------------------------------------ *)
(* Type tests *)

let type_head_comps ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (norm_comps p)
  | _ -> None

let type_is_rng ty =
  match type_head_comps ty with
  | Some comps -> Lint_effects.suffix_matches ~pattern:[ "Rng"; "t" ] comps
  | None -> false

let type_is_arrow ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Walker *)

type wstate = {
  mutable sink : Lint_effects.atom list;  (* reversed *)
  locals : (Ident.t, unit) Hashtbl.t;  (* lexically-bound idents of the def *)
  local_fns : (Ident.t, Lint_effects.atom list) Hashtbl.t;
  mutable locks : bool;
  mutable allow_stack : string list list;
  mutable rng_bound : (Ident.t, unit) Hashtbl.t option;  (* Some inside a task *)
  mutable captured_rng : (string * Location.t) list;  (* reversed *)
  (* per-unit accumulators, shared across defs *)
  unit_mod : string;
  source : string;
  mutable file_allows : string list;
  mutable def_allows : string list;
  mutable sites : site list;  (* reversed *)
}

let bind_ident st id =
  Hashtbl.replace st.locals id ();
  match st.rng_bound with Some tbl -> Hashtbl.replace tbl id () | None -> ()

let push_atom st a = st.sink <- a :: st.sink

let scope_allows st =
  st.file_allows @ st.def_allows @ List.concat st.allow_stack

(* The base of a write/read: peel field accesses down to the root
   identifier.  A root that is not lexically bound in the current def
   is module-level — shared.  Unknown shapes (function results, fresh
   allocations) count as local: the analysis tracks state at its
   module-level root, cf. docs/ANALYSIS.md. *)
let rec base_path e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_field (e', _, _) -> base_path e'
  | _ -> None

let shared_base st e =
  match base_path e with
  | Some (Path.Pident id) ->
      if Hashtbl.mem st.locals id then None else Some (Ident.name id)
  | Some p -> Some (raw_name p)
  | None -> None

let positional args =
  List.filter_map
    (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
    args

let entry_display comps =
  match List.rev comps with
  | last :: _ -> "Pool." ^ last
  | [] -> "Pool.?"

let rec make_iterator st =
  let super = Tast_iterator.default_iterator in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun it p ->
    (match p.pat_desc with
    | Tpat_var (id, _) -> bind_ident st id
    | Tpat_alias (_, id, _) -> bind_ident st id
    | _ -> ());
    super.pat it p
  in
  let expr it e =
    let allows = Lint.allows_of_attrs e.exp_attributes in
    if allows <> [] then st.allow_stack <- allows :: st.allow_stack;
    (match e.exp_desc with
    | Texp_function { param; _ } ->
        bind_ident st param;
        super.expr it e
    | Texp_for (id, _, _, _, _, _) ->
        bind_ident st id;
        super.expr it e
    | Texp_letop { param; _ } ->
        bind_ident st param;
        super.expr it e
    | Texp_let (_, vbs, body) ->
        List.iter
          (fun vb ->
            it.Tast_iterator.pat it vb.vb_pat;
            match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
            | Tpat_var (id, _), Texp_function _ ->
                (* Local helper: remember its atoms so it can be
                   recognized when passed to a pool entry, and merge
                   them here — a defined helper is assumed called. *)
                let atoms = walk_fresh st it vb.vb_expr in
                Hashtbl.replace st.local_fns id atoms;
                push_atom st
                  (Lint_effects.Closure
                     { callee = [ "<local " ^ Ident.name id ^ ">" ];
                       loc = vb.vb_loc; atoms })
            | _ -> it.Tast_iterator.expr it vb.vb_expr)
          vbs;
        it.Tast_iterator.expr it body
    | Texp_setfield (base, _, label, value) ->
        (match shared_base st base with
        | Some name ->
            push_atom st
              (Lint_effects.Write
                 {
                   loc = e.exp_loc;
                   desc =
                     Printf.sprintf "mutable field %s of %s"
                       label.Types.lbl_name name;
                 })
        | None -> ());
        it.Tast_iterator.expr it base;
        it.Tast_iterator.expr it value
    | Texp_ident (p, _, _) ->
        (match st.rng_bound with
        | Some bound ->
            let is_bound =
              match p with Path.Pident id -> Hashtbl.mem bound id | _ -> false
            in
            if (not is_bound) && type_is_rng e.exp_type then
              st.captured_rng <- (raw_name p, e.exp_loc) :: st.captured_rng
        | None -> ());
        (* A tainted primitive referenced without application (aliased,
           passed to a HOF) still carries its taint. *)
        (match Lint_effects.classify (norm_comps p) with
        | Lint_effects.Tainted t ->
            push_atom st
              (Lint_effects.Taint_of { taint = t; loc = e.exp_loc; desc = raw_name p })
        | Lint_effects.Lock ->
            st.locks <- true;
            push_atom st
              (Lint_effects.Taint_of
                 { taint = Lint_effects.Blocking; loc = e.exp_loc; desc = raw_name p })
        | _ -> ())
    | Texp_apply (f, args) -> handle_apply st it e f args
    | _ -> super.expr it e);
    if allows <> [] then st.allow_stack <- List.tl st.allow_stack
  in
  { super with expr; pat }

(* Walk [e] into a fresh sink and return its atoms (state restored). *)
and walk_fresh st it e =
  let saved = st.sink in
  st.sink <- [];
  it.Tast_iterator.expr it e;
  let atoms = List.rev st.sink in
  st.sink <- saved;
  atoms

(* Walk a task closure: fresh sink plus an Rng-capture watch that
   records free identifiers of type Rng.t. *)
and walk_task st it e =
  let saved_sink = st.sink
  and saved_bound = st.rng_bound
  and saved_captured = st.captured_rng in
  st.sink <- [];
  st.rng_bound <- Some (Hashtbl.create 8);
  st.captured_rng <- [];
  it.Tast_iterator.expr it e;
  let atoms = List.rev st.sink and captured = List.rev st.captured_rng in
  st.sink <- saved_sink;
  st.rng_bound <- saved_bound;
  st.captured_rng <- saved_captured;
  (atoms, captured)

(* Walk an argument, wrapping a literal [fun] in a Closure atom so the
   fixpoint can guard it by its callee. *)
and walk_arg st it ~callee arg =
  match arg.exp_desc with
  | Texp_function _ ->
      let atoms = walk_fresh st it arg in
      push_atom st (Lint_effects.Closure { callee; loc = arg.exp_loc; atoms })
  | _ -> it.Tast_iterator.expr it arg

and handle_apply st it e f args =
  let walk_args ~callee () =
    List.iter
      (function _, Some a -> walk_arg st it ~callee a | _, None -> ())
      args
  in
  match f.exp_desc with
  | Texp_ident (p, _, _) -> (
      let comps = norm_comps p in
      match Lint_effects.classify comps with
      | Lint_effects.Pool_entry ->
          let tasks = ref [] in
          List.iter
            (function
              | _, Some (arg : expression) when type_is_arrow arg.exp_type -> (
                  match arg.exp_desc with
                  | Texp_function _ ->
                      let atoms, captured = walk_task st it arg in
                      tasks :=
                        Task_fun { loc = arg.exp_loc; atoms; captured_rng = captured }
                        :: !tasks;
                      push_atom st
                        (Lint_effects.Closure { callee = comps; loc = arg.exp_loc; atoms })
                  | Texp_ident (Path.Pident id, _, _)
                    when Hashtbl.mem st.local_fns id ->
                      let atoms = Hashtbl.find st.local_fns id in
                      tasks :=
                        Task_fun { loc = arg.exp_loc; atoms; captured_rng = [] }
                        :: !tasks
                  | Texp_ident (q, _, _) ->
                      tasks :=
                        Task_ref
                          { loc = arg.exp_loc; raw = raw_name q; comps = norm_comps q }
                        :: !tasks;
                      push_atom st
                        (Lint_effects.Call
                           { comps = norm_comps q; raw = raw_name q; loc = arg.exp_loc })
                  | Texp_apply ({ exp_desc = Texp_ident (q, _, _); _ }, inner_args) ->
                      (* partial application as the task *)
                      tasks :=
                        Task_ref
                          { loc = arg.exp_loc; raw = raw_name q; comps = norm_comps q }
                        :: !tasks;
                      push_atom st
                        (Lint_effects.Call
                           { comps = norm_comps q; raw = raw_name q; loc = arg.exp_loc });
                      List.iter
                        (function
                          | _, Some a -> walk_arg st it ~callee:comps a | _, None -> ())
                        inner_args
                  | _ -> it.Tast_iterator.expr it arg)
              | _, Some a -> it.Tast_iterator.expr it a
              | _, None -> ())
            args;
          st.sites <-
            {
              site_file = st.source;
              site_loc = e.exp_loc;
              entry = entry_display comps;
              site_unit = st.unit_mod;
              site_allows = scope_allows st;
              tasks = List.rev !tasks;
            }
            :: st.sites
      | Lint_effects.Mutator { arg; what } ->
          (match List.nth_opt (positional args) arg with
          | Some base -> (
              match shared_base st base with
              | Some name ->
                  push_atom st
                    (Lint_effects.Write
                       { loc = e.exp_loc; desc = Printf.sprintf "%s on %s" what name })
              | None -> ())
          | None -> ());
          walk_args ~callee:comps ()
      | Lint_effects.Reader { arg; what } ->
          (match List.nth_opt (positional args) arg with
          | Some base -> (
              match shared_base st base with
              | Some name ->
                  push_atom st
                    (Lint_effects.Read
                       { loc = e.exp_loc; desc = Printf.sprintf "%s on %s" what name })
              | None -> ())
          | None -> ());
          walk_args ~callee:comps ()
      | Lint_effects.Safe -> walk_args ~callee:comps ()
      | Lint_effects.Lock ->
          st.locks <- true;
          push_atom st
            (Lint_effects.Taint_of
               { taint = Lint_effects.Blocking; loc = e.exp_loc; desc = raw_name p });
          walk_args ~callee:comps ()
      | Lint_effects.Lock_wrapper ->
          st.locks <- true;
          push_atom st
            (Lint_effects.Taint_of
               { taint = Lint_effects.Blocking; loc = e.exp_loc; desc = raw_name p });
          walk_args ~callee:comps ()
      | Lint_effects.Tainted t ->
          push_atom st
            (Lint_effects.Taint_of { taint = t; loc = e.exp_loc; desc = raw_name p });
          walk_args ~callee:comps ()
      | Lint_effects.Plain ->
          push_atom st
            (Lint_effects.Call { comps; raw = raw_name p; loc = e.exp_loc });
          walk_args ~callee:comps ())
  | _ ->
      it.Tast_iterator.expr it f;
      walk_args ~callee:[ "<computed>" ] ()

(* ------------------------------------------------------------------ *)
(* Structure walk *)

let walk_unit ~modname ~source (str : structure) =
  let defs = ref [] in
  let aliases = ref [] in
  let shared =
    {
      sink = [];
      locals = Hashtbl.create 64;
      local_fns = Hashtbl.create 16;
      locks = false;
      allow_stack = [];
      rng_bound = None;
      captured_rng = [];
      unit_mod = modname;
      source;
      file_allows = [];
      def_allows = [];
      sites = [];
    }
  in
  let walk_def ~sym ~line ~allows expr_ =
    (* Fresh per-def walk state over the shared per-unit accumulators. *)
    let st =
      {
        shared with
        sink = [];
        locals = Hashtbl.create 64;
        local_fns = Hashtbl.create 16;
        locks = false;
        allow_stack = [];
        rng_bound = None;
        captured_rng = [];
        def_allows = allows;
        file_allows = shared.file_allows;
        sites = shared.sites;
      }
    in
    let it = make_iterator st in
    it.Tast_iterator.expr it expr_;
    shared.sites <- st.sites;
    defs :=
      {
        Lint_effects.sym;
        unit_mod = modname;
        file = source;
        line;
        atoms = List.rev st.sink;
        allows = shared.file_allows @ allows;
        locks = st.locks;
      }
      :: !defs
  in
  let rec walk_items prefix items = List.iter (walk_item prefix) items
  and walk_module_expr prefix me =
    match me.mod_desc with
    | Tmod_structure s -> walk_items prefix s.str_items
    | Tmod_constraint (me', _, _, _) -> walk_module_expr prefix me'
    | Tmod_ident _ | Tmod_functor _ | Tmod_apply _ | Tmod_apply_unit _
    | Tmod_unpack _ ->
        ()
  and walk_item prefix item =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let allows =
              Lint.allows_of_attrs vb.vb_attributes
              @ Lint.allows_of_attrs vb.vb_expr.exp_attributes
            in
            let line = vb.vb_loc.Location.loc_start.Lexing.pos_lnum in
            match vb.vb_pat.pat_desc with
            | Tpat_var (_, { txt; _ }) ->
                walk_def ~sym:(prefix ^ "." ^ txt) ~line ~allows vb.vb_expr
            | _ ->
                walk_def
                  ~sym:(Printf.sprintf "%s.(init:%d)" prefix line)
                  ~line ~allows vb.vb_expr)
          vbs
    | Tstr_eval (e, attrs) ->
        let line = e.exp_loc.Location.loc_start.Lexing.pos_lnum in
        walk_def
          ~sym:(Printf.sprintf "%s.(init:%d)" prefix line)
          ~line
          ~allows:(Lint.allows_of_attrs attrs)
          e
    | Tstr_module mb -> (
        let name = match mb.mb_name.Location.txt with Some n -> Some n | None -> None in
        match (name, mb.mb_expr.mod_desc) with
        | Some n, Tmod_ident (p, _) -> aliases := (n, norm_comps p) :: !aliases
        | Some n, _ -> walk_module_expr (prefix ^ "." ^ n) mb.mb_expr
        | None, _ -> ())
    | Tstr_recmodule mbs ->
        List.iter
          (fun mb ->
            match mb.mb_name.Location.txt with
            | Some n -> walk_module_expr (prefix ^ "." ^ n) mb.mb_expr
            | None -> ())
          mbs
    | Tstr_include incl -> walk_module_expr prefix incl.incl_mod
    | Tstr_attribute a ->
        shared.file_allows <- shared.file_allows @ Lint.allows_of_attrs [ a ]
    | Tstr_primitive _ | Tstr_type _ | Tstr_typext _ | Tstr_exception _
    | Tstr_modtype _ | Tstr_open _ | Tstr_class _ | Tstr_class_type _ ->
        ()
  in
  walk_items modname str.str_items;
  {
    source;
    modname;
    defs = List.rev !defs;
    sites = List.rev shared.sites;
    aliases = !aliases;
  }

(* ------------------------------------------------------------------ *)
(* Loading *)

let load_cmt path =
  match Cmt_format.read_cmt path with
  | exception exn -> Error (Printf.sprintf "%s: %s" path (Printexc.to_string exn))
  | cmt -> (
      match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
      | Cmt_format.Implementation str, Some src
        when Filename.check_suffix src ".ml" ->
          let modname = norm_unit cmt.Cmt_format.cmt_modname in
          Ok (Some (walk_unit ~modname ~source:(Lint.normalize_path src) str))
      | _ -> Ok None)

(* ------------------------------------------------------------------ *)
(* Resolution *)

let defs units = List.concat_map (fun u -> u.defs) units

let resolver units : Lint_effects.resolver =
  let def_syms = Hashtbl.create 256 in
  let by_suffix = Hashtbl.create 256 in
  List.iter
    (fun u ->
      List.iter
        (fun (d : Lint_effects.def) ->
          Hashtbl.replace def_syms d.Lint_effects.sym ();
          let comps = String.split_on_char '.' d.Lint_effects.sym in
          let n = List.length comps in
          if n >= 2 then begin
            let key =
              String.concat "." (List.filteri (fun i _ -> i >= n - 2) comps)
            in
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt by_suffix key)
            in
            if not (List.mem d.Lint_effects.sym prev) then
              Hashtbl.replace by_suffix key (d.Lint_effects.sym :: prev)
          end)
        u.defs)
    units;
  let alias_tbl = Hashtbl.create 64 in
  List.iter
    (fun u ->
      List.iter
        (fun (name, target) -> Hashtbl.replace alias_tbl (u.modname, name) target)
        u.aliases)
    units;
  fun ~unit_mod comps ->
    let comps =
      match comps with
      | hd :: tl -> (
          match Hashtbl.find_opt alias_tbl (unit_mod, hd) with
          | Some target -> target @ tl
          | None -> comps)
      | [] -> comps
    in
    if comps = [] then None
    else begin
      let try_sym comps =
        let sym = String.concat "." comps in
        if Hashtbl.mem def_syms sym then Some sym else None
      in
      let rec drop_prefixes comps =
        match try_sym comps with
        | Some sym -> Some sym
        | None -> (
            match comps with
            | _ :: (_ :: _ as tl) -> drop_prefixes tl
            | _ -> None)
      in
      match try_sym (unit_mod :: comps) with
      | Some sym -> Some sym
      | None -> (
          match drop_prefixes comps with
          | Some sym -> Some sym
          | None ->
              (* unique-suffix fallback for calls through module aliases
                 the walker did not see (e.g. aliases in other units) *)
              let n = List.length comps in
              if n < 2 then None
              else
                let key =
                  String.concat "."
                    (List.filteri (fun i _ -> i >= n - 2) comps)
                in
                (match Hashtbl.find_opt by_suffix key with
                | Some [ sym ] -> Some sym
                | _ -> None))
    end

(* Resolved caller → callee edges, for tests and debugging: recurses
   into Closure atoms so task bodies contribute their edges. *)
let edges units =
  let resolve = resolver units in
  let out = ref [] in
  let rec atoms_edges ~unit_mod ~caller atoms =
    List.iter
      (fun a ->
        match a with
        | Lint_effects.Call { comps; _ } -> (
            match resolve ~unit_mod comps with
            | Some callee -> out := (caller, callee) :: !out
            | None -> ())
        | Lint_effects.Closure { atoms; _ } -> atoms_edges ~unit_mod ~caller atoms
        | _ -> ())
      atoms
  in
  List.iter
    (fun u ->
      List.iter
        (fun (d : Lint_effects.def) ->
          atoms_edges ~unit_mod:u.modname ~caller:d.Lint_effects.sym
            d.Lint_effects.atoms)
        u.defs)
    units;
  List.sort_uniq compare (List.rev !out)
