(* Phase-2 driver: find the .cmt files dune already produced, load and
   deduplicate them (test executables re-link library modules, so the
   same source appears under several .eobjs dirs), run the
   interprocedural rules over the whole tree, and filter the findings
   to the paths the user asked about.  Resolution is always whole-tree:
   a finding in lib/ can sink in a write two units away even when the
   user only asked about lib/. *)

type typed_stats = {
  cmts : int;  (* units analyzed after source-level dedup *)
  defs : int;  (* call-graph nodes *)
  pool_sites : int;  (* pool entry calls found *)
}

let default_build_dir = "_build/default"

(* ------------------------------------------------------------------ *)
(* Discovery *)

let find_cmt_files ~build_dir =
  let out = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
        Array.sort String.compare entries;
        Array.iter
          (fun name ->
            let path = Filename.concat dir name in
            if Sys.is_directory path then walk path
            else if Filename.check_suffix name ".cmt" then out := path :: !out)
          entries
  in
  if Sys.file_exists build_dir && Sys.is_directory build_dir then walk build_dir;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Loading *)

(* Load every cmt, keeping one unit per source file (first in sorted
   cmt-path order; the duplicates are byte-identical walks of the same
   tree).  Units whose recorded source no longer exists on disk are
   stale build products and dropped. *)
let load_units cmt_paths =
  let seen = Hashtbl.create 64 in
  let units = ref [] in
  let errors = ref [] in
  List.iter
    (fun path ->
      match Lint_callgraph.load_cmt path with
      | Error e -> errors := e :: !errors
      | Ok None -> ()
      | Ok (Some u) ->
          if
            (not (Hashtbl.mem seen u.Lint_callgraph.source))
            && Sys.file_exists u.Lint_callgraph.source
          then begin
            Hashtbl.replace seen u.Lint_callgraph.source ();
            units := u :: !units
          end)
    (List.sort String.compare cmt_paths);
  (List.rev !units, List.rev !errors)

let under ~prefix path =
  path = prefix
  || String.length path > String.length prefix
     && String.sub path 0 (String.length prefix) = prefix
     && path.[String.length prefix] = '/'

let in_paths paths file =
  match paths with
  | [] -> true
  | _ -> List.exists (fun p -> under ~prefix:(Lint.normalize_path p) file) paths

let load ~build_dir =
  let cmts = find_cmt_files ~build_dir in
  if cmts = [] then
    Error
      (Printf.sprintf
         "no .cmt files under %s — run `dune build @check` first (the typed \
          phase reads the compiler's own typed trees)"
         build_dir)
  else
    let units, errors = load_units cmts in
    if units = [] then
      Error
        (match errors with
        | e :: _ ->
            Printf.sprintf "no usable .cmt files under %s (first error: %s)"
              build_dir e
        | [] ->
            Printf.sprintf
              "no implementation .cmt files under %s — run `dune build @check`"
              build_dir)
    else Ok units

(* ------------------------------------------------------------------ *)
(* Entry points *)

let analyze_typed ?only ?allowlist ?(build_dir = default_build_dir) ~paths () =
  match load ~build_dir with
  | Error _ as e -> e
  | Ok units ->
      let findings =
        Lint_rules_typed.run ?only ?allowlist units
        |> List.filter (fun (f : Lint.finding) -> in_paths paths f.Lint.file)
      in
      let scoped =
        List.filter
          (fun (u : Lint_callgraph.unit_info) ->
            in_paths paths u.Lint_callgraph.source)
          units
      in
      let stats =
        {
          cmts = List.length scoped;
          defs =
            List.fold_left
              (fun n (u : Lint_callgraph.unit_info) ->
                n + List.length u.Lint_callgraph.defs)
              0 scoped;
          pool_sites =
            List.fold_left
              (fun n (u : Lint_callgraph.unit_info) ->
                n + List.length u.Lint_callgraph.sites)
              0 scoped;
        }
      in
      Ok (findings, stats)

let effects_dump ?(build_dir = default_build_dir) ~paths () =
  match load ~build_dir with
  | Error _ as e -> e
  | Ok units ->
      let defs = Lint_callgraph.defs units in
      let resolve = Lint_callgraph.resolver units in
      let summaries, _locks_of = Lint_effects.solve ~resolve defs in
      let scoped =
        List.filter
          (fun (d : Lint_effects.def) -> in_paths paths d.Lint_effects.file)
          defs
      in
      Ok (Lint_effects.dump ~summaries scoped)
