(** Whole-tree call graph from the [.cmt] typed trees dune already
    produces.

    Each implementation unit is read with [Cmt_format.read_cmt] and
    walked once into a list of {!Lint_effects.def} nodes (one per
    module-level binding) plus the pool sites found in it.  Call paths
    are normalized out of dune's wrapped-library mangling
    ([Tmedb__Eedcb] → [Eedcb], alias modules dropped) so the same
    function reached through different aliases is one graph node.

    The walker understands the idioms phase 2 must not false-positive
    on: locals are lexically inherited per top-level binding (a task
    closure writing into its enclosing function's result array is
    local, not shared), local [let f = fun …] helpers are recognized
    when later passed to a pool entry, and [[@lint.allow]] attributes
    are collected at every scope.  See [docs/ANALYSIS.md]. *)

val norm_component : string -> string option
(** [norm_component c] strips dune name mangling from one path
    component: [Tmedb__Eedcb] → [Some "Eedcb"], a wrapped-library
    alias module ([Tmedb__]) → [None] (dropped), anything else
    unchanged. *)

val norm_unit : string -> string
(** Normalize a compilation-unit module name ([Dune__exe__Main] →
    [Main]). *)

val norm_comps : Path.t -> string list
(** Normalized components of a resolved value path. *)

(** A task argument at a pool site. *)
type task =
  | Task_fun of {
      loc : Location.t;
      atoms : Lint_effects.atom list;  (** the closure body's atoms *)
      captured_rng : (string * Location.t) list;
          (** free identifiers of type [Rng.t] the closure captures *)
    }  (** a literal [fun] (or a local helper defined in the same def) *)
  | Task_ref of { loc : Location.t; raw : string; comps : string list }
      (** a named function (or partial application) passed as the task *)

type site = {
  site_file : string;  (** normalized source path of the call *)
  site_loc : Location.t;
  entry : string;  (** display name, e.g. ["Pool.map"] *)
  site_unit : string;  (** unit module, for resolving task refs *)
  site_allows : string list;
      (** [[@lint.allow]] ids in scope at the call site *)
  tasks : task list;
}
(** One call to a {!Lint_effects.classification.Pool_entry}. *)

type unit_info = {
  source : string;
  modname : string;
  defs : Lint_effects.def list;
  sites : site list;
  aliases : (string * string list) list;
      (** [module A = B.C] aliases local to the unit *)
}
(** Everything extracted from one compilation unit. *)

val walk_unit :
  modname:string -> source:string -> Typedtree.structure -> unit_info
(** Walk one typed implementation.  Exposed for tests that compile
    fixtures out-of-tree. *)

val load_cmt : string -> (unit_info option, string) result
(** [load_cmt path] reads one [.cmt].  [Ok None] for interfaces,
    packs, and generated units without a real [.ml] source;
    [Error _] when the file cannot be read (version skew, truncation). *)

val defs : unit_info list -> Lint_effects.def list
(** All defs of all units, in unit order. *)

val resolver : unit_info list -> Lint_effects.resolver
(** Build the name resolver over a set of units: tries the caller's
    own unit first, then the path as written (dropping leading
    components for aliased prefixes), then a unique two-component
    suffix match.  Returns [None] for externals. *)

val edges : unit_info list -> (string * string) list
(** Resolved [caller → callee] edges (including calls made inside task
    closures), sorted and deduplicated — the call-graph surface the
    unit tests assert on. *)
