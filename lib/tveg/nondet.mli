(** Non-deterministic time-varying energy-demand graphs — the paper's
    stated future work (Section VIII): the presence function becomes
    probabilistic, ρ: E × T → [0, 1].

    The model here attaches an appearance probability to every
    potential contact.  Sampling yields deterministic TVEG
    realizations on which all the deterministic machinery (DTS,
    EEDCB, feasibility) runs unchanged; a schedule computed against
    one graph (typically the {!support}) can then be stress-tested
    across many sampled realizations, separating *link-level* fading
    loss (handled by FR-EEDCB) from *contact-level* uncertainty
    (handled here). *)

open Tmedb_prelude

type potential_contact = {
  a : int;
  b : int;
  link : Tveg.link;
  presence_prob : float;  (** Probability the contact materialises. *)
}

type t

val create : n:int -> span:Interval.t -> tau:float -> potential_contact list -> t
(** @raise Invalid_argument on invalid nodes/probabilities or links
    outside the span. *)

val n : t -> int
val span : t -> Interval.t
val tau : t -> float
val contacts : t -> potential_contact list

val of_tveg : Tveg.t -> presence_prob:float -> t
(** Lift a deterministic TVEG: every contact gets the same appearance
    probability ("flaky links" model). *)

val support : t -> Tveg.t
(** The optimistic realization with every potential contact present —
    what a planner that ignores contact uncertainty would use. *)

val threshold : t -> min_prob:float -> Tveg.t
(** The pessimistic planner's graph: only contacts with appearance
    probability >= [min_prob]. *)

val sample : Rng.t -> t -> Tveg.t
(** One realization: each contact kept independently with its
    probability. *)

type robustness = {
  trials : int;
  mean_delivery : float;  (** Mean analytic delivery ratio across realizations. *)
  full_delivery_rate : float;  (** Fraction of realizations delivering to all. *)
  mean_energy_wasted : float;
      (** Mean scheduled cost of transmissions whose contact did not
          materialise in the realization (energy spent shouting into
          the void), in watts. *)
}

val evaluate :
  ?trials:int ->
  ?pool:Pool.t ->
  rng:Rng.t ->
  t ->
  check:(Tveg.t -> float * bool * float) ->
  robustness
(** Generic Monte-Carlo over realizations: [check] maps a realization
    to (delivery ratio, fully delivered, wasted energy).  Default 200
    trials.  The RNG stream is split per trial, so results are
    bit-identical at any [pool] worker count.  The TMEDB-specific
    wrapper lives in the core library to avoid a dependency cycle. *)
