open Tmedb_channel

(* [marginal] is declared first so the shared [cost] label defaults to
   [level], which predates it. *)
type marginal = { cost : float; fresh : int list }
type level = { cost : float; covered : int list }

(* Telemetry: one DCS query per (node, time) asked of the auxiliary
   graph builder — a flag check when the registry is off. *)
let c_queries = Tmedb_obs.Counter.make "dcs.queries"

let epsilon_cost ed phy =
  match Ed_function.cost_for_failure ed ~target:phy.Phy.eps with
  | Some w -> w
  | None -> Float.infinity

let neighbour_cost ~phy ~channel ~dist =
  match channel with
  | `Static -> Phy.min_cost phy ~dist
  | `Rayleigh -> Phy.fading_reference_cost phy ~dist
  | `Nakagami m -> epsilon_cost (Ed_function.nakagami ~beta:(Phy.beta phy ~dist) ~m) phy
  | `Lognormal sigma ->
      epsilon_cost (Ed_function.lognormal ~beta:(Phy.beta phy ~dist) ~sigma) phy

let marginals_at g ~phy ~channel ~node ~time =
  Tmedb_obs.Counter.incr c_queries;
  let neighbours = Tveg.neighbors_at g node time in
  let costed =
    List.map (fun (j, dist) -> (neighbour_cost ~phy ~channel ~dist, j)) neighbours
    |> List.filter (fun (w, _) -> w <= phy.Phy.w_max)
    |> List.sort (fun (wa, ja) (wb, jb) ->
           let c = Float.compare wa wb in
           if c <> 0 then c else Int.compare ja jb)
  in
  (* Level k covers the k cheapest neighbours; equal costs merge into
     one level.  Only the level's *new* neighbours are materialised —
     equal-cost runs are contiguous and id-ascending after the sort. *)
  let rec build = function
    | [] -> []
    | (w, j) :: rest ->
        let rec absorb fresh_rev rest =
          match rest with
          | (w', j') :: tl when Float.equal w' w -> absorb (j' :: fresh_rev) tl
          | _ -> (fresh_rev, rest)
        in
        let fresh_rev, rest = absorb [ j ] rest in
        { cost = Float.max phy.Phy.w_min w; fresh = List.rev fresh_rev } :: build rest
  in
  build costed

let at g ~phy ~channel ~node ~time =
  (* Prefix-accumulate the marginals: each level's covered set is the
     previous one merged with the fresh neighbours (both id-sorted). *)
  let rec merge a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: xt, y :: yt ->
        if x < y then x :: merge xt b else if x > y then y :: merge a yt else x :: merge xt yt
  in
  let rec accum covered = function
    | [] -> []
    | { cost; fresh } :: rest ->
        let covered = merge covered fresh in
        { cost; covered } :: accum covered rest
  in
  accum [] (marginals_at g ~phy ~channel ~node ~time)

let level_stats margs =
  List.fold_left
    (fun (nlev, cov) { fresh; _ } -> (nlev + 1, cov + List.length fresh))
    (0, 0) margs

let min_cost_level = function [] -> None | level :: _ -> Some level

let level_covering levels ~k =
  List.find_opt (fun level -> List.length level.covered >= k) levels
