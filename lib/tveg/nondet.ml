open Tmedb_prelude

type potential_contact = {
  a : int;
  b : int;
  link : Tveg.link;
  presence_prob : float;
}

type t = { n : int; span : Interval.t; tau : float; contacts : potential_contact list }

let create ~n ~span ~tau contacts =
  if n <= 0 then invalid_arg "Nondet.create: n <= 0";
  if tau < 0. then invalid_arg "Nondet.create: negative tau";
  List.iter
    (fun c ->
      if c.a < 0 || c.b < 0 || c.a >= n || c.b >= n || c.a = c.b then
        invalid_arg "Nondet.create: bad contact endpoints";
      if not (0. <= c.presence_prob && c.presence_prob <= 1.) then
        invalid_arg "Nondet.create: probability outside [0,1]";
      if not (Interval.contains span c.link.Tveg.iv) then
        invalid_arg "Nondet.create: link outside the span")
    contacts;
  { n; span; tau; contacts }

let n t = t.n
let span t = t.span
let tau t = t.tau
let contacts t = t.contacts

let of_tveg g ~presence_prob =
  let acc = ref [] in
  for i = 0 to Tveg.n g - 2 do
    for j = i + 1 to Tveg.n g - 1 do
      List.iter (fun link -> acc := { a = i; b = j; link; presence_prob } :: !acc) (Tveg.links g i j)
    done
  done;
  create ~n:(Tveg.n g) ~span:(Tveg.span g) ~tau:(Tveg.tau g) !acc

let realize t keep =
  let entries =
    List.filter_map (fun c -> if keep c then Some (c.a, c.b, c.link) else None) t.contacts
  in
  Tveg.create ~n:t.n ~span:t.span ~tau:t.tau entries

let support t = realize t (fun _ -> true)
let threshold t ~min_prob = realize t (fun c -> c.presence_prob >= min_prob)
let sample rng t = realize t (fun c -> Dist.bernoulli rng ~p:c.presence_prob)

type robustness = {
  trials : int;
  mean_delivery : float;
  full_delivery_rate : float;
  mean_energy_wasted : float;
}

let evaluate ?(trials = 200) ?pool ~rng t ~check =
  if trials <= 0 then invalid_arg "Nondet.evaluate: trials <= 0";
  (* Per-trial stream split, as in Simulate.run: realization k depends
     only on the incoming state and k, never on the pool size. *)
  let rngs = Array.make trials rng in
  for k = 0 to trials - 1 do
    rngs.(k) <- Rng.split rng
  done;
  let outcomes = Pool.map_chunked pool (fun r -> check (sample r t)) rngs in
  let deliveries = Array.make trials 0. in
  let wasted = Array.make trials 0. in
  let full = ref 0 in
  for k = 0 to trials - 1 do
    let delivery, fully, waste = outcomes.(k) in
    deliveries.(k) <- delivery;
    wasted.(k) <- waste;
    if fully then incr full
  done;
  {
    trials;
    mean_delivery = Stats.mean deliveries;
    full_delivery_rate = float_of_int !full /. float_of_int trials;
    mean_energy_wasted = Stats.mean wasted;
  }
