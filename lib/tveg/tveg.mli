(** Time-varying energy-demand graphs (paper Definition 3.2).

    A TVEG couples a deterministic TVG with, for every edge and time, an
    ED-function.  Concretely each unordered pair carries its contact
    segments — presence interval plus distance — and the cost function
    ψ derives the ED-function from the distance under a channel model.
    The uniform traversal latency τ (paper Section III-A) is stored
    with the graph. *)

open Tmedb_prelude

type link = { iv : Interval.t; dist : float }

type channel = [ `Static | `Rayleigh | `Nakagami of float | `Lognormal of float ]
(** Which ED-function class F instantiates ψ. *)

type t

val of_trace : tau:float -> Tmedb_trace.Trace.t -> t
(** @raise Invalid_argument on negative τ. *)

val create : n:int -> span:Interval.t -> tau:float -> (int * int * link) list -> t
(** Direct construction for tests and gadget instances. *)

val n : t -> int
val span : t -> Interval.t
val tau : t -> float
val links : t -> int -> int -> link list
(** Contact segments of the unordered pair, sorted by start. *)

val rho_tau : t -> int -> int -> float -> bool
(** A transmission started at the given time completes: the edge is
    continuously present on [\[t, t+τ\]]. *)

val dist_at : t -> int -> int -> float -> float option
(** Distance during the covering segment when [rho_tau] holds. *)

val ed_at : t -> phy:Tmedb_channel.Phy.t -> channel:channel -> int -> int -> float ->
  Tmedb_channel.Ed_function.t
(** The ψ of Definition 3.2: ED-function of edge (i,j) at a time
    ([Absent] when the transmission cannot complete). *)

val neighbors_at : t -> int -> float -> (int * float) list
(** (neighbour, distance) pairs with ρ_τ = 1, ascending node id.
    O(deg(i) · log L) — only nodes sharing a contact with [i] are
    examined, not all N. *)

val neighbor_ids : t -> int -> int array
(** Nodes sharing at least one contact segment with the given node
    over the whole span, ascending.  O(1); the returned array is the
    graph's own adjacency — callers must not mutate it. *)

val presence : t -> int -> int -> Interval_set.t
(** Normalised union of the pair's contact segments: the times at
    which the edge exists, as a canonical interval set.  O(1) (built
    at construction); empty for a pair with no contacts or [i = j]. *)

val earliest_arrival : t -> src:int -> t0:float -> float array
(** Earliest packet arrival per node from [src] starting at [t0]
    (temporal Dijkstra over contact segments, traversal latency τ).
    Equals [Journey.earliest_arrival (to_tvg g)] without the O(N²)
    densification: O((C + N log N)) for C contact segments. *)

val to_tvg : t -> Tmedb_tvg.Tvg.t
val adjacent_partition : t -> int -> Tmedb_tvg.Partition.t
(** P^ad_i over the graph span (Equation 9). *)

val average_degree_over : t -> window:Interval.t -> float
val restrict : t -> span:Interval.t -> t
val pp : Format.formatter -> t -> unit
