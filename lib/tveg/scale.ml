open Tmedb_prelude

(* Deterministic clustered scenarios for the N-scaling benchmarks.

   Topology per epoch: nodes are split into clusters of [cluster]
   consecutive ids; the first node of each cluster is its hub.  Hubs
   keep a cheap *near* contact to every cluster member (a star) and to
   the next cluster's hub (a ring bridge), so a broadcast can reach
   every node through short, low-cost hops.  Members additionally meet
   each other pairwise at *far* distances during jittered sub-windows
   of the epoch.

   The far meetings are the scaling load: they multiply DTS points and
   give every member block a deep discrete cost set, yet their d^alpha
   costs are orders of magnitude above the near backbone, so a
   shortest-path scan over the auxiliary graph never needs them.  An
   eager build pays for all of them; a lazy one only for the frontier
   — which is what `bench nscale` measures. *)

type params = {
  cluster : int;
  epochs : int;
  epoch_len : float;
  near : float * float;
  far : float * float;
  seed : int;
}

let default_params =
  { cluster = 64; epochs = 2; epoch_len = 600.; near = (8., 16.); far = (240., 420.); seed = 7 }

let range rng (lo, hi) = lo +. Rng.float rng (hi -. lo)

let scenario ?(params = default_params) ~n () =
  if n < 2 then invalid_arg "Scale.scenario: n < 2";
  if params.cluster < 2 then invalid_arg "Scale.scenario: cluster < 2";
  if params.epochs < 1 then invalid_arg "Scale.scenario: epochs < 1";
  if params.epoch_len <= 0. then invalid_arg "Scale.scenario: epoch_len <= 0";
  let rng = Rng.create params.seed in
  let num_clusters = (n + params.cluster - 1) / params.cluster in
  let hub k = k * params.cluster in
  let cluster_hi k = Stdlib.min ((k + 1) * params.cluster) n in
  let contacts = ref [] in
  let add u v lo hi dist =
    if hi > lo then
      contacts := (u, v, { Tveg.iv = Interval.make ~lo ~hi; dist }) :: !contacts
  in
  for e = 0 to params.epochs - 1 do
    let e_lo = float_of_int e *. params.epoch_len in
    let e_hi = e_lo +. params.epoch_len in
    let jitter () = Rng.float rng (0.05 *. params.epoch_len) in
    for k = 0 to num_clusters - 1 do
      let h = hub k in
      let hi = cluster_hi k in
      (* Star: hub to each member, cheap, most of the epoch. *)
      for m = h + 1 to hi - 1 do
        add h m (e_lo +. jitter ()) (e_hi -. jitter ()) (range rng params.near)
      done;
      (* Ring bridge to the next cluster's hub. *)
      if k + 1 < num_clusters then
        add h (hub (k + 1)) (e_lo +. jitter ()) (e_hi -. jitter ()) (range rng params.near);
      (* Far member meetings: all pairs, jittered sub-windows. *)
      for u = h + 1 to hi - 1 do
        for v = u + 1 to hi - 1 do
          let start = e_lo +. Rng.float rng (0.5 *. params.epoch_len) in
          let dur = (0.25 +. Rng.float rng 0.35) *. params.epoch_len in
          add u v start (Float.min (start +. dur) e_hi) (range rng params.far)
        done
      done
    done
  done;
  let span = Interval.make ~lo:0. ~hi:(float_of_int params.epochs *. params.epoch_len) in
  Tveg.create ~n ~span ~tau:0. !contacts

let deadline ?(params = default_params) () = float_of_int params.epochs *. params.epoch_len
