open Tmedb_prelude

type link = { iv : Interval.t; dist : float }
type channel = [ `Static | `Rayleigh | `Nakagami of float | `Lognormal of float ]

(* One unordered pair's contact history.  [segs] is sorted by segment
   start; [prefmax.(k)] is the max segment end over segs.(0..k), which
   bounds the leftward scan in [covering_link] (overlapping segments
   are rare, so lookups are O(log L) in practice).  [presence] is the
   normalised union of the segment intervals, shared with the TVG
   algebra and the earliest-arrival scan. *)
type pair = { segs : link array; prefmax : float array; presence : Interval_set.t }

(* Sparse storage: only pairs with at least one contact exist, keyed
   by [i * n + j] (i < j), plus sorted per-node adjacency.  The dense
   triangular array this replaces was O(N^2) in memory and made every
   all-neighbours loop O(N) regardless of degree. *)
type t = {
  n : int;
  span : Interval.t;
  tau : float;
  pairs : (int, pair) Hashtbl.t;
  adj : int array array;
}

let pair_key t i j =
  let i, j = if i < j then (i, j) else (j, i) in
  (i * t.n) + j

let check_pair_n n i j op =
  if i < 0 || j < 0 || i >= n || j >= n then
    invalid_arg ("Tveg." ^ op ^ ": node out of range");
  if i = j then invalid_arg ("Tveg." ^ op ^ ": self-loop")

let check_pair t i j op = check_pair_n t.n i j op
let sort_links links = List.sort (fun a b -> Interval.compare a.iv b.iv) links

let make_pair segs_list =
  let segs = Array.of_list segs_list in
  let prefmax = Array.make (Array.length segs) Float.neg_infinity in
  let m = ref Float.neg_infinity in
  Array.iteri
    (fun k s ->
      m := Float.max !m s.iv.Interval.hi;
      prefmax.(k) <- !m)
    segs;
  let presence = Interval_set.of_list (List.map (fun s -> s.iv) segs_list) in
  { segs; prefmax; presence }

let finish_adj deg =
  Array.map
    (fun l ->
      let a = Array.of_list l in
      Array.sort Int.compare a;
      a)
    deg

let create ~n ~span ~tau entries =
  if n <= 0 then invalid_arg "Tveg.create: n <= 0";
  if tau < 0. then invalid_arg "Tveg.create: negative tau";
  let tbl = Hashtbl.create 256 in
  let keys = ref [] in
  List.iter
    (fun (i, j, link) ->
      check_pair_n n i j "create";
      if not (Interval.contains span link.iv) then
        invalid_arg "Tveg.create: link outside the span";
      if link.dist <= 0. then invalid_arg "Tveg.create: non-positive distance";
      let i', j' = if i < j then (i, j) else (j, i) in
      let k = (i' * n) + j' in
      match Hashtbl.find_opt tbl k with
      | None ->
          keys := k :: !keys;
          Hashtbl.replace tbl k [ link ]
      | Some ls -> Hashtbl.replace tbl k (link :: ls))
    entries;
  let pairs = Hashtbl.create (List.length !keys) in
  let deg = Array.make n [] in
  List.iter
    (fun k ->
      let i = k / n and j = k mod n in
      Hashtbl.replace pairs k (make_pair (sort_links (Hashtbl.find tbl k)));
      deg.(i) <- j :: deg.(i);
      deg.(j) <- i :: deg.(j))
    !keys;
  { n; span; tau; pairs; adj = finish_adj deg }

let of_trace ~tau trace =
  let open Tmedb_trace in
  let entries =
    List.map
      (fun c -> (c.Contact.a, c.Contact.b, { iv = c.Contact.iv; dist = c.Contact.dist }))
      (Trace.contacts trace)
  in
  create ~n:(Trace.n trace) ~span:(Trace.span trace) ~tau entries

let n t = t.n
let span t = t.span
let tau t = t.tau
let find_pair t i j = Hashtbl.find_opt t.pairs (pair_key t i j)

let links t i j =
  if i = j then []
  else begin
    check_pair t i j "links";
    match find_pair t i j with None -> [] | Some p -> Array.to_list p.segs
  end

let neighbor_ids t i =
  if i < 0 || i >= t.n then invalid_arg "Tveg.neighbor_ids: node out of range";
  t.adj.(i)

let presence t i j =
  if i = j then Interval_set.empty
  else begin
    check_pair t i j "presence";
    match find_pair t i j with None -> Interval_set.empty | Some p -> p.presence
  end

(* First covering segment in segment-start order, as the dense
   representation's [List.find_opt] returned.  Binary-search the
   rightmost segment starting at or before [time], then scan left
   while the prefix could still contain a cover (prefmax > time),
   keeping the lowest-index hit. *)
let covering_seg p time =
  let len = Array.length p.segs in
  if len = 0 || time < p.segs.(0).iv.Interval.lo then None
  else begin
    let lo = ref 0 and hi = ref len in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if p.segs.(mid).iv.Interval.lo <= time then lo := mid else hi := mid
    done;
    let best = ref None in
    let k = ref !lo and scanning = ref true in
    while !scanning do
      if Interval.mem p.segs.(!k).iv time then best := Some p.segs.(!k);
      if !k = 0 || p.prefmax.(!k - 1) <= time then scanning := false else decr k
    done;
    !best
  end

let covering_link t i j time =
  if i = j then None
  else begin
    check_pair t i j "covering_link";
    match find_pair t i j with None -> None | Some p -> covering_seg p time
  end

let rho_tau t i j time =
  match covering_link t i j time with
  | None -> false
  | Some l -> time +. t.tau < l.iv.Interval.hi

let dist_at t i j time =
  match covering_link t i j time with
  | Some l when time +. t.tau < l.iv.Interval.hi -> Some l.dist
  | Some _ | None -> None

let ed_at t ~phy ~channel i j time =
  let open Tmedb_channel in
  match dist_at t i j time with
  | None -> Ed_function.Absent
  | Some dist -> Ed_function.of_distance phy channel ~dist

let neighbors_at t i time =
  let acc = ref [] in
  let adj = t.adj.(i) in
  for k = Array.length adj - 1 downto 0 do
    let j = adj.(k) in
    match dist_at t i j time with Some d -> acc := (j, d) :: !acc | None -> ()
  done;
  !acc

let to_tvg t =
  let g = ref (Tmedb_tvg.Tvg.create ~n:t.n ~span:t.span) in
  for i = 0 to t.n - 1 do
    Array.iter
      (fun j ->
        if j > i then
          List.iter (fun l -> g := Tmedb_tvg.Tvg.add_presence !g i j l.iv) (links t i j))
      t.adj.(i)
  done;
  !g

let adjacent_partition t i =
  let pts = ref [] in
  Array.iter
    (fun j ->
      List.iter
        (fun l -> pts := l.iv.Interval.lo :: l.iv.Interval.hi :: !pts)
        (links t i j))
    t.adj.(i);
  Tmedb_tvg.Partition.make ~span:t.span !pts

let average_degree_over t ~window =
  Tmedb_tvg.Tvg.average_degree_over (to_tvg t) ~window

let restrict t ~span:sub =
  if not (Interval.contains t.span sub) then invalid_arg "Tveg.restrict: span not contained";
  let pairs = Hashtbl.create (Hashtbl.length t.pairs) in
  let deg = Array.make t.n [] in
  for i = 0 to t.n - 1 do
    Array.iter
      (fun j ->
        if j > i then begin
          match find_pair t i j with
          | None -> ()
          | Some p ->
              let clipped =
                Array.to_list p.segs
                |> List.filter_map (fun l ->
                       match Interval.inter l.iv sub with
                       | None -> None
                       | Some iv -> Some { l with iv })
              in
              (match clipped with
              | [] -> ()
              | _ :: _ ->
                  Hashtbl.replace pairs ((i * t.n) + j) (make_pair clipped);
                  deg.(i) <- j :: deg.(i);
                  deg.(j) <- i :: deg.(j))
        end)
      t.adj.(i)
  done;
  { t with span = sub; pairs; adj = finish_adj deg }

(* Temporal Dijkstra over contact segments (the Tvg journey scan,
   restated on the sparse adjacency): from a node reached at time [a],
   a presence window [lo, hi) can be traversed departing at
   max(a, lo) provided the traversal fits before [hi].  Replaces the
   O(N^2) densification [Journey.earliest_arrival (to_tvg g)] on the
   DTS source-pruning path. *)
let earliest_arrival t ~src ~t0 =
  if src < 0 || src >= t.n then invalid_arg "Tveg.earliest_arrival: src out of range";
  let arrivals = Array.make t.n Float.infinity in
  let settled = Array.make t.n false in
  let queue = Pqueue.create () in
  arrivals.(src) <- t0;
  Pqueue.push queue t0 src;
  let relax i a =
    Array.iter
      (fun j ->
        match find_pair t i j with
        | None -> ()
        | Some p ->
            Interval_set.iter
              (fun iv ->
                let lo = iv.Interval.lo and hi = iv.Interval.hi in
                let depart = Float.max a lo in
                if depart +. t.tau < hi then begin
                  let arr = depart +. t.tau in
                  if arr < arrivals.(j) then begin
                    arrivals.(j) <- arr;
                    Pqueue.push queue arr j
                  end
                end)
              p.presence)
      t.adj.(i)
  in
  let rec drain () =
    match Pqueue.pop queue with
    | None -> ()
    | Some (a, i) ->
        if not settled.(i) then begin
          settled.(i) <- true;
          relax i a
        end;
        drain ()
  in
  drain ();
  arrivals

let pp ppf t =
  let count = ref 0 in
  for i = 0 to t.n - 1 do
    Array.iter
      (fun j ->
        if j > i then
          match find_pair t i j with
          | None -> ()
          | Some p -> count := !count + Array.length p.segs)
      t.adj.(i)
  done;
  Format.fprintf ppf "tveg{n=%d span=%a tau=%g links=%d}" t.n Interval.pp t.span t.tau !count
