(** Deterministic clustered TVEG scenarios for the N-scaling
    benchmarks (`bench nscale`, docs/SCALING.md).

    Nodes form clusters of consecutive ids.  Each cluster's first node
    (its hub) holds cheap *near* contacts to every member and to the
    next cluster's hub — a low-cost backbone a broadcast can follow.
    Members additionally meet pairwise at *far* distances in jittered
    sub-windows: with cost ∝ d^α those meetings are orders of
    magnitude more expensive than the backbone, so they multiply DTS
    points and DCS levels (the eager auxiliary graph's O(N²L) load)
    while an energy-optimal scan never expands them — exactly the gap
    lazy expansion is built to exploit. *)

type params = {
  cluster : int;  (** Target cluster size (last cluster may be smaller). *)
  epochs : int;  (** Number of contact epochs. *)
  epoch_len : float;  (** Seconds per epoch. *)
  near : float * float;  (** Backbone distance range, metres. *)
  far : float * float;  (** Member-meeting distance range, metres. *)
  seed : int;  (** Rng seed; same params + n → identical graph. *)
}

val default_params : params
(** 64-node clusters, 2 epochs of 600 s, near 8–16 m, far 240–420 m,
    seed 7 (far costs stay inside the default {!Tmedb_channel.Phy}
    cost set: α = 2 puts w_max at a ≈2.5 km static hop). *)

val scenario : ?params:params -> n:int -> unit -> Tveg.t
(** The n-node graph (τ = 0, span [0, epochs·epoch_len]).
    Deterministic in (params, n); O(contacts) = O(epochs · n ·
    cluster).  @raise Invalid_argument on [n < 2], [cluster < 2],
    [epochs < 1] or a non-positive epoch length. *)

val deadline : ?params:params -> unit -> float
(** The span's upper bound — the natural broadcast deadline for
    {!scenario} instances. *)
