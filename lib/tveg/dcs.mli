(** Discrete cost sets (paper Section VI-A).

    At a node and time, sort the ρ_τ-adjacent neighbours by the cost
    needed to serve them; the DCS is the resulting increasing cost
    sequence.  Property 6.1 (broadcast nature): paying level k serves
    the k cheapest neighbours, and by Proposition 6.1 an optimal
    schedule only ever uses DCS costs.

    The per-neighbour cost is channel-dependent: the static minimum
    cost N₀B·γ_th·d^α for [`Static]; the single-hop ε-failure cost
    w₀ = β/ln(1/(1−ε)) for the fading models (the backbone weights of
    Section VI-B). *)

open Tmedb_channel

type marginal = {
  cost : float;  (** Transmit cost of this DCS level, clamped to ≥ w_min. *)
  fresh : int list;  (** Neighbours first served at this level, ascending id. *)
}

type level = {
  cost : float;  (** Transmit cost of this DCS level, clamped to ≥ w_min. *)
  covered : int list;  (** All neighbours served at this cost, ascending id. *)
}

val at :
  Tveg.t -> phy:Phy.t -> channel:Tveg.channel -> node:int -> time:float -> level list
(** Increasing-cost levels; levels whose cost exceeds [w_max] are
    dropped (those neighbours are unreachable in one hop at this
    time).  Equal-cost neighbours share a level. *)

val marginals_at :
  Tveg.t -> phy:Phy.t -> channel:Tveg.channel -> node:int -> time:float -> marginal list
(** Same levels as {!at} but carrying only each level's newly covered
    neighbours.  The auxiliary-graph construction wants exactly the
    per-level deltas; accumulating full covered lists there was O(k²)
    list churn per (node, time). *)

val neighbour_cost : phy:Phy.t -> channel:Tveg.channel -> dist:float -> float
(** The per-neighbour cost described above. *)

val level_stats : marginal list -> int * int
(** [(levels, covered)]: the number of levels and the total neighbours
    covered across them — one (node, time) block's vertex and
    coverage-edge counts in the auxiliary graph, shared by the eager
    sizing pass and the deadline-shared solve state. *)

val min_cost_level : level list -> level option
(** First (cheapest) level, if any. *)

val level_covering : level list -> k:int -> level option
(** Cheapest level covering at least [k] neighbours. *)
