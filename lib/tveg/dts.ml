open Tmedb_prelude

let log_src = Logs.Src.create "tmedb.dts" ~doc:"Discrete time set construction"

module Log = (val Logs.src_log log_src : Logs.LOG)
module FloatSet = Set.Make (Float)

(* Telemetry: [dts.points] accumulates the total points of every
   computed DTS — with the auxiliary-graph counters it exposes how the
   discretisation scales (the paper's O(N^2 L) / O(N^3 L) bounds). *)
let c_computes = Tmedb_obs.Counter.make "dts.computes"
let c_points = Tmedb_obs.Counter.make "dts.points"
let t_compute = Tmedb_obs.Timer.make "dts.compute"

type t = { deadline : float; points : float array array }

let base_points g ~deadline ~min_time i =
  let pts = Tmedb_tvg.Partition.points (Tveg.adjacent_partition g i) in
  Array.to_list pts
  |> List.filter (fun p -> p <= deadline && p >= min_time.(i))
  |> FloatSet.of_list

let compute ?(cap_per_node = 4000) ?source g ~deadline =
  Tmedb_obs.Counter.incr c_computes;
  let tc = Tmedb_obs.Timer.start t_compute in
  let span = Tveg.span g in
  if deadline > span.Interval.hi || deadline <= span.Interval.lo then
    invalid_arg "Dts.compute: deadline outside the graph span";
  let n = Tveg.n g in
  let tau = Tveg.tau g in
  (* Knowing the source lets us drop every point of a node that
     precedes its earliest possible packet arrival: the node cannot
     be informed there, so neither its status nor its usefulness as a
     relay can change.  This prunes nothing the optimal schedule could
     use and shrinks the auxiliary graph substantially. *)
  let min_time =
    match source with
    | None -> Array.make n span.Interval.lo
    | Some src -> Tveg.earliest_arrival g ~src ~t0:span.Interval.lo
  in
  let sets = Array.init n (fun i -> base_points g ~deadline ~min_time i) in
  begin
    (* Close the point sets under τ-propagation along possible
       transmissions, bounded by non-stop journey length.  With τ = 0
       this copies each point to the nodes reachable at that instant,
       so receive times are always points of the receiver. *)
    let queue = Queue.create () in
    Array.iteri (fun i set -> FloatSet.iter (fun p -> Queue.add (0, i, p) queue) set) sets;
    let truncated = ref false in
    while not (Queue.is_empty queue) do
      let depth, i, p = Queue.pop queue in
      if depth < n - 1 then
        List.iter
          (fun (j, _dist) ->
            let p' = p +. tau in
            if p' <= deadline && p' >= min_time.(j) && not (FloatSet.mem p' sets.(j)) then begin
              if FloatSet.cardinal sets.(j) < cap_per_node then begin
                sets.(j) <- FloatSet.add p' sets.(j);
                Queue.add (depth + 1, j, p') queue
              end
              else truncated := true
            end)
          (Tveg.neighbors_at g i p)
    done;
    if !truncated then
      Log.warn (fun m -> m "DTS propagation truncated at %d points per node" cap_per_node)
  end;
  (* Every node keeps at least one point so that it can serve as an
     auxiliary-graph terminal even when unreachable by the deadline. *)
  Array.iteri
    (fun i s -> if FloatSet.is_empty s then sets.(i) <- FloatSet.singleton span.Interval.lo)
    sets;
  let t = { deadline; points = Array.map (fun s -> Array.of_list (FloatSet.elements s)) sets } in
  Tmedb_obs.Counter.add c_points
    (Array.fold_left (fun acc pts -> acc + Array.length pts) 0 t.points);
  Tmedb_obs.Timer.stop t_compute tc;
  t

let deadline t = t.deadline
let node_points t i = t.points.(i)
let total_points t = Array.fold_left (fun acc pts -> acc + Array.length pts) 0 t.points
let num_nodes t = Array.length t.points

let latest_at_or_before t i time =
  let pts = t.points.(i) in
  let n = Array.length pts in
  if n = 0 || time < pts.(0) then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi > !lo do
      let mid = (!lo + !hi + 1) / 2 in
      if pts.(mid) <= time then lo := mid else hi := mid - 1
    done;
    Some pts.(!lo)
  end

let earliest_at_or_after t i time =
  let pts = t.points.(i) in
  let n = Array.length pts in
  if n = 0 || time > pts.(n - 1) then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi > !lo do
      let mid = (!lo + !hi) / 2 in
      if pts.(mid) >= time then hi := mid else lo := mid + 1
    done;
    Some pts.(!lo)
  end

let index_of_point t i p =
  let pts = t.points.(i) in
  let rec search lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      if Float.equal pts.(mid) p then Some mid
      else if pts.(mid) < p then search (mid + 1) hi
      else search lo (mid - 1)
    end
  in
  search 0 (Array.length pts - 1)

let pp ppf t =
  Format.fprintf ppf "dts{deadline=%g nodes=%d points=%d}" t.deadline (num_nodes t)
    (total_points t)
