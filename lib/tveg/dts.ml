open Tmedb_prelude

let log_src = Logs.Src.create "tmedb.dts" ~doc:"Discrete time set construction"

module Log = (val Logs.src_log log_src : Logs.LOG)
module FloatSet = Set.Make (Float)

(* Telemetry: [dts.points] accumulates the total points of every
   computed DTS — with the auxiliary-graph counters it exposes how the
   discretisation scales (the paper's O(N^2 L) / O(N^3 L) bounds). *)
let c_computes = Tmedb_obs.Counter.make "dts.computes"
let c_points = Tmedb_obs.Counter.make "dts.points"
let t_compute = Tmedb_obs.Timer.make "dts.compute"

type t = { deadline : float; points : float array array }

let base_points g ~deadline ~min_time i =
  let pts = Tmedb_tvg.Partition.points (Tveg.adjacent_partition g i) in
  Array.to_list pts
  |> List.filter (fun p -> p <= deadline && p >= min_time.(i))
  |> FloatSet.of_list

let compute ?(cap_per_node = 4000) ?source g ~deadline =
  Tmedb_obs.Counter.incr c_computes;
  let tc = Tmedb_obs.Timer.start t_compute in
  let span = Tveg.span g in
  if deadline > span.Interval.hi || deadline <= span.Interval.lo then
    invalid_arg "Dts.compute: deadline outside the graph span";
  let n = Tveg.n g in
  let tau = Tveg.tau g in
  (* Knowing the source lets us drop every point of a node that
     precedes its earliest possible packet arrival: the node cannot
     be informed there, so neither its status nor its usefulness as a
     relay can change.  This prunes nothing the optimal schedule could
     use and shrinks the auxiliary graph substantially. *)
  let min_time =
    match source with
    | None -> Array.make n span.Interval.lo
    | Some src -> Tveg.earliest_arrival g ~src ~t0:span.Interval.lo
  in
  let sets = Array.init n (fun i -> base_points g ~deadline ~min_time i) in
  begin
    (* Close the point sets under τ-propagation along possible
       transmissions, bounded by non-stop journey length.  With τ = 0
       this copies each point to the nodes reachable at that instant,
       so receive times are always points of the receiver. *)
    let queue = Queue.create () in
    Array.iteri (fun i set -> FloatSet.iter (fun p -> Queue.add (0, i, p) queue) set) sets;
    let truncated = ref false in
    while not (Queue.is_empty queue) do
      let depth, i, p = Queue.pop queue in
      if depth < n - 1 then
        List.iter
          (fun (j, _dist) ->
            let p' = p +. tau in
            if p' <= deadline && p' >= min_time.(j) && not (FloatSet.mem p' sets.(j)) then begin
              if FloatSet.cardinal sets.(j) < cap_per_node then begin
                sets.(j) <- FloatSet.add p' sets.(j);
                Queue.add (depth + 1, j, p') queue
              end
              else truncated := true
            end)
          (Tveg.neighbors_at g i p)
    done;
    if !truncated then
      Log.warn (fun m -> m "DTS propagation truncated at %d points per node" cap_per_node)
  end;
  (* Every node keeps at least one point so that it can serve as an
     auxiliary-graph terminal even when unreachable by the deadline. *)
  Array.iteri
    (fun i s -> if FloatSet.is_empty s then sets.(i) <- FloatSet.singleton span.Interval.lo)
    sets;
  let t = { deadline; points = Array.map (fun s -> Array.of_list (FloatSet.elements s)) sets } in
  Tmedb_obs.Counter.add c_points
    (Array.fold_left (fun acc pts -> acc + Array.length pts) 0 t.points);
  Tmedb_obs.Timer.stop t_compute tc;
  t

module Stream = struct
  (* Telemetry mirrors the eager counters: [dts.stream_points] counts
     closure points actually generated (once per stream, however many
     deadlines view them) while [dts.stream_views] counts the per-
     deadline DTS snapshots assembled from the shared stream. *)
  let c_creates = Tmedb_obs.Counter.make "dts.stream_creates"
  let c_stream_points = Tmedb_obs.Counter.make "dts.stream_points"
  let c_views = Tmedb_obs.Counter.make "dts.stream_views"
  let t_advance = Tmedb_obs.Timer.make "dts.stream_advance"

  (* Minimal growable float array: points are appended in ascending
     time order, so each node's buffer stays sorted by construction. *)
  type grow = { mutable data : float array; mutable len : int }

  let grow_make () = { data = Array.make 8 nan; len = 0 }

  let grow_push gr x =
    if gr.len = Array.length gr.data then begin
      let d = Array.make (2 * gr.len) nan in
      Array.blit gr.data 0 d 0 gr.len;
      gr.data <- d
    end;
    gr.data.(gr.len) <- x;
    gr.len <- gr.len + 1

  (* Number of stored points strictly below [x]. *)
  let grow_below gr x =
    let lo = ref 0 and hi = ref gr.len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if gr.data.(mid) < x then lo := mid + 1 else hi := mid
    done;
    !lo

  type stream = {
    g : Tveg.t;
    n : int;
    tau : float;
    span : Interval.t;
    cap : int;
    min_time : float array;
    base : (float * int) array;  (* (time, node), sorted by time then node *)
    mutable base_cursor : int;
    (* τ > 0 propagation leaves its bucket; generated arrival times are
       monotone in the generating bucket, so a FIFO stays time-sorted. *)
    arrivals : (float * int * int) Queue.t;  (* (time, node, depth) *)
    pts : grow array;
    mutable horizon : float;  (* every event at or before it is processed *)
    mutable truncated : bool;
    mutable warned : bool;
    (* per-bucket scratch (reset via the touched list after each bucket) *)
    frontier : int list array;
    depth_of : int array;
  }

  let create ?(cap_per_node = 4000) ?source g =
    Tmedb_obs.Counter.incr c_creates;
    let span = Tveg.span g in
    let n = Tveg.n g in
    let min_time =
      match source with
      | None -> Array.make n span.Interval.lo
      | Some src -> Tveg.earliest_arrival g ~src ~t0:span.Interval.lo
    in
    (* The per-deadline view re-adds the deadline itself (the clipped
       partition endpoint of the restricted graph), so the stream only
       carries base points strictly inside the span. *)
    let base =
      List.init n (fun i ->
          Tmedb_tvg.Partition.points (Tveg.adjacent_partition g i)
          |> Array.to_list
          |> List.filter (fun p -> p < span.Interval.hi && p >= min_time.(i))
          |> List.map (fun p -> (p, i)))
      |> List.concat
      |> List.sort (fun (pa, ia) (pb, ib) ->
             let c = Float.compare pa pb in
             if c <> 0 then c else Int.compare ia ib)
      |> Array.of_list
    in
    {
      g;
      n;
      tau = Tveg.tau g;
      span;
      cap = cap_per_node;
      min_time;
      base;
      base_cursor = 0;
      arrivals = Queue.create ();
      pts = Array.init n (fun _ -> grow_make ());
      horizon = Float.neg_infinity;
      truncated = false;
      warned = false;
      frontier = Array.make (Int.max n 1) [];
      depth_of = Array.make n (-1);
    }

  let has_point s i t =
    let gr = s.pts.(i) in
    gr.len > 0 && Float.equal gr.data.(gr.len - 1) t

  (* Base points bypass the cap, matching the eager construction where
     only τ-propagation is capped. *)
  let add_base s i t =
    if not (has_point s i t) then begin
      grow_push s.pts.(i) t;
      Tmedb_obs.Counter.incr c_stream_points
    end

  let add_closure s i t =
    if has_point s i t then true
    else if s.pts.(i).len < s.cap then begin
      grow_push s.pts.(i) t;
      Tmedb_obs.Counter.incr c_stream_points;
      true
    end
    else begin
      s.truncated <- true;
      false
    end

  (* One time bucket.  All of the bucket's base events and (τ > 0)
     queued arrivals are drained first; with τ = 0 the closure lives
     entirely inside the bucket (a layered BFS over the instant graph,
     which yields the same min-depth point set as the eager FIFO BFS),
     while with τ > 0 every propagation lands in a strictly later
     bucket, so the seeds only emit future arrivals. *)
  let process_bucket s t =
    let nbase = Array.length s.base in
    let base_nodes = ref [] in
    while
      s.base_cursor < nbase && Float.equal (fst s.base.(s.base_cursor)) t
    do
      base_nodes := snd s.base.(s.base_cursor) :: !base_nodes;
      s.base_cursor <- s.base_cursor + 1
    done;
    let base_nodes = List.rev !base_nodes in
    let arrival_seeds = ref [] in
    let draining = ref true in
    while !draining do
      match Queue.peek_opt s.arrivals with
      | Some (ta, j, d) when Float.equal ta t ->
          ignore (Queue.pop s.arrivals);
          arrival_seeds := (j, d) :: !arrival_seeds
      | _ -> draining := false
    done;
    let touched = ref [] in
    if Float.equal s.tau 0. then begin
      List.iter
        (fun i ->
          add_base s i t;
          if s.depth_of.(i) < 0 then begin
            s.depth_of.(i) <- 0;
            touched := i :: !touched;
            s.frontier.(0) <- i :: s.frontier.(0)
          end)
        base_nodes;
      for d = 0 to s.n - 1 do
        let layer = List.rev s.frontier.(d) in
        s.frontier.(d) <- [];
        if d < s.n - 1 then
          List.iter
            (fun i ->
              List.iter
                (fun (j, _dist) ->
                  if
                    t >= s.min_time.(j)
                    && (not (has_point s j t))
                    && s.depth_of.(j) < 0
                    && add_closure s j t
                  then begin
                    s.depth_of.(j) <- d + 1;
                    touched := j :: !touched;
                    s.frontier.(d + 1) <- j :: s.frontier.(d + 1)
                  end)
                (Tveg.neighbors_at s.g i t))
            layer
      done
    end
    else begin
      (* Base seeds first, at depth 0 — exactly as the eager BFS seeds
         every base point before processing any propagation — then the
         arrivals at their minimum depth over all generating buckets
         (the eager FIFO pops sources in depth order, so its first
         insertion carries that same minimum). *)
      List.iter
        (fun i ->
          add_base s i t;
          if s.depth_of.(i) < 0 then begin
            s.depth_of.(i) <- 0;
            touched := i :: !touched
          end)
        base_nodes;
      List.iter
        (fun (j, d) ->
          if s.depth_of.(j) < 0 then begin
            s.depth_of.(j) <- d;
            touched := j :: !touched
          end
          else if d < s.depth_of.(j) then s.depth_of.(j) <- d)
        (List.rev !arrival_seeds);
      List.iter
        (fun j ->
          let d = s.depth_of.(j) in
          if (has_point s j t || add_closure s j t) && d < s.n - 1 then
            List.iter
              (fun (k, _dist) ->
                let p' = t +. s.tau in
                if p' < s.span.Interval.hi && p' >= s.min_time.(k) then
                  Queue.add (p', k, d + 1) s.arrivals)
              (Tveg.neighbors_at s.g j t))
        (List.sort Int.compare !touched)
    end;
    List.iter (fun i -> s.depth_of.(i) <- -1) !touched

  let advance s ~horizon =
    if horizon > s.span.Interval.hi then
      invalid_arg "Dts.Stream.advance: horizon beyond the graph span";
    if horizon > s.horizon then begin
      let tc = Tmedb_obs.Timer.start t_advance in
      let next_time () =
        let bt =
          if s.base_cursor < Array.length s.base then
            Some (fst s.base.(s.base_cursor))
          else None
        in
        let at =
          match Queue.peek_opt s.arrivals with
          | Some (t, _, _) -> Some t
          | None -> None
        in
        match (bt, at) with
        | None, None -> None
        | (Some _ as t), None | None, (Some _ as t) -> t
        | Some a, Some b -> Some (Float.min a b)
      in
      let continue = ref true in
      while !continue do
        match next_time () with
        | Some t when t <= horizon -> process_bucket s t
        | _ -> continue := false
      done;
      s.horizon <- horizon;
      if s.truncated && not s.warned then begin
        s.warned <- true;
        Log.warn (fun m ->
            m "streaming DTS propagation truncated at %d points per node" s.cap)
      end;
      Tmedb_obs.Timer.stop t_advance tc
    end

  let dts_at s ~deadline =
    if deadline > s.span.Interval.hi || deadline <= s.span.Interval.lo then
      invalid_arg "Dts.Stream.dts_at: deadline outside the graph span";
    advance s ~horizon:deadline;
    Tmedb_obs.Counter.incr c_views;
    let points =
      Array.init s.n (fun i ->
          if s.min_time.(i) > deadline then [| s.span.Interval.lo |]
          else begin
            (* Strict prefix below the deadline, then the deadline
               itself: the restricted graph's partition always ends at
               its clipped span endpoint, and points at exactly the
               deadline never propagate (ρ_τ is strict), so this is
               precisely the eager restricted-graph point set. *)
            let gr = s.pts.(i) in
            let k = grow_below gr deadline in
            Array.init (k + 1) (fun l ->
                if l < k then gr.data.(l) else deadline)
          end)
    in
    { deadline; points }

  let min_time s i = s.min_time.(i)

  let generated s i =
    let gr = s.pts.(i) in
    Array.sub gr.data 0 gr.len

  let truncated s = s.truncated
  let horizon s = s.horizon
end

let deadline t = t.deadline
let node_points t i = t.points.(i)
let total_points t = Array.fold_left (fun acc pts -> acc + Array.length pts) 0 t.points
let num_nodes t = Array.length t.points

let latest_at_or_before t i time =
  let pts = t.points.(i) in
  let n = Array.length pts in
  if n = 0 || time < pts.(0) then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi > !lo do
      let mid = (!lo + !hi + 1) / 2 in
      if pts.(mid) <= time then lo := mid else hi := mid - 1
    done;
    Some pts.(!lo)
  end

let earliest_at_or_after t i time =
  let pts = t.points.(i) in
  let n = Array.length pts in
  if n = 0 || time > pts.(n - 1) then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi > !lo do
      let mid = (!lo + !hi) / 2 in
      if pts.(mid) >= time then hi := mid else lo := mid + 1
    done;
    Some pts.(!lo)
  end

let index_of_point t i p =
  let pts = t.points.(i) in
  let rec search lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      if Float.equal pts.(mid) p then Some mid
      else if pts.(mid) < p then search (mid + 1) hi
      else search lo (mid - 1)
    end
  in
  search 0 (Array.length pts - 1)

let pp ppf t =
  Format.fprintf ppf "dts{deadline=%g nodes=%d points=%d}" t.deadline (num_nodes t)
    (total_points t)
