(** Discrete time sets (paper Section V, Definition 5.2).

    Each node's discrete time partition combines its adjacent partition
    (link appear/disappear boundaries) with a status partition: the
    times at which the node's informed/uninformed status can change.
    Status changes happen τ after a possible ET-law transmission of a
    neighbour, so the point sets are closed under "t at i propagates
    t+τ to every j adjacent to i at t", up to non-stop-journey depth
    N−1 — giving the paper's O(N³L) bound.  With τ = 0 (the paper's
    trace-driven regime) propagation only copies existing instants onto
    neighbouring nodes, so each adjacent-partition point creates at
    most one point per node: O(N²L) points total, as the paper
    observes. *)

type t

val compute : ?cap_per_node:int -> ?source:int -> Tveg.t -> deadline:float -> t
(** DTS of all nodes over [\[span.lo, deadline\]].  [cap_per_node]
    (default 4000) bounds the per-node point count under τ > 0
    propagation; hitting the cap logs a warning and yields a coarser
    (still valid, possibly suboptimal) schedule space.

    When [source] is given, each node's points are additionally pruned
    to those at or after its earliest journey arrival from the source
    — instants at which the node could not possibly hold the packet
    are useless to any schedule, so the pruning is lossless.  A node
    unreachable by the deadline keeps a single sentinel point.
    @raise Invalid_argument if the deadline exceeds the graph span or
    precedes its start. *)

val deadline : t -> float
val node_points : t -> int -> float array
(** Increasing candidate transmission/status times of a node.  Every
    point p satisfies [span.lo <= p <= deadline]. *)

val total_points : t -> int
val num_nodes : t -> int

val latest_at_or_before : t -> int -> float -> float option
(** Largest DTS point of the node that is <= the given time: the
    ET-law representative (Prop. 5.1) of that instant. *)

val earliest_at_or_after : t -> int -> float -> float option
(** Smallest DTS point of the node that is >= the given time: the
    sound (conservative) rounding for receive instants that fell to
    the propagation cap. *)

val index_of_point : t -> int -> float -> int option
(** Position of an exact point in the node's sequence. *)

module Stream : sig
  (** Streaming τ-closure over the {e unrestricted} graph.

      The eager {!compute} restricts the graph to [\[span.lo, T\]] and
      rebuilds the closure from scratch for every deadline T.  A stream
      generates closure points once, in ascending time order, up to the
      largest horizon requested so far; {!dts_at} then assembles the
      DTS of any deadline [T <= horizon] as the strict prefix below [T]
      plus [T] itself (the restricted graph's clipped partition
      endpoint), falling back to the sentinel for unreachable nodes.
      Because ρ_τ is strict at interval ends, points at exactly [T]
      never propagate in the restricted graph, so the view is the
      eager point set exactly — with two caveats:

      - a node whose earliest arrival from the source is {e exactly}
        [T] keeps its endpoint point here but is sentinel-only in the
        eager build (the arrival's last hop dies with the clipping);
      - when [cap_per_node] bites, the stream keeps the cap-first
        points in {e time} order while the eager build truncates in
        BFS order, so capped point sets may differ (both remain valid,
        possibly coarser, schedule spaces). *)

  type stream

  val create : ?cap_per_node:int -> ?source:int -> Tveg.t -> stream
  (** A stream with no points generated yet.  [cap_per_node] and
      [source] have the same meaning as in {!compute}; the source
      pruning uses earliest arrivals over the full span. *)

  val advance : stream -> horizon:float -> unit
  (** Generate all closure points at or before [horizon] (monotone;
      earlier horizons are no-ops).  @raise Invalid_argument if the
      horizon exceeds the graph span. *)

  val dts_at : stream -> deadline:float -> t
  (** The deadline-[T] DTS view described above, advancing the stream
      to [T] on demand.  @raise Invalid_argument if the deadline is
      outside the graph span. *)

  val min_time : stream -> int -> float
  (** Earliest possible packet arrival of the node ([span.lo] without
      a source). *)

  val generated : stream -> int -> float array
  (** Copy of the node's generated points (ascending), up to the
      current horizon. *)

  val truncated : stream -> bool
  (** Whether any closure insertion has hit [cap_per_node] so far. *)

  val horizon : stream -> float
  (** Largest horizon advanced to (-∞ before the first advance). *)
end

val pp : Format.formatter -> t -> unit
