(* tmedb command-line interface.

   Subcommands:
     gen       generate a synthetic contact trace (Haggle-like or mobility) to CSV
     stats     print statistics of a trace CSV
     run       run one algorithm on a trace and print the schedule + feasibility
     compare   run all six algorithms on a trace and print the comparison table
     simulate  Monte-Carlo replay of an algorithm's schedule in a fading channel

   Examples:
     tmedb_cli gen --kind haggle --nodes 20 --horizon 17000 --seed 42 -o trace.csv
     tmedb_cli run --algorithm EEDCB --deadline 2000 trace.csv
     tmedb_cli compare --deadline 2000 --trials 500 trace.csv *)

open Cmdliner
open Tmedb_prelude
open Tmedb

(* ------------------------------------------------------------------ *)
(* Shared arguments *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let deadline_arg =
  Arg.(
    value
    & opt float 2000.
    & info [ "deadline"; "T" ] ~docv:"SECONDS" ~doc:"Broadcast delay constraint T.")

let source_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "source" ] ~docv:"NODE" ~doc:"Source node (default: a random reachable node).")

let trace_file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.CSV" ~doc:"Contact trace CSV.")

let level_arg =
  Arg.(
    value
    & opt int 2
    & info [ "level" ] ~docv:"L" ~doc:"Recursive-greedy level for (FR-)EEDCB (1 or 2).")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "jobs"; "j" ] ~docv:"K"
        ~doc:
          "Worker domains for the Monte-Carlo fan-out (default: $(b,TMEDB_JOBS) or the \
           machine's core count).  Results are independent of K: each trial gets its own \
           split of the RNG stream.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Enable the telemetry registry and write a counters/timers snapshot \
           (tmedb.metrics/1 JSON) to $(docv) on exit.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable the telemetry registry and write the span trace to $(docv) as Chrome \
           trace_event JSON (open in chrome://tracing or Perfetto).")

(* Telemetry is off unless one of the flags asks for an output file;
   results are bit-identical either way. *)
let with_telemetry metrics trace f =
  if metrics <> None || trace <> None then Tmedb_obs.set_enabled true;
  let finish () =
    Option.iter
      (fun path ->
        Obs_json.write_metrics ~path;
        Printf.eprintf "metrics written to %s\n%!" path)
      metrics;
    Option.iter
      (fun path ->
        Obs_json.write_trace ~path;
        Printf.eprintf "trace written to %s\n%!" path)
      trace
  in
  Fun.protect ~finally:finish f

(* 0 means "not given": fall back to the TMEDB_JOBS/core-count heuristic. *)
let make_pool jobs =
  if jobs < 0 then begin
    Printf.eprintf "tmedb_cli: --jobs must be >= 0 (0 = auto)\n";
    exit 2
  end;
  let k = if jobs >= 1 then jobs else Pool.default_num_domains () in
  if k <= 1 then None else Some (Pool.create ~num_domains:k ())

let with_jobs jobs f =
  let pool = make_pool jobs in
  Fun.protect ~finally:(fun () -> Option.iter Pool.shutdown pool) (fun () -> f pool)

let load_trace path =
  match Tmedb_trace.Trace.load ~path with
  | Ok t -> t
  | Error e ->
      Printf.eprintf "error loading %s: %s\n" path e;
      exit 1

let pick_source trace deadline seed = function
  | Some s -> s
  | None -> (
      let config = { Experiment.default_config with Experiment.seed; sources = 1 } in
      match Experiment.choose_sources config ~trace ~deadline with
      | s :: _ -> s
      | [] -> 0)

(* ------------------------------------------------------------------ *)
(* gen *)

let gen_cmd =
  let kind_arg =
    Arg.(
      value
      & opt (enum [ ("haggle", `Haggle); ("mobility", `Mobility) ]) `Haggle
      & info [ "kind" ] ~docv:"KIND" ~doc:"Generator: $(b,haggle) or $(b,mobility).")
  in
  let nodes_arg =
    Arg.(value & opt int 20 & info [ "nodes"; "n" ] ~docv:"N" ~doc:"Number of nodes.")
  in
  let horizon_arg =
    Arg.(value & opt float 17000. & info [ "horizon" ] ~docv:"SECONDS" ~doc:"Trace length.")
  in
  let out_arg =
    Arg.(
      required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output CSV.")
  in
  let run kind nodes horizon seed out =
    let rng = Rng.create seed in
    let trace =
      match kind with
      | `Haggle ->
          Tmedb_trace.Synth.generate rng
            { (Tmedb_trace.Synth.with_n Tmedb_trace.Synth.default_params nodes) with
              Tmedb_trace.Synth.horizon }
      | `Mobility ->
          Tmedb_trace.Mobility.generate rng
            { Tmedb_trace.Mobility.default_params with Tmedb_trace.Mobility.n = nodes; horizon }
    in
    Tmedb_trace.Trace.save trace ~path:out;
    Format.printf "wrote %a to %s@." Tmedb_trace.Trace.pp trace out
  in
  let term = Term.(const run $ kind_arg $ nodes_arg $ horizon_arg $ seed_arg $ out_arg) in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a synthetic contact trace.") term

(* ------------------------------------------------------------------ *)
(* stats *)

let stats_cmd =
  let run path =
    let trace = load_trace path in
    Format.printf "%a@.%a@." Tmedb_trace.Trace.pp trace Tmedb_trace.Trace.pp_stats
      (Tmedb_trace.Trace.stats trace)
  in
  let term = Term.(const run $ trace_file_arg) in
  Cmd.v (Cmd.info "stats" ~doc:"Print contact-trace statistics.") term

(* ------------------------------------------------------------------ *)
(* run *)

let algorithm_arg =
  let parse s =
    match Experiment.algorithm_of_string s with Ok a -> Ok a | Error e -> Error (`Msg e)
  in
  let print ppf a = Format.pp_print_string ppf (Experiment.algorithm_name a) in
  Arg.(
    value
    & opt (conv (parse, print)) Experiment.EEDCB
    & info [ "algorithm"; "a" ] ~docv:"ALG"
        ~doc:"One of EEDCB, GREED, RAND, FR-EEDCB, FR-GREED, FR-RAND.")

let run_cmd =
  let verbose_arg =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the full schedule.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "save-schedule" ] ~docv:"FILE" ~doc:"Write the schedule as CSV.")
  in
  let run algorithm deadline source seed level verbose save metrics trace_file path =
    with_telemetry metrics trace_file @@ fun () ->
    let trace = load_trace path in
    let source = pick_source trace deadline seed source in
    let config = { Experiment.default_config with Experiment.seed; steiner_level = level } in
    let result =
      Experiment.run_alg config ~trace ~source ~deadline ~rng:(Rng.create seed) algorithm
    in
    Format.printf "algorithm: %s  source: %d  deadline: %g s@."
      (Experiment.algorithm_name algorithm) source deadline;
    Format.printf "transmissions: %d  normalized energy: %.1f m^alpha  feasible: %b@."
      (Schedule.num_transmissions result.Experiment.schedule)
      result.Experiment.energy result.Experiment.feasible;
    let channel = if Experiment.is_fading algorithm then `Rayleigh else `Static in
    let problem = Experiment.make_problem config ~trace ~channel ~source ~deadline in
    let lb =
      Tmedb_channel.Phy.normalized_energy problem.Problem.phy (Metrics.energy_lower_bound problem)
    in
    if Float.is_finite lb && lb > 0. then
      Format.printf "certified lower bound: %.1f m^alpha (gap %.2fx)@." lb
        (result.Experiment.energy /. lb);
    if result.Experiment.unreached <> [] then
      Format.printf "unreached nodes: %a@."
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_int)
        result.Experiment.unreached;
    (match save with
    | Some file ->
        Schedule.save result.Experiment.schedule ~path:file;
        Format.printf "schedule written to %s@." file
    | None -> ());
    if verbose then Format.printf "%a@." Schedule.pp result.Experiment.schedule
  in
  let term =
    Term.(
      const run $ algorithm_arg $ deadline_arg $ source_arg $ seed_arg $ level_arg $ verbose_arg
      $ save_arg $ metrics_arg $ trace_arg $ trace_file_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one broadcast algorithm on a trace.") term

(* ------------------------------------------------------------------ *)
(* compare *)

let trials_arg =
  Arg.(value & opt int 500 & info [ "trials" ] ~docv:"K" ~doc:"Monte-Carlo trials.")

let compare_cmd =
  let run deadline source seed level trials jobs metrics trace_file path =
    with_telemetry metrics trace_file @@ fun () ->
    let trace = load_trace path in
    let source = pick_source trace deadline seed source in
    let config = { Experiment.default_config with Experiment.seed; steiner_level = level } in
    Format.printf "source: %d  deadline: %g s  trials: %d@.@." source deadline trials;
    Format.printf "%-10s %14s %6s %10s %9s@." "algorithm" "energy" "txs" "delivery" "feasible";
    with_jobs jobs (fun pool ->
        List.iter
          (fun algorithm ->
            let rng = Rng.create seed in
            let result = Experiment.run_alg config ~trace ~source ~deadline ~rng algorithm in
            let eval =
              Experiment.make_problem config ~trace ~channel:`Rayleigh ~source ~deadline
            in
            let sim =
              Simulate.run ~trials ?pool ~rng ~eval_channel:`Rayleigh eval
                result.Experiment.schedule
            in
            Format.printf "%-10s %14.1f %6d %9.1f%% %9b@."
              (Experiment.algorithm_name algorithm)
              result.Experiment.energy
              (Schedule.num_transmissions result.Experiment.schedule)
              (100. *. sim.Simulate.delivery_ratio)
              result.Experiment.feasible)
          Experiment.all_algorithms)
  in
  let term =
    Term.(
      const run $ deadline_arg $ source_arg $ seed_arg $ level_arg $ trials_arg $ jobs_arg
      $ metrics_arg $ trace_arg $ trace_file_arg)
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run all six algorithms and compare energy/delivery (Fig. 6 style).")
    term

(* ------------------------------------------------------------------ *)
(* simulate *)

let simulate_cmd =
  let schedule_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:"Replay a saved schedule CSV instead of computing one.")
  in
  let run algorithm deadline source seed trials jobs schedule_file metrics trace_file path =
    with_telemetry metrics trace_file @@ fun () ->
    let trace = load_trace path in
    let source = pick_source trace deadline seed source in
    let config = { Experiment.default_config with Experiment.seed } in
    let schedule =
      match schedule_file with
      | Some file -> (
          match Schedule.load ~path:file with
          | Ok s -> s
          | Error e ->
              Printf.eprintf "error loading schedule %s: %s\n" file e;
              exit 1)
      | None ->
          (Experiment.run_alg config ~trace ~source ~deadline ~rng:(Rng.create seed) algorithm)
            .Experiment.schedule
    in
    let eval = Experiment.make_problem config ~trace ~channel:`Rayleigh ~source ~deadline in
    let sim =
      with_jobs jobs (fun pool ->
          Simulate.run ~trials ?pool ~rng:(Rng.create (seed + 1)) ~eval_channel:`Rayleigh eval
            schedule)
    in
    Format.printf
      "%s in Rayleigh environment (%d trials):@.  delivery %.2f%% (sd %.2f)  full delivery \
       %.1f%%  mean spent energy %.3e W@."
      (Experiment.algorithm_name algorithm)
      trials
      (100. *. sim.Simulate.delivery_ratio)
      (100. *. sim.Simulate.delivery_stddev)
      (100. *. sim.Simulate.full_delivery_rate)
      sim.Simulate.mean_energy_spent;
    match sim.Simulate.mean_completion_time with
    | Some t -> Format.printf "  mean completion time %.1f s@." t
    | None -> Format.printf "  broadcast never fully completed in any trial@."
  in
  let term =
    Term.(
      const run $ algorithm_arg $ deadline_arg $ source_arg $ seed_arg $ trials_arg $ jobs_arg
      $ schedule_arg $ metrics_arg $ trace_arg $ trace_file_arg)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Monte-Carlo replay of a schedule in a fading channel.") term

let () =
  let doc = "Energy-efficient delay-constrained broadcast in time-varying energy-demand graphs" in
  let info = Cmd.info "tmedb_cli" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ gen_cmd; stats_cmd; run_cmd; compare_cmd; simulate_cmd ]))
