(* tmedb command-line interface.

   Subcommands:
     gen       generate a synthetic contact trace (Haggle-like or mobility) to CSV
     stats     print statistics of a trace CSV
     run        run one algorithm on a trace and print the schedule + feasibility
     compare    run the paper's algorithms on a trace and print the comparison table
     simulate   Monte-Carlo replay of an algorithm's schedule in a fading channel
     algorithms list every registered planner (name, channel, paper section)

   Algorithm names, figure lists and this CLI's flags all derive from
   Tmedb.Registry: registering a planner there makes it selectable
   here with no CLI change.

   Examples:
     tmedb_cli gen --kind haggle --nodes 20 --horizon 17000 --seed 42 -o trace.csv
     tmedb_cli run --algorithm EEDCB --deadline 2000 trace.csv
     tmedb_cli compare --deadline 2000 --trials 500 trace.csv *)

open Cmdliner
open Tmedb_prelude
open Tmedb

(* ------------------------------------------------------------------ *)
(* Shared arguments *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let deadline_arg =
  Arg.(
    value
    & opt float 2000.
    & info [ "deadline"; "T" ] ~docv:"SECONDS" ~doc:"Broadcast delay constraint T.")

let source_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "source" ] ~docv:"NODE" ~doc:"Source node (default: a random reachable node).")

let trace_file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.CSV" ~doc:"Contact trace CSV.")

let level_arg =
  Arg.(
    value
    & opt int 2
    & info [ "level" ] ~docv:"L" ~doc:"Recursive-greedy level for (FR-)EEDCB (1 or 2).")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "jobs"; "j" ] ~docv:"K"
        ~doc:
          "Worker domains for the Monte-Carlo fan-out (default: $(b,TMEDB_JOBS) or the \
           machine's core count).  Results are independent of K: each trial gets its own \
           split of the RNG stream.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Enable the telemetry registry and write a counters/timers snapshot \
           (tmedb.metrics/1 JSON) to $(docv) on exit.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable the telemetry registry and write the span trace to $(docv) as Chrome \
           trace_event JSON (open in chrome://tracing or Perfetto).")

let ledger_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:
          "Enable telemetry and provenance recording and write a tmedb.run/1 run ledger \
           (config, input digest, metrics, schedule, provenance log) to $(docv).  The file \
           is byte-deterministic: identical runs produce identical ledgers at any \
           $(b,--jobs).")

let ledger_timestamp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger-timestamp" ] ~docv:"TS"
        ~doc:
          "Timestamp string embedded in the ledger and profile artifacts ($(b,now) = current \
           UTC time).  Default: none, which emits $(b,null) and keeps both \
           byte-deterministic.")

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"DIR"
        ~doc:
          "Enable telemetry and write profile artifacts to $(docv) on exit: profile.json \
           (tmedb.profile/1, byte-deterministic at any $(b,--jobs)), profile_detail.json, \
           flamegraph.pl-compatible profile.folded / profile_wall.folded, and a \
           self-contained flamegraph.html with the per-worker timeline.  Crash dumps land in \
           $(docv)/crash.json.")

let watchdog_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "watchdog" ] ~docv:"SECONDS"
        ~doc:
          "Arm a deadline watchdog: if the command runs longer than $(docv), dump a \
           tmedb.crash/1 flight-recorder black box (the run itself continues).  0 disables.")

(* Telemetry is off unless one of the flags asks for an output file;
   results are bit-identical either way.  The flight recorder is
   always armed here (bounded rings, one-flag-check cost), so every
   run leaves a black box on uncaught exception, SIGUSR1 or a
   watchdog trip. *)
let with_telemetry ?timestamp ?(watchdog = 0.) metrics trace profile f =
  if metrics <> None || trace <> None || profile <> None then Tmedb_obs.set_enabled true;
  let crash_path =
    match profile with
    | Some dir ->
        Profile.mkdir_p dir;
        Filename.concat dir "crash.json"
    | None -> "tmedb.crash.json"
  in
  let dump = Crash_guard.install ?timestamp ~path:crash_path () in
  let finish () =
    Option.iter
      (fun path ->
        Obs_json.write_metrics ~path;
        Printf.eprintf "metrics written to %s\n%!" path)
      metrics;
    Option.iter
      (fun path ->
        Obs_json.write_trace ~path;
        Printf.eprintf "trace written to %s\n%!" path)
      trace;
    Option.iter
      (fun dir ->
        ignore (Profile.write_artifacts ?timestamp ~dir ());
        Printf.eprintf "profile artifacts written to %s\n%!" dir)
      profile
  in
  Fun.protect ~finally:finish (fun () ->
      Crash_guard.guard dump (fun () ->
          if watchdog > 0. then begin
            let r, tripped =
              Tmedb_report.Watchdog.with_deadline ~seconds:watchdog
                ~on_trip:(fun () -> dump ~reason:"watchdog deadline")
                f
            in
            if tripped then
              Printf.eprintf "watchdog tripped after %g s; black box at %s\n%!" watchdog
                crash_path;
            r
          end
          else f ()))

(* 0 means "not given": fall back to the TMEDB_JOBS/core-count heuristic. *)
let make_pool jobs =
  if jobs < 0 then begin
    Printf.eprintf "tmedb_cli: --jobs must be >= 0 (0 = auto)\n";
    exit 2
  end;
  let k = if jobs >= 1 then jobs else Pool.default_num_domains () in
  if k <= 1 then None else Some (Pool.create ~num_domains:k ())

let with_jobs jobs f =
  let pool = make_pool jobs in
  Fun.protect ~finally:(fun () -> Option.iter Pool.shutdown pool) (fun () -> f pool)

let load_trace path =
  match Tmedb_trace.Trace.load ~path with
  | Ok t -> t
  | Error e ->
      Printf.eprintf "error loading %s: %s\n" path e;
      exit 1

let pick_source trace deadline seed = function
  | Some s -> s
  | None -> (
      let config = { Experiment.default_config with Experiment.seed; sources = 1 } in
      match Experiment.choose_sources config ~trace ~deadline with
      | s :: _ -> s
      | [] -> 0)

(* ------------------------------------------------------------------ *)
(* gen *)

let gen_cmd =
  let kind_arg =
    Arg.(
      value
      & opt (enum [ ("haggle", `Haggle); ("mobility", `Mobility) ]) `Haggle
      & info [ "kind" ] ~docv:"KIND" ~doc:"Generator: $(b,haggle) or $(b,mobility).")
  in
  let nodes_arg =
    Arg.(value & opt int 20 & info [ "nodes"; "n" ] ~docv:"N" ~doc:"Number of nodes.")
  in
  let horizon_arg =
    Arg.(value & opt float 17000. & info [ "horizon" ] ~docv:"SECONDS" ~doc:"Trace length.")
  in
  let out_arg =
    Arg.(
      required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output CSV.")
  in
  let run kind nodes horizon seed out =
    let rng = Rng.create seed in
    let trace =
      match kind with
      | `Haggle ->
          Tmedb_trace.Synth.generate rng
            { (Tmedb_trace.Synth.with_n Tmedb_trace.Synth.default_params nodes) with
              Tmedb_trace.Synth.horizon }
      | `Mobility ->
          Tmedb_trace.Mobility.generate rng
            { Tmedb_trace.Mobility.default_params with Tmedb_trace.Mobility.n = nodes; horizon }
    in
    Tmedb_trace.Trace.save trace ~path:out;
    Format.printf "wrote %a to %s@." Tmedb_trace.Trace.pp trace out
  in
  let term = Term.(const run $ kind_arg $ nodes_arg $ horizon_arg $ seed_arg $ out_arg) in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a synthetic contact trace.") term

(* ------------------------------------------------------------------ *)
(* stats *)

let stats_cmd =
  let run path =
    let trace = load_trace path in
    Format.printf "%a@.%a@." Tmedb_trace.Trace.pp trace Tmedb_trace.Trace.pp_stats
      (Tmedb_trace.Trace.stats trace)
  in
  let term = Term.(const run $ trace_file_arg) in
  Cmd.v (Cmd.info "stats" ~doc:"Print contact-trace statistics.") term

(* ------------------------------------------------------------------ *)
(* run *)

let algorithm_arg =
  let parse s = match Registry.find s with Ok a -> Ok a | Error e -> Error (`Msg e) in
  let print ppf a = Format.pp_print_string ppf (Planner.name a) in
  Arg.(
    value
    & opt (conv (parse, print)) (List.hd Registry.all)
    & info [ "algorithm"; "a" ] ~docv:"ALG"
        ~doc:(Printf.sprintf "One of %s." (String.concat ", " Registry.names)))

let run_cmd =
  let verbose_arg =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the full schedule.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "save-schedule" ] ~docv:"FILE" ~doc:"Write the schedule as CSV.")
  in
  let run_trials_arg =
    Arg.(
      value
      & opt int 0
      & info [ "trials" ] ~docv:"K"
          ~doc:
            "Also Monte-Carlo replay the schedule in a Rayleigh environment with $(docv) \
             trials (0 = skip); the delivery ratio lands in the ledger summary.")
  in
  let run algorithm deadline source seed level verbose save metrics trace_file ledger ledger_ts
      profile watchdog trials jobs path =
    if ledger <> None then begin
      Tmedb_obs.set_enabled true;
      Tmedb_report.Provenance.set_enabled true
    end;
    let timestamp =
      match ledger_ts with
      | Some "now" -> Some (Tmedb_report.Clock.now_iso8601 ())
      | Some s -> Some s
      | None -> None
    in
    with_telemetry ?timestamp ~watchdog metrics trace_file profile @@ fun () ->
    let trace = load_trace path in
    let source = pick_source trace deadline seed source in
    let config = { Experiment.default_config with Experiment.seed; steiner_level = level } in
    let result =
      Experiment.run_alg config ~trace ~source ~deadline ~rng:(Rng.create seed) algorithm
    in
    Format.printf "algorithm: %s  source: %d  deadline: %g s@."
      (Experiment.algorithm_name algorithm) source deadline;
    Format.printf "transmissions: %d  normalized energy: %.1f m^alpha  feasible: %b@."
      (Schedule.num_transmissions result.Experiment.schedule)
      result.Experiment.energy result.Experiment.feasible;
    let channel = Planner.design_channel algorithm in
    let problem = Experiment.make_problem config ~trace ~channel ~source ~deadline in
    let lb =
      Tmedb_channel.Phy.normalized_energy problem.Problem.phy (Metrics.energy_lower_bound problem)
    in
    if Float.is_finite lb && lb > 0. then
      Format.printf "certified lower bound: %.1f m^alpha (gap %.2fx)@." lb
        (result.Experiment.energy /. lb);
    if result.Experiment.unreached <> [] then
      Format.printf "unreached nodes: %a@."
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_int)
        result.Experiment.unreached;
    let sim =
      if trials <= 0 then None
      else begin
        let eval = Experiment.make_problem config ~trace ~channel:`Rayleigh ~source ~deadline in
        let s =
          with_jobs jobs (fun pool ->
              Simulate.run ~trials ?pool ~rng:(Rng.create (seed + 1)) ~eval_channel:`Rayleigh
                eval result.Experiment.schedule)
        in
        Format.printf "delivery (Rayleigh, %d trials): %.2f%%@." trials
          (100. *. s.Simulate.delivery_ratio);
        Some s
      end
    in
    (match save with
    | Some file ->
        Schedule.save result.Experiment.schedule ~path:file;
        Format.printf "schedule written to %s@." file
    | None -> ());
    (match ledger with
    | Some file ->
        let input_digest =
          Tmedb_report.Ledger.digest_string
            (In_channel.with_open_bin path In_channel.input_all)
        in
        let num f = Json.Num f in
        let config_fields =
          [
            ("algorithm", Json.Str (Experiment.algorithm_name algorithm));
            ("deadline", num deadline);
            ("source", num (float_of_int source));
            ("seed", num (float_of_int seed));
            ("steiner_level", num (float_of_int level));
            ("trials", num (float_of_int trials));
            ("trace", Json.Str (Filename.basename path));
          ]
        in
        let summary =
          [
            ("energy", num result.Experiment.energy);
            ( "transmissions",
              num (float_of_int (Schedule.num_transmissions result.Experiment.schedule)) );
            ("feasible", Json.Bool result.Experiment.feasible);
            ("unreached", num (float_of_int (List.length result.Experiment.unreached)));
          ]
          @
          match sim with
          | Some s ->
              [
                ("delivery_ratio", num s.Simulate.delivery_ratio);
                ("full_delivery_rate", num s.Simulate.full_delivery_rate);
                ("mean_energy_spent", num s.Simulate.mean_energy_spent);
              ]
          | None -> []
        in
        let schedule =
          List.map
            (fun (tx : Schedule.transmission) ->
              { Tmedb_report.Ledger.relay = tx.Schedule.relay; time = tx.Schedule.time;
                cost = tx.Schedule.cost })
            (Schedule.transmissions result.Experiment.schedule)
        in
        let ledger_doc =
          Tmedb_report.Ledger.make ?timestamp ~config:config_fields ~input_digest ~summary
            ~snapshot:(Tmedb_obs.snapshot ())
            ~provenance:(Tmedb_report.Provenance.events ())
            ~schedule ()
        in
        Tmedb_report.Ledger.write ledger_doc ~path:file;
        Format.printf "ledger written to %s@." file
    | None -> ());
    if verbose then Format.printf "%a@." Schedule.pp result.Experiment.schedule
  in
  let term =
    Term.(
      const run $ algorithm_arg $ deadline_arg $ source_arg $ seed_arg $ level_arg $ verbose_arg
      $ save_arg $ metrics_arg $ trace_arg $ ledger_arg $ ledger_timestamp_arg $ profile_arg
      $ watchdog_arg $ run_trials_arg $ jobs_arg $ trace_file_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one broadcast algorithm on a trace.") term

(* ------------------------------------------------------------------ *)
(* compare *)

let trials_arg =
  Arg.(value & opt int 500 & info [ "trials" ] ~docv:"K" ~doc:"Monte-Carlo trials.")

let compare_cmd =
  let all_flag =
    Arg.(
      value
      & flag
      & info [ "all" ]
          ~doc:
            "Also compare beyond-paper planners from the registry (e.g. the static BIP \
             baseline), not just the paper's six.")
  in
  let run deadline source seed level trials jobs all metrics trace_file profile watchdog path =
    with_telemetry ~watchdog metrics trace_file profile @@ fun () ->
    let trace = load_trace path in
    let source = pick_source trace deadline seed source in
    let config = { Experiment.default_config with Experiment.seed; steiner_level = level } in
    let algorithms = if all then Registry.all else Registry.paper in
    Format.printf "source: %d  deadline: %g s  trials: %d@.@." source deadline trials;
    Format.printf "%-10s %14s %6s %10s %9s@." "algorithm" "energy" "txs" "delivery" "feasible";
    with_jobs jobs (fun pool ->
        List.iter
          (fun algorithm ->
            let rng = Rng.create seed in
            let result = Experiment.run_alg config ~trace ~source ~deadline ~rng algorithm in
            let eval =
              Experiment.make_problem config ~trace ~channel:`Rayleigh ~source ~deadline
            in
            let sim =
              Simulate.run ~trials ?pool ~rng ~eval_channel:`Rayleigh eval
                result.Experiment.schedule
            in
            Format.printf "%-10s %14.1f %6d %9.1f%% %9b@."
              (Experiment.algorithm_name algorithm)
              result.Experiment.energy
              (Schedule.num_transmissions result.Experiment.schedule)
              (100. *. sim.Simulate.delivery_ratio)
              result.Experiment.feasible)
          algorithms)
  in
  let term =
    Term.(
      const run $ deadline_arg $ source_arg $ seed_arg $ level_arg $ trials_arg $ jobs_arg
      $ all_flag $ metrics_arg $ trace_arg $ profile_arg $ watchdog_arg $ trace_file_arg)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Run the paper's six algorithms — every registered planner with $(b,--all) — and \
          compare energy/delivery (Fig. 6 style).")
    term

(* ------------------------------------------------------------------ *)
(* algorithms *)

let algorithms_cmd =
  let names_flag =
    Arg.(
      value
      & flag
      & info [ "names" ] ~doc:"Print only the canonical planner names, one per line.")
  in
  let run names_only =
    if names_only then List.iter print_endline Registry.names
    else begin
      Format.printf "%-10s %-8s %-24s %s@." "name" "channel" "paper section" "summary";
      List.iter
        (fun p ->
          let i = p.Planner.info in
          Format.printf "%-10s %-8s %-24s %s@." i.Planner.name
            (match i.Planner.channel with `Static -> "static" | `Fading -> "fading")
            i.Planner.section i.Planner.summary)
        Registry.all
    end
  in
  let term = Term.(const run $ names_flag) in
  Cmd.v
    (Cmd.info "algorithms"
       ~doc:"List every registered planner: name, design channel, paper section, summary.")
    term

(* ------------------------------------------------------------------ *)
(* simulate *)

let simulate_cmd =
  let schedule_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:"Replay a saved schedule CSV instead of computing one.")
  in
  let run algorithm deadline source seed trials jobs schedule_file metrics trace_file profile
      watchdog path =
    with_telemetry ~watchdog metrics trace_file profile @@ fun () ->
    let trace = load_trace path in
    let source = pick_source trace deadline seed source in
    let config = { Experiment.default_config with Experiment.seed } in
    let schedule =
      match schedule_file with
      | Some file -> (
          match Schedule.load ~path:file with
          | Ok s -> s
          | Error e ->
              Printf.eprintf "error loading schedule %s: %s\n" file e;
              exit 1)
      | None ->
          (Experiment.run_alg config ~trace ~source ~deadline ~rng:(Rng.create seed) algorithm)
            .Experiment.schedule
    in
    let eval = Experiment.make_problem config ~trace ~channel:`Rayleigh ~source ~deadline in
    let sim =
      with_jobs jobs (fun pool ->
          Simulate.run ~trials ?pool ~rng:(Rng.create (seed + 1)) ~eval_channel:`Rayleigh eval
            schedule)
    in
    Format.printf
      "%s in Rayleigh environment (%d trials):@.  delivery %.2f%% (sd %.2f)  full delivery \
       %.1f%%  mean spent energy %.3e W@."
      (Experiment.algorithm_name algorithm)
      trials
      (100. *. sim.Simulate.delivery_ratio)
      (100. *. sim.Simulate.delivery_stddev)
      (100. *. sim.Simulate.full_delivery_rate)
      sim.Simulate.mean_energy_spent;
    match sim.Simulate.mean_completion_time with
    | Some t -> Format.printf "  mean completion time %.1f s@." t
    | None -> Format.printf "  broadcast never fully completed in any trial@."
  in
  let term =
    Term.(
      const run $ algorithm_arg $ deadline_arg $ source_arg $ seed_arg $ trials_arg $ jobs_arg
      $ schedule_arg $ metrics_arg $ trace_arg $ profile_arg $ watchdog_arg $ trace_file_arg)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Monte-Carlo replay of a schedule in a fading channel.") term

(* ------------------------------------------------------------------ *)
(* pareto *)

let pareto_cmd =
  let deadlines_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "deadlines" ] ~docv:"LO:HI:STEP"
          ~doc:
            "Deadline grid from $(b,LO) to $(b,HI) in steps of $(b,STEP) seconds ($(b,HI) \
             included when it lies on the grid).  Exactly one of $(b,--deadlines) and \
             $(b,--deadline-list) is required.")
  in
  let deadline_list_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "deadline-list" ] ~docv:"T1,T2,..."
          ~doc:"Explicit comma-separated deadline grid, strictly ascending.")
  in
  let pareto_ledger_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            "Enable telemetry and write a tmedb.pareto/1 sweep ledger (config, input digest, \
             per-point energy/coverage with dominance marking, Pareto front, metrics) to \
             $(docv).  The file is byte-deterministic: identical sweeps produce identical \
             ledgers at any $(b,--jobs).")
  in
  let run algorithm deadlines deadline_list source seed level jobs metrics trace_file ledger
      ledger_ts profile watchdog path =
    let grid =
      match (deadlines, deadline_list) with
      | Some r, None -> Pareto.Grid.parse_range r
      | None, Some l -> Pareto.Grid.parse_list l
      | Some _, Some _ -> Error "pass exactly one of --deadlines and --deadline-list"
      | None, None ->
          Error "one of --deadlines LO:HI:STEP or --deadline-list T1,T2,... is required"
    in
    let grid =
      match grid with
      | Ok g -> g
      | Error e ->
          Printf.eprintf "tmedb_cli pareto: %s\n" e;
          exit 2
    in
    if ledger <> None then Tmedb_obs.set_enabled true;
    let timestamp =
      match ledger_ts with
      | Some "now" -> Some (Tmedb_report.Clock.now_iso8601 ())
      | Some s -> Some s
      | None -> None
    in
    with_telemetry ?timestamp ~watchdog metrics trace_file profile @@ fun () ->
    let trace = load_trace path in
    let hi = List.fold_left Float.max Float.neg_infinity grid in
    let span = Tmedb_trace.Trace.span trace in
    if hi > span.Interval.hi then begin
      Printf.eprintf "tmedb_cli pareto: grid deadline %g is beyond the trace span end %g\n" hi
        span.Interval.hi;
      exit 2
    end;
    let source = pick_source trace hi seed source in
    let config = { Experiment.default_config with Experiment.seed; steiner_level = level } in
    let channel = Planner.design_channel algorithm in
    let problem = Experiment.make_problem config ~trace ~channel ~source ~deadline:hi in
    let result =
      with_jobs jobs (fun pool ->
          Pareto.sweep ?pool ~steiner_level:level ~cap_per_node:config.Experiment.dts_cap ~seed
            ~planner:algorithm ~deadlines:grid problem)
    in
    Format.printf "algorithm: %s  source: %d  grid: %d deadlines@."
      (Experiment.algorithm_name algorithm) source (List.length grid);
    Format.printf "%10s %14s %5s %10s %9s  %s@." "deadline" "energy" "txs" "unreached"
      "feasible" "status";
    List.iter
      (fun (p : Pareto.point) ->
        Format.printf "%10g %14.1f %5d %10d %9b  %s@." p.Pareto.deadline p.Pareto.energy
          p.Pareto.transmissions p.Pareto.unreached p.Pareto.feasible
          (if p.Pareto.dominated then "dominated" else "front"))
      result.Pareto.points;
    Format.printf "front:%a@."
      (fun ppf -> List.iter (fun d -> Format.fprintf ppf " %g" d))
      result.Pareto.front;
    match ledger with
    | Some file ->
        let input_digest =
          Tmedb_report.Ledger.digest_string
            (In_channel.with_open_bin path In_channel.input_all)
        in
        let num f = Json.Num f in
        let grid_spec =
          match (deadlines, deadline_list) with
          | Some s, _ | _, Some s -> s
          | None, None -> ""
        in
        let config_fields =
          [
            ("algorithm", Json.Str (Experiment.algorithm_name algorithm));
            ("grid", Json.Str grid_spec);
            ("grid_points", num (float_of_int (List.length grid)));
            ("source", num (float_of_int source));
            ("seed", num (float_of_int seed));
            ("steiner_level", num (float_of_int level));
            ("trace", Json.Str (Filename.basename path));
          ]
        in
        let points =
          List.map
            (fun (p : Pareto.point) ->
              {
                Tmedb_report.Ledger.Pareto.deadline = p.Pareto.deadline;
                energy = p.Pareto.energy;
                transmissions = p.Pareto.transmissions;
                feasible = p.Pareto.feasible;
                unreached = p.Pareto.unreached;
                dominated = p.Pareto.dominated;
              })
            result.Pareto.points
        in
        let doc =
          Tmedb_report.Ledger.Pareto.make ?timestamp ~config:config_fields ~input_digest
            ~points ~front:result.Pareto.front
            ~snapshot:(Tmedb_obs.snapshot ())
            ()
        in
        Tmedb_report.Ledger.Pareto.write doc ~path:file;
        Format.printf "ledger written to %s@." file
    | None -> ()
  in
  let term =
    Term.(
      const run $ algorithm_arg $ deadlines_arg $ deadline_list_arg $ source_arg $ seed_arg
      $ level_arg $ jobs_arg $ metrics_arg $ trace_arg $ pareto_ledger_arg
      $ ledger_timestamp_arg $ profile_arg $ watchdog_arg $ trace_file_arg)
  in
  Cmd.v
    (Cmd.info "pareto"
       ~doc:
         "Sweep a deadline grid with one algorithm, sharing the deadline-independent solve \
          state across points, and report the time-energy Pareto front.")
    term

(* ------------------------------------------------------------------ *)
(* report *)

let load_ledger path =
  match Tmedb_report.Ledger.load ~path with
  | Ok l -> l
  | Error e ->
      Printf.eprintf "error loading ledger %s: %s\n" path e;
      exit 1

let load_json path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e ->
      Printf.eprintf "error reading %s: %s\n" path e;
      exit 1
  | text -> (
      match Json.parse text with
      | Ok doc -> doc
      | Error e ->
          Printf.eprintf "error parsing %s: %s\n" path e;
          exit 1)

let ledger_file_arg =
  Arg.(
    required & pos 0 (some file) None & info [] ~docv:"LEDGER.JSON" ~doc:"A tmedb.run/1 ledger.")

(* ------------------------------------------------------------------ *)
(* profile *)

let fmt_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2fs" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else Printf.sprintf "%.0fus" (ns /. 1e3)

let profile_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Profile artifact directory written by $(b,--profile).")
  in
  let top_arg =
    Arg.(value & opt int 15 & info [ "top" ] ~docv:"N" ~doc:"Rows in the self-time table.")
  in
  let run top dir =
    let detail = load_json (Filename.concat dir "profile_detail.json") in
    let num key doc = match Json.member key doc with Some (Json.Num x) -> x | _ -> 0. in
    (match Json.member "timeline" detail with
    | Some tl ->
        Format.printf
          "makespan %.3f s  busy %.3f s  utilization %.0f%%  critical path ~%.3f s@.@."
          (num "end_s" tl -. num "begin_s" tl)
          (num "busy_s" tl)
          (100. *. num "utilization" tl)
          (num "critical_path_s" tl)
    | None -> ());
    let nodes = match Json.member "nodes" detail with Some (Json.Obj kvs) -> kvs | _ -> [] in
    let rows =
      List.map
        (fun (path, v) ->
          (path, num "count" v, num "wall_self_ns" v, num "wall_ns" v, num "minor_self_words" v))
        nodes
      |> List.sort (fun (_, _, a, _, _) (_, _, b, _, _) -> Float.compare b a)
    in
    Format.printf "%-56s %8s %10s %10s %12s@." "node (self-time order)" "count" "self" "total"
      "minor self";
    List.iteri
      (fun i (path, count, self, total, minor) ->
        if i < top then
          Format.printf "%-56s %8.0f %10s %10s %12.3e@." path count (fmt_ns self) (fmt_ns total)
            minor)
      rows
  in
  let term = Term.(const run $ top_arg $ dir_arg) in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Summarize a $(b,--profile) artifact directory: timeline/utilization header and the \
          hottest nodes by self wall time (from profile_detail.json).")
    term

let scalar = function
  | Json.Str s -> s
  | v -> Json.to_string ~indent:0 v

let report_show_cmd =
  let run path =
    let l = load_ledger path in
    Format.printf "schema: %s@." Tmedb_report.Ledger.schema;
    Format.printf "timestamp: %s@."
      (match l.Tmedb_report.Ledger.timestamp with Some t -> t | None -> "-");
    Format.printf "input digest: %s@." l.Tmedb_report.Ledger.input_digest;
    List.iter
      (fun (k, v) -> Format.printf "config.%s: %s@." k (scalar v))
      l.Tmedb_report.Ledger.config;
    List.iter
      (fun (k, v) -> Format.printf "summary.%s: %s@." k (scalar v))
      l.Tmedb_report.Ledger.summary;
    Format.printf "schedule entries: %d@." (List.length l.Tmedb_report.Ledger.schedule);
    Format.printf "provenance events: %d@." (List.length l.Tmedb_report.Ledger.provenance)
  in
  let term = Term.(const run $ ledger_file_arg) in
  Cmd.v (Cmd.info "show" ~doc:"Print a ledger's header, config and summary.") term

let threshold_arg =
  Arg.(
    value
    & opt float 0.05
    & info [ "threshold" ] ~docv:"REL"
        ~doc:"Relative-change gate, e.g. $(b,0.05) = 5%.  One-sided keys always trip it.")

let json_flag = Arg.(value & flag & info [ "json" ] ~doc:"Emit the machine-readable report.")

let report_diff_cmd =
  let a_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"A.JSON" ~doc:"Baseline document.")
  in
  let b_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"B.JSON" ~doc:"Candidate document.")
  in
  let run threshold json a b =
    let deltas = Tmedb_report.Diff.diff (load_json a) (load_json b) in
    if json then
      print_endline (Json.to_string ~indent:2 (Tmedb_report.Diff.to_json ~threshold deltas))
    else print_string (Tmedb_report.Diff.render ~threshold deltas);
    if Tmedb_report.Diff.exceeding ~threshold deltas <> [] then exit 1
  in
  let term = Term.(const run $ threshold_arg $ json_flag $ a_arg $ b_arg) in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare the numeric leaves of two JSON documents (ledgers, metrics snapshots or \
          bench baselines); exit 1 when any relative change exceeds the threshold.")
    term

let report_explain_cmd =
  let node_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "node" ] ~docv:"I" ~doc:"Node whose transmissions to explain.")
  in
  let profile_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"DIR"
          ~doc:
            "Also link the ledger to profile nodes: print the planner.run subtree (span \
             counts, plus self time when profile_detail.json is present) from a matching \
             $(b,--profile) artifact directory.")
  in
  let run node profile_dir path =
    let l = load_ledger path in
    let txs =
      List.filter (fun (e : Tmedb_report.Ledger.entry) -> e.Tmedb_report.Ledger.relay = node)
        l.Tmedb_report.Ledger.schedule
    in
    if txs = [] then Format.printf "node %d does not transmit in this schedule@." node
    else begin
      let events = l.Tmedb_report.Ledger.provenance in
      let unexplained = ref 0 in
      List.iter
        (fun (tx : Tmedb_report.Ledger.entry) ->
          Format.printf "node %d transmits at t=%g with cost %g:@." node
            tx.Tmedb_report.Ledger.time tx.Tmedb_report.Ledger.cost;
          let entry_events =
            List.filter
              (function
                | Tmedb_report.Provenance.Schedule_entry s ->
                    s.node = node && Float.equal s.time tx.Tmedb_report.Ledger.time
                | _ -> false)
              events
          in
          let alloc_events =
            List.filter
              (function
                | Tmedb_report.Provenance.Allocation a ->
                    a.relay = node && Float.equal a.time tx.Tmedb_report.Ledger.time
                | _ -> false)
              events
          in
          List.iter
            (function
              | Tmedb_report.Provenance.Schedule_entry s ->
                  Format.printf
                    "  backbone: DTS point %d, DCS level %d, cost %g, covers [%a]%s@."
                    s.point_idx s.level_idx s.cost
                    (Format.pp_print_list
                       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
                       Format.pp_print_int)
                    s.covered
                    (match s.tree_edge with
                    | Some (u, v) -> Printf.sprintf " — selected by tree edge %d->%d" u v
                    | None -> "")
              | _ -> ())
            entry_events;
          List.iter
            (function
              | Tmedb_report.Provenance.Allocation a ->
                  Format.printf "  FR allocation: backbone cost %g -> allocated %g@."
                    a.backbone_cost a.allocated_cost
              | _ -> ())
            alloc_events;
          if entry_events = [] && alloc_events = [] then begin
            incr unexplained;
            Format.printf "  (no provenance event recorded)@."
          end)
        txs;
      (* Ledger -> profile link: the schedule above was produced by the
         planner named in the ledger config, so its profile subtree is
         rooted at [planner.run:<algorithm>]. *)
      (match profile_dir with
      | Some dir ->
          let algorithm =
            match List.assoc_opt "algorithm" l.Tmedb_report.Ledger.config with
            | Some (Json.Str s) -> Some s
            | Some _ | None -> None
          in
          let root =
            match algorithm with Some a -> "planner.run:" ^ a | None -> "planner.run"
          in
          let prof = load_json (Filename.concat dir "profile.json") in
          let detail_nodes =
            let p = Filename.concat dir "profile_detail.json" in
            if Sys.file_exists p then
              match Json.member "nodes" (load_json p) with Some (Json.Obj kvs) -> kvs | _ -> []
            else []
          in
          let nodes =
            match Json.member "nodes" prof with Some (Json.Obj kvs) -> kvs | _ -> []
          in
          let contains hay needle =
            let hn = String.length hay and nn = String.length needle in
            let rec scan i = i + nn <= hn && (String.equal (String.sub hay i nn) needle || scan (i + 1)) in
            nn = 0 || scan 0
          in
          let matching = List.filter (fun (k, _) -> contains k root) nodes in
          if matching = [] then
            Format.printf "@.no profile nodes under %s in %s@." root dir
          else begin
            Format.printf "@.profile nodes under %s:@." root;
            List.iter
              (fun (k, v) ->
                let count =
                  match Json.member "count" v with Some (Json.Num c) -> c | _ -> 0.
                in
                let self =
                  match List.assoc_opt k detail_nodes with
                  | Some d -> (
                      match Json.member "wall_self_ns" d with
                      | Some (Json.Num ns) -> Printf.sprintf "  self %s" (fmt_ns ns)
                      | _ -> "")
                  | None -> ""
                in
                Format.printf "  %s  %.0fx%s@." k count self)
              matching
          end
      | None -> ());
      if !unexplained > 0 then begin
        Printf.eprintf "%d transmission(s) of node %d lack provenance\n" !unexplained node;
        exit 1
      end
    end
  in
  let term = Term.(const run $ node_arg $ profile_dir_arg $ ledger_file_arg) in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Answer \"why did node I transmit at t with cost w\" from a ledger's provenance log \
          (DTS point, DCS level, covered neighbours, selecting Steiner-tree edge).")
    term

let report_cmd =
  Cmd.group
    (Cmd.info "report" ~doc:"Inspect, compare and explain tmedb.run/1 run ledgers.")
    [ report_show_cmd; report_diff_cmd; report_explain_cmd ]

let () =
  let doc = "Energy-efficient delay-constrained broadcast in time-varying energy-demand graphs" in
  let info = Cmd.info "tmedb_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd;
            stats_cmd;
            run_cmd;
            compare_cmd;
            simulate_cmd;
            pareto_cmd;
            algorithms_cmd;
            profile_cmd;
            report_cmd;
          ]))
