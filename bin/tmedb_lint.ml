(* tmedb-lint: static enforcement of the project's determinism,
   domain-safety and documentation invariants (rules R1-R9, see
   lib/lint and docs/ANALYSIS.md).  Run from the repo root:

     dune build @check && dune exec bin/tmedb_lint.exe -- --typed lib bin bench test

   Phase 1 (always on) parses sources and enforces R1-R6.  Phase 2
   (--typed) loads the .cmt typed trees dune already produced, builds
   the whole-tree call graph, infers per-function effect signatures
   and enforces the interprocedural rules R7-R9.

   Exit status: 0 clean, 1 unsuppressed findings, 2 usage/IO/parse
   errors (including stale allowlist entries).  `lint.allowlist` in
   the current directory is applied automatically unless
   --no-allowlist is given. *)

let usage () =
  prerr_endline
    "usage: tmedb_lint [--format text|json|sarif] [--only rule[,rule]]\n\
    \                  [--allowlist FILE] [--no-allowlist] [--list-rules]\n\
    \                  [--typed] [--effects-dump] [--build-dir DIR] PATH...\n\n\
     Analyzes every .ml/.mli under the given paths (directories are walked\n\
     recursively; _build and dot-directories are skipped).  --typed adds the\n\
     interprocedural phase over the .cmt trees (run `dune build @check`\n\
     first); --effects-dump prints the inferred effect signatures instead\n\
     of findings.";
  exit 2

let list_rules () =
  List.iter
    (fun r -> Printf.printf "%-4s %-26s %s\n" r.Lint.code r.Lint.id r.Lint.summary)
    Lint.rules;
  exit 0

let () =
  let format = ref `Text in
  let only = ref [] in
  let allowlist_path = ref (Some "lint.allowlist") in
  let explicit_allowlist = ref false in
  let typed = ref false in
  let effects_dump = ref false in
  let build_dir = ref Lint_engine.default_build_dir in
  let paths = ref [] in
  let argv = Sys.argv in
  let i = ref 1 in
  let next_arg () =
    incr i;
    if !i >= Array.length argv then usage ();
    argv.(!i)
  in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "--format" -> (
        match next_arg () with
        | "text" -> format := `Text
        | "json" -> format := `Json
        | "sarif" -> format := `Sarif
        | _ -> usage ())
    | "--only" ->
        let rules =
          String.split_on_char ',' (next_arg ())
          |> List.map String.trim
          |> List.filter (( <> ) "")
        in
        if rules = [] then usage ();
        List.iter
          (fun id ->
            if Lint.find_rule id = None then begin
              Printf.eprintf "tmedb_lint: unknown rule %S (try --list-rules)\n" id;
              exit 2
            end)
          rules;
        only := !only @ rules
    | "--allowlist" ->
        allowlist_path := Some (next_arg ());
        explicit_allowlist := true
    | "--no-allowlist" -> allowlist_path := None
    | "--typed" -> typed := true
    | "--effects-dump" -> effects_dump := true
    | "--build-dir" -> build_dir := next_arg ()
    | "--list-rules" -> list_rules ()
    | "--help" | "-h" -> usage ()
    | arg when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | path -> paths := path :: !paths);
    incr i
  done;
  if !paths = [] then usage ();
  let paths = List.rev !paths in
  let allowlist =
    match !allowlist_path with
    | None -> []
    | Some path when (not !explicit_allowlist) && not (Sys.file_exists path) -> []
    | Some path -> (
        match Lint.load_allowlist path with
        | Ok entries -> entries
        | Error msg ->
            Printf.eprintf "tmedb_lint: %s\n" msg;
            exit 2)
  in
  (* A stale exemption is a hard error: the code it justified is gone,
     and a future file under the same path would inherit an unreviewed
     pass. *)
  (match Lint.stale_entries ~exists:Sys.file_exists allowlist with
  | [] -> ()
  | stale ->
      List.iter
        (fun (e : Lint.allow_entry) ->
          Printf.eprintf
            "tmedb_lint: stale allowlist entry: %s %s (no such file or \
             directory — remove the line)\n"
            e.Lint.pattern e.Lint.allowed_rule)
        stale;
      exit 2);
  if !effects_dump then begin
    match Lint_engine.effects_dump ~build_dir:!build_dir ~paths () with
    | Ok lines ->
        List.iter print_endline lines;
        exit 0
    | Error msg ->
        Printf.eprintf "tmedb_lint: %s\n" msg;
        exit 2
  end;
  let files =
    match Lint.collect_files paths with
    | Ok files -> files
    | Error msg ->
        Printf.eprintf "tmedb_lint: %s\n" msg;
        exit 2
  in
  let errors = ref [] in
  let phase1 =
    List.concat_map
      (fun file ->
        match Lint.analyze_file ~only:!only ~allowlist file with
        | Ok findings -> findings
        | Error msg ->
            errors := Printf.sprintf "%s: %s" file msg :: !errors;
            [])
      files
  in
  let phase2, typed_note =
    if not !typed then ([], "")
    else
      match
        Lint_engine.analyze_typed ~only:!only ~allowlist ~build_dir:!build_dir
          ~paths ()
      with
      | Ok (findings, stats) ->
          ( findings,
            Printf.sprintf " (typed: %d units, %d defs, %d pool sites)"
              stats.Lint_engine.cmts stats.Lint_engine.defs
              stats.Lint_engine.pool_sites )
      | Error msg ->
          errors := msg :: !errors;
          ([], "")
  in
  let findings = phase1 @ phase2 in
  List.iter (Printf.eprintf "tmedb_lint: %s\n") (List.rev !errors);
  (match !format with
  | `Text ->
      Lint.report_text Format.std_formatter findings;
      if findings = [] && !errors = [] then
        Printf.printf "tmedb_lint: %d files clean%s\n" (List.length files)
          typed_note
      else if findings <> [] then
        Printf.printf "tmedb_lint: %d finding%s in %d files%s\n"
          (List.length findings)
          (if List.length findings = 1 then "" else "s")
          (List.length files) typed_note
  | `Json -> Lint.report_json Format.std_formatter findings
  | `Sarif -> Lint.report_sarif Format.std_formatter findings);
  if !errors <> [] then exit 2;
  if findings <> [] then exit 1
