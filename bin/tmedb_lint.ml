(* tmedb-lint: static enforcement of the project's determinism,
   domain-safety and documentation invariants (rules R1-R6, see
   lib/lint).  Run from the repo root:

     dune exec bin/tmedb_lint.exe -- lib bin bench test

   Exit status: 0 clean, 1 unsuppressed findings, 2 usage/IO/parse
   errors.  `lint.allowlist` in the current directory is applied
   automatically unless --no-allowlist is given. *)

let usage () =
  prerr_endline
    "usage: tmedb_lint [--format text|json] [--only rule[,rule]] [--allowlist FILE]\n\
    \                  [--no-allowlist] [--list-rules] PATH...\n\n\
     Analyzes every .ml/.mli under the given paths (directories are walked\n\
     recursively; _build and dot-directories are skipped).";
  exit 2

let list_rules () =
  List.iter
    (fun r -> Printf.printf "%-4s %-26s %s\n" r.Lint.code r.Lint.id r.Lint.summary)
    Lint.rules;
  exit 0

let () =
  let format = ref `Text in
  let only = ref [] in
  let allowlist_path = ref (Some "lint.allowlist") in
  let explicit_allowlist = ref false in
  let paths = ref [] in
  let argv = Sys.argv in
  let i = ref 1 in
  let next_arg () =
    incr i;
    if !i >= Array.length argv then usage ();
    argv.(!i)
  in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "--format" -> (
        match next_arg () with
        | "text" -> format := `Text
        | "json" -> format := `Json
        | _ -> usage ())
    | "--only" ->
        let rules =
          String.split_on_char ',' (next_arg ())
          |> List.map String.trim
          |> List.filter (( <> ) "")
        in
        if rules = [] then usage ();
        List.iter
          (fun id ->
            if Lint.find_rule id = None then begin
              Printf.eprintf "tmedb_lint: unknown rule %S (try --list-rules)\n" id;
              exit 2
            end)
          rules;
        only := !only @ rules
    | "--allowlist" ->
        allowlist_path := Some (next_arg ());
        explicit_allowlist := true
    | "--no-allowlist" -> allowlist_path := None
    | "--list-rules" -> list_rules ()
    | "--help" | "-h" -> usage ()
    | arg when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | path -> paths := path :: !paths);
    incr i
  done;
  if !paths = [] then usage ();
  let allowlist =
    match !allowlist_path with
    | None -> []
    | Some path when (not !explicit_allowlist) && not (Sys.file_exists path) -> []
    | Some path -> (
        match Lint.load_allowlist path with
        | Ok entries -> entries
        | Error msg ->
            Printf.eprintf "tmedb_lint: %s\n" msg;
            exit 2)
  in
  let files =
    match Lint.collect_files (List.rev !paths) with
    | Ok files -> files
    | Error msg ->
        Printf.eprintf "tmedb_lint: %s\n" msg;
        exit 2
  in
  let errors = ref [] in
  let findings =
    List.concat_map
      (fun file ->
        match Lint.analyze_file ~only:!only ~allowlist file with
        | Ok findings -> findings
        | Error msg ->
            errors := Printf.sprintf "%s: %s" file msg :: !errors;
            [])
      files
  in
  List.iter (Printf.eprintf "tmedb_lint: %s\n") (List.rev !errors);
  (match !format with
  | `Text ->
      Lint.report_text Format.std_formatter findings;
      if findings = [] && !errors = [] then
        Printf.printf "tmedb_lint: %d files clean\n" (List.length files)
      else if findings <> [] then
        Printf.printf "tmedb_lint: %d finding%s in %d files\n" (List.length findings)
          (if List.length findings = 1 then "" else "s")
          (List.length files)
  | `Json -> Lint.report_json Format.std_formatter findings);
  if !errors <> [] then exit 2;
  if findings <> [] then exit 1
