(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (Section VII) and times the computational kernels with
   Bechamel.

   Usage:
     dune exec bench/main.exe            -- everything (figures, ablations, kernels)
     dune exec bench/main.exe quick      -- reduced-scale smoke run (writes BENCH_1.json)
     dune exec bench/main.exe fig4a      -- a single figure (fig4a..fig7b)
     dune exec bench/main.exe ablation   -- design-choice ablations
     dune exec bench/main.exe bechamel   -- kernel timings only
     dune exec bench/main.exe baseline   -- parallel baseline only (writes BENCH_1.json)
     dune exec bench/main.exe obs        -- telemetry overhead check (disabled-path cost)
     dune exec bench/main.exe nscale     -- lazy vs eager aux-graph scaling (add --quick for CI)
     dune exec bench/main.exe pareto     -- shared-state deadline sweep vs independent solves (add --quick for CI)
     dune exec bench/main.exe trend      -- metric trajectory across all BENCH_*.json (add --json)

   Every mode accepts `--jobs K` (default: TMEDB_JOBS or the core
   count): the figure sweeps and Monte-Carlo loops fan out over K
   domains.  Results are bit-identical at any K — per-task RNG
   splitting — which the baseline mode verifies explicitly.

   `--metrics FILE` / `--trace FILE` / `--profile DIR` enable the
   telemetry registry (lib/obs) and write the counters/timers
   snapshot, the Chrome trace_event span file, resp. the folded
   profile artifacts (docs/PROFILING.md), on exit — every mode accepts
   them.  The baseline mode always runs with telemetry on and embeds
   each kernel's counter deltas in BENCH_1.json.

   Figures (paper <-> here):
     fig4a/fig4b  energy vs delay constraint, (FR-)EEDCB, N in {10,20,30}
     fig5a/fig5b  energy vs delay constraint, three (FR-)algorithms
     fig6a/fig6b  energy and Monte-Carlo delivery vs network size, all six
     fig7a/fig7b  per-window energy and average degree over [5000 s, 15000 s]

   Absolute numbers depend on the synthetic Haggle-like trace (the real
   iMote trace is not redistributable); the shapes and orderings are
   the reproduction target.  See EXPERIMENTS.md. *)

open Tmedb

(* The worker pool shared by every mode; None means sequential. *)
let pool : Tmedb_prelude.Pool.t option ref = ref None
let jobs = ref 1

(* Telemetry sinks, set by `--metrics` / `--trace` / `--profile`; any
   one turns the lib/obs registry on for the whole run. *)
let metrics_path : string option ref = ref None
let trace_path : string option ref = ref None
let profile_dir : string option ref = ref None

(* `--speedup-floor F`: minimum fig5/fig6 sweep speedup the regress
   mode accepts.  check.sh passes a hard floor only on multi-core
   runners; a 1-CPU box cannot speed anything up. *)
let speedup_floor : float option ref = ref None

let bench_config =
  { Experiment.default_config with Experiment.sources = 2; mc_trials = 300 }

(* Every algorithm the harness names is resolved through the planner
   registry, like the CLI does. *)
let alg name =
  match Registry.find name with
  | Ok p -> p
  | Error e ->
      prerr_endline e;
      exit 2

let quick_config =
  {
    Experiment.default_config with
    Experiment.n = 10;
    horizon = 8000.;
    sources = 1;
    mc_trials = 100;
    dts_cap = 800;
  }

let deadlines_of config =
  (* The paper sweeps 2000..6000 in 500 s steps. *)
  if config.Experiment.n <= 10 then [ 1000.; 2000.; 3000. ]
  else List.init 9 (fun k -> 2000. +. (500. *. float_of_int k))

let sizes_of config = if config.Experiment.n <= 10 then [ 6; 10 ] else [ 10; 20; 30 ]
let fig6_sizes config = if config.Experiment.n <= 10 then [ 6; 10 ] else [ 10; 20; 30; 40 ]

let section title = Printf.printf "\n################ %s ################\n%!" title

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "[%s completed in %.1f s]\n%!" name (Unix.gettimeofday () -. t0);
  r

(* ------------------------------------------------------------------ *)
(* Figures *)

let fig4 config variant =
  let name = match variant with `Static -> "fig4a" | `Fading -> "fig4b" in
  timed name (fun () ->
      let series =
        Experiment.fig4 ~config ?pool:!pool ~variant ~deadlines:(deadlines_of config)
          ~ns:(sizes_of config) ()
      in
      let label =
        match variant with
        | `Static -> "Fig 4(a): EEDCB energy vs delay constraint (static channel)"
        | `Fading -> "Fig 4(b): FR-EEDCB energy vs delay constraint (Rayleigh)"
      in
      Experiment.print_series ~title:label ~xlabel:"T (s)" series)

let fig5 config variant =
  let name = match variant with `Static -> "fig5a" | `Fading -> "fig5b" in
  timed name (fun () ->
      let series =
        Experiment.fig5 ~config ?pool:!pool ~variant ~deadlines:(deadlines_of config) ()
      in
      let label =
        match variant with
        | `Static -> "Fig 5(a): energy vs delay constraint, static algorithms"
        | `Fading -> "Fig 5(b): energy vs delay constraint, fading-resistant algorithms"
      in
      Experiment.print_series ~title:label ~xlabel:"T (s)" series)

let fig6 config part =
  let name = match part with `Energy -> "fig6a" | `Delivery -> "fig6b" in
  timed name (fun () ->
      let energy, delivery = Experiment.fig6 ~config ?pool:!pool ~ns:(fig6_sizes config) () in
      match part with
      | `Energy ->
          Experiment.print_series
            ~title:"Fig 6(a): scheduled energy vs network size (fading environment)"
            ~xlabel:"N" energy
      | `Delivery ->
          Experiment.print_series
            ~title:"Fig 6(b): Monte-Carlo delivery ratio vs network size (Rayleigh)"
            ~xlabel:"N" delivery)

let fig7 config variant =
  let name = match variant with `Static -> "fig7a" | `Fading -> "fig7b" in
  timed name (fun () ->
      let energy, degree = Experiment.fig7 ~config ?pool:!pool ~variant () in
      let label =
        match variant with
        | `Static -> "Fig 7(a): per-window energy, static algorithms (density-ramp trace)"
        | `Fading -> "Fig 7(b): per-window energy, fading-resistant algorithms"
      in
      Experiment.print_series ~title:label ~xlabel:"window start (s)" energy;
      Experiment.print_series ~title:"Fig 7: average node degree per 500 s window"
        ~xlabel:"window start (s)" [ degree ])

(* ------------------------------------------------------------------ *)
(* Ablations (design choices called out in DESIGN.md) *)

let ablation_steiner_level config =
  section "Ablation: recursive-greedy level (paper's epsilon = 1/i)";
  let trace = Experiment.make_trace config ~n:config.Experiment.n in
  let deadline = config.Experiment.deadline in
  let sources = Experiment.choose_sources config ~trace ~deadline in
  Printf.printf "%-8s %16s %16s\n" "source" "level-1 energy" "level-2 energy";
  List.iter
    (fun source ->
      let energy level =
        let config = { config with Experiment.steiner_level = level } in
        (Experiment.run_alg config ~trace ~source ~deadline ~rng:(Tmedb_prelude.Rng.create 3)
           (alg "EEDCB")).Experiment.energy
      in
      Printf.printf "%-8d %16.1f %16.1f\n%!" source (energy 1) (energy 2))
    sources

let ablation_nlp config =
  section "Ablation: NLP energy allocation vs uniform single-hop w0";
  (* A pruned EEDCB backbone has little coverage redundancy for the
     NLP to exploit; GREED's few large transmissions overlap heavily,
     which is where the allocation shines. *)
  let trace = Experiment.make_trace config ~n:config.Experiment.n in
  let deadline = config.Experiment.deadline in
  let sources = Experiment.choose_sources config ~trace ~deadline in
  Printf.printf "%-8s %-8s %16s %16s %9s\n" "backbone" "source" "uniform w0" "NLP alloc" "saved";
  List.iter
    (fun (name, backbone) ->
      List.iter
        (fun source ->
          let problem =
            Experiment.make_problem config ~trace ~channel:`Rayleigh ~source ~deadline
          in
          let ctx =
            Planner.Ctx.make ~steiner_level:config.Experiment.steiner_level
              ~cap_per_node:config.Experiment.dts_cap ()
          in
          let r = Fr.plan_with backbone ctx problem in
          let skeleton =
            match Planner.Outcome.backbone r with Some s -> s | None -> assert false
          in
          let uniform = Metrics.normalized_energy problem skeleton in
          let nlp = Metrics.normalized_energy problem r.Planner.Outcome.schedule in
          Printf.printf "%-8s %-8d %16.1f %16.1f %8.1f%%\n%!" name source uniform nlp
            (100. *. (1. -. (nlp /. Float.max uniform 1e-9))))
        sources)
    [ ("eedcb", `Eedcb); ("greedy", `Greedy) ]

let ablation_dts_cap config =
  section "Ablation: DTS per-node point cap (schedule-space fidelity knob)";
  let trace = Experiment.make_trace config ~n:config.Experiment.n in
  let deadline = config.Experiment.deadline in
  let source = List.hd (Experiment.choose_sources config ~trace ~deadline) in
  Printf.printf "%-8s %16s %10s %10s\n" "cap" "EEDCB energy" "feasible" "time (s)";
  List.iter
    (fun cap ->
      let config = { config with Experiment.dts_cap = cap } in
      let t0 = Unix.gettimeofday () in
      let r =
        Experiment.run_alg config ~trace ~source ~deadline ~rng:(Tmedb_prelude.Rng.create 3)
          (alg "EEDCB")
      in
      Printf.printf "%-8d %16.1f %10b %10.2f\n%!" cap r.Experiment.energy r.Experiment.feasible
        (Unix.gettimeofday () -. t0))
    [ 100; 400; 1500 ]

let ablation_tau config =
  section "Ablation: traversal latency tau (DTS size and propagation)";
  let trace = Experiment.make_trace config ~n:(Stdlib.min 10 config.Experiment.n) in
  Printf.printf "%-8s %14s %12s\n" "tau (s)" "DTS points" "time (s)";
  List.iter
    (fun tau ->
      let graph = Tmedb_tveg.Tveg.of_trace ~tau trace in
      let t0 = Unix.gettimeofday () in
      let dts =
        Tmedb_tveg.Dts.compute ~cap_per_node:config.Experiment.dts_cap ~source:0 graph
          ~deadline:config.Experiment.deadline
      in
      Printf.printf "%-8g %14d %12.2f\n%!" tau (Tmedb_tveg.Dts.total_points dts)
        (Unix.gettimeofday () -. t0))
    [ 0.; 0.5; 2. ]

let extension_robustness config =
  section "Extension: contact-level uncertainty (non-deterministic TVGs, paper future work)";
  let n = Stdlib.min 12 config.Experiment.n in
  let trace = Experiment.make_trace config ~n in
  let deadline = config.Experiment.deadline in
  let source = List.hd (Experiment.choose_sources config ~trace ~deadline) in
  let graph = Tmedb_tveg.Tveg.of_trace ~tau:0. trace in
  let phy = Tmedb_channel.Phy.default in
  Printf.printf "%-8s %18s %18s %18s\n" "p(link)" "support delivery" "support waste"
    "energy (m^2)";
  List.iter
    (fun prob ->
      let nd = Tmedb_tveg.Nondet.of_tveg graph ~presence_prob:prob in
      let schedule =
        Robustness.plan_on_support ~level:config.Experiment.steiner_level nd ~phy
          ~channel:`Static ~source ~deadline
      in
      let r =
        Robustness.evaluate_schedule ~trials:150 ?pool:!pool ~rng:(Tmedb_prelude.Rng.create 11)
          nd ~phy ~channel:`Static ~source ~deadline schedule
      in
      let energy =
        Tmedb_channel.Phy.normalized_energy phy (Schedule.total_cost schedule)
      in
      Printf.printf "%-8.2f %17.1f%% %17.1f%% %18.1f\n%!" prob
        (100. *. r.Tmedb_tveg.Nondet.mean_delivery)
        (100.
        *. r.Tmedb_tveg.Nondet.mean_energy_wasted
        /. Float.max (Schedule.total_cost schedule) 1e-300)
        energy)
    [ 1.0; 0.9; 0.75; 0.5 ]

let ablations config =
  timed "ablations" (fun () ->
      ablation_steiner_level config;
      ablation_nlp config;
      ablation_dts_cap config;
      ablation_tau config;
      extension_robustness config)

(* ------------------------------------------------------------------ *)
(* Bechamel kernels: one Test.make per figure, timing the pipeline
   that produces a single data point of that figure at small scale. *)

let kernel_config =
  {
    Experiment.default_config with
    Experiment.n = 10;
    horizon = 6000.;
    deadline = 1500.;
    sources = 1;
    mc_trials = 50;
    dts_cap = 600;
  }

let kernel_trace = lazy (Experiment.make_trace kernel_config ~n:10)

let kernel_point algorithm () =
  let trace = Lazy.force kernel_trace in
  let r =
    Experiment.run_alg kernel_config ~trace ~source:0 ~deadline:1500.
      ~rng:(Tmedb_prelude.Rng.create 9) algorithm
  in
  ignore (Sys.opaque_identity r.Experiment.energy)

let kernel_simulate () =
  let trace = Lazy.force kernel_trace in
  let problem = Experiment.make_problem kernel_config ~trace ~channel:`Rayleigh ~source:0 ~deadline:1500. in
  let greedy_ctx = Planner.Ctx.make ~cap_per_node:600 () in
  let schedule = (Greedy.plan greedy_ctx problem).Planner.Outcome.schedule in
  let sim =
    Simulate.run ~trials:50 ~rng:(Tmedb_prelude.Rng.create 2) ~eval_channel:`Rayleigh problem
      schedule
  in
  ignore (Sys.opaque_identity sim.Simulate.delivery_ratio)

let kernel_window () =
  let trace = Lazy.force kernel_trace in
  let sub =
    Tmedb_trace.Trace.restrict trace ~span:(Tmedb_prelude.Interval.make ~lo:2000. ~hi:4000.)
  in
  let r =
    Experiment.run_alg kernel_config ~trace:sub ~source:0 ~deadline:4000.
      ~rng:(Tmedb_prelude.Rng.create 9) (alg "EEDCB")
  in
  ignore (Sys.opaque_identity r.Experiment.energy)

let kernel_degree () =
  let trace = Lazy.force kernel_trace in
  let graph = Tmedb_tveg.Tveg.of_trace ~tau:0. trace in
  let d =
    Tmedb_tveg.Tveg.average_degree_over graph
      ~window:(Tmedb_prelude.Interval.make ~lo:1000. ~hi:1500.)
  in
  ignore (Sys.opaque_identity d)

let bechamel_kernels () =
  let open Bechamel in
  let open Toolkit in
  section "Bechamel kernels (one per figure; single data point, N=10 scale)";
  let tests =
    Test.make_grouped ~name:"figures"
      [
        Test.make ~name:"fig4a-eedcb-point" (Staged.stage (kernel_point (alg "EEDCB")));
        Test.make ~name:"fig4b-fr-eedcb-point" (Staged.stage (kernel_point (alg "FR-EEDCB")));
        Test.make ~name:"fig5a-greed-point" (Staged.stage (kernel_point (alg "GREED")));
        Test.make ~name:"fig5b-fr-greed-point" (Staged.stage (kernel_point (alg "FR-GREED")));
        Test.make ~name:"fig6a-rand-point" (Staged.stage (kernel_point (alg "RAND")));
        Test.make ~name:"fig6b-mc-delivery" (Staged.stage kernel_simulate);
        Test.make ~name:"fig7a-window-eedcb" (Staged.stage kernel_window);
        Test.make ~name:"fig7b-average-degree" (Staged.stage kernel_degree);
      ]
  in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 2.) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  Printf.printf "%-40s %16s\n" "kernel" "time/run";
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some (t :: _) ->
          let pretty =
            if t > 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
            else if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
            else Printf.sprintf "%.2f us" (t /. 1e3)
          in
          Printf.printf "%-40s %16s\n%!" name pretty
      | Some [] | None -> Printf.printf "%-40s %16s\n%!" name "-")
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* N-scaling: the lazy auxiliary graph against the eager O(N^2 L)
   build, on the clustered Scale scenarios (docs/SCALING.md).  The
   cheap-backbone / expensive-meeting structure means a shortest-path
   scan settles every terminal far below the cost of the deep DCS
   levels, so the lazy frontier is a small fraction of the vertex
   universe — which this mode measures and asserts. *)

let nscale_cap = 64

let nscale_problem n =
  let params = Tmedb_tveg.Scale.default_params in
  let graph = Tmedb_tveg.Scale.scenario ~params ~n () in
  Problem.make ~graph ~phy:Tmedb_channel.Phy.default ~channel:`Static ~source:0
    ~deadline:(Tmedb_tveg.Scale.deadline ~params ()) ()

let nscale_outcome ~lazy_aux planner n =
  let p = nscale_problem n in
  let ctx = Planner.Ctx.make ~cap_per_node:nscale_cap ~lazy_aux () in
  let t0 = Unix.gettimeofday () in
  let o = Planner.run ~ctx planner p in
  (o, Unix.gettimeofday () -. t0, p)

let nscale_counter name snap =
  match List.assoc_opt name snap.Tmedb_obs.counters with Some v -> v | None -> 0

let nscale ~quick () =
  (* The materialisation counters below come from the global registry,
     so this mode forces telemetry on. *)
  Tmedb_obs.set_enabled true;
  section
    (Printf.sprintf "N-scaling: lazy aux-graph frontier vs eager build%s"
       (if quick then " (quick)" else ""));
  let row label n secs (o : Planner.Outcome.t) p =
    Printf.printf "%-24s %6d %9.2f s %14.1f %10d unreached\n%!" label n secs
      (Metrics.normalized_energy p o.Planner.Outcome.schedule)
      (List.length o.Planner.Outcome.unreached)
  in
  (* 1. Correctness: eager and lazy SPT agree bit for bit. *)
  let n_eq = if quick then 60 else 100 in
  let eager_o, eager_secs, p_eq = nscale_outcome ~lazy_aux:false (alg "SPT") n_eq in
  let lazy_o, lazy_secs, _ = nscale_outcome ~lazy_aux:true (alg "SPT") n_eq in
  row "SPT eager" n_eq eager_secs eager_o p_eq;
  row "SPT lazy" n_eq lazy_secs lazy_o p_eq;
  if
    not
      (Schedule.equal eager_o.Planner.Outcome.schedule lazy_o.Planner.Outcome.schedule
      && eager_o.Planner.Outcome.unreached = lazy_o.Planner.Outcome.unreached)
  then begin
    Printf.eprintf "nscale: lazy SPT diverged from the eager build at N=%d\n" n_eq;
    exit 1
  end;
  Printf.printf "lazy == eager at N=%d: true\n%!" n_eq;
  (* 2. The eager core for the wall-clock comparison: EEDCB on the
     fully materialised graph at N=100 (skipped in quick mode). *)
  let eager_core_secs =
    if quick then None
    else begin
      let o, secs, p = nscale_outcome ~lazy_aux:false (alg "EEDCB") 100 in
      row "EEDCB eager (the wall)" 100 secs o p;
      Some secs
    end
  in
  (* 3. Lazy SPT up the N curve, frontier cut measured per point; the
     10x gate and the unreached check apply to the last (largest) N. *)
  let curve = if quick then [ 300 ] else [ 250; 500; 1000 ] in
  let last =
    List.fold_left
      (fun _ n ->
        let before = Tmedb_obs.snapshot () in
        let o, secs, p = nscale_outcome ~lazy_aux:true (alg "SPT") n in
        let after = Tmedb_obs.snapshot () in
        row "SPT lazy" n secs o p;
        let materialized =
          nscale_counter "aux_graph.nodes_materialized" after
          - nscale_counter "aux_graph.nodes_materialized" before
        in
        let universe =
          nscale_counter "aux_graph.lazy_nodes_total" after
          - nscale_counter "aux_graph.lazy_nodes_total" before
        in
        let ratio = float_of_int universe /. float_of_int (Stdlib.max materialized 1) in
        Printf.printf "  N=%-5d universe %9d  materialized %8d  %.1fx cut\n%!" n universe
          materialized ratio;
        Some (n, o, secs, ratio))
      None curve
  in
  let n_big, big_o, big_secs, ratio =
    match last with Some x -> x | None -> assert false
  in
  if big_o.Planner.Outcome.unreached <> [] then begin
    Printf.eprintf "nscale: N=%d broadcast left nodes unreached\n" n_big;
    exit 1
  end;
  if ratio < 10. then begin
    Printf.eprintf "nscale: materialization cut %.1fx is below the 10x gate\n" ratio;
    exit 1
  end;
  Option.iter
    (fun wall ->
      Printf.printf "lazy N=%d %.2f s vs eager-core N=100 %.2f s\n%!" n_big big_secs wall;
      if big_secs >= wall then begin
        Printf.eprintf
          "nscale: lazy N=%d (%.2f s) is not faster than the eager core at N=100 (%.2f s)\n"
          n_big big_secs wall;
        exit 1
      end)
    eager_core_secs

(* ------------------------------------------------------------------ *)
(* Pareto sweep: a deadline grid over one shared Solve_state against
   the same grid as independent one-shot solves.  Three gates: the
   point lists must agree bit for bit, the shared run's DTS/DCS
   counters must stay sublinear in the grid size (the reuse the state
   exists for), and — full mode only — the 10-point grid must cost
   less than 3x a single solve at the horizon. *)

(* Non-round grid offsets: no grid value collides with a contact
   arrival time, staying clear of the shared stream's exact-deadline
   caveat (Solve_state doc). *)
let pareto_grid ~npoints horizon =
  let step = horizon *. 0.0437 in
  List.init npoints (fun k -> horizon -. (float_of_int (npoints - 1 - k) *. step))

let pareto_point_equal (a : Pareto.point) (b : Pareto.point) =
  Float.equal a.Pareto.deadline b.Pareto.deadline
  && Float.equal a.Pareto.energy b.Pareto.energy
  && a.Pareto.transmissions = b.Pareto.transmissions
  && Bool.equal a.Pareto.feasible b.Pareto.feasible
  && a.Pareto.unreached = b.Pareto.unreached
  && Bool.equal a.Pareto.dominated b.Pareto.dominated

let pareto_bench ~quick () =
  Tmedb_obs.set_enabled true;
  section
    (Printf.sprintf "Pareto sweep: shared solve state vs independent solves%s"
       (if quick then " (quick)" else ""));
  (* Uncapped on purpose: the per-node point cap truncates in
     propagation order, which differs between the eager closure and the
     ascending-time stream when τ = 0 ties arrival times, so capped
     shared and capped independent runs can legitimately disagree.
     Without the cap both closures are the full (identical) point set;
     the sizes stay modest because the uncapped universe grows fast on
     the clustered scenarios. *)
  let n = if quick then 28 else 40 in
  let p = nscale_problem n in
  let horizon = p.Problem.deadline in
  let npoints = 10 in
  let grid = pareto_grid ~npoints horizon in
  let planner = alg "SPT" in
  let run ~share ~lazy_aux =
    let before = Tmedb_obs.snapshot () in
    let t0 = Unix.gettimeofday () in
    let r =
      Pareto.sweep ?pool:!pool ~share ~lazy_aux ~planner ~deadlines:grid p
    in
    let secs = Unix.gettimeofday () -. t0 in
    (r, secs, before, Tmedb_obs.snapshot ())
  in
  let shared, shared_secs, sb, sa = run ~share:true ~lazy_aux:false in
  let indep, indep_secs, ib, ia = run ~share:false ~lazy_aux:true in
  Printf.printf "%-34s %9.2f s\n" "shared solve state (10 points)" shared_secs;
  Printf.printf "%-34s %9.2f s\n%!" "independent lazy solves" indep_secs;
  if
    not
      (List.length shared.Pareto.points = List.length indep.Pareto.points
      && List.for_all2 pareto_point_equal shared.Pareto.points indep.Pareto.points)
  then begin
    Printf.eprintf "pareto: shared-state sweep diverged from independent solves\n";
    exit 1
  end;
  Printf.printf "shared == independent on all %d points: true\n%!" npoints;
  (* Dominance sanity: along the front, energy must strictly drop as
     the deadline grows — otherwise the later point would have been
     dominated by the earlier one. *)
  let front_points =
    List.filter (fun (pt : Pareto.point) -> not pt.Pareto.dominated) shared.Pareto.points
  in
  let rec staircase = function
    | a :: (b :: _ as rest) ->
        if b.Pareto.energy >= a.Pareto.energy || a.Pareto.unreached <> 0 then false
        else staircase rest
    | [ a ] -> a.Pareto.unreached = 0
    | [] -> true
  in
  if not (staircase front_points) then begin
    Printf.eprintf "pareto: front is not a strictly descending full-coverage staircase\n";
    exit 1
  end;
  Printf.printf "front staircase (%d of %d points): ok\n%!" (List.length front_points) npoints;
  (* Counter sublinearity: the shared run pays the DTS closure and the
     DCS pass once for the whole grid; the independent runs pay them
     per point. *)
  let delta name before after = nscale_counter name after - nscale_counter name before in
  let gate label shared_d indep_d =
    Printf.printf "  %-28s shared %9d  independent %9d\n%!" label shared_d indep_d;
    if 3 * shared_d > indep_d then begin
      Printf.eprintf "pareto: shared %s (%d) is not sublinear vs independent (%d)\n" label
        shared_d indep_d;
      exit 1
    end
  in
  gate "dcs.queries" (delta "dcs.queries" sb sa) (delta "dcs.queries" ib ia);
  gate "dts closure points"
    (delta "dts.points" sb sa + delta "dts.stream_points" sb sa)
    (delta "dts.points" ib ia + delta "dts.stream_points" ib ia);
  if delta "solve_state.creates" sb sa <> 1 then begin
    Printf.eprintf "pareto: shared sweep created %d solve states, expected 1\n"
      (delta "solve_state.creates" sb sa);
    exit 1
  end;
  (* Wall gate, full mode only (quick CI boxes are too noisy): the
     whole grid under the shared state must cost less than 3 single
     solves. *)
  let t0 = Unix.gettimeofday () in
  let ctx = Planner.Ctx.make ~lazy_aux:true () in
  ignore (Planner.run ~ctx planner p);
  let single_secs = Unix.gettimeofday () -. t0 in
  Printf.printf "single solve %.2f s; %d-point shared grid %.2f s (%.2fx)\n%!" single_secs
    npoints shared_secs
    (shared_secs /. Float.max single_secs 1e-9);
  if (not quick) && shared_secs >= 3. *. single_secs then begin
    Printf.eprintf "pareto: shared grid (%.2f s) is not under 3x a single solve (%.2f s)\n"
      shared_secs single_secs;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Parallel baseline: time each figure-sweep kernel with 1 domain and
   with the configured pool, check the results are bit-identical, and
   write BENCH_1.json so later sessions have a perf trajectory. *)

let baseline_config =
  {
    Experiment.default_config with
    Experiment.n = 10;
    horizon = 6000.;
    deadline = 1500.;
    sources = 2;
    mc_trials = 60;
    dts_cap = 600;
  }

(* Each kernel maps a pool to a result fingerprint: the full list of
   figure values, compared exactly between the 1-domain and N-domain
   runs. *)
let baseline_kernels : (string * (Tmedb_prelude.Pool.t option -> float list)) list =
  let fingerprint series =
    List.concat_map (fun s -> List.concat_map (fun (x, y) -> [ x; y ]) s.Experiment.points) series
  in
  [
    ( "fig4-sweep",
      fun pool ->
        fingerprint
          (Experiment.fig4 ~config:baseline_config ?pool ~variant:`Static
             ~deadlines:[ 1000.; 1500. ] ~ns:[ 8; 10 ] ()) );
    ( "fig5-sweep",
      fun pool ->
        fingerprint
          (Experiment.fig5 ~config:baseline_config ?pool ~variant:`Fading
             ~deadlines:[ 1000.; 1500. ] ()) );
    ( "fig6-sweep",
      fun pool ->
        let energy, delivery = Experiment.fig6 ~config:baseline_config ?pool ~ns:[ 8; 10 ] () in
        fingerprint energy @ fingerprint delivery );
    ( "mc-simulate",
      fun pool ->
        let trace = Experiment.make_trace baseline_config ~n:10 in
        let problem =
          Experiment.make_problem baseline_config ~trace ~channel:`Rayleigh ~source:0
            ~deadline:1500.
        in
        let greedy_ctx = Planner.Ctx.make ~cap_per_node:600 () in
        let schedule = (Greedy.plan greedy_ctx problem).Planner.Outcome.schedule in
        let sim =
          Simulate.run ~trials:3000 ?pool ~rng:(Tmedb_prelude.Rng.create 2)
            ~eval_channel:`Rayleigh problem schedule
        in
        [ sim.Simulate.delivery_ratio; sim.Simulate.mean_energy_spent ] );
    ( "nscale",
      (* Pool-independent on purpose: the lazy planner is a single
         scan, and the counter deltas the baseline machinery records
         (aux_graph.lazy_nodes_total vs aux_graph.nodes_materialized)
         are the kernel's real payload. *)
      fun _pool ->
        let p = nscale_problem 1000 in
        let ctx = Planner.Ctx.make ~cap_per_node:nscale_cap ~lazy_aux:true () in
        let o = Planner.run ~ctx (alg "SPT") p in
        [
          Metrics.normalized_energy p o.Planner.Outcome.schedule;
          float_of_int (List.length o.Planner.Outcome.unreached);
        ] );
    ( "pareto",
      (* The grid fans out over the pool; the per-point RNG splits make
         the fingerprint pool-independent, which the baseline machinery
         checks.  The counter deltas it records (solve_state.*,
         dts.stream_points, dcs.queries, pareto.points) are the shared
         state's real payload. *)
      fun pool ->
        (* n = 32 and no point cap: see pareto_bench — the uncapped
           closure is what shared and one-shot solves agree on. *)
        let p = nscale_problem 32 in
        let r =
          Pareto.sweep ?pool ~planner:(alg "SPT")
            ~deadlines:(pareto_grid ~npoints:10 p.Problem.deadline)
            p
        in
        List.concat_map
          (fun (pt : Pareto.point) ->
            [
              pt.Pareto.deadline;
              pt.Pareto.energy;
              float_of_int pt.Pareto.unreached;
              (if pt.Pareto.dominated then 1. else 0.);
            ])
          r.Pareto.points );
  ]

(* Baseline files form a sequence BENCH_1.json, BENCH_2.json, …: each
   baseline run appends the next file in the sequence instead of
   overwriting the previous one, so the perf trajectory accumulates
   (EXPERIMENTS.md documents the convention).  The directory listing
   is sorted — Sys.readdir order is unspecified. *)
let bench_files () =
  Sys.readdir "." |> Array.to_list
  |> List.filter_map (fun f ->
         match Scanf.sscanf f "BENCH_%d.json%!" (fun n -> n) with
         | n when n >= 1 -> Some (n, f)
         | _ | (exception Scanf.Scan_failure _) | (exception Failure _)
         | (exception End_of_file) ->
             None)
  |> List.sort compare

let next_bench_path () =
  match List.rev (bench_files ()) with
  | (n, prev) :: _ -> (Printf.sprintf "BENCH_%d.json" (n + 1), Some prev)
  | [] -> ("BENCH_1.json", None)

(* Counter deltas between two registry snapshots, as a JSON object of
   the counters the kernel actually moved. *)
let counter_deltas before after =
  let base name =
    match List.assoc_opt name before.Tmedb_obs.counters with Some v -> v | None -> 0
  in
  List.filter_map
    (fun (name, v) ->
      let d = v - base name in
      if d <> 0 then Some (name, Tmedb_prelude.Json.Num (float_of_int d)) else None)
    after.Tmedb_obs.counters

let baseline () =
  let open Tmedb_prelude in
  let path, prev = next_bench_path () in
  (* Always record per-kernel counter deltas in the baseline file,
     whether or not `--metrics` was given. *)
  Tmedb_obs.set_enabled true;
  section (Printf.sprintf "Parallel baseline: 1 domain vs %d (%s)" !jobs path);
  let timed_run f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let deterministic = ref true in
  Printf.printf "%-16s %12s %12s %9s %13s\n" "kernel" "1 domain (s)"
    (Printf.sprintf "%d dom. (s)" !jobs)
    "speedup" "deterministic";
  let rows =
    List.map
      (fun (name, kernel) ->
        let seq_result, seq_s = timed_run (fun () -> kernel None) in
        (* Counter deltas are taken around the pooled run (the
           configuration a regression would ship with); counters are
           jobs-invariant so the sequential run would report the same
           numbers. *)
        let before = Tmedb_obs.snapshot () in
        let par_result, par_s = timed_run (fun () -> kernel !pool) in
        let after = Tmedb_obs.snapshot () in
        let same = List.for_all2 Float.equal seq_result par_result in
        if not same then deterministic := false;
        let speedup = seq_s /. Float.max par_s 1e-9 in
        Printf.printf "%-16s %12.3f %12.3f %8.2fx %13b\n%!" name seq_s par_s speedup same;
        Json.Obj
          [
            ("name", Json.Str name);
            ("seconds_1", Json.Num seq_s);
            ("seconds_jobs", Json.Num par_s);
            ("speedup", Json.Num speedup);
            ("metrics", Json.Obj (counter_deltas before after));
          ])
      baseline_kernels
  in
  let doc =
    Json.Obj
      [
        ("bench_pr", Json.Num 1.);
        ("jobs", Json.Num (float_of_int !jobs));
        ("deterministic", Json.Bool !deterministic);
        ("kernels", Json.List rows);
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  (* Validate the baseline round-trips before anything regresses
     against it. *)
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  (match Json.parse contents with
  | Ok parsed -> (
      match Option.bind (Json.member "kernels" parsed) Json.to_list with
      | Some (_ :: _ as ks) when List.for_all (fun k -> Json.member "metrics" k <> None) ks
        ->
          Printf.printf "%s ok (%d kernels, with metrics)\n%!" path (List.length ks)
      | Some (_ :: _) ->
          Printf.eprintf "%s kernel rows lack the metrics field\n" path;
          exit 1
      | Some [] | None ->
          Printf.eprintf "%s parsed but has no kernels\n" path;
          exit 1)
  | Error e ->
      Printf.eprintf "%s does not parse: %s\n" path e;
      exit 1);
  if not !deterministic then begin
    Printf.eprintf "parallel results differ from the sequential run\n";
    exit 1
  end;
  (path, prev)

(* ------------------------------------------------------------------ *)
(* Regression gate: append the next baseline and diff it against the
   previous one.  Deterministic keys (the per-kernel counter deltas
   and structural fields) gate at `--threshold`; wall-clock keys
   (seconds/speedup) are inherently noisy and gate only at a loose
   fixed 0.5.  Exit 1 when either gate trips — callers that want
   advisory behaviour (scripts/regress.sh) downgrade the exit code. *)

let regress_threshold = ref 0.05

let load_json p =
  let ic = open_in p in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Tmedb_prelude.Json.parse contents with
  | Ok doc -> doc
  | Error e ->
      Printf.eprintf "%s does not parse: %s\n" p e;
      exit 1

(* `--speedup-floor`: gate the freshly emitted baseline's figure-sweep
   speedups (the kernels whose fan-out the pool is supposed to help).
   Applied to the new file alone — no previous baseline needed. *)
let check_speedup_floor path =
  match !speedup_floor with
  | None -> ()
  | Some floor ->
      let open Tmedb_prelude in
      let kernels =
        match Option.bind (Json.member "kernels" (load_json path)) Json.to_list with
        | Some ks -> ks
        | None ->
            Printf.eprintf "%s has no kernels\n" path;
            exit 1
      in
      let speedup_of name =
        List.find_map
          (fun k ->
            match
              (Json.member "name" k, Option.bind (Json.member "speedup" k) Json.to_float)
            with
            | Some (Json.Str n), Some s when n = name -> Some s
            | _ -> None)
          kernels
      in
      let failed =
        List.filter_map
          (fun name ->
            match speedup_of name with
            | Some s ->
                Printf.printf "speedup floor: %-12s %.2fx (floor %.2fx)\n" name s floor;
                if s < floor then Some (name, s) else None
            | None ->
                Printf.eprintf "%s: kernel %s missing from baseline\n" path name;
                exit 1)
          [ "fig5-sweep"; "fig6-sweep" ]
      in
      if failed <> [] then begin
        List.iter
          (fun (name, s) ->
            Printf.eprintf "speedup floor: %s at %.2fx is below the %.2fx floor\n" name s floor)
          failed;
        exit 1
      end

let regress () =
  let path, prev = baseline () in
  check_speedup_floor path;
  match prev with
  | None ->
      Printf.printf "\nregress: %s is the first baseline, nothing to compare against\n" path
  | Some prev ->
      section (Printf.sprintf "Regression: %s vs %s (threshold %g)" prev path !regress_threshold);
      let deltas = Tmedb_report.Diff.diff (load_json prev) (load_json path) in
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec at i = i + ln <= lh && (String.sub hay i ln = needle || at (i + 1)) in
        ln > 0 && at 0
      in
      let timing d =
        contains d.Tmedb_report.Diff.key "seconds" || contains d.Tmedb_report.Diff.key "speedup"
      in
      (* Scheduler diagnostics (pool.steals, pool.chunk_size buckets,
         pool.batches/tasks) depend on observed task timing, so they
         are reported but never gate. *)
      let pool_diag d = contains d.Tmedb_report.Diff.key "pool." in
      (* A key present only in the new baseline is a kernel or counter
         the suite *learned* — report it, don't gate on it.  A key that
         *disappeared* still gates: losing a counter silently is how
         coverage rots. *)
      let added (d : Tmedb_report.Diff.delta) =
        d.Tmedb_report.Diff.a = None && d.Tmedb_report.Diff.b <> None
      in
      let added_deltas, rest = List.partition added deltas in
      let timing_deltas, rest = List.partition timing rest in
      let pool_deltas, stable_deltas = List.partition pool_diag rest in
      List.iter
        (fun (d : Tmedb_report.Diff.delta) ->
          Printf.printf "i scheduler: %s changed (informational)\n" d.Tmedb_report.Diff.key)
        pool_deltas;
      List.iter
        (fun (d : Tmedb_report.Diff.delta) ->
          Printf.printf "+ learned: %s (new in this baseline)\n" d.Tmedb_report.Diff.key)
        added_deltas;
      print_string (Tmedb_report.Diff.render ~threshold:!regress_threshold stable_deltas);
      let tripped = Tmedb_report.Diff.exceeding ~threshold:!regress_threshold stable_deltas in
      let timing_tripped = Tmedb_report.Diff.exceeding ~threshold:0.5 timing_deltas in
      List.iter
        (fun (d : Tmedb_report.Diff.delta) ->
          Printf.printf "! timing: %s moved more than 50%%\n" d.Tmedb_report.Diff.key)
        timing_tripped;
      if tripped <> [] || timing_tripped <> [] then begin
        Printf.eprintf "regress: %d deterministic and %d timing key(s) exceed the gate\n"
          (List.length tripped) (List.length timing_tripped);
        exit 1
      end
      else Printf.printf "regress ok: no key exceeds the gate\n"

(* ------------------------------------------------------------------ *)
(* `trend` mode: informational summary of key metrics across *all*
   committed BENCH_1..N.json — regress diffs consecutive pairs and
   gates; trend renders the whole trajectory (markdown by default,
   `--json` for machines) and always exits 0. *)

let trend ~json () =
  let open Tmedb_prelude in
  let files = bench_files () in
  if files = [] then begin
    Printf.eprintf "trend: no BENCH_*.json baselines in the working directory\n";
    exit 1
  end;
  let get_str k j =
    match Json.member k j with Some (Json.Str s) -> Some s | _ -> None
  in
  let get_num k j = Option.bind (Json.member k j) Json.to_float in
  let get_bool k j =
    match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None
  in
  (* One row per baseline: (seq, label, jobs, deterministic,
     [kernel -> (seconds_jobs, speedup, counter deltas)]). *)
  let rows =
    List.map
      (fun (n, path) ->
        let doc = load_json path in
        let kernels =
          match Option.bind (Json.member "kernels" doc) Json.to_list with
          | Some ks -> ks
          | None -> []
        in
        let stats =
          List.filter_map
            (fun k ->
              match get_str "name" k with
              | Some name ->
                  let metrics =
                    match Json.member "metrics" k with
                    | Some (Json.Obj kvs) ->
                        List.filter_map
                          (fun (m, v) -> Option.map (fun f -> (m, f)) (Json.to_float v))
                          kvs
                    | Some _ | None -> []
                  in
                  Some (name, (get_num "seconds_jobs" k, get_num "speedup" k, metrics))
              | None -> None)
            kernels
        in
        (n, Printf.sprintf "BENCH_%d" n, get_num "jobs" doc, get_bool "deterministic" doc, stats))
      files
  in
  let kernel_names =
    List.sort_uniq compare
      (List.concat_map (fun (_, _, _, _, stats) -> List.map fst stats) rows)
  in
  let stat_of name (_, _, _, _, stats) = List.assoc_opt name stats in
  if json then begin
    let kernel_json (name, (secs, speedup, metrics)) =
      let num = function Some v -> Json.Num v | None -> Json.Null in
      ( name,
        Json.Obj
          [
            ("seconds_jobs", num secs);
            ("speedup", num speedup);
            ("metrics", Json.Obj (List.map (fun (m, v) -> (m, Json.Num v)) metrics));
          ] )
    in
    let doc =
      Json.Obj
        [
          ("schema", Json.Str "tmedb.trend/1");
          ( "baselines",
            Json.List
              (List.map
                 (fun (n, label, jobs, det, stats) ->
                   Json.Obj
                     [
                       ("bench", Json.Num (float_of_int n));
                       ("file", Json.Str (label ^ ".json"));
                       ("jobs", match jobs with Some j -> Json.Num j | None -> Json.Null);
                       ( "deterministic",
                         match det with Some b -> Json.Bool b | None -> Json.Null );
                       ("kernels", Json.Obj (List.map kernel_json stats));
                     ])
                 rows) );
        ]
    in
    print_endline (Json.to_string ~indent:2 doc)
  end
  else begin
    Printf.printf "# Bench trend (%d baselines)\n\n" (List.length rows);
    Printf.printf "| baseline | jobs | deterministic |\n|---|---|---|\n";
    List.iter
      (fun (_, label, jobs, det, _) ->
        Printf.printf "| %s | %s | %s |\n" label
          (match jobs with Some j -> Printf.sprintf "%g" j | None -> "?")
          (match det with Some b -> string_of_bool b | None -> "?"))
      rows;
    let table title cell =
      Printf.printf "\n## %s\n\n| kernel |" title;
      List.iter (fun (_, label, _, _, _) -> Printf.printf " %s |" label) rows;
      Printf.printf "\n|---|";
      List.iter (fun _ -> print_string "---|") rows;
      print_newline ();
      List.iter
        (fun name ->
          Printf.printf "| %s |" name;
          List.iter (fun row -> Printf.printf " %s |" (cell (stat_of name row))) rows;
          print_newline ())
        kernel_names
    in
    table "Wall seconds (jobs-domain run)" (function
      | Some (Some s, _, _) -> Printf.sprintf "%.3f" s
      | Some (None, _, _) | None -> "-");
    table "Speedup vs 1 domain" (function
      | Some (_, Some s, _) -> Printf.sprintf "%.2fx" s
      | Some (_, None, _) | None -> "-");
    (* Deterministic counter deltas that moved between the first and
       last baseline carrying the kernel — the PR-over-PR story the
       wall-clock tables cannot tell. *)
    Printf.printf "\n## Counter movement (first vs last baseline)\n\n";
    Printf.printf "| kernel | counter | first | last |\n|---|---|---|---|\n";
    let moved = ref 0 in
    List.iter
      (fun name ->
        let carrying =
          List.filter_map
            (fun row ->
              match stat_of name row with
              | Some (_, _, metrics) -> Some metrics
              | None -> None)
            rows
        in
        match carrying with
        | first :: (_ :: _ as later) ->
            let last = List.nth later (List.length later - 1) in
            let names =
              List.sort_uniq compare (List.map fst first @ List.map fst last)
            in
            List.iter
              (fun m ->
                let a = Option.value (List.assoc_opt m first) ~default:0. in
                let b = Option.value (List.assoc_opt m last) ~default:0. in
                if a <> b then begin
                  incr moved;
                  Printf.printf "| %s | %s | %g | %g |\n" name m a b
                end)
              names
        | [ _ ] | [] -> ())
      kernel_names;
    if !moved = 0 then Printf.printf "| - | (no counter moved) | - | - |\n"
  end

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: the disabled registry must cost about a flag
   check on the hot path, and turning it on must not change results. *)

let obs_overhead () =
  section "Telemetry overhead (lib/obs)";
  let c = Tmedb_obs.Counter.make "bench.obs.counter" in
  let t = Tmedb_obs.Timer.make "bench.obs.timer" in
  let counter_iters = 20_000_000 and timer_iters = 2_000_000 in
  let secs f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let counter_loop () =
    for _ = 1 to counter_iters do
      Tmedb_obs.Counter.incr c
    done
  in
  let timer_loop () =
    for _ = 1 to timer_iters do
      let h = Tmedb_obs.Timer.start t in
      Tmedb_obs.Timer.stop t h
    done
  in
  let ns_per s iters = s /. float_of_int iters *. 1e9 in
  let was = Tmedb_obs.enabled () in
  Tmedb_obs.set_enabled false;
  ignore (secs counter_loop);
  (* warmed up *)
  let off_counter = ns_per (secs counter_loop) counter_iters in
  let off_timer = ns_per (secs timer_loop) timer_iters in
  Tmedb_obs.set_enabled true;
  let on_counter = ns_per (secs counter_loop) counter_iters in
  let on_timer = ns_per (secs timer_loop) timer_iters in
  Printf.printf "%-24s %14s %14s\n" "primitive" "disabled ns/op" "enabled ns/op";
  Printf.printf "%-24s %14.2f %14.2f\n" "Counter.incr" off_counter on_counter;
  Printf.printf "%-24s %14.2f %14.2f\n%!" "Timer.start/stop" off_timer on_timer;
  (* Instrumentation observes, never steers: a kernel must produce
     bit-identical results with telemetry off and on. *)
  let kernel = List.assoc "mc-simulate" baseline_kernels in
  Tmedb_obs.set_enabled false;
  let off_result = kernel !pool in
  Tmedb_obs.set_enabled true;
  let on_result = kernel !pool in
  let same = List.for_all2 Float.equal off_result on_result in
  Printf.printf "mc-simulate bit-identical with telemetry off/on: %b\n%!" same;
  if not same then begin
    Printf.eprintf "telemetry changed kernel results\n";
    exit 1
  end;
  (* Flight recorder, armed with full telemetry off: counters/timers
     take the recording branch behind the same shared flag check, and
     span events go only into the bounded per-domain rings — never the
     unbounded stream — so a multi-minute run can stay armed. *)
  Tmedb_obs.set_enabled false;
  let stream_before = List.length (Tmedb_obs.events ()) in
  Tmedb_obs.Flight.arm ();
  let armed_counter = ns_per (secs counter_loop) counter_iters in
  let armed_timer = ns_per (secs timer_loop) timer_iters in
  let span_iters = 200_000 in
  let span_loop () =
    for _ = 1 to span_iters do
      Tmedb_obs.Span.with_ "bench.obs.span" (fun () -> ())
    done
  in
  let armed_span = ns_per (secs span_loop) span_iters in
  let armed_result = kernel !pool in
  Tmedb_obs.Flight.disarm ();
  let stream_after = List.length (Tmedb_obs.events ()) in
  let ring = List.length (Tmedb_obs.Flight.recent ()) in
  Tmedb_obs.set_enabled was;
  Printf.printf "%-24s %14s\n" "primitive (armed)" "armed ns/op";
  Printf.printf "%-24s %14.2f\n" "Counter.incr" armed_counter;
  Printf.printf "%-24s %14.2f\n" "Timer.start/stop" armed_timer;
  Printf.printf "%-24s %14.2f   ring %d events (cap %d/domain)\n%!" "Span.with_" armed_span
    ring
    (Tmedb_obs.Flight.capacity ());
  if stream_after <> stream_before then begin
    Printf.eprintf "armed-only recording grew the unbounded span stream (%d -> %d)\n"
      stream_before stream_after;
    exit 1
  end;
  if ring > Tmedb_obs.Flight.capacity () * (!jobs + 1) then begin
    Printf.eprintf "flight ring exceeded its bound (%d events)\n" ring;
    exit 1
  end;
  if not (List.for_all2 Float.equal off_result armed_result) then begin
    Printf.eprintf "arming the flight recorder changed kernel results\n";
    exit 1
  end;
  (* The disabled path is a single Atomic.get + branch; tens of ns
     would mean a lock or allocation crept in.  The bound is generous
     to stay robust on loaded machines; the armed bounds allow the
     recording branch (clock reads, ring stores) but nothing worse. *)
  if off_counter > 50. || off_timer > 100. then begin
    Printf.eprintf "disabled-path overhead too high (%.1f / %.1f ns/op)\n" off_counter
      off_timer;
    exit 1
  end;
  if armed_counter > 200. || armed_timer > 500. || armed_span > 5000. then begin
    Printf.eprintf "armed-path overhead too high (%.1f / %.1f / %.1f ns/op)\n" armed_counter
      armed_timer armed_span;
    exit 1
  end

(* ------------------------------------------------------------------ *)

(* `lint` mode: time a full-repo static-analysis pass, phase by phase.
   Phase 1 parses every source (R1-R6); phase 2 loads the .cmt typed
   trees, builds the call graph and solves the effect fixpoint (R7-R9)
   — the engine itself reads no clock (R3 covers lib/lint too), so the
   split timing lives here.  Doubles as a perf smoke (what a check.sh
   lint gate costs) and as a gate (any unsuppressed finding or error
   exits non-zero).  Phase 2 is skipped with a note when no .cmt trees
   exist (e.g. a bytecode-only sandbox without a prior @check build). *)
let lint_smoke () =
  let roots = [ "lib"; "bin"; "bench"; "test" ] in
  let allowlist =
    if Sys.file_exists "lint.allowlist" then
      match Lint.load_allowlist "lint.allowlist" with
      | Ok entries -> entries
      | Error msg ->
          Printf.eprintf "%s\n" msg;
          exit 1
    else []
  in
  (match Lint.stale_entries ~exists:Sys.file_exists allowlist with
  | [] -> ()
  | stale ->
      List.iter
        (fun (e : Lint.allow_entry) ->
          Printf.eprintf "stale allowlist entry: %s %s\n" e.Lint.pattern
            e.Lint.allowed_rule)
        stale;
      exit 1);
  let t0 = Unix.gettimeofday () in
  match Lint.collect_files roots with
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
  | Ok files ->
      let phase1, errors =
        List.fold_left
          (fun (fs, es) file ->
            match Lint.analyze_file ~allowlist file with
            | Ok f -> (fs @ f, es)
            | Error msg -> (fs, es @ [ msg ]))
          ([], []) files
      in
      let t1 = Unix.gettimeofday () in
      let phase2, typed_line, typed_errors =
        match Lint_engine.analyze_typed ~allowlist ~paths:roots () with
        | Ok (findings, stats) ->
            let t2 = Unix.gettimeofday () in
            ( findings,
              Printf.sprintf
                "lint: phase2 (typed) %d units, %d defs, %d pool sites in %.3f s"
                stats.Lint_engine.cmts stats.Lint_engine.defs
                stats.Lint_engine.pool_sites (t2 -. t1),
              [] )
        | Error msg -> ([], "lint: phase2 skipped: " ^ msg, [])
      in
      let dt1 = t1 -. t0 in
      List.iter (fun msg -> Printf.eprintf "%s\n" msg) (errors @ typed_errors);
      let findings = phase1 @ phase2 in
      Lint.report_text Format.std_formatter findings;
      Printf.printf "lint: phase1 (parsetree) %d files in %.3f s (%.1f files/s)\n"
        (List.length files) dt1
        (float_of_int (List.length files) /. Float.max dt1 1e-9);
      print_endline typed_line;
      Printf.printf "lint: %d findings, %d errors total\n%!" (List.length findings)
        (List.length errors);
      if findings <> [] || errors <> [] then exit 1

let all_figures config =
  fig4 config `Static;
  fig4 config `Fading;
  fig5 config `Static;
  fig5 config `Fading;
  fig6 config `Energy;
  fig6 config `Delivery;
  fig7 config `Static;
  fig7 config `Fading

let usage () =
  prerr_endline
    "usage: main.exe [--jobs K] [--chunk K] [--metrics FILE] [--trace FILE] [--profile DIR] \
     [--threshold REL] [--speedup-floor F] \
     [quick|fig4a|fig4b|fig5a|fig5b|fig6a|fig6b|fig7a|fig7b|ablation|bechamel|baseline|regress|obs|lint|nscale \
     [--quick]|pareto [--quick]|trend [--json]]";
  exit 2

(* Strip `--jobs K` / `-j K` and the telemetry sinks anywhere in argv;
   the rest selects the mode. *)
let parse_args () =
  let rest = ref [] in
  let i = ref 1 in
  let argc = Array.length Sys.argv in
  let jobs_requested = ref None in
  let file_arg () =
    if !i + 1 >= argc then usage ();
    incr i;
    Sys.argv.(!i)
  in
  while !i < argc do
    (match Sys.argv.(!i) with
    | "--jobs" | "-j" -> (
        match int_of_string_opt (file_arg ()) with
        | Some k when k >= 1 -> jobs_requested := Some k
        | Some _ | None -> usage ())
    | "--chunk" -> (
        (* Fixed chunk size override, read by Pool.create below — the
           same knob as setting TMEDB_CHUNK in the environment. *)
        match int_of_string_opt (file_arg ()) with
        | Some c when c >= 1 -> Unix.putenv "TMEDB_CHUNK" (string_of_int c)
        | Some _ | None -> usage ())
    | "--metrics" -> metrics_path := Some (file_arg ())
    | "--trace" -> trace_path := Some (file_arg ())
    | "--profile" -> profile_dir := Some (file_arg ())
    | "--threshold" -> (
        match float_of_string_opt (file_arg ()) with
        | Some t when t >= 0. -> regress_threshold := t
        | Some _ | None -> usage ())
    | "--speedup-floor" -> (
        match float_of_string_opt (file_arg ()) with
        | Some f when f > 0. -> speedup_floor := Some f
        | Some _ | None -> usage ())
    | arg -> rest := arg :: !rest);
    incr i
  done;
  if !metrics_path <> None || !trace_path <> None || !profile_dir <> None then
    Tmedb_obs.set_enabled true;
  let k =
    match !jobs_requested with
    | Some k -> k
    | None -> Tmedb_prelude.Pool.default_num_domains ()
  in
  jobs := k;
  if k > 1 then pool := Some (Tmedb_prelude.Pool.create ~num_domains:k ());
  List.rev !rest

(* Flush the telemetry sinks requested on the command line; the
   metrics file must round-trip through the in-repo parser with its
   mandatory keys (check.sh smokes this). *)
let write_telemetry () =
  let read_all path =
    let ic = open_in path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    contents
  in
  Option.iter
    (fun path ->
      Tmedb_prelude.Obs_json.write_metrics ~path;
      (match Tmedb_prelude.Json.parse (read_all path) with
      | Ok doc
        when Tmedb_prelude.Json.member "counters" doc <> None
             && Tmedb_prelude.Json.member "timers" doc <> None ->
          Printf.eprintf "metrics written to %s\n%!" path
      | Ok _ ->
          Printf.eprintf "%s: missing counters/timers keys\n" path;
          exit 1
      | Error e ->
          Printf.eprintf "%s does not parse: %s\n" path e;
          exit 1))
    !metrics_path;
  Option.iter
    (fun path ->
      Tmedb_prelude.Obs_json.write_trace ~path;
      Printf.eprintf "trace written to %s\n%!" path)
    !trace_path;
  Option.iter
    (fun dir ->
      ignore (Tmedb_prelude.Profile.write_artifacts ~dir ());
      Printf.eprintf "profile artifacts written to %s/\n%!" dir)
    !profile_dir

let () =
  let t0 = Unix.gettimeofday () in
  let mode = parse_args () in
  Printf.printf "[jobs: %d]\n%!" !jobs;
  (match mode with
  | [] ->
      all_figures bench_config;
      ablations bench_config;
      bechamel_kernels ();
      ignore (baseline ())
  | [ "quick" ] ->
      all_figures quick_config;
      ablations quick_config;
      bechamel_kernels ();
      ignore (baseline ())
  | [ "fig4a" ] -> fig4 bench_config `Static
  | [ "fig4b" ] -> fig4 bench_config `Fading
  | [ "fig5a" ] -> fig5 bench_config `Static
  | [ "fig5b" ] -> fig5 bench_config `Fading
  | [ "fig6a" ] -> fig6 bench_config `Energy
  | [ "fig6b" ] -> fig6 bench_config `Delivery
  | [ "fig7a" ] -> fig7 bench_config `Static
  | [ "fig7b" ] -> fig7 bench_config `Fading
  | [ "ablation" ] -> ablations bench_config
  | [ "bechamel" ] -> bechamel_kernels ()
  | [ "baseline" ] -> ignore (baseline ())
  | [ "regress" ] -> regress ()
  | [ "obs" ] -> obs_overhead ()
  | [ "trend" ] -> trend ~json:false ()
  | [ "trend"; "--json" ] | [ "--json"; "trend" ] -> trend ~json:true ()
  | [ "nscale" ] -> nscale ~quick:false ()
  | [ "nscale"; "--quick" ] | [ "--quick"; "nscale" ] -> nscale ~quick:true ()
  | [ "pareto" ] -> pareto_bench ~quick:false ()
  | [ "pareto"; "--quick" ] | [ "--quick"; "pareto" ] -> pareto_bench ~quick:true ()
  | [ "lint" ] -> lint_smoke ()
  | _ -> usage ());
  write_telemetry ();
  Option.iter Tmedb_prelude.Pool.shutdown !pool;
  Printf.printf "\n[bench total: %.1f s]\n" (Unix.gettimeofday () -. t0)
