(* Conference broadcast: the paper's headline scenario.  A Haggle-like
   synthetic contact trace (heavy-tailed inter-contacts, exponential
   contact durations) stands in for the iMote conference traces; one
   attendee's device must broadcast a packet to all 20 devices within
   a 2000 s delay constraint.

   All six algorithms run on the same instance; schedules designed for
   the static channel are then replayed in a Rayleigh-fading
   environment (Monte Carlo), reproducing the paper's Fig. 6 insight:
   static-optimal schedules lose a third of the nodes under fading,
   while the FR variants deliver to (nearly) everyone at higher energy.

   Paper mapping: one data point of Fig. 6(a)/(b) at N = 20 (energy
   and Monte-Carlo delivery, all six algorithms), on the paper's
   default setup — T = 2000 s, 17000 s Haggle-like horizon.

   Run with:  dune exec examples/conference_broadcast.exe *)

open Tmedb_prelude
open Tmedb

let () =
  let config = { Experiment.default_config with seed = 2015 } in
  let trace = Experiment.make_trace config ~n:20 in
  Format.printf "trace: %a@." Tmedb_trace.Trace.pp trace;
  Format.printf "stats: %a@.@." Tmedb_trace.Trace.pp_stats (Tmedb_trace.Trace.stats trace);
  let deadline = config.Experiment.deadline in
  let source =
    match Experiment.choose_sources config ~trace ~deadline with
    | s :: _ -> s
    | [] -> 0
  in
  Format.printf "source node %d, deadline %g s@.@." source deadline;
  Format.printf "%-10s %14s %9s %10s %9s@." "algorithm" "energy (m^2)" "txs" "delivery" "feasible";
  List.iter
    (fun algorithm ->
      let rng = Rng.create 99 in
      let result = Experiment.run_alg config ~trace ~source ~deadline ~rng algorithm in
      (* Replay in the fading environment. *)
      let eval_problem =
        Experiment.make_problem config ~trace ~channel:`Rayleigh ~source ~deadline
      in
      let sim =
        Simulate.run ~trials:500 ~rng ~eval_channel:`Rayleigh eval_problem
          result.Experiment.schedule
      in
      Format.printf "%-10s %14.1f %9d %9.1f%% %9b@."
        (Experiment.algorithm_name algorithm)
        result.Experiment.energy
        (Schedule.num_transmissions result.Experiment.schedule)
        (100. *. sim.Simulate.delivery_ratio)
        result.Experiment.feasible)
    Experiment.all_algorithms
