(* Vehicular/pedestrian fading broadcast: geometric mobility plus the
   Rayleigh channel, exercising the full FR-EEDCB pipeline — backbone
   selection on single-hop epsilon-costs, then the nonlinear-program
   energy allocation of Equations (14)-(17).

   A random-waypoint field of 15 nodes produces a distance-annotated
   contact trace; we print the backbone, the NLP allocation diagnostics
   and the resulting delivery, and compare against allocating the
   single-hop epsilon-cost to every backbone transmission (what the
   backbone alone would spend), the ablation called "uniform w0" in
   DESIGN.md.

   Paper mapping: Section VI-B end to end — backbone on w0 =
   beta / ln(1/(1-eps)), then the Eq. (14)-(17) allocation — i.e. the
   FR-EEDCB curve of Fig. 5(b), on mobility-generated contacts.

   Run with:  dune exec examples/vehicular_fading.exe *)

open Tmedb_prelude
open Tmedb

let () =
  let params =
    { Tmedb_trace.Mobility.default_params with n = 15; horizon = 4000.; arena = 250. }
  in
  let trace = Tmedb_trace.Mobility.generate (Rng.create 11) params in
  Format.printf "mobility trace: %a@." Tmedb_trace.Trace.pp trace;
  let graph = Tmedb_tveg.Tveg.of_trace ~tau:0. trace in
  let problem =
    Problem.make ~graph ~phy:Tmedb_channel.Phy.default ~channel:`Rayleigh ~source:0
      ~deadline:2000. ()
  in
  let result = Planner.run Fr.fr_eedcb problem in
  let backbone =
    match Planner.Outcome.backbone result with Some s -> s | None -> assert false
  in
  let alloc =
    match Planner.Outcome.allocation result with Some a -> a | None -> assert false
  in
  Format.printf "@.backbone (epsilon-cost weights): %a@." Schedule.pp backbone;
  Format.printf
    "@.NLP allocation: feasible=%b repaired=%b outer-iterations=%d unsatisfiable=[%a]@."
    alloc.Fr.nlp_feasible alloc.Fr.repaired alloc.Fr.outer_iterations
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    alloc.Fr.unsatisfiable;
  Format.printf "@.final schedule: %a@." Schedule.pp result.Planner.Outcome.schedule;
  Format.printf "feasibility: %a@." Feasibility.pp_report result.Planner.Outcome.report;
  let nlp_energy = Metrics.normalized_energy problem result.Planner.Outcome.schedule in
  let uniform_energy = Metrics.normalized_energy problem backbone in
  Format.printf "@.energy: NLP allocation %.1f m^2 vs uniform w0 %.1f m^2 (%.1f%% saved)@."
    nlp_energy uniform_energy
    (100. *. (1. -. (nlp_energy /. Float.max uniform_energy 1e-9)));
  let sim =
    Simulate.run ~trials:1000 ~rng:(Rng.create 5) ~eval_channel:`Rayleigh problem
      result.Planner.Outcome.schedule
  in
  Format.printf "Monte-Carlo delivery (Rayleigh, 1000 trials): %.1f%% (full delivery %.1f%%)@."
    (100. *. sim.Simulate.delivery_ratio)
    (100. *. sim.Simulate.full_delivery_rate)
