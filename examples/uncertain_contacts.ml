(* Planning under contact uncertainty — the paper's future work,
   exercised end to end.

   A disaster-response scenario: a coordinator must push an alert
   through responders whose predicted rendezvous ("contacts") may or
   may not materialise.  We compare planning against the optimistic
   support graph vs against only near-certain contacts, replaying both
   plans over sampled realizations, and audit the chosen plan for
   transmission interference.

   Paper mapping: no figure — both Section VIII future-work items
   (contact-level uncertainty and transmission interference),
   exercised on the Section IV problem machinery.

   Run with:  dune exec examples/uncertain_contacts.exe *)

open Tmedb_prelude
open Tmedb_tveg
open Tmedb

let phy = Tmedb_channel.Phy.default
let deadline = 2000.

let () =
  (* Predicted contacts from a synthetic ops plan... *)
  let config = { Experiment.default_config with Experiment.seed = 77; n = 12; horizon = 4000. } in
  let trace = Experiment.make_trace config ~n:12 in
  let graph = Tveg.of_trace ~tau:0. trace in
  let source = List.hd (Experiment.choose_sources config ~trace ~deadline) in
  (* ...where reliability varies per contact: long rendezvous are
     dependable, brief ones are coin flips. *)
  let rng = Rng.create 9 in
  let contacts =
    List.concat_map
      (fun (a, b) ->
        List.map
          (fun link ->
            let duration = Interval.length link.Tveg.iv in
            let presence_prob =
              if duration >= 120. then 0.95 else 0.45 +. Rng.float rng 0.2
            in
            { Nondet.a; b; link; presence_prob })
          (Tveg.links graph a b))
      (List.concat_map
         (fun a -> List.map (fun b -> (a, b)) (List.init (12 - a - 1) (fun k -> a + 1 + k)))
         (List.init 12 (fun a -> a)))
  in
  let nd = Nondet.create ~n:12 ~span:(Tveg.span graph) ~tau:0. contacts in
  Format.printf "predicted contacts: %d (%.0f%% long-rendezvous)@."
    (List.length (Nondet.contacts nd))
    (100.
    *. float_of_int
         (List.length (List.filter (fun c -> c.Nondet.presence_prob >= 0.9) (Nondet.contacts nd)))
    /. float_of_int (List.length (Nondet.contacts nd)));
  let evaluate label schedule =
    let r =
      Robustness.evaluate_schedule ~trials:300 ~rng:(Rng.create 4) nd ~phy ~channel:`Static
        ~source ~deadline schedule
    in
    Format.printf
      "%-12s energy %8.1f m^2   delivery %5.1f%%   full %5.1f%%   wasted %4.1f%% of budget@."
      label
      (Tmedb_channel.Phy.normalized_energy phy (Schedule.total_cost schedule))
      (100. *. r.Nondet.mean_delivery)
      (100. *. r.Nondet.full_delivery_rate)
      (100. *. r.Nondet.mean_energy_wasted /. Float.max (Schedule.total_cost schedule) 1e-300)
  in
  Format.printf "@.source %d, deadline %g s, 300 sampled realizations:@.@." source deadline;
  let optimistic = Robustness.plan_on_support nd ~phy ~channel:`Static ~source ~deadline in
  evaluate "optimistic" optimistic;
  let robust =
    Robustness.plan_on_threshold ~min_prob:0.9 nd ~phy ~channel:`Static ~source ~deadline
  in
  evaluate "robust" robust;
  (* Interference audit of the plan we would actually deploy. *)
  let problem =
    Problem.make ~graph:(Nondet.support nd) ~phy ~channel:`Static ~source ~deadline ()
  in
  let conflicts = Interference.check problem robust in
  if conflicts = [] then Format.printf "@.robust plan is interference-free@."
  else begin
    Format.printf "@.robust plan has %d interference conflicts:@." (List.length conflicts);
    List.iter (fun c -> Format.printf "  %a@." Interference.pp_conflict c) conflicts
  end
