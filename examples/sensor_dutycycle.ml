(* Duty-cycled sensor field: links exist only when both sensors are
   awake, the second dynamic-network example from the paper's
   introduction.  Sensors wake periodically with staggered offsets;
   the sink must broadcast a configuration update under increasingly
   tight deadlines, tracing the delay-energy tradeoff of Fig. 4.

   Topology: a 4x4 grid, 30 m pitch.  Each sensor is awake during
   [o_i + 120k, o_i + 120k + 40) for phase offset o_i; a link exists
   while both endpoints are awake and within 45 m.

   Paper mapping: the delay-energy tradeoff of Fig. 4(a) (energy
   falling as the constraint T relaxes), on the duty-cycled-sensor
   motivation of Section I instead of the conference trace.

   Run with:  dune exec examples/sensor_dutycycle.exe *)

open Tmedb_prelude
open Tmedb_tveg
open Tmedb

let grid_side = 4
let pitch = 30.
let period = 120.
let awake = 40.
let horizon = 1200.
let radio_range = 45.

let position i = (float_of_int (i mod grid_side) *. pitch, float_of_int (i / grid_side) *. pitch)

let distance i j =
  let xi, yi = position i and xj, yj = position j in
  Float.hypot (xi -. xj) (yi -. yj)

(* Awake windows of a sensor over the horizon. *)
let awake_windows offset =
  let rec go k acc =
    let lo = offset +. (period *. float_of_int k) in
    if lo >= horizon then List.rev acc
    else go (k + 1) (Interval.make ~lo ~hi:(Float.min horizon (lo +. awake)) :: acc)
  in
  go 0 []

let () =
  let n = grid_side * grid_side in
  let rng = Rng.create 7 in
  let offsets = Array.init n (fun _ -> Dist.uniform rng ~lo:0. ~hi:(period -. awake)) in
  let links = ref [] in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      let d = distance i j in
      if d <= radio_range then begin
        let both =
          Interval_set.inter
            (Interval_set.of_list (awake_windows offsets.(i)))
            (Interval_set.of_list (awake_windows offsets.(j)))
        in
        Interval_set.iter
          (fun iv -> links := (i, j, { Tveg.iv; dist = d }) :: !links)
          both
      end
    done
  done;
  let graph = Tveg.create ~n ~span:(Interval.make ~lo:0. ~hi:horizon) ~tau:0. !links in
  Format.printf "duty-cycled sensor grid: %a@.@." Tveg.pp graph;
  Format.printf "%-10s %14s %9s %10s@." "deadline" "energy (m^2)" "txs" "feasible";
  List.iter
    (fun deadline ->
      let problem =
        Problem.make ~graph ~phy:Tmedb_channel.Phy.default ~channel:`Static ~source:0 ~deadline ()
      in
      if Problem.is_reachable problem then begin
        let r = Planner.run Eedcb.planner problem in
        Format.printf "%-10g %14.1f %9d %10b@." deadline
          (Metrics.normalized_energy problem r.Planner.Outcome.schedule)
          (Schedule.num_transmissions r.Planner.Outcome.schedule)
          r.Planner.Outcome.report.Feasibility.feasible
      end
      else Format.printf "%-10g %14s %9s %10s@." deadline "-" "-" "unreachable")
    [ 300.; 450.; 600.; 900.; 1200. ]
