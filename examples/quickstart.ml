(* Quickstart: build a small time-varying energy-demand graph by hand,
   ask EEDCB for a minimum-energy delay-constrained broadcast schedule,
   and compare it against the greedy baseline.

   The scenario: five devices meet pairwise during different windows of
   a 100-second span.  Node 0 wants everyone to have the packet by
   t = 80 s.

     0 -- 1   during [ 0, 30)  at 10 m      0 -- 2  during [ 0, 40) at 30 m
     1 -- 3   during [20, 60)  at 15 m      2 -- 4  during [35, 70) at 12 m
     1 -- 4   during [50, 75)  at 40 m

   Paper mapping: the Section VI-A pipeline in miniature — DTS
   (Section V) -> auxiliary graph (Fig. 3) -> directed Steiner tree ->
   schedule, checked against conditions (i)-(iv) of Section IV.

   Run with:  dune exec examples/quickstart.exe *)

open Tmedb_prelude
open Tmedb_tveg

let iv lo hi = Interval.make ~lo ~hi
let link lo hi dist = { Tveg.iv = iv lo hi; dist }

let () =
  let graph =
    Tveg.create ~n:5 ~span:(iv 0. 100.) ~tau:0.
      [
        (0, 1, link 0. 30. 10.);
        (0, 2, link 0. 40. 30.);
        (1, 3, link 20. 60. 15.);
        (2, 4, link 35. 70. 12.);
        (1, 4, link 50. 75. 40.);
      ]
  in
  let problem =
    Tmedb.Problem.make ~graph ~phy:Tmedb_channel.Phy.default ~channel:`Static ~source:0
      ~deadline:80. ()
  in
  Format.printf "instance: %a@." Tmedb.Problem.pp problem;
  Format.printf "reachable by deadline: %b (completion lower bound %g s)@.@."
    (Tmedb.Problem.is_reachable problem)
    (Tmedb.Problem.completion_lower_bound problem);

  (* The paper's algorithm: DTS -> auxiliary graph -> Steiner tree.
     Every planner shares the same entry point: Planner.run. *)
  let eedcb = Tmedb.Planner.run Tmedb.Eedcb.planner problem in
  Format.printf "EEDCB %a@." Tmedb.Schedule.pp eedcb.Tmedb.Planner.Outcome.schedule;
  Format.printf "  feasibility: %a@." Tmedb.Feasibility.pp_report
    eedcb.Tmedb.Planner.Outcome.report;
  Format.printf "  normalized energy: %.1f m^2@.@."
    (Tmedb.Metrics.normalized_energy problem eedcb.Tmedb.Planner.Outcome.schedule);

  (* Greedy baseline for comparison. *)
  let greedy = Tmedb.Planner.run Tmedb.Greedy.planner problem in
  Format.printf "GREED %a@." Tmedb.Schedule.pp greedy.Tmedb.Planner.Outcome.schedule;
  Format.printf "  normalized energy: %.1f m^2@."
    (Tmedb.Metrics.normalized_energy problem greedy.Tmedb.Planner.Outcome.schedule);

  if not eedcb.Tmedb.Planner.Outcome.report.Tmedb.Feasibility.feasible then begin
    prerr_endline "quickstart: EEDCB schedule is infeasible";
    exit 1
  end
