(* Telemetry profile: run EEDCB on a small synthetic trace with the
   lib/obs registry enabled and show where the time goes — the top-5
   timers, the pipeline's shape counters, and (optionally) a Chrome
   trace_event span file for Perfetto/chrome://tracing.

   Paper mapping: profiles the Section VI-A pipeline end to end
   (DTS, Section V → auxiliary graph, Fig. 3 → recursive-greedy
   Steiner tree) plus a Fig. 6(b)-style Monte-Carlo replay.

   Run with:  dune exec examples/telemetry_profile.exe
              dune exec examples/telemetry_profile.exe -- /tmp/spans.json *)

open Tmedb_prelude
open Tmedb

let () =
  Tmedb_obs.set_enabled true;

  let config =
    { Experiment.default_config with Experiment.n = 12; horizon = 8000.; seed = 7 }
  in
  let trace = Experiment.make_trace config ~n:12 in
  let problem =
    Experiment.make_problem config ~trace ~channel:`Static ~source:0 ~deadline:2000.
  in
  let result = Planner.run Eedcb.planner problem in
  let schedule = result.Planner.Outcome.schedule in
  let sim =
    Simulate.run ~trials:200 ~rng:(Rng.create 1) ~eval_channel:`Rayleigh problem schedule
  in

  Format.printf "EEDCB on a 12-node trace: %d transmissions, %.1f m², delivery %.2f@."
    (Schedule.num_transmissions schedule)
    (Metrics.normalized_energy problem schedule)
    sim.Simulate.delivery_ratio;

  (* Top-5 timers by accumulated wall-clock time. *)
  let snap = Tmedb_obs.snapshot () in
  let busiest =
    List.filter (fun t -> t.Tmedb_obs.hits > 0) snap.Tmedb_obs.timers
    |> List.sort (fun a b -> Float.compare b.Tmedb_obs.seconds a.Tmedb_obs.seconds)
  in
  Format.printf "@.%-20s %12s %8s@." "timer" "seconds" "hits";
  List.iteri
    (fun i t ->
      if i < 5 then
        Format.printf "%-20s %12.6f %8d@." t.Tmedb_obs.timer_name t.Tmedb_obs.seconds
          t.Tmedb_obs.hits)
    busiest;

  (* The pipeline's shape, from the counters. *)
  let counter name = List.assoc name snap.Tmedb_obs.counters in
  Format.printf
    "@.pipeline shape: %d DTS points -> %d aux vertices / %d edges -> %d Steiner picks; %d \
     MC trials@."
    (counter "dts.points") (counter "aux_graph.vertices") (counter "aux_graph.edges")
    (counter "dst.expansions") (counter "simulate.trials");

  (* Optional span file: pass a path to inspect the nesting in
     Perfetto (ui.perfetto.dev) or chrome://tracing. *)
  match Sys.argv with
  | [| _; path |] ->
      Obs_json.write_trace ~path;
      Format.printf "@.span trace written to %s@." path
  | _ -> ()
