(* Tests for lib/report: the tmedb.run/1 run ledger (round-trip,
   byte-determinism across worker counts), the provenance log (sink
   semantics, JSON round-trip, completeness against the schedule on a
   fig6-style run) and the numeric diff behind the regression gate. *)

open Tmedb
open Tmedb_prelude
module Clock = Tmedb_report.Clock
module Provenance = Tmedb_report.Provenance
module Ledger = Tmedb_report.Ledger
module Diff = Tmedb_report.Diff

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let alg name =
  match Experiment.algorithm_of_string name with
  | Ok a -> a
  | Error e -> Alcotest.fail e

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Both the telemetry registry and the provenance sink are
   process-global; run each test from a clean state and leave
   recording off for whoever runs next. *)
let scrubbed f () =
  Tmedb_obs.reset ();
  Provenance.reset ();
  Tmedb_obs.set_enabled true;
  Provenance.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Tmedb_obs.set_enabled false;
      Provenance.set_enabled false;
      Tmedb_obs.reset ();
      Provenance.reset ())

(* ------------------------------------------------------------------ *)
(* Clock *)

let test_clock_format () =
  let s = Clock.now_iso8601 () in
  check_int "length" 20 (String.length s);
  List.iter
    (fun (i, c) -> check_bool (Printf.sprintf "separator at %d" i) true (s.[i] = c))
    [ (4, '-'); (7, '-'); (10, 'T'); (13, ':'); (16, ':'); (19, 'Z') ];
  String.iteri
    (fun i c ->
      if not (List.mem i [ 4; 7; 10; 13; 16; 19 ]) then
        check_bool (Printf.sprintf "digit at %d" i) true (c >= '0' && c <= '9'))
    s

(* ------------------------------------------------------------------ *)
(* Provenance: sink semantics and JSON round-trip *)

let sample_events =
  [
    Provenance.Stage { stage = "dts"; detail = "12 points" };
    Provenance.Schedule_entry
      {
        node = 3;
        time = 120.5;
        cost = 2.25;
        point_idx = 1;
        level_idx = 0;
        covered = [ 1; 4; 7 ];
        tree_edge = Some (5, 9);
      };
    Provenance.Schedule_entry
      {
        node = 0;
        time = 0.;
        cost = 0.5;
        point_idx = 0;
        level_idx = 2;
        covered = [];
        tree_edge = None;
      };
    Provenance.Expansion { vertex = 17; terminals = 4 };
    Provenance.Allocation { relay = 3; time = 120.5; backbone_cost = 2.25; allocated_cost = 1.75 };
  ]

let test_provenance_sink =
  scrubbed @@ fun () ->
  Provenance.set_enabled false;
  Provenance.emit (List.hd sample_events);
  check_bool "disabled emit is a no-op" true (Provenance.events () = []);
  Provenance.set_enabled true;
  List.iter Provenance.emit sample_events;
  check_bool "events kept in emission order" true (Provenance.events () = sample_events);
  Provenance.reset ();
  check_bool "reset clears the sink" true (Provenance.events () = [])

let test_provenance_json_round_trip () =
  List.iter
    (fun e ->
      match Provenance.of_json (Provenance.to_json e) with
      | Ok e' -> check_bool "event round-trips" true (e = e')
      | Error msg -> Alcotest.fail msg)
    sample_events;
  match Provenance.of_json (Json.Obj [ ("kind", Json.Str "nonsense") ]) with
  | Ok _ -> Alcotest.fail "unknown kind must not parse"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Ledger: deterministic projection, write/load round-trip *)

let test_ledger_round_trip =
  scrubbed @@ fun () ->
  Tmedb_obs.Counter.add (Tmedb_obs.Counter.make "test.report.counter") 7;
  Tmedb_obs.Counter.add (Tmedb_obs.Counter.make "pool.fake") 5;
  ignore (Tmedb_obs.Timer.time (Tmedb_obs.Timer.make "test.report.timer") (fun () -> ()));
  Tmedb_obs.Histogram.observe (Tmedb_obs.Histogram.make "test.report.hist") 9;
  let ledger =
    Ledger.make ~timestamp:"2026-01-01T00:00:00Z"
      ~config:[ ("zeta", Json.Num 1.); ("alpha", Json.Str "x") ]
      ~input_digest:(Ledger.digest_string "instance")
      ~summary:[ ("energy", Json.Num 12.5) ]
      ~snapshot:(Tmedb_obs.snapshot ()) ~provenance:sample_events
      ~schedule:[ { Ledger.relay = 3; time = 120.5; cost = 2.25 } ]
      ()
  in
  (* The metrics projection keeps only run-to-run stable material. *)
  let metrics_keys = List.map fst (Diff.flatten ledger.Ledger.metrics) in
  check_bool "pool.* entries excluded" true
    (not (List.exists (fun k -> contains k "pool.") metrics_keys));
  check_bool "wall-clock seconds excluded" true
    (not (List.exists (fun k -> contains k "seconds") metrics_keys));
  check_bool "allocation words excluded" true
    (not (List.exists (fun k -> contains k "words") metrics_keys));
  check_bool "counter kept" true (List.mem "counters.test.report.counter" metrics_keys);
  check_bool "timer hits kept" true (List.mem "timer_hits.test.report.timer" metrics_keys);
  check_bool "histogram summary kept" true
    (List.mem "histograms.test.report.hist.p50" metrics_keys);
  (* Config keys are emitted sorted regardless of construction order. *)
  (match Json.member "config" (Ledger.to_json ledger) with
  | Some (Json.Obj kvs) -> check_bool "config keys sorted" true (List.map fst kvs = [ "alpha"; "zeta" ])
  | _ -> Alcotest.fail "config object missing");
  let path = Filename.temp_file "tmedb_ledger" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Ledger.write ledger ~path;
  let read () = In_channel.with_open_bin path In_channel.input_all in
  let first = read () in
  Ledger.write ledger ~path;
  check_string "write is byte-deterministic" first (read ());
  match Ledger.load ~path with
  | Error e -> Alcotest.fail ("ledger does not load: " ^ e)
  | Ok reparsed ->
      check_string "load inverts write"
        (Json.to_string (Ledger.to_json ledger))
        (Json.to_string (Ledger.to_json reparsed))

(* ------------------------------------------------------------------ *)
(* Ledger byte-identical across worker counts.  Mirrors the CLI's
   --ledger assembly: one (FR-)EEDCB pipeline run on the calling
   domain, Monte-Carlo replay fanned out on the pool. *)

let small_config =
  {
    Experiment.default_config with
    Experiment.n = 10;
    horizon = 5000.;
    deadline = 1200.;
    sources = 1;
    mc_trials = 40;
    dts_cap = 400;
  }

let ledger_at ~trace k =
  Tmedb_obs.reset ();
  Provenance.reset ();
  let config = small_config in
  let result =
    Experiment.run_alg config ~trace ~source:0 ~deadline:1200. ~rng:(Rng.create 5)
      (alg "EEDCB")
  in
  let eval = Experiment.make_problem config ~trace ~channel:`Rayleigh ~source:0 ~deadline:1200. in
  let sim pool =
    Simulate.run ~trials:40 ?pool ~rng:(Rng.create 6) ~eval_channel:`Rayleigh eval
      result.Experiment.schedule
  in
  let s = if k = 1 then sim None else Pool.with_pool ~num_domains:k (fun pool -> sim (Some pool)) in
  let schedule =
    List.map
      (fun (tx : Schedule.transmission) ->
        { Ledger.relay = tx.Schedule.relay; time = tx.Schedule.time; cost = tx.Schedule.cost })
      (Schedule.transmissions result.Experiment.schedule)
  in
  let doc =
    Ledger.make
      ~config:[ ("algorithm", Json.Str "EEDCB"); ("seed", Json.Num 5.) ]
      ~input_digest:(Ledger.digest_string "fixed-instance")
      ~summary:
        [
          ("energy", Json.Num result.Experiment.energy);
          ("delivery_ratio", Json.Num s.Simulate.delivery_ratio);
        ]
      ~snapshot:(Tmedb_obs.snapshot ())
      ~provenance:(Provenance.events ())
      ~schedule ()
  in
  Json.to_string ~indent:2 (Ledger.to_json doc)

let test_ledger_jobs_invariant =
  scrubbed @@ fun () ->
  let trace = Experiment.make_trace small_config ~n:small_config.Experiment.n in
  match List.map (ledger_at ~trace) [ 1; 2; 4 ] with
  | reference :: rest ->
      check_bool "ledger non-trivial" true (String.length reference > 500);
      List.iteri
        (fun i other ->
          check_string (Printf.sprintf "byte-identical ledger (variant %d)" i) reference other)
        rest
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* Provenance completeness: on a fig6-style run, every schedule entry
   is explained — exactly one Schedule_entry per EEDCB transmission,
   an Allocation per FR transmission — which is what backs
   [tmedb report explain]. *)

let test_provenance_completeness =
  scrubbed @@ fun () ->
  let config = small_config in
  let trace = Experiment.make_trace config ~n:config.Experiment.n in
  let run algorithm =
    Provenance.reset ();
    let result =
      Experiment.run_alg config ~trace ~source:0 ~deadline:1200. ~rng:(Rng.create 5) algorithm
    in
    (Schedule.transmissions result.Experiment.schedule, Provenance.events ())
  in
  (* EEDCB: backbone pipeline stages plus one Schedule_entry per
     transmission, field-consistent with the schedule. *)
  let txs, events = run (alg "EEDCB") in
  check_bool "EEDCB schedule non-empty" true (txs <> []);
  let stages =
    List.filter_map (function Provenance.Stage { stage; _ } -> Some stage | _ -> None) events
  in
  List.iter
    (fun s -> check_bool (Printf.sprintf "stage %S recorded" s) true (List.mem s stages))
    [ "planner"; "dts"; "aux_graph"; "dst"; "prune" ];
  (* The planner stage names the planner that was selected (satellite of
     the registry refactor: every run is attributable to a planner). *)
  let planner_details =
    List.filter_map
      (function
        | Provenance.Stage { stage = "planner"; detail } -> Some detail | _ -> None)
      events
  in
  check_bool "planner stage names EEDCB" true (List.mem "EEDCB" planner_details);
  List.iter
    (fun (tx : Schedule.transmission) ->
      let matching =
        List.filter_map
          (function
            | Provenance.Schedule_entry { node; time; cost; covered; _ }
              when node = tx.Schedule.relay && Float.equal time tx.Schedule.time ->
                Some (cost, covered)
            | _ -> None)
          events
      in
      match matching with
      | [ (cost, covered) ] ->
          check_bool "entry cost matches the schedule" true (Float.equal cost tx.Schedule.cost);
          check_bool "covered set sorted and unique" true
            (covered = List.sort_uniq Int.compare covered)
      | [] -> Alcotest.fail (Printf.sprintf "transmission by %d unexplained" tx.Schedule.relay)
      | _ -> Alcotest.fail (Printf.sprintf "transmission by %d multiply explained" tx.Schedule.relay))
    txs;
  (* FR-EEDCB: every surviving transmission carries its allocation
     decision, with the allocated cost the schedule actually uses. *)
  let txs, events = run (alg "FR-EEDCB") in
  check_bool "FR-EEDCB schedule non-empty" true (txs <> []);
  let planner_details =
    List.filter_map
      (function
        | Provenance.Stage { stage = "planner"; detail } -> Some detail | _ -> None)
      events
  in
  check_bool "planner stage names FR-EEDCB" true (List.mem "FR-EEDCB" planner_details);
  List.iter
    (fun (tx : Schedule.transmission) ->
      let allocated =
        List.exists
          (function
            | Provenance.Allocation { relay; time; allocated_cost; _ } ->
                relay = tx.Schedule.relay
                && Float.equal time tx.Schedule.time
                && Float.equal allocated_cost tx.Schedule.cost
            | _ -> false)
          events
      in
      check_bool
        (Printf.sprintf "FR transmission by %d has its allocation" tx.Schedule.relay)
        true allocated)
    txs

(* ------------------------------------------------------------------ *)
(* Pareto ledger: round-trip, deadline-keyed points, Diff paths *)

let sample_pareto_points =
  [
    {
      Ledger.Pareto.deadline = 2000.;
      energy = 939.8;
      transmissions = 9;
      feasible = true;
      unreached = 0;
      dominated = true;
    };
    {
      Ledger.Pareto.deadline = 4000.;
      energy = 616.3;
      transmissions = 11;
      feasible = true;
      unreached = 0;
      dominated = false;
    };
  ]

let test_pareto_ledger_round_trip =
  scrubbed @@ fun () ->
  Tmedb_obs.Counter.add (Tmedb_obs.Counter.make "test.pareto.counter") 3;
  let doc =
    Ledger.Pareto.make ~timestamp:"2026-01-01T00:00:00Z"
      ~config:[ ("grid", Json.Str "2000:4000:2000"); ("algorithm", Json.Str "EEDCB") ]
      ~input_digest:(Ledger.digest_string "instance")
      ~points:sample_pareto_points ~front:[ 4000. ]
      ~snapshot:(Tmedb_obs.snapshot ()) ()
  in
  check_string "schema tag" "tmedb.pareto/1" Ledger.Pareto.schema;
  check_string "integral deadline key" "2000" (Ledger.Pareto.deadline_key 2000.);
  (* Points are keyed by the canonical deadline string, config sorted. *)
  (match Json.member "points" (Ledger.Pareto.to_json doc) with
  | Some (Json.Obj kvs) ->
      check_bool "points keyed by deadline" true (List.map fst kvs = [ "2000"; "4000" ])
  | _ -> Alcotest.fail "points object missing");
  (match Json.member "config" (Ledger.Pareto.to_json doc) with
  | Some (Json.Obj kvs) ->
      check_bool "config keys sorted" true (List.map fst kvs = [ "algorithm"; "grid" ])
  | _ -> Alcotest.fail "config object missing");
  (* Diff flattens a sweep into stable per-point dotted paths, so
     `report diff` works on pareto ledgers unchanged. *)
  let keys = List.map fst (Diff.flatten (Ledger.Pareto.to_json doc)) in
  List.iter
    (fun k -> check_bool ("flattened path " ^ k) true (List.mem k keys))
    [
      "points.2000.energy";
      "points.2000.unreached";
      "points.4000.transmissions";
      "front[0]";
      "metrics.counters.test.pareto.counter";
    ];
  let path = Filename.temp_file "tmedb_pareto" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Ledger.Pareto.write doc ~path;
  let read () = In_channel.with_open_bin path In_channel.input_all in
  let first = read () in
  Ledger.Pareto.write doc ~path;
  check_string "write is byte-deterministic" first (read ());
  match Ledger.Pareto.load ~path with
  | Error e -> Alcotest.fail ("pareto ledger does not load: " ^ e)
  | Ok reparsed ->
      check_string "load inverts write"
        (Json.to_string (Ledger.Pareto.to_json doc))
        (Json.to_string (Ledger.Pareto.to_json reparsed))

(* ------------------------------------------------------------------ *)
(* Diff: flattening, change detection, threshold gate *)

let test_diff_semantics () =
  let a =
    Json.Obj
      [
        ("x", Json.Num 10.);
        ("nested", Json.Obj [ ("y", Json.Num 2.) ]);
        ("list", Json.List [ Json.Num 1.; Json.Num 2. ]);
        ("label", Json.Str "ignored");
        ("gone", Json.Num 5.);
      ]
  in
  let b =
    Json.Obj
      [
        ("x", Json.Num 10.4);
        ("nested", Json.Obj [ ("y", Json.Num 2.) ]);
        ("list", Json.List [ Json.Num 1.; Json.Num 3. ]);
        ("label", Json.Str "different");
        ("fresh", Json.Num 1.);
      ]
  in
  let deltas = Diff.diff a b in
  let keys = List.map (fun d -> d.Diff.key) deltas in
  check_bool "keys sorted" true (keys = List.sort String.compare keys);
  check_bool "non-numeric leaves ignored" true (not (List.mem "label" keys));
  check_bool "list indices flattened" true (List.mem "list[1]" keys);
  let changed_keys = List.map (fun d -> d.Diff.key) (List.filter Diff.changed deltas) in
  check_bool "changed = one-sided + moved" true
    (changed_keys = [ "fresh"; "gone"; "list[1]"; "x" ]);
  (* x moved 4%: below a 5% gate, above a 1% gate; one-sided keys and
     the 50% list move always trip. *)
  check_int "5% gate" 3 (List.length (Diff.exceeding ~threshold:0.05 deltas));
  check_int "1% gate" 4 (List.length (Diff.exceeding ~threshold:0.01 deltas));
  (match List.find_opt (fun d -> d.Diff.key = "nested.y") deltas with
  | Some d -> check_bool "equal leaf has zero relative change" true (Diff.rel_change d = Some 0.)
  | None -> Alcotest.fail "nested.y not compared");
  let rendered = Diff.render ~threshold:0.05 deltas in
  check_bool "render marks gate-tripping keys" true (contains rendered "! ");
  check_bool "render names the moved key" true (contains rendered "list[1]");
  match Json.member "threshold" (Diff.to_json ~threshold:0.05 deltas) with
  | Some (Json.Num t) -> check_bool "machine report carries the threshold" true (Float.equal t 0.05)
  | _ -> Alcotest.fail "threshold missing from machine report"

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "report"
    [
      ("clock", [ tc "iso8601 shape" test_clock_format ]);
      ( "provenance",
        [
          tc "sink gating and order" test_provenance_sink;
          tc "json round-trip" test_provenance_json_round_trip;
          tc "completeness on a fig6-style run" test_provenance_completeness;
        ] );
      ( "ledger",
        [
          tc "round-trip and deterministic projection" test_ledger_round_trip;
          tc "byte-identical across worker counts" test_ledger_jobs_invariant;
          tc "pareto sweep ledger round-trip and diff paths" test_pareto_ledger_round_trip;
        ] );
      ("diff", [ tc "flatten/diff/gate semantics" test_diff_semantics ]);
    ]
