(* Tests for the planner layer: registry invariants (the name-keyed
   table is the single source of truth for every algorithm list in the
   tree) and refactor parity — the registry-driven figure/compare
   pipelines must reproduce, byte for byte, the digests captured on
   the pre-refactor tree, at every worker count. *)

open Tmedb
open Tmedb_prelude

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let names planners = List.map Planner.name planners

(* ------------------------------------------------------------------ *)
(* Registry invariants *)

let test_registry_names_unique () =
  let sorted = List.sort_uniq String.compare (names Registry.all) in
  check_int "no duplicate names" (List.length Registry.all) (List.length sorted)

let test_registry_find_roundtrip () =
  List.iter
    (fun p ->
      match Registry.find (Planner.name p) with
      | Ok p' -> check_string "find(name p) = p" (Planner.name p) (Planner.name p')
      | Error e -> Alcotest.fail e)
    Registry.all

let test_registry_find_is_lenient () =
  List.iter
    (fun (query, expected) ->
      match Registry.find query with
      | Ok p -> check_string query expected (Planner.name p)
      | Error e -> Alcotest.fail e)
    [
      ("eedcb", "EEDCB");
      ("fr-eedcb", "FR-EEDCB");
      ("FR_EEDCB", "FR-EEDCB");
      ("fr_greed", "FR-GREED");
      ("Rand", "RAND");
      ("bip", "BIP");
    ];
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  (match Registry.find "nonsense" with
  | Error msg ->
      (* The error names the known planners, so a CLI typo is self-correcting. *)
      check_bool "error lists known names" true
        (List.for_all (fun n -> contains msg n) (names Registry.all))
  | Ok _ -> Alcotest.fail "expected an error for an unknown name")

let test_registry_channel_partition () =
  check_int "paper planners" 6 (List.length Registry.paper);
  Alcotest.(check (list string))
    "static trio" [ "EEDCB"; "GREED"; "RAND" ]
    (names (Registry.with_channel `Static));
  Alcotest.(check (list string))
    "fading trio"
    [ "FR-EEDCB"; "FR-GREED"; "FR-RAND" ]
    (names (Registry.with_channel `Fading));
  (* Extras (BIP) ride in [all] but never perturb the figure lists. *)
  check_bool "BIP registered" true (List.mem "BIP" (names Registry.all));
  check_bool "BIP not in the paper list" false (List.mem "BIP" (names Registry.paper));
  List.iter
    (fun p ->
      let expected = p.Planner.info.Planner.channel = `Fading in
      check_bool (Planner.name p) expected (Planner.is_fading p))
    Registry.all

let test_experiment_mirrors_registry () =
  (* Experiment's algorithm surface is the registry, not a private copy. *)
  Alcotest.(check (list string))
    "all_algorithms = Registry.paper" (names Registry.paper)
    (List.map Experiment.algorithm_name Experiment.all_algorithms);
  match Experiment.algorithm_of_string "BIP" with
  | Ok p -> check_string "extras resolve via Experiment too" "BIP" (Experiment.algorithm_name p)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Refactor parity: the digests below were captured on the
   pre-refactor tree (variant-dispatch Experiment.run_alg) with this
   exact recipe, at jobs = 1, 2 and 4.  The registry-backed pipeline
   must reproduce them byte for byte. *)

let fig6_golden = "9272b1e625a36a40bf35c0bcf64c2e0a"
let compare_golden = "a5e2396c152a6d3e0db84fef3748e36b"

let tiny =
  {
    Experiment.default_config with
    Experiment.n = 10;
    horizon = 6000.;
    deadline = 1500.;
    sources = 1;
    mc_trials = 60;
  }

let f17 = Printf.sprintf "%.17g"

let with_pool jobs f =
  if jobs <= 1 then f None
  else begin
    let pool = Pool.create ~num_domains:jobs () in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f (Some pool))
  end

let fig6_digest ?(config = tiny) ~jobs () =
  with_pool jobs @@ fun pool ->
  let energy, delivery = Experiment.fig6 ~config ?pool ~ns:[ 8; 10 ] () in
  let fingerprint series =
    List.concat_map
      (fun s ->
        s.Experiment.label
        :: List.concat_map (fun (x, y) -> [ f17 x; f17 y ]) s.Experiment.points)
      series
  in
  Digest.to_hex (Digest.string (String.concat "\n" (fingerprint energy @ fingerprint delivery)))

let compare_digest ~jobs =
  with_pool jobs @@ fun pool ->
  let trace = Experiment.make_trace tiny ~n:tiny.Experiment.n in
  let deadline = tiny.Experiment.deadline in
  let source = List.hd (Experiment.choose_sources tiny ~trace ~deadline) in
  let rows =
    List.map
      (fun algorithm ->
        let rng = Rng.create tiny.Experiment.seed in
        let result = Experiment.run_alg tiny ~trace ~source ~deadline ~rng algorithm in
        let eval = Experiment.make_problem tiny ~trace ~channel:`Rayleigh ~source ~deadline in
        let sim =
          Simulate.run ~trials:60 ?pool ~rng ~eval_channel:`Rayleigh eval
            result.Experiment.schedule
        in
        String.concat ","
          [
            Experiment.algorithm_name algorithm;
            f17 result.Experiment.energy;
            string_of_int (Schedule.num_transmissions result.Experiment.schedule);
            f17 sim.Simulate.delivery_ratio;
            string_of_bool result.Experiment.feasible;
          ])
      Experiment.all_algorithms
  in
  Digest.to_hex (Digest.string (String.concat "\n" rows))

let test_fig6_parity () =
  List.iter
    (fun jobs ->
      check_string (Printf.sprintf "fig6 digest jobs=%d" jobs) fig6_golden (fig6_digest ~jobs ()))
    [ 1; 2; 4 ]

let test_compare_parity () =
  List.iter
    (fun jobs ->
      check_string
        (Printf.sprintf "compare digest jobs=%d" jobs)
        compare_golden (compare_digest ~jobs))
    [ 1; 2; 4 ]

(* Lazy auxiliary-graph expansion is a pure representation change:
   the very same golden digest must come out with [aux_lazy = true],
   serial and parallel alike. *)
let test_fig6_lazy_parity () =
  List.iter
    (fun jobs ->
      check_string
        (Printf.sprintf "fig6 lazy digest jobs=%d" jobs)
        fig6_golden
        (fig6_digest ~config:{ tiny with Experiment.aux_lazy = true } ~jobs ()))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Outcome plumbing: artifacts survive the registry round-trip. *)

let test_outcome_artifacts () =
  let trace = Experiment.make_trace tiny ~n:tiny.Experiment.n in
  let problem = Experiment.make_problem tiny ~trace ~channel:`Static ~source:0 ~deadline:1500. in
  let eedcb =
    match Registry.find "EEDCB" with Ok p -> p | Error e -> Alcotest.fail e
  in
  let outcome = Planner.run eedcb problem in
  check_bool "EEDCB exposes a Steiner tree cost" true
    (Option.is_some (Planner.Outcome.tree_cost outcome));
  let fading = Experiment.make_problem tiny ~trace ~channel:`Rayleigh ~source:0 ~deadline:1500. in
  let fr =
    match Registry.find "FR-EEDCB" with Ok p -> p | Error e -> Alcotest.fail e
  in
  let outcome = Planner.run fr fading in
  check_bool "FR exposes its backbone" true (Option.is_some (Planner.Outcome.backbone outcome));
  check_bool "FR exposes its allocation" true
    (Option.is_some (Planner.Outcome.allocation outcome))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "planner"
    [
      ( "registry",
        [
          tc "names unique" test_registry_names_unique;
          tc "find roundtrip" test_registry_find_roundtrip;
          tc "find lenient" test_registry_find_is_lenient;
          tc "channel partition" test_registry_channel_partition;
          tc "experiment mirrors registry" test_experiment_mirrors_registry;
        ] );
      ( "parity",
        [
          slow "fig6 digests pre-refactor golden" test_fig6_parity;
          slow "compare digests pre-refactor golden" test_compare_parity;
          slow "fig6 digests lazy aux graph" test_fig6_lazy_parity;
        ] );
      ("outcome", [ slow "artifacts round-trip" test_outcome_artifacts ]);
    ]
