(* Tests for the lib/obs telemetry registry: counter/timer/span
   semantics, deterministic merge of the per-domain span buffers at
   several worker counts, JSON export round-trips through the in-repo
   parser, and the zero-overhead disabled path. *)

open Tmedb_prelude

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* The registry is process-global; run every test from a clean, known
   state and leave telemetry off for whoever runs next. *)
let scrubbed f () =
  Tmedb_obs.reset ();
  Tmedb_obs.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Tmedb_obs.set_enabled false;
      Tmedb_obs.reset ())

(* ------------------------------------------------------------------ *)
(* Counter / timer semantics *)

let test_counter_semantics =
  scrubbed @@ fun () ->
  let c = Tmedb_obs.Counter.make "test.obs.counter" in
  check_string "name" "test.obs.counter" (Tmedb_obs.Counter.name c);
  Tmedb_obs.Counter.incr c;
  Tmedb_obs.Counter.add c 40;
  (* Registration is idempotent: a second handle for the same name
     observes and feeds the same cell. *)
  let c' = Tmedb_obs.Counter.make "test.obs.counter" in
  Tmedb_obs.Counter.incr c';
  check_int "same cell through both handles" 42 (Tmedb_obs.Counter.value c);
  Tmedb_obs.set_enabled false;
  Tmedb_obs.Counter.incr c;
  Tmedb_obs.Counter.add c 99;
  check_int "disabled bumps are no-ops" 42 (Tmedb_obs.Counter.value c);
  Tmedb_obs.set_enabled true;
  Tmedb_obs.reset ();
  check_int "reset zeroes" 0 (Tmedb_obs.Counter.value c);
  let snap = Tmedb_obs.snapshot () in
  check_bool "reset keeps the registration" true
    (List.mem_assoc "test.obs.counter" snap.Tmedb_obs.counters)

let test_timer_semantics =
  scrubbed @@ fun () ->
  let t = Tmedb_obs.Timer.make "test.obs.timer" in
  check_string "name" "test.obs.timer" (Tmedb_obs.Timer.name t);
  let r =
    Tmedb_obs.Timer.time t (fun () ->
        Unix.sleepf 0.01;
        17)
  in
  check_int "time returns f's result" 17 r;
  check_int "one hit" 1 (Tmedb_obs.Timer.count t);
  check_bool "accumulated the sleep" true (Tmedb_obs.Timer.total_seconds t >= 0.005);
  (try Tmedb_obs.Timer.time t (fun () -> failwith "boom") with Failure _ -> ());
  check_int "pair closes on exception" 2 (Tmedb_obs.Timer.count t);
  Tmedb_obs.set_enabled false;
  let h = Tmedb_obs.Timer.start t in
  check_bool "disabled start returns the 0. sentinel" true (Float.equal h 0.);
  Tmedb_obs.Timer.stop t h;
  check_int "disabled stop records nothing" 2 (Tmedb_obs.Timer.count t)

(* ------------------------------------------------------------------ *)
(* Span semantics on one domain *)

let test_span_semantics =
  scrubbed @@ fun () ->
  Tmedb_obs.Span.with_ ~args:[ ("k", "v") ] "outer" (fun () ->
      Tmedb_obs.Span.with_ "inner" (fun () -> ()));
  (try Tmedb_obs.Span.with_ "raises" (fun () -> failwith "boom") with Failure _ -> ());
  Tmedb_obs.set_enabled false;
  Tmedb_obs.Span.with_ "invisible" (fun () -> ());
  Tmedb_obs.set_enabled true;
  let evs = Tmedb_obs.events () in
  let shape = List.map (fun e -> (e.Tmedb_obs.name, e.Tmedb_obs.phase)) evs in
  check_bool "nesting preserved, disabled span absent" true
    (shape
    = [
        ("outer", Tmedb_obs.Begin);
        ("inner", Tmedb_obs.Begin);
        ("inner", Tmedb_obs.End);
        ("outer", Tmedb_obs.End);
        ("raises", Tmedb_obs.Begin);
        ("raises", Tmedb_obs.End);
      ]);
  (match evs with
  | first :: _ -> check_bool "args ride the Begin event" true (first.Tmedb_obs.args = [ ("k", "v") ])
  | [] -> Alcotest.fail "no events recorded");
  List.iteri (fun i e -> check_int "seq dense from 0 after reset" i e.Tmedb_obs.seq) evs;
  check_bool "timestamps at or after origin" true
    (List.for_all (fun e -> e.Tmedb_obs.ts >= Tmedb_obs.origin ()) evs)

(* ------------------------------------------------------------------ *)
(* Deterministic merge across worker counts *)

let test_merge_determinism =
  scrubbed @@ fun () ->
  let c = Tmedb_obs.Counter.make "test.obs.work" in
  let n = 64 in
  let workload pool =
    Pool.map pool
      (fun i ->
        Tmedb_obs.Span.with_ "test.obs.task" ~args:[ ("i", string_of_int i) ] (fun () ->
            Tmedb_obs.Counter.add c i;
            i * i))
      (Array.init n Fun.id)
  in
  let expected_result = Array.init n (fun i -> i * i) in
  let totals =
    List.map
      (fun k ->
        Tmedb_obs.reset ();
        let result =
          if k = 1 then workload None
          else Pool.with_pool ~num_domains:k (fun pool -> workload (Some pool))
        in
        check_bool (Printf.sprintf "results jobs=%d" k) true (result = expected_result);
        let evs = Tmedb_obs.events () in
        let keys = List.map (fun e -> (e.Tmedb_obs.domain, e.Tmedb_obs.seq)) evs in
        check_bool
          (Printf.sprintf "merge ordered by (domain, seq) jobs=%d" k)
          true
          (keys = List.sort compare keys);
        let begins =
          List.length (List.filter (fun e -> e.Tmedb_obs.phase = Tmedb_obs.Begin) evs)
        in
        check_int (Printf.sprintf "one Begin per task jobs=%d" k) n begins;
        check_int (Printf.sprintf "balanced End count jobs=%d" k) n (List.length evs - begins);
        Tmedb_obs.Counter.value c)
      [ 1; 2; 4 ]
  in
  match totals with
  | reference :: rest ->
      check_int "reference total" (n * (n - 1) / 2) reference;
      List.iter (fun total -> check_int "counter total jobs-invariant" reference total) rest
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* JSON export round-trips through Tmedb_prelude.Json *)

let test_json_round_trip =
  scrubbed @@ fun () ->
  let c = Tmedb_obs.Counter.make "test.obs.rt" in
  Tmedb_obs.Counter.add c 7;
  let t = Tmedb_obs.Timer.make "test.obs.rt_timer" in
  Tmedb_obs.Timer.time t (fun () -> ());
  Tmedb_obs.Span.with_ "test.obs.rt_span" ~args:[ ("x", "1") ] (fun () -> ());
  (match Json.parse (Json.to_string (Obs_json.metrics ())) with
  | Error e -> Alcotest.fail ("metrics does not parse: " ^ e)
  | Ok doc ->
      check_bool "schema marker" true
        (Json.member "schema" doc = Some (Json.Str "tmedb.metrics/1"));
      let counter_value =
        Option.bind (Json.member "counters" doc) (Json.member "test.obs.rt")
        |> Fun.flip Option.bind Json.to_float
      in
      check_bool "counter survives the round trip" true (counter_value = Some 7.);
      let timer_hits =
        Option.bind (Json.member "timers" doc) (Json.member "test.obs.rt_timer")
        |> Fun.flip Option.bind (Json.member "count")
        |> Fun.flip Option.bind Json.to_float
      in
      check_bool "timer hit count survives" true (timer_hits = Some 1.));
  match Json.parse (Json.to_string ~indent:0 (Obs_json.trace ())) with
  | Error e -> Alcotest.fail ("trace does not parse: " ^ e)
  | Ok doc -> (
      check_bool "display unit" true (Json.member "displayTimeUnit" doc = Some (Json.Str "ms"));
      match Option.bind (Json.member "traceEvents" doc) Json.to_list with
      | None -> Alcotest.fail "traceEvents missing"
      | Some rows ->
          check_int "one B and one E" 2 (List.length rows);
          let phases = List.filter_map (Json.member "ph") rows in
          check_bool "Chrome phases" true (phases = [ Json.Str "B"; Json.Str "E" ]);
          check_bool "every event carries name/pid/tid/ts" true
            (List.for_all
               (fun row ->
                 List.for_all
                   (fun key -> Json.member key row <> None)
                   [ "name"; "cat"; "pid"; "tid"; "ts" ])
               rows);
          let ts =
            List.filter_map (fun row -> Option.bind (Json.member "ts" row) Json.to_float) rows
          in
          check_bool "timestamps non-negative and monotone" true
            (match ts with [ b; e ] -> b >= 0. && e >= b | _ -> false))

(* ------------------------------------------------------------------ *)
(* Disabled path: a flag check, not an allocation site *)

let test_disabled_path_allocation_free () =
  Tmedb_obs.set_enabled false;
  let c = Tmedb_obs.Counter.make "test.obs.noalloc" in
  let t = Tmedb_obs.Timer.make "test.obs.noalloc_timer" in
  let iters = 100_000 in
  for _ = 1 to 1_000 do
    Tmedb_obs.Counter.incr c
  done;
  let before = Gc.minor_words () in
  for _ = 1 to iters do
    Tmedb_obs.Counter.incr c;
    Tmedb_obs.Counter.add c 3;
    Tmedb_obs.Span.with_ "test.obs.noalloc_span" (fun () -> ())
  done;
  let counter_delta = Gc.minor_words () -. before in
  (* Counters and disabled spans take the flag-check branch only; a
     few thousand words of slack covers Gc bookkeeping noise. *)
  check_bool
    (Printf.sprintf "counter/span loop allocates ~nothing (%.0f words)" counter_delta)
    true
    (counter_delta < 10_000.);
  let before = Gc.minor_words () in
  for _ = 1 to iters do
    let h = Tmedb_obs.Timer.start t in
    Tmedb_obs.Timer.stop t h
  done;
  let timer_delta = Gc.minor_words () -. before in
  (* Timer.start returns a float, which closure-compiled code may box:
     allow a handful of words per iteration but nothing beyond. *)
  check_bool
    (Printf.sprintf "timer loop stays within boxing (%.0f words)" timer_delta)
    true
    (timer_delta < (8. *. float_of_int iters) +. 10_000.);
  check_int "nothing was recorded" 0 (Tmedb_obs.Counter.value c);
  check_int "no timer hits" 0 (Tmedb_obs.Timer.count t);
  check_bool "no span events" true
    (not
       (List.exists
          (fun e -> e.Tmedb_obs.name = "test.obs.noalloc_span")
          (Tmedb_obs.events ())))

(* ------------------------------------------------------------------ *)
(* Telemetry observes, never steers: identical results on and off *)

let test_results_identical_on_off () =
  let open Tmedb in
  let config =
    {
      Experiment.default_config with
      Experiment.n = 8;
      horizon = 5000.;
      deadline = 1200.;
      sources = 1;
      mc_trials = 40;
      dts_cap = 400;
    }
  in
  let trace = Experiment.make_trace config ~n:8 in
  let run () =
    Experiment.run_alg config ~trace ~source:0 ~deadline:1200. ~rng:(Rng.create 5)
      Experiment.EEDCB
  in
  Tmedb_obs.reset ();
  Tmedb_obs.set_enabled false;
  let off = run () in
  Tmedb_obs.set_enabled true;
  let on =
    Fun.protect run ~finally:(fun () ->
        Tmedb_obs.set_enabled false;
        Tmedb_obs.reset ())
  in
  check_bool "energy identical" true (Float.equal off.Experiment.energy on.Experiment.energy);
  check_bool "feasibility identical" true (off.Experiment.feasible = on.Experiment.feasible)

(* The metrics snapshot must be byte-stable: counters and timers come
   out name-sorted no matter the registration order, so a [--metrics]
   file diffs cleanly between runs (and lint rule R1 never has a
   hash-order leak to flag here). *)
let test_snapshot_sorted_and_byte_stable =
  scrubbed @@ fun () ->
  (* Register in decidedly non-alphabetical order. *)
  List.iter
    (fun name -> Tmedb_obs.Counter.add (Tmedb_obs.Counter.make name) 1)
    [ "test.obs.zeta"; "test.obs.alpha"; "test.obs.mid" ];
  List.iter
    (fun name -> ignore (Tmedb_obs.Timer.start (Tmedb_obs.Timer.make name)))
    [ "test.obs.t_omega"; "test.obs.t_aleph" ];
  let snap = Tmedb_obs.snapshot () in
  let counter_names = List.map fst snap.Tmedb_obs.counters in
  let timer_names = List.map (fun t -> t.Tmedb_obs.timer_name) snap.Tmedb_obs.timers in
  check_bool "counters name-sorted" true
    (counter_names = List.sort String.compare counter_names);
  check_bool "timers name-sorted" true (timer_names = List.sort String.compare timer_names);
  (* Two exports of the same registry state are byte-identical. *)
  let write () =
    let path = Filename.temp_file "tmedb_obs" ".json" in
    Obs_json.write_metrics ~path;
    let ic = open_in_bin path in
    let body =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Sys.remove path;
    body
  in
  check_string "metrics JSON byte-stable" (write ()) (write ())

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "obs"
    [
      ( "registry",
        [
          tc "counter semantics" test_counter_semantics;
          tc "timer semantics" test_timer_semantics;
          tc "span semantics" test_span_semantics;
        ] );
      ( "concurrency",
        [ tc "per-domain buffers merge deterministically" test_merge_determinism ] );
      ( "export",
        [
          tc "metrics and trace round-trip" test_json_round_trip;
          tc "snapshot sorted, metrics byte-stable" test_snapshot_sorted_and_byte_stable;
        ] );
      ( "overhead",
        [
          tc "disabled path is allocation-free" test_disabled_path_allocation_free;
          tc "results identical with telemetry on/off" test_results_identical_on_off;
        ] );
    ]
