(* Tests for the lib/obs telemetry registry: counter/timer/span
   semantics, deterministic merge of the per-domain span buffers at
   several worker counts, JSON export round-trips through the in-repo
   parser, and the zero-overhead disabled path. *)

open Tmedb_prelude

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* The registry is process-global; run every test from a clean, known
   state and leave telemetry off for whoever runs next. *)
let scrubbed f () =
  Tmedb_obs.reset ();
  Tmedb_obs.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Tmedb_obs.set_enabled false;
      Tmedb_obs.reset ())

(* ------------------------------------------------------------------ *)
(* Counter / timer semantics *)

let test_counter_semantics =
  scrubbed @@ fun () ->
  let c = Tmedb_obs.Counter.make "test.obs.counter" in
  check_string "name" "test.obs.counter" (Tmedb_obs.Counter.name c);
  Tmedb_obs.Counter.incr c;
  Tmedb_obs.Counter.add c 40;
  (* Registration is idempotent: a second handle for the same name
     observes and feeds the same cell. *)
  let c' = Tmedb_obs.Counter.make "test.obs.counter" in
  Tmedb_obs.Counter.incr c';
  check_int "same cell through both handles" 42 (Tmedb_obs.Counter.value c);
  Tmedb_obs.set_enabled false;
  Tmedb_obs.Counter.incr c;
  Tmedb_obs.Counter.add c 99;
  check_int "disabled bumps are no-ops" 42 (Tmedb_obs.Counter.value c);
  Tmedb_obs.set_enabled true;
  Tmedb_obs.reset ();
  check_int "reset zeroes" 0 (Tmedb_obs.Counter.value c);
  let snap = Tmedb_obs.snapshot () in
  check_bool "reset keeps the registration" true
    (List.mem_assoc "test.obs.counter" snap.Tmedb_obs.counters)

let test_timer_semantics =
  scrubbed @@ fun () ->
  let t = Tmedb_obs.Timer.make "test.obs.timer" in
  check_string "name" "test.obs.timer" (Tmedb_obs.Timer.name t);
  let r =
    Tmedb_obs.Timer.time t (fun () ->
        Unix.sleepf 0.01;
        17)
  in
  check_int "time returns f's result" 17 r;
  check_int "one hit" 1 (Tmedb_obs.Timer.count t);
  check_bool "accumulated the sleep" true (Tmedb_obs.Timer.total_seconds t >= 0.005);
  (try Tmedb_obs.Timer.time t (fun () -> failwith "boom") with Failure _ -> ());
  check_int "pair closes on exception" 2 (Tmedb_obs.Timer.count t);
  Tmedb_obs.set_enabled false;
  let h = Tmedb_obs.Timer.start t in
  check_bool "disabled start returns the 0. sentinel" true (Float.equal h 0.);
  Tmedb_obs.Timer.stop t h;
  check_int "disabled stop records nothing" 2 (Tmedb_obs.Timer.count t)

let test_histogram_semantics =
  scrubbed @@ fun () ->
  let h = Tmedb_obs.Histogram.make "test.obs.hist" in
  check_string "name" "test.obs.hist" (Tmedb_obs.Histogram.name h);
  check_int "empty count" 0 (Tmedb_obs.Histogram.count h);
  check_int "empty min" 0 (Tmedb_obs.Histogram.min_value h);
  check_int "empty quantile" 0 (Tmedb_obs.Histogram.quantile h 0.5);
  List.iter (Tmedb_obs.Histogram.observe h) [ 0; 1; 2; 3; 100; -5 ];
  (* Registration is idempotent: a second handle feeds the same cells. *)
  Tmedb_obs.Histogram.observe (Tmedb_obs.Histogram.make "test.obs.hist") 7;
  check_int "count" 7 (Tmedb_obs.Histogram.count h);
  check_int "sum (negative clamped to 0)" 113 (Tmedb_obs.Histogram.sum h);
  check_int "min" 0 (Tmedb_obs.Histogram.min_value h);
  check_int "max" 100 (Tmedb_obs.Histogram.max_value h);
  (* Values {0,0,1,2,3,7,100}: rank 4 lands in the [2,3] bucket. *)
  check_int "p50 is the [2,3] bucket's upper edge" 3 (Tmedb_obs.Histogram.quantile h 0.5);
  (* Rank 7 lands in the [64,127] bucket; its upper edge 127 clamps to
     the observed max. *)
  check_int "p90 clamps to max" 100 (Tmedb_obs.Histogram.quantile h 0.9);
  check_int "q=0 clamps to rank 1" 0 (Tmedb_obs.Histogram.quantile h 0.);
  check_int "q past 1 clamps" 100 (Tmedb_obs.Histogram.quantile h 2.);
  Tmedb_obs.set_enabled false;
  Tmedb_obs.Histogram.observe h 999;
  check_int "disabled observe is a no-op" 7 (Tmedb_obs.Histogram.count h);
  Tmedb_obs.set_enabled true;
  Tmedb_obs.reset ();
  check_int "reset zeroes count" 0 (Tmedb_obs.Histogram.count h);
  check_int "reset zeroes sum" 0 (Tmedb_obs.Histogram.sum h);
  check_int "reset zeroes max" 0 (Tmedb_obs.Histogram.max_value h);
  let snap = Tmedb_obs.snapshot () in
  check_bool "reset keeps the registration" true
    (List.exists
       (fun s -> s.Tmedb_obs.hist_name = "test.obs.hist")
       snap.Tmedb_obs.histograms)

(* ------------------------------------------------------------------ *)
(* Span semantics on one domain *)

let test_span_semantics =
  scrubbed @@ fun () ->
  Tmedb_obs.Span.with_ ~args:[ ("k", "v") ] "outer" (fun () ->
      Tmedb_obs.Span.with_ "inner" (fun () -> ()));
  (try Tmedb_obs.Span.with_ "raises" (fun () -> failwith "boom") with Failure _ -> ());
  Tmedb_obs.set_enabled false;
  Tmedb_obs.Span.with_ "invisible" (fun () -> ());
  Tmedb_obs.set_enabled true;
  let evs = Tmedb_obs.events () in
  let shape = List.map (fun e -> (e.Tmedb_obs.name, e.Tmedb_obs.phase)) evs in
  check_bool "nesting preserved, disabled span absent" true
    (shape
    = [
        ("outer", Tmedb_obs.Begin);
        ("inner", Tmedb_obs.Begin);
        ("inner", Tmedb_obs.End);
        ("outer", Tmedb_obs.End);
        ("raises", Tmedb_obs.Begin);
        ("raises", Tmedb_obs.End);
      ]);
  (match evs with
  | first :: _ -> check_bool "args ride the Begin event" true (first.Tmedb_obs.args = [ ("k", "v") ])
  | [] -> Alcotest.fail "no events recorded");
  List.iteri (fun i e -> check_int "seq dense from 0 after reset" i e.Tmedb_obs.seq) evs;
  check_bool "timestamps at or after origin" true
    (List.for_all (fun e -> e.Tmedb_obs.ts >= Tmedb_obs.origin ()) evs)

(* ------------------------------------------------------------------ *)
(* Deterministic merge across worker counts *)

let test_merge_determinism =
  scrubbed @@ fun () ->
  let c = Tmedb_obs.Counter.make "test.obs.work" in
  let n = 64 in
  let workload pool =
    Pool.map pool
      (fun i ->
        Tmedb_obs.Span.with_ "test.obs.task" ~args:[ ("i", string_of_int i) ] (fun () ->
            Tmedb_obs.Counter.add c i;
            i * i))
      (Array.init n Fun.id)
  in
  let expected_result = Array.init n (fun i -> i * i) in
  let totals =
    List.map
      (fun k ->
        Tmedb_obs.reset ();
        let result =
          if k = 1 then workload None
          else Pool.with_pool ~num_domains:k (fun pool -> workload (Some pool))
        in
        check_bool (Printf.sprintf "results jobs=%d" k) true (result = expected_result);
        let evs = Tmedb_obs.events () in
        let keys = List.map (fun e -> (e.Tmedb_obs.domain, e.Tmedb_obs.seq)) evs in
        check_bool
          (Printf.sprintf "merge ordered by (domain, seq) jobs=%d" k)
          true
          (keys = List.sort compare keys);
        (* The pool contributes its own pool.task / pool.steal spans
           when recording (profile attribution), so count the user
           span by name and require overall Begin/End balance. *)
        let begins =
          List.length (List.filter (fun e -> e.Tmedb_obs.phase = Tmedb_obs.Begin) evs)
        in
        let task_begins =
          List.length
            (List.filter
               (fun e ->
                 e.Tmedb_obs.phase = Tmedb_obs.Begin
                 && String.equal e.Tmedb_obs.name "test.obs.task")
               evs)
        in
        check_int (Printf.sprintf "one Begin per task jobs=%d" k) n task_begins;
        check_int
          (Printf.sprintf "balanced End count jobs=%d" k)
          begins
          (List.length evs - begins);
        Tmedb_obs.Counter.value c)
      [ 1; 2; 4 ]
  in
  match totals with
  | reference :: rest ->
      check_int "reference total" (n * (n - 1) / 2) reference;
      List.iter (fun total -> check_int "counter total jobs-invariant" reference total) rest
  | [] -> ()

(* Histograms share the counters' merge discipline (Atomic buckets):
   the full summary must be identical at any worker count. *)
let test_histogram_merge_determinism =
  scrubbed @@ fun () ->
  let h = Tmedb_obs.Histogram.make "test.obs.hist_par" in
  let n = 256 in
  let workload pool =
    ignore
      (Pool.map pool
         (fun i ->
           Tmedb_obs.Histogram.observe h i;
           i)
         (Array.init n Fun.id))
  in
  let summary_at k =
    Tmedb_obs.reset ();
    (if k = 1 then workload None
     else Pool.with_pool ~num_domains:k (fun pool -> workload (Some pool)));
    Tmedb_obs.Histogram.
      ( count h,
        sum h,
        min_value h,
        max_value h,
        quantile h 0.5,
        quantile h 0.9,
        quantile h 0.99 )
  in
  match List.map summary_at [ 1; 2; 4 ] with
  | reference :: rest ->
      check_bool "reference summary over 0..255" true
        (reference = (n, n * (n - 1) / 2, 0, n - 1, 127, 255, 255));
      List.iteri
        (fun i s ->
          check_bool (Printf.sprintf "summary jobs-invariant (%d)" i) true (s = reference))
        rest
  | [] -> ()

(* Registry flag toggles mid-span, across domains: an End event is
   routed to the stream iff its Begin was, so every domain's buffer
   stays Begin/End-balanced whatever the interleaving of toggles and
   open spans on workers and the drain-helping caller. *)
let test_mid_span_toggle_balance_multi_domain =
  scrubbed @@ fun () ->
  let workload pool =
    ignore
      (Pool.map pool
         (fun i ->
           Tmedb_obs.Span.with_ "test.obs.toggled"
             ~args:[ ("i", string_of_int i) ]
             (fun () ->
               (* Flip the registry while this span (and its enclosing
                  pool.task span) is open on this domain. *)
               Tmedb_obs.set_enabled (i land 1 = 0);
               Tmedb_obs.Span.with_ "test.obs.toggled_inner" (fun () ->
                   Tmedb_obs.set_enabled (i land 3 < 2));
               i))
         (Array.init 64 Fun.id))
  in
  Pool.with_pool ~num_domains:4 (fun pool -> workload (Some pool));
  Tmedb_obs.set_enabled true;
  let evs = Tmedb_obs.events () in
  check_bool "some events survived the toggling" true (evs <> []);
  (* Replay each domain's stream against a name stack: every End must
     match the innermost streamed Begin, and every stack must drain. *)
  let stacks = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let st = Option.value (Hashtbl.find_opt stacks e.Tmedb_obs.domain) ~default:[] in
      match e.Tmedb_obs.phase with
      | Tmedb_obs.Begin -> Hashtbl.replace stacks e.Tmedb_obs.domain (e.Tmedb_obs.name :: st)
      | Tmedb_obs.End -> (
          match st with
          | top :: rest when String.equal top e.Tmedb_obs.name ->
              Hashtbl.replace stacks e.Tmedb_obs.domain rest
          | _ ->
              Alcotest.failf "domain %d: End %S does not match its Begin"
                e.Tmedb_obs.domain e.Tmedb_obs.name))
    evs;
  Hashtbl.iter
    (fun dom st ->
      check_int (Printf.sprintf "domain %d buffer drains to balance" dom) 0 (List.length st))
    stacks

(* ------------------------------------------------------------------ *)
(* Flight recorder: bounded rings, baseline, independence from the
   stream flag *)

let test_flight_ring_semantics =
  scrubbed @@ fun () ->
  let c = Tmedb_obs.Counter.make "test.obs.flight" in
  Tmedb_obs.Counter.add c 5;
  Tmedb_obs.Flight.arm ~capacity:8 ();
  check_bool "armed" true (Tmedb_obs.Flight.armed ());
  check_int "capacity" 8 (Tmedb_obs.Flight.capacity ());
  check_bool "baseline snapshots counters at arm time" true
    (List.assoc_opt "test.obs.flight" (Tmedb_obs.Flight.baseline ()) = Some 5);
  for i = 1 to 50 do
    Tmedb_obs.Span.with_ "test.obs.ring" ~args:[ ("i", string_of_int i) ] (fun () -> ())
  done;
  let recent = Tmedb_obs.Flight.recent () in
  check_int "ring bounded at capacity" 8 (List.length recent);
  let seqs = List.map (fun e -> e.Tmedb_obs.seq) recent in
  check_bool "oldest-first within the ring" true (seqs = List.sort compare seqs);
  (* The ring keeps the *latest* events: its newest seq matches the
     stream's newest seq on this domain. *)
  let stream_max =
    List.fold_left (fun m e -> Stdlib.max m e.Tmedb_obs.seq) (-1) (Tmedb_obs.events ())
  in
  check_int "ring holds the most recent events" stream_max
    (List.fold_left (fun m s -> Stdlib.max m s) (-1) seqs);
  Tmedb_obs.Flight.disarm ();
  check_bool "disarmed" false (Tmedb_obs.Flight.armed ());
  check_bool "ring contents survive disarm" true (Tmedb_obs.Flight.recent () <> []);
  Tmedb_obs.reset ();
  check_bool "reset clears the rings" true (Tmedb_obs.Flight.recent () = []);
  check_bool "reset clears the baseline" true (Tmedb_obs.Flight.baseline () = [])

let test_armed_only_skips_stream =
  scrubbed @@ fun () ->
  Tmedb_obs.set_enabled false;
  Tmedb_obs.Flight.arm ~capacity:16 ();
  for _ = 1 to 40 do
    Tmedb_obs.Span.with_ "test.obs.armed_only" (fun () -> ())
  done;
  check_bool "armed-only recording never grows the stream" true (Tmedb_obs.events () = []);
  check_int "but the ring saw the latest events" 16
    (List.length (Tmedb_obs.Flight.recent ()));
  (* Counters record while armed (the crash dump snapshots them). *)
  let c = Tmedb_obs.Counter.make "test.obs.armed_counter" in
  Tmedb_obs.Counter.add c 2;
  check_int "counters record while armed" 2 (Tmedb_obs.Counter.value c);
  Tmedb_obs.Flight.disarm ();
  Tmedb_obs.Counter.add c 2;
  check_int "disarmed+disabled is a no-op again" 2 (Tmedb_obs.Counter.value c)

(* ------------------------------------------------------------------ *)
(* Per-span Gc allocation deltas *)

let test_span_alloc_deltas =
  scrubbed @@ fun () ->
  Tmedb_obs.Span.with_ "test.obs.allocspan" (fun () ->
      for i = 1 to 1000 do
        ignore (Sys.opaque_identity (ref (float_of_int i)))
      done);
  Tmedb_obs.Span.with_ "test.obs.allocspan" (fun () -> ());
  List.iter
    (fun e ->
      match e.Tmedb_obs.phase with
      | Tmedb_obs.Begin -> check_bool "no delta on Begin" true (e.Tmedb_obs.alloc = None)
      | Tmedb_obs.End -> check_bool "delta on every End" true (e.Tmedb_obs.alloc <> None))
    (Tmedb_obs.events ());
  let snap = Tmedb_obs.snapshot () in
  match
    List.find_opt
      (fun a -> a.Tmedb_obs.span_name = "test.obs.allocspan")
      snap.Tmedb_obs.span_allocs
  with
  | None -> Alcotest.fail "span alloc row missing from snapshot"
  | Some a ->
      check_int "two closed spans" 2 a.Tmedb_obs.span_count;
      (* 1000 boxed-float refs are at least 2 words each, all on the
         minor heap. *)
      check_bool "allocations captured" true (a.Tmedb_obs.minor_total >= 2000.);
      check_bool "major words non-negative" true (a.Tmedb_obs.major_total >= 0.)

(* ------------------------------------------------------------------ *)
(* JSON export round-trips through Tmedb_prelude.Json *)

let test_json_round_trip =
  scrubbed @@ fun () ->
  let c = Tmedb_obs.Counter.make "test.obs.rt" in
  Tmedb_obs.Counter.add c 7;
  let t = Tmedb_obs.Timer.make "test.obs.rt_timer" in
  Tmedb_obs.Timer.time t (fun () -> ());
  Tmedb_obs.Span.with_ "test.obs.rt_span" ~args:[ ("x", "1") ] (fun () -> ());
  (match Json.parse (Json.to_string (Obs_json.metrics ())) with
  | Error e -> Alcotest.fail ("metrics does not parse: " ^ e)
  | Ok doc ->
      check_bool "schema marker" true
        (Json.member "schema" doc = Some (Json.Str "tmedb.metrics/1"));
      let counter_value =
        Option.bind (Json.member "counters" doc) (Json.member "test.obs.rt")
        |> Fun.flip Option.bind Json.to_float
      in
      check_bool "counter survives the round trip" true (counter_value = Some 7.);
      let timer_hits =
        Option.bind (Json.member "timers" doc) (Json.member "test.obs.rt_timer")
        |> Fun.flip Option.bind (Json.member "count")
        |> Fun.flip Option.bind Json.to_float
      in
      check_bool "timer hit count survives" true (timer_hits = Some 1.));
  match Json.parse (Json.to_string ~indent:0 (Obs_json.trace ())) with
  | Error e -> Alcotest.fail ("trace does not parse: " ^ e)
  | Ok doc -> (
      check_bool "display unit" true (Json.member "displayTimeUnit" doc = Some (Json.Str "ms"));
      match Option.bind (Json.member "traceEvents" doc) Json.to_list with
      | None -> Alcotest.fail "traceEvents missing"
      | Some rows ->
          (* One thread_name metadata row for the recording domain,
             then the span's B and E. *)
          check_int "one metadata row plus one B and one E" 3 (List.length rows);
          let phases = List.filter_map (Json.member "ph") rows in
          check_bool "Chrome phases" true
            (phases = [ Json.Str "M"; Json.Str "B"; Json.Str "E" ]);
          let rows =
            List.filter (fun r -> Json.member "ph" r <> Some (Json.Str "M")) rows
          in
          check_bool "every event carries name/pid/tid/ts" true
            (List.for_all
               (fun row ->
                 List.for_all
                   (fun key -> Json.member key row <> None)
                   [ "name"; "cat"; "pid"; "tid"; "ts" ])
               rows);
          let ts =
            List.filter_map (fun row -> Option.bind (Json.member "ts" row) Json.to_float) rows
          in
          check_bool "timestamps non-negative and monotone" true
            (match ts with [ b; e ] -> b >= 0. && e >= b | _ -> false))

(* Span attribute values are free-form: quotes, backslashes, control
   characters and invalid UTF-8 must all survive the trace export as
   valid JSON and round-trip through the in-repo parser (invalid bytes
   land as U+FFFD, per the Json emitter's contract). *)
let test_span_args_escaping_round_trip =
  scrubbed @@ fun () ->
  let evil = "q\"uote back\\slash nl\n tab\t cr\r ctrl\x01 utf\xe2\x9c\x93 bad\xff\xfe." in
  let expected =
    "q\"uote back\\slash nl\n tab\t cr\r ctrl\x01 utf\xe2\x9c\x93 \
     bad\xef\xbf\xbd\xef\xbf\xbd."
  in
  Tmedb_obs.Span.with_ "test.obs.escape" ~args:[ ("k\"ey\n", evil) ] (fun () -> ());
  match Json.parse (Json.to_string ~indent:0 (Obs_json.trace ())) with
  | Error e -> Alcotest.fail ("trace with evil args does not parse: " ^ e)
  | Ok doc -> (
      let rows = Option.value (Option.bind (Json.member "traceEvents" doc) Json.to_list) ~default:[] in
      match
        List.find_opt (fun r -> Json.member "name" r = Some (Json.Str "test.obs.escape")) rows
      with
      | None -> Alcotest.fail "escaped span row missing"
      | Some row ->
          check_bool "attribute value round-trips (invalid bytes as U+FFFD)" true
            (Option.bind (Json.member "args" row) (Json.member "k\"ey\n")
            = Some (Json.Str expected)))

(* Chrome trace lanes: domains map to stable dense tids with a
   thread_name metadata row each, timestamps are monotone per lane,
   B/E balance per lane, and End events carry their alloc deltas as
   args — pinned at jobs 1, 2 and 4 over the (domain, seq) merge. *)
let test_chrome_trace_lanes_jobs =
  scrubbed @@ fun () ->
  let workload pool =
    ignore
      (Pool.map pool
         (fun i ->
           Tmedb_obs.Span.with_ "test.obs.lane" ~args:[ ("i", string_of_int i) ] (fun () ->
               i * 2))
         (Array.init 48 Fun.id))
  in
  List.iter
    (fun k ->
      Tmedb_obs.reset ();
      (if k = 1 then workload None
       else Pool.with_pool ~num_domains:k (fun pool -> workload (Some pool)));
      let evs = Tmedb_obs.events () in
      let keys = List.map (fun e -> (e.Tmedb_obs.domain, e.Tmedb_obs.seq)) evs in
      check_bool
        (Printf.sprintf "(domain, seq) merge order jobs=%d" k)
        true
        (keys = List.sort compare keys);
      match Json.parse (Json.to_string ~indent:0 (Obs_json.trace_of_events evs)) with
      | Error e -> Alcotest.fail ("trace does not parse: " ^ e)
      | Ok doc ->
          let rows =
            Option.value (Option.bind (Json.member "traceEvents" doc) Json.to_list) ~default:[]
          in
          let metas, events =
            List.partition (fun r -> Json.member "ph" r = Some (Json.Str "M")) rows
          in
          let tid_of r =
            match Option.bind (Json.member "tid" r) Json.to_float with
            | Some t -> int_of_float t
            | None -> Alcotest.fail "row without tid"
          in
          let tids = List.sort_uniq compare (List.map tid_of events) in
          check_bool
            (Printf.sprintf "tid lanes dense from 0 jobs=%d" k)
            true
            (tids = List.init (List.length tids) Fun.id);
          check_int
            (Printf.sprintf "one thread_name row per lane jobs=%d" k)
            (List.length tids) (List.length metas);
          check_bool
            (Printf.sprintf "metadata rows label lanes jobs=%d" k)
            true
            (List.for_all
               (fun m -> Json.member "name" m = Some (Json.Str "thread_name"))
               metas);
          List.iter
            (fun tid ->
              let lane = List.filter (fun r -> tid_of r = tid) events in
              let ts =
                List.filter_map (fun r -> Option.bind (Json.member "ts" r) Json.to_float) lane
              in
              check_bool
                (Printf.sprintf "lane %d timestamps monotone jobs=%d" tid k)
                true
                (ts = List.sort compare ts);
              let begins, ends =
                List.partition (fun r -> Json.member "ph" r = Some (Json.Str "B")) lane
              in
              check_int
                (Printf.sprintf "lane %d balanced B/E jobs=%d" tid k)
                (List.length begins) (List.length ends);
              check_bool
                (Printf.sprintf "lane %d End events carry alloc deltas jobs=%d" tid k)
                true
                (List.for_all
                   (fun r ->
                     Option.bind (Json.member "args" r) (Json.member "minor_words") <> None
                     && Option.bind (Json.member "args" r) (Json.member "major_words")
                        <> None)
                   ends))
            tids)
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Disabled path: a flag check, not an allocation site *)

let test_disabled_path_allocation_free () =
  Tmedb_obs.set_enabled false;
  let c = Tmedb_obs.Counter.make "test.obs.noalloc" in
  let t = Tmedb_obs.Timer.make "test.obs.noalloc_timer" in
  let h = Tmedb_obs.Histogram.make "test.obs.noalloc_hist" in
  let iters = 100_000 in
  for _ = 1 to 1_000 do
    Tmedb_obs.Counter.incr c
  done;
  let before = Gc.minor_words () in
  for i = 1 to iters do
    Tmedb_obs.Counter.incr c;
    Tmedb_obs.Counter.add c 3;
    Tmedb_obs.Histogram.observe h i;
    Tmedb_obs.Span.with_ "test.obs.noalloc_span" (fun () -> ())
  done;
  let counter_delta = Gc.minor_words () -. before in
  (* Counters, histogram observes and disabled spans take the
     flag-check branch only; a few thousand words of slack covers Gc
     bookkeeping noise. *)
  check_bool
    (Printf.sprintf "counter/histogram/span loop allocates ~nothing (%.0f words)" counter_delta)
    true
    (counter_delta < 10_000.);
  let before = Gc.minor_words () in
  for _ = 1 to iters do
    let h = Tmedb_obs.Timer.start t in
    Tmedb_obs.Timer.stop t h
  done;
  let timer_delta = Gc.minor_words () -. before in
  (* Timer.start returns a float, which closure-compiled code may box:
     allow a handful of words per iteration but nothing beyond. *)
  check_bool
    (Printf.sprintf "timer loop stays within boxing (%.0f words)" timer_delta)
    true
    (timer_delta < (8. *. float_of_int iters) +. 10_000.);
  check_int "nothing was recorded" 0 (Tmedb_obs.Counter.value c);
  check_int "no timer hits" 0 (Tmedb_obs.Timer.count t);
  check_int "no histogram observations" 0 (Tmedb_obs.Histogram.count h);
  check_bool "no span events" true
    (not
       (List.exists
          (fun e -> e.Tmedb_obs.name = "test.obs.noalloc_span")
          (Tmedb_obs.events ())))

(* The pool's scheduler diagnostics honour the global flag like every
   other instrument: a disabled run records no steals and no chunk
   sizes, an enabled chunked batch records exactly its chosen chunk. *)
let test_pool_diagnostics_flag_check () =
  let steals = Tmedb_obs.Counter.make "pool.steals" in
  let chunks = Tmedb_obs.Histogram.make "pool.chunk_size" in
  let workload pool =
    ignore (Pool.parallel_map_chunked pool ~chunk:4 (fun i -> i * i) (Array.init 64 Fun.id))
  in
  Tmedb_obs.reset ();
  Tmedb_obs.set_enabled false;
  Pool.with_pool ~num_domains:2 workload;
  check_int "disabled: no steals recorded" 0 (Tmedb_obs.Counter.value steals);
  check_int "disabled: no chunk sizes recorded" 0 (Tmedb_obs.Histogram.count chunks);
  Tmedb_obs.set_enabled true;
  let batches, chunk_max, steal_count =
    Fun.protect
      (fun () ->
        Pool.with_pool ~num_domains:2 workload;
        Tmedb_obs.
          (Histogram.count chunks, Histogram.max_value chunks, Counter.value steals))
      ~finally:(fun () ->
        Tmedb_obs.set_enabled false;
        Tmedb_obs.reset ())
  in
  check_int "enabled: one chunked batch observed" 1 batches;
  check_int "enabled: the submitted chunk size" 4 chunk_max;
  (* Whether the worker or the caller drains first is a race; only
     non-negativity is deterministic here. *)
  check_bool "enabled: steal count non-negative" true (steal_count >= 0)

(* ------------------------------------------------------------------ *)
(* Telemetry observes, never steers: identical results on and off *)

let test_results_identical_on_off () =
  let open Tmedb in
  let config =
    {
      Experiment.default_config with
      Experiment.n = 8;
      horizon = 5000.;
      deadline = 1200.;
      sources = 1;
      mc_trials = 40;
      dts_cap = 400;
    }
  in
  let trace = Experiment.make_trace config ~n:8 in
  let run () =
    Experiment.run_alg config ~trace ~source:0 ~deadline:1200. ~rng:(Rng.create 5)
      (match Experiment.algorithm_of_string "EEDCB" with
      | Ok a -> a
      | Error e -> failwith e)
  in
  Tmedb_obs.reset ();
  Tmedb_obs.set_enabled false;
  let off = run () in
  Tmedb_obs.set_enabled true;
  let on =
    Fun.protect run ~finally:(fun () ->
        Tmedb_obs.set_enabled false;
        Tmedb_obs.reset ())
  in
  check_bool "energy identical" true (Float.equal off.Experiment.energy on.Experiment.energy);
  check_bool "feasibility identical" true (off.Experiment.feasible = on.Experiment.feasible)

(* The metrics snapshot must be byte-stable: counters and timers come
   out name-sorted no matter the registration order, so a [--metrics]
   file diffs cleanly between runs (and lint rule R1 never has a
   hash-order leak to flag here). *)
let test_snapshot_sorted_and_byte_stable =
  scrubbed @@ fun () ->
  (* Register in decidedly non-alphabetical order. *)
  List.iter
    (fun name -> Tmedb_obs.Counter.add (Tmedb_obs.Counter.make name) 1)
    [ "test.obs.zeta"; "test.obs.alpha"; "test.obs.mid" ];
  List.iter
    (fun name -> ignore (Tmedb_obs.Timer.start (Tmedb_obs.Timer.make name)))
    [ "test.obs.t_omega"; "test.obs.t_aleph" ];
  Tmedb_obs.Histogram.observe (Tmedb_obs.Histogram.make "test.obs.h_mid") 9;
  Tmedb_obs.Span.with_ "test.obs.stable_span" (fun () -> ());
  let snap = Tmedb_obs.snapshot () in
  let counter_names = List.map fst snap.Tmedb_obs.counters in
  let timer_names = List.map (fun t -> t.Tmedb_obs.timer_name) snap.Tmedb_obs.timers in
  check_bool "counters name-sorted" true
    (counter_names = List.sort String.compare counter_names);
  check_bool "timers name-sorted" true (timer_names = List.sort String.compare timer_names);
  (* Two exports of the same registry state are byte-identical. *)
  let write () =
    let path = Filename.temp_file "tmedb_obs" ".json" in
    Obs_json.write_metrics ~path;
    let ic = open_in_bin path in
    let body =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Sys.remove path;
    body
  in
  let body = write () in
  check_string "metrics JSON byte-stable" body (write ());
  (* The new sections ride the same contract: present, with the
     documented per-entry keys. *)
  match Json.parse body with
  | Error e -> Alcotest.fail ("metrics file does not parse: " ^ e)
  | Ok doc ->
      let member_chain keys =
        List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some doc) keys
      in
      check_bool "histogram summary exported" true
        (member_chain [ "histograms"; "test.obs.h_mid"; "p50" ] = Some (Json.Num 9.));
      check_bool "histogram count exported" true
        (member_chain [ "histograms"; "test.obs.h_mid"; "count" ] = Some (Json.Num 1.));
      check_bool "span alloc count exported" true
        (member_chain [ "spans"; "test.obs.stable_span"; "count" ] = Some (Json.Num 1.));
      check_bool "span alloc words exported" true
        (List.for_all
           (fun k ->
             match member_chain [ "spans"; "test.obs.stable_span"; k ] with
             | Some (Json.Num w) -> w >= 0.
             | _ -> false)
           [ "minor_words"; "major_words" ])

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "obs"
    [
      ( "registry",
        [
          tc "counter semantics" test_counter_semantics;
          tc "timer semantics" test_timer_semantics;
          tc "histogram semantics" test_histogram_semantics;
          tc "span semantics" test_span_semantics;
          tc "span alloc deltas" test_span_alloc_deltas;
        ] );
      ( "concurrency",
        [
          tc "per-domain buffers merge deterministically" test_merge_determinism;
          tc "histogram summaries jobs-invariant" test_histogram_merge_determinism;
          tc "mid-span toggles keep buffers balanced" test_mid_span_toggle_balance_multi_domain;
        ] );
      ( "flight",
        [
          tc "ring bounded, baseline, disarm" test_flight_ring_semantics;
          tc "armed-only records rings, not the stream" test_armed_only_skips_stream;
        ] );
      ( "export",
        [
          tc "metrics and trace round-trip" test_json_round_trip;
          tc "span args escaping round-trips" test_span_args_escaping_round_trip;
          tc "chrome trace lanes at jobs 1/2/4" test_chrome_trace_lanes_jobs;
          tc "snapshot sorted, metrics byte-stable" test_snapshot_sorted_and_byte_stable;
        ] );
      ( "overhead",
        [
          tc "disabled path is allocation-free" test_disabled_path_allocation_free;
          tc "pool diagnostics honour the flag" test_pool_diagnostics_flag_check;
          tc "results identical with telemetry on/off" test_results_identical_on_off;
        ] );
    ]
