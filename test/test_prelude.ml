(* Tests for the tmedb_prelude substrate: RNG, distributions,
   intervals, interval sets, priority queue, bitsets, union-find,
   statistics and float utilities. *)

open Tmedb_prelude

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr equal
  done;
  check_bool "streams differ" true (!equal < 4)

let test_rng_int_bounds () =
  let g = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.int g 17 in
    check_bool "in range" true (0 <= x && x < 17)
  done

let test_rng_int_uniformity () =
  let g = Rng.create 11 in
  let counts = Array.make 8 0 in
  let trials = 80_000 in
  for _ = 1 to trials do
    let x = Rng.int g 8 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      let expected = trials / 8 in
      check_bool "within 5% of uniform" true (abs (c - expected) < expected / 20))
    counts

let test_rng_invalid_bound () =
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int (Rng.create 1) 0))

let test_rng_unit_float_range () =
  let g = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.unit_float g in
    check_bool "in [0,1)" true (0. <= x && x < 1.)
  done

let test_rng_split_independent () =
  let g = Rng.create 5 in
  let h = Rng.split g in
  let xs = Array.init 32 (fun _ -> Rng.bits64 g) in
  let ys = Array.init 32 (fun _ -> Rng.bits64 h) in
  check_bool "split streams differ" true (xs <> ys)

let test_rng_copy_replays () =
  let g = Rng.create 9 in
  ignore (Rng.bits64 g);
  let h = Rng.copy g in
  check_bool "copy replays" true (Rng.bits64 g = Rng.bits64 h)

let test_rng_shuffle_permutation () =
  let g = Rng.create 13 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_pick () =
  let g = Rng.create 21 in
  let a = [| 3; 1; 4 |] in
  for _ = 1 to 100 do
    check_bool "picked member" true (Array.mem (Rng.pick g a) a)
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick g [||]))

(* ------------------------------------------------------------------ *)
(* Dist *)

let sample_mean n f =
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. f ()
  done;
  !acc /. float_of_int n

let test_dist_uniform_bounds () =
  let g = Rng.create 17 in
  for _ = 1 to 5000 do
    let x = Dist.uniform g ~lo:2. ~hi:5. in
    check_bool "in range" true (2. <= x && x < 5.)
  done

let test_dist_uniform_mean () =
  let g = Rng.create 19 in
  let m = sample_mean 50_000 (fun () -> Dist.uniform g ~lo:0. ~hi:10.) in
  check_bool "mean near 5" true (Float.abs (m -. 5.) < 0.1)

let test_dist_exponential_mean () =
  let g = Rng.create 23 in
  let m = sample_mean 100_000 (fun () -> Dist.exponential g ~rate:0.5) in
  check_bool "mean near 2" true (Float.abs (m -. 2.) < 0.05)

let test_dist_exponential_positive () =
  let g = Rng.create 29 in
  for _ = 1 to 1000 do
    check_bool "positive" true (Dist.exponential g ~rate:3. >= 0.)
  done

let test_dist_pareto_support () =
  let g = Rng.create 31 in
  for _ = 1 to 5000 do
    check_bool "x >= xm" true (Dist.pareto g ~xm:2. ~alpha:1.5 >= 2.)
  done

let test_dist_bounded_pareto_support () =
  let g = Rng.create 37 in
  for _ = 1 to 5000 do
    let x = Dist.bounded_pareto g ~lo:10. ~hi:100. ~alpha:0.5 in
    check_bool "in bounds" true (10. <= x && x <= 100.)
  done

let test_dist_bounded_pareto_skew () =
  (* Heavy lower concentration: the median must sit well below the
     arithmetic midpoint. *)
  let g = Rng.create 41 in
  let xs = Array.init 20_000 (fun _ -> Dist.bounded_pareto g ~lo:10. ~hi:1000. ~alpha:1.0) in
  check_bool "median below midpoint" true (Stats.median xs < 200.)

let test_dist_normal_moments () =
  let g = Rng.create 43 in
  let xs = Array.init 100_000 (fun _ -> Dist.normal g ~mu:3. ~sigma:2.) in
  check_bool "mean near 3" true (Float.abs (Stats.mean xs -. 3.) < 0.05);
  check_bool "stddev near 2" true (Float.abs (Stats.stddev xs -. 2.) < 0.05)

let test_dist_bernoulli_rate () =
  let g = Rng.create 47 in
  let hits = ref 0 in
  for _ = 1 to 50_000 do
    if Dist.bernoulli g ~p:0.3 then incr hits
  done;
  check_bool "rate near 0.3" true (Float.abs ((float_of_int !hits /. 50_000.) -. 0.3) < 0.02)

let test_dist_bernoulli_clamps () =
  let g = Rng.create 53 in
  check_bool "p>1 always true" true (Dist.bernoulli g ~p:2.);
  check_bool "p<0 always false" false (Dist.bernoulli g ~p:(-1.))

let test_dist_categorical () =
  let g = Rng.create 59 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Dist.categorical g [| 1.; 2.; 1. |] in
    counts.(i) <- counts.(i) + 1
  done;
  check_bool "middle ~half" true (abs (counts.(1) - 15_000) < 1_000);
  Alcotest.check_raises "empty" (Invalid_argument "Dist.categorical: empty weights") (fun () ->
      ignore (Dist.categorical g [||]))

(* ------------------------------------------------------------------ *)
(* Interval *)

let iv lo hi = Interval.make ~lo ~hi

let test_interval_make_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Interval.make: need finite lo < hi")
    (fun () -> ignore (iv 1. 1.))

let test_interval_mem () =
  let i = iv 1. 2. in
  check_bool "lo in" true (Interval.mem i 1.);
  check_bool "hi out" false (Interval.mem i 2.);
  check_bool "mid in" true (Interval.mem i 1.5);
  check_bool "before out" false (Interval.mem i 0.)

let test_interval_overlap_touch () =
  check_bool "overlap" true (Interval.overlaps (iv 0. 2.) (iv 1. 3.));
  check_bool "abut no overlap" false (Interval.overlaps (iv 0. 1.) (iv 1. 2.));
  check_bool "abut touches" true (Interval.touches (iv 0. 1.) (iv 1. 2.));
  check_bool "gap no touch" false (Interval.touches (iv 0. 1.) (iv 1.5 2.))

let test_interval_inter_hull () =
  (match Interval.inter (iv 0. 2.) (iv 1. 3.) with
  | Some i -> check_bool "inter [1,2)" true (Interval.equal i (iv 1. 2.))
  | None -> Alcotest.fail "expected intersection");
  check_bool "disjoint inter none" true (Interval.inter (iv 0. 1.) (iv 2. 3.) = None);
  check_bool "hull" true (Interval.equal (Interval.hull (iv 0. 1.) (iv 2. 3.)) (iv 0. 3.))

let test_interval_shift_contains () =
  check_bool "shift" true (Interval.equal (Interval.shift (iv 1. 2.) 0.5) (iv 1.5 2.5));
  check_bool "contains" true (Interval.contains (iv 0. 10.) (iv 2. 3.));
  check_bool "not contains" false (Interval.contains (iv 2. 3.) (iv 0. 10.))

(* ------------------------------------------------------------------ *)
(* Interval_set *)

let set l = Interval_set.of_list (List.map (fun (a, b) -> iv a b) l)

let test_iset_normalizes () =
  let s = set [ (3., 4.); (0., 1.); (0.5, 2.) ] in
  check_int "merged overlap" 2 (Interval_set.cardinal s);
  check_float "length" 3. (Interval_set.total_length s)

let test_iset_merges_touching () =
  let s = set [ (0., 1.); (1., 2.) ] in
  check_int "abutting merge" 1 (Interval_set.cardinal s)

let test_iset_union () =
  let a = set [ (0., 1.); (4., 5.) ] and b = set [ (0.5, 4.2) ] in
  let u = Interval_set.union a b in
  check_int "one blob" 1 (Interval_set.cardinal u);
  check_float "span" 5. (Interval_set.total_length u)

let test_iset_inter () =
  let a = set [ (0., 2.); (3., 5.) ] and b = set [ (1., 4.) ] in
  let i = Interval_set.inter a b in
  check_int "two pieces" 2 (Interval_set.cardinal i);
  check_float "length 2" 2. (Interval_set.total_length i)

let test_iset_diff () =
  let a = set [ (0., 10.) ] and b = set [ (2., 3.); (5., 6.) ] in
  let d = Interval_set.diff a b in
  check_float "length 8" 8. (Interval_set.total_length d);
  check_bool "2.5 removed" false (Interval_set.mem d 2.5);
  check_bool "4 kept" true (Interval_set.mem d 4.)

let test_iset_complement () =
  let s = set [ (1., 2.); (3., 4.) ] in
  let c = Interval_set.complement s ~span:(iv 0. 5.) in
  check_float "complement length" 3. (Interval_set.total_length c);
  check_bool "0.5 in" true (Interval_set.mem c 0.5);
  check_bool "1.5 out" false (Interval_set.mem c 1.5)

let test_iset_covering () =
  let s = set [ (1., 2.); (3., 4.) ] in
  (match Interval_set.covering s 3.5 with
  | Some i -> check_bool "covers" true (Interval.equal i (iv 3. 4.))
  | None -> Alcotest.fail "expected covering interval");
  check_bool "gap none" true (Interval_set.covering s 2.5 = None)

let test_iset_boundaries () =
  let s = set [ (1., 2.); (3., 4.) ] in
  Alcotest.(check (list (float 0.))) "boundaries" [ 1.; 2.; 3.; 4. ] (Interval_set.boundaries s)

let test_iset_subset () =
  check_bool "subset" true (Interval_set.subset (set [ (1., 2.) ]) (set [ (0., 3.) ]));
  check_bool "not subset" false (Interval_set.subset (set [ (1., 4.) ]) (set [ (0., 3.) ]))

(* Properties: union length bounds, inter commutes, diff/inter
   partition. *)
let iset_gen =
  let open QCheck in
  let pair_gen =
    Gen.map
      (fun (a, b) ->
        let a = Float.of_int (a mod 100) /. 10. and b = Float.of_int (b mod 100) /. 10. in
        if a = b then (a, b +. 0.1) else if a < b then (a, b) else (b, a))
      Gen.(pair small_signed_int small_signed_int)
  in
  make
    ~print:(fun s -> Format.asprintf "%a" Interval_set.pp s)
    Gen.(map (fun l -> Interval_set.of_list (List.map (fun (a, b) -> iv a b) l))
           (list_size (int_bound 8) pair_gen))

let prop_union_length =
  QCheck.Test.make ~name:"iset union length <= sum of lengths" ~count:300
    (QCheck.pair iset_gen iset_gen) (fun (a, b) ->
      let u = Interval_set.union a b in
      let la = Interval_set.total_length a and lb = Interval_set.total_length b in
      let lu = Interval_set.total_length u in
      lu <= la +. lb +. 1e-9 && lu >= Float.max la lb -. 1e-9)

let prop_inter_commutes =
  QCheck.Test.make ~name:"iset inter commutes" ~count:300 (QCheck.pair iset_gen iset_gen)
    (fun (a, b) -> Interval_set.equal (Interval_set.inter a b) (Interval_set.inter b a))

let prop_diff_inter_partition =
  QCheck.Test.make ~name:"iset |a| = |a∩b| + |a\\b|" ~count:300 (QCheck.pair iset_gen iset_gen)
    (fun (a, b) ->
      let la = Interval_set.total_length a in
      let li = Interval_set.total_length (Interval_set.inter a b) in
      let ld = Interval_set.total_length (Interval_set.diff a b) in
      Float.abs (la -. (li +. ld)) < 1e-6)

let prop_union_mem =
  QCheck.Test.make ~name:"iset union membership" ~count:300
    (QCheck.triple iset_gen iset_gen (QCheck.float_range 0. 10.)) (fun (a, b, x) ->
      Interval_set.mem (Interval_set.union a b) x = (Interval_set.mem a x || Interval_set.mem b x))

(* Model-based properties: a raw (unsorted, overlapping) endpoint list
   is the naive model — membership is List.exists over half-open
   pairs.  The canonical set must agree with the model pointwise at
   and around every endpoint, and keep its representation invariants
   (non-empty members, sorted, strictly separated). *)
let raw_gen =
  let open QCheck in
  let pair_gen =
    Gen.map
      (fun (a, b) ->
        let a = Float.of_int (a mod 100) /. 10. and b = Float.of_int (b mod 100) /. 10. in
        if a = b then (a, b +. 0.1) else if a < b then (a, b) else (b, a))
      Gen.(pair small_signed_int small_signed_int)
  in
  make
    ~print:(Print.list (Print.pair Print.float Print.float))
    Gen.(list_size (int_bound 8) pair_gen)

let model_mem raw t = List.exists (fun (a, b) -> a <= t && t < b) raw

(* Endpoints, midpoints, and points just outside each raw interval —
   every place the canonical form could get a boundary wrong. *)
let sample_points raw =
  List.concat_map (fun (a, b) -> [ a -. 0.05; a; (a +. b) /. 2.; b; b +. 0.05 ]) raw

let prop_model_pointwise =
  QCheck.Test.make ~name:"iset of_list agrees with naive list model" ~count:300 raw_gen
    (fun raw ->
      let s = set raw in
      List.for_all (fun t -> Interval_set.mem s t = model_mem raw t) (0. :: sample_points raw))

let prop_model_ops =
  QCheck.Test.make ~name:"iset inter/diff agree with naive model" ~count:300
    (QCheck.pair raw_gen raw_gen) (fun (ra, rb) ->
      let a = set ra and b = set rb in
      let pts = 0. :: (sample_points ra @ sample_points rb) in
      List.for_all
        (fun t ->
          Interval_set.mem (Interval_set.inter a b) t = (model_mem ra t && model_mem rb t)
          && Interval_set.mem (Interval_set.diff a b) t
             = (model_mem ra t && not (model_mem rb t)))
        pts)

let prop_canonical_form =
  QCheck.Test.make ~name:"iset canonical form: sorted, separated, non-empty" ~count:300
    raw_gen (fun raw ->
      let members = Interval_set.intervals (set raw) in
      let non_empty = List.for_all (fun i -> i.Interval.lo < i.Interval.hi) members in
      let rec separated = function
        | a :: (b :: _ as rest) -> a.Interval.hi < b.Interval.lo && separated rest
        | [ _ ] | [] -> true
      in
      non_empty && separated members)

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q p v) [ (3., "c"); (1., "a"); (2., "b") ];
  Alcotest.(check (option (pair (float 0.) string))) "min" (Some (1., "a")) (Pqueue.peek q);
  check_int "size" 3 (Pqueue.length q);
  let order = List.map snd (Pqueue.to_sorted_list q) in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] order;
  check_int "non-destructive" 3 (Pqueue.length q)

let test_pqueue_pop_empty () =
  let q = Pqueue.create () in
  check_bool "empty pop" true (Pqueue.pop q = None);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Pqueue.pop_exn: empty") (fun () ->
      ignore (Pqueue.pop_exn q))

let test_pqueue_random_stress () =
  let g = Rng.create 61 in
  let q = Pqueue.create () in
  let values = Array.init 2000 (fun _ -> Rng.unit_float g) in
  Array.iter (fun v -> Pqueue.push q v v) values;
  let drained = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (p, _) ->
        drained := p :: !drained;
        drain ()
    | None -> ()
  in
  drain ();
  let got = Array.of_list (List.rev !drained) in
  let expected = Array.copy values in
  Array.sort Float.compare expected;
  Alcotest.(check (array (float 0.))) "heap sorts" expected got

let test_pqueue_duplicates () =
  let q = Pqueue.create () in
  Pqueue.push q 1. "x";
  Pqueue.push q 1. "y";
  check_int "both kept" 2 (Pqueue.length q)

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_basic () =
  let b = Bitset.create 70 in
  check_int "empty" 0 (Bitset.cardinal b);
  Bitset.set b 0;
  Bitset.set b 69;
  Bitset.set b 33;
  check_int "three" 3 (Bitset.cardinal b);
  check_bool "mem 33" true (Bitset.mem b 33);
  Bitset.clear b 33;
  check_bool "cleared" false (Bitset.mem b 33);
  check_int "two" 2 (Bitset.cardinal b)

let test_bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset.set: out of range") (fun () ->
      Bitset.set b 8)

let test_bitset_union_subset () =
  let a = Bitset.of_list 10 [ 1; 3; 5 ] in
  let b = Bitset.of_list 10 [ 3; 5; 7 ] in
  check_int "inter" 2 (Bitset.inter_cardinal a b);
  check_int "diff" 1 (Bitset.diff_cardinal a b);
  check_bool "not subset" false (Bitset.subset a b);
  let c = Bitset.copy a in
  Bitset.union_into ~dst:c b;
  check_int "union" 4 (Bitset.cardinal c);
  check_bool "a subset union" true (Bitset.subset a c)

let test_bitset_fill_iter () =
  let b = Bitset.create 12 in
  Bitset.fill b;
  check_int "full" 12 (Bitset.cardinal b);
  Alcotest.(check (list int)) "to_list" (List.init 12 Fun.id) (Bitset.to_list b)

(* ------------------------------------------------------------------ *)
(* Dsu *)

let test_dsu () =
  let d = Dsu.create 6 in
  check_int "classes" 6 (Dsu.count d);
  check_bool "union new" true (Dsu.union d 0 1);
  check_bool "union again" false (Dsu.union d 1 0);
  ignore (Dsu.union d 2 3);
  ignore (Dsu.union d 1 2);
  check_bool "same 0 3" true (Dsu.same d 0 3);
  check_bool "diff 0 4" false (Dsu.same d 0 4);
  check_int "three classes" 3 (Dsu.count d)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Stats.mean xs);
  check_bool "variance" true (Float.abs (Stats.variance xs -. 4.571428571) < 1e-6);
  check_float "median" 4.5 (Stats.median xs);
  check_float "p0" 2. (Stats.percentile xs 0.);
  check_float "p100" 9. (Stats.percentile xs 100.)

let test_stats_single () =
  check_float "variance of one" 0. (Stats.variance [| 5. |]);
  check_float "median of one" 5. (Stats.median [| 5. |])

let test_stats_online_matches_batch () =
  let g = Rng.create 67 in
  let xs = Array.init 1000 (fun _ -> Rng.unit_float g) in
  let o = Stats.Online.create () in
  Array.iter (Stats.Online.add o) xs;
  check_bool "mean agrees" true (Float.abs (Stats.Online.mean o -. Stats.mean xs) < 1e-12);
  check_bool "var agrees" true (Float.abs (Stats.Online.variance o -. Stats.variance xs) < 1e-9)

let test_stats_histogram () =
  let h = Stats.histogram [| 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. |] ~bins:5 in
  check_int "bins" 5 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  check_int "all counted" 10 total

let test_stats_linear_fit () =
  let slope, intercept = Stats.linear_fit [| (0., 1.); (1., 3.); (2., 5.) |] in
  check_float "slope" 2. slope;
  check_float "intercept" 1. intercept

let test_stats_empty_raises () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty input") (fun () ->
      ignore (Stats.mean [||]))

(* ------------------------------------------------------------------ *)
(* Futil *)

let test_futil_approx_eq () =
  check_bool "close" true (Futil.approx_eq 1.0 (1.0 +. 1e-12));
  check_bool "far" false (Futil.approx_eq 1.0 1.1)

let test_futil_clamp () =
  check_float "below" 0. (Futil.clamp ~lo:0. ~hi:1. (-3.));
  check_float "above" 1. (Futil.clamp ~lo:0. ~hi:1. 3.);
  check_float "inside" 0.5 (Futil.clamp ~lo:0. ~hi:1. 0.5)

let test_futil_linspace () =
  let xs = Futil.linspace ~lo:0. ~hi:1. ~n:5 in
  check_int "count" 5 (Array.length xs);
  check_float "first" 0. xs.(0);
  check_float "last" 1. xs.(4);
  check_float "step" 0.25 xs.(1)

let test_futil_kahan () =
  let xs = Array.make 10_000 0.1 in
  check_bool "compensated" true (Float.abs (Futil.kahan_sum xs -. 1000.) < 1e-9)

let test_futil_argmin_argmax () =
  check_int "argmin" 1 (Futil.argmin [| 3.; 1.; 2. |]);
  check_int "argmax" 0 (Futil.argmax [| 3.; 1.; 2. |])

let test_futil_db () =
  check_float "0 dB" 1. (Futil.db_to_linear 0.);
  check_float "10 dB" 10. (Futil.db_to_linear 10.);
  check_bool "roundtrip" true (Futil.approx_eq (Futil.linear_to_db (Futil.db_to_linear 25.9)) 25.9)

(* ------------------------------------------------------------------ *)
(* Json *)

let bench_sample =
  Json.Obj
    [
      ("bench_pr", Json.Num 1.);
      ("jobs", Json.Num 4.);
      ("deterministic", Json.Bool true);
      ( "kernels",
        Json.List
          [
            Json.Obj
              [
                ("name", Json.Str "fig4-sweep");
                ("seconds_1", Json.Num 0.25);
                ("seconds_jobs", Json.Num 0.125);
                ("speedup", Json.Num 2.);
              ];
          ] );
    ]

let test_json_roundtrip () =
  List.iter
    (fun indent ->
      match Json.parse (Json.to_string ~indent bench_sample) with
      | Ok parsed ->
          check_bool (Printf.sprintf "roundtrip indent=%d" indent) true (parsed = bench_sample)
      | Error e -> Alcotest.fail e)
    [ 0; 2 ]

let test_json_parse_literals () =
  check_bool "null" true (Json.parse "null" = Ok Json.Null);
  check_bool "negative exponent" true (Json.parse "-1.5e2" = Ok (Json.Num (-150.)));
  check_bool "escapes" true
    (Json.parse {|" a\"b\nA "|} = Ok (Json.Str " a\"b\nA "));
  check_bool "nested" true
    (Json.parse {|{"a": [1, true, "x"]}|}
    = Ok (Json.Obj [ ("a", Json.List [ Json.Num 1.; Json.Bool true; Json.Str "x" ]) ]))

let test_json_parse_errors () =
  let fails s =
    match Json.parse s with Ok _ -> false | Error _ -> true
  in
  check_bool "truncated" true (fails {|{"a": 1|});
  check_bool "trailing garbage" true (fails "1 2");
  check_bool "bare word" true (fails "nope");
  check_bool "empty" true (fails "")

let test_json_accessors () =
  check_bool "member hit" true
    (Json.member "jobs" bench_sample = Some (Json.Num 4.));
  check_bool "member miss" true (Json.member "absent" bench_sample = None);
  check_bool "member non-obj" true (Json.member "x" (Json.Num 1.) = None);
  check_bool "to_float" true (Json.to_float (Json.Num 3.5) = Some 3.5);
  check_bool "to_float miss" true (Json.to_float Json.Null = None);
  (match Json.member "kernels" bench_sample with
  | Some kernels -> (
      match Json.to_list kernels with
      | Some [ k ] ->
          check_bool "kernel name" true (Json.member "name" k = Some (Json.Str "fig4-sweep"))
      | Some _ | None -> Alcotest.fail "expected a one-kernel list")
  | None -> Alcotest.fail "expected kernels field")

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "prelude"
    [
      ( "rng",
        [
          tc "deterministic" test_rng_deterministic;
          tc "seeds differ" test_rng_seeds_differ;
          tc "int bounds" test_rng_int_bounds;
          tc "int uniformity" test_rng_int_uniformity;
          tc "invalid bound" test_rng_invalid_bound;
          tc "unit float range" test_rng_unit_float_range;
          tc "split independent" test_rng_split_independent;
          tc "copy replays" test_rng_copy_replays;
          tc "shuffle permutation" test_rng_shuffle_permutation;
          tc "pick" test_rng_pick;
        ] );
      ( "dist",
        [
          tc "uniform bounds" test_dist_uniform_bounds;
          tc "uniform mean" test_dist_uniform_mean;
          tc "exponential mean" test_dist_exponential_mean;
          tc "exponential positive" test_dist_exponential_positive;
          tc "pareto support" test_dist_pareto_support;
          tc "bounded pareto support" test_dist_bounded_pareto_support;
          tc "bounded pareto skew" test_dist_bounded_pareto_skew;
          tc "normal moments" test_dist_normal_moments;
          tc "bernoulli rate" test_dist_bernoulli_rate;
          tc "bernoulli clamps" test_dist_bernoulli_clamps;
          tc "categorical" test_dist_categorical;
        ] );
      ( "interval",
        [
          tc "make invalid" test_interval_make_invalid;
          tc "mem" test_interval_mem;
          tc "overlap/touch" test_interval_overlap_touch;
          tc "inter/hull" test_interval_inter_hull;
          tc "shift/contains" test_interval_shift_contains;
        ] );
      ( "interval_set",
        [
          tc "normalizes" test_iset_normalizes;
          tc "merges touching" test_iset_merges_touching;
          tc "union" test_iset_union;
          tc "inter" test_iset_inter;
          tc "diff" test_iset_diff;
          tc "complement" test_iset_complement;
          tc "covering" test_iset_covering;
          tc "boundaries" test_iset_boundaries;
          tc "subset" test_iset_subset;
          QCheck_alcotest.to_alcotest prop_union_length;
          QCheck_alcotest.to_alcotest prop_inter_commutes;
          QCheck_alcotest.to_alcotest prop_diff_inter_partition;
          QCheck_alcotest.to_alcotest prop_union_mem;
          QCheck_alcotest.to_alcotest prop_model_pointwise;
          QCheck_alcotest.to_alcotest prop_model_ops;
          QCheck_alcotest.to_alcotest prop_canonical_form;
        ] );
      ( "pqueue",
        [
          tc "ordering" test_pqueue_ordering;
          tc "pop empty" test_pqueue_pop_empty;
          tc "random stress" test_pqueue_random_stress;
          tc "duplicates" test_pqueue_duplicates;
        ] );
      ( "bitset",
        [
          tc "basic" test_bitset_basic;
          tc "bounds" test_bitset_bounds;
          tc "union/subset" test_bitset_union_subset;
          tc "fill/iter" test_bitset_fill_iter;
        ] );
      ("dsu", [ tc "union-find" test_dsu ]);
      ( "stats",
        [
          tc "basic" test_stats_basic;
          tc "single" test_stats_single;
          tc "online matches batch" test_stats_online_matches_batch;
          tc "histogram" test_stats_histogram;
          tc "linear fit" test_stats_linear_fit;
          tc "empty raises" test_stats_empty_raises;
        ] );
      ( "futil",
        [
          tc "approx_eq" test_futil_approx_eq;
          tc "clamp" test_futil_clamp;
          tc "linspace" test_futil_linspace;
          tc "kahan" test_futil_kahan;
          tc "argmin/argmax" test_futil_argmin_argmax;
          tc "db" test_futil_db;
        ] );
      ( "json",
        [
          tc "roundtrip" test_json_roundtrip;
          tc "parse literals" test_json_parse_literals;
          tc "parse errors" test_json_parse_errors;
          tc "accessors" test_json_accessors;
        ] );
    ]
