(* Tests for the profiling & flight-recorder layer: span-tree
   attribution (lib/prelude/profile.ml) — pool-frame transparency,
   ctx re-rooting, self-time, timeline lanes — plus the determinism
   contract (profile artifacts byte-identical at any --jobs, results
   byte-identical with profiling on or off), and the crash-dump path
   (Crash_guard + Watchdog black boxes). *)

open Tmedb
open Tmedb_prelude

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* The registry is process-global; run every test from a clean state
   and leave telemetry off and disarmed for whoever runs next. *)
let scrubbed f () =
  Tmedb_obs.reset ();
  Fun.protect f ~finally:(fun () ->
      Tmedb_obs.Flight.disarm ();
      Tmedb_obs.set_enabled false;
      Tmedb_obs.reset ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_pool jobs f =
  if jobs <= 1 then f None
  else Pool.with_pool ~num_domains:jobs (fun pool -> f (Some pool))

(* ------------------------------------------------------------------ *)
(* of_events unit tests over synthetic streams.  Timestamps ride the
   registry origin so origin-relative arithmetic stays exact enough;
   wall times tolerate the double-precision ulp at epoch scale. *)

let ev ?(domain = 0) ?(args = []) ?alloc ~seq ~dt name phase =
  {
    Tmedb_obs.name;
    domain;
    seq;
    ts = Tmedb_obs.origin () +. dt;
    phase;
    args;
    alloc;
  }

let alloc minor major = { Tmedb_obs.minor_words = minor; major_words = major }

let node_at t path =
  match List.find_opt (fun n -> n.Profile.path = path) t.Profile.nodes with
  | Some n -> n
  | None -> Alcotest.failf "node %s missing" (Profile.path_key path)

let check_ns what expected actual =
  (* The event clock is Unix-epoch seconds; at ~2e9 s one double ulp
     is ~240 ns, so give subtractions a microsecond of slack. *)
  check_bool
    (Printf.sprintf "%s (%.0f ns vs %.0f ns)" what expected actual)
    true
    (Float.abs (expected -. actual) < 1e4)

let test_nesting_and_self_time =
  scrubbed @@ fun () ->
  let t =
    Profile.of_events
      [
        ev ~seq:0 ~dt:0.0 "a" Tmedb_obs.Begin;
        ev ~seq:1 ~dt:0.1 "b" Tmedb_obs.Begin;
        ev ~seq:2 ~dt:0.3 ~alloc:(alloc 100. 10.) "b" Tmedb_obs.End;
        ev ~seq:3 ~dt:0.4 ~alloc:(alloc 150. 12.) "a" Tmedb_obs.End;
      ]
  in
  check_int "two nodes" 2 (List.length t.Profile.nodes);
  let a = node_at t [ "a" ] and b = node_at t [ "a"; "b" ] in
  check_int "a count" 1 a.Profile.count;
  check_int "b count" 1 b.Profile.count;
  check_ns "a total" 0.4e9 a.Profile.wall_ns;
  check_ns "a self = total minus child" 0.2e9 a.Profile.wall_self_ns;
  check_ns "b total" 0.2e9 b.Profile.wall_ns;
  check_ns "b self = its total" 0.2e9 b.Profile.wall_self_ns;
  check_bool "a minor self subtracts child's" true
    (Float.equal a.Profile.minor_self_words 50.);
  check_bool "a major self subtracts child's" true
    (Float.equal a.Profile.major_self_words 2.);
  (* One lane, one top-level interval covering [0, 0.4]. *)
  (match t.Profile.timeline.Profile.lanes with
  | [ lane ] ->
      check_int "one interval" 1 (List.length lane.Profile.lane_intervals);
      check_ns "lane busy" 0.4e9 (lane.Profile.lane_busy_s *. 1e9)
  | lanes -> Alcotest.failf "expected 1 lane, got %d" (List.length lanes));
  check_bool "utilization ~1 on a fully busy lane" true
    (t.Profile.timeline.Profile.utilization > 0.99)

let test_pool_transparency_and_reroot =
  scrubbed @@ fun () ->
  let t =
    Profile.of_events
      [
        (* The submitter's inline work on domain 0... *)
        ev ~seq:0 ~dt:0.0 "a" Tmedb_obs.Begin;
        ev ~seq:1 ~dt:0.1 ~alloc:(alloc 0. 0.) "a" Tmedb_obs.End;
        (* ...a task it submitted, executed on worker domain 1: the
           ctx attribute re-roots the task's subtree under "a". *)
        ev ~domain:1 ~seq:0 ~dt:0.2 ~args:[ ("ctx", "a") ] "pool.task" Tmedb_obs.Begin;
        ev ~domain:1 ~seq:1 ~dt:0.2 "b" Tmedb_obs.Begin;
        ev ~domain:1 ~seq:2 ~dt:0.3 ~alloc:(alloc 0. 0.) "b" Tmedb_obs.End;
        ev ~domain:1 ~seq:3 ~dt:0.3 ~alloc:(alloc 0. 0.) "pool.task" Tmedb_obs.End;
        (* The same shape reached through a steal on domain 2. *)
        ev ~domain:2 ~seq:0 ~dt:0.2 "pool.steal" Tmedb_obs.Begin;
        ev ~domain:2 ~seq:1 ~dt:0.2 ~args:[ ("ctx", "a") ] "pool.task" Tmedb_obs.Begin;
        ev ~domain:2 ~seq:2 ~dt:0.2 "b" Tmedb_obs.Begin;
        ev ~domain:2 ~seq:3 ~dt:0.4 ~alloc:(alloc 0. 0.) "b" Tmedb_obs.End;
        ev ~domain:2 ~seq:4 ~dt:0.4 ~alloc:(alloc 0. 0.) "pool.task" Tmedb_obs.End;
        ev ~domain:2 ~seq:5 ~dt:0.4 ~alloc:(alloc 0. 0.) "pool.steal" Tmedb_obs.End;
      ]
  in
  let keys = List.map (fun n -> Profile.path_key n.Profile.path) t.Profile.nodes in
  check_bool "pool frames are not nodes" true
    (List.for_all (fun k -> not (String.length k >= 5 && String.sub k 0 5 = "pool.")) keys);
  check_bool "logical paths only" true (keys = [ "a"; "a;b" ]);
  check_int "both executions re-root under the submitter" 2
    (node_at t [ "a"; "b" ]).Profile.count;
  (* Timeline: three lanes; the steal lane counts its steal and its
     top-level interval renders as "steal". *)
  let lanes = t.Profile.timeline.Profile.lanes in
  check_int "three lanes" 3 (List.length lanes);
  check_bool "lanes sorted by domain" true
    (List.map (fun l -> l.Profile.lane_domain) lanes = [ 0; 1; 2 ]);
  (match lanes with
  | [ _; worker; stealer ] ->
      check_int "worker lane: no steal" 0 worker.Profile.lane_steals;
      check_int "steal counted" 1 stealer.Profile.lane_steals;
      check_bool "task interval kind" true
        (List.for_all
           (fun iv -> iv.Profile.i_kind = "task")
           worker.Profile.lane_intervals);
      check_bool "steal interval kind" true
        (List.for_all
           (fun iv -> iv.Profile.i_kind = "steal")
           stealer.Profile.lane_intervals)
  | _ -> Alcotest.fail "lane shape")

let test_planner_display_and_edge_cases =
  scrubbed @@ fun () ->
  let t =
    Profile.of_events
      [
        ev ~seq:0 ~dt:0.0 ~args:[ ("planner", "EEDCB") ] "planner.run" Tmedb_obs.Begin;
        ev ~seq:1 ~dt:0.1 ~alloc:(alloc 0. 0.) "planner.run" Tmedb_obs.End;
        (* Unmatched End: ignored.  Unclosed Begin: never counted. *)
        ev ~domain:1 ~seq:0 ~dt:0.0 ~alloc:(alloc 0. 0.) "stray" Tmedb_obs.End;
        ev ~domain:1 ~seq:1 ~dt:0.1 "open_forever" Tmedb_obs.Begin;
      ]
  in
  let keys = List.map (fun n -> Profile.path_key n.Profile.path) t.Profile.nodes in
  check_bool "planner frame renders with its name" true (keys = [ "planner.run:EEDCB" ]);
  check_bool "empty stream folds to an empty profile" true
    ((Profile.of_events []).Profile.nodes = [])

let test_docs_and_folded =
  scrubbed @@ fun () ->
  let t =
    Profile.of_events
      [
        ev ~seq:0 ~dt:0.0 "z" Tmedb_obs.Begin;
        ev ~seq:1 ~dt:0.2 ~alloc:(alloc 0. 0.) "z" Tmedb_obs.End;
        ev ~seq:2 ~dt:0.2 "a" Tmedb_obs.Begin;
        ev ~seq:3 ~dt:0.3 ~alloc:(alloc 0. 0.) "a" Tmedb_obs.End;
      ]
  in
  (* Nodes and folded lines come out path-sorted regardless of event
     order, and the deterministic document round-trips. *)
  check_string "folded counts sorted by path" "a 1\nz 1\n" (Profile.folded_counts t);
  (match Json.parse (Json.to_string (Profile.profile_doc ~timestamp:"TS" t)) with
  | Error e -> Alcotest.fail ("profile doc does not parse: " ^ e)
  | Ok doc ->
      check_bool "schema" true
        (Json.member "schema" doc = Some (Json.Str "tmedb.profile/1"));
      check_bool "injected timestamp" true
        (Json.member "timestamp" doc = Some (Json.Str "TS"));
      check_bool "counts only in the deterministic doc" true
        (Option.bind (Json.member "nodes" doc) (Json.member "z")
        = Some (Json.Obj [ ("count", Json.Num 1.) ])));
  check_bool "omitted timestamp emits null" true
    (Json.member "timestamp" (Profile.profile_doc t) = Some Json.Null);
  (* folded_wall weights by self time and drops zero rows. *)
  let lines = String.split_on_char '\n' (String.trim (Profile.folded_wall t)) in
  check_int "both nodes have nonzero self wall" 2 (List.length lines);
  (* top_self orders by self wall descending: z ran 0.2 s, a 0.1 s. *)
  (match Profile.top_self t 1 with
  | [ n ] -> check_string "hottest node" "z" (Profile.path_key n.Profile.path)
  | _ -> Alcotest.fail "top_self 1 shape");
  check_bool "html artifact is self-contained" true
    (let h = Profile.html t in
     let contains needle =
       let lh = String.length h and ln = String.length needle in
       let rec at i = i + ln <= lh && (String.sub h i ln = needle || at (i + 1)) in
       at 0
     in
     contains "<!doctype html>" && contains "<svg" && contains "Flamegraph")

(* ------------------------------------------------------------------ *)
(* Determinism: profile.json and profile.folded byte-identical at
   jobs 1/2/4 for a deterministic workload (pool frames excluded,
   logical paths re-rooted), given the injected timestamp. *)

let profile_config =
  {
    Experiment.default_config with
    Experiment.n = 8;
    horizon = 5000.;
    deadline = 1200.;
    sources = 1;
    mc_trials = 24;
    dts_cap = 400;
  }

let alg name =
  match Experiment.algorithm_of_string name with
  | Ok a -> a
  | Error e -> failwith e

let profile_workload pool =
  let trace = Experiment.make_trace profile_config ~n:8 in
  let r =
    Experiment.run_alg profile_config ~trace ~source:0 ~deadline:1200. ~rng:(Rng.create 5)
      (alg "EEDCB")
  in
  let problem =
    Experiment.make_problem profile_config ~trace ~channel:`Rayleigh ~source:0
      ~deadline:1200.
  in
  let sim =
    Simulate.run ~trials:24 ?pool ~rng:(Rng.create 2) ~eval_channel:`Rayleigh problem
      r.Experiment.schedule
  in
  ignore (Sys.opaque_identity sim.Simulate.delivery_ratio)

let test_profile_bytes_jobs_invariant =
  scrubbed @@ fun () ->
  let artifacts_at jobs =
    Tmedb_obs.reset ();
    Tmedb_obs.set_enabled true;
    with_pool jobs profile_workload;
    let t = Profile.of_events (Tmedb_obs.events ()) in
    let doc = Json.to_string ~indent:2 (Profile.profile_doc ~timestamp:"TS" t) in
    (doc, Profile.folded_counts t)
  in
  match List.map artifacts_at [ 1; 2; 4 ] with
  | [ (d1, f1); (d2, f2); (d4, f4) ] ->
      check_bool "trial spans present" true
        (let contains hay needle =
           let lh = String.length hay and ln = String.length needle in
           let rec at i = i + ln <= lh && (String.sub hay i ln = needle || at (i + 1)) in
           at 0
         in
         contains f1 "simulate.trial 24" && contains f1 "planner.run:EEDCB");
      check_string "profile.json bytes jobs 1 = 2" d1 d2;
      check_string "profile.json bytes jobs 1 = 4" d1 d4;
      check_string "profile.folded bytes jobs 1 = 2" f1 f2;
      check_string "profile.folded bytes jobs 1 = 4" f1 f4
  | _ -> Alcotest.fail "shape"

(* Profiling observes, never steers: the fig6 pipeline produces the
   same digest with the registry off, and with registry + flight
   recorder on, at jobs 1, 2 and 4. *)
let fig6_digest ~jobs =
  with_pool jobs @@ fun pool ->
  let config = { profile_config with Experiment.sources = 1; mc_trials = 20 } in
  let energy, delivery = Experiment.fig6 ~config ?pool ~ns:[ 6; 8 ] () in
  let f17 = Printf.sprintf "%.17g" in
  let fingerprint series =
    List.concat_map
      (fun s ->
        s.Experiment.label
        :: List.concat_map (fun (x, y) -> [ f17 x; f17 y ]) s.Experiment.points)
      series
  in
  Digest.to_hex (Digest.string (String.concat "\n" (fingerprint energy @ fingerprint delivery)))

let test_fig6_digest_profiling_on_off =
  scrubbed @@ fun () ->
  Tmedb_obs.set_enabled false;
  let reference = fig6_digest ~jobs:1 in
  List.iter
    (fun jobs ->
      Tmedb_obs.reset ();
      Tmedb_obs.set_enabled true;
      Tmedb_obs.Flight.arm ();
      check_string
        (Printf.sprintf "fig6 digest with profiling on, jobs=%d" jobs)
        reference (fig6_digest ~jobs);
      Tmedb_obs.Flight.disarm ();
      Tmedb_obs.set_enabled false;
      check_string
        (Printf.sprintf "fig6 digest with profiling off, jobs=%d" jobs)
        reference (fig6_digest ~jobs))
    [ 1; 2; 4 ]

(* The run ledger's bytes cannot depend on whether profiling rode
   along: spans and flight rings are outside the deterministic
   projection, and counters are jobs-invariant sums. *)
let test_ledger_bytes_profiling_on_off =
  scrubbed @@ fun () ->
  let ledger_bytes ~armed ~jobs =
    Tmedb_obs.reset ();
    Tmedb_obs.set_enabled true;
    if armed then Tmedb_obs.Flight.arm ();
    with_pool jobs profile_workload;
    let snap = Tmedb_obs.snapshot () in
    let ledger =
      Tmedb_report.Ledger.make ~timestamp:"2026-08-08T00:00:00Z"
        ~config:[ ("algorithm", Json.Str "EEDCB") ]
        ~input_digest:(Tmedb_report.Ledger.digest_string "fixed-instance")
        ~summary:[ ("trials", Json.Num 24.) ]
        ~snapshot:snap ~provenance:[] ~schedule:[] ()
    in
    Tmedb_obs.Flight.disarm ();
    Json.to_string ~indent:2 (Tmedb_report.Ledger.to_json ledger)
  in
  let reference = ledger_bytes ~armed:false ~jobs:1 in
  List.iter
    (fun jobs ->
      check_string
        (Printf.sprintf "ledger bytes with profiling on, jobs=%d" jobs)
        reference
        (ledger_bytes ~armed:true ~jobs))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Artifact writer *)

let test_write_artifacts =
  scrubbed @@ fun () ->
  Tmedb_obs.set_enabled true;
  (* Sleep long enough that the span's self time survives the folded
     wall file's whole-microsecond rounding. *)
  Tmedb_obs.Span.with_ "test.profile.artifact" (fun () -> Unix.sleepf 0.002);
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "tmedb_profile_test" in
  let t = Profile.write_artifacts ~timestamp:"TS" ~dir () in
  check_bool "returned the folded profile" true (t.Profile.nodes <> []);
  List.iter
    (fun name ->
      let path = Filename.concat dir name in
      check_bool (name ^ " written and non-empty") true
        (Sys.file_exists path && String.length (read_file path) > 0);
      Sys.remove path)
    [
      "profile.json";
      "profile_detail.json";
      "profile.folded";
      "profile_wall.folded";
      "flamegraph.html";
    ];
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* Crash forensics: a task raising inside the pool leaves a parseable
   tmedb.crash/1 black box with the last-K spans and the counters. *)

let test_crash_dump_from_pool_task =
  scrubbed @@ fun () ->
  let path = Filename.temp_file "tmedb_crash" ".json" in
  Tmedb_obs.set_enabled false;
  let c = Tmedb_obs.Counter.make "test.profile.crash_counter" in
  let dump = Crash_guard.install ~timestamp:"TS" ~capacity:64 ~path () in
  check_bool "install armed the recorder" true (Tmedb_obs.Flight.armed ());
  Tmedb_obs.Counter.add c 3;
  (try
     Crash_guard.guard dump (fun () ->
         Pool.with_pool ~num_domains:2 (fun pool ->
             ignore
               (Pool.map (Some pool)
                  (fun i ->
                    Tmedb_obs.Span.with_ "test.profile.task_span" (fun () ->
                        if i = 13 then failwith "boom in task" else i))
                  (Array.init 32 Fun.id))));
     Alcotest.fail "the task exception must propagate"
   with Failure msg -> check_string "original exception re-raised" "boom in task" msg);
  let body = read_file path in
  Sys.remove path;
  (match Json.parse body with
  | Error e -> Alcotest.fail ("crash dump does not parse: " ^ e)
  | Ok doc ->
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec at i = i + ln <= lh && (String.sub hay i ln = needle || at (i + 1)) in
        at 0
      in
      check_bool "schema" true
        (Json.member "schema" doc = Some (Json.Str "tmedb.crash/1"));
      check_bool "injected timestamp" true
        (Json.member "timestamp" doc = Some (Json.Str "TS"));
      check_bool "reason names the exception" true
        (match Json.member "reason" doc with
        | Some (Json.Str r) -> contains r "boom in task"
        | _ -> false);
      check_bool "ring capacity recorded" true
        (Json.member "ring_capacity" doc = Some (Json.Num 64.));
      check_bool "counter snapshot present" true
        (Option.bind (Json.member "counters" doc)
           (Json.member "test.profile.crash_counter")
        = Some (Json.Num 3.));
      check_bool "counter delta since arming" true
        (Option.bind (Json.member "counter_deltas" doc)
           (Json.member "test.profile.crash_counter")
        = Some (Json.Num 3.));
      match Option.bind (Json.member "recent_events" doc) Json.to_list with
      | None -> Alcotest.fail "recent_events missing"
      | Some rows ->
          check_bool "last-K span events captured" true (rows <> []);
          check_bool "the raising span is in the black box" true
            (List.exists
               (fun row ->
                 Json.member "name" row = Some (Json.Str "test.profile.task_span"))
               rows);
          check_bool "every row carries domain/seq/phase" true
            (List.for_all
               (fun row ->
                 List.for_all
                   (fun k -> Json.member k row <> None)
                   [ "name"; "domain"; "seq"; "ts_s"; "phase" ])
               rows));
  (* SIGUSR1 dumps and keeps running: raise it against ourselves. *)
  let path2 = Filename.temp_file "tmedb_crash_usr1" ".json" in
  let (_ : reason:string -> unit) = Crash_guard.install ~path:path2 () in
  Unix.kill (Unix.getpid ()) Sys.sigusr1;
  (* Signal delivery in OCaml is polled; force a safepoint or two. *)
  Unix.sleepf 0.05;
  ignore (Sys.opaque_identity (Array.init 1000 Fun.id));
  Unix.sleepf 0.05;
  let body2 = read_file path2 in
  Sys.remove path2;
  match Json.parse body2 with
  | Error e -> Alcotest.fail ("SIGUSR1 dump does not parse: " ^ e)
  | Ok doc ->
      check_bool "SIGUSR1 reason" true (Json.member "reason" doc = Some (Json.Str "sigusr1"))

let test_watchdog_deadline =
  scrubbed @@ fun () ->
  let trips = ref 0 in
  let r, tripped =
    Tmedb_report.Watchdog.with_deadline ~seconds:0.02
      ~on_trip:(fun () -> incr trips)
      (fun () ->
        Unix.sleepf 0.1;
        42)
  in
  check_int "the computation still completes" 42 r;
  check_bool "tripped" true tripped;
  check_int "on_trip fires exactly once" 1 !trips;
  let r2, tripped2 =
    Tmedb_report.Watchdog.with_deadline ~seconds:0. ~on_trip:(fun () -> incr trips)
      (fun () -> 7)
  in
  check_int "disabled watchdog result" 7 r2;
  check_bool "seconds <= 0 never trips" false tripped2;
  let r3, tripped3 =
    Tmedb_report.Watchdog.with_deadline ~seconds:30. ~on_trip:(fun () -> incr trips)
      (fun () -> 9)
  in
  check_int "fast computation result" 9 r3;
  check_bool "generous deadline never trips" false tripped3;
  check_int "no extra trips" 1 !trips;
  (* Exceptions still join the watchdog domain. *)
  (try
     ignore
       (Tmedb_report.Watchdog.with_deadline ~seconds:30. ~on_trip:ignore (fun () ->
            failwith "boom"));
     Alcotest.fail "exception must propagate"
   with Failure msg -> check_string "exception through the watchdog" "boom" msg);
  (* The canonical wiring: a watchdog trip writes the black box. *)
  let path = Filename.temp_file "tmedb_watchdog" ".json" in
  let dump = Crash_guard.install ~path () in
  let _, tripped =
    Tmedb_report.Watchdog.with_deadline ~seconds:0.02
      ~on_trip:(fun () -> dump ~reason:"watchdog deadline")
      (fun () ->
        Tmedb_obs.Span.with_ "test.profile.wedged" (fun () -> Unix.sleepf 0.1))
  in
  check_bool "watchdog tripped on the wedged span" true tripped;
  let body = read_file path in
  Sys.remove path;
  match Json.parse body with
  | Error e -> Alcotest.fail ("watchdog dump does not parse: " ^ e)
  | Ok doc ->
      check_bool "watchdog reason" true
        (Json.member "reason" doc = Some (Json.Str "watchdog deadline"))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "profile"
    [
      ( "attribution",
        [
          tc "nesting and self time" test_nesting_and_self_time;
          tc "pool transparency and ctx re-rooting" test_pool_transparency_and_reroot;
          tc "planner display name, stray events" test_planner_display_and_edge_cases;
          tc "documents and folded stacks" test_docs_and_folded;
        ] );
      ( "determinism",
        [
          tc "profile bytes jobs-invariant" test_profile_bytes_jobs_invariant;
          tc "fig6 digest profiling on/off" test_fig6_digest_profiling_on_off;
          tc "ledger bytes profiling on/off" test_ledger_bytes_profiling_on_off;
        ] );
      ("artifacts", [ tc "write_artifacts" test_write_artifacts ]);
      ( "forensics",
        [
          tc "crash dump from a pool task" test_crash_dump_from_pool_task;
          tc "watchdog deadline" test_watchdog_deadline;
        ] );
    ]
