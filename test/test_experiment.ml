(* Tests for the experiment drivers: small configurations of every
   figure reproduction, checking determinism and the orderings the
   paper reports. *)

open Tmedb

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A configuration small enough for unit tests. *)
let tiny =
  {
    Experiment.default_config with
    Experiment.n = 10;
    horizon = 6000.;
    deadline = 1500.;
    sources = 1;
    mc_trials = 60;
  }

let test_algorithm_names_roundtrip () =
  List.iter
    (fun a ->
      match Experiment.algorithm_of_string (Experiment.algorithm_name a) with
      | Ok a' ->
          check_bool "roundtrip" true (Experiment.algorithm_name a = Experiment.algorithm_name a')
      | Error e -> Alcotest.fail e)
    Experiment.all_algorithms;
  (match Experiment.algorithm_of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error");
  check_int "six algorithms" 6 (List.length Experiment.all_algorithms)

let test_make_trace_deterministic () =
  let a = Experiment.make_trace tiny ~n:10 in
  let b = Experiment.make_trace tiny ~n:10 in
  check_bool "same trace" true (Tmedb_trace.Trace.to_csv a = Tmedb_trace.Trace.to_csv b);
  check_int "n honoured" 10 (Tmedb_trace.Trace.n a)

let test_choose_sources () =
  let trace = Experiment.make_trace tiny ~n:10 in
  let sources = Experiment.choose_sources tiny ~trace ~deadline:tiny.Experiment.deadline in
  check_int "one source" 1 (List.length sources);
  List.iter (fun s -> check_bool "in range" true (0 <= s && s < 10)) sources

let test_run_alg_all_deterministic () =
  let trace = Experiment.make_trace tiny ~n:10 in
  let source = List.hd (Experiment.choose_sources tiny ~trace ~deadline:1500.) in
  List.iter
    (fun algorithm ->
      let run () =
        Experiment.run_alg tiny ~trace ~source ~deadline:1500.
          ~rng:(Tmedb_prelude.Rng.create 5) algorithm
      in
      let a = run () and b = run () in
      check_bool
        (Printf.sprintf "%s deterministic" (Experiment.algorithm_name algorithm))
        true
        (Float.equal a.Experiment.energy b.Experiment.energy);
      check_bool "energy finite" true (Float.is_finite a.Experiment.energy);
      check_bool "energy non-negative" true (a.Experiment.energy >= 0.))
    Experiment.all_algorithms

let alg name =
  match Experiment.algorithm_of_string name with
  | Ok a -> a
  | Error e -> Alcotest.fail e

let test_fr_variants_cost_more () =
  let trace = Experiment.make_trace tiny ~n:10 in
  let source = List.hd (Experiment.choose_sources tiny ~trace ~deadline:1500.) in
  let energy algorithm =
    (Experiment.run_alg tiny ~trace ~source ~deadline:1500. ~rng:(Tmedb_prelude.Rng.create 5)
       algorithm).Experiment.energy
  in
  check_bool "FR-EEDCB > EEDCB" true (energy (alg "FR-EEDCB") > energy (alg "EEDCB"));
  check_bool "FR-GREED > GREED" true (energy (alg "FR-GREED") > energy (alg "GREED"))

let test_fig4_shape () =
  let series =
    Experiment.fig4 ~config:tiny ~variant:`Static ~deadlines:[ 1000.; 2000. ] ~ns:[ 8; 10 ] ()
  in
  check_int "two series" 2 (List.length series);
  List.iter
    (fun s ->
      check_int "two points" 2 (List.length s.Experiment.points);
      List.iter
        (fun (_, y) -> check_bool "finite energy" true (Float.is_finite y && y >= 0.))
        s.Experiment.points)
    series

let test_fig5_ordering () =
  let series = Experiment.fig5 ~config:tiny ~variant:`Static ~deadlines:[ 1500. ] () in
  check_int "three algorithms" 3 (List.length series);
  let value label =
    match List.find_opt (fun s -> s.Experiment.label = label) series with
    | Some { Experiment.points = [ (_, y) ]; _ } -> y
    | _ -> Alcotest.fail (label ^ " missing")
  in
  check_bool "EEDCB <= GREED" true (value "EEDCB" <= value "GREED" +. 1e-9)

let test_fig6_delivery_ordering () =
  let _, delivery = Experiment.fig6 ~config:tiny ~ns:[ 10 ] () in
  check_int "six series" 6 (List.length delivery);
  let value label =
    match List.find_opt (fun s -> s.Experiment.label = label) delivery with
    | Some { Experiment.points = [ (_, y) ]; _ } -> y
    | _ -> Alcotest.fail (label ^ " missing")
  in
  (* The paper's Fig. 6(b): FR variants deliver (nearly) everything,
     static designs lose nodes in fading. *)
  check_bool "FR-EEDCB high delivery" true (value "FR-EEDCB" > 0.9);
  check_bool "EEDCB suffers" true (value "EEDCB" < value "FR-EEDCB");
  List.iter
    (fun s ->
      List.iter
        (fun (_, y) -> check_bool "ratio in [0,1]" true (0. <= y && y <= 1.))
        s.Experiment.points)
    delivery

let test_print_series_runs () =
  Experiment.print_series ~title:"smoke" ~xlabel:"x"
    [ { Experiment.label = "a"; points = [ (1., 2.); (3., 4.) ] } ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "experiment"
    [
      ( "experiment",
        [
          tc "algorithm names" test_algorithm_names_roundtrip;
          tc "trace deterministic" test_make_trace_deterministic;
          tc "choose sources" test_choose_sources;
          slow "run_alg deterministic" test_run_alg_all_deterministic;
          slow "FR variants cost more" test_fr_variants_cost_more;
          slow "fig4 shape" test_fig4_shape;
          slow "fig5 ordering" test_fig5_ordering;
          slow "fig6 delivery ordering" test_fig6_delivery_ordering;
          tc "print series" test_print_series_runs;
        ] );
    ]
